#include "analysis/static_analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "support/str.hpp"

namespace ht::analysis {

namespace {

using progmodel::Action;
using progmodel::AllocFn;
using progmodel::ReadUse;

std::optional<AllocFn> alloc_fn_from_name(std::string_view name) {
  for (AllocFn fn : progmodel::kAllAllocFns) {
    if (progmodel::alloc_fn_name(fn) == name) return fn;
  }
  return std::nullopt;
}

/// The walker: one pass from the program entry, mirroring the
/// interpreter's CCID register discipline action-for-action.
class Walker {
 public:
  Walker(const progmodel::Program& program, const cce::Encoder* encoder,
         const StaticAnalysisOptions& options)
      : program_(program),
        options_(options),
        fallback_(cce::InstrumentationPlan{}),
        reg_(encoder != nullptr ? *encoder
                                : static_cast<const cce::Encoder&>(fallback_)),
        active_(program.graph().function_count(), 0) {}

  StaticAnalysisResult run() {
    state_.slots.resize(program_.slot_count());
    walk_body(program_.entry(), program_.body(program_.entry()));
    return finalize();
  }

 private:
  struct BufferMeta {
    AllocFn fn = AllocFn::kMalloc;
    std::uint64_t ccid = 0;
  };

  using ContextKey = std::pair<std::uint8_t, std::uint64_t>;

  static ContextKey context_key(AllocFn fn, std::uint64_t ccid) {
    return ContextKey{static_cast<std::uint8_t>(fn), ccid};
  }

  Interval resolve(const progmodel::Value& value) const {
    return resolve_interval(value, options_.space);
  }

  std::uint32_t buffer_id(cce::CallSiteId site, std::uint64_t ccid,
                          AllocFn fn) {
    const auto key = std::make_pair(static_cast<std::uint32_t>(site), ccid);
    const auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(meta_.size());
    ids_.emplace(key, id);
    meta_.push_back(BufferMeta{fn, ccid});
    return id;
  }

  void note_context(AllocFn fn, std::uint64_t ccid) {
    context_masks_.try_emplace(context_key(fn, ccid), 0);
  }

  void emit(FindingKind kind, std::uint32_t id, cce::FunctionId in_function,
            std::string detail) {
    const BufferMeta& meta = meta_[id];
    auto key = std::make_tuple(static_cast<std::uint8_t>(kind),
                               static_cast<std::uint8_t>(meta.fn), meta.ccid,
                               static_cast<std::uint32_t>(in_function), detail);
    if (!seen_.insert(std::move(key)).second) return;
    findings_.push_back(StaticFinding{meta.fn, meta.ccid, kind, in_function,
                                      std::move(detail)});
    context_masks_[context_key(meta.fn, meta.ccid)] |= finding_vuln_bit(kind);
  }

  /// Copy of the points-to set (walk mutations must not invalidate it).
  std::vector<std::uint32_t> slot_set(std::uint32_t slot) const {
    if (slot >= state_.slots.size()) return {};
    return state_.slots[slot];
  }

  void check_uaf(cce::FunctionId f, std::uint32_t id, const char* what) {
    const BufferFacts& fb = state_.facts(id);
    if (fb.state == BufferState::kFreed ||
        fb.state == BufferState::kPossiblyFreed) {
      emit(FindingKind::kUseAfterFree, id, f,
           std::string(what) + " of " + buffer_state_name(fb.state) +
               " buffer");
    }
  }

  void check_overflow(cce::FunctionId f, std::uint32_t id, const Interval& off,
                      const Interval& len, bool must_access, const char* what) {
    if (len.hi == 0) return;  // zero-length accesses touch nothing
    const BufferFacts& fb = state_.facts(id);
    const Interval end = off.add(len);
    const std::string range =
        "[" + std::to_string(off.lo) + ", " + interval_bound_string(end.hi) +
        ")";
    if (len.lo > 0 && end.lo > fb.size.hi && must_access) {
      emit(FindingKind::kMustOverflow, id, f,
           std::string(what) + " range " + range + " exceeds buffer size " +
               interval_string(fb.size));
    } else if (end.hi > fb.size.lo) {
      emit(FindingKind::kMayOverflow, id, f,
           std::string(what) + " range " + range + " may exceed buffer size " +
               interval_string(fb.size));
    }
  }

  void check_uninit_read(cce::FunctionId f, std::uint32_t id,
                         const Interval& off, const Interval& len,
                         ReadUse use) {
    if (use == ReadUse::kData || len.hi == 0) return;
    const BufferFacts& fb = state_.facts(id);
    const std::uint64_t end = sat_add(off.hi, len.hi);
    // Clamp to in-buffer bytes: bytes past the end are an overflow finding,
    // not an uninit one (a fully-initialized buffer overread must not
    // double-flag).
    const std::uint64_t end_clamped = std::min(end, fb.size.hi);
    if (end_clamped > fb.must_init_end) {
      emit(FindingKind::kUninitRead, id, f,
           std::string(progmodel::read_use_name(use)) + "-use read of bytes [" +
               std::to_string(off.lo) + ", " +
               interval_bound_string(end_clamped) +
               ") beyond initialized prefix " +
               interval_bound_string(fb.must_init_end));
    }
    // Origin-tagged taint: bytes copied in from another buffer's
    // uninitialized region flag the *origin* allocation.
    for (const PoisonTaint& taint : fb.poison) {
      if (taint.bytes.lo < end_clamped && off.lo < taint.bytes.hi) {
        emit(FindingKind::kUninitRead, taint.origin, f,
             std::string(progmodel::read_use_name(use)) +
                 "-use read of copied bytes that may be uninitialized at "
                 "their origin");
      }
    }
  }

  void extend_init(std::uint32_t id, const Interval& off, const Interval& len,
                   bool strong) {
    if (!strong) return;
    BufferFacts& fb = state_.facts(id);
    // The definitely-written region over all inputs is [off.hi,
    // off.lo + len.lo); it extends the prefix only gap-free.
    if (off.hi > fb.must_init_end) return;
    fb.must_init_end = std::max(fb.must_init_end, sat_add(off.lo, len.lo));
  }

  bool walk_body(cce::FunctionId f, const std::vector<Action>& body) {
    for (const Action& action : body) {
      if (!walk_action(f, action)) return false;
    }
    return true;
  }

  bool walk_loop(cce::FunctionId f, const Action& action) {
    const Interval count = resolve(action.count);
    if (count.hi == 0) return true;
    const std::uint64_t definite = count.lo >= 1 ? 1 : 0;
    if (definite != 0) {
      if (!walk_body(f, action.body)) return false;
    }
    if (count.hi <= definite) return true;

    // Possible further iterations: walk the body at full strength (intra-
    // iteration sequencing like write-before-read must hold), then join
    // with the pre-iteration state so the body's effects become
    // conditional at the loop boundary. Values carry no induction
    // variables, so the transfer function usually reaches fixpoint on the
    // second application; a cap guards pathological cases.
    const bool single_extra = count.hi - definite == 1;
    const std::uint32_t iters =
        single_extra ? 1
                     : std::max<std::uint32_t>(options_.loop_fixpoint_iters, 1);
    const bool saved_must = must_;
    must_ = false;
    bool ok = true;
    for (std::uint32_t i = 0; i < iters; ++i) {
      AbstractHeap before = state_;
      ok = walk_body(f, action.body);
      state_ = join_heaps(state_, before);
      if (!ok) break;
      if (state_ == before) break;
      if (!single_extra && i + 1 == iters) truncated_ = true;
    }
    must_ = saved_must;
    return ok;
  }

  bool walk_action(cce::FunctionId f, const Action& action) {
    if (++steps_ > options_.max_steps) {
      truncated_ = true;
      return false;
    }

    switch (action.kind) {
      case Action::Kind::kCall: {
        reg_.on_call(action.site);
        const cce::FunctionId callee = program_.graph().site(action.site).callee;
        bool ok = true;
        if (active_[callee] >= options_.max_recursion) {
          // Beyond the recursion bound: skip the call (its effects are
          // unanalyzed, so no PROVEN-SAFE verdict may survive).
          truncated_ = true;
        } else {
          ++active_[callee];
          ok = walk_body(callee, program_.body(callee));
          --active_[callee];
        }
        reg_.on_return();
        return ok;
      }

      case Action::Kind::kAlloc: {
        reg_.on_call(action.site);
        const std::uint64_t ccid = reg_.value();
        reg_.on_return();
        const std::uint32_t id = buffer_id(action.site, ccid, action.alloc_fn);
        BufferFacts& fb = state_.facts(id);
        // Strong update: the facts describe the newest concrete instance
        // of this summary buffer. Conditionality (loops) is restored by
        // the loop-boundary joins.
        fb.state = BufferState::kLive;
        fb.size = resolve(action.size);
        fb.must_init_end =
            action.alloc_fn == AllocFn::kCalloc ? kIntervalMax : 0;
        fb.poison.clear();
        state_.set_slot(action.slot, id);
        note_context(action.alloc_fn, ccid);
        return true;
      }

      case Action::Kind::kRealloc: {
        reg_.on_call(action.site);
        const std::uint64_t ccid = reg_.value();
        reg_.on_return();
        const std::vector<std::uint32_t> old_ids = slot_set(action.slot);
        // Gather carried facts before materializing the new summary (which
        // may grow the facts arena).
        std::uint64_t carried_init = 0;
        std::vector<PoisonTaint> carried_poison;
        bool any_old = false;
        for (std::uint32_t old : old_ids) {
          check_uaf(f, old, "realloc");
          BufferFacts& of = state_.facts(old);
          const std::uint64_t kept =
              std::min(of.must_init_end, of.size.lo);
          carried_init = any_old ? std::min(carried_init, kept) : kept;
          any_old = true;
          for (const PoisonTaint& taint : of.poison) {
            carried_poison.push_back(taint);
          }
          // The old allocation is consumed; the slot repoints below.
          of.state = BufferState::kFreed;
        }
        const std::uint32_t id = buffer_id(action.site, ccid, AllocFn::kRealloc);
        BufferFacts& fb = state_.facts(id);
        fb.state = BufferState::kLive;
        fb.size = resolve(action.size);
        fb.must_init_end = carried_init;
        fb.poison.clear();
        for (const PoisonTaint& taint : carried_poison) {
          fb.add_poison(taint.origin, taint.bytes);
        }
        state_.set_slot(action.slot, id);
        note_context(AllocFn::kRealloc, ccid);
        return true;
      }

      case Action::Kind::kFree: {
        reg_.on_call(action.site);
        const std::vector<std::uint32_t> ids = slot_set(action.slot);
        const bool strong = ids.size() == 1;
        for (std::uint32_t id : ids) {
          BufferFacts& fb = state_.facts(id);
          switch (fb.state) {
            case BufferState::kLive:
              fb.state = strong ? BufferState::kFreed
                                : BufferState::kPossiblyFreed;
              break;
            case BufferState::kPossiblyFreed:
            case BufferState::kFreed:
              emit(FindingKind::kDoubleFree, id, f,
                   std::string("free of ") + buffer_state_name(fb.state) +
                       " buffer");
              fb.state = BufferState::kFreed;
              break;
            case BufferState::kUnallocated:
              break;
          }
        }
        reg_.on_return();
        return true;
      }

      case Action::Kind::kWrite: {
        const std::vector<std::uint32_t> ids = slot_set(action.slot);
        const Interval off = resolve(action.offset);
        const Interval len = resolve(action.size);
        const bool strong = ids.size() == 1;
        for (std::uint32_t id : ids) {
          check_uaf(f, id, "write");
          check_overflow(f, id, off, len, must_ && strong, "write");
          extend_init(id, off, len, strong);
        }
        return true;
      }

      case Action::Kind::kRead: {
        const std::vector<std::uint32_t> ids = slot_set(action.slot);
        const Interval off = resolve(action.offset);
        const Interval len = resolve(action.size);
        const bool strong = ids.size() == 1;
        for (std::uint32_t id : ids) {
          check_uaf(f, id, "read");
          check_overflow(f, id, off, len, must_ && strong, "read");
          check_uninit_read(f, id, off, len, action.use);
        }
        return true;
      }

      case Action::Kind::kCopy: {
        const std::vector<std::uint32_t> src_ids = slot_set(action.src_slot);
        const std::vector<std::uint32_t> dst_ids = slot_set(action.slot);
        const Interval src_off = resolve(action.src_offset);
        const Interval dst_off = resolve(action.offset);
        const Interval len = resolve(action.size);
        const bool src_strong = src_ids.size() == 1;
        const bool dst_strong = dst_ids.size() == 1;
        for (std::uint32_t sid : src_ids) {
          check_uaf(f, sid, "copy-read");
          check_overflow(f, sid, src_off, len, must_ && src_strong,
                         "copy-read");
        }
        for (std::uint32_t did : dst_ids) {
          check_uaf(f, did, "copy-write");
          check_overflow(f, did, dst_off, len, must_ && dst_strong,
                         "copy-write");
        }
        if (len.hi > 0) {
          for (std::uint32_t did : dst_ids) {
            for (std::uint32_t sid : src_ids) {
              const BufferFacts& sf = state_.facts(sid);
              const std::uint64_t src_end =
                  std::min(sat_add(src_off.hi, len.hi), sf.size.hi);
              const Interval dst_bytes{dst_off.lo, sat_add(dst_off.hi, len.hi)};
              // Copying bytes that may be uninitialized in the source
              // taints the destination, origin-tagged at the source — V-bit
              // propagation without a warning (kCopy is a data use).
              if (src_end > sf.must_init_end) {
                state_.facts(did).add_poison(sid, dst_bytes);
              }
              const std::vector<PoisonTaint> src_poison = sf.poison;
              for (const PoisonTaint& taint : src_poison) {
                if (taint.bytes.lo < src_end && src_off.lo < taint.bytes.hi) {
                  state_.facts(did).add_poison(taint.origin, dst_bytes);
                }
              }
            }
          }
          for (std::uint32_t did : dst_ids) {
            extend_init(did, dst_off, len, dst_strong);
          }
        }
        return true;
      }

      case Action::Kind::kLoop:
        return walk_loop(f, action);
    }
    return true;
  }

  StaticAnalysisResult finalize() {
    StaticAnalysisResult result;
    result.truncated = truncated_;
    result.steps = steps_;
    result.findings = std::move(findings_);
    std::sort(result.findings.begin(), result.findings.end(),
              [](const StaticFinding& a, const StaticFinding& b) {
                return std::tie(a.fn, a.ccid, a.kind, a.in_function, a.detail) <
                       std::tie(b.fn, b.ccid, b.kind, b.in_function, b.detail);
              });
    for (const auto& [key, mask] : context_masks_) {
      result.contexts.push_back(ContextVerdict{
          static_cast<AllocFn>(key.first), key.second, mask,
          mask == 0 && !truncated_});
    }
    return result;
  }

  const progmodel::Program& program_;
  StaticAnalysisOptions options_;
  cce::PccEncoder fallback_;
  cce::CcidRegister reg_;
  std::vector<std::uint32_t> active_;

  AbstractHeap state_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> ids_;
  std::vector<BufferMeta> meta_;
  /// Ordered by {fn, ccid} — finalize() emits contexts in map order.
  std::map<ContextKey, std::uint8_t> context_masks_;
  std::set<std::tuple<std::uint8_t, std::uint8_t, std::uint64_t, std::uint32_t,
                      std::string>>
      seen_;
  std::vector<StaticFinding> findings_;
  bool must_ = true;
  bool truncated_ = false;
  std::uint64_t steps_ = 0;
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::size_t count_flagged(const StaticAnalysisResult& result) {
  std::size_t flagged = 0;
  for (const ContextVerdict& c : result.contexts) {
    if (c.finding_mask != 0) ++flagged;
  }
  return flagged;
}

}  // namespace

const char* finding_kind_name(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kMustOverflow: return "MUST-OVERFLOW";
    case FindingKind::kMayOverflow: return "MAY-OVERFLOW";
    case FindingKind::kUseAfterFree: return "UAF";
    case FindingKind::kDoubleFree: return "DOUBLE-FREE";
    case FindingKind::kUninitRead: return "UNINIT-READ";
  }
  return "?";
}

bool finding_kind_from_name(std::string_view text, FindingKind& kind) noexcept {
  for (std::size_t i = 0; i < kFindingKindCount; ++i) {
    const auto value = static_cast<FindingKind>(i);
    if (text == finding_kind_name(value)) {
      kind = value;
      return true;
    }
  }
  return false;
}

std::uint8_t finding_vuln_bit(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kMustOverflow:
    case FindingKind::kMayOverflow:
      return patch::kOverflow;
    case FindingKind::kUseAfterFree:
    case FindingKind::kDoubleFree:
      return patch::kUseAfterFree;
    case FindingKind::kUninitRead:
      return patch::kUninitRead;
  }
  return 0;
}

std::uint8_t StaticAnalysisResult::finding_mask(progmodel::AllocFn fn,
                                                std::uint64_t ccid) const noexcept {
  for (const ContextVerdict& c : contexts) {
    if (c.fn == fn && c.ccid == ccid) return c.finding_mask;
  }
  return 0;
}

std::vector<patch::PatchCandidate> StaticAnalysisResult::candidates(
    std::uint64_t now_ns) const {
  std::vector<patch::PatchCandidate> out;
  for (const ContextVerdict& c : contexts) {
    if (c.finding_mask == 0) continue;
    std::uint64_t hits = 0;
    for (const StaticFinding& finding : findings) {
      if (finding.fn == c.fn && finding.ccid == c.ccid) ++hits;
    }
    out.push_back(patch::PatchCandidate{c.fn, c.ccid, c.finding_mask,
                                        patch::CandidateOrigin::kStatic, hits,
                                        now_ns});
  }
  return out;
}

patch::StaticHintSet StaticAnalysisResult::proven_safe_hints() const {
  std::vector<patch::StaticHintSet::Hint> hints;
  for (const ContextVerdict& c : contexts) {
    if (c.proven_safe) hints.push_back({c.fn, c.ccid});
  }
  return patch::StaticHintSet(std::move(hints));
}

StaticAnalysisResult analyze_program(const progmodel::Program& program,
                                     const cce::Encoder* encoder,
                                     const StaticAnalysisOptions& options) {
  Walker walker(program, encoder, options);
  return walker.run();
}

std::string render_static_report(const progmodel::Program& program,
                                 const StaticAnalysisResult& result,
                                 const CcidSymbolizer* symbolizer) {
  std::ostringstream os;
  std::size_t safe = 0;
  for (const ContextVerdict& c : result.contexts) {
    if (c.proven_safe) ++safe;
  }
  os << "# htlint static analysis\n";
  os << "summary: contexts=" << result.contexts.size()
     << " flagged=" << count_flagged(result) << " proven-safe=" << safe
     << " findings=" << result.findings.size()
     << " truncated=" << (result.truncated ? "yes" : "no")
     << " steps=" << result.steps << "\n\n";
  for (const StaticFinding& finding : result.findings) {
    os << "finding " << finding_kind_name(finding.kind) << ' '
       << progmodel::alloc_fn_name(finding.fn) << ' ' << ccid_hex(finding.ccid)
       << " bit=" << patch::vuln_mask_to_string(finding_vuln_bit(finding.kind))
       << " in=" << program.graph().function_name(finding.in_function) << '\n';
    os << "  detail: " << finding.detail << '\n';
    if (symbolizer != nullptr) {
      os << "  context: " << symbolizer->render(finding.fn, finding.ccid)
         << '\n';
    }
  }
  if (!result.findings.empty()) os << '\n';
  for (const ContextVerdict& c : result.contexts) {
    os << "context " << progmodel::alloc_fn_name(c.fn) << ' '
       << ccid_hex(c.ccid) << " mask="
       << patch::vuln_mask_to_string(c.finding_mask);
    if (c.proven_safe) os << " proven-safe";
    os << '\n';
  }
  return os.str();
}

std::string static_report_json(const progmodel::Program& program,
                               const StaticAnalysisResult& result,
                               const CcidSymbolizer* symbolizer) {
  std::ostringstream os;
  const std::size_t flagged = count_flagged(result);
  std::size_t safe = 0;
  for (const ContextVerdict& c : result.contexts) {
    if (c.proven_safe) ++safe;
  }
  os << "{\n  \"summary\": {\n";
  os << "    \"contexts\": " << result.contexts.size() << ",\n";
  os << "    \"flagged\": " << flagged << ",\n";
  os << "    \"proven_safe\": " << safe << ",\n";
  os << "    \"findings\": " << result.findings.size() << ",\n";
  os << "    \"truncated\": " << (result.truncated ? "true" : "false") << ",\n";
  os << "    \"steps\": " << result.steps << "\n  },\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const StaticFinding& finding = result.findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"kind\": \"" << finding_kind_name(finding.kind)
       << "\", \"fn\": \"" << progmodel::alloc_fn_name(finding.fn)
       << "\", \"ccid\": \"" << ccid_hex(finding.ccid) << "\", \"bit\": \""
       << patch::vuln_mask_to_string(finding_vuln_bit(finding.kind))
       << "\", \"in_function\": \""
       << json_escape(program.graph().function_name(finding.in_function))
       << "\", \"detail\": \"" << json_escape(finding.detail) << '"';
    if (symbolizer != nullptr) {
      os << ", \"context\": \""
         << json_escape(symbolizer->render(finding.fn, finding.ccid)) << '"';
    }
    os << '}';
  }
  os << "\n  ],\n  \"contexts\": [";
  for (std::size_t i = 0; i < result.contexts.size(); ++i) {
    const ContextVerdict& c = result.contexts[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"fn\": \"" << progmodel::alloc_fn_name(c.fn)
       << "\", \"ccid\": \"" << ccid_hex(c.ccid) << "\", \"mask\": \""
       << patch::vuln_mask_to_string(c.finding_mask) << "\", \"proven_safe\": "
       << (c.proven_safe ? "true" : "false") << '}';
  }
  os << "\n  ]\n}\n";
  return os.str();
}

// ---- Baseline (JSON report) reader ----

namespace {

/// Minimal recursive-descent JSON scanner, sufficient for reports produced
/// by static_report_json (and tolerant of equivalent hand-written JSON).
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : s_(text) {}

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  [[nodiscard]] bool eof() {
    skip_ws();
    return i_ >= s_.size();
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return i_ < s_.size() ? s_[i_] : '\0';
  }

  bool consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t pos() const { return i_; }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) return false;
      const char esc = s_[i_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  /// Skips any well-formed value; false on malformed input.
  bool skip_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++i_;
      if (consume(close)) return true;
      while (true) {
        if (c == '{') {
          std::string key;
          if (!parse_string(key) || !consume(':')) return false;
        }
        if (!skip_value()) return false;
        if (consume(',')) continue;
        return consume(close);
      }
    }
    // number / true / false / null: consume the token characters.
    const std::size_t start = i_;
    while (i_ < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.')) {
      ++i_;
    }
    return i_ > start;
  }

 private:
  std::string_view s_;
  std::size_t i_ = 0;
};

}  // namespace

BaselineParseResult parse_baseline_report(std::string_view json) {
  BaselineParseResult result;
  support::NoteLimiter limiter(result.notes, support::kParseNoteCap);
  JsonCursor cur(json);

  const auto reject = [&](const std::string& reason) {
    result.rejected = true;
    result.reject_reason =
        reason + " (offset " + std::to_string(cur.pos()) + ")";
    result.findings.clear();
  };

  if (!cur.consume('{')) {
    reject("expected top-level object");
    return result;
  }
  if (cur.consume('}')) return result;
  while (true) {
    std::string key;
    if (!cur.parse_string(key) || !cur.consume(':')) {
      reject("malformed object key");
      return result;
    }
    if (key != "findings") {
      if (!cur.skip_value()) {
        reject("malformed value for key '" + key + "'");
        return result;
      }
    } else {
      if (!cur.consume('[')) {
        reject("'findings' is not an array");
        return result;
      }
      if (!cur.consume(']')) {
        std::size_t entry = 0;
        while (true) {
          ++entry;
          if (!cur.consume('{')) {
            reject("findings entry is not an object");
            return result;
          }
          std::string kind_text, fn_text, ccid_text, detail;
          bool have_kind = false, have_fn = false, have_ccid = false,
               have_detail = false;
          bool entry_ok = true;
          if (!cur.consume('}')) {
            while (true) {
              std::string field;
              if (!cur.parse_string(field) || !cur.consume(':')) {
                reject("malformed findings entry");
                return result;
              }
              if (field == "kind" || field == "fn" || field == "ccid" ||
                  field == "detail") {
                std::string value;
                if (!cur.parse_string(value)) {
                  reject("non-string '" + field + "' in findings entry");
                  return result;
                }
                if (field == "kind") { kind_text = value; have_kind = true; }
                else if (field == "fn") { fn_text = value; have_fn = true; }
                else if (field == "ccid") { ccid_text = value; have_ccid = true; }
                else { detail = value; have_detail = true; }
              } else if (!cur.skip_value()) {
                reject("malformed findings entry");
                return result;
              }
              if (cur.consume(',')) continue;
              if (cur.consume('}')) break;
              reject("malformed findings entry");
              return result;
            }
          }
          // Field validation is a per-entry note, not a reject: one odd
          // entry must not void the rest of the baseline.
          StaticFinding finding;
          if (!have_kind || !have_fn || !have_ccid || !have_detail) {
            limiter.add("findings entry " + std::to_string(entry) +
                        ": missing kind/fn/ccid/detail");
            entry_ok = false;
          } else if (!finding_kind_from_name(kind_text, finding.kind)) {
            limiter.add("findings entry " + std::to_string(entry) +
                        ": unknown kind '" + kind_text + "'");
            entry_ok = false;
          } else if (const auto fn = alloc_fn_from_name(fn_text); !fn) {
            limiter.add("findings entry " + std::to_string(entry) +
                        ": unknown fn '" + fn_text + "'");
            entry_ok = false;
          } else if (const auto ccid = support::parse_u64(ccid_text); !ccid) {
            limiter.add("findings entry " + std::to_string(entry) +
                        ": bad ccid '" + ccid_text + "'");
            entry_ok = false;
          } else {
            finding.fn = *fn;
            finding.ccid = *ccid;
            finding.detail = std::move(detail);
          }
          if (entry_ok) result.findings.push_back(std::move(finding));
          if (cur.consume(',')) continue;
          if (cur.consume(']')) break;
          reject("malformed findings array");
          return result;
        }
      }
    }
    if (cur.consume(',')) continue;
    if (cur.consume('}')) break;
    reject("malformed top-level object");
    return result;
  }
  return result;
}

}  // namespace ht::analysis
