#include "analysis/patch_generator.hpp"

#include "support/hash.hpp"

namespace ht::analysis {

using progmodel::AccessKind;

std::uint8_t vuln_bit_for(AccessKind kind) noexcept {
  switch (kind) {
    case AccessKind::kOverflow: return patch::kOverflow;
    case AccessKind::kUseAfterFree: return patch::kUseAfterFree;
    case AccessKind::kUninitRead: return patch::kUninitRead;
    case AccessKind::kOk:
    case AccessKind::kWild:
    case AccessKind::kBlockedByGuard:
      return 0;
  }
  return 0;
}

std::vector<patch::Patch> patches_from_violations(
    const std::vector<progmodel::Violation>& violations, std::size_t* unattributed) {
  std::vector<patch::Patch> patches;
  std::size_t wild = 0;
  for (const progmodel::Violation& v : violations) {
    const std::uint8_t bit = vuln_bit_for(v.outcome.kind);
    if (bit == 0) {
      ++wild;
      continue;
    }
    bool merged = false;
    for (patch::Patch& p : patches) {
      if (p.fn == v.outcome.victim_fn && p.ccid == v.outcome.victim_ccid) {
        p.vuln_mask |= bit;
        merged = true;
        break;
      }
    }
    if (!merged) {
      patches.push_back(patch::Patch{v.outcome.victim_fn, v.outcome.victim_ccid, bit});
    }
  }
  if (unattributed != nullptr) *unattributed = wild;
  return patches;
}

AnalysisReport analyze_attack(const progmodel::Program& program,
                              const cce::Encoder* encoder,
                              const progmodel::Input& attack_input,
                              const AnalysisConfig& config) {
  shadow::SimHeap heap(config.heap);
  progmodel::Interpreter interp(program, encoder, heap);
  AnalysisReport report;
  report.run = interp.run(attack_input, config.run);
  report.patches = patches_from_violations(report.run.violations, &report.unattributed);
  return report;
}

AnalysisReport analyze_attack_set(const progmodel::Program& program,
                                  const cce::Encoder* encoder,
                                  const std::vector<progmodel::Input>& inputs,
                                  const AnalysisConfig& config) {
  AnalysisReport merged;
  bool first = true;
  for (const progmodel::Input& input : inputs) {
    AnalysisReport partial = analyze_attack(program, encoder, input, config);
    if (first) {
      merged.run = std::move(partial.run);
      first = false;
    }
    merged.unattributed += partial.unattributed;
    for (const patch::Patch& p : partial.patches) {
      bool merged_in = false;
      for (patch::Patch& existing : merged.patches) {
        if (existing.fn == p.fn && existing.ccid == p.ccid) {
          existing.vuln_mask |= p.vuln_mask;
          merged_in = true;
          break;
        }
      }
      if (!merged_in) merged.patches.push_back(p);
    }
  }
  return merged;
}

AnalysisReport analyze_attack_partitioned(const progmodel::Program& program,
                                          const cce::Encoder* encoder,
                                          const progmodel::Input& attack_input,
                                          std::uint32_t subspaces,
                                          const AnalysisConfig& config) {
  if (subspaces == 0) subspaces = 1;
  AnalysisReport merged;
  for (std::uint32_t i = 0; i < subspaces; ++i) {
    AnalysisConfig run_config = config;
    run_config.heap.quarantine_filter = [subspaces, i](std::uint64_t ccid) {
      return support::mix64(ccid) % subspaces == i;
    };
    AnalysisReport partial =
        analyze_attack(program, encoder, attack_input, run_config);
    if (i == 0) merged.run = std::move(partial.run);
    merged.unattributed += partial.unattributed;
    for (const patch::Patch& p : partial.patches) {
      bool merged_in = false;
      for (patch::Patch& existing : merged.patches) {
        if (existing.fn == p.fn && existing.ccid == p.ccid) {
          existing.vuln_mask |= p.vuln_mask;
          merged_in = true;
          break;
        }
      }
      if (!merged_in) merged.patches.push_back(p);
    }
  }
  return merged;
}

}  // namespace ht::analysis
