#include "analysis/patch_generator.hpp"

#include "support/hash.hpp"

namespace ht::analysis {

using progmodel::AccessKind;

std::uint8_t vuln_bit_for(AccessKind kind) noexcept {
  switch (kind) {
    case AccessKind::kOverflow: return patch::kOverflow;
    case AccessKind::kUseAfterFree: return patch::kUseAfterFree;
    case AccessKind::kUninitRead: return patch::kUninitRead;
    case AccessKind::kOk:
    case AccessKind::kWild:
    case AccessKind::kBlockedByGuard:
      return 0;
  }
  return 0;
}

std::vector<patch::Patch> patches_from_violations(
    const std::vector<progmodel::Violation>& violations, std::size_t* unattributed) {
  std::vector<patch::Patch> patches;
  std::size_t wild = 0;
  for (const progmodel::Violation& v : violations) {
    const std::uint8_t bit = vuln_bit_for(v.outcome.kind);
    if (bit == 0) {
      ++wild;
      continue;
    }
    bool merged = false;
    for (patch::Patch& p : patches) {
      if (p.fn == v.outcome.victim_fn && p.ccid == v.outcome.victim_ccid) {
        p.vuln_mask |= bit;
        merged = true;
        break;
      }
    }
    if (!merged) {
      patches.push_back(patch::Patch{v.outcome.victim_fn, v.outcome.victim_ccid, bit});
    }
  }
  if (unattributed != nullptr) *unattributed = wild;
  return patches;
}

AnalysisReport analyze_attack(const progmodel::Program& program,
                              const cce::Encoder* encoder,
                              const progmodel::Input& attack_input,
                              const AnalysisConfig& config) {
  support::Tracer* tracer = config.tracer;
  support::SpanGuard span(tracer, "analyze_attack");

  shadow::SimHeapConfig heap_config = config.heap;
  if (tracer != nullptr) heap_config.collect_trace_stats = true;
  shadow::SimHeap heap(heap_config);
  progmodel::Interpreter interp(program, encoder, heap);
  AnalysisReport report;
  std::uint32_t replay_id = support::kNoSpanParent;
  {
    support::SpanGuard replay(tracer, "replay");
    replay_id = replay.id();
    progmodel::RunOptions run_options = config.run;
    run_options.tracer = tracer;
    report.run = interp.run(attack_input, run_options);
    replay.counter("steps", report.run.steps);
    replay.counter("allocs", report.run.total_allocs());
    replay.counter("frees", report.run.free_count);
    replay.counter("violations", report.run.violations.size());
  }
  if (tracer != nullptr) {
    // The replay span *contains* the shadow-check time; re-attribute the
    // share SimHeap measured as a sibling span so a trace shows how much of
    // the replay was spent in the Memcheck-style machinery.
    const shadow::SimHeap::TraceStats& checks = heap.trace_stats();
    const std::uint32_t sid = tracer->add_complete_span(
        "shadow_checks", tracer->spans()[replay_id].start_ns,
        checks.check_wall_ns, checks.check_cpu_ns);
    tracer->add_counter(sid, "redzone_checks", checks.redzone_checks);
    tracer->add_counter(sid, "redzone_check_bytes", checks.redzone_check_bytes);
    tracer->add_counter(sid, "vbit_checks", checks.vbit_checks);
    tracer->add_counter(sid, "vbit_check_bytes", checks.vbit_check_bytes);
    tracer->add_counter(sid, "quarantine_pushes", checks.quarantine_pushes);
    tracer->add_counter(sid, "quarantine_push_bytes", checks.quarantine_push_bytes);
    tracer->add_counter(sid, "quarantine_evictions", checks.quarantine_evictions);
    tracer->add_counter(sid, "quarantine_peak_bytes", checks.quarantine_peak_bytes);
    tracer->add_counter(sid, "quarantine_peak_depth", checks.quarantine_peak_depth);
    const shadow::ShadowOpStats& ops = heap.shadow().op_stats();
    tracer->add_counter(sid, "shadow_set_ops",
                        ops.set_accessible_ops + ops.set_valid_ops +
                            ops.set_vbits_ops + ops.set_origin_ops);
    tracer->add_counter(sid, "shadow_set_bytes",
                        ops.set_accessible_bytes + ops.set_valid_bytes +
                            ops.set_origin_bytes);
    tracer->add_counter(sid, "shadow_copy_ops", ops.copy_ops);
    tracer->add_counter(sid, "shadow_copy_bytes", ops.copy_bytes);
    tracer->add_counter(sid, "shadow_pages", ops.pages_materialized);
  }
  {
    support::SpanGuard patches(tracer, "patch_generation");
    report.patches =
        patches_from_violations(report.run.violations, &report.unattributed);
    patches.counter("patches", report.patches.size());
    patches.counter("unattributed", report.unattributed);
  }
  return report;
}

AnalysisReport analyze_attack_set(const progmodel::Program& program,
                                  const cce::Encoder* encoder,
                                  const std::vector<progmodel::Input>& inputs,
                                  const AnalysisConfig& config) {
  AnalysisReport merged;
  bool first = true;
  for (const progmodel::Input& input : inputs) {
    AnalysisReport partial = analyze_attack(program, encoder, input, config);
    if (first) {
      merged.run = std::move(partial.run);
      first = false;
    }
    merged.unattributed += partial.unattributed;
    for (const patch::Patch& p : partial.patches) {
      bool merged_in = false;
      for (patch::Patch& existing : merged.patches) {
        if (existing.fn == p.fn && existing.ccid == p.ccid) {
          existing.vuln_mask |= p.vuln_mask;
          merged_in = true;
          break;
        }
      }
      if (!merged_in) merged.patches.push_back(p);
    }
  }
  return merged;
}

AnalysisReport analyze_attack_partitioned(const progmodel::Program& program,
                                          const cce::Encoder* encoder,
                                          const progmodel::Input& attack_input,
                                          std::uint32_t subspaces,
                                          const AnalysisConfig& config) {
  if (subspaces == 0) subspaces = 1;
  AnalysisReport merged;
  for (std::uint32_t i = 0; i < subspaces; ++i) {
    AnalysisConfig run_config = config;
    run_config.heap.quarantine_filter = [subspaces, i](std::uint64_t ccid) {
      return support::mix64(ccid) % subspaces == i;
    };
    AnalysisReport partial =
        analyze_attack(program, encoder, attack_input, run_config);
    if (i == 0) merged.run = std::move(partial.run);
    merged.unattributed += partial.unattributed;
    for (const patch::Patch& p : partial.patches) {
      bool merged_in = false;
      for (patch::Patch& existing : merged.patches) {
        if (existing.fn == p.fn && existing.ccid == p.ccid) {
          existing.vuln_mask |= p.vuln_mask;
          merged_in = true;
          break;
        }
      }
      if (!merged_in) merged.patches.push_back(p);
    }
  }
  return merged;
}

}  // namespace ht::analysis
