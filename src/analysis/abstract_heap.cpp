#include "analysis/abstract_heap.hpp"

#include <algorithm>

namespace ht::analysis {

std::string interval_bound_string(std::uint64_t bound) {
  return bound == kIntervalMax ? "inf" : std::to_string(bound);
}

std::string interval_string(const Interval& iv) {
  return "[" + interval_bound_string(iv.lo) + ", " +
         interval_bound_string(iv.hi) + "]";
}

Interval resolve_interval(const progmodel::Value& value,
                          const std::vector<ParamBounds>& space) {
  if (!value.is_input()) return Interval::exact(value.literal());
  const std::uint32_t index = value.input_index();
  if (index < space.size()) return Interval{space[index].lo, space[index].hi};
  return Interval::top();
}

const char* buffer_state_name(BufferState state) noexcept {
  switch (state) {
    case BufferState::kUnallocated: return "unallocated";
    case BufferState::kLive: return "live";
    case BufferState::kPossiblyFreed: return "possibly-freed";
    case BufferState::kFreed: return "freed";
  }
  return "?";
}

BufferState join_buffer_state(BufferState a, BufferState b) noexcept {
  if (a == b) return a;
  // kUnallocated joined with anything allocated means "exists on one path
  // only"; the facts stay those of the allocating path (see join_heaps).
  if (a == BufferState::kUnallocated) return b;
  if (b == BufferState::kUnallocated) return a;
  // live vs freed (either flavour) disagree about liveness.
  return BufferState::kPossiblyFreed;
}

void BufferFacts::add_poison(std::uint32_t origin, const Interval& bytes) {
  for (PoisonTaint& taint : poison) {
    if (taint.origin == origin) {
      taint.bytes = taint.bytes.join(bytes);
      return;
    }
  }
  poison.push_back(PoisonTaint{origin, bytes});
  std::sort(poison.begin(), poison.end(),
            [](const PoisonTaint& x, const PoisonTaint& y) {
              return x.origin < y.origin;
            });
}

BufferFacts join_buffer_facts(const BufferFacts& a, const BufferFacts& b) {
  BufferFacts out;
  out.state = join_buffer_state(a.state, b.state);
  out.size = a.size.join(b.size);
  out.must_init_end = std::min(a.must_init_end, b.must_init_end);
  out.poison = a.poison;
  for (const PoisonTaint& taint : b.poison) {
    out.add_poison(taint.origin, taint.bytes);
  }
  return out;
}

BufferFacts& AbstractHeap::facts(std::uint32_t id) {
  if (id >= buffers.size()) buffers.resize(id + 1);
  return buffers[id];
}

void AbstractHeap::set_slot(std::uint32_t slot, std::uint32_t id) {
  if (slot >= slots.size()) slots.resize(slot + 1);
  slots[slot].assign(1, id);
}

AbstractHeap join_heaps(const AbstractHeap& a, const AbstractHeap& b) {
  AbstractHeap out;
  out.buffers.resize(std::max(a.buffers.size(), b.buffers.size()));
  for (std::size_t i = 0; i < out.buffers.size(); ++i) {
    const bool in_a = i < a.buffers.size();
    const bool in_b = i < b.buffers.size();
    if (in_a && in_b) {
      out.buffers[i] = join_buffer_facts(a.buffers[i], b.buffers[i]);
    } else if (in_a) {
      out.buffers[i] = a.buffers[i];
    } else {
      out.buffers[i] = b.buffers[i];
    }
  }
  out.slots.resize(std::max(a.slots.size(), b.slots.size()));
  for (std::size_t i = 0; i < out.slots.size(); ++i) {
    std::vector<std::uint32_t> merged;
    if (i < a.slots.size()) merged = a.slots[i];
    if (i < b.slots.size()) {
      merged.insert(merged.end(), b.slots[i].begin(), b.slots[i].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    out.slots[i] = std::move(merged);
  }
  return out;
}

}  // namespace ht::analysis
