#include "analysis/report.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/symbolize.hpp"
#include "progmodel/interpreter.hpp"

namespace ht::analysis {

namespace {

std::string hex(std::uint64_t v) { return ccid_hex(v); }

}  // namespace

std::string render_report(const progmodel::Program& program,
                          const cce::Encoder& encoder,
                          const progmodel::Input& attack_input,
                          const AnalysisReport& report,
                          const ReportOptions& options) {
  std::ostringstream os;
  os << "== HeapTherapy+ dynamic analysis report ==\n";
  os << "run: " << (report.run.completed ? "completed" : "aborted") << ", "
     << report.run.total_allocs() << " allocations, " << report.run.free_count
     << " frees, " << report.run.violations.size() << " warning(s)\n\n";

  // Decoded patches (symbolization with the degradation policy of
  // analysis/symbolize.hpp: never a silent wrong chain).
  const CcidSymbolizer symbolizer(program, encoder, options.decoder_context_limit);
  // Render in {FUN, CCID} order, not first-detection order: the report must
  // be byte-stable across interpreter scheduling changes (the htlint
  // tie-break discipline).
  std::vector<patch::Patch> patches = report.patches;
  std::sort(patches.begin(), patches.end(), [](const auto& a, const auto& b) {
    return std::tie(a.fn, a.ccid, a.vuln_mask) < std::tie(b.fn, b.ccid, b.vuln_mask);
  });
  os << "patches (" << patches.size() << "):\n";
  for (const patch::Patch& p : patches) {
    os << "  { FUN=" << progmodel::alloc_fn_name(p.fn) << ", CCID=" << hex(p.ccid)
       << ", T=" << patch::vuln_mask_to_string(p.vuln_mask) << " }\n";
    const SymbolizedCcid sym = symbolizer.symbolize(p.fn, p.ccid);
    switch (sym.status) {
      case SymbolizeStatus::kDecoded:
        os << "      allocated at: " << sym.chain << "\n";
        break;
      case SymbolizeStatus::kAmbiguous:
        os << "      allocated at: " << sym.chain
           << "  (note: CCID collision)\n";
        break;
      case SymbolizeStatus::kUnknownCcid:
        os << "      allocated at: <context not reachable statically>\n";
        break;
      case SymbolizeStatus::kNoTargetNode:
        break;  // nothing to decode against — the patch line stands alone
      case SymbolizeStatus::kPlanMismatch:
      case SymbolizeStatus::kUnavailable:
        os << "      allocated at: " << symbolizer.render(p.fn, p.ccid) << "\n";
        break;
    }
  }
  if (report.unattributed > 0) {
    os << "  (+" << report.unattributed
       << " wild access(es) not attributable to any buffer)\n";
  }

  if (options.include_violations && !report.run.violations.empty()) {
    os << "\nwarnings:\n";
    for (const progmodel::Violation& v : report.run.violations) {
      os << "  " << progmodel::access_kind_name(v.outcome.kind) << " ("
         << (v.outcome.is_write ? "write" : "read") << ") in "
         << program.graph().function_name(v.in_function) << ", victim CCID "
         << hex(v.outcome.victim_ccid) << "\n";
    }
  }

  if (options.include_leaks) {
    // Re-run the attack to collect end-of-run heap state for leak checking.
    shadow::SimHeap heap;
    progmodel::Interpreter interp(program, &encoder, heap);
    (void)interp.run(attack_input);
    const auto leaks = heap.leak_report();
    os << "\nleak summary: " << leaks.leaks.size() << " buffer(s), "
       << leaks.total_bytes << " byte(s) still reachable at exit\n";
    for (const auto& leak : leaks.leaks) {
      os << "  " << leak.bytes << " bytes from "
         << progmodel::alloc_fn_name(leak.fn) << " at CCID " << hex(leak.ccid)
         << "\n";
    }
  }
  return os.str();
}

}  // namespace ht::analysis
