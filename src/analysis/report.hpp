// Human-readable rendering of the offline dynamic-analysis report.
//
// The paper's Offline Patch Generator "generates the patch as part of the
// dynamic analysis report" (§V). This renders that report: the generated
// patches with their allocation contexts decoded back to call chains (via
// the TargetedDecoder), the raw warnings, and the leak summary — what a
// vendor's security engineer would read before shipping the config file.
#pragma once

#include <string>

#include "analysis/patch_generator.hpp"
#include "cce/targeted_decoder.hpp"
#include "progmodel/program.hpp"
#include "shadow/sim_heap.hpp"

namespace ht::analysis {

struct ReportOptions {
  bool include_violations = true;
  bool include_leaks = true;
  std::size_t decoder_context_limit = 1 << 16;
};

/// Renders the analysis of `program` under `encoder`. The same analysis
/// configuration used for `report` should be passed so the leak summary is
/// consistent; the leak section is produced by re-running the attack (the
/// report is an offline artifact — a second heavyweight run is fine).
/// Patches render in {FUN, CCID} order regardless of detection order, so
/// the report is byte-stable for a given program + input.
[[nodiscard]] std::string render_report(const progmodel::Program& program,
                                        const cce::Encoder& encoder,
                                        const progmodel::Input& attack_input,
                                        const AnalysisReport& report,
                                        const ReportOptions& options = {});

}  // namespace ht::analysis
