// Attack-input search: find an input that triggers a heap vulnerability.
//
// The paper assumes a collected attack input (or "steps to reproduce",
// §III footnote). In practice the reproduction step itself is often a
// search; this module automates it for synthetic programs: given per-
// parameter ranges, it replays candidate inputs under the shadow heap until
// one produces a warning, preferring boundary values (where length/size
// bugs live) before random sampling. The found input feeds straight into
// analyze_attack.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/patch_generator.hpp"

namespace ht::analysis {

struct ParamRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  ///< inclusive
};

struct InputSearchOptions {
  std::uint64_t max_runs = 256;  ///< replay budget
  std::uint64_t seed = 1;
  AnalysisConfig analysis;
};

struct InputSearchResult {
  /// The first vulnerability-triggering input found, if any.
  std::optional<progmodel::Input> attack_input;
  /// The analysis of that input (patches etc.); meaningful iff found.
  AnalysisReport report;
  std::uint64_t runs = 0;

  [[nodiscard]] bool found() const noexcept { return attack_input.has_value(); }
};

/// Searches `space` (one range per input parameter) for an attack input.
/// Deterministic per seed. Boundary candidates (lo, hi, hi-1, lo+1, powers
/// of two inside the range) are tried before uniform random draws.
[[nodiscard]] InputSearchResult search_attack_input(
    const progmodel::Program& program, const cce::Encoder* encoder,
    const std::vector<ParamRange>& space, const InputSearchOptions& options = {});

}  // namespace ht::analysis
