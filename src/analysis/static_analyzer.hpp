// Context-sensitive static heap-vulnerability analysis (the htlint engine).
//
// Walks Program bodies by abstract interpretation over the domains of
// abstract_heap.hpp, maintaining the *same* TCCE register discipline the
// interpreter uses (cce::CcidRegister updated at exactly the instrumented
// call sites), so every finding and every safety verdict is keyed by the
// {FUN, CCID} identity that patches, telemetry, and the online allocator
// already speak. Each allocation context is classified:
//
//   MUST-OVERFLOW  an access provably exceeds the buffer on every input in
//                  the analysis space
//   MAY-OVERFLOW   some input/path in the space can exceed the buffer
//   UAF            an access can reach a freed (or possibly-freed) buffer
//   DOUBLE-FREE    a buffer can be freed twice (patched as UAF: the
//                  quarantine absorbs the second free)
//   UNINIT-READ    a checked use (branch/address/syscall) can read bytes
//                  never definitely initialized, attributed to the
//                  *origin* allocation (copies carry taint like the shadow
//                  heap's origin tracking)
//   PROVEN-SAFE    no finding attributes to the context and the walk was
//                  exhaustive (never claimed when truncation occurred)
//
// MUST/MAY findings feed the candidate journal (origin "static") for
// htpromote replay-validation — zero-trap immunity; PROVEN-SAFE contexts
// export as a StaticHintSet the runtime uses to elide patch lookups.
// Soundness caveats are documented in docs/STATIC_ANALYSIS.md; the
// differential fuzz suite (tests/analysis/static_soundness_fuzz_test.cpp)
// enforces the load-bearing direction: PROVEN-SAFE is never claimed for a
// context the interpreter can make trap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/abstract_heap.hpp"
#include "analysis/symbolize.hpp"
#include "cce/encoders.hpp"
#include "patch/candidate.hpp"
#include "patch/static_hints.hpp"
#include "progmodel/program.hpp"

namespace ht::analysis {

/// Finding severity/kind, in report order. Overflow distinguishes must/may;
/// the other kinds are inherently "may" (reaching them at all depends on
/// path/input choices the analysis over-approximates).
enum class FindingKind : std::uint8_t {
  kMustOverflow,
  kMayOverflow,
  kUseAfterFree,
  kDoubleFree,
  kUninitRead,
};

inline constexpr std::size_t kFindingKindCount = 5;

/// Stable report token, e.g. "MUST-OVERFLOW".
[[nodiscard]] const char* finding_kind_name(FindingKind kind) noexcept;

/// Inverse of finding_kind_name; false on unknown token.
[[nodiscard]] bool finding_kind_from_name(std::string_view text,
                                          FindingKind& kind) noexcept;

/// The patch vulnerability bit a finding maps to (§V's T field).
[[nodiscard]] std::uint8_t finding_vuln_bit(FindingKind kind) noexcept;

/// One static finding, keyed by the allocation context of the buffer the
/// vulnerability targets (for UNINIT-READ via copies: the origin buffer).
struct StaticFinding {
  progmodel::AllocFn fn = progmodel::AllocFn::kMalloc;
  std::uint64_t ccid = 0;
  FindingKind kind = FindingKind::kMayOverflow;
  cce::FunctionId in_function = cce::kInvalidFunction;
  std::string detail;

  bool operator==(const StaticFinding&) const = default;
};

/// Verdict for one allocation context encountered during the walk.
struct ContextVerdict {
  progmodel::AllocFn fn = progmodel::AllocFn::kMalloc;
  std::uint64_t ccid = 0;
  std::uint8_t finding_mask = 0;  ///< union of finding_vuln_bit per finding
  bool proven_safe = false;       ///< mask == 0 and the walk was exhaustive

  bool operator==(const ContextVerdict&) const = default;
};

struct StaticAnalysisOptions {
  /// Per-parameter bounds for Value::input references; parameters beyond
  /// the vector (or the whole space when empty) resolve to [0, 2^64-1].
  std::vector<ParamBounds> space;
  /// Abstract-action budget; exceeding it truncates (findings stand,
  /// PROVEN-SAFE verdicts are withdrawn).
  std::uint64_t max_steps = 1ULL << 22;
  /// Max simultaneously-active walks of one function (recursion bound,
  /// mirroring enumerate_contexts' cycle-visit cap). Deeper calls are
  /// skipped and truncate the analysis.
  std::uint32_t max_recursion = 2;
  /// Loop fixpoint iteration cap; non-convergence truncates.
  std::uint32_t loop_fixpoint_iters = 4;
};

struct StaticAnalysisResult {
  /// Sorted by {fn, ccid, kind} (then in_function, detail) — byte-stable.
  std::vector<StaticFinding> findings;
  /// Every allocation context walked, sorted by {fn, ccid}.
  std::vector<ContextVerdict> contexts;
  /// The walk hit a bound (steps, recursion, or loop fixpoint): findings
  /// remain genuine path-witnessed facts, but no context is proven safe.
  bool truncated = false;
  std::uint64_t steps = 0;

  /// Union of finding bits for one context (0 when unflagged).
  [[nodiscard]] std::uint8_t finding_mask(progmodel::AllocFn fn,
                                          std::uint64_t ccid) const noexcept;
  /// Flagged contexts as candidate patches (origin "static", hits = the
  /// per-context finding count, first_seen_ns = `now_ns`) — the journal
  /// unit htpromote replay-validates.
  [[nodiscard]] std::vector<patch::PatchCandidate> candidates(
      std::uint64_t now_ns) const;
  /// PROVEN-SAFE contexts as a runtime elision hint set.
  [[nodiscard]] patch::StaticHintSet proven_safe_hints() const;
};

/// Runs the analysis. `encoder` may be null (uninstrumented: every context
/// reports CCID 0, exactly like the interpreter's fallback).
[[nodiscard]] StaticAnalysisResult analyze_program(
    const progmodel::Program& program, const cce::Encoder* encoder,
    const StaticAnalysisOptions& options = {});

/// Deterministic human-readable report. `symbolizer` (optional) resolves
/// each finding's context chain; pass null for raw CCIDs only.
[[nodiscard]] std::string render_static_report(
    const progmodel::Program& program, const StaticAnalysisResult& result,
    const CcidSymbolizer* symbolizer);

/// Deterministic JSON report (same content; machine-readable).
[[nodiscard]] std::string static_report_json(
    const progmodel::Program& program, const StaticAnalysisResult& result,
    const CcidSymbolizer* symbolizer);

/// Baseline reader: parses the findings array back out of a JSON report so
/// CI can suppress known findings. Follows the shared reject /
/// note(capped) / silent-skip policy (support/parse_policy.hpp): a
/// structurally-unparseable file rejects; a findings entry with missing or
/// malformed fields is skipped with a note.
struct BaselineParseResult {
  bool rejected = false;
  std::string reject_reason;
  std::vector<StaticFinding> findings;  ///< identity fields only
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const noexcept { return !rejected; }
};

[[nodiscard]] BaselineParseResult parse_baseline_report(std::string_view json);

}  // namespace ht::analysis
