// CCID symbolization: resolve the opaque calling-context ids that appear in
// patch tables, telemetry dumps, and analysis reports back into symbolic
// call chains ("main -> handler -> malloc").
//
// CCIDs are the deployment currency of HeapTherapy+ — patches name them,
// the online allocator matches on them, telemetry counts by them — but an
// operator reading `htctl stats` sees only 64-bit hex. This wraps
// cce::TargetedDecoder (which inverts the deployed encoder over the
// program's enumerated contexts) behind a fallback policy: every lookup
// yields *something* printable, degrading to the raw id plus a warning when
// decoding is impossible:
//
//  - kUnknownCcid   — no enumerated context encodes to this id (stale table,
//                     wrong strategy, or a context pruned by the limits);
//  - kAmbiguous     — several contexts collide on the id (possible for PCC
//                     with astronomically low probability; certain for
//                     degenerate encoders) — an honest tool must not pick
//                     one silently;
//  - kNoTargetNode  — the program has no node for that allocation function;
//  - kPlanMismatch  — the loaded encoding plan does not match the program /
//                     patch table (e.g. plan-file fingerprint rejection),
//                     so *no* decode can be trusted (`mark_mismatch`);
//  - kUnavailable   — context enumeration blew the configured limit, so the
//                     decoder could not be built at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "cce/targeted_decoder.hpp"
#include "progmodel/program.hpp"

namespace ht::analysis {

enum class SymbolizeStatus : std::uint8_t {
  kDecoded,
  kAmbiguous,
  kUnknownCcid,
  kNoTargetNode,
  kPlanMismatch,
  kUnavailable,
};

[[nodiscard]] std::string_view symbolize_status_name(SymbolizeStatus status) noexcept;

struct SymbolizedCcid {
  SymbolizeStatus status = SymbolizeStatus::kUnknownCcid;
  /// Decoded call chain; filled for kDecoded and (first candidate) for
  /// kAmbiguous, empty otherwise.
  std::string chain;
  /// Human-readable degradation reason; empty for kDecoded.
  std::string warning;

  [[nodiscard]] bool decoded() const noexcept {
    return status == SymbolizeStatus::kDecoded;
  }
};

/// Renders a CCID as zero-padded hex ("0x0000000000000042") — the raw form
/// every degraded symbolization falls back to.
[[nodiscard]] std::string ccid_hex(std::uint64_t ccid);

class CcidSymbolizer {
 public:
  /// Builds the decoder index over `program`'s contexts under `encoder`.
  /// Both must outlive the symbolizer. If enumeration exceeds
  /// `context_limit`, the symbolizer stays usable and reports kUnavailable
  /// for every lookup (never throws).
  CcidSymbolizer(const progmodel::Program& program, const cce::Encoder& encoder,
                 std::size_t context_limit = 1 << 16);

  /// Degrades every subsequent lookup to kPlanMismatch with `reason` —
  /// called when the loaded encoding plan failed validation against the
  /// program or the patch table's provenance, meaning any decode would be
  /// actively misleading.
  void mark_mismatch(std::string reason);
  [[nodiscard]] bool mismatched() const noexcept { return mismatch_.has_value(); }

  [[nodiscard]] SymbolizedCcid symbolize(progmodel::AllocFn fn,
                                         std::uint64_t ccid) const;

  /// One-line rendering with the fallback policy applied: the call chain
  /// when decoded, otherwise "0x... (!<warning>)".
  [[nodiscard]] std::string render(progmodel::AllocFn fn, std::uint64_t ccid) const;

 private:
  const progmodel::Program& program_;
  std::optional<cce::TargetedDecoder> decoder_;
  std::string unavailable_reason_;
  std::optional<std::string> mismatch_;
};

}  // namespace ht::analysis
