// Abstract heap domains for the static analyzer (htlint).
//
// The static analyzer executes Program bodies over *abstract* values: every
// size / offset / length / loop count becomes an interval [lo, hi] covering
// all values it can take (literals are exact; input parameters span the
// analyst-provided ParamRange space, or [0, 2^64-1] when unbounded), and
// every allocation context gets one summary buffer whose facts form a
// lattice:
//
//  - a liveness state (unallocated -> live -> possibly-freed / freed),
//  - a definitely-initialized byte prefix [0, must_init_end) — the
//    interval-domain analogue of the shadow heap's V-bits,
//  - a set of poison taints: byte ranges that may hold *another* buffer's
//    uninitialized bytes, carried origin-tagged through kCopy actions
//    exactly like the shadow heap's origin tracking, so UNINIT findings
//    attribute to the allocation that produced the bytes, not the buffer
//    they were read from.
//
// Joins are pointwise and conservative: states meet upward (live vs freed
// -> possibly-freed), sizes take the hull, init prefixes take the minimum,
// taints union. All arithmetic saturates at 2^64-1 so "unbounded" inputs
// stay representable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "progmodel/values.hpp"

namespace ht::analysis {

inline constexpr std::uint64_t kIntervalMax = ~0ULL;

[[nodiscard]] constexpr std::uint64_t sat_add(std::uint64_t a,
                                              std::uint64_t b) noexcept {
  return a > kIntervalMax - b ? kIntervalMax : a + b;
}

/// Closed unsigned interval [lo, hi]; the domain for every abstract value.
struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  [[nodiscard]] static constexpr Interval exact(std::uint64_t v) noexcept {
    return Interval{v, v};
  }
  [[nodiscard]] static constexpr Interval top() noexcept {
    return Interval{0, kIntervalMax};
  }

  [[nodiscard]] constexpr bool is_exact() const noexcept { return lo == hi; }

  /// Hull of the two intervals.
  [[nodiscard]] constexpr Interval join(const Interval& o) const noexcept {
    return Interval{lo < o.lo ? lo : o.lo, hi > o.hi ? hi : o.hi};
  }
  /// Interval sum with saturation.
  [[nodiscard]] constexpr Interval add(const Interval& o) const noexcept {
    return Interval{sat_add(lo, o.lo), sat_add(hi, o.hi)};
  }

  bool operator==(const Interval&) const = default;
};

/// Renders an interval bound, with the saturation point printed as "inf".
[[nodiscard]] std::string interval_bound_string(std::uint64_t bound);
/// "[lo, hi]" (or "[lo, inf]") — deterministic report form.
[[nodiscard]] std::string interval_string(const Interval& iv);

/// Resolves a program Value over the analysis input space: literals are
/// exact; input parameter i spans space[i] when provided, else top.
struct ParamBounds {
  std::uint64_t lo = 0;
  std::uint64_t hi = kIntervalMax;  ///< inclusive
};

[[nodiscard]] Interval resolve_interval(const progmodel::Value& value,
                                        const std::vector<ParamBounds>& space);

/// Liveness lattice for a summary buffer. Join moves upward to
/// kPossiblyFreed whenever the two sides disagree about liveness.
enum class BufferState : std::uint8_t {
  kUnallocated,
  kLive,
  kPossiblyFreed,
  kFreed,
};

[[nodiscard]] const char* buffer_state_name(BufferState state) noexcept;
[[nodiscard]] BufferState join_buffer_state(BufferState a, BufferState b) noexcept;

/// One origin-tagged taint: bytes [bytes.lo, bytes.hi) of the holding
/// buffer may contain uninitialized bytes that originated in buffer
/// `origin` (an abstract buffer id). Kept as one hull per origin.
struct PoisonTaint {
  std::uint32_t origin = 0;
  Interval bytes;

  bool operator==(const PoisonTaint&) const = default;
};

/// Flow-sensitive facts for one summary buffer (one {alloc site, CCID}).
struct BufferFacts {
  BufferState state = BufferState::kUnallocated;
  Interval size;
  /// Bytes [0, must_init_end) are initialized on every path/input.
  /// kIntervalMax models calloc's "everything, whatever the size".
  std::uint64_t must_init_end = 0;
  std::vector<PoisonTaint> poison;  ///< sorted by origin, one hull each

  void add_poison(std::uint32_t origin, const Interval& bytes);

  bool operator==(const BufferFacts&) const = default;
};

[[nodiscard]] BufferFacts join_buffer_facts(const BufferFacts& a,
                                            const BufferFacts& b);

/// The abstract machine state: per-buffer facts (indexed by abstract buffer
/// id, assigned in walk order) plus per-slot points-to sets. A slot set
/// with several members means the slot may hold any of them (loop joins);
/// accesses then apply to each member at demoted certainty.
struct AbstractHeap {
  std::vector<BufferFacts> buffers;
  std::vector<std::vector<std::uint32_t>> slots;  ///< sorted id sets

  /// Facts for `id`, materializing defaults as needed.
  [[nodiscard]] BufferFacts& facts(std::uint32_t id);

  /// Strong update: the slot now holds exactly `id`.
  void set_slot(std::uint32_t slot, std::uint32_t id);

  bool operator==(const AbstractHeap&) const = default;
};

/// Pointwise join; buffers present on one side only are taken verbatim
/// (their facts are conditional on the path that created them — accesses
/// reach them only through slot sets that also record that path).
[[nodiscard]] AbstractHeap join_heaps(const AbstractHeap& a,
                                      const AbstractHeap& b);

}  // namespace ht::analysis
