#include "analysis/input_search.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace ht::analysis {

namespace {

/// Interesting per-parameter candidates: range ends, near-ends, and powers
/// of two inside the range — where off-by-one and size-confusion bugs live.
std::vector<std::uint64_t> boundary_values(const ParamRange& range) {
  std::vector<std::uint64_t> values{range.lo, range.hi};
  if (range.hi > range.lo) {
    values.push_back(range.lo + 1);
    values.push_back(range.hi - 1);
    const std::uint64_t mid = range.lo + (range.hi - range.lo) / 2;
    values.push_back(mid);
    for (std::uint64_t p = 1; p != 0 && p <= range.hi; p <<= 1) {
      if (p >= range.lo) values.push_back(p);
      if (p > range.lo && p - 1 >= range.lo && p - 1 <= range.hi) {
        values.push_back(p - 1);
      }
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

/// Per-phase replay counts, reported on the `input_search` trace span.
struct PhaseRuns {
  std::uint64_t boundary = 0;
  std::uint64_t pairwise = 0;
  std::uint64_t random = 0;
};

InputSearchResult search_impl(const progmodel::Program& program,
                              const cce::Encoder* encoder,
                              const std::vector<ParamRange>& space,
                              const InputSearchOptions& options,
                              PhaseRuns& phases) {
  InputSearchResult result;
  support::Rng rng(options.seed);

  const auto try_input = [&](const progmodel::Input& input) -> bool {
    if (result.runs >= options.max_runs) return false;
    ++result.runs;
    AnalysisReport report =
        analyze_attack(program, encoder, input, options.analysis);
    if (report.attack_detected()) {
      result.attack_input = input;
      result.report = std::move(report);
      return true;
    }
    return false;
  };

  // Phase 1: boundary combinations, one parameter stressed at a time while
  // the others sit at their midpoint (covers the common single-length-field
  // bugs with O(params x boundaries) runs, not a cross product).
  progmodel::Input base;
  for (const ParamRange& range : space) {
    base.params.push_back(range.lo + (range.hi - range.lo) / 2);
  }
  for (std::size_t i = 0; i < space.size(); ++i) {
    for (std::uint64_t value : boundary_values(space[i])) {
      progmodel::Input candidate = base;
      candidate.params[i] = value;
      const bool hit = try_input(candidate);
      phases.boundary = result.runs;
      if (hit || result.runs >= options.max_runs) return result;
    }
  }

  // Phase 2: pairwise boundary stress (two parameters at extremes), for
  // bugs needing two coordinates (e.g. Heartbleed's payload+response).
  for (std::size_t i = 0; i < space.size(); ++i) {
    for (std::size_t j = i + 1; j < space.size(); ++j) {
      for (std::uint64_t vi : {space[i].lo, space[i].hi}) {
        for (std::uint64_t vj : {space[j].lo, space[j].hi}) {
          progmodel::Input candidate = base;
          candidate.params[i] = vi;
          candidate.params[j] = vj;
          const bool hit = try_input(candidate);
          phases.pairwise = result.runs - phases.boundary;
          if (hit || result.runs >= options.max_runs) return result;
        }
      }
    }
  }

  // Phase 3: uniform random until the budget runs out.
  while (result.runs < options.max_runs) {
    progmodel::Input candidate;
    for (const ParamRange& range : space) {
      candidate.params.push_back(rng.range(range.lo, range.hi));
    }
    const bool hit = try_input(candidate);
    phases.random = result.runs - phases.boundary - phases.pairwise;
    if (hit) return result;
  }
  return result;
}

}  // namespace

InputSearchResult search_attack_input(const progmodel::Program& program,
                                      const cce::Encoder* encoder,
                                      const std::vector<ParamRange>& space,
                                      const InputSearchOptions& options) {
  support::SpanGuard span(options.analysis.tracer, "input_search");
  PhaseRuns phases;
  InputSearchResult result = search_impl(program, encoder, space, options, phases);
  if (span.active()) {
    span.counter("runs", result.runs);
    span.counter("boundary_runs", phases.boundary);
    span.counter("pairwise_runs", phases.pairwise);
    span.counter("random_runs", phases.random);
    span.counter("found", result.found() ? 1 : 0);
  }
  return result;
}

}  // namespace ht::analysis
