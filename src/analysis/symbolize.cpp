#include "analysis/symbolize.hpp"

#include <cstdio>
#include <stdexcept>

namespace ht::analysis {

std::string_view symbolize_status_name(SymbolizeStatus status) noexcept {
  switch (status) {
    case SymbolizeStatus::kDecoded: return "decoded";
    case SymbolizeStatus::kAmbiguous: return "ambiguous";
    case SymbolizeStatus::kUnknownCcid: return "unknown-ccid";
    case SymbolizeStatus::kNoTargetNode: return "no-target-node";
    case SymbolizeStatus::kPlanMismatch: return "plan-mismatch";
    case SymbolizeStatus::kUnavailable: return "decoder-unavailable";
  }
  return "?";
}

std::string ccid_hex(std::uint64_t ccid) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(ccid));
  return buf;
}

CcidSymbolizer::CcidSymbolizer(const progmodel::Program& program,
                               const cce::Encoder& encoder,
                               std::size_t context_limit)
    : program_(program) {
  try {
    decoder_.emplace(program.graph(), program.entry(), program.alloc_targets(),
                     encoder, context_limit);
  } catch (const std::exception& e) {
    // Typically std::length_error: a target's context set exceeded the
    // limit. Symbolization degrades rather than propagating the failure
    // into report/CLI paths.
    unavailable_reason_ = std::string("decoder unavailable: ") + e.what();
  }
}

void CcidSymbolizer::mark_mismatch(std::string reason) {
  mismatch_ = std::move(reason);
}

SymbolizedCcid CcidSymbolizer::symbolize(progmodel::AllocFn fn,
                                         std::uint64_t ccid) const {
  SymbolizedCcid out;
  if (mismatch_.has_value()) {
    out.status = SymbolizeStatus::kPlanMismatch;
    out.warning = "encoding plan mismatch: " + *mismatch_;
    return out;
  }
  if (!decoder_.has_value()) {
    out.status = SymbolizeStatus::kUnavailable;
    out.warning = unavailable_reason_;
    return out;
  }
  const cce::FunctionId target = program_.alloc_fn_node(fn);
  if (target == cce::kInvalidFunction) {
    out.status = SymbolizeStatus::kNoTargetNode;
    out.warning = std::string("program has no node for ") +
                  std::string(progmodel::alloc_fn_name(fn));
    return out;
  }
  const std::optional<cce::CallingContext> context = decoder_->decode(target, ccid);
  if (!context.has_value()) {
    out.status = SymbolizeStatus::kUnknownCcid;
    out.warning = "no calling context encodes to this CCID";
    return out;
  }
  out.chain = cce::TargetedDecoder::format_context(program_.graph(),
                                                   program_.entry(), *context);
  if (decoder_->ambiguous(target, ccid)) {
    out.status = SymbolizeStatus::kAmbiguous;
    out.warning = "CCID collision: multiple contexts share this id";
  } else {
    out.status = SymbolizeStatus::kDecoded;
  }
  return out;
}

std::string CcidSymbolizer::render(progmodel::AllocFn fn,
                                   std::uint64_t ccid) const {
  const SymbolizedCcid sym = symbolize(fn, ccid);
  if (sym.decoded()) return sym.chain;
  // Degraded: always the raw id, never a guess — an ambiguous decode prints
  // raw too, because showing one of several colliding chains would be a lie.
  return ccid_hex(ccid) + " (!" + sym.warning + ")";
}

}  // namespace ht::analysis
