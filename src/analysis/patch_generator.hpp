// Offline attack analysis and patch generation (§V).
//
// Runs the vulnerable (instrumented) program on the attack input against the
// shadow-memory heap, resumes past warnings so one input can expose several
// vulnerabilities (the Heartbleed case), then folds the warnings into
// patches: one {FUN, CCID, T} per victim allocation context, with the
// vulnerability-type bits OR-ed across warnings — the "script that processes
// the many warnings according to the origin" from the paper.
#pragma once

#include <vector>

#include "cce/encoders.hpp"
#include "patch/patch.hpp"
#include "progmodel/interpreter.hpp"
#include "progmodel/program.hpp"
#include "shadow/sim_heap.hpp"
#include "support/trace.hpp"

namespace ht::analysis {

struct AnalysisConfig {
  shadow::SimHeapConfig heap;
  progmodel::RunOptions run;
  /// Offline-pipeline tracer. When set, each analysis execution records an
  /// `analyze_attack` span with `replay` (+ nested `interpreter.run`),
  /// `shadow_checks` (re-attributed from SimHeap's accumulated check time,
  /// carrying the shadow-op volume counters), and `patch_generation` child
  /// spans; SimHeap trace-stat collection is switched on automatically.
  /// Null (the default) keeps the pipeline on its untraced fast path.
  support::Tracer* tracer = nullptr;
};

struct AnalysisReport {
  /// The full offline run (violations carry victim CCIDs and functions).
  progmodel::RunResult run;
  /// Deduplicated patches, in first-detection order.
  std::vector<patch::Patch> patches;
  /// Violations that could not be attributed to a buffer (wild accesses);
  /// these cannot be patched by allocation-context defenses.
  std::size_t unattributed = 0;

  [[nodiscard]] bool attack_detected() const noexcept { return !patches.empty(); }
};

/// Converts a backend violation kind to the patch type bit (0 if the kind
/// carries no patchable type, e.g. wild accesses).
[[nodiscard]] std::uint8_t vuln_bit_for(progmodel::AccessKind kind) noexcept;

/// Folds a run's violations into deduplicated patches.
[[nodiscard]] std::vector<patch::Patch> patches_from_violations(
    const std::vector<progmodel::Violation>& violations, std::size_t* unattributed);

/// One offline analysis execution: replay `attack_input` and generate
/// patches. The encoder must be the same one the online system will use —
/// CCIDs in patches only match if encoding is identical across phases.
[[nodiscard]] AnalysisReport analyze_attack(const progmodel::Program& program,
                                            const cce::Encoder* encoder,
                                            const progmodel::Input& attack_input,
                                            const AnalysisConfig& config = {});

/// Analyzes several collected inputs (the paper gathered multiple attack
/// inputs from the Internet for Heartbleed, §VIII-A) and merges the
/// resulting patches: duplicate {FUN, CCID} keys OR their masks. The run
/// field holds the first input's run; `unattributed` sums across inputs.
[[nodiscard]] AnalysisReport analyze_attack_set(
    const progmodel::Program& program, const cce::Encoder* encoder,
    const std::vector<progmodel::Input>& inputs, const AnalysisConfig& config = {});

/// §IX multi-execution replay for memory-constrained UAF analysis: the CCID
/// space is divided into `subspaces` partitions; execution i quarantines
/// only buffers whose CCID falls into partition i, so each execution needs
/// roughly 1/N of the quarantine memory. Patches are merged across runs.
[[nodiscard]] AnalysisReport analyze_attack_partitioned(
    const progmodel::Program& program, const cce::Encoder* encoder,
    const progmodel::Input& attack_input, std::uint32_t subspaces,
    const AnalysisConfig& config = {});

}  // namespace ht::analysis
