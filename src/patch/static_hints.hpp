// Static elision hints: the PROVEN-SAFE half of the analyze-then-immunize
// loop.
//
// htlint's abstract interpretation classifies allocation contexts; the
// MUST/MAY findings feed the candidate journal, and the PROVEN-SAFE contexts
// are exported here — a {FUN, CCID} set the runtime may treat as "no patch
// will ever target this context", skipping the patch-table lookup entirely
// on the allocation hot path (ShadowBound-style check elision, PAPERS.md).
// Hints are advisory: a context absent from the set merely takes the normal
// lookup path, and a hint for a context that later acquires a patch is a
// soundness bug in the *analyzer*, never in the runtime.
//
// File format (docs/FORMATS.md §9):
//
//   # HeapTherapy+ static elision hints
//   version 1
//   safe <alloc_fn> <ccid>
//
// Parsing follows the shared reject / note(capped) / silent-skip policy
// (support/parse_policy.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "progmodel/values.hpp"
#include "support/parse_policy.hpp"

namespace ht::patch {

/// Sorted immutable {FUN, CCID} set with O(log n) allocation-path lookups.
class StaticHintSet {
 public:
  struct Hint {
    progmodel::AllocFn fn = progmodel::AllocFn::kMalloc;
    std::uint64_t ccid = 0;

    bool operator==(const Hint&) const = default;
    auto operator<=>(const Hint&) const = default;
  };

  StaticHintSet() = default;
  explicit StaticHintSet(std::vector<Hint> hints);

  /// True iff {fn, ccid} was proven safe. Hot-path: one open-addressing
  /// probe (same shape and cost as the PatchTable lookup it elides), no
  /// allocation, noexcept.
  [[nodiscard]] bool contains(progmodel::AllocFn fn,
                              std::uint64_t ccid) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return hints_.size(); }
  [[nodiscard]] bool empty() const noexcept { return hints_.empty(); }
  [[nodiscard]] const std::vector<Hint>& hints() const noexcept { return hints_; }

  /// Text form (header + sorted `safe` lines) — byte-stable for a given set.
  [[nodiscard]] std::string serialize() const;

 private:
  struct Slot {
    std::uint64_t key_hash = 0;  ///< 0 = empty (hash is forced non-zero)
    std::uint64_t ccid = 0;
    std::uint8_t fn = 0;
  };

  std::vector<Hint> hints_;  // sorted, deduplicated
  std::vector<Slot> slots_;  // open addressing, power-of-two, <=25% load
};

/// Parse outcome under the shared error taxonomy: reject voids the file,
/// notes are capped at kParseNoteCap, comments/blanks silently skip.
struct StaticHintParseResult {
  bool rejected = false;
  std::string reject_reason;
  StaticHintSet hints;
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const noexcept { return !rejected; }
};

[[nodiscard]] StaticHintParseResult parse_static_hints(std::string_view text);

/// Reads and parses a hint file. nullopt when the file cannot be read.
[[nodiscard]] std::optional<StaticHintParseResult> load_static_hints(
    const std::string& path);

/// Writes the serialized set to `path`. Returns false on I/O failure.
[[nodiscard]] bool save_static_hints(const std::string& path,
                                     const StaticHintSet& hints);

}  // namespace ht::patch
