#include "patch/patch.hpp"

#include "support/str.hpp"

namespace ht::patch {

std::string vuln_mask_to_string(std::uint8_t mask) {
  std::string out;
  const auto append = [&out](std::string_view token) {
    if (!out.empty()) out += '|';
    out += token;
  };
  if (mask & kOverflow) append("OVERFLOW");
  if (mask & kUseAfterFree) append("UAF");
  if (mask & kUninitRead) append("UNINIT");
  if (out.empty()) out = "NONE";
  return out;
}

bool vuln_mask_from_string(std::string_view text, std::uint8_t& mask) {
  mask = 0;
  if (support::trim(text) == "NONE") return true;
  for (std::string_view token : support::split(text, '|')) {
    token = support::trim(token);
    if (token == "OVERFLOW") {
      mask |= kOverflow;
    } else if (token == "UAF") {
      mask |= kUseAfterFree;
    } else if (token == "UNINIT") {
      mask |= kUninitRead;
    } else {
      return false;
    }
  }
  return mask != 0;
}

}  // namespace ht::patch
