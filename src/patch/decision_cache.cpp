#include "patch/decision_cache.hpp"

#include "support/hash.hpp"

namespace ht::patch {

std::uint8_t DecisionCache::lookup(const PatchTable& table, progmodel::AllocFn fn,
                                   std::uint64_t ccid) noexcept {
  const std::uint64_t key =
      support::mix64(ccid ^ (static_cast<std::uint64_t>(fn) << 56));
  Entry& e = entries_[static_cast<std::size_t>(key) & (kEntries - 1)];
  const std::uint64_t generation = table.generation();
  if (e.generation == generation && e.ccid == ccid &&
      e.fn == static_cast<std::uint8_t>(fn)) {
    ++hits_;
    return e.mask;
  }
  ++misses_;
  const std::uint8_t mask = table.lookup(fn, ccid);
  e.generation = generation;
  e.ccid = ccid;
  e.fn = static_cast<std::uint8_t>(fn);
  e.mask = mask;
  return mask;
}

void DecisionCache::clear() noexcept {
  for (Entry& e : entries_) e = Entry{};
  hits_ = misses_ = 0;
}

DecisionCache& DecisionCache::for_current_thread() noexcept {
  // Zero-initialized POD: constant-initialized TLS, no dynamic constructor,
  // no guard variable — safe inside the interposed allocation path.
  thread_local DecisionCache cache;
  return cache;
}

}  // namespace ht::patch
