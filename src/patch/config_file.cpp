#include "patch/config_file.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/str.hpp"

namespace ht::patch {

namespace {

std::optional<progmodel::AllocFn> alloc_fn_from_name(std::string_view name) {
  for (progmodel::AllocFn fn : progmodel::kAllAllocFns) {
    if (progmodel::alloc_fn_name(fn) == name) return fn;
  }
  return std::nullopt;
}

}  // namespace

std::string serialize_config(const std::vector<Patch>& patches) {
  std::ostringstream os;
  os << "# HeapTherapy+ patch configuration\n";
  os << "version 1\n";
  for (const Patch& p : patches) {
    char ccid_hex[32];
    std::snprintf(ccid_hex, sizeof(ccid_hex), "0x%016llx",
                  static_cast<unsigned long long>(p.ccid));
    os << "patch " << progmodel::alloc_fn_name(p.fn) << ' ' << ccid_hex << ' '
       << vuln_mask_to_string(p.vuln_mask) << '\n';
  }
  return os.str();
}

ParseResult parse_config(std::string_view text) {
  ParseResult result;
  std::size_t line_no = 0;
  bool version_seen = false;

  for (std::string_view raw_line : support::split(text, '\n')) {
    ++line_no;
    std::string_view line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    const auto error = [&](const std::string& message) {
      result.errors.push_back("line " + std::to_string(line_no) + ": " + message);
    };

    if (support::starts_with(line, "version")) {
      const auto fields = support::split(line, ' ');
      if (fields.size() < 2 || support::parse_u64(fields[1]) != 1) {
        error("unsupported config version");
      } else {
        version_seen = true;
      }
      continue;
    }
    if (!support::starts_with(line, "patch")) {
      error("unknown directive");
      continue;
    }

    // patch <fn> <ccid> <mask>
    std::vector<std::string_view> fields;
    for (std::string_view f : support::split(line, ' ')) {
      if (!support::trim(f).empty()) fields.push_back(support::trim(f));
    }
    if (fields.size() != 4) {
      error("expected: patch <alloc_fn> <ccid> <vuln_mask>");
      continue;
    }
    const auto fn = alloc_fn_from_name(fields[1]);
    if (!fn) {
      error("unknown allocation function '" + std::string(fields[1]) + "'");
      continue;
    }
    const auto ccid = support::parse_u64(fields[2]);
    if (!ccid) {
      error("bad CCID '" + std::string(fields[2]) + "'");
      continue;
    }
    std::uint8_t mask = 0;
    if (!vuln_mask_from_string(fields[3], mask)) {
      error("bad vulnerability mask '" + std::string(fields[3]) + "'");
      continue;
    }
    result.patches.push_back(Patch{*fn, *ccid, mask});
  }

  if (!result.patches.empty() && !version_seen) {
    result.errors.push_back("missing 'version' directive");
  }
  return result;
}

bool save_config_file(const std::string& path, const std::vector<Patch>& patches) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << serialize_config(patches);
  return static_cast<bool>(out);
}

std::optional<ParseResult> load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_config(buffer.str());
}

}  // namespace ht::patch
