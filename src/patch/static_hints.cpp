#include "patch/static_hints.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/hash.hpp"
#include "support/str.hpp"

namespace ht::patch {

namespace {

constexpr const char* kHintHeader = "# HeapTherapy+ static elision hints\n";

std::optional<progmodel::AllocFn> alloc_fn_from_name(std::string_view name) {
  for (progmodel::AllocFn fn : progmodel::kAllAllocFns) {
    if (progmodel::alloc_fn_name(fn) == name) return fn;
  }
  return std::nullopt;
}

/// Same key mixing as PatchTable::slot_hash: the elision probe must cost no
/// more than the table probe it replaces.
std::uint64_t hint_hash(progmodel::AllocFn fn, std::uint64_t ccid) noexcept {
  const std::uint64_t h =
      support::mix64(ccid ^ (static_cast<std::uint64_t>(fn) << 56));
  return h == 0 ? 1 : h;  // reserve 0 for "empty slot"
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

StaticHintSet::StaticHintSet(std::vector<Hint> hints) : hints_(std::move(hints)) {
  std::sort(hints_.begin(), hints_.end());
  hints_.erase(std::unique(hints_.begin(), hints_.end()), hints_.end());
  // Low load factor (<= 25%) keeps probe sequences short on the hot path.
  slots_.resize(round_up_pow2(hints_.size() * 4 + 8));
  for (const Hint& h : hints_) {
    const std::uint64_t hash = hint_hash(h.fn, h.ccid);
    std::size_t i = static_cast<std::size_t>(hash) & (slots_.size() - 1);
    while (slots_[i].key_hash != 0) i = (i + 1) & (slots_.size() - 1);
    slots_[i] = Slot{hash, h.ccid, static_cast<std::uint8_t>(h.fn)};
  }
}

bool StaticHintSet::contains(progmodel::AllocFn fn,
                             std::uint64_t ccid) const noexcept {
  if (hints_.empty()) return false;
  const std::uint64_t hash = hint_hash(fn, ccid);
  std::size_t i = static_cast<std::size_t>(hash) & (slots_.size() - 1);
  for (;;) {
    const Slot& slot = slots_[i];
    if (slot.key_hash == 0) return false;
    if (slot.key_hash == hash && slot.ccid == ccid &&
        slot.fn == static_cast<std::uint8_t>(fn)) {
      return true;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

std::string StaticHintSet::serialize() const {
  std::ostringstream os;
  os << kHintHeader << "version 1\n";
  for (const Hint& h : hints_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(h.ccid));
    os << "safe " << progmodel::alloc_fn_name(h.fn) << ' ' << buf << '\n';
  }
  return os.str();
}

StaticHintParseResult parse_static_hints(std::string_view text) {
  StaticHintParseResult result;
  std::size_t line_no = 0;
  bool version_seen = false;
  std::vector<StaticHintSet::Hint> hints;

  support::NoteLimiter limiter(result.notes, support::kParseNoteCap);
  const auto note = [&](const std::string& message) {
    limiter.add("line " + std::to_string(line_no) + ": " + message);
  };

  for (std::string_view raw_line : support::split(text, '\n')) {
    ++line_no;
    std::string_view line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string_view> fields;
    for (std::string_view f : support::split(line, ' ')) {
      if (!support::trim(f).empty()) fields.push_back(support::trim(f));
    }
    if (fields.empty()) continue;

    if (fields[0] == "version") {
      if (fields.size() < 2 || support::parse_u64(fields[1]) != 1) {
        result.rejected = true;
        result.reject_reason =
            "line " + std::to_string(line_no) + ": unsupported hints version";
        return result;
      }
      version_seen = true;
      continue;
    }

    if (fields[0] == "safe") {
      if (fields.size() != 3) {
        note("expected: safe <fn> <ccid>");
        continue;
      }
      const auto fn = alloc_fn_from_name(fields[1]);
      if (!fn) {
        note("unknown allocation function '" + std::string(fields[1]) + "'");
        continue;
      }
      const auto ccid = support::parse_u64(fields[2]);
      if (!ccid) {
        note("bad CCID '" + std::string(fields[2]) + "'");
        continue;
      }
      hints.push_back(StaticHintSet::Hint{*fn, *ccid});
      continue;
    }

    note("unknown directive '" + std::string(fields[0]) + "'");
  }

  if (!hints.empty() && !version_seen) {
    result.rejected = true;
    result.reject_reason = "missing 'version' directive";
    return result;
  }
  limiter.append_suppressed_summary();
  result.hints = StaticHintSet(std::move(hints));
  return result;
}

std::optional<StaticHintParseResult> load_static_hints(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_static_hints(buffer.str());
}

bool save_static_hints(const std::string& path, const StaticHintSet& hints) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << hints.serialize();
  return static_cast<bool>(out);
}

}  // namespace ht::patch
