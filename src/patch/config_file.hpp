// Patch configuration files — the deployment vehicle of code-less patching.
//
// The offline patch generator appends patches here; the online defense
// library reads the file at program start (§VI). Text format, one patch per
// line, stable across versions:
//
//   # HeapTherapy+ patch configuration
//   version 1
//   patch <alloc_fn> <ccid> <vuln_mask>
//
// e.g. "patch malloc 0x1f3a77b2c4d5e6f7 OVERFLOW|UNINIT".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "patch/patch.hpp"

namespace ht::patch {

/// Serializes patches (stable ordering preserved) to config-file text.
[[nodiscard]] std::string serialize_config(const std::vector<Patch>& patches);

struct ParseResult {
  std::vector<Patch> patches;
  std::vector<std::string> errors;  ///< "line N: message" diagnostics

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parses config-file text. Unknown lines/fields produce diagnostics but do
/// not abort the parse — a malformed line must never disable the valid
/// patches around it (defense availability beats strictness).
[[nodiscard]] ParseResult parse_config(std::string_view text);

/// Convenience file I/O. Load returns nullopt if the file cannot be read.
[[nodiscard]] bool save_config_file(const std::string& path,
                                    const std::vector<Patch>& patches);
[[nodiscard]] std::optional<ParseResult> load_config_file(const std::string& path);

}  // namespace ht::patch
