#include "patch/candidate.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/hash.hpp"
#include "support/str.hpp"

namespace ht::patch {

namespace {

constexpr const char* kJournalHeader =
    "# HeapTherapy+ candidate quarantine\nversion 1\n";

std::optional<progmodel::AllocFn> alloc_fn_from_name(std::string_view name) {
  for (progmodel::AllocFn fn : progmodel::kAllAllocFns) {
    if (progmodel::alloc_fn_name(fn) == name) return fn;
  }
  return std::nullopt;
}

void append_ccid_hex(std::ostringstream& os, std::uint64_t ccid) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(ccid));
  os << buf;
}

/// Single O_APPEND write of `text`, prefixed by the journal header iff the
/// file is empty at open time. Two processes racing an empty file can both
/// prepend the header; the parser silently skips the duplicate.
bool append_journal_text(const std::string& path, const std::string& text) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  struct stat st{};
  std::string payload;
  if (::fstat(fd, &st) == 0 && st.st_size == 0) payload += kJournalHeader;
  payload += text;
  bool ok = true;
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return ok;
}

}  // namespace

const char* candidate_origin_name(CandidateOrigin origin) noexcept {
  switch (origin) {
    case CandidateOrigin::kGuardTrap: return "guard_trap";
    case CandidateOrigin::kOobLanded: return "oob_landed";
    case CandidateOrigin::kUafReuse: return "uaf_reuse";
    case CandidateOrigin::kCanary: return "canary";
    case CandidateOrigin::kStatic: return "static";
  }
  return "unknown";
}

bool candidate_origin_from_name(std::string_view text,
                                CandidateOrigin& origin) noexcept {
  for (std::size_t i = 0; i < kCandidateOriginCount; ++i) {
    const auto value = static_cast<CandidateOrigin>(i);
    if (text == candidate_origin_name(value)) {
      origin = value;
      return true;
    }
  }
  return false;
}

std::uint8_t candidate_default_mask(CandidateOrigin origin) noexcept {
  switch (origin) {
    case CandidateOrigin::kGuardTrap:
    case CandidateOrigin::kOobLanded:
    case CandidateOrigin::kCanary:
      return kOverflow;
    case CandidateOrigin::kUafReuse:
      return kUseAfterFree;
    case CandidateOrigin::kStatic:
      // Static findings always carry an explicit per-finding mask; the
      // default only matters if a tool forgets, in which case enhancing for
      // every type is the safe over-approximation.
      return kAllVulnBits;
  }
  return 0;
}

const char* candidate_verdict_name(CandidateVerdict verdict) noexcept {
  switch (verdict) {
    case CandidateVerdict::kPromoted: return "promoted";
    case CandidateVerdict::kRejected: return "rejected";
    case CandidateVerdict::kDemoted: return "demoted";
  }
  return "unknown";
}

bool candidate_verdict_from_name(std::string_view text,
                                 CandidateVerdict& verdict) noexcept {
  for (std::uint8_t i = 0; i < 3; ++i) {
    const auto value = static_cast<CandidateVerdict>(i);
    if (text == candidate_verdict_name(value)) {
      verdict = value;
      return true;
    }
  }
  return false;
}

std::string serialize_candidate_lines(
    const std::vector<PatchCandidate>& candidates) {
  std::ostringstream os;
  for (const PatchCandidate& c : candidates) {
    os << "candidate " << progmodel::alloc_fn_name(c.fn) << ' ';
    append_ccid_hex(os, c.ccid);
    os << ' ' << vuln_mask_to_string(c.vuln_mask) << ' '
       << candidate_origin_name(c.origin) << " hits=" << c.hits
       << " first=" << c.first_seen_ns << '\n';
  }
  return os.str();
}

std::string serialize_verdict_line(const VerdictRecord& verdict) {
  std::ostringstream os;
  os << "verdict " << progmodel::alloc_fn_name(verdict.fn) << ' ';
  append_ccid_hex(os, verdict.ccid);
  os << ' ' << vuln_mask_to_string(verdict.vuln_mask) << ' '
     << candidate_verdict_name(verdict.verdict) << ' ';
  std::string reason = verdict.reason.empty() ? "unspecified" : verdict.reason;
  for (char& ch : reason) {
    if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') ch = '-';
  }
  os << reason << " t=" << verdict.time_ns;
  if (!verdict.origin_token.empty()) {
    std::string origin = verdict.origin_token;
    for (char& ch : origin) {
      if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') ch = '-';
    }
    os << " origin=" << origin;
  }
  os << '\n';
  return os.str();
}

CandidateParseResult parse_candidate_journal(std::string_view text) {
  CandidateParseResult result;
  std::size_t line_no = 0;
  bool version_seen = false;

  support::NoteLimiter limiter(result.notes, kCandidateNoteCap);
  const auto note = [&](const std::string& message) {
    limiter.add("line " + std::to_string(line_no) + ": " + message);
  };
  const auto reject = [&](const std::string& reason) {
    result.rejected = true;
    result.reject_reason = reason;
    result.candidates.clear();
    result.verdicts.clear();
  };

  for (std::string_view raw_line : support::split(text, '\n')) {
    ++line_no;
    std::string_view line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string_view> fields;
    for (std::string_view f : support::split(line, ' ')) {
      if (!support::trim(f).empty()) fields.push_back(support::trim(f));
    }
    if (fields.empty()) continue;

    if (fields[0] == "version") {
      if (fields.size() < 2 || support::parse_u64(fields[1]) != 1) {
        reject("line " + std::to_string(line_no) +
               ": unsupported journal version");
        return result;
      }
      // Duplicate "version 1" lines are a benign header race: silent-skip.
      version_seen = true;
      continue;
    }

    if (fields[0] == "candidate") {
      // candidate <fn> <ccid> <mask> <origin> hits=<N> first=<ns>
      if (fields.size() != 7) {
        note("expected: candidate <fn> <ccid> <mask> <origin> hits=N first=NS");
        continue;
      }
      const auto fn = alloc_fn_from_name(fields[1]);
      if (!fn) {
        note("unknown allocation function '" + std::string(fields[1]) + "'");
        continue;
      }
      const auto ccid = support::parse_u64(fields[2]);
      if (!ccid) {
        note("bad CCID '" + std::string(fields[2]) + "'");
        continue;
      }
      std::uint8_t mask = 0;
      if (!vuln_mask_from_string(fields[3], mask)) {
        note("bad vulnerability mask '" + std::string(fields[3]) + "'");
        continue;
      }
      CandidateOrigin origin{};
      if (!candidate_origin_from_name(fields[4], origin)) {
        note("unknown origin '" + std::string(fields[4]) + "'");
        continue;
      }
      if (!support::starts_with(fields[5], "hits=") ||
          !support::starts_with(fields[6], "first=")) {
        note("expected hits=<N> first=<ns>");
        continue;
      }
      const auto hits = support::parse_u64(fields[5].substr(5));
      const auto first = support::parse_u64(fields[6].substr(6));
      if (!hits || !first) {
        note("bad hits/first value");
        continue;
      }
      // Fold into an existing {fn, ccid, mask, origin} entry.
      bool folded = false;
      for (PatchCandidate& existing : result.candidates) {
        if (existing.fn == *fn && existing.ccid == *ccid &&
            existing.vuln_mask == mask && existing.origin == origin) {
          existing.hits += *hits;
          if (*first != 0 &&
              (existing.first_seen_ns == 0 || *first < existing.first_seen_ns)) {
            existing.first_seen_ns = *first;
          }
          folded = true;
          break;
        }
      }
      if (!folded) {
        result.candidates.push_back(
            PatchCandidate{*fn, *ccid, mask, origin, *hits, *first});
      }
      continue;
    }

    if (fields[0] == "verdict") {
      // verdict <fn> <ccid> <mask> <verdict> <reason> t=<ns> [origin=<tok>]
      if (fields.size() != 7 && fields.size() != 8) {
        note("expected: verdict <fn> <ccid> <mask> <verdict> <reason> t=NS "
             "[origin=TOK]");
        continue;
      }
      const auto fn = alloc_fn_from_name(fields[1]);
      if (!fn) {
        note("unknown allocation function '" + std::string(fields[1]) + "'");
        continue;
      }
      const auto ccid = support::parse_u64(fields[2]);
      if (!ccid) {
        note("bad CCID '" + std::string(fields[2]) + "'");
        continue;
      }
      std::uint8_t mask = 0;
      if (!vuln_mask_from_string(fields[3], mask)) {
        note("bad vulnerability mask '" + std::string(fields[3]) + "'");
        continue;
      }
      CandidateVerdict verdict{};
      if (!candidate_verdict_from_name(fields[4], verdict)) {
        note("unknown verdict '" + std::string(fields[4]) + "'");
        continue;
      }
      if (!support::starts_with(fields[6], "t=")) {
        note("expected t=<ns>");
        continue;
      }
      const auto when = support::parse_u64(fields[6].substr(2));
      if (!when) {
        note("bad t= value");
        continue;
      }
      std::string origin_token;
      if (fields.size() == 8) {
        if (!support::starts_with(fields[7], "origin=") ||
            fields[7].size() == 7) {
          note("expected origin=<token>");
          continue;
        }
        origin_token = std::string(fields[7].substr(7));
      }
      result.verdicts.push_back(VerdictRecord{*fn, *ccid, mask, verdict,
                                              std::string(fields[5]), *when,
                                              std::move(origin_token)});
      continue;
    }

    note("unknown directive '" + std::string(fields[0]) + "'");
  }

  if ((!result.candidates.empty() || !result.verdicts.empty()) &&
      !version_seen) {
    reject("missing 'version' directive");
  }
  return result;
}

bool append_candidate_journal(const std::string& path,
                              const std::vector<PatchCandidate>& deltas) {
  if (deltas.empty()) return true;
  return append_journal_text(path, serialize_candidate_lines(deltas));
}

bool append_candidate_verdict(const std::string& path,
                              const VerdictRecord& verdict) {
  return append_journal_text(path, serialize_verdict_line(verdict));
}

std::optional<CandidateParseResult> load_candidate_journal(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_candidate_journal(buffer.str());
}

std::optional<CandidateVerdict> latest_verdict(
    const std::vector<VerdictRecord>& verdicts, progmodel::AllocFn fn,
    std::uint64_t ccid) {
  std::optional<CandidateVerdict> latest;
  for (const VerdictRecord& v : verdicts) {
    if (v.fn == fn && v.ccid == ccid) latest = v.verdict;
  }
  return latest;
}

std::vector<PromotableGroup> select_promotable_groups(
    const CandidateParseResult& journal, const PromotionPolicy& policy) {
  std::vector<PromotableGroup> groups;
  for (const PatchCandidate& c : journal.candidates) {
    bool merged = false;
    for (PromotableGroup& g : groups) {
      if (g.patch.fn == c.fn && g.patch.ccid == c.ccid) {
        g.patch.vuln_mask |= c.vuln_mask;
        g.hits += c.hits;
        g.origin_bits |= static_cast<std::uint8_t>(
            1u << static_cast<unsigned>(c.origin));
        if (c.first_seen_ns != 0 &&
            (g.first_seen_ns == 0 || c.first_seen_ns < g.first_seen_ns)) {
          g.first_seen_ns = c.first_seen_ns;
        }
        merged = true;
        break;
      }
    }
    if (!merged) {
      groups.push_back(PromotableGroup{
          Patch{c.fn, c.ccid, c.vuln_mask}, c.hits, c.first_seen_ns,
          static_cast<std::uint8_t>(1u << static_cast<unsigned>(c.origin))});
    }
  }

  std::vector<PromotableGroup> selected;
  for (const PromotableGroup& g : groups) {
    if (g.hits < policy.min_hits) continue;
    if (latest_verdict(journal.verdicts, g.patch.fn, g.patch.ccid)) continue;
    selected.push_back(g);
  }
  return selected;
}

std::vector<Patch> select_promotable(const CandidateParseResult& journal,
                                     const PromotionPolicy& policy) {
  std::vector<Patch> selected;
  for (const PromotableGroup& g : select_promotable_groups(journal, policy)) {
    selected.push_back(g.patch);
  }
  return selected;
}

bool CandidateTable::record(progmodel::AllocFn fn, std::uint64_t ccid,
                            std::uint8_t mask, CandidateOrigin origin,
                            std::uint64_t now_ns) noexcept {
  const std::uint64_t key =
      support::mix64(ccid ^ (static_cast<std::uint64_t>(fn) << 56) ^
                     (static_cast<std::uint64_t>(mask) << 48) ^
                     (static_cast<std::uint64_t>(origin) << 40));
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    Slot& slot = slots_[(key + probe) % kSlots];
    std::uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == kPublished) {
      if (slot.fn == fn && slot.ccid == ccid && slot.mask == mask &&
          slot.origin == origin) {
        slot.hits.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      continue;
    }
    if (state == kEmpty) {
      if (slot.state.compare_exchange_strong(state, kBusy,
                                             std::memory_order_acq_rel)) {
        slot.fn = fn;
        slot.ccid = ccid;
        slot.mask = mask;
        slot.origin = origin;
        slot.first_seen_ns = now_ns;
        slot.hits.store(1, std::memory_order_relaxed);
        slot.drained.store(0, std::memory_order_relaxed);
        slot.state.store(kPublished, std::memory_order_release);
        return true;
      }
    }
    // kBusy (or a lost CAS race): another thread is publishing this slot.
    // Probing on can duplicate a key in rare races; downstream folds dedupe.
  }
  overflow_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::vector<PatchCandidate> CandidateTable::snapshot() const {
  std::vector<PatchCandidate> out;
  for (const Slot& slot : slots_) {
    if (slot.state.load(std::memory_order_acquire) != kPublished) continue;
    out.push_back(PatchCandidate{
        slot.fn, slot.ccid, slot.mask, slot.origin,
        slot.hits.load(std::memory_order_relaxed), slot.first_seen_ns});
  }
  return out;
}

std::vector<PatchCandidate> CandidateTable::drain_deltas() {
  std::vector<PatchCandidate> out;
  for (Slot& slot : slots_) {
    if (slot.state.load(std::memory_order_acquire) != kPublished) continue;
    const std::uint64_t total = slot.hits.load(std::memory_order_relaxed);
    const std::uint64_t seen = slot.drained.load(std::memory_order_relaxed);
    if (total <= seen) continue;
    slot.drained.fetch_add(total - seen, std::memory_order_relaxed);
    out.push_back(PatchCandidate{slot.fn, slot.ccid, slot.mask, slot.origin,
                                 total - seen, slot.first_seen_ns});
  }
  return out;
}

}  // namespace ht::patch
