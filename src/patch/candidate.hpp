// Candidate patches: the self-healing loop's intermediate artifact.
//
// When the online runtime observes evidence of a heap vulnerability (a guard
// trap, a landed out-of-bounds access under replay, stale-memory reuse, or a
// canary corruption on free), it already holds the allocation-time
// {FUN, CCID} from telemetry attribution. A *candidate* is that observation
// promoted to data: the would-be patch {FUN, CCID, T} plus provenance
// (origin, hit count, first-seen time). Candidates are NOT patches — they go
// through a quarantine-of-patches journal and must survive replay validation
// (htpromote) before they are ever served. "Sound Patch Generation for
// Vulnerabilities" (PAPERS.md) is the discipline: auto-generated patches are
// only trustworthy once machine-validated.
//
// This header is patch-layer (no runtime dependency) so the journal format,
// fold logic, and promotion policy are usable from tools without linking the
// allocator. The lock-free CandidateTable lives here too because it is pure
// bookkeeping; DefenseEngine owns one instance.
//
// Journal format (docs/FORMATS.md §7):
//
//   # HeapTherapy+ candidate quarantine
//   version 1
//   candidate <alloc_fn> <ccid> <vuln_mask> <origin> hits=<N> first=<ns>
//   verdict <alloc_fn> <ccid> <vuln_mask> <verdict> <reason> t=<ns>
//
// The journal is append-only. Runtime processes append `candidate` lines
// (hit counts are DELTAS since the process's previous append); htpromote
// appends `verdict` lines. Each append is a single O_APPEND write, so
// concurrent writers interleave at line granularity and never corrupt each
// other. Readers fold: candidates with the same {fn, ccid, mask, origin} sum
// their hits and keep the minimum first-seen time; the last verdict for a
// {fn, ccid} wins.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "patch/patch.hpp"
#include "support/parse_policy.hpp"

namespace ht::patch {

/// Where the evidence that produced a candidate was observed. The first four
/// are runtime observations (a process already experienced the attack); the
/// last is the static analyzer's zero-trap path (htlint) — no process ever
/// saw the vulnerability trigger.
enum class CandidateOrigin : std::uint8_t {
  kGuardTrap = 0,   ///< OOB access blocked by a guard page
  kOobLanded = 1,   ///< OOB access observed (landed) under shadow replay
  kUafReuse = 2,    ///< access to stale memory after quarantine eviction
  kCanary = 3,      ///< canary word corrupted, detected on free
  kStatic = 4,      ///< htlint abstract-interpretation finding (zero traps)
};

inline constexpr std::size_t kCandidateOriginCount = 5;

/// Stable journal token, e.g. "guard_trap". Unknown values -> "unknown".
[[nodiscard]] const char* candidate_origin_name(CandidateOrigin origin) noexcept;

/// Inverse of candidate_origin_name; returns false on unknown token.
[[nodiscard]] bool candidate_origin_from_name(std::string_view text,
                                              CandidateOrigin& origin) noexcept;

/// The vulnerability-type mask each origin is evidence for: overflow
/// origins -> OVERFLOW, stale reuse -> UAF.
[[nodiscard]] std::uint8_t candidate_default_mask(CandidateOrigin origin) noexcept;

/// One candidate patch with provenance.
struct PatchCandidate {
  progmodel::AllocFn fn = progmodel::AllocFn::kMalloc;
  std::uint64_t ccid = 0;
  std::uint8_t vuln_mask = 0;
  CandidateOrigin origin = CandidateOrigin::kGuardTrap;
  std::uint64_t hits = 0;           ///< observation count (delta in appends)
  std::uint64_t first_seen_ns = 0;  ///< CLOCK_REALTIME ns of first observation

  bool operator==(const PatchCandidate&) const = default;
};

/// htpromote's judgement on a candidate, recorded in the journal.
enum class CandidateVerdict : std::uint8_t {
  kPromoted = 0,  ///< replay-validated and written to the served patch file
  kRejected = 1,  ///< failed replay validation; never serve
  kDemoted = 2,   ///< promoted earlier, rolled back on fleet FP signals
};

/// Stable journal token, e.g. "promoted". Unknown values -> "unknown".
[[nodiscard]] const char* candidate_verdict_name(CandidateVerdict verdict) noexcept;

/// Inverse of candidate_verdict_name; returns false on unknown token.
[[nodiscard]] bool candidate_verdict_from_name(std::string_view text,
                                               CandidateVerdict& verdict) noexcept;

/// One verdict line. `reason` is a single token (no whitespace); the
/// serializer replaces embedded whitespace with '-'. `origin_token`
/// optionally records the provenance of the evidence the verdict judged
/// (e.g. "static" for htlint findings promoted before any trap); empty means
/// unrecorded, and legacy 7-field verdict lines parse to empty.
struct VerdictRecord {
  progmodel::AllocFn fn = progmodel::AllocFn::kMalloc;
  std::uint64_t ccid = 0;
  std::uint8_t vuln_mask = 0;
  CandidateVerdict verdict = CandidateVerdict::kRejected;
  std::string reason;
  std::uint64_t time_ns = 0;
  std::string origin_token;  ///< optional "origin=<token>" field

  bool operator==(const VerdictRecord&) const = default;
};

/// Parse outcome, following the §6/§7 error taxonomy:
///   - reject: the whole journal is unusable (conflicting version, or
///     candidates present with no version directive) — no data returned;
///   - note: a malformed line is skipped, the rest of the journal stands
///     (notes are capped at kCandidateNoteCap);
///   - silent-skip: comments, blank lines, duplicate "version 1" lines
///     (two processes can race the header write on an empty file).
struct CandidateParseResult {
  bool rejected = false;
  std::string reject_reason;
  std::vector<PatchCandidate> candidates;  ///< folded by {fn,ccid,mask,origin}
  std::vector<VerdictRecord> verdicts;     ///< journal order
  std::vector<std::string> notes;          ///< "line N: message"

  [[nodiscard]] bool ok() const noexcept { return !rejected; }
};

/// Journal notes share the fleet-wide cap (support/parse_policy.hpp).
inline constexpr std::size_t kCandidateNoteCap = support::kParseNoteCap;

/// Serializes candidate lines only (no header) — the unit a runtime appends.
[[nodiscard]] std::string serialize_candidate_lines(
    const std::vector<PatchCandidate>& candidates);

/// Serializes one verdict line.
[[nodiscard]] std::string serialize_verdict_line(const VerdictRecord& verdict);

/// Parses full journal text, folding duplicate candidates.
[[nodiscard]] CandidateParseResult parse_candidate_journal(std::string_view text);

/// Appends candidate deltas to the journal at `path` with a single O_APPEND
/// write (line-atomic vs concurrent appenders). Writes the two header lines
/// first iff the file is empty. No-op success on an empty delta vector.
[[nodiscard]] bool append_candidate_journal(
    const std::string& path, const std::vector<PatchCandidate>& deltas);

/// Appends one verdict line (same O_APPEND + header-on-empty discipline).
[[nodiscard]] bool append_candidate_verdict(const std::string& path,
                                            const VerdictRecord& verdict);

/// Reads and parses the journal. nullopt if the file cannot be read (a
/// missing journal is normal before the first trap — callers treat it as
/// empty, not as an error).
[[nodiscard]] std::optional<CandidateParseResult> load_candidate_journal(
    const std::string& path);

/// The latest verdict per {fn, ccid}, or nothing if none recorded.
[[nodiscard]] std::optional<CandidateVerdict> latest_verdict(
    const std::vector<VerdictRecord>& verdicts, progmodel::AllocFn fn,
    std::uint64_t ccid);

/// Promotion selection policy (htpromote's thresholds).
struct PromotionPolicy {
  std::uint64_t min_hits = 1;  ///< total folded hits required per {fn, ccid}
};

/// One promotable {fn, ccid} group with its provenance: the unioned mask,
/// summed hits, minimum first-seen time, and the set of origins that
/// contributed evidence (bit i set iff CandidateOrigin(i) appeared).
struct PromotableGroup {
  Patch patch;
  std::uint64_t hits = 0;
  std::uint64_t first_seen_ns = 0;
  std::uint8_t origin_bits = 0;

  [[nodiscard]] bool has_origin(CandidateOrigin origin) const noexcept {
    return (origin_bits & (1u << static_cast<unsigned>(origin))) != 0;
  }
  /// True when every contributing observation came from the static analyzer
  /// — i.e. no process ever experienced the attack.
  [[nodiscard]] bool static_only() const noexcept {
    return origin_bits == (1u << static_cast<unsigned>(CandidateOrigin::kStatic));
  }
};

/// Groups folded candidates by {fn, ccid}, unions their masks and sums their
/// hits across origins, and returns the groups that (a) meet the min-hit
/// threshold and (b) have no verdict yet — promoted, rejected, and demoted
/// candidates are all skipped (a demoted patch must not flap back in without
/// a fresh journal). Output order is first-seen order.
[[nodiscard]] std::vector<PromotableGroup> select_promotable_groups(
    const CandidateParseResult& journal, const PromotionPolicy& policy);

/// select_promotable_groups reduced to the patches (legacy shape).
[[nodiscard]] std::vector<Patch> select_promotable(
    const CandidateParseResult& journal, const PromotionPolicy& policy);

/// Lock-free fixed-capacity accumulator for in-process candidate synthesis.
///
/// The hot path (record) is wait-free in the common case, allocation-free,
/// and signal-safe apart from the atomics: hash-probe for a published slot
/// with a matching key and bump its hit counter, or claim an empty slot with
/// a single CAS. A full table drops the observation and counts it in
/// overflow() — candidates are advisory, the defense itself never depends on
/// one being recorded.
///
/// snapshot() may be called from any thread. drain_deltas() assumes a single
/// drainer (the preload maintenance thread, or the final flush after it has
/// been joined); concurrent drainers would split deltas between them, which
/// is harmless for a sum but noted for clarity.
class CandidateTable {
 public:
  static constexpr std::size_t kSlots = 64;

  CandidateTable() = default;
  CandidateTable(const CandidateTable&) = delete;
  CandidateTable& operator=(const CandidateTable&) = delete;

  /// Records one observation. Returns false when the table is full (the
  /// observation is dropped and counted in overflow()).
  bool record(progmodel::AllocFn fn, std::uint64_t ccid, std::uint8_t mask,
              CandidateOrigin origin, std::uint64_t now_ns) noexcept;

  /// Point-in-time copy of published slots; hits are absolute totals.
  [[nodiscard]] std::vector<PatchCandidate> snapshot() const;

  /// Published slots whose hit count grew since the previous drain; hits are
  /// the deltas (the unit append_candidate_journal expects).
  [[nodiscard]] std::vector<PatchCandidate> drain_deltas();

  /// Observations dropped because every slot was taken.
  [[nodiscard]] std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }

 private:
  enum : std::uint32_t { kEmpty = 0, kBusy = 1, kPublished = 2 };

  struct Slot {
    std::atomic<std::uint32_t> state{kEmpty};
    progmodel::AllocFn fn{};
    std::uint64_t ccid = 0;
    std::uint8_t mask = 0;
    CandidateOrigin origin{};
    std::uint64_t first_seen_ns = 0;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> drained{0};
  };

  Slot slots_[kSlots];
  std::atomic<std::uint64_t> overflow_{0};
};

}  // namespace ht::patch
