#include "patch/patch_table.hpp"

#include <sys/mman.h>

#include <atomic>
#include <cstring>
#include <new>
#include <utility>

#include "support/hash.hpp"

namespace ht::patch {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t next_generation() noexcept {
  // Starts at 1: generation 0 is the DecisionCache's "empty entry" marker.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

std::uint64_t PatchTable::slot_hash(progmodel::AllocFn fn,
                                    std::uint64_t ccid) noexcept {
  // CCIDs are arithmetic accumulations — mix before probing. The function
  // tag keeps {FUN, CCID} pairs distinct (required by Incremental encoding).
  std::uint64_t h =
      support::mix64(ccid ^ (static_cast<std::uint64_t>(fn) << 56));
  return h == 0 ? 1 : h;  // reserve 0 for "empty slot"
}

PatchTable::PatchTable(const std::vector<Patch>& patches, bool freeze)
    : generation_(next_generation()) {
  // Low load factor (<= 25%) keeps probe sequences short on the hot path.
  buckets_ = round_up_pow2(patches.size() * 4 + 8);
  const std::size_t bytes = buckets_ * sizeof(Slot);

  if (freeze) {
    const std::size_t page = 4096;
    mapped_bytes_ = (bytes + page - 1) / page * page;
    void* mem = ::mmap(nullptr, mapped_bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) throw std::bad_alloc();
    slots_ = static_cast<Slot*>(mem);
  } else {
    slots_ = new Slot[buckets_];
  }
  std::memset(static_cast<void*>(slots_), 0, buckets_ * sizeof(Slot));

  for (const Patch& p : patches) insert(p);

  if (freeze) {
    ::mprotect(slots_, mapped_bytes_, PROT_READ);
    frozen_ = true;
  }
}

void PatchTable::insert(const Patch& p) noexcept {
  const std::uint64_t h = slot_hash(p.fn, p.ccid);
  std::size_t i = static_cast<std::size_t>(h) & (buckets_ - 1);
  for (;;) {
    Slot& slot = slots_[i];
    if (slot.key_hash == 0) {
      slot.key_hash = h;
      slot.ccid = p.ccid;
      slot.fn = static_cast<std::uint8_t>(p.fn);
      slot.mask = p.vuln_mask;
      ++count_;
      return;
    }
    if (slot.key_hash == h && slot.ccid == p.ccid &&
        slot.fn == static_cast<std::uint8_t>(p.fn)) {
      slot.mask |= p.vuln_mask;  // duplicate key: merge vulnerability types
      return;
    }
    i = (i + 1) & (buckets_ - 1);
  }
}

std::uint8_t PatchTable::lookup(progmodel::AllocFn fn,
                                std::uint64_t ccid) const noexcept {
  const std::uint64_t h = slot_hash(fn, ccid);
  std::size_t i = static_cast<std::size_t>(h) & (buckets_ - 1);
  for (;;) {
    const Slot& slot = slots_[i];
    if (slot.key_hash == 0) return 0;
    if (slot.key_hash == h && slot.ccid == ccid &&
        slot.fn == static_cast<std::uint8_t>(fn)) {
      return slot.mask;
    }
    i = (i + 1) & (buckets_ - 1);
  }
}

void PatchTable::release() noexcept {
  if (slots_ == nullptr) return;
  if (mapped_bytes_ != 0) {
    ::munmap(slots_, mapped_bytes_);
  } else {
    delete[] slots_;
  }
  slots_ = nullptr;
  buckets_ = count_ = mapped_bytes_ = 0;
  generation_ = 0;
  frozen_ = false;
}

PatchTable::~PatchTable() { release(); }

PatchTable::PatchTable(PatchTable&& other) noexcept
    : slots_(std::exchange(other.slots_, nullptr)),
      buckets_(std::exchange(other.buckets_, 0)),
      count_(std::exchange(other.count_, 0)),
      mapped_bytes_(std::exchange(other.mapped_bytes_, 0)),
      generation_(std::exchange(other.generation_, 0)),
      frozen_(std::exchange(other.frozen_, false)) {}

PatchTable& PatchTable::operator=(PatchTable&& other) noexcept {
  if (this != &other) {
    release();
    slots_ = std::exchange(other.slots_, nullptr);
    buckets_ = std::exchange(other.buckets_, 0);
    count_ = std::exchange(other.count_, 0);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    generation_ = std::exchange(other.generation_, 0);
    frozen_ = std::exchange(other.frozen_, false);
  }
  return *this;
}

}  // namespace ht::patch
