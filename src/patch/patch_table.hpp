// The read-only patch hash table of the online defense generator (§VI).
//
// Keys are {allocation function, CCID}; values are vulnerability masks.
// Lookup is O(1) open addressing and happens on *every* allocation the
// process makes, so the probe loop is branch-light and the table is sized
// to a low load factor. After initialization the backing pages are frozen
// read-only with mprotect — "once the hash table is initialized, its memory
// pages are set as read only" — so a heap attack cannot disable deployed
// patches by corrupting the table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "patch/patch.hpp"

namespace ht::patch {

class PatchTable {
 public:
  /// Builds the table from `patches`. Duplicate {fn, ccid} keys OR their
  /// masks together. If `freeze` is true the storage is mmap-backed and
  /// mprotect'ed read-only after construction.
  explicit PatchTable(const std::vector<Patch>& patches, bool freeze = false);
  ~PatchTable();

  PatchTable(const PatchTable&) = delete;
  PatchTable& operator=(const PatchTable&) = delete;
  PatchTable(PatchTable&& other) noexcept;
  PatchTable& operator=(PatchTable&& other) noexcept;

  /// The vulnerability mask for this allocation, or 0 (not vulnerable).
  /// This is the per-allocation hot path.
  [[nodiscard]] std::uint8_t lookup(progmodel::AllocFn fn,
                                    std::uint64_t ccid) const noexcept;

  [[nodiscard]] std::size_t patch_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Process-unique, never-reused id assigned at construction (moves carry
  /// it along). Memoization layers (DecisionCache) key cached decisions on
  /// this instead of the table address, so a new table constructed at a
  /// recycled address can never satisfy a stale cache entry. Never 0.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

 private:
  struct Slot {
    std::uint64_t key_hash = 0;  ///< 0 = empty (hash is forced non-zero)
    std::uint64_t ccid = 0;
    std::uint8_t fn = 0;
    std::uint8_t mask = 0;
  };

  static std::uint64_t slot_hash(progmodel::AllocFn fn, std::uint64_t ccid) noexcept;
  void insert(const Patch& p) noexcept;
  void release() noexcept;

  Slot* slots_ = nullptr;
  std::size_t buckets_ = 0;   ///< power of two
  std::size_t count_ = 0;
  std::size_t mapped_bytes_ = 0;  ///< nonzero iff mmap-backed
  std::uint64_t generation_ = 0;
  bool frozen_ = false;
};

}  // namespace ht::patch
