// Validated patch hot-reload: atomic PatchTable swap with
// parse-validate-then-commit semantics (docs/RESILIENCE.md "hot reload").
//
// The paper's deployment story is that code-less patches are "installed
// without restarting the program". The startup path already delivers that
// for the first table; this module delivers the *re*-load: an operator
// appends a new patch to the config file and signals the process (SIGHUP
// under the preload shim, `htrun --reload-patches` offline), and the next
// allocation sees the new table.
//
// Two properties make a reload safe to trigger against a live allocator:
//
//  - ATOMIC SWAP. Readers resolve the serving table through one acquire
//    load of a pointer; writers build the complete replacement off to the
//    side, then publish it with one release store. No reader ever observes
//    a half-built table. Retired tables are kept alive for the process
//    lifetime (a grace list) so an allocation that loaded the old pointer
//    just before the swap can finish its lookup — reloads are rare
//    operator actions and tables are a few KiB, so this "leak" is bounded
//    by reload count and buys freedom from reader registration on the
//    allocation hot path.
//
//  - VALIDATE THEN COMMIT. The replacement file is parsed and validated
//    in full BEFORE anything is published. Any parse error rejects the
//    whole reload and the prior table keeps serving — unlike startup
//    loading, which is lenient (some protection beats none when there is
//    no table yet), a reload has a known-good table to fall back to, so
//    strictness is free. A torn or garbage file can only ever cost the
//    operator the *new* patches, never the running defense.
//
// Memoization stays correct for free: DecisionCache entries are keyed on
// the table's process-unique generation id, so entries cached against the
// old table can never satisfy lookups against the new one.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "patch/patch_table.hpp"

namespace ht::patch {

/// Outcome of one reload attempt.
struct ReloadResult {
  bool applied = false;            ///< table committed and now serving
  std::uint64_t generation = 0;    ///< serving generation after the attempt
  std::size_t patch_count = 0;     ///< patches in the serving table
  std::vector<std::string> errors; ///< why the reload was rejected (if so)
};

class PatchTableSwap {
 public:
  /// Starts with no serving table (lookups through a null serving() behave
  /// like "no patches installed").
  PatchTableSwap() = default;
  /// Starts serving `initial` (takes ownership).
  explicit PatchTableSwap(PatchTable&& initial);

  PatchTableSwap(const PatchTableSwap&) = delete;
  PatchTableSwap& operator=(const PatchTableSwap&) = delete;

  /// The table lookups should use right now; may be null. One acquire
  /// load — this is the only thing the allocation path ever pays.
  [[nodiscard]] const PatchTable* serving() const noexcept {
    return serving_.load(std::memory_order_acquire);
  }

  /// Strict parse-validate-then-commit reload from config-file text.
  /// Any diagnostic from the parser (or an armed patch-parse fault)
  /// rejects the reload; the serving table is untouched. Thread-safe
  /// against concurrent readers and other reloaders.
  ReloadResult reload_from_text(std::string_view text);

  /// reload_from_text over the file's contents. An unreadable file is a
  /// rejection, not an empty table.
  ReloadResult reload_from_file(const std::string& path);

  /// Commits an already-built table (used by htrun to install its initial
  /// table and by tests to bypass parsing). Always applies.
  ReloadResult commit(PatchTable&& table);

  /// Reload attempts so far that were rejected (observability).
  [[nodiscard]] std::uint64_t rejected_reloads() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Reloads committed so far (excludes the constructor's initial table).
  [[nodiscard]] std::uint64_t applied_reloads() const noexcept {
    return applied_.load(std::memory_order_relaxed);
  }

 private:
  ReloadResult rejected_result(std::vector<std::string> errors);

  std::atomic<const PatchTable*> serving_{nullptr};
  std::mutex writer_mutex_;  ///< serializes reloaders, never readers
  /// Grace list: every table ever served, kept alive until destruction
  /// (see the file comment for why this is the right trade).
  std::vector<std::unique_ptr<const PatchTable>> retired_;
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> applied_{0};
};

}  // namespace ht::patch
