#include "patch/hot_swap.hpp"

#include <cstdio>

#include "patch/config_file.hpp"
#include "support/faultpoint.hpp"

namespace ht::patch {

PatchTableSwap::PatchTableSwap(PatchTable&& initial) {
  auto owned = std::make_unique<const PatchTable>(std::move(initial));
  serving_.store(owned.get(), std::memory_order_release);
  retired_.push_back(std::move(owned));
}

ReloadResult PatchTableSwap::rejected_result(std::vector<std::string> errors) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  ReloadResult result;
  result.applied = false;
  result.errors = std::move(errors);
  const PatchTable* current = serving();
  if (current != nullptr) {
    result.generation = current->generation();
    result.patch_count = current->patch_count();
  }
  return result;
}

ReloadResult PatchTableSwap::reload_from_text(std::string_view text) {
  if (support::fault_fires(support::FaultPoint::kPatchParse)) {
    return rejected_result({"injected fault: patch-parse"});
  }
  ParseResult parsed = parse_config(text);
  // Strict where the startup loader is lenient: with a known-good table
  // already serving, ANY diagnostic means the file is not what the
  // operator thinks it is — keep serving the old table.
  if (!parsed.ok()) {
    return rejected_result(std::move(parsed.errors));
  }
  return commit(PatchTable(parsed.patches, /*freeze=*/true));
}

ReloadResult PatchTableSwap::reload_from_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return rejected_result({"cannot read patch config '" + path + "'"});
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return rejected_result({"read error on patch config '" + path + "'"});
  }
  return reload_from_text(text);
}

ReloadResult PatchTableSwap::commit(PatchTable&& table) {
  auto owned = std::make_unique<const PatchTable>(std::move(table));
  ReloadResult result;
  result.applied = true;
  result.generation = owned->generation();
  result.patch_count = owned->patch_count();
  {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    serving_.store(owned.get(), std::memory_order_release);
    retired_.push_back(std::move(owned));
  }
  applied_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

}  // namespace ht::patch
