// Heap patches: the paper's central artifact.
//
// A patch is the tuple {FUN, CCID, T} (§V): the allocation function used to
// request the vulnerable buffer, the allocation-time calling-context ID, and
// a three-bit vulnerability-type mask (Overflow, Use-after-Free,
// Uninitialized-Read). Patches are *configuration*, not code — installing
// one never alters program logic, which is what makes code-less patching
// safe to deploy (§I "Heap Patches as Configuration").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "progmodel/values.hpp"

namespace ht::patch {

/// Vulnerability-type bits (the "T" field; §V). A buffer may be vulnerable
/// to several types at once — e.g. Heartbleed is uninit-read + overread.
enum VulnBits : std::uint8_t {
  kOverflow = 1u << 0,       ///< overwrite or overread past the buffer end
  kUseAfterFree = 1u << 1,   ///< access to freed memory
  kUninitRead = 1u << 2,     ///< checked use of uninitialized data
};

inline constexpr std::uint8_t kAllVulnBits = kOverflow | kUseAfterFree | kUninitRead;

/// Human-readable form, e.g. "OVERFLOW|UAF". Empty mask -> "NONE".
[[nodiscard]] std::string vuln_mask_to_string(std::uint8_t mask);

/// Inverse of vuln_mask_to_string; returns false on unknown token.
[[nodiscard]] bool vuln_mask_from_string(std::string_view text, std::uint8_t& mask);

/// One heap patch.
struct Patch {
  progmodel::AllocFn fn = progmodel::AllocFn::kMalloc;
  std::uint64_t ccid = 0;
  std::uint8_t vuln_mask = 0;

  bool operator==(const Patch&) const = default;
};

}  // namespace ht::patch
