// Thread-local memoization of {FUN, CCID} -> defense-decision lookups.
//
// The patch table is immutable after construction (and frozen read-only in
// deployment), so a lookup result can be cached indefinitely. Real services
// allocate from a small working set of calling contexts — the same handful
// of CCIDs repeats millions of times — which makes even a tiny direct-mapped
// cache hit on almost every allocation. Because the cache is thread-local it
// adds zero sharing to the hot path: no atomics, no locks, no cache-line
// ping-pong between cores. Entries are keyed on PatchTable::generation()
// (process-unique, never reused), so a table destroyed and replaced by a new
// one at the same address can never satisfy a stale entry.
//
// The cache is plain zero-initialized POD: safe to use from the LD_PRELOAD
// shim, where thread_local objects with dynamic constructors could recurse
// into the interposed malloc.
#pragma once

#include <cstddef>
#include <cstdint>

#include "patch/patch_table.hpp"

namespace ht::patch {

class DecisionCache {
 public:
  /// Direct-mapped entry count; power of two. 256 entries cover far more
  /// distinct allocation contexts than a service's hot working set.
  static constexpr std::size_t kEntries = 256;

  /// Memoized PatchTable::lookup. Exact same result as the table's own
  /// lookup, amortized to one predicted-taken compare on repeat contexts.
  [[nodiscard]] std::uint8_t lookup(const PatchTable& table,
                                    progmodel::AllocFn fn,
                                    std::uint64_t ccid) noexcept;

  /// Forget everything (test aid).
  void clear() noexcept;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// The calling thread's cache. One instance per thread, shared by every
  /// allocator on that thread (entries are generation-keyed, so allocators
  /// over different tables coexist in it without cross-talk).
  [[nodiscard]] static DecisionCache& for_current_thread() noexcept;

 private:
  struct Entry {
    std::uint64_t generation = 0;  ///< 0 = empty
    std::uint64_t ccid = 0;
    std::uint8_t fn = 0;
    std::uint8_t mask = 0;
  };

  Entry entries_[kEntries];
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ht::patch
