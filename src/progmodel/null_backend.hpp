// NullBackend: the no-op heap.
//
// Hands out bump-allocated fake addresses and reports every access as clean.
// Used where only the *calling/encoding* behaviour of a run matters — the
// §VIII-B1 encoding-overhead benches and interpreter unit tests — so heap
// bookkeeping does not pollute the measurement.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "progmodel/backend.hpp"

namespace ht::progmodel {

class NullBackend final : public AllocatorBackend {
 public:
  std::uint64_t allocate(AllocFn fn, std::uint64_t size, std::uint64_t alignment,
                         std::uint64_t ccid) override {
    (void)fn;
    (void)ccid;
    if (alignment > 1) next_ = (next_ + alignment - 1) / alignment * alignment;
    const std::uint64_t addr = next_;
    next_ += size > 0 ? size : 1;
    sizes_[addr] = size;
    ++live_;
    return addr;
  }

  std::uint64_t reallocate(std::uint64_t addr, std::uint64_t new_size,
                           std::uint64_t ccid) override {
    sizes_.erase(addr);
    --live_;
    return allocate(AllocFn::kRealloc, new_size, 0, ccid);
  }

  void deallocate(std::uint64_t addr) override {
    if (sizes_.erase(addr) > 0) --live_;
  }

  AccessOutcome write(std::uint64_t, std::uint64_t, std::uint64_t) override {
    return {};
  }
  AccessOutcome read(std::uint64_t, std::uint64_t, std::uint64_t, ReadUse) override {
    return {};
  }
  AccessOutcome copy(std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                     std::uint64_t) override {
    return {};
  }

  [[nodiscard]] std::uint64_t live_buffers() const noexcept { return live_; }

 private:
  std::uint64_t next_ = 0x1000;
  std::uint64_t live_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> sizes_;
};

}  // namespace ht::progmodel
