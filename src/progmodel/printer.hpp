// Textual rendering of synthetic programs — the "disassembly" used in
// reports, examples and failing-test diagnostics.
#pragma once

#include <string>

#include "progmodel/program.hpp"

namespace ht::progmodel {

/// Renders the whole program: one block per function, one line per action,
/// loops indented. Deterministic (suitable for golden tests).
[[nodiscard]] std::string to_text(const Program& program);

/// Renders a single action (no trailing newline).
[[nodiscard]] std::string action_to_text(const Program& program, const Action& action);

}  // namespace ht::progmodel
