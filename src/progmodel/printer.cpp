#include "progmodel/printer.hpp"

#include <sstream>

namespace ht::progmodel {

namespace {

std::string value_to_text(const Value& v) {
  // Input references render as $N; literals as decimal. Value does not
  // expose its payload directly, so probe with a sentinel input.
  if (v.is_input()) {
    // Find the index by resolving against increasing-size inputs.
    for (std::uint32_t i = 0; i < 64; ++i) {
      Input probe;
      probe.params.assign(i + 1, 0);
      probe.params[i] = 1;
      try {
        if (v.resolve(probe) == 1) return "$" + std::to_string(i);
      } catch (const std::out_of_range&) {
        // keep growing the probe
      }
    }
    return "$?";
  }
  Input empty;
  return std::to_string(v.resolve(empty));
}

void render_body(const Program& program, const std::vector<Action>& body,
                 int indent, std::ostringstream& os) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const Action& action : body) {
    if (action.kind == Action::Kind::kLoop) {
      os << pad << "loop " << value_to_text(action.count) << " {\n";
      render_body(program, action.body, indent + 1, os);
      os << pad << "}\n";
    } else {
      os << pad << action_to_text(program, action) << "\n";
    }
  }
}

}  // namespace

std::string action_to_text(const Program& program, const Action& action) {
  std::ostringstream os;
  const auto callee_name = [&](cce::CallSiteId site) {
    return program.graph().function_name(program.graph().site(site).callee);
  };
  switch (action.kind) {
    case Action::Kind::kCall:
      os << "call " << callee_name(action.site) << "  # cs" << action.site;
      break;
    case Action::Kind::kAlloc:
      os << "s" << action.slot << " = " << alloc_fn_name(action.alloc_fn) << "("
         << value_to_text(action.size);
      if (action.alloc_fn == AllocFn::kMemalign ||
          action.alloc_fn == AllocFn::kAlignedAlloc) {
        os << ", align=" << value_to_text(action.alignment);
      }
      os << ")  # cs" << action.site;
      break;
    case Action::Kind::kRealloc:
      os << "s" << action.slot << " = realloc(s" << action.slot << ", "
         << value_to_text(action.size) << ")  # cs" << action.site;
      break;
    case Action::Kind::kFree:
      os << "free(s" << action.slot << ")";
      break;
    case Action::Kind::kWrite:
      os << "write(s" << action.slot << ", off=" << value_to_text(action.offset)
         << ", len=" << value_to_text(action.size) << ")";
      break;
    case Action::Kind::kRead:
      os << "read(s" << action.slot << ", off=" << value_to_text(action.offset)
         << ", len=" << value_to_text(action.size) << ", use="
         << read_use_name(action.use) << ")";
      break;
    case Action::Kind::kCopy:
      os << "copy(s" << action.src_slot << "+" << value_to_text(action.src_offset)
         << " -> s" << action.slot << "+" << value_to_text(action.offset)
         << ", len=" << value_to_text(action.size) << ")";
      break;
    case Action::Kind::kLoop:
      os << "loop " << value_to_text(action.count) << " { ... }";
      break;
  }
  return os.str();
}

std::string to_text(const Program& program) {
  std::ostringstream os;
  for (cce::FunctionId f = 0; f < program.graph().function_count(); ++f) {
    const auto& body = program.body(f);
    const bool is_api = body.empty() && f != program.entry();
    if (is_api) continue;  // allocation-API nodes have no body
    os << program.graph().function_name(f);
    if (f == program.entry()) os << " (entry)";
    os << ":\n";
    render_body(program, body, 1, os);
  }
  return os.str();
}

}  // namespace ht::progmodel
