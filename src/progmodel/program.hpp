// Synthetic program representation.
//
// A Program is a call graph (functions + call sites) plus a body — an action
// sequence — per function. It is the reproduction's stand-in for an
// instrumented C/C++ binary: the call graph feeds the §IV encoding
// algorithms, and the interpreter executes bodies while maintaining the
// CCID register exactly where the LLVM pass would have inserted updates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cce/call_graph.hpp"
#include "progmodel/values.hpp"

namespace ht::progmodel {

/// One step of a function body. A tagged struct (rather than std::variant)
/// keeps bodies POD-walkable; `body` is only populated for kLoop.
struct Action {
  enum class Kind : std::uint8_t {
    kCall,     ///< invoke another synthetic function through `site`
    kAlloc,    ///< call an allocation API through `site`, store into `slot`
    kRealloc,  ///< realloc the buffer in `slot` through `site`
    kFree,     ///< free the buffer in `slot`
    kWrite,    ///< write [offset, offset+length) of the buffer in `slot`
    kRead,     ///< read  [offset, offset+length) with `use`
    kCopy,     ///< copy between two buffers (propagates validity/origins)
    kLoop,     ///< run `body` `count` times
  };

  Kind kind = Kind::kCall;

  // kCall / kAlloc / kRealloc: the call-graph edge being taken.
  cce::CallSiteId site = cce::kInvalidCallSite;

  // kAlloc: which API; also implied by the callee function.
  AllocFn alloc_fn = AllocFn::kMalloc;

  // Buffer slots (virtual registers holding buffer addresses).
  std::uint32_t slot = 0;      ///< primary slot (dest for kAlloc/kCopy)
  std::uint32_t src_slot = 0;  ///< kCopy source

  Value size;       ///< kAlloc/kRealloc size; kWrite/kRead/kCopy length
  Value alignment;  ///< kAlloc alignment (memalign family)
  Value offset;     ///< kWrite/kRead offset; kCopy dest offset
  Value src_offset; ///< kCopy source offset
  ReadUse use = ReadUse::kData;  ///< kRead

  Value count;  ///< kLoop trip count
  std::vector<Action> body;  ///< kLoop body
};

/// A complete synthetic program. Built via ProgramBuilder; immutable after.
class Program {
 public:
  [[nodiscard]] const cce::CallGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] cce::FunctionId entry() const noexcept { return entry_; }
  [[nodiscard]] const std::vector<Action>& body(cce::FunctionId f) const {
    return bodies_.at(f);
  }

  /// The allocation-API functions present in this program — the encoding
  /// target set (§IV-A: "we are only interested in calling contexts when
  /// the allocation APIs are invoked").
  [[nodiscard]] const std::vector<cce::FunctionId>& alloc_targets() const noexcept {
    return alloc_targets_;
  }
  /// The graph node for a specific allocation API, or kInvalidFunction.
  [[nodiscard]] cce::FunctionId alloc_fn_node(AllocFn fn) const noexcept {
    return alloc_nodes_[static_cast<std::size_t>(fn)];
  }
  /// The graph node representing free(), or kInvalidFunction if unused.
  [[nodiscard]] cce::FunctionId free_node() const noexcept { return free_node_; }

  /// Number of buffer slots the interpreter must provision.
  [[nodiscard]] std::uint32_t slot_count() const noexcept { return slot_count_; }

 private:
  friend class ProgramBuilder;
  cce::CallGraph graph_;
  std::vector<std::vector<Action>> bodies_;
  cce::FunctionId entry_ = cce::kInvalidFunction;
  std::vector<cce::FunctionId> alloc_targets_;
  cce::FunctionId alloc_nodes_[5] = {cce::kInvalidFunction, cce::kInvalidFunction,
                                     cce::kInvalidFunction, cce::kInvalidFunction,
                                     cce::kInvalidFunction};
  cce::FunctionId free_node_ = cce::kInvalidFunction;
  std::uint32_t slot_count_ = 0;
};

}  // namespace ht::progmodel
