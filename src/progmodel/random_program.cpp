#include "progmodel/random_program.hpp"

#include <string>
#include <vector>

#include "progmodel/builder.hpp"

namespace ht::progmodel {

Program make_random_program(support::Rng& rng, const RandomProgramParams& params) {
  ProgramBuilder b;
  const std::uint32_t layers = params.layers < 2 ? 2 : params.layers;
  const std::uint32_t per_layer =
      params.functions_per_layer < 1 ? 1 : params.functions_per_layer;

  std::vector<std::vector<cce::FunctionId>> layer_funcs(layers);
  const cce::FunctionId entry = b.function("main");
  layer_funcs[0].push_back(entry);
  for (std::uint32_t layer = 1; layer < layers; ++layer) {
    for (std::uint32_t j = 0; j < per_layer; ++j) {
      layer_funcs[layer].push_back(
          b.function("f" + std::to_string(layer) + "_" + std::to_string(j)));
    }
  }

  // Leaf bodies: each leaf allocates, initializes, reads back and frees its
  // buffers. Slots are globally unique per (leaf, alloc index) so parallel
  // call paths never clobber each other's addresses mid-flight (slots are
  // global registers in the interpreter).
  std::uint32_t next_slot = 0;
  for (cce::FunctionId leaf : layer_funcs[layers - 1]) {
    const std::uint32_t allocs = params.allocs_per_leaf < 1 ? 1 : params.allocs_per_leaf;
    if (params.loop_count > 1) b.begin_loop(leaf, Value(params.loop_count));
    std::vector<std::uint32_t> slots;
    for (std::uint32_t i = 0; i < allocs; ++i) {
      const std::uint32_t slot = next_slot++;
      slots.push_back(slot);
      const std::uint64_t size =
          8 + rng.below(params.max_alloc_size < 8 ? 8 : params.max_alloc_size - 7);
      if (rng.chance(params.memalign_probability)) {
        // memalign alignment: power of two in [16, 256].
        const std::uint64_t align = 16ULL << rng.below(5);
        b.alloc(leaf, AllocFn::kMemalign, Value(size), slot, Value(align));
      } else if (rng.chance(params.calloc_probability)) {
        b.alloc(leaf, AllocFn::kCalloc, Value(size), slot);
      } else {
        b.alloc(leaf, AllocFn::kMalloc, Value(size), slot);
      }
      // Initialize fully, then read back a prefix as checked data.
      b.write(leaf, slot, Value(0), Value(size));
      b.read(leaf, slot, Value(0), Value(size / 2 ? size / 2 : 1), ReadUse::kBranch);
    }
    for (std::uint32_t slot : slots) b.free(leaf, slot);
    if (params.loop_count > 1) b.end_loop(leaf);
  }

  // Interior wiring: every non-leaf calls `calls_per_function` random
  // functions in the next layer.
  for (std::uint32_t layer = 0; layer + 1 < layers; ++layer) {
    for (cce::FunctionId caller : layer_funcs[layer]) {
      const std::uint32_t calls =
          params.calls_per_function < 1 ? 1 : params.calls_per_function;
      for (std::uint32_t k = 0; k < calls; ++k) {
        const auto& pool = layer_funcs[layer + 1];
        b.call(caller, pool[rng.index(pool.size())]);
      }
    }
  }
  return b.build();
}

}  // namespace ht::progmodel
