// Fluent construction of synthetic programs.
//
// The builder owns the call-graph bookkeeping: every kCall/kAlloc/kRealloc
// action gets a dedicated call site (a distinct static call location), so
// the resulting graph is exactly what an instrumentation pass would see.
#pragma once

#include <string>
#include <vector>

#include "progmodel/program.hpp"

namespace ht::progmodel {

class ProgramBuilder {
 public:
  ProgramBuilder();

  /// Declares a synthetic function. The first declared function is the
  /// entry point unless set_entry overrides it.
  cce::FunctionId function(std::string name);
  void set_entry(cce::FunctionId f);

  /// Appends "call callee" to f's body; returns the fresh call site.
  cce::CallSiteId call(cce::FunctionId f, cce::FunctionId callee);

  /// Appends an allocation through a fresh call site to the AllocFn node.
  /// Stores the buffer address into `slot`.
  cce::CallSiteId alloc(cce::FunctionId f, AllocFn fn, Value size,
                        std::uint32_t slot, Value alignment = Value(0));

  /// Appends realloc(slot, new_size) through a fresh call site.
  cce::CallSiteId realloc(cce::FunctionId f, std::uint32_t slot, Value new_size);

  /// Appends free(slot) through a fresh call site to the free() node.
  void free(cce::FunctionId f, std::uint32_t slot);

  void write(cce::FunctionId f, std::uint32_t slot, Value offset, Value length);
  void read(cce::FunctionId f, std::uint32_t slot, Value offset, Value length,
            ReadUse use);
  void copy(cce::FunctionId f, std::uint32_t src_slot, Value src_offset,
            std::uint32_t dst_slot, Value dst_offset, Value length);

  /// Loop scoping: actions appended between begin_loop/end_loop nest inside
  /// the loop body. Loops may nest.
  void begin_loop(cce::FunctionId f, Value count);
  void end_loop(cce::FunctionId f);

  /// Finalizes. Throws std::logic_error on open loops or missing entry.
  [[nodiscard]] Program build();

 private:
  Action& append(cce::FunctionId f, Action action);
  cce::FunctionId ensure_alloc_node(AllocFn fn);
  cce::FunctionId ensure_free_node();
  void note_slot(std::uint32_t slot);

  Program program_;
  // Per-function stack of currently-open loops, as indices into the chain
  // of nested bodies.
  std::vector<std::vector<Action*>> open_loops_;
  bool built_ = false;
};

}  // namespace ht::progmodel
