#include "progmodel/interpreter.hpp"

#include <stdexcept>

#include "support/hash.hpp"
#include "support/trace.hpp"

namespace ht::progmodel {

Interpreter::Interpreter(const Program& program, const cce::Encoder* encoder,
                         AllocatorBackend& backend)
    : program_(program),
      encoder_(encoder),
      backend_(backend),
      fallback_(cce::InstrumentationPlan{}),
      reg_(encoder != nullptr ? *encoder : static_cast<const cce::Encoder&>(fallback_)) {}

RunResult Interpreter::run(const Input& input, const RunOptions& options) {
  support::SpanGuard span(options.tracer, "interpreter.run");
  input_ = &input;
  options_ = options;
  result_ = RunResult{};
  slots_.assign(program_.slot_count(), 0);
  reg_.reset();
  site_stack_.clear();
  aborted_ = false;

  const bool finished = exec_body(program_.entry(), program_.body(program_.entry()));
  result_.completed = finished && !aborted_;
  result_.encoding_ops = reg_.ops();
  input_ = nullptr;
  if (span.active()) {
    span.counter("steps", result_.steps);
    span.counter("calls", result_.calls);
    span.counter("encoding_ops", result_.encoding_ops);
    span.counter("allocs", result_.total_allocs());
    span.counter("frees", result_.free_count);
    span.counter("violations", result_.violations.size());
    span.counter("blocked_accesses", result_.blocked_accesses);
    if (options_.stack_walk) span.counter("walked_frames", result_.walked_frames);
  }
  return std::move(result_);
}

std::uint64_t Interpreter::current_ccid() noexcept {
  if (!options_.stack_walk) return reg_.value();
  // The expensive baseline: fold the whole active call-site chain, exactly
  // as an FCS PCC encoder would have done incrementally. The walk itself is
  // the cost being modeled (one "frame visit" per stack entry).
  std::uint64_t v = 0;
  for (cce::CallSiteId site : site_stack_) {
    v = 3 * v + support::mix64(0x48542b5eedULL ^ (static_cast<std::uint64_t>(site) + 1));
    ++result_.walked_frames;
  }
  return v;
}

void Interpreter::record_access(cce::FunctionId f, const AccessOutcome& outcome) {
  record_one(f, outcome);
  for (const AccessOutcome& extra : backend_.drain_pending_violations()) {
    record_one(f, extra);
  }
}

void Interpreter::record_one(cce::FunctionId f, const AccessOutcome& outcome) {
  if (outcome.ok()) return;
  if (outcome.kind == AccessKind::kBlockedByGuard) {
    ++result_.blocked_accesses;
    return;
  }
  result_.violations.push_back(Violation{outcome, f});
  if (options_.stop_on_violation) aborted_ = true;
}

bool Interpreter::exec_body(cce::FunctionId f, const std::vector<Action>& body) {
  for (const Action& action : body) {
    if (aborted_) return false;
    if (!exec_action(f, action)) return false;
  }
  return true;
}

bool Interpreter::exec_action(cce::FunctionId f, const Action& action) {
  if (++result_.steps > options_.max_steps) {
    aborted_ = true;
    return false;
  }
  const Input& input = *input_;

  switch (action.kind) {
    case Action::Kind::kCall: {
      ++result_.calls;
      reg_.on_call(action.site);
      if (options_.stack_walk) site_stack_.push_back(action.site);
      const cce::FunctionId callee = program_.graph().site(action.site).callee;
      const bool ok = exec_body(callee, program_.body(callee));
      if (options_.stack_walk) site_stack_.pop_back();
      reg_.on_return();
      return ok;
    }
    case Action::Kind::kAlloc: {
      ++result_.calls;
      reg_.on_call(action.site);
      if (options_.stack_walk) site_stack_.push_back(action.site);
      const std::uint64_t ccid = current_ccid();
      if (options_.stack_walk) site_stack_.pop_back();
      const std::uint64_t addr =
          backend_.allocate(action.alloc_fn, action.size.resolve(input),
                            action.alignment.resolve(input), ccid);
      reg_.on_return();
      if (addr == 0) {
        aborted_ = true;  // OOM / backend refusal is fatal for the run
        return false;
      }
      slots_[action.slot] = addr;
      ++result_.alloc_counts[static_cast<std::size_t>(action.alloc_fn)];
      ++result_.alloc_sites[AllocSiteKey{action.alloc_fn, ccid}];
      return true;
    }
    case Action::Kind::kRealloc: {
      ++result_.calls;
      reg_.on_call(action.site);
      if (options_.stack_walk) site_stack_.push_back(action.site);
      const std::uint64_t ccid = current_ccid();
      if (options_.stack_walk) site_stack_.pop_back();
      const std::uint64_t addr =
          backend_.reallocate(slots_[action.slot], action.size.resolve(input), ccid);
      reg_.on_return();
      if (addr == 0) {
        aborted_ = true;
        return false;
      }
      slots_[action.slot] = addr;
      ++result_.alloc_counts[static_cast<std::size_t>(AllocFn::kRealloc)];
      ++result_.alloc_sites[AllocSiteKey{AllocFn::kRealloc, ccid}];
      return true;
    }
    case Action::Kind::kFree: {
      ++result_.calls;
      reg_.on_call(action.site);
      backend_.deallocate(slots_[action.slot]);
      reg_.on_return();
      ++result_.free_count;
      // The slot intentionally keeps the stale address: later actions on it
      // model dangling-pointer use.
      return true;
    }
    case Action::Kind::kWrite: {
      record_access(f, backend_.write(slots_[action.slot],
                                      action.offset.resolve(input),
                                      action.size.resolve(input)));
      return true;
    }
    case Action::Kind::kRead: {
      record_access(f, backend_.read(slots_[action.slot],
                                     action.offset.resolve(input),
                                     action.size.resolve(input), action.use));
      return true;
    }
    case Action::Kind::kCopy: {
      record_access(f, backend_.copy(slots_[action.src_slot],
                                     action.src_offset.resolve(input),
                                     slots_[action.slot],
                                     action.offset.resolve(input),
                                     action.size.resolve(input)));
      return true;
    }
    case Action::Kind::kLoop: {
      const std::uint64_t count = action.count.resolve(input);
      for (std::uint64_t i = 0; i < count; ++i) {
        if (!exec_body(f, action.body)) return false;
      }
      return true;
    }
  }
  throw std::logic_error("Interpreter: unknown action kind");
}

}  // namespace ht::progmodel
