// Value model for synthetic programs.
//
// Synthetic programs stand in for the paper's instrumented C/C++ binaries
// (the LLVM-pass substrate). Program actions reference sizes, offsets and
// counts either as literals or as *input parameters*, so one program can be
// driven by both benign and attack inputs — exactly how the offline patch
// generator replays an attack input against the vulnerable program.
#pragma once

#include <concepts>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace ht::progmodel {

/// The heap-allocation API family HeapTherapy+ intercepts (§VI).
enum class AllocFn : std::uint8_t {
  kMalloc,
  kCalloc,
  kRealloc,
  kMemalign,
  kAlignedAlloc,
};

inline constexpr AllocFn kAllAllocFns[] = {AllocFn::kMalloc, AllocFn::kCalloc,
                                           AllocFn::kRealloc, AllocFn::kMemalign,
                                           AllocFn::kAlignedAlloc};

[[nodiscard]] constexpr std::string_view alloc_fn_name(AllocFn fn) noexcept {
  switch (fn) {
    case AllocFn::kMalloc: return "malloc";
    case AllocFn::kCalloc: return "calloc";
    case AllocFn::kRealloc: return "realloc";
    case AllocFn::kMemalign: return "memalign";
    case AllocFn::kAlignedAlloc: return "aligned_alloc";
  }
  return "?";
}

/// How a read's result is used. Mirrors §V: V-bits are checked only when a
/// value decides control flow, forms a memory address, or crosses into the
/// kernel (syscall) — plain data copies merely propagate V-bits, which is
/// what makes padding reads (paper Fig. 4) legal.
enum class ReadUse : std::uint8_t {
  kData,     ///< copy/compute only; propagates validity, never warns
  kBranch,   ///< decides control flow (e.g. jnz)
  kAddress,  ///< used as a memory address
  kSyscall,  ///< passed to the kernel (includes network sends / leaks)
};

[[nodiscard]] constexpr std::string_view read_use_name(ReadUse use) noexcept {
  switch (use) {
    case ReadUse::kData: return "data";
    case ReadUse::kBranch: return "branch";
    case ReadUse::kAddress: return "address";
    case ReadUse::kSyscall: return "syscall";
  }
  return "?";
}

/// A run input: attack inputs and benign inputs are both just parameter
/// vectors interpreted by the program's Value references.
struct Input {
  std::vector<std::uint64_t> params;

  [[nodiscard]] std::uint64_t param(std::size_t i) const {
    if (i >= params.size()) {
      throw std::out_of_range("Input: missing parameter " + std::to_string(i));
    }
    return params[i];
  }
};

/// A literal or a reference to an input parameter.
class Value {
 public:
  constexpr Value() : kind_(Kind::kLiteral), payload_(0) {}
  template <std::integral T>
  constexpr Value(T literal)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kLiteral), payload_(static_cast<std::uint64_t>(literal)) {}

  /// A reference to input parameter `index`.
  [[nodiscard]] static constexpr Value input(std::uint32_t index) {
    Value v;
    v.kind_ = Kind::kInput;
    v.payload_ = index;
    return v;
  }

  [[nodiscard]] std::uint64_t resolve(const Input& in) const {
    return kind_ == Kind::kLiteral ? payload_
                                   : in.param(static_cast<std::size_t>(payload_));
  }

  [[nodiscard]] constexpr bool is_input() const noexcept { return kind_ == Kind::kInput; }

  /// The literal payload; meaningful only when !is_input().
  [[nodiscard]] constexpr std::uint64_t literal() const noexcept { return payload_; }

  /// The referenced parameter index; meaningful only when is_input().
  [[nodiscard]] constexpr std::uint32_t input_index() const noexcept {
    return static_cast<std::uint32_t>(payload_);
  }

 private:
  enum class Kind : std::uint8_t { kLiteral, kInput };
  Kind kind_;
  std::uint64_t payload_;
};

}  // namespace ht::progmodel
