#include "progmodel/program_io.hpp"

#include <sstream>
#include <vector>

#include "progmodel/builder.hpp"
#include "support/str.hpp"

namespace ht::progmodel {

namespace {

std::string value_text(const Value& v) {
  if (v.is_input()) {
    // Recover the parameter index by probing (Value is deliberately opaque).
    for (std::uint32_t i = 0; i < 256; ++i) {
      Input probe;
      probe.params.assign(i + 1, 0);
      probe.params[i] = 1;
      try {
        if (v.resolve(probe) == 1) return "$" + std::to_string(i);
      } catch (const std::out_of_range&) {
      }
    }
    return "$?";
  }
  const Input empty;
  return std::to_string(v.resolve(empty));
}

void serialize_body(const Program& program, const std::vector<Action>& body,
                    int indent, std::ostringstream& os) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const Action& a : body) {
    switch (a.kind) {
      case Action::Kind::kCall:
        os << pad << "call "
           << program.graph().function_name(program.graph().site(a.site).callee)
           << "\n";
        break;
      case Action::Kind::kAlloc:
        os << pad << "s" << a.slot << " = " << alloc_fn_name(a.alloc_fn) << "("
           << value_text(a.size);
        if (a.alloc_fn == AllocFn::kMemalign ||
            a.alloc_fn == AllocFn::kAlignedAlloc) {
          os << ", align=" << value_text(a.alignment);
        }
        os << ")\n";
        break;
      case Action::Kind::kRealloc:
        os << pad << "s" << a.slot << " = realloc(s" << a.slot << ", "
           << value_text(a.size) << ")\n";
        break;
      case Action::Kind::kFree:
        os << pad << "free(s" << a.slot << ")\n";
        break;
      case Action::Kind::kWrite:
        os << pad << "write(s" << a.slot << ", " << value_text(a.offset) << ", "
           << value_text(a.size) << ")\n";
        break;
      case Action::Kind::kRead:
        os << pad << "read(s" << a.slot << ", " << value_text(a.offset) << ", "
           << value_text(a.size) << ", " << read_use_name(a.use) << ")\n";
        break;
      case Action::Kind::kCopy:
        os << pad << "copy(s" << a.src_slot << "+" << value_text(a.src_offset)
           << " -> s" << a.slot << "+" << value_text(a.offset) << ", "
           << value_text(a.size) << ")\n";
        break;
      case Action::Kind::kLoop:
        os << pad << "loop " << value_text(a.count) << " {\n";
        serialize_body(program, a.body, indent + 1, os);
        os << pad << "}\n";
        break;
    }
  }
}

bool is_alloc_api_node(const Program& program, cce::FunctionId f) {
  for (AllocFn fn : kAllAllocFns) {
    if (program.alloc_fn_node(fn) == f) return true;
  }
  return f == program.free_node();
}

}  // namespace

std::string serialize_program(const Program& program) {
  std::ostringstream os;
  os << "# HeapTherapy+ program\n";
  os << "program v1\n";
  os << "entry " << program.graph().function_name(program.entry()) << "\n";
  for (cce::FunctionId f = 0; f < program.graph().function_count(); ++f) {
    if (is_alloc_api_node(program, f)) continue;  // implicit nodes
    os << "fn " << program.graph().function_name(f) << " {\n";
    serialize_body(program, program.body(f), 1, os);
    os << "}\n";
  }
  return os.str();
}

namespace {

/// Parser state: a two-pass design. Pass 1 declares every `fn` so forward
/// calls resolve; pass 2 appends statements in order.
class Parser {
 public:
  explicit Parser(std::string_view text) : lines_(support::split(text, '\n')) {}

  ProgramParseResult run() {
    ProgramParseResult result;
    if (!declare_functions()) {
      result.error = error_;
      return result;
    }
    if (!parse_bodies()) {
      result.error = error_;
      return result;
    }
    if (!entry_name_.empty()) {
      const auto id = find_function(entry_name_);
      if (!id) {
        result.error = "entry function '" + entry_name_ + "' not declared";
        return result;
      }
      builder_.set_entry(*id);
    }
    try {
      result.program = builder_.build();
    } catch (const std::exception& e) {
      result.error = e.what();
    }
    return result;
  }

 private:
  bool fail(std::size_t line_no, const std::string& message) {
    error_ = "line " + std::to_string(line_no + 1) + ": " + message;
    return false;
  }

  std::optional<cce::FunctionId> find_function(std::string_view name) {
    for (std::size_t i = 0; i < fn_names_.size(); ++i) {
      if (fn_names_[i] == name) return fn_ids_[i];
    }
    return std::nullopt;
  }

  bool declare_functions() {
    bool version_seen = false;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      std::string_view line = support::trim(lines_[i]);
      if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
        line = support::trim(line.substr(0, hash));
      }
      if (line.empty()) continue;
      if (support::starts_with(line, "program ")) {
        if (support::trim(line.substr(8)) != "v1") {
          return fail(i, "unsupported program version");
        }
        version_seen = true;
      } else if (support::starts_with(line, "fn ")) {
        std::string_view rest = support::trim(line.substr(3));
        if (rest.empty() || rest.back() != '{') return fail(i, "expected 'fn name {'");
        rest.remove_suffix(1);
        const std::string name(support::trim(rest));
        if (name.empty()) return fail(i, "function name missing");
        if (find_function(name)) return fail(i, "duplicate function '" + name + "'");
        fn_names_.push_back(name);
        fn_ids_.push_back(builder_.function(name));
      }
    }
    if (!version_seen) {
      error_ = "missing 'program v1' header";
      return false;
    }
    if (fn_names_.empty()) {
      error_ = "no functions declared";
      return false;
    }
    return true;
  }

  std::optional<Value> parse_value(std::string_view text) {
    text = support::trim(text);
    if (!text.empty() && text.front() == '$') {
      const auto idx = support::parse_u64(text.substr(1));
      if (!idx || *idx > UINT32_MAX) return std::nullopt;
      return Value::input(static_cast<std::uint32_t>(*idx));
    }
    const auto literal = support::parse_u64(text);
    if (!literal) return std::nullopt;
    return Value(*literal);
  }

  std::optional<std::uint32_t> parse_slot(std::string_view text) {
    text = support::trim(text);
    if (text.size() < 2 || text.front() != 's') return std::nullopt;
    const auto n = support::parse_u64(text.substr(1));
    if (!n || *n > UINT32_MAX) return std::nullopt;
    return static_cast<std::uint32_t>(*n);
  }

  /// Splits "name(arg1, arg2, ...)" into name and args.
  static bool split_call(std::string_view text, std::string_view& name,
                         std::vector<std::string_view>& args) {
    const std::size_t open = text.find('(');
    if (open == std::string_view::npos || text.back() != ')') return false;
    name = support::trim(text.substr(0, open));
    const std::string_view inner = text.substr(open + 1, text.size() - open - 2);
    args.clear();
    if (!support::trim(inner).empty()) {
      for (std::string_view a : support::split(inner, ',')) {
        args.push_back(support::trim(a));
      }
    }
    return true;
  }

  bool parse_statement(std::size_t i, cce::FunctionId fn, std::string_view line) {
    if (support::starts_with(line, "call ")) {
      const auto callee = find_function(support::trim(line.substr(5)));
      if (!callee) return fail(i, "call to undeclared function");
      builder_.call(fn, *callee);
      return true;
    }
    if (support::starts_with(line, "loop ")) {
      std::string_view rest = support::trim(line.substr(5));
      if (rest.empty() || rest.back() != '{') return fail(i, "expected 'loop N {'");
      rest.remove_suffix(1);
      const auto count = parse_value(rest);
      if (!count) return fail(i, "bad loop count");
      builder_.begin_loop(fn, *count);
      ++open_loops_;
      return true;
    }
    if (line == "}") {
      if (open_loops_ == 0) return fail(i, "unmatched '}'");
      builder_.end_loop(fn);
      --open_loops_;
      return true;
    }

    // Assignment forms: sN = api(...).
    if (const std::size_t eq = line.find('='); eq != std::string_view::npos &&
                                               line.find("->") == std::string_view::npos) {
      const auto slot = parse_slot(line.substr(0, eq));
      if (!slot) return fail(i, "bad slot on lhs");
      std::string_view name;
      std::vector<std::string_view> args;
      if (!split_call(support::trim(line.substr(eq + 1)), name, args)) {
        return fail(i, "malformed allocation call");
      }
      if (name == "realloc") {
        if (args.size() != 2) return fail(i, "realloc takes (sN, size)");
        const auto src = parse_slot(args[0]);
        const auto size = parse_value(args[1]);
        if (!src || *src != *slot || !size) return fail(i, "bad realloc operands");
        builder_.realloc(fn, *slot, *size);
        return true;
      }
      std::optional<AllocFn> api;
      for (AllocFn candidate : kAllAllocFns) {
        if (name == alloc_fn_name(candidate)) api = candidate;
      }
      if (!api || *api == AllocFn::kRealloc) return fail(i, "unknown allocation API");
      const bool aligned =
          *api == AllocFn::kMemalign || *api == AllocFn::kAlignedAlloc;
      if (args.size() != (aligned ? 2u : 1u)) return fail(i, "bad argument count");
      const auto size = parse_value(args[0]);
      if (!size) return fail(i, "bad size");
      Value alignment(0);
      if (aligned) {
        const std::string_view a = args[1];
        if (!support::starts_with(a, "align=")) return fail(i, "expected align=");
        const auto av = parse_value(a.substr(6));
        if (!av) return fail(i, "bad alignment");
        alignment = *av;
      }
      builder_.alloc(fn, *api, *size, *slot, alignment);
      return true;
    }

    // copy(sA+off -> sB+off, len)
    if (support::starts_with(line, "copy(")) {
      std::string_view name;
      std::vector<std::string_view> args;
      // Re-split manually: the arrow contains no comma, so split_call works
      // with args[0] = "sA+off -> sB+off", args[1] = len.
      if (!split_call(line, name, args) || args.size() != 2) {
        return fail(i, "malformed copy");
      }
      const std::size_t arrow = args[0].find("->");
      if (arrow == std::string_view::npos) return fail(i, "copy needs '->'");
      const auto parse_side =
          [&](std::string_view side) -> std::optional<std::pair<std::uint32_t, Value>> {
        const std::size_t plus = side.find('+');
        if (plus == std::string_view::npos) return std::nullopt;
        const auto slot = parse_slot(side.substr(0, plus));
        const auto off = parse_value(side.substr(plus + 1));
        if (!slot || !off) return std::nullopt;
        return std::make_pair(*slot, *off);
      };
      const auto src = parse_side(support::trim(args[0].substr(0, arrow)));
      const auto dst = parse_side(support::trim(args[0].substr(arrow + 2)));
      const auto len = parse_value(args[1]);
      if (!src || !dst || !len) return fail(i, "bad copy operands");
      builder_.copy(fn, src->first, src->second, dst->first, dst->second, *len);
      return true;
    }

    // write / read / free.
    std::string_view name;
    std::vector<std::string_view> args;
    if (!split_call(line, name, args)) return fail(i, "unrecognized statement");
    if (name == "free" && args.size() == 1) {
      const auto slot = parse_slot(args[0]);
      if (!slot) return fail(i, "bad slot");
      builder_.free(fn, *slot);
      return true;
    }
    if (name == "write" && args.size() == 3) {
      const auto slot = parse_slot(args[0]);
      const auto off = parse_value(args[1]);
      const auto len = parse_value(args[2]);
      if (!slot || !off || !len) return fail(i, "bad write operands");
      builder_.write(fn, *slot, *off, *len);
      return true;
    }
    if (name == "read" && args.size() == 4) {
      const auto slot = parse_slot(args[0]);
      const auto off = parse_value(args[1]);
      const auto len = parse_value(args[2]);
      std::optional<ReadUse> use;
      for (ReadUse candidate : {ReadUse::kData, ReadUse::kBranch, ReadUse::kAddress,
                                ReadUse::kSyscall}) {
        if (args[3] == read_use_name(candidate)) use = candidate;
      }
      if (!slot || !off || !len || !use) return fail(i, "bad read operands");
      builder_.read(fn, *slot, *off, *len, *use);
      return true;
    }
    return fail(i, "unrecognized statement");
  }

  bool parse_bodies() {
    // A sentinel instead of std::optional sidesteps a GCC
    // -Wmaybe-uninitialized false positive on the optional's payload.
    cce::FunctionId current = cce::kInvalidFunction;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      std::string_view line = support::trim(lines_[i]);
      // Strip trailing comments.
      if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
        line = support::trim(line.substr(0, hash));
      }
      if (line.empty()) continue;
      if (support::starts_with(line, "program ")) continue;
      if (support::starts_with(line, "entry ")) {
        entry_name_ = std::string(support::trim(line.substr(6)));
        continue;
      }
      if (support::starts_with(line, "fn ")) {
        if (current != cce::kInvalidFunction) return fail(i, "nested 'fn'");
        std::string_view rest = support::trim(line.substr(3));
        rest.remove_suffix(1);  // validated in pass 1
        current = find_function(support::trim(rest)).value_or(cce::kInvalidFunction);
        continue;
      }
      if (line == "}" && current != cce::kInvalidFunction && open_loops_ == 0) {
        current = cce::kInvalidFunction;
        continue;
      }
      if (current == cce::kInvalidFunction) {
        return fail(i, "statement outside a function");
      }
      if (!parse_statement(i, current, line)) return false;
    }
    if (current != cce::kInvalidFunction) {
      error_ = "unterminated function body";
      return false;
    }
    return true;
  }

  std::vector<std::string_view> lines_;
  ProgramBuilder builder_;
  std::vector<std::string> fn_names_;
  std::vector<cce::FunctionId> fn_ids_;
  std::string entry_name_;
  std::size_t open_loops_ = 0;
  std::string error_;
};

}  // namespace

ProgramParseResult parse_program(std::string_view text) {
  return Parser(text).run();
}

}  // namespace ht::progmodel
