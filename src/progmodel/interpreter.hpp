// Interpreter: executes a synthetic Program against an AllocatorBackend
// while maintaining the calling-context encoding register.
//
// This is the reproduction's equivalent of *running the instrumented
// binary*: encoding updates execute at exactly the call sites the
// InstrumentationPlan selected, allocations read the register the way the
// interposed malloc does, and memory actions flow to whichever heap
// substrate (offline shadow heap / online hardened allocator) is plugged in.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cce/encoders.hpp"
#include "progmodel/backend.hpp"
#include "progmodel/program.hpp"

namespace ht::support {
class Tracer;
}  // namespace ht::support

namespace ht::progmodel {

/// A violation observed during a run, tagged with the function whose body
/// performed the access.
struct Violation {
  AccessOutcome outcome;
  cce::FunctionId in_function = cce::kInvalidFunction;
};

/// Allocation-site statistics key: the {FUN, CCID} pair of §V's patches.
struct AllocSiteKey {
  AllocFn fn = AllocFn::kMalloc;
  std::uint64_t ccid = 0;

  bool operator==(const AllocSiteKey&) const = default;
};

struct AllocSiteKeyHash {
  std::size_t operator()(const AllocSiteKey& k) const noexcept {
    return static_cast<std::size_t>(
        (k.ccid * 0x9e3779b97f4a7c15ULL) ^ static_cast<std::uint64_t>(k.fn));
  }
};

struct RunOptions {
  /// Abort the run after this many executed actions (runaway guard).
  std::uint64_t max_steps = 500'000'000;
  /// Stop at the first violation instead of resuming (§V resumes by
  /// default so one attack input can reveal multiple vulnerabilities).
  bool stop_on_violation = false;
  /// Compute CCIDs by *walking the call stack* at every allocation instead
  /// of reading the encoding register — the expensive gdb-style baseline
  /// the paper contrasts encoding against (§IV: "simple call stack walking
  /// ... would incur a large overhead"). O(depth) per allocation; the
  /// resulting CCIDs equal what an FCS PCC encoder would produce, so
  /// patches remain interchangeable between the two modes.
  bool stack_walk = false;
  /// Offline-pipeline tracer (support/trace.hpp). When set, each run() is
  /// recorded as an "interpreter.run" span carrying the run's volume
  /// counters; null (the default) costs one branch per run.
  support::Tracer* tracer = nullptr;
};

struct RunResult {
  bool completed = false;
  std::uint64_t steps = 0;
  std::uint64_t calls = 0;
  std::uint64_t encoding_ops = 0;  ///< executed instrumented call sites
  std::uint64_t walked_frames = 0;  ///< frames visited by stack-walk mode
  std::uint64_t alloc_counts[5] = {0, 0, 0, 0, 0};  ///< by AllocFn
  std::uint64_t free_count = 0;
  std::uint64_t blocked_accesses = 0;  ///< online guard-page interventions
  std::vector<Violation> violations;
  /// Allocations per {FUN, CCID}; drives the paper's median-frequency
  /// vulnerable-CCID selection protocol (§VIII-B2) and Table IV.
  std::unordered_map<AllocSiteKey, std::uint64_t, AllocSiteKeyHash> alloc_sites;

  [[nodiscard]] std::uint64_t total_allocs() const noexcept {
    std::uint64_t total = 0;
    for (std::uint64_t c : alloc_counts) total += c;
    return total;
  }
  [[nodiscard]] bool clean() const noexcept { return completed && violations.empty(); }
};

class Interpreter {
 public:
  /// `encoder` may be null: the program then runs uninstrumented (native
  /// baseline) and every allocation reports CCID 0.
  Interpreter(const Program& program, const cce::Encoder* encoder,
              AllocatorBackend& backend);

  [[nodiscard]] RunResult run(const Input& input, const RunOptions& options = {});

 private:
  bool exec_body(cce::FunctionId f, const std::vector<Action>& body);
  bool exec_action(cce::FunctionId f, const Action& action);
  void record_access(cce::FunctionId f, const AccessOutcome& outcome);
  void record_one(cce::FunctionId f, const AccessOutcome& outcome);
  [[nodiscard]] std::uint64_t current_ccid() noexcept;

  const Program& program_;
  const cce::Encoder* encoder_;
  AllocatorBackend& backend_;
  /// Used when no encoder is supplied: an empty plan instruments nothing,
  /// so the register stays 0 and no encoding ops are counted.
  cce::PccEncoder fallback_;

  // Per-run state.
  const Input* input_ = nullptr;
  RunOptions options_;
  RunResult result_;
  std::vector<std::uint64_t> slots_;
  cce::CcidRegister reg_;
  /// Active call-site stack, maintained only in stack-walk mode.
  std::vector<cce::CallSiteId> site_stack_;
  bool aborted_ = false;
};

}  // namespace ht::progmodel
