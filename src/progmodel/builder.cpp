#include "progmodel/builder.hpp"

#include <stdexcept>

namespace ht::progmodel {

ProgramBuilder::ProgramBuilder() = default;

cce::FunctionId ProgramBuilder::function(std::string name) {
  const cce::FunctionId f = program_.graph_.add_function(std::move(name));
  program_.bodies_.emplace_back();
  open_loops_.emplace_back();
  if (program_.entry_ == cce::kInvalidFunction) program_.entry_ = f;
  return f;
}

void ProgramBuilder::set_entry(cce::FunctionId f) {
  if (f >= program_.graph_.function_count()) {
    throw std::out_of_range("set_entry: unknown function");
  }
  program_.entry_ = f;
}

cce::FunctionId ProgramBuilder::ensure_alloc_node(AllocFn fn) {
  cce::FunctionId& node = program_.alloc_nodes_[static_cast<std::size_t>(fn)];
  if (node == cce::kInvalidFunction) {
    node = program_.graph_.add_function(std::string(alloc_fn_name(fn)));
    program_.bodies_.emplace_back();
    open_loops_.emplace_back();
    program_.alloc_targets_.push_back(node);
  }
  return node;
}

cce::FunctionId ProgramBuilder::ensure_free_node() {
  if (program_.free_node_ == cce::kInvalidFunction) {
    program_.free_node_ = program_.graph_.add_function("free");
    program_.bodies_.emplace_back();
    open_loops_.emplace_back();
  }
  return program_.free_node_;
}

void ProgramBuilder::note_slot(std::uint32_t slot) {
  if (slot + 1 > program_.slot_count_) program_.slot_count_ = slot + 1;
}

// Appends into the innermost open loop of f, or f's top-level body.
//
// Pointer safety relies on strict stack discipline: while a loop is open,
// every append targets *its* body, so no vector that holds a still-open
// loop's Action is ever grown.
Action& ProgramBuilder::append(cce::FunctionId f, Action action) {
  if (built_) throw std::logic_error("ProgramBuilder: already built");
  if (f >= program_.bodies_.size()) throw std::out_of_range("append: unknown function");
  std::vector<Action>& dest =
      open_loops_[f].empty() ? program_.bodies_[f] : open_loops_[f].back()->body;
  dest.push_back(std::move(action));
  return dest.back();
}

cce::CallSiteId ProgramBuilder::call(cce::FunctionId f, cce::FunctionId callee) {
  Action a;
  a.kind = Action::Kind::kCall;
  a.site = program_.graph_.add_call_site(f, callee);
  append(f, std::move(a));
  return program_.graph_.sites().back().id;
}

cce::CallSiteId ProgramBuilder::alloc(cce::FunctionId f, AllocFn fn, Value size,
                                      std::uint32_t slot, Value alignment) {
  const cce::FunctionId node = ensure_alloc_node(fn);
  Action a;
  a.kind = Action::Kind::kAlloc;
  a.site = program_.graph_.add_call_site(f, node);
  a.alloc_fn = fn;
  a.size = size;
  a.alignment = alignment;
  a.slot = slot;
  note_slot(slot);
  const cce::CallSiteId site = a.site;
  append(f, std::move(a));
  return site;
}

cce::CallSiteId ProgramBuilder::realloc(cce::FunctionId f, std::uint32_t slot,
                                        Value new_size) {
  const cce::FunctionId node = ensure_alloc_node(AllocFn::kRealloc);
  Action a;
  a.kind = Action::Kind::kRealloc;
  a.site = program_.graph_.add_call_site(f, node);
  a.alloc_fn = AllocFn::kRealloc;
  a.size = new_size;
  a.slot = slot;
  note_slot(slot);
  const cce::CallSiteId site = a.site;
  append(f, std::move(a));
  return site;
}

void ProgramBuilder::free(cce::FunctionId f, std::uint32_t slot) {
  const cce::FunctionId node = ensure_free_node();
  Action a;
  a.kind = Action::Kind::kFree;
  a.site = program_.graph_.add_call_site(f, node);
  a.slot = slot;
  note_slot(slot);
  append(f, std::move(a));
}

void ProgramBuilder::write(cce::FunctionId f, std::uint32_t slot, Value offset,
                           Value length) {
  Action a;
  a.kind = Action::Kind::kWrite;
  a.slot = slot;
  a.offset = offset;
  a.size = length;
  note_slot(slot);
  append(f, std::move(a));
}

void ProgramBuilder::read(cce::FunctionId f, std::uint32_t slot, Value offset,
                          Value length, ReadUse use) {
  Action a;
  a.kind = Action::Kind::kRead;
  a.slot = slot;
  a.offset = offset;
  a.size = length;
  a.use = use;
  note_slot(slot);
  append(f, std::move(a));
}

void ProgramBuilder::copy(cce::FunctionId f, std::uint32_t src_slot, Value src_offset,
                          std::uint32_t dst_slot, Value dst_offset, Value length) {
  Action a;
  a.kind = Action::Kind::kCopy;
  a.src_slot = src_slot;
  a.src_offset = src_offset;
  a.slot = dst_slot;
  a.offset = dst_offset;
  a.size = length;
  note_slot(src_slot);
  note_slot(dst_slot);
  append(f, std::move(a));
}

void ProgramBuilder::begin_loop(cce::FunctionId f, Value count) {
  Action a;
  a.kind = Action::Kind::kLoop;
  a.count = count;
  Action& stored = append(f, std::move(a));
  open_loops_[f].push_back(&stored);
}

void ProgramBuilder::end_loop(cce::FunctionId f) {
  if (f >= open_loops_.size() || open_loops_[f].empty()) {
    throw std::logic_error("end_loop without begin_loop");
  }
  open_loops_[f].pop_back();
}

Program ProgramBuilder::build() {
  if (built_) throw std::logic_error("ProgramBuilder: already built");
  if (program_.entry_ == cce::kInvalidFunction) {
    throw std::logic_error("ProgramBuilder: no entry function");
  }
  for (const auto& loops : open_loops_) {
    if (!loops.empty()) throw std::logic_error("ProgramBuilder: unclosed loop");
  }
  built_ = true;
  return std::move(program_);
}

}  // namespace ht::progmodel
