// Program text format: synthetic programs as data files (.htp).
//
// A bug report's "steps to reproduce" (§III, footnote 2) becomes a file:
// the vendor ships the vulnerable-path model, anyone replays it through the
// offline analyzer (see tools/htrun). Round-trip guarantee: parse(serialize
// (p)) builds a program with an identical call graph, bodies, entry and
// slot usage — and therefore identical CCIDs under any encoder.
//
// Grammar (one statement per line; '#' comments; call sites are created in
// statement order, which is what makes the round trip CCID-exact):
//
//   program v1
//   entry <function>
//   fn <name> {
//     call <function>
//     s<N> = malloc(<value>)            | calloc(<value>)
//     s<N> = memalign(<value>, align=<value>) | aligned_alloc(...)
//     s<N> = realloc(s<N>, <value>)
//     free(s<N>)
//     write(s<N>, <value>, <value>)               # offset, length
//     read(s<N>, <value>, <value>, <use>)         # use: data|branch|address|syscall
//     copy(s<N>+<value> -> s<N>+<value>, <value>) # src+off -> dst+off, length
//     loop <value> {
//       ...
//     }
//   }
//
// <value> is a decimal literal or $<index> (run-input parameter).
#pragma once

#include <optional>
#include <string>

#include "progmodel/program.hpp"

namespace ht::progmodel {

/// Renders a program in the .htp format above.
[[nodiscard]] std::string serialize_program(const Program& program);

struct ProgramParseResult {
  std::optional<Program> program;
  std::string error;  ///< "line N: message" on failure
};

/// Parses .htp text. Returns an error (never throws) on malformed input.
[[nodiscard]] ProgramParseResult parse_program(std::string_view text);

}  // namespace ht::progmodel
