// Random well-formed program generation for property tests and ablations.
//
// Generates layered programs (so the call graph is a DAG and the additive
// encoder applies) whose leaves allocate, touch and free buffers. Every
// generated program is memory-clean by construction: writes initialize
// before reads, offsets stay in bounds, frees are balanced — so any
// violation reported while running one indicates a substrate bug.
#pragma once

#include <cstdint>

#include "progmodel/program.hpp"
#include "support/rng.hpp"

namespace ht::progmodel {

struct RandomProgramParams {
  std::uint32_t layers = 4;             ///< call depth (>= 2)
  std::uint32_t functions_per_layer = 3;
  std::uint32_t calls_per_function = 2;  ///< call sites into the next layer
  std::uint32_t allocs_per_leaf = 2;     ///< allocation sites per leaf function
  std::uint32_t max_alloc_size = 256;    ///< bytes (>= 8)
  double memalign_probability = 0.15;    ///< chance a site uses memalign
  double calloc_probability = 0.2;       ///< chance a site uses calloc
  std::uint32_t loop_count = 1;          ///< leaf work repeated this many times
};

/// Builds a random program. Distinct runs of the same seed produce the same
/// program.
[[nodiscard]] Program make_random_program(support::Rng& rng,
                                          const RandomProgramParams& params);

}  // namespace ht::progmodel
