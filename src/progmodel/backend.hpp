// Allocator backend interface: the seam between synthetic programs and the
// two heap substrates.
//
// The same program runs against
//   - shadow::SimHeap   (offline phase: shadow memory, red zones, precise
//                        detection — the Valgrind-equivalent), and
//   - runtime::GuardedBackend (online phase: the real hardened allocator
//                        enforcing patch-driven defenses).
// This mirrors the paper's architecture where one instrumented binary is
// used for both offline patch generation and online protection (§III-B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "progmodel/values.hpp"

namespace ht::progmodel {

/// What a memory access did, as observed by the backend.
enum class AccessKind : std::uint8_t {
  kOk,             ///< clean access
  kOverflow,       ///< touched a red zone / past the buffer end (overread too)
  kUseAfterFree,   ///< touched freed (quarantined) memory
  kUninitRead,     ///< checked use of uninitialized bits
  kWild,           ///< address owned by no live or quarantined buffer
  kBlockedByGuard, ///< online defense: guard page stopped the access
};

[[nodiscard]] constexpr std::string_view access_kind_name(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::kOk: return "ok";
    case AccessKind::kOverflow: return "overflow";
    case AccessKind::kUseAfterFree: return "use-after-free";
    case AccessKind::kUninitRead: return "uninitialized-read";
    case AccessKind::kWild: return "wild";
    case AccessKind::kBlockedByGuard: return "blocked-by-guard-page";
  }
  return "?";
}

/// Outcome of one access. For violations, identifies the *victim* buffer —
/// via origin tracking for uninitialized reads — so the patch generator can
/// recover the allocation-time calling context (§V).
struct AccessOutcome {
  AccessKind kind = AccessKind::kOk;
  bool is_write = false;
  /// Allocation-time CCID of the victim buffer (valid unless kWild).
  std::uint64_t victim_ccid = 0;
  /// Allocation function of the victim buffer.
  AllocFn victim_fn = AllocFn::kMalloc;

  [[nodiscard]] bool ok() const noexcept { return kind == AccessKind::kOk; }
};

/// Abstract heap used by the interpreter. Addresses are opaque 64-bit
/// values: simulated VAs for SimHeap, real pointers for the online backend.
class AllocatorBackend {
 public:
  virtual ~AllocatorBackend() = default;

  /// Allocates via `fn`. `alignment` is meaningful for memalign-family
  /// calls (0 = natural). `ccid` is the allocation-time calling context id
  /// read from the encoding register. Returns 0 on failure.
  virtual std::uint64_t allocate(AllocFn fn, std::uint64_t size,
                                 std::uint64_t alignment, std::uint64_t ccid) = 0;

  /// realloc semantics (§V "How to handle realloc"): content preserved,
  /// CCID re-tagged with the realloc-time context. Returns new address.
  virtual std::uint64_t reallocate(std::uint64_t addr, std::uint64_t new_size,
                                   std::uint64_t ccid) = 0;

  /// free(). Freed memory must not be considered accessible afterwards.
  virtual void deallocate(std::uint64_t addr) = 0;

  /// Write `len` bytes at addr+offset (attacker- or program-controlled).
  virtual AccessOutcome write(std::uint64_t addr, std::uint64_t offset,
                              std::uint64_t len) = 0;

  /// Read `len` bytes at addr+offset with the given use.
  virtual AccessOutcome read(std::uint64_t addr, std::uint64_t offset,
                             std::uint64_t len, ReadUse use) = 0;

  /// memcpy-like transfer that propagates validity/origin state.
  virtual AccessOutcome copy(std::uint64_t src, std::uint64_t src_off,
                             std::uint64_t dst, std::uint64_t dst_off,
                             std::uint64_t len) = 0;

  /// One access can raise several warnings (e.g. Heartbleed's oversized
  /// read is an uninitialized read *and* an overread). The primary warning
  /// is the method's return value; any further warnings are queued here and
  /// drained by the interpreter after each access. Default: none.
  virtual std::vector<AccessOutcome> drain_pending_violations() { return {}; }
};

}  // namespace ht::progmodel
