// SimHeap: the offline analysis heap — a simulated address space with
// shadow-memory detection semantics (§V).
//
// Layout per allocation (paper Fig. 3): a 16-byte red zone on each side of
// the user buffer, marked inaccessible, so any contiguous over-write or
// over-read lands in a red zone and is detected. Freed buffers become
// inaccessible and enter a FIFO queue of freed blocks (default quota 2 GB)
// so dangling accesses are detected until the quota forces reuse.
// Every buffer is tagged with its allocation-time CCID, which is how a
// warning is converted into a {FUN, CCID, T} patch.
//
// Addresses are simulated (never dereferenced): a bump allocator hands out
// disjoint regions, so "memory" exists only as shadow state. That is all
// the offline phase needs — it reasons about validity, not values.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "progmodel/backend.hpp"
#include "shadow/shadow_memory.hpp"

namespace ht::shadow {

struct SimHeapConfig {
  std::uint64_t redzone_bytes = 16;  ///< paper: "a pair of red zones (16 bytes each)"
  std::uint64_t quarantine_quota_bytes = 2ULL << 30;  ///< paper default: 2 GB
  std::uint64_t base_address = 1ULL << 32;
  /// §IX multi-execution replay: when set, only buffers whose allocation
  /// CCID passes the filter are quarantined on free; the rest are released
  /// immediately, bounding each execution's quarantine footprint to one
  /// CCID subspace.
  std::function<bool(std::uint64_t ccid)> quarantine_filter;
  /// Collect per-phase check volumes and check time (SimHeap::TraceStats)
  /// plus ShadowMemory op stats for the offline-pipeline tracer. Off by
  /// default: the disabled cost is one predicted branch per access check.
  bool collect_trace_stats = false;
};

/// Per-buffer bookkeeping. Retained for the lifetime of the SimHeap even
/// after release, so origin tracking can always resolve a victim.
struct BufferRecord {
  OriginId id = kNoOrigin;
  std::uint64_t user_addr = 0;
  std::uint64_t size = 0;
  std::uint64_t alignment = 0;
  std::uint64_t ccid = 0;
  progmodel::AllocFn fn = progmodel::AllocFn::kMalloc;

  enum class State : std::uint8_t { kLive, kQuarantined, kReleased };
  State state = State::kLive;

  std::uint64_t region_start = 0;  ///< includes leading red zone
  std::uint64_t region_end = 0;    ///< past trailing red zone
};

class SimHeap final : public progmodel::AllocatorBackend {
 public:
  explicit SimHeap(SimHeapConfig config = {});

  // AllocatorBackend ---------------------------------------------------
  std::uint64_t allocate(progmodel::AllocFn fn, std::uint64_t size,
                         std::uint64_t alignment, std::uint64_t ccid) override;
  std::uint64_t reallocate(std::uint64_t addr, std::uint64_t new_size,
                           std::uint64_t ccid) override;
  void deallocate(std::uint64_t addr) override;
  progmodel::AccessOutcome write(std::uint64_t addr, std::uint64_t offset,
                                 std::uint64_t len) override;
  progmodel::AccessOutcome read(std::uint64_t addr, std::uint64_t offset,
                                std::uint64_t len, progmodel::ReadUse use) override;
  progmodel::AccessOutcome copy(std::uint64_t src, std::uint64_t src_off,
                                std::uint64_t dst, std::uint64_t dst_off,
                                std::uint64_t len) override;
  std::vector<progmodel::AccessOutcome> drain_pending_violations() override;

  // Introspection -------------------------------------------------------
  [[nodiscard]] const BufferRecord* record_for_user_addr(std::uint64_t addr) const;
  [[nodiscard]] const BufferRecord* record(OriginId id) const;
  [[nodiscard]] std::uint64_t live_bytes() const noexcept { return live_bytes_; }
  [[nodiscard]] std::uint64_t quarantine_bytes() const noexcept {
    return quarantine_bytes_;
  }
  [[nodiscard]] std::size_t quarantine_depth() const noexcept {
    return quarantine_.size();
  }
  [[nodiscard]] std::uint64_t invalid_frees() const noexcept { return invalid_frees_; }
  [[nodiscard]] const ShadowMemory& shadow() const noexcept { return shadow_; }

  /// Check-volume counters for the offline tracer, populated only when
  /// `SimHeapConfig::collect_trace_stats` is set. "Redzone checks" are
  /// accessibility scans (the A-bit walk every access performs); "V-bit
  /// checks" are the bit-precise validity scans checked reads perform.
  /// `check_wall_ns`/`check_cpu_ns` accumulate the time spent inside
  /// write/read/copy — the shadow-check share of a replay, re-attributed
  /// as a `shadow_checks` span in the trace.
  struct TraceStats {
    std::uint64_t redzone_checks = 0;
    std::uint64_t redzone_check_bytes = 0;
    std::uint64_t vbit_checks = 0;
    std::uint64_t vbit_check_bytes = 0;
    std::uint64_t quarantine_pushes = 0;
    std::uint64_t quarantine_push_bytes = 0;
    std::uint64_t quarantine_evictions = 0;
    std::uint64_t quarantine_peak_bytes = 0;
    std::uint64_t quarantine_peak_depth = 0;
    std::uint64_t check_wall_ns = 0;
    std::uint64_t check_cpu_ns = 0;
  };
  [[nodiscard]] const TraceStats& trace_stats() const noexcept {
    return trace_stats_;
  }
  [[nodiscard]] bool collecting_trace_stats() const noexcept {
    return config_.collect_trace_stats;
  }

  /// Valgrind-style leak summary at end of analysis: every still-live
  /// buffer with its allocation context, so the dynamic-analysis report can
  /// list leaks next to the generated patches.
  struct LeakReport {
    struct Leak {
      OriginId id;
      std::uint64_t bytes;
      std::uint64_t ccid;
      progmodel::AllocFn fn;
    };
    std::vector<Leak> leaks;  ///< sorted by descending size
    std::uint64_t total_bytes = 0;
  };
  [[nodiscard]] LeakReport leak_report() const;

 private:
  /// Byte classification for violation attribution.
  struct ByteClass {
    const BufferRecord* owner = nullptr;  ///< nullptr = wild
    bool in_user_region = false;
  };
  [[nodiscard]] ByteClass classify(std::uint64_t addr) const;

  /// Result of scanning [addr, addr+len) for the first accessibility
  /// violation: how many leading bytes are accessible, and the violation
  /// (kOk if the whole range is clean).
  struct AccessScan {
    std::uint64_t accessible_len = 0;
    progmodel::AccessOutcome outcome{};
  };
  [[nodiscard]] AccessScan scan_accessible(std::uint64_t addr, std::uint64_t len,
                                           bool is_write);
  /// Returns the first violation and queues the rest for the interpreter.
  progmodel::AccessOutcome finish(std::vector<progmodel::AccessOutcome> violations);

  void release_oldest_quarantined();
  [[nodiscard]] progmodel::AccessOutcome violation(
      progmodel::AccessKind kind, bool is_write, const BufferRecord* victim) const;

  SimHeapConfig config_;
  ShadowMemory shadow_;
  std::uint64_t cursor_;
  std::vector<BufferRecord> records_;            // id - 1 -> record
  std::map<std::uint64_t, OriginId> by_region_;  // region_start -> id
  std::deque<OriginId> quarantine_;
  std::vector<progmodel::AccessOutcome> pending_;
  std::uint64_t quarantine_bytes_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t invalid_frees_ = 0;
  TraceStats trace_stats_;
};

}  // namespace ht::shadow
