#include "shadow/sim_heap.hpp"

#include <algorithm>

#include "support/trace.hpp"

namespace ht::shadow {

using progmodel::AccessKind;
using progmodel::AccessOutcome;
using progmodel::AllocFn;
using progmodel::ReadUse;

namespace {
constexpr std::uint64_t align_up(std::uint64_t value, std::uint64_t alignment) {
  return alignment <= 1 ? value : (value + alignment - 1) / alignment * alignment;
}

// Accumulates the wall/CPU time spent inside one write/read/copy into the
// heap's TraceStats. Inert (two null-checked branches) unless trace-stat
// collection is enabled.
class CheckTimer {
 public:
  CheckTimer(bool enabled, SimHeap::TraceStats* stats)
      : stats_(enabled ? stats : nullptr) {
    if (stats_ != nullptr) {
      wall_start_ = support::Tracer::now_ns();
      cpu_start_ = support::Tracer::thread_cpu_ns();
    }
  }
  ~CheckTimer() {
    if (stats_ != nullptr) {
      stats_->check_wall_ns += support::Tracer::now_ns() - wall_start_;
      stats_->check_cpu_ns += support::Tracer::thread_cpu_ns() - cpu_start_;
    }
  }
  CheckTimer(const CheckTimer&) = delete;
  CheckTimer& operator=(const CheckTimer&) = delete;

 private:
  SimHeap::TraceStats* stats_;
  std::uint64_t wall_start_ = 0;
  std::uint64_t cpu_start_ = 0;
};
}  // namespace

SimHeap::SimHeap(SimHeapConfig config) : config_(config), cursor_(config.base_address) {
  shadow_.collect_stats(config_.collect_trace_stats);
}

std::uint64_t SimHeap::allocate(AllocFn fn, std::uint64_t size,
                                std::uint64_t alignment, std::uint64_t ccid) {
  // Refuse requests that could not exist in a 48-bit VA space (and would
  // wrap the simulated cursor): the backend contract is 0 on failure.
  constexpr std::uint64_t kVaLimit = 1ULL << 48;
  if (size >= kVaLimit || alignment >= kVaLimit || cursor_ >= kVaLimit ||
      size + 2 * config_.redzone_bytes + alignment >= kVaLimit - cursor_) {
    return 0;
  }
  // Minimum 16-byte alignment mirrors glibc; memalign honors the request.
  const std::uint64_t align = std::max<std::uint64_t>(alignment, 16);
  const std::uint64_t user = align_up(cursor_ + config_.redzone_bytes, align);
  const std::uint64_t region_start = user - config_.redzone_bytes;
  const std::uint64_t region_end = user + size + config_.redzone_bytes;
  cursor_ = region_end;

  BufferRecord rec;
  rec.id = static_cast<OriginId>(records_.size() + 1);
  rec.user_addr = user;
  rec.size = size;
  rec.alignment = alignment;
  rec.ccid = ccid;
  rec.fn = fn;
  rec.state = BufferRecord::State::kLive;
  rec.region_start = region_start;
  rec.region_end = region_end;
  records_.push_back(rec);
  by_region_[region_start] = rec.id;

  // User bytes: accessible; calloc returns zeroed (valid) memory, every
  // other API returns uninitialized (invalid) memory. Red zones stay
  // inaccessible (the shadow default).
  shadow_.set_accessible(user, size, true);
  shadow_.set_valid(user, size, fn == AllocFn::kCalloc);
  shadow_.set_origin(user, size, rec.id);
  live_bytes_ += size;
  return user;
}

std::uint64_t SimHeap::reallocate(std::uint64_t addr, std::uint64_t new_size,
                                  std::uint64_t ccid) {
  if (addr == 0) return allocate(AllocFn::kRealloc, new_size, 0, ccid);
  const BufferRecord* old_rec = record_for_user_addr(addr);
  if (old_rec == nullptr || old_rec->state != BufferRecord::State::kLive) {
    ++invalid_frees_;  // realloc of a bad pointer is an invalid free
    return 0;
  }
  const OriginId old_id = old_rec->id;
  const std::uint64_t old_size = old_rec->size;
  const std::uint64_t old_user = old_rec->user_addr;

  // New buffer tagged with the realloc-time CCID (§V: "the allocation-time
  // CCID associated with the buffer is also updated upon realloc").
  const std::uint64_t new_user = allocate(AllocFn::kRealloc, new_size, 0, ccid);

  // Preserve content state: V-bits and origins move with the data. If the
  // buffer grew, the added region stays accessible-but-invalid; if it
  // shrank, the cut-off region simply is not copied (it became
  // inaccessible along with the old buffer).
  shadow_.copy_shadow(old_user, new_user, std::min(old_size, new_size));

  // Retire the old buffer through the free path (quarantined like free()).
  deallocate(old_user);
  (void)old_id;
  return new_user;
}

void SimHeap::deallocate(std::uint64_t addr) {
  if (addr == 0) return;  // free(NULL) is a no-op
  const BufferRecord* rec_ptr = record_for_user_addr(addr);
  if (rec_ptr == nullptr || rec_ptr->state != BufferRecord::State::kLive) {
    ++invalid_frees_;  // double free or wild free
    return;
  }
  BufferRecord& rec = records_[rec_ptr->id - 1];
  rec.state = BufferRecord::State::kQuarantined;
  shadow_.set_accessible(rec.user_addr, rec.size, false);
  live_bytes_ -= rec.size;
  if (config_.quarantine_filter && !config_.quarantine_filter(rec.ccid)) {
    // Outside this execution's CCID subspace (§IX): release immediately.
    rec.state = BufferRecord::State::kReleased;
    by_region_.erase(rec.region_start);
    return;
  }
  quarantine_.push_back(rec.id);
  quarantine_bytes_ += rec.size;
  if (config_.collect_trace_stats) {
    ++trace_stats_.quarantine_pushes;
    trace_stats_.quarantine_push_bytes += rec.size;
    trace_stats_.quarantine_peak_bytes =
        std::max(trace_stats_.quarantine_peak_bytes, quarantine_bytes_);
    trace_stats_.quarantine_peak_depth = std::max<std::uint64_t>(
        trace_stats_.quarantine_peak_depth, quarantine_.size());
  }
  while (quarantine_bytes_ > config_.quarantine_quota_bytes && !quarantine_.empty()) {
    release_oldest_quarantined();
  }
}

void SimHeap::release_oldest_quarantined() {
  if (config_.collect_trace_stats) ++trace_stats_.quarantine_evictions;
  const OriginId id = quarantine_.front();
  quarantine_.pop_front();
  BufferRecord& rec = records_[id - 1];
  rec.state = BufferRecord::State::kReleased;
  quarantine_bytes_ -= rec.size;
  // Released regions leave the ownership map: subsequent accesses are wild
  // (undetectable), exactly the quota limitation §IX discusses.
  by_region_.erase(rec.region_start);
}

SimHeap::ByteClass SimHeap::classify(std::uint64_t addr) const {
  ByteClass out;
  auto it = by_region_.upper_bound(addr);
  if (it == by_region_.begin()) return out;
  --it;
  const BufferRecord& rec = records_[it->second - 1];
  if (addr >= rec.region_end) return out;  // in the gap past this region
  out.owner = &rec;
  out.in_user_region = addr >= rec.user_addr && addr < rec.user_addr + rec.size;
  return out;
}

AccessOutcome SimHeap::violation(AccessKind kind, bool is_write,
                                 const BufferRecord* victim) const {
  AccessOutcome out;
  out.kind = kind;
  out.is_write = is_write;
  if (victim != nullptr) {
    out.victim_ccid = victim->ccid;
    out.victim_fn = victim->fn;
  }
  return out;
}

SimHeap::AccessScan SimHeap::scan_accessible(std::uint64_t addr, std::uint64_t len,
                                             bool is_write) {
  if (config_.collect_trace_stats) {
    ++trace_stats_.redzone_checks;
    trace_stats_.redzone_check_bytes += len;
  }
  AccessScan scan;
  scan.accessible_len = len;
  for (std::uint64_t a = addr; a < addr + len; ++a) {
    if (shadow_.accessible(a)) continue;
    scan.accessible_len = a - addr;
    const ByteClass byte = classify(a);
    if (byte.owner == nullptr) {
      scan.outcome = violation(AccessKind::kWild, is_write, nullptr);
    } else if (byte.owner->state != BufferRecord::State::kLive) {
      scan.outcome = violation(AccessKind::kUseAfterFree, is_write, byte.owner);
    } else {
      // Live buffer but inaccessible byte: a red zone (or a realloc cut-off
      // region) — a contiguous overflow / overread.
      scan.outcome = violation(AccessKind::kOverflow, is_write, byte.owner);
    }
    return scan;
  }
  return scan;
}

std::vector<AccessOutcome> SimHeap::drain_pending_violations() {
  return std::move(pending_);
}

AccessOutcome SimHeap::finish(std::vector<AccessOutcome> violations) {
  if (violations.empty()) return {};
  AccessOutcome primary = violations.front();
  pending_.assign(violations.begin() + 1, violations.end());
  return primary;
}

AccessOutcome SimHeap::write(std::uint64_t addr, std::uint64_t offset,
                             std::uint64_t len) {
  CheckTimer timer(config_.collect_trace_stats, &trace_stats_);
  const std::uint64_t start = addr + offset;
  const AccessScan scan = scan_accessible(start, len, /*is_write=*/true);
  // The accessible prefix is written regardless of a trailing violation —
  // Valgrind warns but lets the store proceed. Writes make bytes valid; the
  // writing buffer becomes their origin.
  if (scan.accessible_len > 0) {
    const ByteClass first = classify(start);
    shadow_.set_valid(start, scan.accessible_len, true);
    if (first.owner != nullptr) {
      shadow_.set_origin(start, scan.accessible_len, first.owner->id);
    }
  }
  return scan.outcome;
}

AccessOutcome SimHeap::read(std::uint64_t addr, std::uint64_t offset,
                            std::uint64_t len, ReadUse use) {
  CheckTimer timer(config_.collect_trace_stats, &trace_stats_);
  const std::uint64_t start = addr + offset;
  const AccessScan scan = scan_accessible(start, len, /*is_write=*/false);
  std::vector<AccessOutcome> found;

  // Checked use: bit-precise validity scan with origin tracking over the
  // accessible prefix. This runs even when the tail overflows, so one
  // oversized read can report uninit-read *and* overread (Heartbleed).
  if (use != ReadUse::kData) {  // kData: propagation-only use, never warns (§V)
    if (config_.collect_trace_stats) {
      ++trace_stats_.vbit_checks;
      trace_stats_.vbit_check_bytes += scan.accessible_len;
    }
    for (std::uint64_t a = start; a < start + scan.accessible_len; ++a) {
      if (shadow_.vbits(a) == 0xff) continue;
      const OriginId origin = shadow_.origin(a);
      const BufferRecord* victim =
          origin == kNoOrigin ? nullptr : &records_[origin - 1];
      found.push_back(violation(AccessKind::kUninitRead, /*is_write=*/false, victim));
      // Chained-warning suppression: "once the V bits for a value have been
      // checked, they are then set to valid" (§V).
      shadow_.set_valid(start, scan.accessible_len, true);
      break;
    }
  }
  if (!scan.outcome.ok()) found.push_back(scan.outcome);
  return finish(std::move(found));
}

AccessOutcome SimHeap::copy(std::uint64_t src, std::uint64_t src_off,
                            std::uint64_t dst, std::uint64_t dst_off,
                            std::uint64_t len) {
  CheckTimer timer(config_.collect_trace_stats, &trace_stats_);
  const std::uint64_t s = src + src_off;
  const std::uint64_t d = dst + dst_off;
  // A copy is a data-use read plus a write: accessibility is enforced on
  // both sides, validity is propagated rather than checked. The mutually
  // accessible prefix is transferred even when a violation follows.
  AccessScan src_scan = scan_accessible(s, len, /*is_write=*/false);
  AccessScan dst_scan = scan_accessible(d, len, /*is_write=*/true);
  const std::uint64_t effective =
      std::min(src_scan.accessible_len, dst_scan.accessible_len);
  if (effective > 0) shadow_.copy_shadow(s, d, effective);
  std::vector<AccessOutcome> found;
  if (!src_scan.outcome.ok()) found.push_back(src_scan.outcome);
  if (!dst_scan.outcome.ok()) found.push_back(dst_scan.outcome);
  return finish(std::move(found));
}

const BufferRecord* SimHeap::record_for_user_addr(std::uint64_t addr) const {
  const ByteClass byte = classify(addr);
  if (byte.owner == nullptr || byte.owner->user_addr != addr) return nullptr;
  return byte.owner;
}

SimHeap::LeakReport SimHeap::leak_report() const {
  LeakReport report;
  for (const BufferRecord& rec : records_) {
    if (rec.state != BufferRecord::State::kLive) continue;
    report.leaks.push_back(LeakReport::Leak{rec.id, rec.size, rec.ccid, rec.fn});
    report.total_bytes += rec.size;
  }
  std::sort(report.leaks.begin(), report.leaks.end(),
            [](const LeakReport::Leak& a, const LeakReport::Leak& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.id < b.id;
            });
  return report;
}

const BufferRecord* SimHeap::record(OriginId id) const {
  if (id == kNoOrigin || id > records_.size()) return nullptr;
  return &records_[id - 1];
}

}  // namespace ht::shadow
