// Shadow memory: per-byte Accessibility bits, per-bit Validity bits, and
// per-byte origin tags over a simulated 64-bit address space.
//
// This is the reproduction's Memcheck-equivalent (§V, Fig. 3):
//  - the A-bit says whether a byte may be touched at all (red zones and
//    freed memory are inaccessible);
//  - the V-bits say, bit-precisely, whether the byte holds initialized
//    data (so overlapping struct padding can stay invalid while its
//    neighbours are valid);
//  - the origin tag names the heap buffer whose allocation produced the
//    (in)validity, so an uninitialized-read warning can be traced back to
//    its vulnerable buffer ("origin tracking").
//
// Storage is paged and demand-allocated: untouched address space costs
// nothing, mirroring how Valgrind shadows sparse layouts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace ht::shadow {

/// Identifies the buffer that owns a byte's validity history. 0 = none.
using OriginId = std::uint32_t;
inline constexpr OriginId kNoOrigin = 0;

/// Volume counters for shadow mutations, collected only when tracing is on
/// (`collect_stats(true)`): each range operation costs one predicted branch
/// when collection is off, and the per-byte inner loops are never touched.
/// Feeds the offline-pipeline span tracer (support/trace.hpp) so a trace
/// shows *how much* shadow state each analysis phase churned.
struct ShadowOpStats {
  std::uint64_t set_accessible_ops = 0;
  std::uint64_t set_accessible_bytes = 0;
  std::uint64_t set_valid_ops = 0;
  std::uint64_t set_valid_bytes = 0;
  std::uint64_t set_vbits_ops = 0;
  std::uint64_t set_origin_ops = 0;
  std::uint64_t set_origin_bytes = 0;
  std::uint64_t copy_ops = 0;
  std::uint64_t copy_bytes = 0;
  std::uint64_t pages_materialized = 0;
};

class ShadowMemory {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  /// Per-byte queries. Unmapped shadow reads as inaccessible / invalid.
  [[nodiscard]] bool accessible(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::uint8_t vbits(std::uint64_t addr) const noexcept;
  [[nodiscard]] bool fully_valid(std::uint64_t addr) const noexcept {
    return vbits(addr) == 0xff;
  }
  [[nodiscard]] OriginId origin(std::uint64_t addr) const noexcept;

  /// Range updates (len may span pages).
  void set_accessible(std::uint64_t addr, std::uint64_t len, bool value);
  void set_valid(std::uint64_t addr, std::uint64_t len, bool value);
  void set_vbits(std::uint64_t addr, std::uint8_t bits);
  void set_origin(std::uint64_t addr, std::uint64_t len, OriginId origin);

  /// Copies validity bits *and* origin tags — the V-bit propagation that
  /// runs on every data move (§V). Ranges must not overlap.
  void copy_shadow(std::uint64_t src, std::uint64_t dst, std::uint64_t len);

  /// Number of shadow pages materialized (for memory accounting tests).
  [[nodiscard]] std::size_t mapped_pages() const noexcept { return pages_.size(); }

  /// Enables/disables op-volume collection (off by default; §ShadowOpStats).
  void collect_stats(bool on) noexcept { collect_ = on; }
  [[nodiscard]] bool collecting_stats() const noexcept { return collect_; }
  [[nodiscard]] const ShadowOpStats& op_stats() const noexcept { return stats_; }

 private:
  struct Page {
    std::array<std::uint8_t, kPageSize> vbits{};   // 0 = invalid
    std::array<std::uint8_t, kPageSize / 8> abits{};  // bitmask, 0 = inaccessible
    std::array<OriginId, kPageSize> origins{};
  };

  [[nodiscard]] Page* find_page(std::uint64_t addr) const noexcept;
  Page& ensure_page(std::uint64_t addr);

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  ShadowOpStats stats_;
  bool collect_ = false;
};

}  // namespace ht::shadow
