#include "shadow/shadow_memory.hpp"

namespace ht::shadow {

namespace {
constexpr std::uint64_t page_base(std::uint64_t addr) noexcept {
  return addr & ~(ShadowMemory::kPageSize - 1);
}
constexpr std::uint64_t page_offset(std::uint64_t addr) noexcept {
  return addr & (ShadowMemory::kPageSize - 1);
}
}  // namespace

ShadowMemory::Page* ShadowMemory::find_page(std::uint64_t addr) const noexcept {
  const auto it = pages_.find(page_base(addr));
  return it == pages_.end() ? nullptr : it->second.get();
}

ShadowMemory::Page& ShadowMemory::ensure_page(std::uint64_t addr) {
  auto& slot = pages_[page_base(addr)];
  if (!slot) {
    slot = std::make_unique<Page>();
    if (collect_) ++stats_.pages_materialized;
  }
  return *slot;
}

bool ShadowMemory::accessible(std::uint64_t addr) const noexcept {
  const Page* page = find_page(addr);
  if (page == nullptr) return false;
  const std::uint64_t off = page_offset(addr);
  return (page->abits[off / 8] >> (off % 8)) & 1;
}

std::uint8_t ShadowMemory::vbits(std::uint64_t addr) const noexcept {
  const Page* page = find_page(addr);
  return page == nullptr ? 0 : page->vbits[page_offset(addr)];
}

OriginId ShadowMemory::origin(std::uint64_t addr) const noexcept {
  const Page* page = find_page(addr);
  return page == nullptr ? kNoOrigin : page->origins[page_offset(addr)];
}

void ShadowMemory::set_accessible(std::uint64_t addr, std::uint64_t len, bool value) {
  if (collect_) {
    ++stats_.set_accessible_ops;
    stats_.set_accessible_bytes += len;
  }
  for (std::uint64_t a = addr; a < addr + len; ++a) {
    Page& page = ensure_page(a);
    const std::uint64_t off = page_offset(a);
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << (off % 8));
    if (value) {
      page.abits[off / 8] |= bit;
    } else {
      page.abits[off / 8] &= static_cast<std::uint8_t>(~bit);
    }
  }
}

void ShadowMemory::set_valid(std::uint64_t addr, std::uint64_t len, bool value) {
  if (collect_) {
    ++stats_.set_valid_ops;
    stats_.set_valid_bytes += len;
  }
  const std::uint8_t bits = value ? 0xff : 0x00;
  for (std::uint64_t a = addr; a < addr + len; ++a) {
    ensure_page(a).vbits[page_offset(a)] = bits;
  }
}

void ShadowMemory::set_vbits(std::uint64_t addr, std::uint8_t bits) {
  if (collect_) ++stats_.set_vbits_ops;
  ensure_page(addr).vbits[page_offset(addr)] = bits;
}

void ShadowMemory::set_origin(std::uint64_t addr, std::uint64_t len, OriginId origin) {
  if (collect_) {
    ++stats_.set_origin_ops;
    stats_.set_origin_bytes += len;
  }
  for (std::uint64_t a = addr; a < addr + len; ++a) {
    ensure_page(a).origins[page_offset(a)] = origin;
  }
}

void ShadowMemory::copy_shadow(std::uint64_t src, std::uint64_t dst,
                               std::uint64_t len) {
  if (collect_) {
    ++stats_.copy_ops;
    stats_.copy_bytes += len;
  }
  for (std::uint64_t i = 0; i < len; ++i) {
    Page& dpage = ensure_page(dst + i);
    const std::uint64_t doff = page_offset(dst + i);
    const Page* spage = find_page(src + i);
    if (spage == nullptr) {
      dpage.vbits[doff] = 0;
      dpage.origins[doff] = kNoOrigin;
    } else {
      const std::uint64_t soff = page_offset(src + i);
      dpage.vbits[doff] = spage->vbits[soff];
      dpage.origins[doff] = spage->origins[soff];
    }
  }
}

}  // namespace ht::shadow
