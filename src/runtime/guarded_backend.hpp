// GuardedBackend: runs synthetic programs on the *real* hardened allocator
// and records what each defense did — the observable side of Table II.
//
// Memory semantics are physical: in-bounds writes really store bytes,
// in-bounds reads really load them, so an uninit-read "leak" genuinely
// returns either stale garbage (unpatched) or the zero-fill (patched).
// The two cases a real process could not survive are simulated at the
// boundary instead of executed:
//   - a store into a PROT_NONE guard page would SIGSEGV; the backend
//     reports kBlockedByGuard instead of faulting (a fork-based death test
//     verifies the real fault separately);
//   - an unpatched out-of-bounds store would corrupt the process's own
//     allocator; the backend counts it as landed without executing it.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "progmodel/backend.hpp"
#include "runtime/guarded_allocator.hpp"

namespace ht::runtime {

/// What the defenses (or their absence) did during a run. The Table II
/// effectiveness harness derives attack success/failure from these.
struct DefenseObservations {
  // Contiguous overflow outcomes.
  std::uint64_t oob_writes_blocked = 0;  ///< guard page stopped the store
  std::uint64_t oob_writes_landed = 0;   ///< unpatched: adjacent data corrupted
  std::uint64_t oob_reads_blocked = 0;
  std::uint64_t oob_reads_landed = 0;
  // Dangling-pointer outcomes.
  std::uint64_t stale_hits_quarantine = 0;  ///< defused: memory not yet reused
  std::uint64_t stale_hits_reused = 0;      ///< attack success: memory re-owned
  std::uint64_t stale_hits_wild = 0;        ///< freed to allocator, not re-owned
  // Information-leak accounting over syscall-use reads.
  std::uint64_t leaked_nonzero_bytes = 0;  ///< stale/garbage bytes that escaped
  std::uint64_t leaked_zero_bytes = 0;     ///< zero-filled bytes (defense working)
};

class GuardedBackend final : public progmodel::AllocatorBackend {
 public:
  explicit GuardedBackend(GuardedAllocator& allocator) : allocator_(allocator) {}

  std::uint64_t allocate(progmodel::AllocFn fn, std::uint64_t size,
                         std::uint64_t alignment, std::uint64_t ccid) override;
  std::uint64_t reallocate(std::uint64_t addr, std::uint64_t new_size,
                           std::uint64_t ccid) override;
  void deallocate(std::uint64_t addr) override;
  progmodel::AccessOutcome write(std::uint64_t addr, std::uint64_t offset,
                                 std::uint64_t len) override;
  progmodel::AccessOutcome read(std::uint64_t addr, std::uint64_t offset,
                                std::uint64_t len, progmodel::ReadUse use) override;
  progmodel::AccessOutcome copy(std::uint64_t src, std::uint64_t src_off,
                                std::uint64_t dst, std::uint64_t dst_off,
                                std::uint64_t len) override;

  [[nodiscard]] const DefenseObservations& observations() const noexcept {
    return obs_;
  }
  [[nodiscard]] GuardedAllocator& allocator() noexcept { return allocator_; }

  /// The fill byte used by program writes (nonzero so stale data is
  /// distinguishable from the zero-fill defense).
  static constexpr std::uint8_t kFillByte = 0xA5;

  /// The real memory behind a handle (handles carry a provenance tag in
  /// their top bits and must not be dereferenced directly). Test aid.
  [[nodiscard]] const char* memory(std::uint64_t handle) const noexcept {
    return reinterpret_cast<const char*>(handle & ((1ULL << 48) - 1));
  }

 private:
  struct BufferInfo {
    std::uint64_t size = 0;
    std::uint64_t ccid = 0;  ///< allocation-time calling-context id
    std::uint8_t mask = 0;   ///< applied defense mask
    std::uint8_t fn = 0;     ///< progmodel::AllocFn that created the buffer
    std::uint16_t gen = 0;   ///< allocation generation (pointer provenance)
  };

  /// Emits a kGuardTrap telemetry event attributed to the trapped buffer's
  /// allocation-time {FUN, CCID} — the interpreter-path analogue of the
  /// SIGSEGV a real guarded process would take. Also synthesizes a
  /// guard-trap candidate patch when the engine has synthesis enabled.
  void record_guard_trap(const BufferInfo& info, std::uint64_t attempted_len);

  /// Feeds one detection observation to the engine's candidate synthesis
  /// (no-op when disabled, or when `info` carries no provenance — e.g. a
  /// reused address whose stale identity fell out of the freed map).
  void synthesize(const BufferInfo& info, patch::CandidateOrigin origin);

  /// Handles returned to programs are real addresses tagged with a 16-bit
  /// generation in the top bits (x86-64 user VAs fit in 48). The tag is the
  /// pointer's *provenance*: after free and reuse, the stale handle's
  /// generation no longer matches the new owner's, which is exactly how a
  /// dangling pointer differs from a fresh one to the same address.
  static constexpr unsigned kGenShift = 48;
  [[nodiscard]] static std::uint64_t make_handle(std::uint64_t addr,
                                                 std::uint16_t gen);
  [[nodiscard]] static std::uint64_t handle_addr(std::uint64_t handle);
  [[nodiscard]] static std::uint16_t handle_gen(std::uint64_t handle);

  enum class Owner : std::uint8_t { kLive, kFreed, kReused, kUnknown };
  struct Lookup {
    Owner owner = Owner::kUnknown;
    BufferInfo info;        ///< current owner (kReused: the *new* owner)
    BufferInfo stale_info;  ///< kReused: the dangling pointer's old identity
  };
  [[nodiscard]] Lookup find(std::uint64_t handle) const;

  GuardedAllocator& allocator_;
  std::unordered_map<std::uint64_t, BufferInfo> live_;   // by address
  std::unordered_map<std::uint64_t, BufferInfo> freed_;  // by address
  std::uint16_t generation_ = 0;
  DefenseObservations obs_;
};

}  // namespace ht::runtime
