// Fleet telemetry aggregation (htagg): merges N per-process telemetry
// dumps (docs/FORMATS.md §4) into one fleet view, exported as JSON or
// Prometheus text exposition (docs/FORMATS.md §5).
//
// The online defense writes one dump per protected process
// (HEAPTHERAPY_TELEMETRY, htctl stats). A deployment runs many processes;
// the operator question is fleet-wide: which patches fire the most, how
// much detection latency the fleet pays, how many events were dropped.
// This module answers it offline — sums are EXACT (every counter is an
// integer total, and log2 latency buckets merge losslessly bucket-by-
// bucket), never sampled or approximated.
//
// This is an offline tool path: the no-allocation rules of the runtime
// sinks do not apply here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/telemetry.hpp"

namespace ht::runtime {

/// One per-process dump to merge, tagged with where it came from (used as
/// the `process` label in per-process rows).
struct AggregateInput {
  std::string label;
  TelemetrySnapshot snapshot;
};

/// Per-process summary row retained in the aggregate so JSON consumers can
/// see which process contributed what without re-parsing the dumps.
struct ProcessSummary {
  std::string label;
  std::uint64_t table_generation = 0;
  std::uint64_t table_patches = 0;
  AllocatorStats totals;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t patch_hits = 0;  ///< sum of this process's per-patch hits
  HealthState health = HealthState::kHealthy;  ///< from the dump's health line
};

/// An input file htagg could not merge (missing, unreadable, empty). Kept
/// in the aggregate so the skip is visible in the OUTPUT, not only stderr:
/// a fleet rollup silently missing a process reads as "that process is
/// fine" when it may be the one that crashed.
struct SkippedInput {
  std::string label;
  std::string reason;  ///< "unreadable" | "empty"
};

/// Fleet-wide merge of N snapshots. All counter fields are exact sums.
struct TelemetryAggregate {
  std::size_t processes = 0;
  AllocatorStats totals;                  ///< summed across processes
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t patch_hit_overflow = 0;
  std::uint64_t quarantine_pressure = 0;  ///< early-eviction sweeps, summed
  std::uint64_t flush_failures = 0;       ///< exhausted flush retries, summed
  /// Worst health across the fleet (healthy < degraded < bypass): one
  /// degraded process degrades the whole rollup.
  HealthState worst_health = HealthState::kHealthy;
  LatencyHistogram latency;               ///< bucket-wise sum
  /// Merged per-patch hits keyed {fn, ccid}, sorted hits-descending
  /// (ties: fn then ccid ascending) so "top K" is a prefix.
  std::vector<PatchHitCount> patch_hits;
  /// Distinct patch-table generations observed, ascending. More than one
  /// means the fleet is running mixed patch tables — worth surfacing.
  std::vector<std::uint64_t> generations;
  std::vector<ProcessSummary> rows;       ///< one per input, input order
  /// Inputs skipped before the merge (filled by the caller — htagg — since
  /// only it sees the filesystem); surfaced in both export formats.
  std::vector<SkippedInput> skipped;
};

/// Merges the inputs. Pure function of the snapshots; never throws.
[[nodiscard]] TelemetryAggregate aggregate_telemetry(
    const std::vector<AggregateInput>& inputs);

/// JSON object: fleet totals, latency buckets, top-K patch hits (top_k ==
/// 0 means all), per-process rows, distinct generations.
[[nodiscard]] std::string aggregate_json(const TelemetryAggregate& agg,
                                         std::size_t top_k = 0);

/// Prometheus text exposition (version 0.0.4): HELP/TYPE per metric,
/// ht_*_total counters, ht_patch_hits_total{fn=,ccid=} for the top-K
/// patches, and the enhancement-latency histogram with CUMULATIVE
/// ht_enhancement_latency_ns_bucket{le=} samples, an le="+Inf" bucket and
/// a matching _count. No _sum sample is emitted: the runtime histogram
/// does not track a latency sum (docs/FORMATS.md §5).
[[nodiscard]] std::string aggregate_prometheus(const TelemetryAggregate& agg,
                                               std::size_t top_k = 0);

/// Structural linter for Prometheus text exposition. Checks line grammar,
/// HELP/TYPE presence and ordering, duplicate series, label syntax, and
/// histogram invariants (cumulative buckets, trailing +Inf, _count ==
/// +Inf). Returns one message per violation; empty means clean. Used by
/// the ctest gate on htagg output and available to tests for any
/// exposition text.
[[nodiscard]] std::vector<std::string> prometheus_lint(std::string_view text);

}  // namespace ht::runtime
