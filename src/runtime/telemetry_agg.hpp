// Fleet telemetry aggregation (htagg): merges N per-process telemetry
// dumps (docs/FORMATS.md §4) into one fleet view, exported as JSON or
// Prometheus text exposition (docs/FORMATS.md §5).
//
// The online defense writes one dump per protected process
// (HEAPTHERAPY_TELEMETRY, htctl stats). A deployment runs many processes;
// the operator question is fleet-wide: which patches fire the most, how
// much detection latency the fleet pays, how many events were dropped.
// This module answers it offline — sums are EXACT (every counter is an
// integer total, and log2 latency buckets merge losslessly bucket-by-
// bucket), never sampled or approximated.
//
// This is an offline tool path: the no-allocation rules of the runtime
// sinks do not apply here.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/telemetry.hpp"

namespace ht::runtime {

/// One per-process dump to merge, tagged with where it came from (used as
/// the `process` label in per-process rows).
struct AggregateInput {
  std::string label;
  TelemetrySnapshot snapshot;
};

/// Per-process summary row retained in the aggregate so JSON consumers can
/// see which process contributed what without re-parsing the dumps.
struct ProcessSummary {
  std::string label;
  std::uint64_t table_generation = 0;
  std::uint64_t table_patches = 0;
  AllocatorStats totals;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t patch_hits = 0;  ///< sum of this process's per-patch hits
  HealthState health = HealthState::kHealthy;  ///< from the dump's health line
};

/// An input file htagg could not merge (missing, unreadable, empty). Kept
/// in the aggregate so the skip is visible in the OUTPUT, not only stderr:
/// a fleet rollup silently missing a process reads as "that process is
/// fine" when it may be the one that crashed.
struct SkippedInput {
  std::string label;
  std::string reason;  ///< "unreadable" | "empty" | "corrupt"
};

/// Seconds from a candidate's first sighting to its promotion verdict, per
/// {fn, ccid} — the fleet's "time to immunity" (docs/SELF_HEALING.md).
/// Computed from the candidate journal, not from telemetry dumps, so the
/// caller (htagg --candidates) fills TelemetryAggregate::time_to_immunity.
struct TimeToImmunityRow {
  progmodel::AllocFn fn = progmodel::AllocFn::kMalloc;
  std::uint64_t ccid = 0;
  double seconds = 0.0;
};

/// Fleet-wide merge of N snapshots. All counter fields are exact sums.
struct TelemetryAggregate {
  std::size_t processes = 0;
  AllocatorStats totals;                  ///< summed across processes
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t patch_hit_overflow = 0;
  std::uint64_t quarantine_pressure = 0;  ///< early-eviction sweeps, summed
  std::uint64_t flush_failures = 0;       ///< exhausted flush retries, summed
  std::uint64_t candidate_overflow = 0;   ///< candidate-table overflows, summed
  /// Worst health across the fleet (healthy < degraded < bypass): one
  /// degraded process degrades the whole rollup.
  HealthState worst_health = HealthState::kHealthy;
  LatencyHistogram latency;               ///< bucket-wise sum
  /// Merged per-patch hits keyed {fn, ccid}, sorted hits-descending
  /// (ties: fn then ccid ascending) so "top K" is a prefix.
  std::vector<PatchHitCount> patch_hits;
  /// Merged synthesized candidates (docs/SELF_HEALING.md) keyed
  /// {fn, ccid, mask, origin}: hits summed, first_seen_ns min'd, sorted
  /// hits-descending (ties: key ascending) so the hottest lead.
  std::vector<patch::PatchCandidate> candidates;
  /// Distinct patch-table generations observed, ascending. More than one
  /// means the fleet is running mixed patch tables — worth surfacing.
  std::vector<std::uint64_t> generations;
  std::vector<ProcessSummary> rows;       ///< one per input, input order
  /// Inputs skipped before the merge (filled by the caller — htagg — since
  /// only it sees the filesystem); surfaced in both export formats.
  std::vector<SkippedInput> skipped;
  /// Merged heap census (docs/OBSERVABILITY.md §9) keyed {fn, ccid}: all
  /// five count fields summed exactly, sorted live_bytes-descending (ties:
  /// fn then ccid ascending) so "top K" is a prefix.
  std::vector<HeapCensusRow> heap_census;
  AgeHistogram heap_age;                     ///< bucket-wise sum
  std::uint64_t heap_sampled = 0;            ///< sampled allocations, summed
  std::uint64_t heap_registry_overflow = 0;  ///< registry-full drops, summed
  std::uint64_t heap_census_overflow = 0;    ///< census-full drops, summed
  /// Time-to-immunity rows, {fn, ccid} ascending. Filled by the CALLER from
  /// compute_time_to_immunity (the journal lives on the filesystem, which
  /// aggregate_telemetry never touches); empty when no journal was given.
  std::vector<TimeToImmunityRow> time_to_immunity;
};

/// Derives time-to-immunity rows from a parsed candidate journal
/// (docs/FORMATS.md §7): for every {fn, ccid} whose LATEST verdict is
/// `promoted`, seconds = (verdict time − earliest nonzero first-seen across
/// that key's candidates) / 1e9, clamped at 0 (clock skew between the
/// observing process and htpromote must not produce negative immunity).
/// Keys with no nonzero first-seen time are omitted — there is no interval
/// to measure. Rows come back {fn, ccid} ascending; never throws.
[[nodiscard]] std::vector<TimeToImmunityRow> compute_time_to_immunity(
    const patch::CandidateParseResult& journal);

/// Merges the inputs. Pure function of the snapshots; never throws.
[[nodiscard]] TelemetryAggregate aggregate_telemetry(
    const std::vector<AggregateInput>& inputs);

/// JSON object: fleet totals, latency buckets, top-K patch hits (top_k ==
/// 0 means all), per-process rows, distinct generations.
[[nodiscard]] std::string aggregate_json(const TelemetryAggregate& agg,
                                         std::size_t top_k = 0);

/// Prometheus text exposition (version 0.0.4): HELP/TYPE per metric,
/// ht_*_total counters, ht_patch_hits_total{fn=,ccid=} for the top-K
/// patches, and the enhancement-latency histogram with CUMULATIVE
/// ht_enhancement_latency_ns_bucket{le=} samples, an le="+Inf" bucket and
/// a matching _count. No _sum sample is emitted: the runtime histogram
/// does not track a latency sum (docs/FORMATS.md §5).
[[nodiscard]] std::string aggregate_prometheus(const TelemetryAggregate& agg,
                                               std::size_t top_k = 0);

// ---- Shared ingest (batch files and streamed frames) ----

/// One parsed telemetry input, whichever format it arrived in. `binary`
/// records which path decoded it; `source` is the frame's embedded
/// producer label (binary only, "" when absent — callers fall back to the
/// file path / peer identity). `errors` non-empty means the content was
/// rejected ("corrupt" in SkippedInput terms); `notes` are non-fatal
/// per-record/per-line diagnostics worth relaying to stderr.
struct LoadedTelemetry {
  TelemetrySnapshot snapshot;
  std::string source;
  bool binary = false;
  std::vector<std::string> errors;
  std::vector<std::string> notes;
  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parses one telemetry payload, auto-detecting the format by the frame
/// magic: binary wire frames (docs/FORMATS.md §6) decode via
/// decode_telemetry_frame, anything else parses as a §4 text dump. This is
/// the single ingest point shared by htagg (batch files and streamed
/// datagrams) and htctl, so every consumer accepts both formats.
[[nodiscard]] LoadedTelemetry load_telemetry_content(std::string_view content);

/// Rolling fleet state for the streaming aggregator (htagg serve). Each
/// producer re-sends its FULL snapshot every flush (frames carry totals,
/// not deltas), so ingest REPLACES that source's latest snapshot instead
/// of summing — re-sent frames never double-count. aggregate() re-derives
/// the fleet rollup through the same aggregate_telemetry() the batch path
/// uses, so daemon-mode exports are byte-identical to a batch run over the
/// same processes' dumps BY CONSTRUCTION.
///
/// Optional decay (0 < decay < 1) re-ranks the top-K patch-hit ordering by
/// a recency-weighted score (each source's per-ingest hit DELTA is added
/// to a score that is multiplied by `decay` on every ingest of any
/// source). Exported hit VALUES stay exact lifetime sums — decay only
/// changes which patches sort first, trading the batch-identical ordering
/// for "what is hot now" ranking.
class RollingAggregate {
 public:
  explicit RollingAggregate(double decay = 0.0) : decay_(decay) {}

  /// Replaces `source`'s latest snapshot. Empty source labels are filed
  /// under "(unnamed)" so an unlabeled producer cannot masquerade as many.
  void ingest(std::string_view source, const TelemetrySnapshot& snapshot);

  /// Records one rejected input (corrupt datagram, unreadable file).
  /// Deduped by label and capped so a flood of garbage cannot balloon the
  /// skip list; the count feeds ht_inputs_skipped either way.
  void note_skipped(std::string_view label, std::string_view reason);

  /// Current fleet rollup across the latest snapshot of every source.
  [[nodiscard]] TelemetryAggregate aggregate() const;

  [[nodiscard]] std::size_t sources() const noexcept { return order_.size(); }
  [[nodiscard]] std::size_t frames_ingested() const noexcept {
    return frames_ingested_;
  }
  [[nodiscard]] std::size_t inputs_skipped() const noexcept {
    return skipped_total_;
  }

 private:
  double decay_ = 0.0;
  std::size_t frames_ingested_ = 0;
  std::vector<std::string> order_;  ///< first-seen source order
  std::map<std::string, TelemetrySnapshot> latest_;
  /// Previous per-source patch hits, for decay deltas.
  std::map<std::string, std::map<std::pair<std::uint8_t, std::uint64_t>,
                                 std::uint64_t>>
      prev_hits_;
  /// Recency-weighted score per {fn, ccid} (decay > 0 only).
  std::map<std::pair<std::uint8_t, std::uint64_t>, double> scores_;
  std::vector<SkippedInput> skipped_;  ///< deduped, capped
  std::size_t skipped_total_ = 0;
};

/// Structural linter for Prometheus text exposition. Checks line grammar,
/// HELP/TYPE presence and ordering, duplicate series, label syntax, and
/// histogram invariants (cumulative buckets, trailing +Inf, _count ==
/// +Inf). Returns one message per violation; empty means clean. Used by
/// the ctest gate on htagg output and available to tests for any
/// exposition text.
[[nodiscard]] std::vector<std::string> prometheus_lint(std::string_view text);

}  // namespace ht::runtime
