// The per-buffer metadata word and buffer layouts (§VI, Fig. 6).
//
// HeapTherapy+ maintains its own heap metadata so the defense never touches
// allocator internals. Every buffer carries one 64-bit metadata word placed
// immediately before the user pointer. Bit layout (paper Fig. 6):
//
//   bit 0        OVERFLOW   (guard page present)
//   bit 1        UAF        (defer reuse on free)
//   bit 2        UNINIT     (buffer was zero-filled)
//   bit 3        ALIGNED    (memalign-family allocation)
//   guarded buffers  (OVERFLOW set — Structures 2 and 4):
//     bits 4..39   guard-page frame number (48-bit VA, 4 KiB pages -> 36 bits)
//     bits 40..45  log2(alignment)         (0 when not ALIGNED)
//     user size lives in the first word of the guard page
//   plain buffers    (Structures 1 and 3):
//     bits 4..51   user buffer size (48 bits)
//     bits 52..57  log2(alignment)
//     bit  58      canary planted after the user buffer (extension)
//     bits 59..61  allocation function (AllocFn index; extension — lets the
//                  free-path canary check attribute a corruption to {FUN}
//                  for candidate-patch synthesis)
//     bit  62      PROFILED: this allocation was sampled into the heap
//                  profiler's live registry (extension; the free path uses
//                  it to know a registry entry must be removed). Guarded
//                  buffers are never profiled, so the bit exists only here.
//
// Buffer layouts:
//   Structure 1:  [hdr 16B | user]                                (plain)
//   Structure 2:  [hdr 16B | user | pad | guard page 4K]          (overflow)
//   Structure 3:  [pad A-8 | meta | user(A-aligned)]              (aligned)
//   Structure 4:  [pad A-8 | meta | user | pad | guard page 4K]   (both)
// The metadata word always sits at (user - 8). The 16-byte header of the
// non-aligned structures keeps the user pointer 16-byte aligned, matching
// glibc's malloc contract.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace ht::runtime {

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr std::uint64_t kPlainHeader = 16;
inline constexpr std::uint64_t kMaxPlainSize = (1ULL << 48) - 1;

/// Decoded form of the metadata word.
struct MetadataWord {
  std::uint8_t vuln_mask = 0;   ///< patch::VulnBits (3 bits)
  bool aligned = false;
  std::uint8_t align_log2 = 0;  ///< log2(alignment); 0 when !aligned
  /// User size; authoritative only for non-guarded buffers (guarded buffers
  /// store the size in the guard page's first word).
  std::uint64_t user_size = 0;
  /// Guard page address; authoritative only for guarded buffers.
  std::uint64_t guard_page_addr = 0;
  /// Extension: a canary word follows the user buffer (plain layouts only).
  /// When set, the trailer is 16 bytes: the canary word at user+size, then
  /// the allocation-time CCID at user+size+8 (candidate attribution).
  bool canary = false;
  /// Extension: AllocFn index of the allocating call (plain layouts only;
  /// guarded buffers keep their attribution in the BufferInfo side table).
  std::uint8_t fn = 0;
  /// Extension: the allocation was sampled into the heap profiler's live
  /// registry (plain layouts only; docs/OBSERVABILITY.md §9).
  bool profiled = false;

  [[nodiscard]] bool has_guard() const noexcept { return vuln_mask & 1u; }
};

/// Encodes; throws std::invalid_argument when a field exceeds its bit budget
/// (size >= 2^48, guard address >= 2^48 or unaligned, align_log2 >= 64).
[[nodiscard]] std::uint64_t encode_metadata(const MetadataWord& m);

/// Exact inverse of encode_metadata for valid words.
[[nodiscard]] MetadataWord decode_metadata(std::uint64_t word) noexcept;

/// How much raw memory to request and where the user region lives.
struct BufferLayout {
  std::uint64_t raw_size = 0;       ///< bytes to request from the allocator
  std::uint64_t raw_alignment = 0;  ///< 0 = plain malloc; else memalign
  std::uint64_t user_offset = 0;    ///< user pointer = raw + user_offset
  bool guarded = false;
};

/// Computes the layout for an allocation of `size` bytes. `alignment` == 0
/// requests a plain buffer; otherwise it must be a power of two (>= 16
/// after normalization). `guard` appends a guard page (Structures 2/4);
/// `canary` reserves the 16-byte canary+CCID trailer (mutually exclusive
/// with guard).
[[nodiscard]] BufferLayout compute_layout(std::uint64_t size, std::uint64_t alignment,
                                          bool guard, bool canary = false);

/// First page boundary at or after the end of the user buffer — where the
/// guard page is placed.
[[nodiscard]] constexpr std::uint64_t guard_page_address(std::uint64_t user_addr,
                                                         std::uint64_t size) noexcept {
  return (user_addr + size + kPageSize - 1) / kPageSize * kPageSize;
}

/// Normalizes a requested alignment: powers of two below 16 are served by
/// the plain (non-aligned) structures; larger values round up to the next
/// power of two.
[[nodiscard]] std::uint64_t normalize_alignment(std::uint64_t alignment) noexcept;

[[nodiscard]] constexpr std::uint8_t log2_u64(std::uint64_t pow2) noexcept {
  std::uint8_t n = 0;
  while (pow2 > 1) {
    pow2 >>= 1;
    ++n;
  }
  return n;
}

}  // namespace ht::runtime
