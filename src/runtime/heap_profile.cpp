#include "runtime/heap_profile.hpp"

#include <chrono>

#include "support/hash.hpp"

namespace ht::runtime {

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SIZEOF_INT128__)
#define HT_HEAP_PROFILE_TSC 1
/// ns-per-TSC-tick in 32.32 fixed point; 0 until calibrated (or forever,
/// when the TSC is unusable — heap_profile_clock_ns then falls back).
std::atomic<std::uint64_t> g_tsc_mult{0};
#endif

}  // namespace

void heap_profile_clock_init() noexcept {
#ifdef HT_HEAP_PROFILE_TSC
  if (g_tsc_mult.load(std::memory_order_relaxed) != 0) return;
  // Measure the tick rate against the steady clock over ~200us: the
  // steady clock's ~30ns read granularity puts the rate error well under
  // 0.1%, far inside what log2 age buckets can resolve.
  const std::uint64_t t0 = __builtin_ia32_rdtsc();
  const std::uint64_t n0 = steady_ns();
  std::uint64_t n1;
  do {
    n1 = steady_ns();
  } while (n1 - n0 < 200000);
  const std::uint64_t t1 = __builtin_ia32_rdtsc();
  if (t1 <= t0) return;  // TSC not monotonic here; keep the fallback
  const double ns_per_tick =
      static_cast<double>(n1 - n0) / static_cast<double>(t1 - t0);
  const auto mult = static_cast<std::uint64_t>(ns_per_tick * 4294967296.0);
  if (mult == 0) return;
  g_tsc_mult.store(mult, std::memory_order_relaxed);
#endif
}

std::uint64_t heap_profile_clock_ns() noexcept {
#ifdef HT_HEAP_PROFILE_TSC
  const std::uint64_t mult = g_tsc_mult.load(std::memory_order_relaxed);
  if (mult != 0) {
    const unsigned __int128 ns =
        static_cast<unsigned __int128>(__builtin_ia32_rdtsc()) * mult;
    return static_cast<std::uint64_t>(ns >> 32);
  }
#endif
  return steady_ns();
}

void HeapProfileRegistry::configure() {
  heap_profile_clock_init();
  if (slots_ == nullptr) slots_ = std::make_unique<Slot[]>(kSlots);
}

bool HeapProfileRegistry::insert(const void* user, std::uint8_t fn,
                                 std::uint64_t ccid, std::uint64_t size,
                                 std::uint64_t alloc_ns) noexcept {
  if (slots_ == nullptr) return false;
  const std::uintptr_t p = reinterpret_cast<std::uintptr_t>(user);
  const std::uint64_t h = support::mix64(static_cast<std::uint64_t>(p));
  for (std::uint32_t i = 0; i < kProbeCap; ++i) {
    Slot& s = slots_[(h + i) % kSlots];
    std::uintptr_t expected = 0;
    // Claim: CAS the pointer word from empty to busy, fill the payload,
    // then publish with a release store of the real pointer. A concurrent
    // snapshot_live acquire-loads the pointer and therefore sees the
    // payload stores.
    if (s.ptr.compare_exchange_strong(expected, kBusy,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      s.ccid.store(ccid, std::memory_order_relaxed);
      s.size_fn.store((size << 8) | fn, std::memory_order_relaxed);
      s.alloc_ns.store(alloc_ns, std::memory_order_relaxed);
      s.ptr.store(p, std::memory_order_release);
      return true;
    }
  }
  overflow_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool HeapProfileRegistry::remove(const void* user, HeapLiveEntry& out) noexcept {
  if (slots_ == nullptr) return false;
  const std::uintptr_t p = reinterpret_cast<std::uintptr_t>(user);
  const std::uint64_t h = support::mix64(static_cast<std::uint64_t>(p));
  // Removals leave holes, so a probe cannot stop at the first empty slot:
  // the insert that placed `p` may have probed past entries freed since.
  for (std::uint32_t i = 0; i < kProbeCap; ++i) {
    Slot& s = slots_[(h + i) % kSlots];
    if (s.ptr.load(std::memory_order_acquire) != p) continue;
    // No claim needed: the freer of `p` is unique (a second free of the
    // same pointer is UB upstream of here), and inserts only ever claim
    // EMPTY slots, so after the acquire load this slot is ours to read.
    // The release store of 0 orders the payload reads before the slot
    // becomes claimable — this runs on the sampled free path, where the
    // lock-prefixed CAS this replaces was a measurable share of the ≤2%
    // budget (bench/ht_heapprof_overhead).
    out.ccid = s.ccid.load(std::memory_order_relaxed);
    const std::uint64_t size_fn = s.size_fn.load(std::memory_order_relaxed);
    out.size = size_fn >> 8;
    out.fn = static_cast<std::uint8_t>(size_fn & 0xFF);
    out.alloc_ns = s.alloc_ns.load(std::memory_order_relaxed);
    s.ptr.store(0, std::memory_order_release);
    return true;
  }
  return false;
}

std::uint32_t HeapProfileRegistry::snapshot_live(HeapLiveEntry* out,
                                                 std::uint32_t max) const noexcept {
  if (slots_ == nullptr) return 0;
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < kSlots && n < max; ++i) {
    const Slot& s = slots_[i];
    const std::uintptr_t p = s.ptr.load(std::memory_order_acquire);
    if (p == 0 || p == kBusy) continue;
    // The acquire load orders the payload reads after publication. A slot
    // recycled between the pointer load and the field loads yields a
    // mixed-generation entry — one plausible live object, never torn
    // values — which a sampled estimate tolerates.
    out[n].ccid = s.ccid.load(std::memory_order_relaxed);
    const std::uint64_t size_fn = s.size_fn.load(std::memory_order_relaxed);
    out[n].size = size_fn >> 8;
    out[n].fn = static_cast<std::uint8_t>(size_fn & 0xFF);
    out[n].alloc_ns = s.alloc_ns.load(std::memory_order_relaxed);
    ++n;
  }
  return n;
}

}  // namespace ht::runtime
