// Binary telemetry wire format + streaming transport (docs/FORMATS.md §6).
//
// The text dump (FORMATS.md §4) is the debug path: greppable, hand-editable,
// one file per process. Fleet-scale streaming needs something denser and
// self-delimiting — a process flushing once a second to an aggregator must
// not cost a filesystem round trip per flush, and the aggregator must be
// able to reject a torn or corrupt frame without trusting its contents.
// This module is that path:
//
//  - FRAME: one encoded TelemetrySnapshot. Fixed 20-byte header (magic
//    "HTWIRE1\0", version, payload length, CRC-32 of the payload) followed
//    by a sequence of length-prefixed records. Everything little-endian,
//    serialized field-by-field — never struct memcpy — so frames are
//    byte-identical across producers.
//  - RECORDS: type byte + u16 body length + body. Record types cover the
//    source label, table/config/health metadata, counters, per-shard rows,
//    patch hits, latency buckets, and ring events. Unknown record types and
//    unknown counter ids are skipped (forward compatibility, same rule as
//    the text parser's unknown counters); short bodies are skipped with a
//    note; a failed CRC rejects the whole frame.
//  - LOSSLESS: decode(encode(snap)) reproduces every field the text dump
//    carries, so snapshot -> wire -> snapshot -> render_telemetry equals
//    snapshot -> render_telemetry exactly (tests/runtime/telemetry_wire_test
//    holds the round trip byte-for-byte).
//  - TRANSPORT: parse_telemetry_target() splits HEAPTHERAPY_TELEMETRY into
//    the file form (unchanged) and the streaming form "unix:/path";
//    WireEmitter sends frames as connectionless AF_UNIX datagrams — one
//    sendto per frame, non-blocking, never touching an allocation path.
//    A frame larger than the socket's datagram limit reports kTooBig so the
//    caller can re-encode without event records (counters stay exact).
//
// Decoder hardening: every read is bounds-checked against the declared
// payload length, the payload length is capped, and no input can make the
// decoder crash, over-read, or loop — the corruption-sweep test flips every
// bit and truncates at every boundary to hold that line.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/telemetry.hpp"

namespace ht::runtime {

// ---- Frame constants (all part of the format; see docs/FORMATS.md §6) ----

/// 8-byte frame magic. The trailing NUL is part of the magic, so a text
/// dump (which never contains NUL in its first line) can never alias it.
inline constexpr char kWireMagic[8] = {'H', 'T', 'W', 'I', 'R', 'E', '1', '\0'};
inline constexpr std::uint16_t kWireVersion = 1;
/// magic(8) + version(u16) + reserved(u16) + payload_len(u32) + crc32(u32).
inline constexpr std::size_t kWireHeaderSize = 20;
/// Decoder refuses larger payloads outright: no telemetry snapshot is this
/// big, so a larger declared length is corruption, not data.
inline constexpr std::size_t kMaxWirePayload = 16u << 20;

/// Record types inside a frame payload. Part of the wire format: add at
/// the end, never renumber. Decoders skip unknown types silently (a newer
/// producer may emit records an older aggregator does not know).
enum class WireRecord : std::uint8_t {
  kSource = 0,    ///< producer label (e.g. "pid-4242"); UTF-8 bytes
  kMeta = 1,      ///< config + table identity + health + bypass
  kCounter = 2,   ///< one fleet counter: id byte + u64 value
  kShard = 3,     ///< one per-shard occupancy row
  kPatchHit = 4,  ///< one {fn, ccid} -> hits entry
  kLatency = 5,   ///< one latency histogram bucket: index + count
  kEvent = 6,     ///< one TelemetryRecord from the event ring
  kCandidate = 7, ///< one synthesized candidate patch (docs/SELF_HEALING.md)
  kHeapMeta = 8,  ///< heap-profiler summary (rate, pctl, overflow, threshold)
  kHeapCensus = 9,///< one {fn, ccid} census row (docs/OBSERVABILITY.md §9)
  kHeapAge = 10,  ///< one object-age histogram bucket: index + count
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) over `len` bytes.
/// `seed` chains multi-buffer computations (pass a previous return value).
[[nodiscard]] std::uint32_t crc32_ieee(const void* data, std::size_t len,
                                       std::uint32_t seed = 0) noexcept;

/// True when `data` starts with the frame magic — how htctl/htagg tell a
/// binary frame file from a §4 text dump.
[[nodiscard]] bool looks_like_wire_frame(std::string_view data) noexcept;

/// Encodes one snapshot as a single frame. `source` tags the producer
/// (empty = no kSource record); include_events=false omits kEvent records —
/// the datagram-too-big fallback that keeps counters exact while dropping
/// the (re-sendable) event tail.
[[nodiscard]] std::string encode_telemetry_frame(const TelemetrySnapshot& snap,
                                                 std::string_view source = {},
                                                 bool include_events = true);

/// Decode outcome. `errors` are fatal (bad magic/version, truncation, CRC
/// mismatch): the snapshot must not be trusted. `notes` are per-record
/// skips on a frame whose CRC passed (short body, unknown latency bucket):
/// the rest of the snapshot is intact and usable — the same skip-with-note
/// contract htagg applies to unreadable input files.
struct WireDecodeResult {
  TelemetrySnapshot snapshot;
  std::string source;               ///< kSource label, "" when absent
  std::vector<std::string> errors;  ///< fatal: frame rejected
  std::vector<std::string> notes;   ///< per-record skips; frame still usable
  std::size_t records = 0;          ///< records decoded successfully
  std::size_t skipped_records = 0;  ///< unknown-type + noted skips
  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Decodes one frame. Never throws, never over-reads: every declared
/// length is validated against the actual buffer before use.
[[nodiscard]] WireDecodeResult decode_telemetry_frame(std::string_view frame);

// ---- Transport targets (HEAPTHERAPY_TELEMETRY / htrun --telemetry) ----

/// The streaming form's prefix. check_docs.sh extracts every *TargetPrefix
/// constant here and requires the HEAPTHERAPY_TELEMETRY docs to cover it.
inline constexpr char kUnixTargetPrefix[] = "unix:";

/// Where telemetry flushes go: a file path (atomic write-then-rename of
/// the text dump, the original form) or a Unix datagram socket (one binary
/// frame per flush).
struct TelemetryTarget {
  enum class Kind : std::uint8_t {
    kNone = 0,          ///< telemetry flushing disabled
    kFile = 1,          ///< text dump to a file path
    kUnixDatagram = 2,  ///< binary frames to an AF_UNIX datagram socket
  };
  Kind kind = Kind::kNone;
  std::string path;  ///< file path, or socket path (prefix stripped)
};

/// Splits a HEAPTHERAPY_TELEMETRY value: "" -> kNone, "unix:<path>" ->
/// kUnixDatagram at <path>, anything else -> kFile. Call after
/// expand_telemetry_path so %p works in both forms.
[[nodiscard]] TelemetryTarget parse_telemetry_target(std::string_view value);

/// Streams frames to an AF_UNIX datagram socket. Connectionless sendto per
/// frame: the aggregator can restart without the producers noticing, and a
/// dead socket costs one failed syscall per flush, never a block. The
/// socket is created lazily (first send) and is non-blocking — a full
/// receiver buffer is a drop (kError), not a stall: this runs on the
/// preload maintenance thread whose failures must degrade, not back up
/// into allocation paths.
class WireEmitter {
 public:
  enum class SendResult : std::uint8_t {
    kSent = 0,
    kTooBig = 1,  ///< frame exceeds the datagram limit: retry without events
    kError = 2,   ///< transient (no receiver, full buffer): retry/backoff
  };

  explicit WireEmitter(std::string socket_path);
  ~WireEmitter();
  WireEmitter(const WireEmitter&) = delete;
  WireEmitter& operator=(const WireEmitter&) = delete;

  /// Sends one frame as one datagram. Safe to call repeatedly after
  /// failures; never blocks, never allocates.
  SendResult send_frame(std::string_view frame) noexcept;

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace ht::runtime
