#include "runtime/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "support/parse_policy.hpp"
#include "support/str.hpp"

namespace ht::runtime {

using progmodel::AllocFn;

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t round_up_pow2_u32(std::uint32_t n) noexcept {
  std::uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

AllocFn fn_from_u8(std::uint8_t raw) noexcept {
  for (AllocFn f : progmodel::kAllAllocFns) {
    if (static_cast<std::uint8_t>(f) == raw) return f;
  }
  return AllocFn::kMalloc;
}

/// Dump token for a record's fn byte: "-" for kFnNone.
std::string fn_token(std::uint8_t raw) {
  if (raw == TelemetryRecord::kFnNone) return "-";
  return std::string(progmodel::alloc_fn_name(fn_from_u8(raw)));
}

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

/// The §8 heap-profiler section is omitted entirely when the profiler
/// never ran and nothing was parsed into the snapshot — a dump from a
/// profiler-less process stays byte-identical to one from older runtimes.
bool heap_profile_active(const TelemetrySnapshot& snap) noexcept {
  return snap.config.heap_profile_rate != 0 || snap.heap_sampled != 0 ||
         snap.heap_registry_overflow != 0 || snap.heap_census_overflow != 0 ||
         snap.heap_threshold_ns != 0 || !snap.heap_census.empty() ||
         snap.heap_age.total() != 0;
}

}  // namespace

std::string_view telemetry_event_name(TelemetryEvent type) noexcept {
  switch (type) {
    case TelemetryEvent::kPatchTableLoad: return "patch_table_load";
    case TelemetryEvent::kPatchHit: return "patch_hit";
    case TelemetryEvent::kGuardTrap: return "guard_trap";
    case TelemetryEvent::kCanaryCorruption: return "canary_corruption";
    case TelemetryEvent::kQuarantineEvict: return "quarantine_evict";
    case TelemetryEvent::kQuarantineOverflow: return "quarantine_overflow";
    case TelemetryEvent::kGuardInstallFail: return "guard_install_fail";
    case TelemetryEvent::kPatchReload: return "patch_reload";
    case TelemetryEvent::kPatchReloadRejected: return "patch_reload_rejected";
    case TelemetryEvent::kAllocDegrade: return "alloc_degrade";
    case TelemetryEvent::kAllocFailure: return "alloc_failure";
    case TelemetryEvent::kQuarantinePressure: return "quarantine_pressure";
    case TelemetryEvent::kTelemetryFlushFail: return "telemetry_flush_fail";
    case TelemetryEvent::kCandidateSynthesized: return "candidate_synthesized";
  }
  return "unknown";
}

std::string_view health_state_name(HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kBypass: return "bypass";
  }
  return "unknown";
}

bool health_state_from_name(std::string_view name, HealthState& out) noexcept {
  for (std::uint8_t i = 0; i <= 2; ++i) {
    const auto state = static_cast<HealthState>(i);
    if (health_state_name(state) == name) {
      out = state;
      return true;
    }
  }
  return false;
}

bool telemetry_event_from_name(std::string_view name, TelemetryEvent& out) noexcept {
  for (std::uint8_t i = 0; i < kTelemetryEventCount; ++i) {
    const auto type = static_cast<TelemetryEvent>(i);
    if (telemetry_event_name(type) == name) {
      out = type;
      return true;
    }
  }
  return false;
}

// ---- TelemetryRing ----

/// Claim-spin bound for a wrap-contended slot (see record()); generous for
/// a 32-byte payload copy, tiny next to blocking.
constexpr int kClaimAttempts = 256;

void TelemetryRing::configure(std::uint32_t capacity) {
  if (capacity == 0) {
    slots_.reset();
    capacity_ = 0;
    mask_ = 0;
    return;
  }
  capacity_ = round_up_pow2_u32(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
  next_seq_.store(0, std::memory_order_relaxed);
}

void TelemetryRing::record(TelemetryRecord rec) noexcept {
  if (capacity_ == 0) return;
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  rec.seq = seq;
  rec.timestamp_ns = now_ns();
  Slot& slot = slots_[seq & mask_];
  // Per-slot seqlock: odd marker while the payload is in flight, even once
  // published. Readers validate the marker before and after their copy.
  //
  // Writers CLAIM the slot by swinging the marker to this lap's odd value;
  // the CAS serializes wrap-around writers (two writers landing on one slot
  // are a full capacity_ apart in sequence space, so this only contends
  // under heavy wrap). The claim spin is bounded: if the slot stays odd —
  // say its owner was preempted mid-copy — the event is dropped instead of
  // blocking, which keeps record() safe from any context, including a
  // guard-trap handler that interrupted a writer on the same slot.
  std::uint64_t m = slot.marker.load(std::memory_order_relaxed);
  for (int attempts = 0;; ++attempts) {
    if ((m & 1) == 0 &&
        slot.marker.compare_exchange_weak(m, (seq + 1) * 2 + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
      break;
    }
    if (attempts >= kClaimAttempts) return;  // contended wrap: drop
    m = slot.marker.load(std::memory_order_relaxed);
  }
  slot.store_payload(rec);
  slot.marker.store((seq + 1) * 2, std::memory_order_release);
}

std::uint64_t TelemetryRing::dropped() const noexcept {
  const std::uint64_t total = next_seq_.load(std::memory_order_relaxed);
  return total > capacity_ ? total - capacity_ : 0;
}

std::size_t TelemetryRing::snapshot(std::vector<TelemetryRecord>& out) const {
  if (capacity_ == 0) return 0;
  const std::size_t before = out.size();
  const std::uint64_t total = next_seq_.load(std::memory_order_acquire);
  const std::uint64_t first = total > capacity_ ? total - capacity_ : 0;
  for (std::uint64_t seq = first; seq < total; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    const std::uint64_t m1 = slot.marker.load(std::memory_order_acquire);
    if (m1 != (seq + 1) * 2) continue;  // not yet published, or overwritten
    TelemetryRecord copy;
    slot.load_payload(copy);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t m2 = slot.marker.load(std::memory_order_relaxed);
    if (m1 != m2) continue;  // torn by a concurrent wrap; skip
    out.push_back(copy);
  }
  return out.size() - before;
}

// ---- TelemetrySink ----

void TelemetrySink::configure(const TelemetryConfig& config, std::uint16_t shard) {
  counters_ = config.counters;
  shard_ = shard;
  ring_.configure(config.events ? config.ring_capacity : 0);
  heap_rate_ = config.heap_profile_rate;
  // Distinct, nonzero xorshift seed per shard so sibling sinks do not
  // sample in lockstep.
  heap_rng_ = (static_cast<std::uint64_t>(shard) + 1) * 0x9e3779b97f4a7c15ULL;
  // Seed the sampling countdown inside the first gap so sibling sinks do
  // not all sample their very first allocation (rate 1 still samples every
  // allocation: the draw below is always 1 when the rate is 1).
  if (heap_rate_ != 0) {
    heap_countdown_ = 1 + heap_rng_ % heap_rate_;
  }
}

void TelemetrySink::record_patch_hit(AllocFn fn, std::uint64_t ccid,
                                     std::uint8_t mask, std::uint64_t size,
                                     std::uint64_t latency_ns) noexcept {
  if (counters_) {
    latency_.record(latency_ns);
    // Open-addressing probe over the fixed hit table; keys never leave, so
    // a plain linear scan from the hash slot is race-free under the owning
    // context's serialization.
    const std::uint64_t h =
        (ccid * 0x9e3779b97f4a7c15ULL) ^ static_cast<std::uint64_t>(fn);
    bool counted = false;
    for (std::uint32_t probe = 0; probe < kHitSlots; ++probe) {
      HitSlot& slot = hit_slots_[(h + probe) % kHitSlots];
      if (!slot.used) {
        slot.used = true;
        slot.fn = static_cast<std::uint8_t>(fn);
        slot.ccid = ccid;
        slot.hits = 1;
        counted = true;
        break;
      }
      if (slot.ccid == ccid && slot.fn == static_cast<std::uint8_t>(fn)) {
        ++slot.hits;
        counted = true;
        break;
      }
    }
    if (!counted) ++hit_overflow_;
  }
  if (ring_.enabled()) {
    TelemetryRecord rec;
    rec.type = TelemetryEvent::kPatchHit;
    rec.fn = static_cast<std::uint8_t>(fn);
    rec.ccid = ccid;
    rec.size = size;
    rec.aux = mask;
    rec.shard = shard_;
    ring_.record(rec);
  }
}

void TelemetrySink::record_event(TelemetryEvent type, std::uint64_t ccid,
                                 std::uint64_t size, std::uint32_t aux,
                                 std::uint8_t fn) noexcept {
  if (!ring_.enabled()) return;
  TelemetryRecord rec;
  rec.type = type;
  rec.fn = fn;
  rec.ccid = ccid;
  rec.size = size;
  rec.aux = aux;
  rec.shard = shard_;
  ring_.record(rec);
}

std::vector<PatchHitCount> TelemetrySink::patch_hits() const {
  std::vector<PatchHitCount> out;
  for (const HitSlot& slot : hit_slots_) {
    if (!slot.used) continue;
    out.push_back(PatchHitCount{fn_from_u8(slot.fn), slot.ccid, slot.hits});
  }
  return out;
}

std::uint32_t TelemetrySink::copy_patch_hits(PatchHitCount* out,
                                             std::uint32_t max) const noexcept {
  std::uint32_t n = 0;
  for (const HitSlot& slot : hit_slots_) {
    if (!slot.used) continue;
    if (n == max) break;
    out[n++] = PatchHitCount{fn_from_u8(slot.fn), slot.ccid, slot.hits};
  }
  return n;
}

// ---- Snapshot assembly ----

void reserve_snapshot(TelemetrySnapshot& snap, std::uint32_t shards,
                      std::uint64_t total_ring_capacity) {
  snap.shards.reserve(snap.shards.size() + shards);
  snap.patch_hits.reserve(snap.patch_hits.size() +
                          static_cast<std::size_t>(shards) *
                              TelemetrySink::kHitSlots);
  snap.events.reserve(snap.events.size() + total_ring_capacity);
  snap.heap_census.reserve(snap.heap_census.size() +
                           static_cast<std::size_t>(shards) *
                               HeapCensus::kSlots);
}

void merge_sink_into_snapshot(TelemetrySnapshot& snap, const TelemetrySink& sink,
                              std::uint32_t shard, const AllocatorStats& stats,
                              std::uint64_t quarantine_bytes,
                              std::uint64_t quarantine_depth,
                              std::uint64_t quarantine_pressure) {
  ShardTelemetry row;
  row.shard = shard;
  row.stats = stats;
  row.quarantine_bytes = quarantine_bytes;
  row.quarantine_depth = quarantine_depth;
  row.quarantine_pressure = quarantine_pressure;
  row.events_recorded = sink.ring().recorded();
  row.events_dropped = sink.ring().dropped();
  snap.shards.push_back(row);

  snap.totals += stats;
  snap.events_recorded += row.events_recorded;
  snap.events_dropped += row.events_dropped;
  snap.quarantine_pressure += quarantine_pressure;
  snap.patch_hit_overflow += sink.patch_hit_overflow();
  snap.latency += sink.latency();
  // Stack buffer instead of sink.patch_hits(): callers hold the shard lock
  // here, and nothing in this function may allocate while they do (see
  // copy_patch_hits) — push_backs below stay within reserve_snapshot'd
  // capacity when the caller pre-reserved.
  PatchHitCount hits[TelemetrySink::kHitSlots];
  const std::uint32_t n = sink.copy_patch_hits(hits, TelemetrySink::kHitSlots);
  for (std::uint32_t i = 0; i < n; ++i) {
    const PatchHitCount& hit = hits[i];
    bool merged = false;
    for (PatchHitCount& existing : snap.patch_hits) {
      if (existing.fn == hit.fn && existing.ccid == hit.ccid) {
        existing.hits += hit.hits;
        merged = true;
        break;
      }
    }
    if (!merged) snap.patch_hits.push_back(hit);
  }
  // Heap census: appended per shard (allocation-free within the reserved
  // capacity), folded by {fn, ccid} in finalize_snapshot. Per-shard live
  // contributions may be negative — frees route by pointer hash, so the
  // freeing shard is rarely the allocating one — and only the fold makes
  // them meaningful.
  HeapCensusRow census[HeapCensus::kSlots];
  const std::uint32_t rows =
      sink.heap_census().copy_rows(census, HeapCensus::kSlots);
  for (std::uint32_t i = 0; i < rows; ++i) snap.heap_census.push_back(census[i]);
  snap.heap_age += sink.heap_age();
  snap.heap_sampled += sink.heap_sampled();
  snap.heap_census_overflow += sink.heap_census().overflow();
  sink.ring().snapshot(snap.events);
}

void finalize_snapshot(TelemetrySnapshot& snap) {
  std::sort(snap.events.begin(), snap.events.end(),
            [](const TelemetryRecord& a, const TelemetryRecord& b) {
              if (a.timestamp_ns != b.timestamp_ns) {
                return a.timestamp_ns < b.timestamp_ns;
              }
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  std::sort(snap.patch_hits.begin(), snap.patch_hits.end(),
            [](const PatchHitCount& a, const PatchHitCount& b) {
              if (a.fn != b.fn) return a.fn < b.fn;
              return a.ccid < b.ccid;
            });
  // Deterministic candidate order keeps dumps (and therefore the daemon's
  // and the batch aggregator's renderings) byte-identical.
  std::sort(snap.candidates.begin(), snap.candidates.end(),
            [](const patch::PatchCandidate& a, const patch::PatchCandidate& b) {
              if (a.fn != b.fn) return a.fn < b.fn;
              if (a.ccid != b.ccid) return a.ccid < b.ccid;
              if (a.vuln_mask != b.vuln_mask) return a.vuln_mask < b.vuln_mask;
              return a.origin < b.origin;
            });
  // Fold the per-shard census rows by {fn, ccid}: after the fold every
  // sampled alloc/free pair has met, so the live fields are non-negative
  // (the clamp guards hand-edited dumps, not the runtime).
  std::sort(snap.heap_census.begin(), snap.heap_census.end(),
            [](const HeapCensusRow& a, const HeapCensusRow& b) {
              if (a.fn != b.fn) return a.fn < b.fn;
              return a.ccid < b.ccid;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < snap.heap_census.size(); ++i) {
    if (out > 0 && snap.heap_census[out - 1].fn == snap.heap_census[i].fn &&
        snap.heap_census[out - 1].ccid == snap.heap_census[i].ccid) {
      HeapCensusRow& dst = snap.heap_census[out - 1];
      dst.live_bytes += snap.heap_census[i].live_bytes;
      dst.live_objects += snap.heap_census[i].live_objects;
      dst.allocs += snap.heap_census[i].allocs;
      dst.frees += snap.heap_census[i].frees;
      dst.suspects += snap.heap_census[i].suspects;
    } else {
      snap.heap_census[out++] = snap.heap_census[i];
    }
  }
  snap.heap_census.resize(out);
  for (HeapCensusRow& row : snap.heap_census) {
    if (row.live_bytes < 0) row.live_bytes = 0;
    if (row.live_objects < 0) row.live_objects = 0;
  }
  snap.health = derive_health(snap);
}

HealthState derive_health(const TelemetrySnapshot& snap) noexcept {
  if (snap.bypass) return HealthState::kBypass;
  const AllocatorStats& t = snap.totals;
  const std::uint64_t degradations =
      t.failed_guards + t.guard_budget_denied + t.degraded_to_canary +
      t.degraded_to_plain + t.alloc_failures + snap.quarantine_pressure +
      snap.flush_failures;
  return degradations > 0 ? HealthState::kDegraded : HealthState::kHealthy;
}

std::string expand_telemetry_path(std::string_view templ, long pid) {
  std::string out;
  out.reserve(templ.size() + 8);
  for (std::size_t i = 0; i < templ.size(); ++i) {
    if (templ[i] != '%' || i + 1 >= templ.size()) {
      out.push_back(templ[i]);
      continue;
    }
    const char next = templ[i + 1];
    if (next == 'p') {
      out += std::to_string(pid);
      ++i;
    } else if (next == '%') {
      out.push_back('%');
      ++i;
    } else {
      out.push_back('%');  // unknown sequence: copied verbatim
    }
  }
  return out;
}

// ---- Text dump (docs/FORMATS.md §4) ----

// The dump writer, the parser and the JSON exporter below all walk
// kTelemetryCounterFields (telemetry.hpp) — one table, no drift.
using CounterField = TelemetryCounterField;
inline constexpr const auto& kCounterFields = kTelemetryCounterFields;

std::string render_telemetry(const TelemetrySnapshot& snap) {
  std::string out;
  out.reserve(2048 + snap.events.size() * 96);
  out += "# HeapTherapy+ telemetry dump\n";
  out += "version 1\n";
  append_fmt(out, "config counters=%u events=%u ring=%u\n",
             snap.config.counters ? 1u : 0u, snap.config.events ? 1u : 0u,
             snap.config.ring_capacity);
  append_fmt(out, "table generation=%llu patches=%llu\n",
             static_cast<unsigned long long>(snap.table_generation),
             static_cast<unsigned long long>(snap.table_patches));
  append_fmt(out, "health %s bypass=%u\n",
             std::string(health_state_name(snap.health)).c_str(),
             snap.bypass ? 1u : 0u);
  for (const CounterField& c : kCounterFields) {
    append_fmt(out, "counter %s %llu\n", c.name,
               static_cast<unsigned long long>(snap.totals.*(c.field)));
  }
  append_fmt(out, "counter events_recorded %llu\n",
             static_cast<unsigned long long>(snap.events_recorded));
  append_fmt(out, "counter events_dropped %llu\n",
             static_cast<unsigned long long>(snap.events_dropped));
  append_fmt(out, "counter patch_hit_overflow %llu\n",
             static_cast<unsigned long long>(snap.patch_hit_overflow));
  append_fmt(out, "counter quarantine_pressure %llu\n",
             static_cast<unsigned long long>(snap.quarantine_pressure));
  append_fmt(out, "counter flush_failures %llu\n",
             static_cast<unsigned long long>(snap.flush_failures));
  append_fmt(out, "counter candidate_overflow %llu\n",
             static_cast<unsigned long long>(snap.candidate_overflow));
  for (const ShardTelemetry& s : snap.shards) {
    append_fmt(out,
               "shard %u interceptions=%llu frees=%llu quarantine_bytes=%llu "
               "quarantine_depth=%llu pressure=%llu events=%llu dropped=%llu\n",
               s.shard, static_cast<unsigned long long>(s.stats.interceptions),
               static_cast<unsigned long long>(s.stats.plain_frees +
                                               s.stats.quarantined_frees),
               static_cast<unsigned long long>(s.quarantine_bytes),
               static_cast<unsigned long long>(s.quarantine_depth),
               static_cast<unsigned long long>(s.quarantine_pressure),
               static_cast<unsigned long long>(s.events_recorded),
               static_cast<unsigned long long>(s.events_dropped));
  }
  for (const PatchHitCount& hit : snap.patch_hits) {
    append_fmt(out, "patchhit %s 0x%016llx %llu\n",
               std::string(progmodel::alloc_fn_name(hit.fn)).c_str(),
               static_cast<unsigned long long>(hit.ccid),
               static_cast<unsigned long long>(hit.hits));
  }
  for (const patch::PatchCandidate& c : snap.candidates) {
    append_fmt(out, "candidate %s 0x%016llx %s %s hits=%llu first=%llu\n",
               std::string(progmodel::alloc_fn_name(c.fn)).c_str(),
               static_cast<unsigned long long>(c.ccid),
               patch::vuln_mask_to_string(c.vuln_mask).c_str(),
               patch::candidate_origin_name(c.origin),
               static_cast<unsigned long long>(c.hits),
               static_cast<unsigned long long>(c.first_seen_ns));
  }
  for (std::uint32_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (snap.latency.buckets[i] == 0) continue;  // sparse: zeros add noise
    append_fmt(out, "latency %llu %llu\n",
               static_cast<unsigned long long>(
                   LatencyHistogram::bucket_limit_ns(i)),
               static_cast<unsigned long long>(snap.latency.buckets[i]));
  }
  // Heap profiler (docs/FORMATS.md §8).
  if (heap_profile_active(snap)) {
    append_fmt(out,
               "heapprof rate=%u pctl=%u sampled=%llu registry_overflow=%llu "
               "census_overflow=%llu threshold_ns=%llu\n",
               snap.config.heap_profile_rate,
               static_cast<unsigned>(snap.config.heap_age_percentile),
               static_cast<unsigned long long>(snap.heap_sampled),
               static_cast<unsigned long long>(snap.heap_registry_overflow),
               static_cast<unsigned long long>(snap.heap_census_overflow),
               static_cast<unsigned long long>(snap.heap_threshold_ns));
    for (const HeapCensusRow& row : snap.heap_census) {
      append_fmt(out,
                 "heapcensus %s 0x%016llx live_bytes=%lld live_objects=%lld "
                 "allocs=%llu frees=%llu suspects=%llu\n",
                 std::string(progmodel::alloc_fn_name(fn_from_u8(row.fn))).c_str(),
                 static_cast<unsigned long long>(row.ccid),
                 static_cast<long long>(row.live_bytes),
                 static_cast<long long>(row.live_objects),
                 static_cast<unsigned long long>(row.allocs),
                 static_cast<unsigned long long>(row.frees),
                 static_cast<unsigned long long>(row.suspects));
    }
    for (std::uint32_t i = 0; i < AgeHistogram::kBuckets; ++i) {
      if (snap.heap_age.buckets[i] == 0) continue;  // sparse, like latency
      append_fmt(out, "heapage %llu %llu\n",
                 static_cast<unsigned long long>(
                     AgeHistogram::bucket_limit_ns(i)),
                 static_cast<unsigned long long>(snap.heap_age.buckets[i]));
    }
  }
  for (const TelemetryRecord& e : snap.events) {
    append_fmt(out,
               "event %llu %u %s %s 0x%016llx size=%llu aux=%u t=%llu\n",
               static_cast<unsigned long long>(e.seq), e.shard,
               std::string(telemetry_event_name(e.type)).c_str(),
               fn_token(e.fn).c_str(),
               static_cast<unsigned long long>(e.ccid),
               static_cast<unsigned long long>(e.size), e.aux,
               static_cast<unsigned long long>(e.timestamp_ns));
  }
  return out;
}

namespace {

/// Parses "key=value" into out on match; returns false otherwise.
bool parse_kv_u64(std::string_view field, std::string_view key,
                  std::uint64_t& out) noexcept {
  if (!support::starts_with(field, key) || field.size() <= key.size() ||
      field[key.size()] != '=') {
    return false;
  }
  const auto v = support::parse_u64(field.substr(key.size() + 1));
  if (!v) return false;
  out = *v;
  return true;
}

bool parse_alloc_fn(std::string_view name, AllocFn& out) noexcept {
  for (AllocFn f : progmodel::kAllAllocFns) {
    if (progmodel::alloc_fn_name(f) == name) {
      out = f;
      return true;
    }
  }
  return false;
}

/// Signed variant of parse_kv_u64 for the census live fields (a hand-split
/// or truncated dump can legitimately carry negative per-shard values).
bool parse_kv_i64(std::string_view field, std::string_view key,
                  std::int64_t& out) noexcept {
  if (!support::starts_with(field, key) || field.size() <= key.size() ||
      field[key.size()] != '=') {
    return false;
  }
  std::string_view value = field.substr(key.size() + 1);
  const bool negative = !value.empty() && value[0] == '-';
  if (negative) value.remove_prefix(1);
  const auto v = support::parse_u64(value);
  if (!v || *v > static_cast<std::uint64_t>(INT64_MAX)) return false;
  out = negative ? -static_cast<std::int64_t>(*v) : static_cast<std::int64_t>(*v);
  return true;
}

}  // namespace

TelemetryParseResult parse_telemetry(std::string_view text) {
  TelemetryParseResult result;
  TelemetrySnapshot& snap = result.snapshot;
  bool version_seen = false;
  std::size_t line_no = 0;

  // Diagnostics follow the shared reject / note(capped) / silent-skip
  // policy (support/parse_policy.hpp); text dumps use the larger error cap.
  support::NoteLimiter errors(result.errors, support::kParseErrorCap);
  const auto complain = [&](const std::string& what) {
    errors.add("line " + std::to_string(line_no) + ": " + what);
  };

  for (std::string_view raw : support::split(text, '\n')) {
    ++line_no;
    std::string_view line = support::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> fields;
    for (std::string_view f : support::split(line, ' ')) {
      if (!support::trim(f).empty()) fields.push_back(support::trim(f));
    }
    if (fields.empty()) continue;
    const std::string_view directive = fields[0];

    if (directive == "version") {
      if (fields.size() != 2 || support::parse_u64(fields[1]) != 1) {
        complain("unsupported version directive");
        continue;
      }
      version_seen = true;
    } else if (directive == "config") {
      std::uint64_t counters = 1, events = 0, ring = 0;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        if (!parse_kv_u64(fields[i], "counters", counters) &&
            !parse_kv_u64(fields[i], "events", events) &&
            !parse_kv_u64(fields[i], "ring", ring)) {
          complain("bad config field '" + std::string(fields[i]) + "'");
        }
      }
      if (ring > UINT32_MAX) {
        complain("config ring capacity out of range");
        ring = 0;
      }
      snap.config.counters = counters != 0;
      snap.config.events = events != 0;
      snap.config.ring_capacity = static_cast<std::uint32_t>(ring);
    } else if (directive == "table") {
      for (std::size_t i = 1; i < fields.size(); ++i) {
        if (!parse_kv_u64(fields[i], "generation", snap.table_generation) &&
            !parse_kv_u64(fields[i], "patches", snap.table_patches)) {
          complain("bad table field '" + std::string(fields[i]) + "'");
        }
      }
    } else if (directive == "health") {
      if (fields.size() < 2 || !health_state_from_name(fields[1], snap.health)) {
        complain("malformed health line");
        continue;
      }
      std::uint64_t bypass = 0;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        if (!parse_kv_u64(fields[i], "bypass", bypass)) {
          complain("bad health field '" + std::string(fields[i]) + "'");
        }
      }
      snap.bypass = bypass != 0;
    } else if (directive == "counter") {
      const auto value =
          fields.size() == 3 ? support::parse_u64(fields[2]) : std::nullopt;
      if (!value) {
        complain("malformed counter line");
        continue;
      }
      bool known = false;
      for (const CounterField& c : kCounterFields) {
        if (fields[1] == c.name) {
          snap.totals.*(c.field) = *value;
          known = true;
          break;
        }
      }
      if (fields[1] == "events_recorded") {
        snap.events_recorded = *value;
        known = true;
      } else if (fields[1] == "events_dropped") {
        snap.events_dropped = *value;
        known = true;
      } else if (fields[1] == "patch_hit_overflow") {
        snap.patch_hit_overflow = *value;
        known = true;
      } else if (fields[1] == "quarantine_pressure") {
        snap.quarantine_pressure = *value;
        known = true;
      } else if (fields[1] == "flush_failures") {
        snap.flush_failures = *value;
        known = true;
      } else if (fields[1] == "candidate_overflow") {
        snap.candidate_overflow = *value;
        known = true;
      }
      // Unknown counters are skipped silently: a newer runtime may emit
      // counters an older parser does not know (forward compatibility).
      (void)known;
    } else if (directive == "shard") {
      ShardTelemetry row;
      std::uint64_t frees = 0;
      const auto shard_idx =
          fields.size() >= 2 ? support::parse_u64(fields[1]) : std::nullopt;
      if (!shard_idx || *shard_idx > UINT32_MAX) {
        complain("malformed shard line");
        continue;
      }
      row.shard = static_cast<std::uint32_t>(*shard_idx);
      for (std::size_t i = 2; i < fields.size(); ++i) {
        if (!parse_kv_u64(fields[i], "interceptions", row.stats.interceptions) &&
            !parse_kv_u64(fields[i], "frees", frees) &&
            !parse_kv_u64(fields[i], "quarantine_bytes", row.quarantine_bytes) &&
            !parse_kv_u64(fields[i], "quarantine_depth", row.quarantine_depth) &&
            !parse_kv_u64(fields[i], "pressure", row.quarantine_pressure) &&
            !parse_kv_u64(fields[i], "events", row.events_recorded) &&
            !parse_kv_u64(fields[i], "dropped", row.events_dropped)) {
          complain("bad shard field '" + std::string(fields[i]) + "'");
        }
      }
      // The dump reports merged frees; surface them as plain_frees so the
      // round trip keeps the total (the split is not in the shard line).
      row.stats.plain_frees = frees;
      snap.shards.push_back(row);
    } else if (directive == "patchhit") {
      AllocFn fn;
      const auto ccid =
          fields.size() == 4 ? support::parse_u64(fields[2]) : std::nullopt;
      const auto hits =
          fields.size() == 4 ? support::parse_u64(fields[3]) : std::nullopt;
      if (fields.size() != 4 || !parse_alloc_fn(fields[1], fn) || !ccid || !hits) {
        complain("malformed patchhit line");
        continue;
      }
      snap.patch_hits.push_back(PatchHitCount{fn, *ccid, *hits});
    } else if (directive == "candidate") {
      // candidate <fn> <ccid> <mask> <origin> hits=N first=N
      AllocFn fn;
      patch::PatchCandidate cand;
      const bool shape_ok = fields.size() == 7;
      const auto ccid = shape_ok ? support::parse_u64(fields[2]) : std::nullopt;
      std::uint8_t mask = 0;
      if (!shape_ok || !parse_alloc_fn(fields[1], fn) || !ccid ||
          !patch::vuln_mask_from_string(fields[3], mask) ||
          !patch::candidate_origin_from_name(fields[4], cand.origin) ||
          !parse_kv_u64(fields[5], "hits", cand.hits) ||
          !parse_kv_u64(fields[6], "first", cand.first_seen_ns)) {
        complain("malformed candidate line");
        continue;
      }
      cand.fn = fn;
      cand.ccid = *ccid;
      cand.vuln_mask = mask;
      snap.candidates.push_back(cand);
    } else if (directive == "latency") {
      const auto limit =
          fields.size() == 3 ? support::parse_u64(fields[1]) : std::nullopt;
      const auto count =
          fields.size() == 3 ? support::parse_u64(fields[2]) : std::nullopt;
      if (!limit || !count) {
        complain("malformed latency line");
        continue;
      }
      bool matched = false;
      for (std::uint32_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
        if (LatencyHistogram::bucket_limit_ns(i) == *limit) {
          snap.latency.buckets[i] = *count;
          matched = true;
          break;
        }
      }
      if (!matched) complain("unknown latency bucket limit");
    } else if (directive == "heapprof") {
      std::uint64_t rate = 0, pctl = snap.config.heap_age_percentile;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        if (!parse_kv_u64(fields[i], "rate", rate) &&
            !parse_kv_u64(fields[i], "pctl", pctl) &&
            !parse_kv_u64(fields[i], "sampled", snap.heap_sampled) &&
            !parse_kv_u64(fields[i], "registry_overflow",
                          snap.heap_registry_overflow) &&
            !parse_kv_u64(fields[i], "census_overflow",
                          snap.heap_census_overflow) &&
            !parse_kv_u64(fields[i], "threshold_ns", snap.heap_threshold_ns)) {
          complain("bad heapprof field '" + std::string(fields[i]) + "'");
        }
      }
      if (rate > UINT32_MAX) {
        complain("heapprof rate out of range");
        rate = 0;
      }
      if (pctl == 0 || pctl > 100) {
        complain("heapprof percentile out of range");
        pctl = 99;
      }
      snap.config.heap_profile_rate = static_cast<std::uint32_t>(rate);
      snap.config.heap_age_percentile = static_cast<std::uint8_t>(pctl);
    } else if (directive == "heapcensus") {
      // heapcensus <fn> <ccid> live_bytes=N live_objects=N allocs=N
      //            frees=N suspects=N
      AllocFn fn;
      const auto ccid =
          fields.size() >= 3 ? support::parse_u64(fields[2]) : std::nullopt;
      if (fields.size() < 3 || !parse_alloc_fn(fields[1], fn) || !ccid) {
        complain("malformed heapcensus line");
        continue;
      }
      HeapCensusRow row;
      row.fn = static_cast<std::uint8_t>(fn);
      row.ccid = *ccid;
      for (std::size_t i = 3; i < fields.size(); ++i) {
        if (!parse_kv_i64(fields[i], "live_bytes", row.live_bytes) &&
            !parse_kv_i64(fields[i], "live_objects", row.live_objects) &&
            !parse_kv_u64(fields[i], "allocs", row.allocs) &&
            !parse_kv_u64(fields[i], "frees", row.frees) &&
            !parse_kv_u64(fields[i], "suspects", row.suspects)) {
          complain("bad heapcensus field '" + std::string(fields[i]) + "'");
        }
      }
      snap.heap_census.push_back(row);
    } else if (directive == "heapage") {
      const auto limit =
          fields.size() == 3 ? support::parse_u64(fields[1]) : std::nullopt;
      const auto count =
          fields.size() == 3 ? support::parse_u64(fields[2]) : std::nullopt;
      if (!limit || !count) {
        complain("malformed heapage line");
        continue;
      }
      bool matched = false;
      for (std::uint32_t i = 0; i < AgeHistogram::kBuckets; ++i) {
        if (AgeHistogram::bucket_limit_ns(i) == *limit) {
          snap.heap_age.buckets[i] = *count;
          matched = true;
          break;
        }
      }
      if (!matched) complain("unknown heapage bucket limit");
    } else if (directive == "event") {
      // event <seq> <shard> <type> <fn> <ccid> size=N aux=N t=N
      TelemetryRecord rec;
      AllocFn fn = AllocFn::kMalloc;
      const bool shape_ok = fields.size() >= 6;
      const auto seq = shape_ok ? support::parse_u64(fields[1]) : std::nullopt;
      const auto shard = shape_ok ? support::parse_u64(fields[2]) : std::nullopt;
      const auto ccid = shape_ok ? support::parse_u64(fields[5]) : std::nullopt;
      const bool fn_ok =
          shape_ok && (fields[4] == "-" || parse_alloc_fn(fields[4], fn));
      if (!shape_ok || !seq || !shard || *shard > UINT16_MAX || !ccid ||
          !fn_ok || !telemetry_event_from_name(fields[3], rec.type)) {
        complain("malformed event line");
        continue;
      }
      rec.seq = *seq;
      rec.shard = static_cast<std::uint16_t>(*shard);
      rec.fn = fields[4] == "-" ? TelemetryRecord::kFnNone
                                : static_cast<std::uint8_t>(fn);
      rec.ccid = *ccid;
      for (std::size_t i = 6; i < fields.size(); ++i) {
        std::uint64_t aux = 0, ts = 0;
        if (parse_kv_u64(fields[i], "size", rec.size)) continue;
        if (parse_kv_u64(fields[i], "aux", aux)) {
          if (aux > UINT32_MAX) {
            complain("event aux out of range");
          } else {
            rec.aux = static_cast<std::uint32_t>(aux);
          }
          continue;
        }
        if (parse_kv_u64(fields[i], "t", ts)) {
          rec.timestamp_ns = ts;
          continue;
        }
        complain("bad event field '" + std::string(fields[i]) + "'");
      }
      snap.events.push_back(rec);
    } else {
      complain("unknown directive '" + std::string(directive) + "'");
    }
  }
  errors.append_suppressed_summary();
  if (!version_seen) result.errors.insert(result.errors.begin(),
                                          "missing version directive");
  return result;
}

// ---- JSON export ----

std::string telemetry_stats_json(const TelemetrySnapshot& snap) {
  std::string out = "{\n";
  append_fmt(out, "  \"table\": {\"generation\": %llu, \"patches\": %llu},\n",
             static_cast<unsigned long long>(snap.table_generation),
             static_cast<unsigned long long>(snap.table_patches));
  append_fmt(out, "  \"health\": \"%s\",\n",
             std::string(health_state_name(snap.health)).c_str());
  out += "  \"counters\": {";
  bool first = true;
  for (const CounterField& c : kCounterFields) {
    append_fmt(out, "%s\"%s\": %llu", first ? "" : ", ", c.name,
               static_cast<unsigned long long>(snap.totals.*(c.field)));
    first = false;
  }
  append_fmt(out, ", \"events_recorded\": %llu, \"events_dropped\": %llu"
                  ", \"patch_hit_overflow\": %llu"
                  ", \"quarantine_pressure\": %llu, \"flush_failures\": %llu"
                  ", \"candidate_overflow\": %llu},\n",
             static_cast<unsigned long long>(snap.events_recorded),
             static_cast<unsigned long long>(snap.events_dropped),
             static_cast<unsigned long long>(snap.patch_hit_overflow),
             static_cast<unsigned long long>(snap.quarantine_pressure),
             static_cast<unsigned long long>(snap.flush_failures),
             static_cast<unsigned long long>(snap.candidate_overflow));
  out += "  \"patch_hits\": [";
  first = true;
  for (const PatchHitCount& hit : snap.patch_hits) {
    append_fmt(out, "%s\n    {\"fn\": \"%s\", \"ccid\": \"0x%016llx\", "
                    "\"hits\": %llu}",
               first ? "" : ",",
               std::string(progmodel::alloc_fn_name(hit.fn)).c_str(),
               static_cast<unsigned long long>(hit.ccid),
               static_cast<unsigned long long>(hit.hits));
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"candidates\": [";
  first = true;
  for (const patch::PatchCandidate& c : snap.candidates) {
    append_fmt(out,
               "%s\n    {\"fn\": \"%s\", \"ccid\": \"0x%016llx\", "
               "\"mask\": \"%s\", \"origin\": \"%s\", \"hits\": %llu, "
               "\"first_seen_ns\": %llu}",
               first ? "" : ",",
               std::string(progmodel::alloc_fn_name(c.fn)).c_str(),
               static_cast<unsigned long long>(c.ccid),
               patch::vuln_mask_to_string(c.vuln_mask).c_str(),
               patch::candidate_origin_name(c.origin),
               static_cast<unsigned long long>(c.hits),
               static_cast<unsigned long long>(c.first_seen_ns));
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"latency_ns\": [";
  first = true;
  for (std::uint32_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (snap.latency.buckets[i] == 0) continue;
    append_fmt(out, "%s\n    {\"limit\": %llu, \"count\": %llu}",
               first ? "" : ",",
               static_cast<unsigned long long>(
                   LatencyHistogram::bucket_limit_ns(i)),
               static_cast<unsigned long long>(snap.latency.buckets[i]));
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";
  append_fmt(out,
             "  \"heap\": {\"rate\": %u, \"pctl\": %u, \"sampled\": %llu, "
             "\"registry_overflow\": %llu, \"census_overflow\": %llu, "
             "\"threshold_ns\": %llu, \"census\": [",
             snap.config.heap_profile_rate,
             static_cast<unsigned>(snap.config.heap_age_percentile),
             static_cast<unsigned long long>(snap.heap_sampled),
             static_cast<unsigned long long>(snap.heap_registry_overflow),
             static_cast<unsigned long long>(snap.heap_census_overflow),
             static_cast<unsigned long long>(snap.heap_threshold_ns));
  first = true;
  for (const HeapCensusRow& row : snap.heap_census) {
    append_fmt(out,
               "%s\n    {\"fn\": \"%s\", \"ccid\": \"0x%016llx\", "
               "\"live_bytes\": %lld, \"live_objects\": %lld, "
               "\"allocs\": %llu, \"frees\": %llu, \"suspects\": %llu}",
               first ? "" : ",",
               std::string(progmodel::alloc_fn_name(fn_from_u8(row.fn))).c_str(),
               static_cast<unsigned long long>(row.ccid),
               static_cast<long long>(row.live_bytes),
               static_cast<long long>(row.live_objects),
               static_cast<unsigned long long>(row.allocs),
               static_cast<unsigned long long>(row.frees),
               static_cast<unsigned long long>(row.suspects));
    first = false;
  }
  out += first ? "], \"age_ns\": [" : "\n  ], \"age_ns\": [";
  first = true;
  for (std::uint32_t i = 0; i < AgeHistogram::kBuckets; ++i) {
    if (snap.heap_age.buckets[i] == 0) continue;
    append_fmt(out, "%s\n    {\"limit\": %llu, \"count\": %llu}",
               first ? "" : ",",
               static_cast<unsigned long long>(AgeHistogram::bucket_limit_ns(i)),
               static_cast<unsigned long long>(snap.heap_age.buckets[i]));
    first = false;
  }
  out += first ? "]},\n" : "\n  ]},\n";
  out += "  \"shards\": [";
  first = true;
  for (const ShardTelemetry& s : snap.shards) {
    append_fmt(out,
               "%s\n    {\"shard\": %u, \"interceptions\": %llu, "
               "\"frees\": %llu, \"quarantine_bytes\": %llu, "
               "\"quarantine_depth\": %llu, \"pressure\": %llu, "
               "\"events\": %llu, \"dropped\": %llu}",
               first ? "" : ",", s.shard,
               static_cast<unsigned long long>(s.stats.interceptions),
               static_cast<unsigned long long>(s.stats.plain_frees +
                                               s.stats.quarantined_frees),
               static_cast<unsigned long long>(s.quarantine_bytes),
               static_cast<unsigned long long>(s.quarantine_depth),
               static_cast<unsigned long long>(s.quarantine_pressure),
               static_cast<unsigned long long>(s.events_recorded),
               static_cast<unsigned long long>(s.events_dropped));
    first = false;
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string telemetry_trace_json(const TelemetrySnapshot& snap) {
  std::string out = "[";
  bool first = true;
  for (const TelemetryRecord& e : snap.events) {
    append_fmt(out,
               "%s\n  {\"seq\": %llu, \"shard\": %u, \"type\": \"%s\", "
               "\"fn\": \"%s\", \"ccid\": \"0x%016llx\", \"size\": %llu, "
               "\"aux\": %u, \"t_ns\": %llu}",
               first ? "" : ",", static_cast<unsigned long long>(e.seq),
               e.shard, std::string(telemetry_event_name(e.type)).c_str(),
               fn_token(e.fn).c_str(),
               static_cast<unsigned long long>(e.ccid),
               static_cast<unsigned long long>(e.size), e.aux,
               static_cast<unsigned long long>(e.timestamp_ns));
    first = false;
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

}  // namespace ht::runtime
