#include "runtime/defense_engine.hpp"

#include <sys/mman.h>

#include <chrono>
#include <cstring>

#include "patch/decision_cache.hpp"
#include "patch/static_hints.hpp"
#include "support/faultpoint.hpp"
#include "support/hash.hpp"

namespace ht::runtime {

using progmodel::AllocFn;

namespace {

/// Steady-clock nanoseconds for the enhancement-latency histogram. Read
/// only on the *enhanced* path and only when a telemetry sink is attached,
/// so unpatched traffic never pays for a clock call.
std::uint64_t latency_clock_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock nanoseconds for candidate first-seen stamps (journals are
/// merged across processes, so the stamp must be comparable fleet-wide).
/// Read only on detection — never on a healthy allocation or free.
std::uint64_t realtime_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

DefenseEngine::DefenseEngine(const patch::PatchTable* patches,
                             GuardedAllocatorConfig config,
                             UnderlyingAllocator underlying)
    : patches_(patches), config_(config), underlying_(underlying) {
  if (config_.telemetry.heap_profile_rate != 0) heap_registry_.configure();
}

DefenseEngine::DefenseEngine(const patch::PatchTableSwap& swap,
                             GuardedAllocatorConfig config,
                             UnderlyingAllocator underlying)
    : patches_(nullptr), swap_(&swap), config_(config), underlying_(underlying) {
  if (config_.telemetry.heap_profile_rate != 0) heap_registry_.configure();
}

std::uint64_t DefenseEngine::read_word(const void* user) noexcept {
  std::uint64_t word;
  std::memcpy(&word, static_cast<const char*>(user) - sizeof(word), sizeof(word));
  return word;
}

std::uint64_t DefenseEngine::tag_for(const void* user) noexcept {
  // Pointer-dependent so a foreign heap byte pattern cannot collide except
  // with ~2^-64 probability.
  return support::mix64(reinterpret_cast<std::uint64_t>(user) ^
                        0x4854502b5441474cULL);  // "HTP+TAGL"
}

std::uint64_t DefenseEngine::canary_for(const void* user) noexcept {
  return support::mix64(reinterpret_cast<std::uint64_t>(user) ^
                        0x43414e4152592b21ULL);  // "CANARY+!"
}

// The ownership probe DELIBERATELY reads the 16 bytes before the user
// pointer. For our own buffers that is the header tag; for foreign pointers
// (pre-interposition or another allocator's) it lands outside the
// allocation — usually in the underlying allocator's chunk header — and the
// pointer-dependent tag makes a false positive a ~2^-64 event. That
// out-of-bounds read is the price of recognizing foreign frees under
// LD_PRELOAD (DESIGN.md §5b), so sanitizers are told to look away here and
// only here: the probed bytes are mapped (same page or the preceding
// heap-managed bytes), but ASan/TSan shadow state may mark them redzone or
// freed. The byte loop with volatile keeps the compiler from re-forming a
// (sanitizer-intercepted) memcpy call.
#if defined(__has_attribute)
#if __has_attribute(no_sanitize)
__attribute__((no_sanitize("address"))) __attribute__((no_sanitize("thread")))
#endif
#endif
bool DefenseEngine::owns(const void* p) noexcept {
  const volatile unsigned char* bytes =
      static_cast<const unsigned char*>(p) - 2 * sizeof(std::uint64_t);
  std::uint64_t tag = 0;
  for (std::size_t i = 0; i < sizeof(tag); ++i) {
    tag |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return tag == tag_for(p);
}

void* DefenseEngine::raw_of(void* user, const MetadataWord& meta) noexcept {
  const std::uint64_t header =
      meta.aligned ? (1ULL << meta.align_log2) : kPlainHeader;
  return static_cast<char*>(user) - header;
}

std::uint8_t DefenseEngine::lookup_mask(AllocFn fn, std::uint64_t ccid) const noexcept {
  // Statically proven-safe contexts skip the table entirely — the elision
  // half of analyze-then-immunize (docs/STATIC_ANALYSIS.md). One predicted
  // branch when no hint set is loaded.
  if (config_.static_hints != nullptr &&
      config_.static_hints->contains(fn, ccid)) {
    return 0;
  }
  // One extra branch (and for the swap case one acquire load) resolves the
  // hot-reloadable table; generation-keyed memoization makes the cache
  // self-invalidating when a reload swaps the table underneath us.
  const patch::PatchTable* table =
      swap_ != nullptr ? swap_->serving() : patches_;
  if (table == nullptr) return 0;
  if (config_.memoize_decisions) {
    return patch::DecisionCache::for_current_thread().lookup(*table, fn, ccid);
  }
  return table->lookup(fn, ccid);
}

void* DefenseEngine::allocate(AllocFn fn, std::uint64_t size,
                              std::uint64_t alignment, std::uint64_t ccid,
                              AllocatorStats& stats,
                              TelemetrySink* telemetry) const {
  ++stats.interceptions;
  if (config_.forward_only) {
    return alignment > 0 ? underlying_.memalign_fn(alignment, size)
                         : underlying_.malloc_fn(size);
  }

  const std::uint8_t mask = lookup_mask(fn, ccid);
  // Latency timing covers exactly the enhancement work (defenses applied
  // for a matched patch); the clock is read only on that path.
  const std::uint64_t enhance_start =
      (mask != 0 && telemetry != nullptr) ? latency_clock_ns() : 0;
  bool guard = (mask & patch::kOverflow) != 0 && config_.use_guard_pages;
  // Degradation ladder, rung 1: the guard budget. When the cap on live
  // guard pages is spent, the allocation steps down to the canary rung
  // (or plain) instead of waiting or failing. The check is advisory
  // (racy by a page or two under concurrency); the budget bounds resource
  // use, it is not a security boundary.
  if (guard && config_.guard_page_budget > 0 &&
      live_guard_pages_.load(std::memory_order_relaxed) >=
          config_.guard_page_budget) {
    guard = false;
    ++stats.guard_budget_denied;
    if (telemetry != nullptr) {
      telemetry->record_event(TelemetryEvent::kAllocDegrade, ccid, size,
                              config_.use_canaries ? kDegradeLevelCanary
                                                   : kDegradeLevelPlain,
                              static_cast<std::uint8_t>(fn));
    }
  }
  bool canary =
      (mask & patch::kOverflow) != 0 && !guard && config_.use_canaries;

  const std::uint64_t norm_align = normalize_alignment(alignment);
  const auto raw_alloc = [&](const BufferLayout& l) -> char* {
    if (support::fault_fires(support::FaultPoint::kUnderlyingOom)) {
      return nullptr;
    }
    return static_cast<char*>(
        l.raw_alignment > 0
            ? underlying_.memalign_fn(l.raw_alignment, l.raw_size)
            : underlying_.malloc_fn(l.raw_size));
  };
  BufferLayout layout = compute_layout(size, alignment, guard, canary);
  char* raw = raw_alloc(layout);
  if (raw == nullptr && (guard || canary)) {
    // Rung 2: the enhanced footprint (guard page / canary slack) was
    // refused by the underlying allocator. Retry with the plain layout —
    // under memory pressure a protected process must keep serving
    // allocations, metadata-only, rather than fail calls its unprotected
    // twin would have satisfied.
    guard = false;
    canary = false;
    layout = compute_layout(size, alignment, false, false);
    raw = raw_alloc(layout);
    if (raw != nullptr) {
      ++stats.degraded_to_plain;
      if (telemetry != nullptr) {
        telemetry->record_event(TelemetryEvent::kAllocDegrade, ccid, size,
                                kDegradeLevelPlain,
                                static_cast<std::uint8_t>(fn));
      }
    }
  }
  if (raw == nullptr) {
    // Bottom of the ladder: even the plain layout failed. Return null like
    // any allocator, but make the failure observable.
    ++stats.alloc_failures;
    if (telemetry != nullptr) {
      telemetry->record_event(TelemetryEvent::kAllocFailure, ccid, size, mask,
                              static_cast<std::uint8_t>(fn));
    }
    return nullptr;
  }
  char* user = raw + layout.user_offset;

  MetadataWord meta;
  meta.aligned = norm_align > 0;
  meta.align_log2 = meta.aligned ? log2_u64(norm_align) : 0;

  if (guard) {
    const std::uint64_t guard_addr =
        guard_page_address(reinterpret_cast<std::uint64_t>(user), size);
    // The user size lives in the first word of the guard page (Fig. 6); it
    // must be written before the page becomes inaccessible.
    std::memcpy(reinterpret_cast<void*>(guard_addr), &size, sizeof(size));
    // An armed guard-map fault short-circuits the mprotect (|| ordering):
    // the page must stay writable on the simulated-failure path, exactly
    // as it does when the real call fails.
    if (support::fault_fires(support::FaultPoint::kGuardMap) ||
        ::mprotect(reinterpret_cast<void*>(guard_addr), kPageSize,
                   PROT_NONE) != 0) {
      // Rung 3: the mapping was refused. Fall back to the canary defense
      // when it is enabled — the guard page's bytes are still writable, so
      // the trailing canary lands in memory we own — else metadata-only.
      ++stats.failed_guards;
      if (telemetry != nullptr) {
        telemetry->record_event(TelemetryEvent::kGuardInstallFail, ccid, size,
                                mask, static_cast<std::uint8_t>(fn));
      }
      guard = false;
      if (config_.use_canaries) {
        canary = true;
        ++stats.degraded_to_canary;
        if (telemetry != nullptr) {
          telemetry->record_event(TelemetryEvent::kAllocDegrade, ccid, size,
                                  kDegradeLevelCanary,
                                  static_cast<std::uint8_t>(fn));
        }
      }
    } else {
      ++stats.guard_pages;
      live_guard_pages_.fetch_add(1, std::memory_order_relaxed);
      meta.vuln_mask = mask;  // includes the OVERFLOW bit
      meta.guard_page_addr = guard_addr;
    }
  }
  if (!guard) {
    // Without a live guard page the OVERFLOW bit must stay clear: bit 0
    // selects the metadata interpretation (guard locator vs. size field).
    meta.vuln_mask = mask & static_cast<std::uint8_t>(~patch::kOverflow);
    meta.user_size = size;
    meta.fn = static_cast<std::uint8_t>(fn);
    if (canary) {
      // Detect-on-free fallback: plant a pointer-dependent canary directly
      // after the user region, followed by the allocation-time CCID so a
      // corruption found on free can be attributed to {FUN, CCID} for
      // candidate-patch synthesis (docs/SELF_HEALING.md).
      meta.canary = true;
      const std::uint64_t value = canary_for(user);
      std::memcpy(user + size, &value, sizeof(value));
      std::memcpy(user + size + sizeof(value), &ccid, sizeof(ccid));
      ++stats.canaries_planted;
    }
    // Heap profiler (docs/OBSERVABILITY.md §9): one branch when disabled.
    // Only plain-layout buffers are profiled (the metadata word's spare
    // bit 62 exists only there); the sampled allocation enters the live
    // registry and the sink's census, and the PROFILED bit tells the free
    // path to take it back out. Registry overflow leaves the bit clear —
    // the allocation simply goes unprofiled.
    if (config_.telemetry.heap_profile_rate != 0 && telemetry != nullptr &&
        telemetry->heap_sample() &&
        heap_registry_.insert(user, static_cast<std::uint8_t>(fn), ccid, size,
                              heap_profile_clock_ns())) {
      meta.profiled = true;
      telemetry->record_heap_alloc(static_cast<std::uint8_t>(fn), ccid, size);
    }
  }

  if ((mask & patch::kUninitRead) != 0 && size > 0) {
    std::memset(user, 0, size);
    ++stats.zero_fills;
  }
  if (mask != 0) {
    ++stats.enhanced;
    if (telemetry != nullptr) {
      telemetry->record_patch_hit(fn, ccid, mask, size,
                                  latency_clock_ns() - enhance_start);
    }
  }

  const std::uint64_t word = encode_metadata(meta);
  std::memcpy(user - sizeof(word), &word, sizeof(word));
  const std::uint64_t tag = tag_for(user);
  std::memcpy(user - 2 * sizeof(tag), &tag, sizeof(tag));
  return user;
}

void* DefenseEngine::malloc(std::uint64_t size, std::uint64_t ccid,
                            AllocatorStats& stats, TelemetrySink* telemetry) const {
  return allocate(AllocFn::kMalloc, size, 0, ccid, stats, telemetry);
}

void* DefenseEngine::calloc(std::uint64_t count, std::uint64_t size,
                            std::uint64_t ccid, AllocatorStats& stats,
                            TelemetrySink* telemetry) const {
  // Overflow-checked multiply, as any production calloc must do.
  if (size != 0 && count > UINT64_MAX / size) return nullptr;
  const std::uint64_t total = count * size;
  void* p = allocate(AllocFn::kCalloc, total, 0, ccid, stats, telemetry);
  if (p != nullptr && total > 0) std::memset(p, 0, total);
  return p;
}

void* DefenseEngine::memalign(std::uint64_t alignment, std::uint64_t size,
                              std::uint64_t ccid, AllocatorStats& stats,
                              TelemetrySink* telemetry) const {
  return allocate(AllocFn::kMemalign, size, alignment, ccid, stats, telemetry);
}

void* DefenseEngine::aligned_alloc(std::uint64_t alignment, std::uint64_t size,
                                   std::uint64_t ccid, AllocatorStats& stats,
                                   TelemetrySink* telemetry) const {
  return allocate(AllocFn::kAlignedAlloc, size, alignment, ccid, stats, telemetry);
}

void DefenseEngine::free(void* p, Quarantine& quarantine,
                         AllocatorStats& stats, TelemetrySink* telemetry) const {
  if (p == nullptr) return;
  if (config_.forward_only || !owns(p)) {
    underlying_.free_fn(p);
    return;
  }
  MetadataWord meta = decode_metadata(read_word(p));
  std::uint64_t size = meta.user_size;
  if (meta.profiled) {
    // The registry entry is removed even when no sink is attached (slots
    // must never leak); the census/age record needs the sink.
    HeapLiveEntry entry;
    if (heap_registry_.remove(p, entry) && telemetry != nullptr) {
      telemetry->record_heap_free(entry.fn, entry.ccid, entry.size,
                                  heap_profile_clock_ns() - entry.alloc_ns);
    }
  }
  if (meta.canary) {
    std::uint64_t found;
    std::memcpy(&found, static_cast<char*>(p) + size, sizeof(found));
    if (found != canary_for(p)) {
      ++stats.canary_overflows_on_free;
      // Attribute the corruption from the trailer's allocation-time CCID
      // and the metadata word's AllocFn. An overflow long enough to smash
      // the CCID word too yields a garbage candidate — harmless, because
      // candidates only become patches after replay validation.
      std::uint64_t alloc_ccid = 0;
      std::memcpy(&alloc_ccid, static_cast<char*>(p) + size + sizeof(found),
                  sizeof(alloc_ccid));
      if (telemetry != nullptr) {
        telemetry->record_event(TelemetryEvent::kCanaryCorruption, alloc_ccid,
                                size, meta.vuln_mask, meta.fn);
      }
      synthesize_candidate(static_cast<AllocFn>(meta.fn), alloc_ccid,
                           patch::kOverflow, patch::CandidateOrigin::kCanary,
                           telemetry);
    }
  }
  if (meta.has_guard()) {
    // Fig. 7 step 1: make the guard page accessible again and recover the
    // user size from its first word.
    ::mprotect(reinterpret_cast<void*>(meta.guard_page_addr), kPageSize,
               PROT_READ | PROT_WRITE);
    std::memcpy(&size, reinterpret_cast<void*>(meta.guard_page_addr), sizeof(size));
    live_guard_pages_.fetch_sub(1, std::memory_order_relaxed);
  }
  void* raw = raw_of(p, meta);
  if ((meta.vuln_mask & patch::kUseAfterFree) != 0 && config_.poison_quarantine &&
      size > 0) {
    // Extension: stale reads of the quarantined block now see poison, not
    // leftover data.
    std::memset(p, GuardedAllocatorConfig::kPoisonByte, size);
  }
  // Scrub the ownership tag: a double free of `p` then behaves like a
  // foreign free (the underlying allocator's own double-free detection
  // fires) instead of corrupting the quarantine.
  const std::uint64_t zero = 0;
  std::memcpy(static_cast<char*>(p) - 16, &zero, sizeof(zero));
  if ((meta.vuln_mask & patch::kUseAfterFree) != 0) {
    const BufferLayout layout =
        compute_layout(size, meta.aligned ? (1ULL << meta.align_log2) : 0,
                       meta.has_guard(), meta.canary);
    quarantine.push(raw, layout.raw_size);
    ++stats.quarantined_frees;
  } else {
    underlying_.free_fn(raw);
    ++stats.plain_frees;
  }
}

void DefenseEngine::synthesize_candidate(AllocFn fn, std::uint64_t ccid,
                                         std::uint8_t mask,
                                         patch::CandidateOrigin origin,
                                         TelemetrySink* telemetry) const {
  if (!config_.synthesize_candidates) return;
  if (mask == 0) mask = patch::candidate_default_mask(origin);
  candidates_.record(fn, ccid, mask, origin, realtime_ns());
  if (telemetry != nullptr) {
    // aux packs (origin << 8) | mask so the event ring carries the full
    // candidate provenance in one record.
    telemetry->record_event(
        TelemetryEvent::kCandidateSynthesized, ccid, /*size=*/0,
        static_cast<std::uint32_t>(
            (static_cast<std::uint32_t>(origin) << 8) | mask),
        static_cast<std::uint8_t>(fn));
  }
}

void DefenseEngine::collect_heap_suspects(TelemetrySnapshot& snap) const {
  snap.heap_registry_overflow = heap_registry_.overflow();
  if (!heap_registry_.enabled()) return;
  const std::uint64_t threshold = snap.heap_age.percentile_limit_ns(
      config_.telemetry.heap_age_percentile);
  snap.heap_threshold_ns = threshold;
  if (threshold == 0) return;  // no lifetime distribution observed yet
  std::vector<HeapLiveEntry> live(HeapProfileRegistry::kSlots);
  const std::uint32_t n = heap_registry_.snapshot_live(
      live.data(), static_cast<std::uint32_t>(live.size()));
  const std::uint64_t now = heap_profile_clock_ns();
  const std::uint32_t rate = config_.telemetry.heap_profile_rate;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (now - live[i].alloc_ns <= threshold) continue;
    // Appended as a suspects-only row; finalize_snapshot's {fn, ccid} fold
    // merges it into the context's census row (or keeps it standalone when
    // the census overflowed that context — the attribution still shows).
    HeapCensusRow row;
    row.fn = live[i].fn;
    row.ccid = live[i].ccid;
    row.suspects = rate;
    snap.heap_census.push_back(row);
  }
}

std::uint64_t DefenseEngine::user_size(void* p) const {
  if (!owns(p)) return 0;
  const MetadataWord meta = decode_metadata(read_word(p));
  if (!meta.has_guard()) return meta.user_size;
  // Briefly unprotect the guard page to read the stored size.
  std::uint64_t size = 0;
  ::mprotect(reinterpret_cast<void*>(meta.guard_page_addr), kPageSize, PROT_READ);
  std::memcpy(&size, reinterpret_cast<void*>(meta.guard_page_addr), sizeof(size));
  ::mprotect(reinterpret_cast<void*>(meta.guard_page_addr), kPageSize, PROT_NONE);
  return size;
}

std::uint8_t DefenseEngine::applied_mask(const void* p) const noexcept {
  return owns(p) ? decode_metadata(read_word(p)).vuln_mask : 0;
}

bool DefenseEngine::guard_active(const void* p) const noexcept {
  return owns(p) && decode_metadata(read_word(p)).has_guard();
}

}  // namespace ht::runtime
