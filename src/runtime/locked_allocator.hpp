// LockedAllocator: a mutex-serialized facade over GuardedAllocator for
// callers that share one allocator across threads.
//
// This is the SIMPLE shared-allocator option, kept as the baseline the
// scalability benches measure against (bench/ht_mt_scaling): one global
// lock serializes every malloc/free, so throughput collapses onto a single
// core as thread count grows. Production shared-allocator callers — and
// the LD_PRELOAD shim — should use ShardedAllocator
// (sharded_allocator.hpp), which partitions the lock, the quarantine quota,
// and the statistics across N shards; see docs/CONCURRENCY.md.
//
// The lock is recursive for historical callers that re-enter through the
// interposed path; the allocator itself no longer allocates while holding
// it (the quarantine is intrusive).
#pragma once

#include <mutex>

#include "runtime/guarded_allocator.hpp"

namespace ht::runtime {

class LockedAllocator {
 public:
  explicit LockedAllocator(const patch::PatchTable* patches = nullptr,
                           GuardedAllocatorConfig config = {},
                           UnderlyingAllocator underlying = process_allocator())
      : inner_(patches, config, underlying) {}
  /// Hot-reload variant: patch lookups resolve through `swap` (which must
  /// outlive the allocator), so a committed reload applies immediately.
  explicit LockedAllocator(const patch::PatchTableSwap& swap,
                           GuardedAllocatorConfig config = {},
                           UnderlyingAllocator underlying = process_allocator())
      : inner_(swap, config, underlying) {}

  [[nodiscard]] void* malloc(std::uint64_t size, std::uint64_t ccid) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return inner_.malloc(size, ccid);
  }
  [[nodiscard]] void* calloc(std::uint64_t count, std::uint64_t size,
                             std::uint64_t ccid) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return inner_.calloc(count, size, ccid);
  }
  [[nodiscard]] void* memalign(std::uint64_t alignment, std::uint64_t size,
                               std::uint64_t ccid) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return inner_.memalign(alignment, size, ccid);
  }
  [[nodiscard]] void* aligned_alloc(std::uint64_t alignment, std::uint64_t size,
                                    std::uint64_t ccid) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return inner_.aligned_alloc(alignment, size, ccid);
  }
  [[nodiscard]] void* realloc(void* p, std::uint64_t new_size, std::uint64_t ccid) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return inner_.realloc(p, new_size, ccid);
  }
  void free(void* p) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    inner_.free(p);
  }

  /// Snapshot of the inner stats (copied under the lock).
  [[nodiscard]] AllocatorStats stats_snapshot() const {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return inner_.stats();
  }

  /// Telemetry merge of the inner allocator (taken under the lock).
  [[nodiscard]] TelemetrySnapshot telemetry_snapshot() const {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return inner_.telemetry_snapshot();
  }

 private:
  mutable std::recursive_mutex mutex_;
  GuardedAllocator inner_;
};

}  // namespace ht::runtime
