#include "runtime/telemetry_wire.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/parse_policy.hpp"

namespace ht::runtime {

namespace {

// ---- CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) ----

struct Crc32Table {
  std::uint32_t entries[256];
  constexpr Crc32Table() : entries{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

constexpr Crc32Table kCrcTable;

// ---- Little-endian serialization helpers ----
// Field-by-field, never struct memcpy: frames must be byte-identical
// across producers regardless of padding or host endianness.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/// Appends one record: type byte, u16 body length, body. Bodies above the
/// u16 limit are truncated (only kSource labels could ever get there).
void put_record(std::string& out, WireRecord type, std::string_view body) {
  const std::size_t len = body.size() > 0xFFFF ? 0xFFFF : body.size();
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, static_cast<std::uint16_t>(len));
  out.append(body.data(), len);
}

// Wire counter ids. 0..239 index kTelemetryCounterFields (the id IS the
// table index — append-only there keeps old ids stable); 240+ are the
// snapshot-level extras that live outside AllocatorStats. Unknown ids are
// skipped silently on decode, so either side can be newer.
constexpr std::uint8_t kCounterIdExtraBase = 240;
constexpr std::uint8_t kCounterIdEventsRecorded = 240;
constexpr std::uint8_t kCounterIdEventsDropped = 241;
constexpr std::uint8_t kCounterIdPatchHitOverflow = 242;
constexpr std::uint8_t kCounterIdQuarantinePressure = 243;
constexpr std::uint8_t kCounterIdFlushFailures = 244;
constexpr std::uint8_t kCounterIdCandidateOverflow = 245;

constexpr std::size_t kCounterFieldCount =
    sizeof(kTelemetryCounterFields) / sizeof(kTelemetryCounterFields[0]);
static_assert(kCounterFieldCount < kCounterIdExtraBase,
              "AllocatorStats counter ids would collide with the extras");

/// Bounds-checked reader over a frame payload. Every getter validates
/// before advancing; a short read trips `ok` and returns 0 — the caller
/// checks `ok` once per record, so no input can cause an over-read.
struct Cursor {
  const unsigned char* p;
  std::size_t size;
  std::size_t off = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (size - off < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[off++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(p[off]) |
                            static_cast<std::uint16_t>(p[off + 1]) << 8;
    off += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[off + i]) << (8 * i);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
    off += 8;
    return v;
  }
};

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t len,
                         std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    c = kCrcTable.entries[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

bool looks_like_wire_frame(std::string_view data) noexcept {
  return data.size() >= sizeof(kWireMagic) &&
         std::memcmp(data.data(), kWireMagic, sizeof(kWireMagic)) == 0;
}

std::string encode_telemetry_frame(const TelemetrySnapshot& snap,
                                   std::string_view source,
                                   bool include_events) {
  std::string payload;
  payload.reserve(512 + snap.shards.size() * 64 +
                  snap.patch_hits.size() * 20 +
                  (include_events ? snap.events.size() * 45 : 0));
  std::string body;
  body.reserve(64);

  if (!source.empty()) {
    put_record(payload, WireRecord::kSource, source);
  }

  body.clear();
  put_u8(body, snap.config.counters ? 1 : 0);
  put_u8(body, snap.config.events ? 1 : 0);
  put_u32(body, snap.config.ring_capacity);
  put_u64(body, snap.table_generation);
  put_u64(body, snap.table_patches);
  put_u8(body, static_cast<std::uint8_t>(snap.health));
  put_u8(body, snap.bypass ? 1 : 0);
  put_record(payload, WireRecord::kMeta, body);

  const auto counter = [&](std::uint8_t id, std::uint64_t value) {
    body.clear();
    put_u8(body, id);
    put_u64(body, value);
    put_record(payload, WireRecord::kCounter, body);
  };
  for (std::size_t i = 0; i < kCounterFieldCount; ++i) {
    counter(static_cast<std::uint8_t>(i),
            snap.totals.*(kTelemetryCounterFields[i].field));
  }
  counter(kCounterIdEventsRecorded, snap.events_recorded);
  counter(kCounterIdEventsDropped, snap.events_dropped);
  counter(kCounterIdPatchHitOverflow, snap.patch_hit_overflow);
  counter(kCounterIdQuarantinePressure, snap.quarantine_pressure);
  counter(kCounterIdFlushFailures, snap.flush_failures);
  counter(kCounterIdCandidateOverflow, snap.candidate_overflow);

  for (const ShardTelemetry& s : snap.shards) {
    body.clear();
    put_u32(body, s.shard);
    put_u64(body, s.stats.interceptions);
    // Merged frees, mirroring the text shard line (FORMATS.md §4): the
    // plain/quarantined split is a process total, not a per-shard field,
    // so both formats carry the merged count and restore it as
    // plain_frees. Keeps wire and text round trips field-identical.
    put_u64(body, s.stats.plain_frees + s.stats.quarantined_frees);
    put_u64(body, s.quarantine_bytes);
    put_u64(body, s.quarantine_depth);
    put_u64(body, s.quarantine_pressure);
    put_u64(body, s.events_recorded);
    put_u64(body, s.events_dropped);
    put_record(payload, WireRecord::kShard, body);
  }

  for (const PatchHitCount& hit : snap.patch_hits) {
    body.clear();
    put_u8(body, static_cast<std::uint8_t>(hit.fn));
    put_u64(body, hit.ccid);
    put_u64(body, hit.hits);
    put_record(payload, WireRecord::kPatchHit, body);
  }

  for (const patch::PatchCandidate& c : snap.candidates) {
    body.clear();
    put_u8(body, static_cast<std::uint8_t>(c.fn));
    put_u64(body, c.ccid);
    put_u8(body, c.vuln_mask);
    put_u8(body, static_cast<std::uint8_t>(c.origin));
    put_u64(body, c.hits);
    put_u64(body, c.first_seen_ns);
    put_record(payload, WireRecord::kCandidate, body);
  }

  for (std::uint32_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (snap.latency.buckets[i] == 0) continue;  // sparse, like the dump
    body.clear();
    put_u8(body, static_cast<std::uint8_t>(i));
    put_u64(body, snap.latency.buckets[i]);
    put_record(payload, WireRecord::kLatency, body);
  }

  // Heap profiler (docs/FORMATS.md §8): the meta record gates the section
  // exactly like the text dump's `heapprof` line — a profiler-less
  // snapshot emits none of these, keeping its frames byte-identical to
  // older producers'.
  const bool heap_active =
      snap.config.heap_profile_rate != 0 || snap.heap_sampled != 0 ||
      snap.heap_registry_overflow != 0 || snap.heap_census_overflow != 0 ||
      snap.heap_threshold_ns != 0 || !snap.heap_census.empty() ||
      snap.heap_age.total() != 0;
  if (heap_active) {
    body.clear();
    put_u32(body, snap.config.heap_profile_rate);
    put_u8(body, snap.config.heap_age_percentile);
    put_u64(body, snap.heap_sampled);
    put_u64(body, snap.heap_registry_overflow);
    put_u64(body, snap.heap_census_overflow);
    put_u64(body, snap.heap_threshold_ns);
    put_record(payload, WireRecord::kHeapMeta, body);

    for (const HeapCensusRow& row : snap.heap_census) {
      body.clear();
      put_u8(body, row.fn);
      put_u64(body, row.ccid);
      // live_* fields are signed in memory; two's-complement u64 on the
      // wire (the decoder casts back).
      put_u64(body, static_cast<std::uint64_t>(row.live_bytes));
      put_u64(body, static_cast<std::uint64_t>(row.live_objects));
      put_u64(body, row.allocs);
      put_u64(body, row.frees);
      put_u64(body, row.suspects);
      put_record(payload, WireRecord::kHeapCensus, body);
    }

    for (std::uint32_t i = 0; i < AgeHistogram::kBuckets; ++i) {
      if (snap.heap_age.buckets[i] == 0) continue;  // sparse
      body.clear();
      put_u8(body, static_cast<std::uint8_t>(i));
      put_u64(body, snap.heap_age.buckets[i]);
      put_record(payload, WireRecord::kHeapAge, body);
    }
  }

  if (include_events) {
    for (const TelemetryRecord& e : snap.events) {
      body.clear();
      put_u64(body, e.seq);
      put_u64(body, e.timestamp_ns);
      put_u64(body, e.ccid);
      put_u64(body, e.size);
      put_u32(body, e.aux);
      put_u16(body, e.shard);
      put_u8(body, static_cast<std::uint8_t>(e.type));
      put_u8(body, e.fn);
      put_record(payload, WireRecord::kEvent, body);
    }
  }

  std::string frame;
  frame.reserve(kWireHeaderSize + payload.size());
  frame.append(kWireMagic, sizeof(kWireMagic));
  put_u16(frame, kWireVersion);
  put_u16(frame, 0);  // reserved
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32_ieee(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

WireDecodeResult decode_telemetry_frame(std::string_view frame) {
  WireDecodeResult r;
  const auto fatal = [&r](std::string msg) {
    r.errors.push_back(std::move(msg));
  };

  if (frame.size() < kWireHeaderSize) {
    fatal("frame shorter than the " + std::to_string(kWireHeaderSize) +
          "-byte header (" + std::to_string(frame.size()) + " bytes)");
    return r;
  }
  if (!looks_like_wire_frame(frame)) {
    fatal("bad frame magic");
    return r;
  }
  const auto* raw = reinterpret_cast<const unsigned char*>(frame.data());
  Cursor header{raw, frame.size(), sizeof(kWireMagic)};
  const std::uint16_t version = header.u16();
  (void)header.u16();  // reserved
  const std::uint32_t payload_len = header.u32();
  const std::uint32_t crc_declared = header.u32();
  if (version != kWireVersion) {
    fatal("unsupported wire version " + std::to_string(version));
    return r;
  }
  if (payload_len > kMaxWirePayload) {
    fatal("declared payload of " + std::to_string(payload_len) +
          " bytes exceeds the " + std::to_string(kMaxWirePayload) +
          "-byte cap");
    return r;
  }
  if (frame.size() - kWireHeaderSize < payload_len) {
    fatal("truncated frame: header declares " + std::to_string(payload_len) +
          " payload bytes, " +
          std::to_string(frame.size() - kWireHeaderSize) + " present");
    return r;
  }
  const std::uint32_t crc_actual =
      crc32_ieee(raw + kWireHeaderSize, payload_len);
  if (crc_actual != crc_declared) {
    fatal("payload CRC mismatch (frame corrupt)");
    return r;
  }
  if (frame.size() - kWireHeaderSize > payload_len) {
    r.notes.push_back(
        std::to_string(frame.size() - kWireHeaderSize - payload_len) +
        " trailing byte(s) after the payload ignored");
  }

  TelemetrySnapshot& snap = r.snapshot;
  Cursor cur{raw + kWireHeaderSize, payload_len};
  // Per-record notes follow the shared reject / note(capped) / silent-skip
  // policy (support/parse_policy.hpp): a hostile frame that passes CRC must
  // not balloon the note list.
  support::NoteLimiter notes(r.notes, support::kParseNoteCap);
  const auto note = [&](const std::string& what) {
    ++r.skipped_records;
    notes.add("record " + std::to_string(r.records + r.skipped_records) +
              ": " + what);
  };

  while (cur.off < cur.size) {
    if (cur.size - cur.off < 3) {
      note("truncated record header; remaining bytes skipped");
      break;
    }
    const std::uint8_t type = cur.u8();
    const std::uint16_t body_len = cur.u16();
    if (cur.size - cur.off < body_len) {
      note("record body overruns the payload; remaining bytes skipped");
      break;
    }
    // Records parse from their own bounded cursor: a body SHORTER than a
    // record type expects is skipped with a note, a LONGER one has its
    // tail ignored (a newer producer may append fields — same forward-
    // compatibility rule as unknown record types).
    Cursor body{cur.p + cur.off, body_len};
    cur.off += body_len;

    switch (static_cast<WireRecord>(type)) {
      case WireRecord::kSource: {
        r.source.assign(reinterpret_cast<const char*>(body.p), body.size);
        ++r.records;
        break;
      }
      case WireRecord::kMeta: {
        const std::uint8_t counters = body.u8();
        const std::uint8_t events = body.u8();
        const std::uint32_t ring = body.u32();
        const std::uint64_t generation = body.u64();
        const std::uint64_t patches = body.u64();
        const std::uint8_t health = body.u8();
        const std::uint8_t bypass = body.u8();
        if (!body.ok) {
          note("short meta record skipped");
          break;
        }
        snap.config.counters = counters != 0;
        snap.config.events = events != 0;
        snap.config.ring_capacity = ring;
        snap.table_generation = generation;
        snap.table_patches = patches;
        if (health <= static_cast<std::uint8_t>(HealthState::kBypass)) {
          snap.health = static_cast<HealthState>(health);
        } else {
          note("unknown health state " + std::to_string(health) + " ignored");
        }
        snap.bypass = bypass != 0;
        ++r.records;
        break;
      }
      case WireRecord::kCounter: {
        const std::uint8_t id = body.u8();
        const std::uint64_t value = body.u64();
        if (!body.ok) {
          note("short counter record skipped");
          break;
        }
        if (id < kCounterFieldCount) {
          snap.totals.*(kTelemetryCounterFields[id].field) = value;
        } else if (id == kCounterIdEventsRecorded) {
          snap.events_recorded = value;
        } else if (id == kCounterIdEventsDropped) {
          snap.events_dropped = value;
        } else if (id == kCounterIdPatchHitOverflow) {
          snap.patch_hit_overflow = value;
        } else if (id == kCounterIdQuarantinePressure) {
          snap.quarantine_pressure = value;
        } else if (id == kCounterIdFlushFailures) {
          snap.flush_failures = value;
        } else if (id == kCounterIdCandidateOverflow) {
          snap.candidate_overflow = value;
        } else {
          // Unknown counter id: a newer producer. Skip silently, exactly
          // like the text parser skips unknown counter names.
          ++r.skipped_records;
          break;
        }
        ++r.records;
        break;
      }
      case WireRecord::kShard: {
        ShardTelemetry row;
        row.shard = body.u32();
        row.stats.interceptions = body.u64();
        row.stats.plain_frees = body.u64();  // merged frees (see encoder)
        row.quarantine_bytes = body.u64();
        row.quarantine_depth = body.u64();
        row.quarantine_pressure = body.u64();
        row.events_recorded = body.u64();
        row.events_dropped = body.u64();
        if (!body.ok) {
          note("short shard record skipped");
          break;
        }
        snap.shards.push_back(row);
        ++r.records;
        break;
      }
      case WireRecord::kPatchHit: {
        const std::uint8_t fn = body.u8();
        const std::uint64_t ccid = body.u64();
        const std::uint64_t hits = body.u64();
        if (!body.ok) {
          note("short patch-hit record skipped");
          break;
        }
        bool fn_known = false;
        for (progmodel::AllocFn f : progmodel::kAllAllocFns) {
          if (static_cast<std::uint8_t>(f) == fn) fn_known = true;
        }
        if (!fn_known) {
          note("patch hit with unknown alloc fn " + std::to_string(fn) +
               " skipped");
          break;
        }
        snap.patch_hits.push_back(
            PatchHitCount{static_cast<progmodel::AllocFn>(fn), ccid, hits});
        ++r.records;
        break;
      }
      case WireRecord::kLatency: {
        const std::uint8_t bucket = body.u8();
        const std::uint64_t count = body.u64();
        if (!body.ok) {
          note("short latency record skipped");
          break;
        }
        if (bucket >= LatencyHistogram::kBuckets) {
          note("unknown latency bucket " + std::to_string(bucket) +
               " skipped");
          break;
        }
        snap.latency.buckets[bucket] = count;
        ++r.records;
        break;
      }
      case WireRecord::kEvent: {
        TelemetryRecord rec;
        rec.seq = body.u64();
        rec.timestamp_ns = body.u64();
        rec.ccid = body.u64();
        rec.size = body.u64();
        rec.aux = body.u32();
        rec.shard = body.u16();
        const std::uint8_t etype = body.u8();
        rec.fn = body.u8();
        if (!body.ok) {
          note("short event record skipped");
          break;
        }
        if (etype >= kTelemetryEventCount) {
          note("unknown event type " + std::to_string(etype) + " skipped");
          break;
        }
        rec.type = static_cast<TelemetryEvent>(etype);
        snap.events.push_back(rec);
        ++r.records;
        break;
      }
      case WireRecord::kCandidate: {
        const std::uint8_t fn = body.u8();
        const std::uint64_t ccid = body.u64();
        const std::uint8_t mask = body.u8();
        const std::uint8_t origin = body.u8();
        const std::uint64_t hits = body.u64();
        const std::uint64_t first = body.u64();
        if (!body.ok) {
          note("short candidate record skipped");
          break;
        }
        bool fn_known = false;
        for (progmodel::AllocFn f : progmodel::kAllAllocFns) {
          if (static_cast<std::uint8_t>(f) == fn) fn_known = true;
        }
        if (!fn_known) {
          note("candidate with unknown alloc fn " + std::to_string(fn) +
               " skipped");
          break;
        }
        if (origin >= patch::kCandidateOriginCount) {
          note("candidate with unknown origin " + std::to_string(origin) +
               " skipped");
          break;
        }
        snap.candidates.push_back(patch::PatchCandidate{
            static_cast<progmodel::AllocFn>(fn), ccid, mask,
            static_cast<patch::CandidateOrigin>(origin), hits, first});
        ++r.records;
        break;
      }
      case WireRecord::kHeapMeta: {
        const std::uint32_t rate = body.u32();
        const std::uint8_t pctl = body.u8();
        const std::uint64_t sampled = body.u64();
        const std::uint64_t reg_overflow = body.u64();
        const std::uint64_t census_overflow = body.u64();
        const std::uint64_t threshold = body.u64();
        if (!body.ok) {
          note("short heap-meta record skipped");
          break;
        }
        if (pctl == 0 || pctl > 100) {
          note("heap-meta with percentile " + std::to_string(pctl) +
               " out of range skipped");
          break;
        }
        snap.config.heap_profile_rate = rate;
        snap.config.heap_age_percentile = pctl;
        snap.heap_sampled = sampled;
        snap.heap_registry_overflow = reg_overflow;
        snap.heap_census_overflow = census_overflow;
        snap.heap_threshold_ns = threshold;
        ++r.records;
        break;
      }
      case WireRecord::kHeapCensus: {
        HeapCensusRow row;
        row.fn = body.u8();
        row.ccid = body.u64();
        row.live_bytes = static_cast<std::int64_t>(body.u64());
        row.live_objects = static_cast<std::int64_t>(body.u64());
        row.allocs = body.u64();
        row.frees = body.u64();
        row.suspects = body.u64();
        if (!body.ok) {
          note("short heap-census record skipped");
          break;
        }
        bool fn_known = false;
        for (progmodel::AllocFn f : progmodel::kAllAllocFns) {
          if (static_cast<std::uint8_t>(f) == row.fn) fn_known = true;
        }
        if (!fn_known) {
          note("heap census with unknown alloc fn " + std::to_string(row.fn) +
               " skipped");
          break;
        }
        snap.heap_census.push_back(row);
        ++r.records;
        break;
      }
      case WireRecord::kHeapAge: {
        const std::uint8_t bucket = body.u8();
        const std::uint64_t count = body.u64();
        if (!body.ok) {
          note("short heap-age record skipped");
          break;
        }
        if (bucket >= AgeHistogram::kBuckets) {
          note("unknown heap-age bucket " + std::to_string(bucket) +
               " skipped");
          break;
        }
        snap.heap_age.buckets[bucket] = count;
        ++r.records;
        break;
      }
      default:
        // Unknown record type from a newer producer: skip silently (the
        // CRC already vouched the frame is intact, so this is version
        // skew, not corruption).
        ++r.skipped_records;
        break;
    }
  }
  return r;
}

// ---- Transport ----

TelemetryTarget parse_telemetry_target(std::string_view value) {
  TelemetryTarget target;
  if (value.empty()) return target;
  constexpr std::string_view prefix = kUnixTargetPrefix;
  if (value.substr(0, prefix.size()) == prefix) {
    target.kind = TelemetryTarget::Kind::kUnixDatagram;
    target.path = std::string(value.substr(prefix.size()));
    return target;
  }
  target.kind = TelemetryTarget::Kind::kFile;
  target.path = std::string(value);
  return target;
}

WireEmitter::WireEmitter(std::string socket_path)
    : path_(std::move(socket_path)) {}

WireEmitter::~WireEmitter() {
  if (fd_ >= 0) ::close(fd_);
}

WireEmitter::SendResult WireEmitter::send_frame(std::string_view frame) noexcept {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path_.empty() || path_.size() >= sizeof(addr.sun_path)) {
    return SendResult::kError;  // unroutable path: every flush degrades
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  if (fd_ < 0) {
    fd_ = ::socket(AF_UNIX, SOCK_DGRAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd_ < 0) return SendResult::kError;
    // Ask for headroom over the default datagram budget; the kernel clamps
    // to wmem_max, and frames past the clamp surface as kTooBig below.
    int sndbuf = 4 << 20;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  }

  // Connectionless sendto per frame: the aggregator may be restarted (its
  // socket unlinked and rebound) between any two flushes without this end
  // holding a stale connection.
  const ssize_t n =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (n == static_cast<ssize_t>(frame.size())) return SendResult::kSent;
  if (n < 0 && errno == EMSGSIZE) return SendResult::kTooBig;
  return SendResult::kError;
}

}  // namespace ht::runtime
