// The underlying allocator seam (§VI / §VII).
//
// HeapTherapy+ sits *in front of* whatever allocator the process uses and
// calls its real entry points for the actual memory: "Our implementation of
// malloc and free, in addition to enforcing the protection, invokes libc
// APIs to perform the real allocation/deallocation." This struct is that
// seam: the in-process library binds it to std::malloc and friends, while
// the LD_PRELOAD shim binds it to glibc's __libc_* symbols (our exported
// malloc shadows the libc one there, so calling std::malloc would recurse).
#pragma once

#include <cstddef>

namespace ht::runtime {

struct UnderlyingAllocator {
  void* (*malloc_fn)(std::size_t) = nullptr;
  void (*free_fn)(void*) = nullptr;
  void* (*realloc_fn)(void*, std::size_t) = nullptr;
  /// posix_memalign-style aligned allocation (alignment a power of two and
  /// a multiple of sizeof(void*)).
  void* (*memalign_fn)(std::size_t alignment, std::size_t size) = nullptr;
};

/// Bound to the process allocator via std:: entry points. Safe everywhere
/// except inside the preload shim.
[[nodiscard]] UnderlyingAllocator process_allocator() noexcept;

}  // namespace ht::runtime
