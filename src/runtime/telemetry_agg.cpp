#include "runtime/telemetry_agg.hpp"

#include "runtime/telemetry_wire.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <tuple>

namespace ht::runtime {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(std::min<int>(n, sizeof(buf) - 1)));
}

// The dump format's counter list (telemetry.hpp; FORMATS.md §4).
inline constexpr const auto& kCounterFields = kTelemetryCounterFields;

std::string ccid_hex(std::uint64_t ccid) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, ccid);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_fmt(out, "\\u%04x", static_cast<unsigned char>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::size_t hit_cap(const TelemetryAggregate& agg, std::size_t top_k) {
  return top_k == 0 ? agg.patch_hits.size()
                    : std::min(top_k, agg.patch_hits.size());
}

// Prometheus label values escape \, " and newline.
void append_label_value(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

void prom_counter(std::string& out, const char* name, const char* help,
                  std::uint64_t value) {
  append_fmt(out, "# HELP %s %s\n", name, help);
  append_fmt(out, "# TYPE %s counter\n", name);
  append_fmt(out, "%s %" PRIu64 "\n", name, value);
}

}  // namespace

TelemetryAggregate aggregate_telemetry(
    const std::vector<AggregateInput>& inputs) {
  TelemetryAggregate agg;
  agg.processes = inputs.size();

  // Merge per-patch hits through an ordered {fn, ccid} map so equal keys
  // from different processes sum exactly.
  std::map<std::pair<std::uint8_t, std::uint64_t>, std::uint64_t> hits;
  // Candidates merge the same way the journal fold does: equal
  // {fn, ccid, mask, origin} sum their hits and keep the earliest sighting.
  std::map<std::tuple<std::uint8_t, std::uint64_t, std::uint8_t, std::uint8_t>,
           std::pair<std::uint64_t, std::uint64_t>>
      candidates;
  // Heap census rows merge by {fn, ccid}; finalize_snapshot already folded
  // and clamped each input, so every field sums exactly here.
  std::map<std::pair<std::uint8_t, std::uint64_t>, HeapCensusRow> heap;
  std::set<std::uint64_t> generations;

  for (const AggregateInput& in : inputs) {
    const TelemetrySnapshot& s = in.snapshot;
    agg.totals += s.totals;
    agg.events_recorded += s.events_recorded;
    agg.events_dropped += s.events_dropped;
    agg.patch_hit_overflow += s.patch_hit_overflow;
    agg.quarantine_pressure += s.quarantine_pressure;
    agg.flush_failures += s.flush_failures;
    agg.candidate_overflow += s.candidate_overflow;
    for (const patch::PatchCandidate& c : s.candidates) {
      auto& merged = candidates[{static_cast<std::uint8_t>(c.fn), c.ccid,
                                 c.vuln_mask,
                                 static_cast<std::uint8_t>(c.origin)}];
      merged.first += c.hits;
      if (merged.second == 0 ||
          (c.first_seen_ns != 0 && c.first_seen_ns < merged.second)) {
        merged.second = c.first_seen_ns;
      }
    }
    agg.latency += s.latency;
    for (const HeapCensusRow& r : s.heap_census) {
      HeapCensusRow& m = heap[{r.fn, r.ccid}];
      m.fn = r.fn;
      m.ccid = r.ccid;
      m.live_bytes += r.live_bytes;
      m.live_objects += r.live_objects;
      m.allocs += r.allocs;
      m.frees += r.frees;
      m.suspects += r.suspects;
    }
    agg.heap_age += s.heap_age;
    agg.heap_sampled += s.heap_sampled;
    agg.heap_registry_overflow += s.heap_registry_overflow;
    agg.heap_census_overflow += s.heap_census_overflow;
    if (s.health > agg.worst_health) agg.worst_health = s.health;
    generations.insert(s.table_generation);

    ProcessSummary row;
    row.label = in.label;
    row.table_generation = s.table_generation;
    row.table_patches = s.table_patches;
    row.totals = s.totals;
    row.events_recorded = s.events_recorded;
    row.events_dropped = s.events_dropped;
    row.health = s.health;
    for (const PatchHitCount& h : s.patch_hits) {
      hits[{static_cast<std::uint8_t>(h.fn), h.ccid}] += h.hits;
      row.patch_hits += h.hits;
    }
    agg.rows.push_back(std::move(row));
  }

  agg.generations.assign(generations.begin(), generations.end());
  agg.patch_hits.reserve(hits.size());
  for (const auto& [key, count] : hits) {
    PatchHitCount h;
    h.fn = static_cast<progmodel::AllocFn>(key.first);
    h.ccid = key.second;
    h.hits = count;
    agg.patch_hits.push_back(h);
  }
  // Hits-descending so "top K" is a prefix; the map already ordered ties
  // by {fn, ccid} ascending and stable_sort preserves that.
  std::stable_sort(agg.patch_hits.begin(), agg.patch_hits.end(),
                   [](const PatchHitCount& a, const PatchHitCount& b) {
                     return a.hits > b.hits;
                   });
  agg.candidates.reserve(candidates.size());
  for (const auto& [key, merged] : candidates) {
    agg.candidates.push_back(patch::PatchCandidate{
        static_cast<progmodel::AllocFn>(std::get<0>(key)), std::get<1>(key),
        std::get<2>(key), static_cast<patch::CandidateOrigin>(std::get<3>(key)),
        merged.first, merged.second});
  }
  // Same hits-descending presentation as patch_hits; the map already
  // ordered ties by key ascending and stable_sort preserves that.
  std::stable_sort(agg.candidates.begin(), agg.candidates.end(),
                   [](const patch::PatchCandidate& a,
                      const patch::PatchCandidate& b) { return a.hits > b.hits; });
  agg.heap_census.reserve(heap.size());
  for (const auto& [key, row] : heap) agg.heap_census.push_back(row);
  // Biggest live footprint first; the map already ordered ties by
  // {fn, ccid} ascending and stable_sort preserves that, so equal-sized
  // rows list in a deterministic order every run.
  std::stable_sort(agg.heap_census.begin(), agg.heap_census.end(),
                   [](const HeapCensusRow& a, const HeapCensusRow& b) {
                     return a.live_bytes > b.live_bytes;
                   });
  return agg;
}

std::vector<TimeToImmunityRow> compute_time_to_immunity(
    const patch::CandidateParseResult& journal) {
  // Earliest nonzero first-seen per {fn, ccid}, across masks and origins —
  // the clock starts at the FIRST evidence, whichever origin produced it.
  std::map<std::pair<std::uint8_t, std::uint64_t>, std::uint64_t> first_seen;
  for (const patch::PatchCandidate& c : journal.candidates) {
    if (c.first_seen_ns == 0) continue;
    auto& seen = first_seen[{static_cast<std::uint8_t>(c.fn), c.ccid}];
    if (seen == 0 || c.first_seen_ns < seen) seen = c.first_seen_ns;
  }
  // Journal order = verdict order, so the last write wins per key (the §7
  // fold rule): a later demotion removes the key from the promoted set.
  std::map<std::pair<std::uint8_t, std::uint64_t>, std::uint64_t> promoted_at;
  for (const patch::VerdictRecord& v : journal.verdicts) {
    const auto key = std::make_pair(static_cast<std::uint8_t>(v.fn), v.ccid);
    if (v.verdict == patch::CandidateVerdict::kPromoted) {
      promoted_at[key] = v.time_ns;
    } else {
      promoted_at.erase(key);
    }
  }
  std::vector<TimeToImmunityRow> rows;
  for (const auto& [key, t] : promoted_at) {
    const auto seen = first_seen.find(key);
    if (seen == first_seen.end()) continue;  // no interval to measure
    TimeToImmunityRow row;
    row.fn = static_cast<progmodel::AllocFn>(key.first);
    row.ccid = key.second;
    row.seconds = t > seen->second
                      ? static_cast<double>(t - seen->second) / 1e9
                      : 0.0;
    rows.push_back(row);
  }
  return rows;
}

std::string aggregate_json(const TelemetryAggregate& agg, std::size_t top_k) {
  std::string out;
  out += "{\n";
  append_fmt(out, "  \"processes\": %zu,\n", agg.processes);
  append_fmt(out, "  \"health\": \"%s\",\n",
             std::string(health_state_name(agg.worst_health)).c_str());

  out += "  \"skipped\": [";
  for (std::size_t i = 0; i < agg.skipped.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"process\": ";
    append_json_string(out, agg.skipped[i].label);
    out += ", \"reason\": ";
    append_json_string(out, agg.skipped[i].reason);
    out += "}";
  }
  out += "],\n";

  out += "  \"generations\": [";
  for (std::size_t i = 0; i < agg.generations.size(); ++i) {
    if (i != 0) out += ", ";
    append_fmt(out, "%" PRIu64, agg.generations[i]);
  }
  out += "],\n";

  out += "  \"totals\": {";
  for (std::size_t i = 0; i < std::size(kCounterFields); ++i) {
    if (i != 0) out += ", ";
    append_fmt(out, "\"%s\": %" PRIu64, kCounterFields[i].name,
               agg.totals.*(kCounterFields[i].field));
  }
  out += "},\n";

  append_fmt(out,
             "  \"events\": {\"recorded\": %" PRIu64 ", \"dropped\": %" PRIu64
             "},\n",
             agg.events_recorded, agg.events_dropped);
  append_fmt(out, "  \"patch_hit_overflow\": %" PRIu64 ",\n",
             agg.patch_hit_overflow);
  append_fmt(out, "  \"quarantine_pressure\": %" PRIu64 ",\n",
             agg.quarantine_pressure);
  append_fmt(out, "  \"flush_failures\": %" PRIu64 ",\n", agg.flush_failures);
  append_fmt(out, "  \"candidate_overflow\": %" PRIu64 ",\n",
             agg.candidate_overflow);

  out += "  \"candidates\": [\n";
  for (std::size_t i = 0; i < agg.candidates.size(); ++i) {
    const patch::PatchCandidate& c = agg.candidates[i];
    append_fmt(out,
               "    {\"fn\": \"%s\", \"ccid\": \"%s\", \"mask\": \"%s\""
               ", \"origin\": \"%s\", \"hits\": %" PRIu64
               ", \"first_seen_ns\": %" PRIu64 "}%s\n",
               std::string(progmodel::alloc_fn_name(c.fn)).c_str(),
               ccid_hex(c.ccid).c_str(),
               patch::vuln_mask_to_string(c.vuln_mask).c_str(),
               std::string(patch::candidate_origin_name(c.origin)).c_str(),
               c.hits, c.first_seen_ns,
               i + 1 < agg.candidates.size() ? "," : "");
  }
  out += "  ],\n";

  // Latency buckets: le is the exclusive upper bound in ns, null for the
  // unbounded last bucket. Counts are per-bucket (NOT cumulative) here;
  // the Prometheus exposition is the cumulative view.
  std::uint64_t latency_count = 0;
  out += "  \"latency_ns\": {\"buckets\": [";
  for (std::uint32_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (i != 0) out += ", ";
    const std::uint64_t limit = LatencyHistogram::bucket_limit_ns(i);
    out += "{\"le\": ";
    if (limit == 0) {
      out += "null";
    } else {
      append_fmt(out, "%" PRIu64, limit);
    }
    append_fmt(out, ", \"count\": %" PRIu64 "}", agg.latency.buckets[i]);
    latency_count += agg.latency.buckets[i];
  }
  append_fmt(out, "], \"count\": %" PRIu64 "},\n", latency_count);

  // Heap profiler rollup (docs/OBSERVABILITY.md §9). Census rows honor the
  // same top_k cap as patch hits; age buckets mirror the latency shape.
  const std::size_t heap_cap =
      top_k == 0 ? agg.heap_census.size()
                 : std::min(top_k, agg.heap_census.size());
  out += "  \"heap\": {";
  append_fmt(out,
             "\"sampled\": %" PRIu64 ", \"registry_overflow\": %" PRIu64
             ", \"census_overflow\": %" PRIu64
             ", \"census_shown\": %zu, \"census_distinct\": %zu,\n",
             agg.heap_sampled, agg.heap_registry_overflow,
             agg.heap_census_overflow, heap_cap, agg.heap_census.size());
  out += "    \"census\": [\n";
  for (std::size_t i = 0; i < heap_cap; ++i) {
    const HeapCensusRow& r = agg.heap_census[i];
    append_fmt(out,
               "      {\"fn\": \"%s\", \"ccid\": \"%s\", \"live_bytes\": %" PRId64
               ", \"live_objects\": %" PRId64 ", \"allocs\": %" PRIu64
               ", \"frees\": %" PRIu64 ", \"suspects\": %" PRIu64 "}%s\n",
               std::string(progmodel::alloc_fn_name(
                               static_cast<progmodel::AllocFn>(r.fn)))
                   .c_str(),
               ccid_hex(r.ccid).c_str(), r.live_bytes, r.live_objects,
               r.allocs, r.frees, r.suspects, i + 1 < heap_cap ? "," : "");
  }
  out += "    ],\n";
  std::uint64_t age_count = 0;
  out += "    \"age_ns\": {\"buckets\": [";
  for (std::uint32_t i = 0; i < AgeHistogram::kBuckets; ++i) {
    if (i != 0) out += ", ";
    const std::uint64_t limit = AgeHistogram::bucket_limit_ns(i);
    out += "{\"le\": ";
    if (limit == 0) {
      out += "null";
    } else {
      append_fmt(out, "%" PRIu64, limit);
    }
    append_fmt(out, ", \"count\": %" PRIu64 "}", agg.heap_age.buckets[i]);
    age_count += agg.heap_age.buckets[i];
  }
  append_fmt(out, "], \"count\": %" PRIu64 "},\n", age_count);
  out += "    \"time_to_immunity\": [\n";
  for (std::size_t i = 0; i < agg.time_to_immunity.size(); ++i) {
    const TimeToImmunityRow& t = agg.time_to_immunity[i];
    append_fmt(out,
               "      {\"fn\": \"%s\", \"ccid\": \"%s\", \"seconds\": %.6f}%s\n",
               std::string(progmodel::alloc_fn_name(t.fn)).c_str(),
               ccid_hex(t.ccid).c_str(), t.seconds,
               i + 1 < agg.time_to_immunity.size() ? "," : "");
  }
  out += "    ]},\n";

  const std::size_t cap = hit_cap(agg, top_k);
  append_fmt(out, "  \"patch_hits_shown\": %zu,\n", cap);
  append_fmt(out, "  \"patch_hits_distinct\": %zu,\n", agg.patch_hits.size());
  out += "  \"patch_hits\": [\n";
  for (std::size_t i = 0; i < cap; ++i) {
    const PatchHitCount& h = agg.patch_hits[i];
    append_fmt(out, "    {\"fn\": \"%s\", \"ccid\": \"%s\", \"hits\": %" PRIu64
                    "}%s\n",
               std::string(progmodel::alloc_fn_name(h.fn)).c_str(),
               ccid_hex(h.ccid).c_str(), h.hits, i + 1 < cap ? "," : "");
  }
  out += "  ],\n";

  out += "  \"per_process\": [\n";
  for (std::size_t i = 0; i < agg.rows.size(); ++i) {
    const ProcessSummary& r = agg.rows[i];
    out += "    {\"process\": ";
    append_json_string(out, r.label);
    append_fmt(out,
               ", \"health\": \"%s\""
               ", \"table_generation\": %" PRIu64 ", \"table_patches\": %" PRIu64
               ", \"interceptions\": %" PRIu64 ", \"enhanced\": %" PRIu64
               ", \"patch_hits\": %" PRIu64 ", \"events_recorded\": %" PRIu64
               ", \"events_dropped\": %" PRIu64 "}%s\n",
               std::string(health_state_name(r.health)).c_str(),
               r.table_generation, r.table_patches, r.totals.interceptions,
               r.totals.enhanced, r.patch_hits, r.events_recorded,
               r.events_dropped, i + 1 < agg.rows.size() ? "," : "");
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string aggregate_prometheus(const TelemetryAggregate& agg,
                                 std::size_t top_k) {
  std::string out;

  append_fmt(out, "# HELP ht_processes Telemetry dumps merged into this exposition.\n");
  append_fmt(out, "# TYPE ht_processes gauge\n");
  append_fmt(out, "ht_processes %zu\n", agg.processes);

  append_fmt(out, "# HELP ht_inputs_skipped Telemetry dumps that could not be merged (missing/unreadable/empty).\n");
  append_fmt(out, "# TYPE ht_inputs_skipped gauge\n");
  append_fmt(out, "ht_inputs_skipped %zu\n", agg.skipped.size());

  append_fmt(out, "# HELP ht_fleet_health Worst health across the fleet: 0 healthy, 1 degraded, 2 bypass.\n");
  append_fmt(out, "# TYPE ht_fleet_health gauge\n");
  append_fmt(out, "ht_fleet_health %u\n",
             static_cast<unsigned>(agg.worst_health));

  append_fmt(out, "# HELP ht_table_generations Distinct patch-table generations across the fleet.\n");
  append_fmt(out, "# TYPE ht_table_generations gauge\n");
  append_fmt(out, "ht_table_generations %zu\n", agg.generations.size());

  prom_counter(out, "ht_interceptions_total",
               "Allocation-family calls routed through the defense.",
               agg.totals.interceptions);
  prom_counter(out, "ht_enhanced_total",
               "Allocations enhanced by a matching patch.", agg.totals.enhanced);
  prom_counter(out, "ht_guard_pages_total", "Guard pages installed.",
               agg.totals.guard_pages);
  prom_counter(out, "ht_zero_fills_total",
               "Allocations zero-filled by an uninitialized-read patch.",
               agg.totals.zero_fills);
  prom_counter(out, "ht_quarantined_frees_total",
               "Frees deferred into quarantine.", agg.totals.quarantined_frees);
  prom_counter(out, "ht_plain_frees_total",
               "Frees released immediately (no patch applied).",
               agg.totals.plain_frees);
  prom_counter(out, "ht_failed_guards_total",
               "Guard installations that failed (defense degraded).",
               agg.totals.failed_guards);
  prom_counter(out, "ht_canaries_planted_total", "Trailing canaries planted.",
               agg.totals.canaries_planted);
  prom_counter(out, "ht_canary_overflows_on_free_total",
               "Corrupted canaries detected on free.",
               agg.totals.canary_overflows_on_free);
  prom_counter(out, "ht_events_recorded_total",
               "Telemetry ring events recorded.", agg.events_recorded);
  prom_counter(out, "ht_events_dropped_total",
               "Telemetry ring events overwritten before export.",
               agg.events_dropped);
  prom_counter(out, "ht_guard_budget_denied_total",
               "Guard pages skipped because the live-guard budget was exhausted.",
               agg.totals.guard_budget_denied);
  prom_counter(out, "ht_degraded_to_canary_total",
               "Allocations downgraded from guard page to canary.",
               agg.totals.degraded_to_canary);
  prom_counter(out, "ht_degraded_to_plain_total",
               "Allocations downgraded to a plain (undefended) layout.",
               agg.totals.degraded_to_plain);
  prom_counter(out, "ht_alloc_failures_total",
               "Allocations that failed even after degradation.",
               agg.totals.alloc_failures);
  prom_counter(out, "ht_quarantine_pressure_total",
               "Quarantine early-eviction pressure sweeps.",
               agg.quarantine_pressure);
  prom_counter(out, "ht_flush_failures_total",
               "Telemetry flush cycles that exhausted every retry.",
               agg.flush_failures);
  prom_counter(out, "ht_patch_hit_overflow_total",
               "Enhanced allocations not attributed per-patch (hit table full).",
               agg.patch_hit_overflow);
  prom_counter(out, "ht_candidate_overflow_total",
               "Synthesized candidates dropped because the candidate table was full.",
               agg.candidate_overflow);

  append_fmt(out, "# HELP ht_candidates Distinct synthesized candidate patches awaiting validation.\n");
  append_fmt(out, "# TYPE ht_candidates gauge\n");
  append_fmt(out, "ht_candidates %zu\n", agg.candidates.size());
  {
    std::uint64_t synthesized = 0;
    for (const patch::PatchCandidate& c : agg.candidates) synthesized += c.hits;
    prom_counter(out, "ht_candidates_synthesized_total",
                 "Detections that synthesized (or re-hit) a candidate patch.",
                 synthesized);
  }

  const std::size_t cap = hit_cap(agg, top_k);
  if (cap > 0) {
    append_fmt(out, "# HELP ht_patch_hits_total Enhanced allocations per patch {FUN, CCID}.\n");
    append_fmt(out, "# TYPE ht_patch_hits_total counter\n");
    for (std::size_t i = 0; i < cap; ++i) {
      const PatchHitCount& h = agg.patch_hits[i];
      out += "ht_patch_hits_total{fn=";
      append_label_value(out, progmodel::alloc_fn_name(h.fn));
      out += ",ccid=";
      append_label_value(out, ccid_hex(h.ccid));
      append_fmt(out, "} %" PRIu64 "\n", h.hits);
    }
  }

  // Histogram: CUMULATIVE buckets per the exposition format. No _sum — the
  // runtime histogram tracks bucket counts only (FORMATS.md §5).
  append_fmt(out, "# HELP ht_enhancement_latency_ns Patch-enhancement latency; bucket counts only, no _sum is tracked.\n");
  append_fmt(out, "# TYPE ht_enhancement_latency_ns histogram\n");
  std::uint64_t cumulative = 0;
  for (std::uint32_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += agg.latency.buckets[i];
    const std::uint64_t limit = LatencyHistogram::bucket_limit_ns(i);
    if (limit == 0) break;  // the unbounded bucket is the +Inf sample below
    append_fmt(out, "ht_enhancement_latency_ns_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
               limit, cumulative);
  }
  append_fmt(out, "ht_enhancement_latency_ns_bucket{le=\"+Inf\"} %" PRIu64 "\n",
             cumulative);
  append_fmt(out, "ht_enhancement_latency_ns_count %" PRIu64 "\n", cumulative);

  // ---- Heap profiler (docs/OBSERVABILITY.md §9) ----
  prom_counter(out, "ht_heap_sampled_total",
               "Allocations sampled by the heap profiler.", agg.heap_sampled);
  prom_counter(out, "ht_heap_registry_overflow_total",
               "Sampled allocations dropped because the live registry was full.",
               agg.heap_registry_overflow);
  prom_counter(out, "ht_heap_census_overflow_total",
               "Census updates dropped because the per-shard table was full.",
               agg.heap_census_overflow);

  const std::size_t heap_cap =
      top_k == 0 ? agg.heap_census.size()
                 : std::min(top_k, agg.heap_census.size());
  if (heap_cap > 0) {
    // Gauges, not counters: live footprint shrinks when contexts free.
    // Values are sampling-scaled estimates (census rows carry rate-scaled
    // sums); the ordering (live_bytes descending, ties {fn, ccid}
    // ascending) is the aggregate's and identical batch vs. serve.
    struct HeapSeries {
      const char* name;
      const char* help;
      std::int64_t HeapCensusRow::* signed_field;
      std::uint64_t HeapCensusRow::* unsigned_field;
    };
    const HeapSeries series[] = {
        {"ht_heap_live_bytes",
         "Estimated live heap bytes per {FUN, CCID} (sampling-scaled).",
         &HeapCensusRow::live_bytes, nullptr},
        {"ht_heap_live_objects",
         "Estimated live objects per {FUN, CCID} (sampling-scaled).",
         &HeapCensusRow::live_objects, nullptr},
        {"ht_heap_leak_suspects",
         "Live objects older than the leak-age threshold per {FUN, CCID}.",
         nullptr, &HeapCensusRow::suspects},
    };
    for (const HeapSeries& m : series) {
      append_fmt(out, "# HELP %s %s\n", m.name, m.help);
      append_fmt(out, "# TYPE %s gauge\n", m.name);
      for (std::size_t i = 0; i < heap_cap; ++i) {
        const HeapCensusRow& r = agg.heap_census[i];
        out += m.name;
        out += "{fn=";
        append_label_value(out, progmodel::alloc_fn_name(
                                    static_cast<progmodel::AllocFn>(r.fn)));
        out += ",ccid=";
        append_label_value(out, ccid_hex(r.ccid));
        if (m.signed_field != nullptr) {
          append_fmt(out, "} %" PRId64 "\n", r.*(m.signed_field));
        } else {
          append_fmt(out, "} %" PRIu64 "\n", r.*(m.unsigned_field));
        }
      }
    }
  }

  // Object-age histogram: same cumulative shape as the latency histogram,
  // and the same no-_sum rule (the runtime tracks bucket counts only).
  append_fmt(out, "# HELP ht_heap_age_ns Sampled object lifetime at free; bucket counts only, no _sum is tracked.\n");
  append_fmt(out, "# TYPE ht_heap_age_ns histogram\n");
  std::uint64_t age_cumulative = 0;
  for (std::uint32_t i = 0; i < AgeHistogram::kBuckets; ++i) {
    age_cumulative += agg.heap_age.buckets[i];
    const std::uint64_t limit = AgeHistogram::bucket_limit_ns(i);
    if (limit == 0) break;  // unbounded bucket is the +Inf sample below
    append_fmt(out, "ht_heap_age_ns_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
               limit, age_cumulative);
  }
  append_fmt(out, "ht_heap_age_ns_bucket{le=\"+Inf\"} %" PRIu64 "\n",
             age_cumulative);
  append_fmt(out, "ht_heap_age_ns_count %" PRIu64 "\n", age_cumulative);

  if (!agg.time_to_immunity.empty()) {
    append_fmt(out, "# HELP ht_time_to_immunity_seconds Seconds from a candidate's first sighting to its promotion verdict.\n");
    append_fmt(out, "# TYPE ht_time_to_immunity_seconds gauge\n");
    for (const TimeToImmunityRow& t : agg.time_to_immunity) {
      out += "ht_time_to_immunity_seconds{fn=";
      append_label_value(out, progmodel::alloc_fn_name(t.fn));
      out += ",ccid=";
      append_label_value(out, ccid_hex(t.ccid));
      append_fmt(out, "} %.6f\n", t.seconds);
    }
  }
  return out;
}

// ---- Shared ingest ----

LoadedTelemetry load_telemetry_content(std::string_view content) {
  LoadedTelemetry loaded;
  if (looks_like_wire_frame(content)) {
    loaded.binary = true;
    WireDecodeResult decoded = decode_telemetry_frame(content);
    loaded.snapshot = std::move(decoded.snapshot);
    loaded.source = std::move(decoded.source);
    loaded.errors = std::move(decoded.errors);
    loaded.notes = std::move(decoded.notes);
    return loaded;
  }
  TelemetryParseResult parsed = parse_telemetry(content);
  loaded.snapshot = std::move(parsed.snapshot);
  // The text parser is lenient by design (FORMATS.md §4): its diagnostics
  // are warnings unless nothing parsed at all, which the callers already
  // detect via the empty-content check before calling here.
  loaded.notes = std::move(parsed.errors);
  return loaded;
}

// ---- Rolling fleet state (htagg serve) ----

void RollingAggregate::ingest(std::string_view source,
                              const TelemetrySnapshot& snapshot) {
  const std::string label(source.empty() ? std::string_view("(unnamed)")
                                         : source);
  ++frames_ingested_;

  if (decay_ > 0.0 && decay_ < 1.0) {
    // Every ingest ages every score, then the sender's hit DELTA since its
    // previous frame lands at full weight — a patch that stopped firing
    // fades down the ranking even though its exported sum never shrinks.
    for (auto& [key, score] : scores_) score *= decay_;
    auto& prev = prev_hits_[label];
    std::map<std::pair<std::uint8_t, std::uint64_t>, std::uint64_t> now;
    for (const PatchHitCount& h : snapshot.patch_hits) {
      const auto key = std::make_pair(static_cast<std::uint8_t>(h.fn), h.ccid);
      now[key] = h.hits;
      const std::uint64_t before =
          prev.count(key) != 0 ? prev.at(key) : std::uint64_t{0};
      // A restarted producer re-counts from zero; treat a shrinking total
      // as a fresh start rather than a negative delta.
      const std::uint64_t delta = h.hits >= before ? h.hits - before : h.hits;
      if (delta != 0) scores_[key] += static_cast<double>(delta);
    }
    prev = std::move(now);
  }

  auto [it, inserted] = latest_.try_emplace(label, snapshot);
  if (inserted) {
    order_.push_back(label);
  } else {
    it->second = snapshot;  // full-snapshot replacement: never double-count
  }
}

void RollingAggregate::note_skipped(std::string_view label,
                                    std::string_view reason) {
  ++skipped_total_;
  constexpr std::size_t kMaxSkipped = 64;
  for (const SkippedInput& s : skipped_) {
    if (s.label == label && s.reason == reason) return;  // dedupe
  }
  if (skipped_.size() < kMaxSkipped) {
    skipped_.push_back(SkippedInput{std::string(label), std::string(reason)});
  }
}

TelemetryAggregate RollingAggregate::aggregate() const {
  std::vector<AggregateInput> inputs;
  inputs.reserve(order_.size());
  for (const std::string& label : order_) {
    inputs.push_back(AggregateInput{label, latest_.at(label)});
  }
  // Same merge the batch path runs, so daemon exports match a batch run
  // over the same processes' dumps byte for byte.
  TelemetryAggregate agg = aggregate_telemetry(inputs);
  agg.skipped = skipped_;

  if (decay_ > 0.0 && decay_ < 1.0 && !agg.patch_hits.empty()) {
    // Re-rank (values untouched) by recency-weighted score, exact-sum
    // hits as the tiebreak so never-decayed entries keep a stable order.
    std::stable_sort(agg.patch_hits.begin(), agg.patch_hits.end(),
                     [this](const PatchHitCount& a, const PatchHitCount& b) {
                       const auto ka = std::make_pair(
                           static_cast<std::uint8_t>(a.fn), a.ccid);
                       const auto kb = std::make_pair(
                           static_cast<std::uint8_t>(b.fn), b.ccid);
                       const double sa =
                           scores_.count(ka) != 0 ? scores_.at(ka) : 0.0;
                       const double sb =
                           scores_.count(kb) != 0 ? scores_.at(kb) : 0.0;
                       if (sa != sb) return sa > sb;
                       return a.hits > b.hits;
                     });
  }
  return agg;
}

// ---- Prometheus linter ----

namespace {

struct PromSample {
  std::string name;    ///< metric name as written (may carry _bucket etc.)
  std::string labels;  ///< normalized "k=v,k=v" (sorted), "" when none
  std::string le;      ///< value of the `le` label when present
  double value = 0;
  std::size_t line = 0;
};

bool valid_metric_name(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool valid_label_name(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool parse_number(std::string_view s, double& out) {
  if (s == "+Inf" || s == "Inf") { out = 1e308 * 10; return true; }
  if (s == "-Inf") { out = -(1e308 * 10); return true; }
  if (s == "NaN") { out = 0; return true; }
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string tmp(s);
  out = std::strtod(tmp.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Strips a histogram-sample suffix; returns the base metric name.
std::string_view histogram_base(std::string_view name) {
  for (std::string_view suffix : {"_bucket", "_count", "_sum"}) {
    if (name.size() > suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      return name.substr(0, name.size() - suffix.size());
    }
  }
  return name;
}

}  // namespace

std::vector<std::string> prometheus_lint(std::string_view text) {
  std::vector<std::string> errors;
  auto err = [&errors](std::size_t line, const std::string& msg) {
    errors.push_back("line " + std::to_string(line) + ": " + msg);
  };

  std::map<std::string, std::string> types;       // metric -> TYPE
  std::map<std::string, std::size_t> help_seen;   // metric -> line
  std::set<std::string> series_seen;              // name + labels
  std::set<std::string> sampled_before_type;
  std::vector<PromSample> samples;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP name text", "# TYPE name kind", or a plain comment.
      if (line.rfind("# HELP ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string_view name = rest.substr(0, sp);
        if (!valid_metric_name(name)) {
          err(line_no, "HELP with invalid metric name");
          continue;
        }
        if (!help_seen.emplace(std::string(name), line_no).second) {
          err(line_no, "duplicate HELP for " + std::string(name));
        }
      } else if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          err(line_no, "TYPE line missing kind");
          continue;
        }
        const std::string name(rest.substr(0, sp));
        const std::string_view kind = rest.substr(sp + 1);
        if (!valid_metric_name(name)) {
          err(line_no, "TYPE with invalid metric name");
          continue;
        }
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          err(line_no, "unknown TYPE kind '" + std::string(kind) + "'");
          continue;
        }
        if (!types.emplace(name, std::string(kind)).second) {
          err(line_no, "duplicate TYPE for " + name);
        }
        if (kind == "counter" &&
            (name.size() < 7 || name.substr(name.size() - 6) != "_total")) {
          err(line_no, "counter " + name + " does not end in _total");
        }
      }
      continue;  // other # lines are comments
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string name(line.substr(0, i));
    if (!valid_metric_name(name)) {
      err(line_no, "invalid metric name in sample");
      continue;
    }

    PromSample sample;
    sample.name = name;
    sample.line = line_no;
    if (i < line.size() && line[i] == '{') {
      ++i;
      std::vector<std::pair<std::string, std::string>> labels;
      bool bad = false;
      while (i < line.size() && line[i] != '}') {
        const std::size_t eq = line.find('=', i);
        if (eq == std::string_view::npos) { bad = true; break; }
        const std::string lname(line.substr(i, eq - i));
        if (!valid_label_name(lname)) { bad = true; break; }
        i = eq + 1;
        if (i >= line.size() || line[i] != '"') { bad = true; break; }
        ++i;
        std::string lvalue;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            ++i;
            if (i >= line.size()) { bad = true; break; }
            switch (line[i]) {
              case 'n': lvalue.push_back('\n'); break;
              case '\\': lvalue.push_back('\\'); break;
              case '"': lvalue.push_back('"'); break;
              default: bad = true; break;
            }
          } else {
            lvalue.push_back(line[i]);
          }
          ++i;
        }
        if (bad || i >= line.size()) { bad = true; break; }
        ++i;  // closing quote
        labels.emplace_back(lname, lvalue);
        if (i < line.size() && line[i] == ',') ++i;  // separator (or trailing)
      }
      if (bad || i >= line.size() || line[i] != '}') {
        err(line_no, "malformed label block");
        continue;
      }
      ++i;
      std::sort(labels.begin(), labels.end());
      for (std::size_t k = 1; k < labels.size(); ++k) {
        if (labels[k].first == labels[k - 1].first) {
          err(line_no, "duplicate label '" + labels[k].first + "'");
        }
      }
      for (const auto& [k, v] : labels) {
        if (!sample.labels.empty()) sample.labels.push_back(',');
        sample.labels += k + "=" + v;
        if (k == "le") sample.le = v;
      }
    }
    if (i >= line.size() || line[i] != ' ') {
      err(line_no, "sample missing value");
      continue;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    std::string_view value_part = line.substr(i);
    const std::size_t sp = value_part.find(' ');
    std::string_view value_str = value_part.substr(0, sp);
    if (!parse_number(value_str, sample.value)) {
      err(line_no, "unparseable sample value '" + std::string(value_str) + "'");
      continue;
    }
    if (sp != std::string_view::npos) {
      double ts = 0;  // optional timestamp
      if (!parse_number(value_part.substr(sp + 1), ts)) {
        err(line_no, "unparseable timestamp");
        continue;
      }
    }

    // TYPE must precede the first sample of a metric.
    const std::string base(histogram_base(name));
    const bool typed = types.count(name) != 0 ||
                       (types.count(base) != 0 && types.at(base) == "histogram");
    if (!typed && sampled_before_type.insert(base).second) {
      err(line_no, "sample for " + name + " has no preceding TYPE");
    }

    const std::string series = name + "{" + sample.labels + "}";
    if (!series_seen.insert(series).second) {
      err(line_no, "duplicate series " + series);
    }
    samples.push_back(std::move(sample));
  }

  // Histogram invariants: per histogram metric, buckets must be cumulative
  // (non-decreasing), end in le="+Inf", and match _count.
  for (const auto& [name, kind] : types) {
    if (kind != "histogram") continue;
    std::vector<const PromSample*> buckets;
    const PromSample* count = nullptr;
    for (const PromSample& s : samples) {
      if (s.name == name + "_bucket") buckets.push_back(&s);
      if (s.name == name + "_count") count = &s;
    }
    if (buckets.empty()) {
      errors.push_back("histogram " + name + " has no _bucket samples");
      continue;
    }
    double prev_le = -(1e308 * 10);
    double prev_count = -1;
    bool ordered = true;
    for (const PromSample* b : buckets) {
      if (b->le.empty()) {
        err(b->line, "histogram bucket missing le label");
        ordered = false;
        break;
      }
      double le = 0;
      if (!parse_number(b->le, le)) {
        err(b->line, "unparseable le '" + b->le + "'");
        ordered = false;
        break;
      }
      if (le <= prev_le) {
        err(b->line, "histogram " + name + " buckets not in increasing le order");
        ordered = false;
      }
      if (b->value < prev_count) {
        err(b->line, "histogram " + name + " buckets not cumulative");
        ordered = false;
      }
      prev_le = le;
      prev_count = b->value;
    }
    if (buckets.back()->le != "+Inf") {
      errors.push_back("histogram " + name + " last bucket is not le=\"+Inf\"");
    }
    if (count == nullptr) {
      errors.push_back("histogram " + name + " has no _count sample");
    } else if (ordered && buckets.back()->le == "+Inf" &&
               count->value != buckets.back()->value) {
      errors.push_back("histogram " + name + " _count does not equal the +Inf bucket");
    }
  }

  return errors;
}

}  // namespace ht::runtime
