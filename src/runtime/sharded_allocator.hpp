// ShardedAllocator: the scalable shared-allocator front end — N independent
// shards over one immutable DefenseEngine, so concurrent threads almost
// never contend on the allocation hot path.
//
// Architecture (docs/CONCURRENCY.md has the full design):
//
//   - One read-only DefenseEngine is shared by all shards; it holds no
//     mutable state, so lookups and defense application run lock-free.
//   - Each shard owns a plain mutex, a private Quarantine holding a
//     1/N slice of the byte quota, and a private AllocatorStats block.
//     Shards are cache-line aligned so one shard's counters never
//     false-share with a neighbor's.
//   - ALLOCATIONS route by thread: each thread is assigned a home shard
//     round-robin on first allocation, so steady-state allocation traffic
//     partitions across shards with no cross-thread contention at all
//     (threads > shards share politely).
//   - FREES route by pointer hash, NOT by thread: any thread can free any
//     block, and a given block always lands in the same shard's quarantine
//     regardless of who frees it. Correctness needs no affinity — buffer
//     metadata is self-contained and the underlying allocator is process-
//     global — so the hash purely spreads quarantine/stat load.
//   - Because the Quarantine is intrusive (allocation-free), nothing inside
//     a shard's critical section can re-enter the allocator: plain
//     std::mutex suffices, one lock acquisition per operation, and
//     lock-ordering deadlocks are impossible (no operation ever holds two
//     shard locks).
//
// Statistics accumulate per shard with no shared counters; stats_snapshot()
// merges them on demand.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "patch/patch_table.hpp"
#include "runtime/allocator_config.hpp"
#include "runtime/defense_engine.hpp"
#include "runtime/quarantine.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/underlying.hpp"

namespace ht::runtime {

struct ShardedAllocatorConfig {
  /// Number of shards; rounded up to a power of two, clamped to
  /// [1, kMaxShards]. 0 = auto (hardware concurrency).
  std::uint32_t shards = 0;

  static constexpr std::uint32_t kMaxShards = 64;
};

class ShardedAllocator {
 public:
  explicit ShardedAllocator(const patch::PatchTable* patches = nullptr,
                            GuardedAllocatorConfig config = {},
                            ShardedAllocatorConfig sharding = {},
                            UnderlyingAllocator underlying = process_allocator());
  /// Hot-reload variant: patch lookups resolve through `swap`, so a
  /// committed reload takes effect on the next allocation in any shard.
  /// The swap must outlive the allocator. This is the preload shim's
  /// constructor when HEAPTHERAPY_RELOAD is enabled.
  explicit ShardedAllocator(const patch::PatchTableSwap& swap,
                            GuardedAllocatorConfig config = {},
                            ShardedAllocatorConfig sharding = {},
                            UnderlyingAllocator underlying = process_allocator());
  ~ShardedAllocator() = default;

  ShardedAllocator(const ShardedAllocator&) = delete;
  ShardedAllocator& operator=(const ShardedAllocator&) = delete;

  // The interposed API family — same surface as GuardedAllocator, safe to
  // call from any thread.
  [[nodiscard]] void* malloc(std::uint64_t size, std::uint64_t ccid);
  [[nodiscard]] void* calloc(std::uint64_t count, std::uint64_t size,
                             std::uint64_t ccid);
  [[nodiscard]] void* memalign(std::uint64_t alignment, std::uint64_t size,
                               std::uint64_t ccid);
  [[nodiscard]] void* aligned_alloc(std::uint64_t alignment, std::uint64_t size,
                                    std::uint64_t ccid);
  [[nodiscard]] void* realloc(void* p, std::uint64_t new_size, std::uint64_t ccid);
  void free(void* p);

  // Introspection. Reads only the target block's own metadata — no lock
  // needed (concurrent access to the *same* block is the caller's race).
  [[nodiscard]] std::uint64_t user_size(void* p) const { return engine_.user_size(p); }
  [[nodiscard]] std::uint8_t applied_mask(const void* p) const noexcept {
    return engine_.applied_mask(p);
  }
  [[nodiscard]] bool guard_active(const void* p) const noexcept {
    return engine_.guard_active(p);
  }
  [[nodiscard]] static bool owns(const void* p) noexcept {
    return DefenseEngine::owns(p);
  }

  /// Merged counters across all shards (each shard copied under its lock).
  [[nodiscard]] AllocatorStats stats_snapshot() const;
  /// One shard's counters (snapshot under that shard's lock; test aid).
  [[nodiscard]] AllocatorStats shard_stats(std::uint32_t shard) const;
  /// Total bytes currently quarantined across all shards.
  [[nodiscard]] std::uint64_t quarantined_bytes() const;
  /// Releases every quarantined block in every shard (shutdown/test aid).
  void drain_quarantines();

  [[nodiscard]] std::uint32_t shard_count() const noexcept { return shard_count_; }
  [[nodiscard]] const DefenseEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] const GuardedAllocatorConfig& config() const noexcept {
    return engine_.config();
  }

  /// The shard a given pointer's free would route to (test aid).
  [[nodiscard]] std::uint32_t shard_of(const void* p) const noexcept;

  /// One shard's telemetry sink. Non-const so the guarded backend can emit
  /// guard-trap events; counter reads still need the shard lock, but ring
  /// writes are lock-free by design.
  [[nodiscard]] TelemetrySink& shard_telemetry(std::uint32_t shard) noexcept {
    return shards_[shard].telemetry;
  }

  /// Point-in-time telemetry merge over every shard: counters copied under
  /// each shard's lock (one shard at a time, never nested), ring contents
  /// snapshotted lock-free.
  [[nodiscard]] TelemetrySnapshot telemetry_snapshot() const;

 private:
  // Cache-line aligned so shard A's stat bumps never invalidate the line
  // holding shard B's mutex or counters.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    AllocatorStats stats;
    // telemetry before quarantine: the quarantine's destructor drains and
    // records eviction events through its telemetry pointer, so the sink
    // must outlive it (members destroy in reverse declaration order).
    TelemetrySink telemetry;
    Quarantine quarantine;
  };

  /// Shared constructor tail: partitions the quarantine quota, wires the
  /// telemetry sinks, and records the table-load event.
  void init_shards(const GuardedAllocatorConfig& config,
                   UnderlyingAllocator underlying);

  /// The calling thread's home shard (round-robin assigned on first use).
  [[nodiscard]] std::uint32_t home_shard() const noexcept;

  [[nodiscard]] void* allocate_on_home(progmodel::AllocFn fn, std::uint64_t size,
                                       std::uint64_t alignment, std::uint64_t ccid);

  DefenseEngine engine_;
  std::uint32_t shard_count_ = 1;
  std::uint32_t shard_mask_ = 0;  ///< shard_count_ - 1 (power of two)
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace ht::runtime
