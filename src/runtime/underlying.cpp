#include "runtime/underlying.hpp"

#include <cstdlib>

namespace ht::runtime {

namespace {

void* process_memalign(std::size_t alignment, std::size_t size) {
  void* out = nullptr;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (::posix_memalign(&out, alignment, size) != 0) return nullptr;
  return out;
}

}  // namespace

UnderlyingAllocator process_allocator() noexcept {
  UnderlyingAllocator u;
  u.malloc_fn = &std::malloc;
  u.free_fn = &std::free;
  u.realloc_fn = &std::realloc;
  u.memalign_fn = &process_memalign;
  return u;
}

}  // namespace ht::runtime
