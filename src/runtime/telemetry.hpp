// Runtime observability: per-shard telemetry rings + always-on counters
// (docs/OBSERVABILITY.md is the operator-facing reference).
//
// The online defense runs continuously inside production processes (§VI),
// so operators need to see what it is doing without attaching a debugger:
// which patches are firing, how full the quarantines are, what a guard or
// canary actually caught. This module is that surface. It has two tiers
// with very different cost budgets:
//
//  - COUNTERS (always on by default): per-patch hit counts keyed
//    {FUN, CCID}, an enhancement-latency histogram, and the per-shard
//    AllocatorStats that already exist. Counters are plain (non-atomic)
//    fields bumped under the owning context's serialization — the same
//    private-per-shard discipline AllocatorStats uses — so they add two or
//    three increments to the *enhanced* allocation path and nothing at all
//    to unpatched traffic. bench/ht_telemetry_overhead holds this tier to
//    <2% of service throughput.
//
//  - EVENT RING (opt-in): a bounded, lock-free ring of detection and
//    lifecycle events (patch hit, guard trap, canary corruption,
//    quarantine evict/overflow, patch-table load). One ring per shard, no
//    shared cursors. Slots are per-slot seqlocks: a writer claims a global
//    sequence number with one relaxed fetch_add, CASes the slot "busy"
//    (odd marker), fills the payload, then publishes (even marker,
//    release). The claim CAS serializes wrap-around writers that land on
//    the same slot (they are a full ring apart in sequence space); the
//    claim spin is bounded and drops the event rather than blocking, so
//    record() is safe from any context. Readers never block writers: a
//    snapshot copies each slot and discards it if the marker changed
//    mid-copy. When the ring wraps, old events are overwritten; the drop
//    counter (`sequence - retained`) says exactly how many are no longer
//    retrievable.
//
// Nothing here allocates after configure(): the ring storage, the
// patch-hit table and the histogram are fixed-size, so recording an event
// is safe on the allocator hot path and inside shard critical sections.
//
// Export paths (the three ways out of the process):
//  1. render_telemetry() — the versioned text dump (docs/FORMATS.md §4),
//     with parse_telemetry() as its lenient inverse;
//  2. `htctl stats` / `htctl trace` — JSON over a dump file or live run;
//  3. HEAPTHERAPY_TELEMETRY in the preload shim — periodic flush of the
//     dump to a file from a background thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "patch/candidate.hpp"
#include "progmodel/values.hpp"
#include "runtime/allocator_config.hpp"
#include "runtime/heap_profile.hpp"

namespace ht::runtime {

/// Detection and lifecycle event types recorded in the telemetry ring.
/// Values are part of the dump format; add at the end, never renumber.
enum class TelemetryEvent : std::uint8_t {
  kPatchTableLoad = 0,    ///< front end bound to a (re)loaded patch table
  kPatchHit = 1,          ///< allocation matched a patch {FUN, CCID}
  kGuardTrap = 2,         ///< guard page blocked an out-of-bounds access
  kCanaryCorruption = 3,  ///< trailing canary found corrupted on free
  kQuarantineEvict = 4,   ///< quota eviction released a quarantined block
  kQuarantineOverflow = 5,///< block alone exceeds the quota slice (retained)
  kGuardInstallFail = 6,  ///< mprotect failed; defense degraded for buffer
  kPatchReload = 7,       ///< hot-reload committed a new patch table
  kPatchReloadRejected = 8,  ///< hot-reload rejected; prior table serving
  kAllocDegrade = 9,      ///< allocation stepped down the ladder (aux=level)
  kAllocFailure = 10,     ///< underlying alloc null even for plain layout
  kQuarantinePressure = 11,  ///< sustained pressure; early eviction sweep
  kTelemetryFlushFail = 12,  ///< telemetry flush failed after all retries
  kCandidateSynthesized = 13,  ///< detection produced a candidate patch
                               ///< (aux = (origin << 8) | vuln_mask)
};

inline constexpr std::uint8_t kTelemetryEventCount = 14;

/// kAllocDegrade aux values: which rung the allocation landed on.
inline constexpr std::uint32_t kDegradeLevelCanary = 1;
inline constexpr std::uint32_t kDegradeLevelPlain = 2;

/// Queryable allocator health (docs/RESILIENCE.md). Computed from the
/// degradation counters at snapshot time, surfaced by `htctl stats` and
/// htagg. kBypass = forward-only interposition (protection deliberately
/// off), reported separately so a fleet dashboard cannot mistake an
/// unprotected process for a healthy protected one.
enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kBypass = 2,
};

/// Stable token for dumps/JSON ("healthy", "degraded", "bypass").
[[nodiscard]] std::string_view health_state_name(HealthState state) noexcept;
/// Inverse of health_state_name; returns false on unknown token.
[[nodiscard]] bool health_state_from_name(std::string_view name,
                                          HealthState& out) noexcept;

/// Stable token used by the dump format and JSON export.
[[nodiscard]] std::string_view telemetry_event_name(TelemetryEvent type) noexcept;
/// Inverse of telemetry_event_name; returns false on unknown token.
[[nodiscard]] bool telemetry_event_from_name(std::string_view name,
                                             TelemetryEvent& out) noexcept;

/// One recorded event. Fixed-size POD so ring slots never allocate.
/// Free-path events (guard teardown, canary, quarantine) carry ccid = 0:
/// the metadata word has no room for the allocation-time CCID (Fig. 6), so
/// per-context attribution of frees comes from the patch-hit counters, not
/// from free-side events.
struct TelemetryRecord {
  /// fn value meaning "no allocation function applies" (free-path events).
  static constexpr std::uint8_t kFnNone = 0xFF;

  std::uint64_t seq = 0;           ///< per-ring monotonic sequence number
  std::uint64_t timestamp_ns = 0;  ///< steady-clock nanoseconds
  std::uint64_t ccid = 0;          ///< allocation calling-context id (or 0)
  std::uint64_t size = 0;          ///< bytes involved (alloc size, block size)
  std::uint32_t aux = 0;           ///< event-specific (vuln mask, patch count)
  std::uint16_t shard = 0;         ///< originating shard index
  TelemetryEvent type = TelemetryEvent::kPatchTableLoad;
  std::uint8_t fn = kFnNone;       ///< progmodel::AllocFn, or kFnNone
};

/// Lock-free bounded event ring (one per shard). Any thread may record;
/// any thread may snapshot concurrently. Capacity is fixed at configure()
/// time and rounded up to a power of two.
class TelemetryRing {
 public:
  TelemetryRing() = default;
  TelemetryRing(const TelemetryRing&) = delete;
  TelemetryRing& operator=(const TelemetryRing&) = delete;

  /// Allocates the slot array (the only allocation this class ever makes).
  /// capacity == 0 leaves the ring disabled; record() is then a no-op.
  void configure(std::uint32_t capacity);

  [[nodiscard]] bool enabled() const noexcept { return capacity_ != 0; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Records one event. Wait-free for the writer: one fetch_add plus the
  /// slot stores. `rec.seq` is assigned here.
  void record(TelemetryRecord rec) noexcept;

  /// Total events ever recorded (== next sequence number).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_seq_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by ring wrap and no longer retrievable.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Copies the currently retrievable events into `out` (appended, oldest
  /// first). Slots being overwritten during the copy are skipped — the
  /// reader never blocks a writer. Returns the number appended.
  std::size_t snapshot(std::vector<TelemetryRecord>& out) const;

 private:
  // Per-slot seqlock: marker is 0 when empty, (seq+1)*2+1 while the writer
  // fills the payload, (seq+1)*2 once published. Markers strictly increase
  // per slot in steady state; a reader that sees the marker change between
  // its two loads discards the copy.
  struct Slot {
    static constexpr std::size_t kWords =
        sizeof(TelemetryRecord) / sizeof(std::uint64_t);
    static_assert(sizeof(TelemetryRecord) % sizeof(std::uint64_t) == 0,
                  "payload must convert to whole words");
    static_assert(std::is_trivially_copyable_v<TelemetryRecord>,
                  "payload is copied word-wise");

    std::atomic<std::uint64_t> marker{0};
    /// Payload as relaxed atomic words. The marker brackets provide all
    /// ordering; word-wise atomics make the reader's SPECULATIVE copy
    /// well-defined — with a plain struct the copy would be a formal data
    /// race even though torn results are discarded by the marker re-check.
    std::atomic<std::uint64_t> words[kWords] = {};

    void store_payload(const TelemetryRecord& rec) noexcept {
      std::uint64_t raw[kWords];
      std::memcpy(raw, &rec, sizeof(rec));
      for (std::size_t i = 0; i < kWords; ++i) {
        words[i].store(raw[i], std::memory_order_relaxed);
      }
    }
    void load_payload(TelemetryRecord& rec) const noexcept {
      std::uint64_t raw[kWords];
      for (std::size_t i = 0; i < kWords; ++i) {
        raw[i] = words[i].load(std::memory_order_relaxed);
      }
      std::memcpy(&rec, raw, sizeof(rec));
    }
  };

  std::unique_ptr<Slot[]> slots_;
  std::uint32_t capacity_ = 0;  ///< power of two, or 0 = disabled
  std::uint32_t mask_ = 0;
  std::atomic<std::uint64_t> next_seq_{0};
};

/// Histogram of enhancement latency (the time allocate() spends applying a
/// matched patch's defenses). Log2 buckets: bucket i counts enhancements
/// that took < 2^(i + kLatencyShift) ns; the last bucket is unbounded.
struct LatencyHistogram {
  static constexpr std::uint32_t kBuckets = 16;
  static constexpr std::uint32_t kLatencyShift = 5;  ///< bucket 0: < 32 ns

  std::uint64_t buckets[kBuckets] = {};

  void record(std::uint64_t ns) noexcept {
    std::uint32_t b = 0;
    while (b + 1 < kBuckets && ns >= (1ULL << (b + kLatencyShift))) ++b;
    ++buckets[b];
  }
  /// Upper bound (exclusive) of bucket `i` in ns; 0 for the unbounded last.
  [[nodiscard]] static std::uint64_t bucket_limit_ns(std::uint32_t i) noexcept {
    return i + 1 < kBuckets ? (1ULL << (i + kLatencyShift)) : 0;
  }
  LatencyHistogram& operator+=(const LatencyHistogram& other) noexcept {
    for (std::uint32_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
    return *this;
  }
};

/// One merged per-patch hit counter.
struct PatchHitCount {
  progmodel::AllocFn fn = progmodel::AllocFn::kMalloc;
  std::uint64_t ccid = 0;
  std::uint64_t hits = 0;
};

/// Per-execution-context telemetry state: one sink per GuardedAllocator,
/// or one per shard of a ShardedAllocator. Counter updates follow the same
/// rule as AllocatorStats — private to the owning context, bumped without
/// synchronization under that context's serialization — while the event
/// ring is safe for concurrent writers and lock-free readers.
class TelemetrySink {
 public:
  TelemetrySink() = default;
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Applies the config and (for events) allocates the ring. Construction
  /// time only — never on the hot path.
  void configure(const TelemetryConfig& config, std::uint16_t shard = 0);

  [[nodiscard]] bool counters_enabled() const noexcept { return counters_; }
  [[nodiscard]] bool events_enabled() const noexcept { return ring_.enabled(); }

  /// Records an enhanced allocation: patch-hit counter, latency histogram,
  /// and (when the ring is on) a kPatchHit event.
  void record_patch_hit(progmodel::AllocFn fn, std::uint64_t ccid,
                        std::uint8_t mask, std::uint64_t size,
                        std::uint64_t latency_ns) noexcept;

  /// Records a non-allocation event (trap, canary, quarantine, load).
  /// `fn` defaults to kFnNone: free-path events have no allocation
  /// function; pass the real one where known (guard traps via the backend).
  void record_event(TelemetryEvent type, std::uint64_t ccid, std::uint64_t size,
                    std::uint32_t aux,
                    std::uint8_t fn = TelemetryRecord::kFnNone) noexcept;

  [[nodiscard]] const TelemetryRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const LatencyHistogram& latency() const noexcept {
    return latency_;
  }
  /// Patch-hit counters of this sink (unordered; merged by snapshots).
  [[nodiscard]] std::vector<PatchHitCount> patch_hits() const;
  /// Allocation-free variant: copies up to `max` hit counters into the
  /// caller's buffer (kHitSlots is always enough) and returns the count.
  /// Snapshot merges use this so they never allocate while the owning
  /// shard's lock is held — under LD_PRELOAD an allocation there re-enters
  /// the interposed allocator and can self-deadlock on that very lock.
  std::uint32_t copy_patch_hits(PatchHitCount* out,
                                std::uint32_t max) const noexcept;
  /// Enhanced allocations not counted per-patch because the fixed table
  /// filled up (more distinct patched contexts than kHitSlots).
  [[nodiscard]] std::uint64_t patch_hit_overflow() const noexcept {
    return hit_overflow_;
  }

  // ---- Heap profiler (docs/OBSERVABILITY.md §9) ----
  /// Sampling rate copied from TelemetryConfig::heap_profile_rate.
  [[nodiscard]] std::uint32_t heap_profile_rate() const noexcept {
    return heap_rate_;
  }
  /// Returns true for ~1 in rate calls (always false when the rate is 0;
  /// always true at rate 1). Countdown sampling: the common path is one
  /// decrement-and-compare — no PRNG draw, no division — and only the
  /// sampled 1-in-N path pays for drawing the next gap, a uniform pick in
  /// [1, 2*rate-1] (mean exactly rate, so scaled census counts stay
  /// unbiased, and the randomized stride cannot phase-lock with a
  /// periodic allocation pattern the way a fixed stride would). Called
  /// under the owning context's serialization, like every counter here.
  [[nodiscard]] bool heap_sample() noexcept {
    if (heap_rate_ == 0) return false;
    if (--heap_countdown_ != 0) return false;
    // xorshift64: deterministic per sink for reproducible tests.
    heap_rng_ ^= heap_rng_ << 13;
    heap_rng_ ^= heap_rng_ >> 7;
    heap_rng_ ^= heap_rng_ << 17;
    heap_countdown_ = 1 + heap_rng_ % (2 * static_cast<std::uint64_t>(heap_rate_) - 1);
    ++heap_sampled_;
    return true;
  }
  /// Census entry for a sampled allocation (values scaled by the rate).
  void record_heap_alloc(std::uint8_t fn, std::uint64_t ccid,
                         std::uint64_t size) noexcept {
    heap_census_.record_alloc(fn, ccid, size, heap_rate_);
  }
  /// Census exit + age-histogram entry for the free of a sampled object.
  /// The age count stays UNSCALED: uniform sampling leaves percentiles
  /// unchanged, and percentiles are all the histogram feeds.
  void record_heap_free(std::uint8_t fn, std::uint64_t ccid,
                        std::uint64_t size, std::uint64_t age_ns) noexcept {
    heap_census_.record_free(fn, ccid, size, heap_rate_);
    heap_age_.record(age_ns);
  }
  [[nodiscard]] const HeapCensus& heap_census() const noexcept {
    return heap_census_;
  }
  [[nodiscard]] const AgeHistogram& heap_age() const noexcept {
    return heap_age_;
  }
  /// Allocations this sink sampled into the profiler.
  [[nodiscard]] std::uint64_t heap_sampled() const noexcept {
    return heap_sampled_;
  }

  /// Fixed-size open-addressing {FUN, CCID} -> hits table. Patch tables
  /// hold a handful of entries in practice (one per discovered
  /// vulnerability), so 128 slots is generous; overflow is counted, never
  /// dropped silently.
  static constexpr std::uint32_t kHitSlots = 128;

 private:
  struct HitSlot {
    std::uint64_t ccid = 0;
    std::uint64_t hits = 0;
    std::uint8_t fn = 0;
    bool used = false;
  };

  bool counters_ = true;
  std::uint16_t shard_ = 0;
  TelemetryRing ring_;
  LatencyHistogram latency_;
  HitSlot hit_slots_[kHitSlots] = {};
  std::uint64_t hit_overflow_ = 0;
  // Heap profiler (all bumped under the owning context's serialization).
  std::uint32_t heap_rate_ = 0;
  std::uint64_t heap_countdown_ = 1;  ///< allocations until the next sample
  std::uint64_t heap_rng_ = 0x9e3779b97f4a7c15ULL;
  std::uint64_t heap_sampled_ = 0;
  HeapCensus heap_census_;
  AgeHistogram heap_age_;
};

/// One AllocatorStats counter by its stable dump name. The text dump
/// writer/parser (FORMATS.md §4), the JSON exporters, the fleet aggregator
/// (§5) and the binary wire format (§6) all index this one table, so the
/// formats cannot drift. The ORDER is part of the wire format — each
/// entry's index is its wire counter id — so: add at the end, never
/// reorder, never remove.
struct TelemetryCounterField {
  const char* name;
  std::uint64_t AllocatorStats::* field;
};

inline constexpr TelemetryCounterField kTelemetryCounterFields[] = {
    {"interceptions", &AllocatorStats::interceptions},
    {"enhanced", &AllocatorStats::enhanced},
    {"guard_pages", &AllocatorStats::guard_pages},
    {"zero_fills", &AllocatorStats::zero_fills},
    {"quarantined_frees", &AllocatorStats::quarantined_frees},
    {"plain_frees", &AllocatorStats::plain_frees},
    {"failed_guards", &AllocatorStats::failed_guards},
    {"canaries_planted", &AllocatorStats::canaries_planted},
    {"canary_overflows_on_free", &AllocatorStats::canary_overflows_on_free},
    {"guard_budget_denied", &AllocatorStats::guard_budget_denied},
    {"degraded_to_canary", &AllocatorStats::degraded_to_canary},
    {"degraded_to_plain", &AllocatorStats::degraded_to_plain},
    {"alloc_failures", &AllocatorStats::alloc_failures},
};

/// Per-shard occupancy row of a snapshot.
struct ShardTelemetry {
  std::uint32_t shard = 0;
  AllocatorStats stats;
  std::uint64_t quarantine_bytes = 0;
  std::uint64_t quarantine_depth = 0;
  std::uint64_t quarantine_pressure = 0;  ///< early-eviction sweeps run
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
};

/// Point-in-time merge of every shard's telemetry: what the dump format,
/// the JSON exporters and the preload flusher all consume.
struct TelemetrySnapshot {
  TelemetryConfig config;
  /// Patch-table identity at snapshot time (0 when no table installed).
  std::uint64_t table_generation = 0;
  std::uint64_t table_patches = 0;

  AllocatorStats totals;                  ///< merged across shards
  std::vector<ShardTelemetry> shards;     ///< one row per shard
  std::vector<PatchHitCount> patch_hits;  ///< merged, ccid-ascending
  std::uint64_t patch_hit_overflow = 0;
  LatencyHistogram latency;               ///< merged
  std::uint64_t events_recorded = 0;      ///< sum over rings
  std::uint64_t events_dropped = 0;       ///< sum over rings
  /// Early-eviction pressure sweeps, summed over shard quarantines.
  std::uint64_t quarantine_pressure = 0;
  /// Telemetry flushes that failed after all retries (preload/htrun set
  /// this from their own counter — the flusher lives outside the engine).
  std::uint64_t flush_failures = 0;
  /// Candidate patches synthesized by the self-healing loop (engine-wide;
  /// copied from DefenseEngine::candidates() by the allocator snapshot
  /// functions). Hits are absolute totals.
  std::vector<patch::PatchCandidate> candidates;
  /// Candidate observations dropped because the fixed table was full.
  std::uint64_t candidate_overflow = 0;
  /// True when the engine runs forward-only (protection deliberately off).
  /// Set by the allocator snapshot functions before finalize_snapshot.
  bool bypass = false;
  /// Computed by finalize_snapshot from bypass + degradation counters;
  /// parse_telemetry restores it from the dump's `health` line.
  HealthState health = HealthState::kHealthy;
  /// Retained events across all rings, ordered by timestamp.
  std::vector<TelemetryRecord> events;

  // ---- Heap profiler (docs/OBSERVABILITY.md §9; FORMATS.md §8) ----
  /// Merged census, sorted {fn, ccid} by finalize_snapshot. live_* fields
  /// are non-negative after the fold (per-shard contributions may not be).
  std::vector<HeapCensusRow> heap_census;
  AgeHistogram heap_age;                     ///< merged lifetime histogram
  std::uint64_t heap_sampled = 0;            ///< allocations sampled, all sinks
  std::uint64_t heap_registry_overflow = 0;  ///< registry full; went unprofiled
  std::uint64_t heap_census_overflow = 0;    ///< census table full; uncounted
  /// Leak-suspect age threshold derived at snapshot time (0 = none yet).
  std::uint64_t heap_threshold_ns = 0;
};

/// Pre-reserves `snap`'s vectors for `shards` contexts whose rings hold
/// `total_ring_capacity` events combined. After this, that many
/// merge_sink_into_snapshot calls perform NO allocation — mandatory when
/// the merges run under shard locks of an interposed (LD_PRELOAD)
/// allocator, where an allocation would re-enter the lock being held.
void reserve_snapshot(TelemetrySnapshot& snap, std::uint32_t shards,
                      std::uint64_t total_ring_capacity);

/// Merges `sink` (counters + ring contents) into `snap` as shard row
/// `shard` with the given allocator/quarantine occupancy numbers. The
/// caller provides whatever serialization the sink's counters need (shard
/// lock held, or single-threaded ownership); the ring needs none.
/// Allocation-free if the caller reserve_snapshot'd first.
void merge_sink_into_snapshot(TelemetrySnapshot& snap, const TelemetrySink& sink,
                              std::uint32_t shard, const AllocatorStats& stats,
                              std::uint64_t quarantine_bytes,
                              std::uint64_t quarantine_depth,
                              std::uint64_t quarantine_pressure = 0);

/// Sorts merged events by timestamp and patch hits by {fn, ccid}, then
/// derives `health` from bypass + the degradation counters. Call once
/// after the last merge_sink_into_snapshot.
void finalize_snapshot(TelemetrySnapshot& snap);

/// The health derivation finalize_snapshot applies (also used by htagg to
/// grade parsed dumps whose producers predate the `health` line).
[[nodiscard]] HealthState derive_health(const TelemetrySnapshot& snap) noexcept;

/// Expands the HEAPTHERAPY_TELEMETRY path template: "%p" becomes `pid` in
/// decimal, "%%" a literal '%'. Any other sequence is copied verbatim. A
/// fleet of processes sharing one environment can then write per-process
/// dumps ("/var/run/ht.%p.dump") that htagg merges back together.
[[nodiscard]] std::string expand_telemetry_path(std::string_view templ,
                                                long pid);

// ---- Dump format (docs/FORMATS.md §4) ----

/// Renders the versioned line-oriented text dump.
[[nodiscard]] std::string render_telemetry(const TelemetrySnapshot& snap);

/// Result of parsing a telemetry dump. Parsing is lenient like patch
/// configs: malformed lines produce a diagnostic and are skipped.
struct TelemetryParseResult {
  TelemetrySnapshot snapshot;
  std::vector<std::string> errors;
  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parses a text dump produced by render_telemetry (or edited by hand).
[[nodiscard]] TelemetryParseResult parse_telemetry(std::string_view text);

// ---- JSON export (htctl stats / htctl trace) ----

/// Counters + occupancy as one JSON object (no events).
[[nodiscard]] std::string telemetry_stats_json(const TelemetrySnapshot& snap);
/// The event stream as a JSON array, oldest first.
[[nodiscard]] std::string telemetry_trace_json(const TelemetrySnapshot& snap);

}  // namespace ht::runtime
