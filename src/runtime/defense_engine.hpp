// DefenseEngine: the allocator-independent core of the online defense
// generator (§VI), split out of GuardedAllocator so it can be embedded
// behind any execution model — single-threaded (GuardedAllocator), globally
// locked (LockedAllocator), or sharded (ShardedAllocator).
//
// The engine owns only *immutable* state: the patch table pointer, the
// defense configuration, and the underlying-allocator seam. Every method is
// const and touches no engine-owned mutable data, so one engine instance is
// safe to call from any number of threads concurrently. All mutable state —
// the defense statistics and the UAF quarantine — is passed in by the
// caller, which is exactly what makes the logic shard-embeddable: each
// shard hands the engine its own private stats/quarantine and provides
// whatever synchronization its execution model needs around the call.
//
// Two deliberate exceptions to "no engine-owned mutable data":
//   1. the live guard-page count backing the guard budget (see
//      GuardedAllocatorConfig::guard_page_budget) is a single engine-wide
//      atomic. The budget is a process-global resource cap, so it cannot
//      live per shard; and the counter is touched only on the guarded path,
//      which already pays an mprotect syscall — an atomic increment is
//      noise there. Unpatched traffic never reaches it.
//   2. the candidate-patch table (self-healing loop, docs/SELF_HEALING.md)
//      is a fixed-capacity lock-free accumulator. Candidates must fold
//      across shards — one vulnerable {FUN, CCID} hammered from N threads
//      is one candidate, not N — so the table is engine-wide; and it is
//      touched only on *detection* (guard trap, canary corruption, stale
//      reuse), never on a healthy allocation or free.
//   3. the heap-profiler live registry (docs/OBSERVABILITY.md §9) is an
//      engine-wide lock-free pointer table. It must be engine-wide because
//      frees route by pointer hash — the shard that frees a sampled object
//      is rarely the shard that allocated it. It is touched only on the
//      SAMPLED path (~1 in HEAPTHERAPY_HEAPPROF allocations and their
//      frees); rate 0 leaves it unallocated and the paths one branch long.
//
// Defense semantics (unchanged from the paper):
//   - no patch match    -> plain buffer with self-maintained metadata
//                          (Structure 1/3); cost = lookup + metadata word.
//   - OVERFLOW patch    -> guard page appended and mprotect'ed PROT_NONE
//                          (Structure 2/4); contiguous overflow faults.
//   - UNINIT patch      -> user buffer zero-filled before return.
//   - UAF patch         -> on free, the block enters the caller's FIFO
//                          quarantine, deferring reuse.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "patch/candidate.hpp"
#include "patch/hot_swap.hpp"
#include "patch/patch_table.hpp"
#include "progmodel/values.hpp"
#include "runtime/allocator_config.hpp"
#include "runtime/heap_profile.hpp"
#include "runtime/metadata.hpp"
#include "runtime/quarantine.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/underlying.hpp"

namespace ht::runtime {

class DefenseEngine {
 public:
  /// `patches` may be null (no patches installed). The table must outlive
  /// the engine.
  explicit DefenseEngine(const patch::PatchTable* patches = nullptr,
                         GuardedAllocatorConfig config = {},
                         UnderlyingAllocator underlying = process_allocator());

  /// Hot-reload variant: the engine resolves its patch table through
  /// `swap` on every lookup, so a committed reload takes effect on the
  /// next allocation with no engine rebuild. The swap must outlive the
  /// engine. Decision memoization stays sound across swaps because the
  /// cache is keyed on the table's process-unique generation id.
  explicit DefenseEngine(const patch::PatchTableSwap& swap,
                         GuardedAllocatorConfig config = {},
                         UnderlyingAllocator underlying = process_allocator());

  // The allocation family. `ccid` is the current calling-context id (read
  // from the encoding register by the interposition layer); `stats` is the
  // calling context's private counter block. `telemetry` is the context's
  // optional observability sink (patch-hit counters, latency histogram,
  // detection events); null keeps the paths telemetry-free — the engine
  // itself stays immutable either way, all mutation goes through the
  // caller-owned sink exactly like `stats`.
  [[nodiscard]] void* malloc(std::uint64_t size, std::uint64_t ccid,
                             AllocatorStats& stats,
                             TelemetrySink* telemetry = nullptr) const;
  [[nodiscard]] void* calloc(std::uint64_t count, std::uint64_t size,
                             std::uint64_t ccid, AllocatorStats& stats,
                             TelemetrySink* telemetry = nullptr) const;
  [[nodiscard]] void* memalign(std::uint64_t alignment, std::uint64_t size,
                               std::uint64_t ccid, AllocatorStats& stats,
                               TelemetrySink* telemetry = nullptr) const;
  [[nodiscard]] void* aligned_alloc(std::uint64_t alignment, std::uint64_t size,
                                    std::uint64_t ccid, AllocatorStats& stats,
                                    TelemetrySink* telemetry = nullptr) const;
  /// The workhorse behind the family above; public so wrappers can allocate
  /// under an explicit AllocFn (realloc's fresh buffer).
  [[nodiscard]] void* allocate(progmodel::AllocFn fn, std::uint64_t size,
                               std::uint64_t alignment, std::uint64_t ccid,
                               AllocatorStats& stats,
                               TelemetrySink* telemetry = nullptr) const;

  /// The free logic: canary verification, guard-page teardown, poisoning,
  /// and the quarantine-vs-release decision. `quarantine` receives UAF-
  /// patched blocks; owners route it (shards route by pointer hash so any
  /// thread can free any block into a consistent shard).
  void free(void* p, Quarantine& quarantine, AllocatorStats& stats,
            TelemetrySink* telemetry = nullptr) const;

  // Introspection (reads the self-maintained metadata).
  /// User-visible size of a live buffer. For guarded buffers this briefly
  /// unprotects the guard page to read the stored size.
  [[nodiscard]] std::uint64_t user_size(void* p) const;
  /// The defense mask actually applied to this buffer.
  [[nodiscard]] std::uint8_t applied_mask(const void* p) const noexcept;
  /// True if the buffer currently has a PROT_NONE guard page after it.
  [[nodiscard]] bool guard_active(const void* p) const noexcept;

  /// True iff `p` carries this engine's header tag. Foreign pointers
  /// (allocated before interposition became active, or by another
  /// allocator) are forwarded untouched to the underlying allocator — a
  /// requirement for LD_PRELOAD deployment, where the dynamic loader hands
  /// us frees for memory we never saw. Tags are instance-independent, so
  /// any engine recognizes any engine's buffers.
  [[nodiscard]] static bool owns(const void* p) noexcept;

  [[nodiscard]] const GuardedAllocatorConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const UnderlyingAllocator& underlying() const noexcept {
    return underlying_;
  }
  [[nodiscard]] const patch::PatchTable* patches() const noexcept {
    return swap_ != nullptr ? swap_->serving() : patches_;
  }

  /// Guard pages currently live (installed minus torn down). Maintained on
  /// the guarded path only — unpatched traffic never touches the atomic.
  [[nodiscard]] std::uint64_t live_guard_pages() const noexcept {
    return live_guard_pages_.load(std::memory_order_relaxed);
  }

  /// Records one detection observation as a candidate patch (no-op unless
  /// config().synthesize_candidates). `mask` defaults to the origin's
  /// characteristic vulnerability type when 0. Called by the free-path
  /// canary check and by detection backends (GuardedBackend) that hold the
  /// allocation-time attribution. Also emits a kCandidateSynthesized
  /// telemetry event through `telemetry` when a ring is attached.
  void synthesize_candidate(progmodel::AllocFn fn, std::uint64_t ccid,
                            std::uint8_t mask, patch::CandidateOrigin origin,
                            TelemetrySink* telemetry = nullptr) const;

  /// The engine-wide candidate accumulator (see class comment, exception 2).
  [[nodiscard]] const patch::CandidateTable& candidates() const noexcept {
    return candidates_;
  }
  /// Drains candidate hit deltas for journal appends (single drainer).
  [[nodiscard]] std::vector<patch::PatchCandidate> drain_candidate_deltas()
      const {
    return candidates_.drain_deltas();
  }

  /// The engine-wide heap-profiler registry (class comment, exception 3).
  [[nodiscard]] const HeapProfileRegistry& heap_registry() const noexcept {
    return heap_registry_;
  }
  /// Snapshot-time leak aging (docs/OBSERVABILITY.md §9): derives the age
  /// threshold from `snap`'s already-merged age histogram (the configured
  /// percentile of observed lifetimes), scans the live registry for
  /// sampled objects older than it, and folds them into `snap`'s census
  /// as `suspects` rows (scaled by the sampling rate). Also publishes the
  /// registry overflow counter and the threshold. Call after the last
  /// merge_sink_into_snapshot, before finalize_snapshot. Allocates — must
  /// run outside any shard lock.
  void collect_heap_suspects(TelemetrySnapshot& snap) const;

 private:
  /// {FUN, CCID} -> mask, through the thread-local memo cache when enabled.
  [[nodiscard]] std::uint8_t lookup_mask(progmodel::AllocFn fn,
                                         std::uint64_t ccid) const noexcept;
  /// Reads the metadata word of a user pointer.
  [[nodiscard]] static std::uint64_t read_word(const void* user) noexcept;
  /// The pointer-dependent header tag (at user-16, before the metadata
  /// word at user-8).
  [[nodiscard]] static std::uint64_t tag_for(const void* user) noexcept;
  /// The pointer-dependent trailing canary value (extension).
  [[nodiscard]] static std::uint64_t canary_for(const void* user) noexcept;
  /// Raw block start for a user pointer given its decoded metadata.
  [[nodiscard]] static void* raw_of(void* user, const MetadataWord& meta) noexcept;

  const patch::PatchTable* patches_;
  const patch::PatchTableSwap* swap_ = nullptr;
  GuardedAllocatorConfig config_;
  UnderlyingAllocator underlying_;
  /// See the class comment, exception 1: the guard-page budget word.
  /// Touched only on guarded allocations/frees.
  mutable std::atomic<std::uint64_t> live_guard_pages_{0};
  /// See the class comment, exception 2: the candidate accumulator.
  /// Touched only on detection.
  mutable patch::CandidateTable candidates_;
  /// See the class comment, exception 3: the heap-profiler live registry.
  /// Touched only on the sampled path; unallocated when the rate is 0.
  mutable HeapProfileRegistry heap_registry_;
};

}  // namespace ht::runtime
