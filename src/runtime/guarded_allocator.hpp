// GuardedAllocator: the online defense generator's allocation engine (§VI),
// packaged for a single execution context.
//
// The defense logic itself — patch lookup, guard pages, zero-fill, canary,
// quarantine routing — lives in DefenseEngine (see defense_engine.hpp);
// this class binds one engine to one private Quarantine and one private
// AllocatorStats block, which is the whole of its job.
//
// Thread model: one instance is single-threaded (benches use per-thread
// instances). For a shared allocator, use ShardedAllocator (scalable,
// per-shard locking — the LD_PRELOAD shim's choice) or LockedAllocator
// (one global lock; simple, but collapses under multi-core traffic).
#pragma once

#include <cstdint>

#include "patch/patch_table.hpp"
#include "progmodel/values.hpp"
#include "runtime/allocator_config.hpp"
#include "runtime/defense_engine.hpp"
#include "runtime/metadata.hpp"
#include "runtime/quarantine.hpp"
#include "runtime/underlying.hpp"

namespace ht::runtime {

class GuardedAllocator {
 public:
  /// `patches` may be null (no patches installed). The table must outlive
  /// the allocator.
  explicit GuardedAllocator(const patch::PatchTable* patches = nullptr,
                            GuardedAllocatorConfig config = {},
                            UnderlyingAllocator underlying = process_allocator());
  /// Hot-reload variant: patch lookups resolve through `swap`, so a
  /// committed reload takes effect on the next allocation. The swap must
  /// outlive the allocator.
  explicit GuardedAllocator(const patch::PatchTableSwap& swap,
                            GuardedAllocatorConfig config = {},
                            UnderlyingAllocator underlying = process_allocator());
  ~GuardedAllocator();

  GuardedAllocator(const GuardedAllocator&) = delete;
  GuardedAllocator& operator=(const GuardedAllocator&) = delete;

  // The interposed API family. `ccid` is the current calling-context id
  // (read from the encoding register by the interposition layer).
  [[nodiscard]] void* malloc(std::uint64_t size, std::uint64_t ccid);
  [[nodiscard]] void* calloc(std::uint64_t count, std::uint64_t size,
                             std::uint64_t ccid);
  [[nodiscard]] void* memalign(std::uint64_t alignment, std::uint64_t size,
                               std::uint64_t ccid);
  [[nodiscard]] void* aligned_alloc(std::uint64_t alignment, std::uint64_t size,
                                    std::uint64_t ccid);
  [[nodiscard]] void* realloc(void* p, std::uint64_t new_size, std::uint64_t ccid);
  void free(void* p);

  // Introspection (reads the self-maintained metadata).
  /// User-visible size of a live buffer. For guarded buffers this briefly
  /// unprotects the guard page to read the stored size.
  [[nodiscard]] std::uint64_t user_size(void* p) const { return engine_.user_size(p); }
  /// The defense mask actually applied to this buffer.
  [[nodiscard]] std::uint8_t applied_mask(const void* p) const noexcept {
    return engine_.applied_mask(p);
  }
  /// True if the buffer currently has a PROT_NONE guard page after it.
  [[nodiscard]] bool guard_active(const void* p) const noexcept {
    return engine_.guard_active(p);
  }

  [[nodiscard]] const AllocatorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Quarantine& quarantine() const noexcept { return quarantine_; }
  [[nodiscard]] const GuardedAllocatorConfig& config() const noexcept {
    return engine_.config();
  }
  [[nodiscard]] const DefenseEngine& engine() const noexcept { return engine_; }

  /// The observability sink (counters + event ring); configured from
  /// `config.telemetry` at construction. Non-const access so the guarded
  /// backend can emit guard-trap events through the owning allocator.
  [[nodiscard]] TelemetrySink& telemetry() noexcept { return telemetry_; }
  [[nodiscard]] const TelemetrySink& telemetry() const noexcept {
    return telemetry_;
  }
  /// Point-in-time telemetry merge (single-context: one shard row).
  [[nodiscard]] TelemetrySnapshot telemetry_snapshot() const;

  /// True iff `p` carries the defense engine's header tag (see
  /// DefenseEngine::owns).
  [[nodiscard]] static bool owns(const void* p) noexcept {
    return DefenseEngine::owns(p);
  }

 private:
  // Declaration order is load-bearing: quarantine_ must be declared AFTER
  // telemetry_ so it is destroyed first — its destructor drains, and each
  // eviction records an event through the telemetry pointer it holds.
  DefenseEngine engine_;
  AllocatorStats stats_;
  TelemetrySink telemetry_;
  Quarantine quarantine_;
};

}  // namespace ht::runtime
