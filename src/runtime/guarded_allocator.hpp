// GuardedAllocator: the online defense generator's allocation engine (§VI).
//
// Sits in front of the underlying allocator (libc by default) and, for every
// allocation, looks the {FUN, CCID} pair up in the read-only patch table:
//
//   - no match          -> plain buffer with self-maintained metadata
//                          (Structure 1/3); the only cost is the lookup and
//                          the metadata word.
//   - OVERFLOW patch    -> guard page appended after the user buffer and
//                          mprotect'ed PROT_NONE (Structure 2/4); a
//                          contiguous overflow faults instead of corrupting.
//   - UNINIT patch      -> user buffer zero-filled before it is returned, so
//                          stale secrets cannot leak.
//   - UAF patch         -> on free, the block enters a FIFO quarantine that
//                          defers reuse (deallocation happens when the byte
//                          quota evicts it).
//
// The allocator never inspects or alters the underlying allocator's
// internals — exactly the paper's "no dependency on specific allocators".
//
// Thread model: one instance is single-threaded (benches use per-thread
// instances); the LD_PRELOAD shim serializes its global instance.
#pragma once

#include <cstdint>

#include "patch/patch_table.hpp"
#include "progmodel/values.hpp"
#include "runtime/metadata.hpp"
#include "runtime/quarantine.hpp"
#include "runtime/underlying.hpp"

namespace ht::runtime {

struct GuardedAllocatorConfig {
  std::uint64_t quarantine_quota_bytes = 16ULL << 20;  ///< online FIFO quota
  /// Interposition-only mode: forward straight to the underlying allocator
  /// with no metadata or table lookup. This isolates the pure interception
  /// cost (the 1.9% bar of Fig. 8).
  bool forward_only = false;
  /// Allow disabling real mprotect guard pages (for constrained
  /// environments); overflow patches then degrade to the canary defense
  /// below (when enabled) or metadata-only.
  bool use_guard_pages = true;

  // ---- Extensions beyond the paper (ablatable; see DESIGN.md) ----
  /// Fill quarantined UAF buffers with kPoisonByte so a dangling *read*
  /// returns poison rather than stale data (the paper's quarantine defers
  /// reuse but leaves contents intact).
  bool poison_quarantine = false;
  /// Plant a trailing canary word in overflow-patched buffers and verify
  /// it on free — a HeapTherapy-2015-style detect-on-free fallback that
  /// works where guard pages are unavailable or too expensive.
  bool use_canaries = false;

  static constexpr std::uint8_t kPoisonByte = 0xDE;
};

struct AllocatorStats {
  std::uint64_t interceptions = 0;   ///< every allocation-family call
  std::uint64_t enhanced = 0;        ///< allocations that matched a patch
  std::uint64_t guard_pages = 0;     ///< guard pages installed
  std::uint64_t zero_fills = 0;      ///< uninit-read zero-fill defenses
  std::uint64_t quarantined_frees = 0;
  std::uint64_t plain_frees = 0;
  std::uint64_t failed_guards = 0;   ///< mprotect failures (degraded)
  std::uint64_t canaries_planted = 0;        ///< extension: canary defense
  std::uint64_t canary_overflows_on_free = 0;  ///< overflow detected at free
};

class GuardedAllocator {
 public:
  /// `patches` may be null (no patches installed). The table must outlive
  /// the allocator.
  explicit GuardedAllocator(const patch::PatchTable* patches = nullptr,
                            GuardedAllocatorConfig config = {},
                            UnderlyingAllocator underlying = process_allocator());
  ~GuardedAllocator();

  GuardedAllocator(const GuardedAllocator&) = delete;
  GuardedAllocator& operator=(const GuardedAllocator&) = delete;

  // The interposed API family. `ccid` is the current calling-context id
  // (read from the encoding register by the interposition layer).
  [[nodiscard]] void* malloc(std::uint64_t size, std::uint64_t ccid);
  [[nodiscard]] void* calloc(std::uint64_t count, std::uint64_t size,
                             std::uint64_t ccid);
  [[nodiscard]] void* memalign(std::uint64_t alignment, std::uint64_t size,
                               std::uint64_t ccid);
  [[nodiscard]] void* aligned_alloc(std::uint64_t alignment, std::uint64_t size,
                                    std::uint64_t ccid);
  [[nodiscard]] void* realloc(void* p, std::uint64_t new_size, std::uint64_t ccid);
  void free(void* p);

  // Introspection (reads the self-maintained metadata).
  /// User-visible size of a live buffer. For guarded buffers this briefly
  /// unprotects the guard page to read the stored size.
  [[nodiscard]] std::uint64_t user_size(void* p) const;
  /// The defense mask actually applied to this buffer.
  [[nodiscard]] std::uint8_t applied_mask(const void* p) const noexcept;
  /// True if the buffer currently has a PROT_NONE guard page after it.
  [[nodiscard]] bool guard_active(const void* p) const noexcept;

  [[nodiscard]] const AllocatorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Quarantine& quarantine() const noexcept { return quarantine_; }
  [[nodiscard]] const GuardedAllocatorConfig& config() const noexcept { return config_; }

  /// True iff `p` carries this allocator's header tag. Foreign pointers
  /// (allocated before interposition became active, or by another
  /// allocator) are forwarded untouched to the underlying allocator — a
  /// requirement for LD_PRELOAD deployment, where the dynamic loader hands
  /// us frees for memory we never saw.
  [[nodiscard]] static bool owns(const void* p) noexcept;

 private:
  [[nodiscard]] void* allocate(progmodel::AllocFn fn, std::uint64_t size,
                               std::uint64_t alignment, std::uint64_t ccid);
  /// Reads the metadata word of a user pointer.
  [[nodiscard]] static std::uint64_t read_word(const void* user) noexcept;
  /// The pointer-dependent header tag (at user-16, before the metadata
  /// word at user-8).
  [[nodiscard]] static std::uint64_t tag_for(const void* user) noexcept;
  /// The pointer-dependent trailing canary value (extension).
  [[nodiscard]] static std::uint64_t canary_for(const void* user) noexcept;
  /// Raw block start for a user pointer given its decoded metadata.
  [[nodiscard]] static void* raw_of(void* user, const MetadataWord& meta) noexcept;

  const patch::PatchTable* patches_;
  GuardedAllocatorConfig config_;
  UnderlyingAllocator underlying_;
  Quarantine quarantine_;
  AllocatorStats stats_;
};

}  // namespace ht::runtime
