// heaptherapy_preload: the deployable interposition library (§VI-VII).
//
// Build product: libheaptherapy_preload.so. Loaded before libc (via
// LD_PRELOAD or LDLIBS), its exported malloc family shadows libc's, so every
// allocation in the host process flows through a global ShardedAllocator —
// the scalable shared-allocator architecture (docs/CONCURRENCY.md). Unlike
// the original shim there is NO process-wide lock here: each call takes
// exactly one shard mutex inside the allocator, so a service's threads
// allocate in parallel instead of convoying on a global recursive mutex.
//
//  - Patches are read from the file named by $HEAPTHERAPY_CONFIG in a
//    constructor function, into a table whose pages are then frozen
//    read-only (§VI). $HEAPTHERAPY_QUARANTINE sets the process-wide
//    quarantine byte quota (partitioned across shards);
//    $HEAPTHERAPY_SHARDS overrides the shard count (default: one per
//    hardware thread, power-of-two, max 64).
//  - $HEAPTHERAPY_TELEMETRY=<path> starts a background thread that
//    periodically rewrites <path> with the telemetry dump
//    (docs/FORMATS.md §4; docs/OBSERVABILITY.md), plus one final flush
//    from an ELF destructor. Setting it also turns the event ring on.
//    $HEAPTHERAPY_TELEMETRY=unix:<path> streams binary wire frames
//    (docs/FORMATS.md §6) to an AF_UNIX datagram socket instead — e.g. an
//    `htagg serve` aggregator — one frame per flush, same cadence, same
//    retry/backoff, degrading to counted drops when no receiver listens.
//    $HEAPTHERAPY_TELEMETRY_INTERVAL (ms, default 1000) paces the flush;
//    $HEAPTHERAPY_TELEMETRY_EVENTS=0/1 forces the ring off/on;
//    $HEAPTHERAPY_TELEMETRY_RING sets per-shard ring capacity;
//    $HEAPTHERAPY_TELEMETRY_COUNTERS=0 disables even the cheap counters.
//    Recording an event or counter never allocates (fixed-size rings and
//    tables); only the flusher thread allocates, off the hot path.
//  - The current CCID is the thread-local `ht_cc_current`, exported with C
//    linkage; the instrumentation pass (our progmodel interpreter stands in
//    for it; a real LLVM pass would emit the same symbol) keeps it updated.
//  - $HEAPTHERAPY_RELOAD=1 (requires $HEAPTHERAPY_CONFIG) enables patch
//    hot-reload: SIGHUP asks the maintenance thread to re-read the config
//    file and atomically swap in the new table — but only if it parses
//    cleanly; a corrupt or torn file is rejected and the prior table keeps
//    serving (docs/RESILIENCE.md).
//  - $HEAPTHERAPY_DEFENSE=guard|canary picks the overflow defense for
//    patched allocations: guard (default) places a protected page after
//    the buffer — an overflowing store SIGSEGVs, a crash instead of a
//    compromise; canary plants a trailing canary verified on free —
//    detect-and-survive, the mode a process that must keep serving runs
//    while candidates are gathered (docs/SELF_HEALING.md).
//  - $HEAPTHERAPY_CANDIDATES=<path> turns on candidate-patch synthesis
//    (docs/SELF_HEALING.md): every detection the runtime survives
//    (canary corruption at free; guard traps and landed accesses on the
//    interpreter path) records a {FUN, CCID, T} candidate, and the
//    maintenance thread appends the deltas to <path> — the quarantine
//    journal (docs/FORMATS.md §7) that `htpromote` validates and promotes
//    from. %p expands to the pid, but the journal is designed to be
//    SHARED: appends are line-atomic, so a whole fleet writes one file.
//  - $HEAPTHERAPY_HEAPPROF=<N> turns on the sampled heap profiler
//    (docs/OBSERVABILITY.md §9): 1-in-N plain-layout allocations join a
//    live census keyed {FUN, CCID} — live bytes/objects, cumulative
//    alloc/free counts, an object-age histogram at free, and an age-based
//    leak-suspect set, all flushed in the telemetry dump (FORMATS.md §8).
//    0 (default) keeps the profiler off at one branch per allocation.
//    $HEAPTHERAPY_HEAPPROF_PCTL=<1..100> sets the age percentile that
//    defines the leak-suspect threshold (default 99).
//  - $HEAPTHERAPY_FAULTS arms the deterministic fault-injection points
//    (docs/RESILIENCE.md) — test/chaos tooling only.
//  - Numeric env vars are parsed strictly: garbage or overflow falls back
//    to the documented default with a one-line stderr warning, instead of
//    silently configuring 0 shards or a 0-byte quarantine.
//  - The real allocation work is delegated to glibc's __libc_* entry points
//    — calling std::malloc here would recurse into ourselves.
//
// Re-entrancy: the allocator performs no interposed allocations of its own
// while holding a shard lock (the quarantine stores its FIFO links inside
// the quarantined blocks), so the shard mutexes can be plain non-recursive
// locks. The only internal allocations happen during construction (patch
// table, shard array); the t_constructing flag routes those straight to
// libc, where they stay untagged and are later forwarded on free.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <climits>
#include <cstring>
#include <mutex>
#include <new>
#include <thread>

#include <unistd.h>

#include "patch/candidate.hpp"
#include "patch/config_file.hpp"
#include "patch/hot_swap.hpp"
#include "patch/patch_table.hpp"
#include "runtime/sharded_allocator.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/telemetry_wire.hpp"
#include "support/faultpoint.hpp"

// glibc's real entry points.
extern "C" {
void* __libc_malloc(size_t);
void __libc_free(void*);
void* __libc_realloc(void*, size_t);
void* __libc_memalign(size_t, size_t);

/// The calling-context register maintained by instrumented code.
__thread std::uint64_t ht_cc_current = 0;
}

namespace {

using ht::patch::PatchTable;
using ht::runtime::ShardedAllocator;
using ht::runtime::ShardedAllocatorConfig;
using ht::runtime::GuardedAllocatorConfig;
using ht::runtime::UnderlyingAllocator;

UnderlyingAllocator libc_allocator() {
  UnderlyingAllocator u;
  u.malloc_fn = &__libc_malloc;
  u.free_fn = &__libc_free;
  u.realloc_fn = &__libc_realloc;
  u.memalign_fn = &__libc_memalign;
  return u;
}

// Storage with trivial destruction: the allocator must survive until the
// very last free in the process, so it is constructed in-place and never
// destroyed (static-destruction-order fiasco avoidance).
alignas(PatchTable) unsigned char table_storage[sizeof(PatchTable)];
alignas(ht::patch::PatchTableSwap) unsigned char swap_storage[sizeof(
    ht::patch::PatchTableSwap)];
alignas(ShardedAllocator) unsigned char allocator_storage[sizeof(ShardedAllocator)];
PatchTable* g_table = nullptr;
// Non-null iff HEAPTHERAPY_RELOAD is enabled; the allocator then resolves
// patch lookups through the swap instead of a fixed table.
ht::patch::PatchTableSwap* g_swap = nullptr;
ShardedAllocator* g_allocator = nullptr;
// True on the thread currently constructing the global allocator. The
// constructors themselves allocate (patch table, shard array), and those
// allocations re-enter the interposed malloc; they must fall straight
// through to libc or the bootstrap recurses forever. Thread-local because
// other threads' traffic must NOT bypass the allocator meanwhile.
thread_local bool t_constructing = false;

// Serializes construction only; never taken on the allocation fast path.
std::mutex& init_mutex() {
  static std::mutex m;
  return m;
}

// ---- Hardened env parsing ----
// The original shim fed getenv output straight into strtoul, so
// HEAPTHERAPY_SHARDS=abc silently configured 0 shards and
// HEAPTHERAPY_QUARANTINE=1e9 a 1-byte quota. Every numeric knob now goes
// through a strict parser: the whole string must be a non-negative decimal
// number that fits, or the documented default is kept and one warning line
// names the offending variable.

bool parse_u64_strict(const char* text, unsigned long long* out) {
  if (text == nullptr || *text == '\0' || *text == '-' || *text == '+') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

unsigned long long env_u64(const char* name, unsigned long long fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  unsigned long long value = 0;
  if (!parse_u64_strict(text, &value)) {
    std::fprintf(stderr,
                 "heaptherapy: %s='%s' is not a valid number; using default "
                 "%llu\n",
                 name, text, fallback);
    return fallback;
  }
  return value;
}

// Strict boolean: exactly "0" or "1". Anything else keeps the default —
// HEAPTHERAPY_TELEMETRY_EVENTS=yes must not silently disable the ring.
bool env_flag(const char* name, bool fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  if (std::strcmp(text, "0") == 0) return false;
  if (std::strcmp(text, "1") == 0) return true;
  std::fprintf(stderr,
               "heaptherapy: %s='%s' is not 0 or 1; using default %d\n", name,
               text, fallback ? 1 : 0);
  return fallback;
}

// ---- Telemetry flusher ($HEAPTHERAPY_TELEMETRY) ----
// The env value is %p/%%-expanded, then split into a target: a file path
// (text dump, write-then-rename) or "unix:<socket>" (one binary wire frame
// per flush). Function-static so first use constructs it; it is only ever
// written in the ELF constructor, before host threads exist. All flushing
// runs on the background thread or in the ELF destructor — never on an
// allocation path.
ht::runtime::TelemetryTarget& telemetry_target() {
  static ht::runtime::TelemetryTarget target;
  return target;
}
// The producer label embedded in streamed frames ("pid-<pid>"): the
// aggregator keys its rolling per-source state on it.
std::string& telemetry_source() {
  static std::string source;
  return source;
}
// Streaming emitter, constructed in the ELF constructor for unix targets.
// Same never-destroyed placement pattern as the allocator: frames may
// still flush from the ELF destructor after static destructors ran.
alignas(ht::runtime::WireEmitter) unsigned char emitter_storage[sizeof(
    ht::runtime::WireEmitter)];
ht::runtime::WireEmitter* g_emitter = nullptr;
unsigned long g_flush_interval_ms = 1000;
std::atomic<bool> g_maintenance_running{false};
// Lifetime count of flush cycles that exhausted every retry; merged into
// each snapshot (the allocator itself doesn't know about file I/O).
std::atomic<std::uint64_t> g_flush_failures{0};

// One flush at a time: the periodic thread and the destructor's final
// flush must not interleave writes to the same file.
std::mutex& flush_mutex() {
  static std::mutex m;
  return m;
}

// Single write-then-rename attempt so a reader polling the path always sees
// a complete dump (the previous one, or the new one) — never a half-written
// file. The telemetry-io fault point models fopen failing (disk full,
// permissions yanked) for the resilience tests.
bool write_dump_once(const std::string& dump) {
  const std::string& path = telemetry_target().path;
  const std::string tmp = path + ".tmp";
  std::FILE* f =
      ht::support::fault_fires(ht::support::FaultPoint::kTelemetryIo)
          ? nullptr
          : std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(dump.data(), 1, dump.size(), f) == dump.size();
  const bool closed = std::fclose(f) == 0;
  if (wrote && closed) {
    return std::rename(tmp.c_str(), path.c_str()) == 0;
  }
  std::remove(tmp.c_str());
  return false;
}

// One streamed-flush attempt. The telemetry-io fault point models the
// socket send failing, same as it models fopen failing on the file path —
// the resilience ladder is transport-agnostic.
bool send_frame_once(std::string& frame,
                     const ht::runtime::TelemetrySnapshot& snap) {
  if (g_emitter == nullptr) return false;
  if (ht::support::fault_fires(ht::support::FaultPoint::kTelemetryIo)) {
    return false;
  }
  switch (g_emitter->send_frame(frame)) {
    case ht::runtime::WireEmitter::SendResult::kSent:
      return true;
    case ht::runtime::WireEmitter::SendResult::kTooBig:
      // The event tail blew the datagram limit. Re-encode counters-only —
      // exact totals still land every flush; the (re-sendable) events are
      // what gets shed. Retried by the caller's normal backoff loop.
      frame = ht::runtime::encode_telemetry_frame(snap, telemetry_source(),
                                                  /*include_events=*/false);
      return false;
    case ht::runtime::WireEmitter::SendResult::kError:
      return false;
  }
  return false;
}

void flush_telemetry() {
  if (telemetry_target().kind == ht::runtime::TelemetryTarget::Kind::kNone ||
      g_allocator == nullptr) {
    return;
  }
  const std::lock_guard<std::mutex> lock(flush_mutex());
  ht::runtime::TelemetrySnapshot snap = g_allocator->telemetry_snapshot();
  snap.flush_failures = g_flush_failures.load(std::memory_order_relaxed);
  // flush_failures feeds the health rollup, so re-derive after merging it.
  snap.health = ht::runtime::derive_health(snap);
  const bool streaming = telemetry_target().kind ==
                         ht::runtime::TelemetryTarget::Kind::kUnixDatagram;
  std::string payload =
      streaming ? ht::runtime::encode_telemetry_frame(snap, telemetry_source())
                : ht::runtime::render_telemetry(snap);
  // Bounded retry with backoff: transient failures (full disk being
  // rotated, EINTR-happy filesystems, an aggregator mid-restart) get two
  // more chances; after that the failure is counted and recorded, and the
  // previous complete flush keeps serving — degrade, don't die. Never
  // retries forever: this runs on the maintenance thread and in the ELF
  // destructor, and must never back up into allocation paths.
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (attempt != 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(attempt == 1 ? 10 : 40));
    }
    if (streaming ? send_frame_once(payload, snap) : write_dump_once(payload)) {
      return;
    }
  }
  g_flush_failures.fetch_add(1, std::memory_order_relaxed);
  g_allocator->shard_telemetry(0).record_event(
      ht::runtime::TelemetryEvent::kTelemetryFlushFail, /*ccid=*/0,
      /*size=*/payload.size(), /*aux=*/0);
}

// ---- Candidate synthesis ($HEAPTHERAPY_CANDIDATES) ----
// Set iff synthesis is enabled: the quarantine-journal path the maintenance
// thread appends candidate deltas to (docs/FORMATS.md §7).
std::string& candidates_path() {
  static std::string path;
  return path;
}

// Drains the engine's candidate deltas and appends them to the journal.
// Runs under flush_mutex(): drain_candidate_deltas assumes a single drainer
// (the maintenance thread and the ELF destructor must not interleave).
// On append failure the drained deltas for this cycle are dropped — the
// table keeps absolute totals for telemetry either way, and the failure is
// counted like any other flush failure (degrade, don't die).
void flush_candidates() {
  if (candidates_path().empty() || g_allocator == nullptr) return;
  const std::lock_guard<std::mutex> lock(flush_mutex());
  const std::vector<ht::patch::PatchCandidate> deltas =
      g_allocator->engine().drain_candidate_deltas();
  if (deltas.empty()) return;
  if (!ht::patch::append_candidate_journal(candidates_path(), deltas)) {
    g_flush_failures.fetch_add(1, std::memory_order_relaxed);
    g_allocator->shard_telemetry(0).record_event(
        ht::runtime::TelemetryEvent::kTelemetryFlushFail, /*ccid=*/0,
        /*size=*/deltas.size(), /*aux=*/1);
  }
}

// ---- Patch hot-reload ($HEAPTHERAPY_RELOAD + SIGHUP) ----
// The signal handler only sets a flag (the allowed sig_atomic_t store);
// the maintenance thread does the actual file I/O and table swap.
volatile std::sig_atomic_t g_reload_requested = 0;

std::string& config_path() {
  static std::string path;
  return path;
}

void sighup_handler(int) { g_reload_requested = 1; }

void perform_reload() {
  if (g_swap == nullptr) return;
  const ht::patch::ReloadResult result =
      g_swap->reload_from_file(config_path());
  if (g_allocator != nullptr) {
    g_allocator->shard_telemetry(0).record_event(
        result.applied ? ht::runtime::TelemetryEvent::kPatchReload
                       : ht::runtime::TelemetryEvent::kPatchReloadRejected,
        /*ccid=*/0, result.patch_count,
        static_cast<std::uint32_t>(result.generation));
  }
  if (result.applied) {
    std::fprintf(stderr,
                 "heaptherapy: reloaded %s: %zu patches (generation %llu)\n",
                 config_path().c_str(), result.patch_count,
                 static_cast<unsigned long long>(result.generation));
  } else {
    std::fprintf(stderr,
                 "heaptherapy: reload of %s rejected; generation %llu keeps "
                 "serving\n",
                 config_path().c_str(),
                 static_cast<unsigned long long>(result.generation));
    for (const std::string& err : result.errors) {
      std::fprintf(stderr, "heaptherapy:   %s\n", err.c_str());
    }
  }
}

// One background thread handles both periodic telemetry flushes and
// SIGHUP-requested patch reloads. It sleeps in short slices so a reload
// request is honored within ~200ms even under a long flush interval.
void maintenance_thread() {
  const bool flushing =
      telemetry_target().kind != ht::runtime::TelemetryTarget::Kind::kNone ||
      !candidates_path().empty();
  unsigned long since_flush_ms = 0;
  while (g_maintenance_running.load(std::memory_order_relaxed)) {
    const unsigned long slice =
        std::min<unsigned long>(200, g_flush_interval_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    if (g_reload_requested != 0) {
      g_reload_requested = 0;
      perform_reload();
    }
    if (flushing) {
      since_flush_ms += slice;
      if (since_flush_ms >= g_flush_interval_ms) {
        since_flush_ms = 0;
        flush_telemetry();
        flush_candidates();
      }
    }
  }
}

ShardedAllocator& allocator() {
  // First call can arrive before the constructor function runs (the dynamic
  // loader allocates); bootstrap with an empty table. heaptherapy_init later
  // rebuilds in place with the real config — by then it runs on the ELF
  // constructor's thread, before the host spawns threads.
  if (g_allocator == nullptr) {
    const std::lock_guard<std::mutex> lock(init_mutex());
    if (g_allocator == nullptr) {
      t_constructing = true;
      std::vector<ht::patch::Patch> none;
      g_table = new (table_storage) PatchTable(none, /*freeze=*/true);
      g_allocator = new (allocator_storage)
          ShardedAllocator(g_table, {}, {}, libc_allocator());
      t_constructing = false;
    }
  }
  return *g_allocator;
}

__attribute__((constructor)) void heaptherapy_init() {
  // Arm fault injection first so even constructor-phase paths see it
  // (test/chaos tooling only; costs one relaxed load when unset).
  ht::support::install_faults_from_env();
  const char* path = std::getenv("HEAPTHERAPY_CONFIG");
  std::vector<ht::patch::Patch> patches;
  if (path != nullptr) {
    config_path() = path;
    if (const auto loaded = ht::patch::load_config_file(path)) {
      patches = loaded->patches;
      for (const std::string& err : loaded->errors) {
        std::fprintf(stderr, "heaptherapy: config %s: %s\n", path, err.c_str());
      }
    } else {
      std::fprintf(stderr, "heaptherapy: cannot read config %s\n", path);
    }
  }
  GuardedAllocatorConfig config;
  config.quarantine_quota_bytes =
      env_u64("HEAPTHERAPY_QUARANTINE", config.quarantine_quota_bytes);
  config.guard_page_budget =
      env_u64("HEAPTHERAPY_GUARD_BUDGET", config.guard_page_budget);
  ShardedAllocatorConfig sharding;
  sharding.shards =
      static_cast<std::uint32_t>(env_u64("HEAPTHERAPY_SHARDS", sharding.shards));
  bool reload_enabled = env_flag("HEAPTHERAPY_RELOAD", false);
  if (reload_enabled && path == nullptr) {
    std::fprintf(stderr,
                 "heaptherapy: HEAPTHERAPY_RELOAD ignored without "
                 "HEAPTHERAPY_CONFIG\n");
    reload_enabled = false;
  }
  if (const char* telemetry = std::getenv("HEAPTHERAPY_TELEMETRY")) {
    // %p -> pid, %% -> % (docs/OBSERVABILITY.md): each process of a fleet
    // sharing this environment writes its own dump for htagg to merge.
    // Expansion runs before the target split so %p works in both forms
    // (it is mostly useful for files; sockets are usually shared).
    telemetry_target() = ht::runtime::parse_telemetry_target(
        ht::runtime::expand_telemetry_path(telemetry,
                                           static_cast<long>(getpid())));
    if (telemetry_target().kind ==
        ht::runtime::TelemetryTarget::Kind::kUnixDatagram) {
      telemetry_source() = "pid-" + std::to_string(getpid());
      g_emitter = new (emitter_storage)
          ht::runtime::WireEmitter(telemetry_target().path);
    }
  }
  if (const char* defense = std::getenv("HEAPTHERAPY_DEFENSE")) {
    if (std::strcmp(defense, "canary") == 0) {
      config.use_guard_pages = false;
      config.use_canaries = true;
    } else if (std::strcmp(defense, "guard") != 0) {
      std::fprintf(stderr,
                   "heaptherapy: HEAPTHERAPY_DEFENSE='%s' is not guard or "
                   "canary; using guard\n",
                   defense);
    }
  }
  if (const char* candidates = std::getenv("HEAPTHERAPY_CANDIDATES")) {
    // Same %p/%% expansion as the telemetry path, though a shared journal
    // (no %p) is the normal fleet deployment: appends are line-atomic.
    candidates_path() = ht::runtime::expand_telemetry_path(
        candidates, static_cast<long>(getpid()));
    config.synthesize_candidates = true;
  }
  // A flush target implies the event ring; explicit knobs override either
  // direction.
  config.telemetry.events = env_flag(
      "HEAPTHERAPY_TELEMETRY_EVENTS",
      telemetry_target().kind != ht::runtime::TelemetryTarget::Kind::kNone);
  config.telemetry.ring_capacity = static_cast<std::uint32_t>(
      env_u64("HEAPTHERAPY_TELEMETRY_RING", config.telemetry.ring_capacity));
  config.telemetry.counters =
      env_flag("HEAPTHERAPY_TELEMETRY_COUNTERS", config.telemetry.counters);
  g_flush_interval_ms = static_cast<unsigned long>(
      env_u64("HEAPTHERAPY_TELEMETRY_INTERVAL", g_flush_interval_ms));
  if (g_flush_interval_ms == 0) g_flush_interval_ms = 1;
  // Heap profiler (docs/OBSERVABILITY.md §9): sample 1-in-N plain-layout
  // allocations into the live census. 0 (the default) keeps the profiler
  // entirely off — one predicted-false branch per allocation.
  config.telemetry.heap_profile_rate = static_cast<std::uint32_t>(
      env_u64("HEAPTHERAPY_HEAPPROF", config.telemetry.heap_profile_rate));
  {
    const unsigned long long pctl = env_u64(
        "HEAPTHERAPY_HEAPPROF_PCTL", config.telemetry.heap_age_percentile);
    if (pctl >= 1 && pctl <= 100) {
      config.telemetry.heap_age_percentile = static_cast<std::uint8_t>(pctl);
    } else if (pctl != config.telemetry.heap_age_percentile) {
      std::fprintf(stderr,
                   "heaptherapy: HEAPTHERAPY_HEAPPROF_PCTL=%llu is not in "
                   "1..100; using default %u\n",
                   pctl,
                   static_cast<unsigned>(config.telemetry.heap_age_percentile));
    }
  }
  {
    const std::lock_guard<std::mutex> lock(init_mutex());
    // Rebuilding over a bootstrapped instance intentionally leaks its (tiny)
    // internal state; outstanding buffers keep working because the header
    // tags and layouts are instance-independent. This runs in the ELF
    // constructor phase, before host threads exist.
    t_constructing = true;
    if (reload_enabled) {
      // Reload mode: the table lives inside a PatchTableSwap and the
      // allocator resolves lookups through it, so a committed reload takes
      // effect on the next allocation in any shard.
      g_swap = new (swap_storage)
          ht::patch::PatchTableSwap(PatchTable(patches, /*freeze=*/true));
      g_allocator = new (allocator_storage)
          ShardedAllocator(*g_swap, config, sharding, libc_allocator());
    } else {
      g_table = new (table_storage) PatchTable(patches, /*freeze=*/true);
      g_allocator = new (allocator_storage)
          ShardedAllocator(g_table, config, sharding, libc_allocator());
    }
    t_constructing = false;
  }
  if (reload_enabled) {
    // Opt-in (HEAPTHERAPY_RELOAD=1), because taking SIGHUP away from the
    // host process is invasive. The handler only sets a flag; the
    // maintenance thread performs the reload.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &sighup_handler;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGHUP, &sa, nullptr);
  }
  if (telemetry_target().kind != ht::runtime::TelemetryTarget::Kind::kNone ||
      reload_enabled || !candidates_path().empty()) {
    g_maintenance_running.store(true, std::memory_order_relaxed);
    std::thread(maintenance_thread).detach();
  }
}

__attribute__((destructor)) void heaptherapy_fini() {
  // Stop the maintenance thread (best effort; it may be mid-sleep — the
  // flush mutex keeps a straggling iteration from interleaving with ours)
  // and write the final dump.
  g_maintenance_running.store(false, std::memory_order_relaxed);
  flush_telemetry();
  flush_candidates();
}

}  // namespace

extern "C" {

void* malloc(size_t size) {
  if (t_constructing) return __libc_malloc(size);
  return allocator().malloc(size, ht_cc_current);
}

void* calloc(size_t count, size_t size) {
  if (t_constructing) {
    void* p = (size != 0 && count > SIZE_MAX / size) ? nullptr
                                                     : __libc_malloc(count * size);
    if (p != nullptr) std::memset(p, 0, count * size);
    return p;
  }
  return allocator().calloc(count, size, ht_cc_current);
}

void* realloc(void* p, size_t size) {
  if (t_constructing) return __libc_realloc(p, size);
  return allocator().realloc(p, size, ht_cc_current);
}

void* memalign(size_t alignment, size_t size) {
  if (t_constructing) return __libc_memalign(alignment, size);
  return allocator().memalign(alignment, size, ht_cc_current);
}

void* aligned_alloc(size_t alignment, size_t size) {
  if (t_constructing) return __libc_memalign(alignment, size);
  return allocator().aligned_alloc(alignment, size, ht_cc_current);
}

int posix_memalign(void** out, size_t alignment, size_t size) {
  // glibc declares `out` nonnull, but a defensive shim verifies anyway;
  // read through a volatile copy so the check is not "optimized" into a
  // -Wnonnull-compare warning.
  void** volatile out_checked = out;
  if (out_checked == nullptr || alignment % sizeof(void*) != 0 ||
      (alignment & (alignment - 1)) != 0) {
    return 22;  // EINVAL
  }
  void* p = allocator().memalign(alignment, size, ht_cc_current);
  if (p == nullptr) return 12;  // ENOMEM
  *out = p;
  return 0;
}

void* valloc(size_t size) {
  if (t_constructing) return __libc_memalign(4096, size);
  return allocator().memalign(4096, size, ht_cc_current);
}

void* pvalloc(size_t size) {
  const size_t rounded = (size + 4095) / 4096 * 4096;
  if (t_constructing) return __libc_memalign(4096, rounded);
  return allocator().memalign(4096, rounded, ht_cc_current);
}

void* reallocarray(void* p, size_t count, size_t size) {
  if (size != 0 && count > SIZE_MAX / size) return nullptr;
  if (t_constructing) return __libc_realloc(p, count * size);
  return allocator().realloc(p, count * size, ht_cc_current);
}

void free(void* p) {
  if (t_constructing) {
    // Only construction-phase (untagged) allocations can be freed here.
    if (p != nullptr) __libc_free(p);
    return;
  }
  allocator().free(p);
}

}  // extern "C"
