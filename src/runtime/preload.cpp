// heaptherapy_preload: the deployable interposition library (§VI-VII).
//
// Build product: libheaptherapy_preload.so. Loaded before libc (via
// LD_PRELOAD or LDLIBS), its exported malloc family shadows libc's, so every
// allocation in the host process flows through a global ShardedAllocator —
// the scalable shared-allocator architecture (docs/CONCURRENCY.md). Unlike
// the original shim there is NO process-wide lock here: each call takes
// exactly one shard mutex inside the allocator, so a service's threads
// allocate in parallel instead of convoying on a global recursive mutex.
//
//  - Patches are read from the file named by $HEAPTHERAPY_CONFIG in a
//    constructor function, into a table whose pages are then frozen
//    read-only (§VI). $HEAPTHERAPY_QUARANTINE sets the process-wide
//    quarantine byte quota (partitioned across shards);
//    $HEAPTHERAPY_SHARDS overrides the shard count (default: one per
//    hardware thread, power-of-two, max 64).
//  - $HEAPTHERAPY_TELEMETRY=<path> starts a background thread that
//    periodically rewrites <path> with the telemetry dump
//    (docs/FORMATS.md §4; docs/OBSERVABILITY.md), plus one final flush
//    from an ELF destructor. Setting it also turns the event ring on.
//    $HEAPTHERAPY_TELEMETRY_INTERVAL (ms, default 1000) paces the flush;
//    $HEAPTHERAPY_TELEMETRY_EVENTS=0/1 forces the ring off/on;
//    $HEAPTHERAPY_TELEMETRY_RING sets per-shard ring capacity;
//    $HEAPTHERAPY_TELEMETRY_COUNTERS=0 disables even the cheap counters.
//    Recording an event or counter never allocates (fixed-size rings and
//    tables); only the flusher thread allocates, off the hot path.
//  - The current CCID is the thread-local `ht_cc_current`, exported with C
//    linkage; the instrumentation pass (our progmodel interpreter stands in
//    for it; a real LLVM pass would emit the same symbol) keeps it updated.
//  - The real allocation work is delegated to glibc's __libc_* entry points
//    — calling std::malloc here would recurse into ourselves.
//
// Re-entrancy: the allocator performs no interposed allocations of its own
// while holding a shard lock (the quarantine stores its FIFO links inside
// the quarantined blocks), so the shard mutexes can be plain non-recursive
// locks. The only internal allocations happen during construction (patch
// table, shard array); the t_constructing flag routes those straight to
// libc, where they stay untagged and are later forwarded on free.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <climits>
#include <cstring>
#include <mutex>
#include <new>
#include <thread>

#include <unistd.h>

#include "patch/config_file.hpp"
#include "patch/patch_table.hpp"
#include "runtime/sharded_allocator.hpp"
#include "runtime/telemetry.hpp"

// glibc's real entry points.
extern "C" {
void* __libc_malloc(size_t);
void __libc_free(void*);
void* __libc_realloc(void*, size_t);
void* __libc_memalign(size_t, size_t);

/// The calling-context register maintained by instrumented code.
__thread std::uint64_t ht_cc_current = 0;
}

namespace {

using ht::patch::PatchTable;
using ht::runtime::ShardedAllocator;
using ht::runtime::ShardedAllocatorConfig;
using ht::runtime::GuardedAllocatorConfig;
using ht::runtime::UnderlyingAllocator;

UnderlyingAllocator libc_allocator() {
  UnderlyingAllocator u;
  u.malloc_fn = &__libc_malloc;
  u.free_fn = &__libc_free;
  u.realloc_fn = &__libc_realloc;
  u.memalign_fn = &__libc_memalign;
  return u;
}

// Storage with trivial destruction: the allocator must survive until the
// very last free in the process, so it is constructed in-place and never
// destroyed (static-destruction-order fiasco avoidance).
alignas(PatchTable) unsigned char table_storage[sizeof(PatchTable)];
alignas(ShardedAllocator) unsigned char allocator_storage[sizeof(ShardedAllocator)];
PatchTable* g_table = nullptr;
ShardedAllocator* g_allocator = nullptr;
// True on the thread currently constructing the global allocator. The
// constructors themselves allocate (patch table, shard array), and those
// allocations re-enter the interposed malloc; they must fall straight
// through to libc or the bootstrap recurses forever. Thread-local because
// other threads' traffic must NOT bypass the allocator meanwhile.
thread_local bool t_constructing = false;

// Serializes construction only; never taken on the allocation fast path.
std::mutex& init_mutex() {
  static std::mutex m;
  return m;
}

// ---- Telemetry flusher ($HEAPTHERAPY_TELEMETRY) ----
// The path is the env template with %p/%% expanded (each process in a
// fleet writes its own dump). Function-static so first use constructs it;
// it is only ever written in the ELF constructor, before host threads
// exist. All flushing runs on the background thread or in the ELF
// destructor — never on an allocation path.
std::string& telemetry_path() {
  static std::string path;
  return path;
}
unsigned long g_flush_interval_ms = 1000;
std::atomic<bool> g_flusher_running{false};

// One flush at a time: the periodic thread and the destructor's final
// flush must not interleave writes to the same file.
std::mutex& flush_mutex() {
  static std::mutex m;
  return m;
}

void flush_telemetry_file() {
  if (telemetry_path().empty() || g_allocator == nullptr) return;
  const std::lock_guard<std::mutex> lock(flush_mutex());
  const std::string dump =
      ht::runtime::render_telemetry(g_allocator->telemetry_snapshot());
  // Write-then-rename so a reader polling the path always sees a complete
  // dump (the previous one, or the new one) — never a half-written file.
  const std::string tmp = telemetry_path() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;
  const bool wrote = std::fwrite(dump.data(), 1, dump.size(), f) == dump.size();
  const bool closed = std::fclose(f) == 0;
  if (wrote && closed) {
    std::rename(tmp.c_str(), telemetry_path().c_str());
  } else {
    std::remove(tmp.c_str());
  }
}

void telemetry_flusher() {
  while (g_flusher_running.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(g_flush_interval_ms));
    flush_telemetry_file();
  }
}

ShardedAllocator& allocator() {
  // First call can arrive before the constructor function runs (the dynamic
  // loader allocates); bootstrap with an empty table. heaptherapy_init later
  // rebuilds in place with the real config — by then it runs on the ELF
  // constructor's thread, before the host spawns threads.
  if (g_allocator == nullptr) {
    const std::lock_guard<std::mutex> lock(init_mutex());
    if (g_allocator == nullptr) {
      t_constructing = true;
      std::vector<ht::patch::Patch> none;
      g_table = new (table_storage) PatchTable(none, /*freeze=*/true);
      g_allocator = new (allocator_storage)
          ShardedAllocator(g_table, {}, {}, libc_allocator());
      t_constructing = false;
    }
  }
  return *g_allocator;
}

__attribute__((constructor)) void heaptherapy_init() {
  const char* path = std::getenv("HEAPTHERAPY_CONFIG");
  std::vector<ht::patch::Patch> patches;
  if (path != nullptr) {
    if (const auto loaded = ht::patch::load_config_file(path)) {
      patches = loaded->patches;
      for (const std::string& err : loaded->errors) {
        std::fprintf(stderr, "heaptherapy: config %s: %s\n", path, err.c_str());
      }
    } else {
      std::fprintf(stderr, "heaptherapy: cannot read config %s\n", path);
    }
  }
  GuardedAllocatorConfig config;
  if (const char* quota = std::getenv("HEAPTHERAPY_QUARANTINE")) {
    config.quarantine_quota_bytes = std::strtoull(quota, nullptr, 10);
  }
  ShardedAllocatorConfig sharding;
  if (const char* shards = std::getenv("HEAPTHERAPY_SHARDS")) {
    sharding.shards = static_cast<std::uint32_t>(std::strtoul(shards, nullptr, 10));
  }
  if (const char* telemetry = std::getenv("HEAPTHERAPY_TELEMETRY")) {
    // %p -> pid, %% -> % (docs/OBSERVABILITY.md): each process of a fleet
    // sharing this environment writes its own dump for htagg to merge.
    telemetry_path() =
        ht::runtime::expand_telemetry_path(telemetry, static_cast<long>(getpid()));
  }
  // A flush target implies the event ring; explicit knobs override either
  // direction.
  config.telemetry.events = !telemetry_path().empty();
  if (const char* events = std::getenv("HEAPTHERAPY_TELEMETRY_EVENTS")) {
    config.telemetry.events = std::strtoul(events, nullptr, 10) != 0;
  }
  if (const char* ring = std::getenv("HEAPTHERAPY_TELEMETRY_RING")) {
    config.telemetry.ring_capacity =
        static_cast<std::uint32_t>(std::strtoul(ring, nullptr, 10));
  }
  if (const char* counters = std::getenv("HEAPTHERAPY_TELEMETRY_COUNTERS")) {
    config.telemetry.counters = std::strtoul(counters, nullptr, 10) != 0;
  }
  if (const char* interval = std::getenv("HEAPTHERAPY_TELEMETRY_INTERVAL")) {
    g_flush_interval_ms = std::strtoul(interval, nullptr, 10);
    if (g_flush_interval_ms == 0) g_flush_interval_ms = 1;
  }
  {
    const std::lock_guard<std::mutex> lock(init_mutex());
    // Rebuilding over a bootstrapped instance intentionally leaks its (tiny)
    // internal state; outstanding buffers keep working because the header
    // tags and layouts are instance-independent. This runs in the ELF
    // constructor phase, before host threads exist.
    t_constructing = true;
    g_table = new (table_storage) PatchTable(patches, /*freeze=*/true);
    g_allocator = new (allocator_storage)
        ShardedAllocator(g_table, config, sharding, libc_allocator());
    t_constructing = false;
  }
  if (!telemetry_path().empty()) {
    g_flusher_running.store(true, std::memory_order_relaxed);
    std::thread(telemetry_flusher).detach();
  }
}

__attribute__((destructor)) void heaptherapy_fini() {
  // Stop the periodic thread (best effort; it may be mid-sleep — the flush
  // mutex keeps a straggling iteration from interleaving with ours) and
  // write the final dump.
  g_flusher_running.store(false, std::memory_order_relaxed);
  flush_telemetry_file();
}

}  // namespace

extern "C" {

void* malloc(size_t size) {
  if (t_constructing) return __libc_malloc(size);
  return allocator().malloc(size, ht_cc_current);
}

void* calloc(size_t count, size_t size) {
  if (t_constructing) {
    void* p = (size != 0 && count > SIZE_MAX / size) ? nullptr
                                                     : __libc_malloc(count * size);
    if (p != nullptr) std::memset(p, 0, count * size);
    return p;
  }
  return allocator().calloc(count, size, ht_cc_current);
}

void* realloc(void* p, size_t size) {
  if (t_constructing) return __libc_realloc(p, size);
  return allocator().realloc(p, size, ht_cc_current);
}

void* memalign(size_t alignment, size_t size) {
  if (t_constructing) return __libc_memalign(alignment, size);
  return allocator().memalign(alignment, size, ht_cc_current);
}

void* aligned_alloc(size_t alignment, size_t size) {
  if (t_constructing) return __libc_memalign(alignment, size);
  return allocator().aligned_alloc(alignment, size, ht_cc_current);
}

int posix_memalign(void** out, size_t alignment, size_t size) {
  // glibc declares `out` nonnull, but a defensive shim verifies anyway;
  // read through a volatile copy so the check is not "optimized" into a
  // -Wnonnull-compare warning.
  void** volatile out_checked = out;
  if (out_checked == nullptr || alignment % sizeof(void*) != 0 ||
      (alignment & (alignment - 1)) != 0) {
    return 22;  // EINVAL
  }
  void* p = allocator().memalign(alignment, size, ht_cc_current);
  if (p == nullptr) return 12;  // ENOMEM
  *out = p;
  return 0;
}

void* valloc(size_t size) {
  if (t_constructing) return __libc_memalign(4096, size);
  return allocator().memalign(4096, size, ht_cc_current);
}

void* pvalloc(size_t size) {
  const size_t rounded = (size + 4095) / 4096 * 4096;
  if (t_constructing) return __libc_memalign(4096, rounded);
  return allocator().memalign(4096, rounded, ht_cc_current);
}

void* reallocarray(void* p, size_t count, size_t size) {
  if (size != 0 && count > SIZE_MAX / size) return nullptr;
  if (t_constructing) return __libc_realloc(p, count * size);
  return allocator().realloc(p, count * size, ht_cc_current);
}

void free(void* p) {
  if (t_constructing) {
    // Only construction-phase (untagged) allocations can be freed here.
    if (p != nullptr) __libc_free(p);
    return;
  }
  allocator().free(p);
}

}  // extern "C"
