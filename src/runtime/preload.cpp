// heaptherapy_preload: the deployable interposition library (§VI-VII).
//
// Build product: libheaptherapy_preload.so. Loaded before libc (via
// LD_PRELOAD or LDLIBS), its exported malloc family shadows libc's, so every
// allocation in the host process flows through a global GuardedAllocator.
//
//  - Patches are read from the file named by $HEAPTHERAPY_CONFIG in a
//    constructor function, into a table whose pages are then frozen
//    read-only (§VI).
//  - The current CCID is the thread-local `ht_cc_current`, exported with C
//    linkage; the instrumentation pass (our progmodel interpreter stands in
//    for it; a real LLVM pass would emit the same symbol) keeps it updated.
//  - The real allocation work is delegated to glibc's __libc_* entry points
//    — calling std::malloc here would recurse into ourselves.
//
// Internal allocations made by this library (quarantine bookkeeping) do go
// through the interposed malloc; they take the unpatched fast path and
// terminate, so the recursion is depth-one and benign.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <climits>
#include <cstring>
#include <mutex>
#include <new>

#include "patch/config_file.hpp"
#include "patch/patch_table.hpp"
#include "runtime/guarded_allocator.hpp"

// glibc's real entry points.
extern "C" {
void* __libc_malloc(size_t);
void __libc_free(void*);
void* __libc_realloc(void*, size_t);
void* __libc_memalign(size_t, size_t);

/// The calling-context register maintained by instrumented code.
__thread std::uint64_t ht_cc_current = 0;
}

namespace {

using ht::patch::PatchTable;
using ht::runtime::GuardedAllocator;
using ht::runtime::GuardedAllocatorConfig;
using ht::runtime::UnderlyingAllocator;

// Recursive: quarantine bookkeeping inside the allocator may allocate,
// re-entering the interposed malloc on the same thread.
std::recursive_mutex& allocator_mutex() {
  static std::recursive_mutex m;
  return m;
}

UnderlyingAllocator libc_allocator() {
  UnderlyingAllocator u;
  u.malloc_fn = &__libc_malloc;
  u.free_fn = &__libc_free;
  u.realloc_fn = &__libc_realloc;
  u.memalign_fn = &__libc_memalign;
  return u;
}

// Storage with trivial destruction: the allocator must survive until the
// very last free in the process, so it is constructed in-place and never
// destroyed (static-destruction-order fiasco avoidance).
alignas(PatchTable) unsigned char table_storage[sizeof(PatchTable)];
alignas(GuardedAllocator) unsigned char allocator_storage[sizeof(GuardedAllocator)];
PatchTable* g_table = nullptr;
GuardedAllocator* g_allocator = nullptr;
// True while the global allocator (or its replacement during init) is being
// constructed. The constructors themselves allocate (quarantine
// bookkeeping), and those allocations re-enter the interposed malloc; they
// must fall straight through to libc or the bootstrap recurses forever.
bool g_constructing = false;

GuardedAllocator& allocator() {
  if (g_allocator == nullptr) {
    // First call can arrive before the constructor function runs (the
    // dynamic loader allocates); bootstrap with an empty table.
    g_constructing = true;
    std::vector<ht::patch::Patch> none;
    g_table = new (table_storage) PatchTable(none, /*freeze=*/true);
    g_allocator =
        new (allocator_storage) GuardedAllocator(g_table, {}, libc_allocator());
    g_constructing = false;
  }
  return *g_allocator;
}

__attribute__((constructor)) void heaptherapy_init() {
  const char* path = std::getenv("HEAPTHERAPY_CONFIG");
  std::vector<ht::patch::Patch> patches;
  if (path != nullptr) {
    if (const auto loaded = ht::patch::load_config_file(path)) {
      patches = loaded->patches;
      for (const std::string& err : loaded->errors) {
        std::fprintf(stderr, "heaptherapy: config %s: %s\n", path, err.c_str());
      }
    } else {
      std::fprintf(stderr, "heaptherapy: cannot read config %s\n", path);
    }
  }
  GuardedAllocatorConfig config;
  if (const char* quota = std::getenv("HEAPTHERAPY_QUARANTINE")) {
    config.quarantine_quota_bytes = std::strtoull(quota, nullptr, 10);
  }
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  // Rebuilding over a bootstrapped instance intentionally leaks its (tiny)
  // internal state; outstanding buffers keep working because the header
  // tags and layouts are instance-independent.
  g_constructing = true;
  g_table = new (table_storage) PatchTable(patches, /*freeze=*/true);
  g_allocator =
      new (allocator_storage) GuardedAllocator(g_table, config, libc_allocator());
  g_constructing = false;
}

}  // namespace

extern "C" {

void* malloc(size_t size) {
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  if (g_constructing) return __libc_malloc(size);
  return allocator().malloc(size, ht_cc_current);
}

void* calloc(size_t count, size_t size) {
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  if (g_constructing) {
    void* p = (size != 0 && count > SIZE_MAX / size) ? nullptr
                                                     : __libc_malloc(count * size);
    if (p != nullptr) std::memset(p, 0, count * size);
    return p;
  }
  return allocator().calloc(count, size, ht_cc_current);
}

void* realloc(void* p, size_t size) {
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  if (g_constructing) return __libc_realloc(p, size);
  return allocator().realloc(p, size, ht_cc_current);
}

void* memalign(size_t alignment, size_t size) {
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  if (g_constructing) return __libc_memalign(alignment, size);
  return allocator().memalign(alignment, size, ht_cc_current);
}

void* aligned_alloc(size_t alignment, size_t size) {
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  if (g_constructing) return __libc_memalign(alignment, size);
  return allocator().aligned_alloc(alignment, size, ht_cc_current);
}

int posix_memalign(void** out, size_t alignment, size_t size) {
  // glibc declares `out` nonnull, but a defensive shim verifies anyway;
  // read through a volatile copy so the check is not "optimized" into a
  // -Wnonnull-compare warning.
  void** volatile out_checked = out;
  if (out_checked == nullptr || alignment % sizeof(void*) != 0 ||
      (alignment & (alignment - 1)) != 0) {
    return 22;  // EINVAL
  }
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  void* p = allocator().memalign(alignment, size, ht_cc_current);
  if (p == nullptr) return 12;  // ENOMEM
  *out = p;
  return 0;
}

void* valloc(size_t size) {
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  if (g_constructing) return __libc_memalign(4096, size);
  return allocator().memalign(4096, size, ht_cc_current);
}

void* pvalloc(size_t size) {
  const size_t rounded = (size + 4095) / 4096 * 4096;
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  if (g_constructing) return __libc_memalign(4096, rounded);
  return allocator().memalign(4096, rounded, ht_cc_current);
}

void* reallocarray(void* p, size_t count, size_t size) {
  if (size != 0 && count > SIZE_MAX / size) return nullptr;
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  if (g_constructing) return __libc_realloc(p, count * size);
  return allocator().realloc(p, count * size, ht_cc_current);
}

void free(void* p) {
  std::lock_guard<std::recursive_mutex> lock(allocator_mutex());
  if (g_constructing) {
    // Only construction-phase (untagged) allocations can be freed here.
    if (p != nullptr) __libc_free(p);
    return;
  }
  allocator().free(p);
}

}  // extern "C"
