// Continuous CCID-attributed heap profiling (docs/OBSERVABILITY.md §9).
//
// The paper's premise is that the allocation-time calling context
// {FUN, CCID} is cheap enough to compute on EVERY allocation — so once it
// is paid for, the same context can attribute the heap itself, not just
// the defenses. This module turns that into an always-on sampled profiler:
//
//  - HeapCensus      per-sink {FUN, CCID} -> live bytes/objects + cumulative
//                    alloc/free counts. Plain (non-atomic) fields bumped
//                    under the owning context's serialization, exactly like
//                    the patch-hit table. Sampled values are scaled by the
//                    sampling rate so the census is an unbiased estimator
//                    of the exact census.
//  - AgeHistogram    log2 object-lifetime histogram, recorded at free time
//                    for sampled objects. Counts are UNSCALED — a uniform
//                    1-in-N sample leaves every percentile unchanged, and
//                    percentiles are all this histogram feeds.
//  - HeapProfileRegistry
//                    engine-wide open-addressing pointer -> {fn, ccid,
//                    size, alloc_ns} table for the sampled live set. All
//                    fields are atomics (pointer CAS claims a slot, release
//                    store publishes it) so inserts/removes from any shard
//                    and concurrent snapshot scans stay data-race-free
//                    without a lock. Snapshot scans tolerate generation
//                    mixing: a slot reused mid-scan yields one plausible
//                    entry, never a torn one.
//
// Sampling (HEAPTHERAPY_HEAPPROF=N => profile ~1 in N allocations) keeps
// the enabled cost inside the ≤2% contract enforced by
// bench/ht_heapprof_overhead; rate 0 disables the whole path behind a
// single branch. Only plain-layout allocations are profiled: guarded
// buffers keep their size in the guard page and have no spare metadata
// bit, and they are rare by construction (one per patched overflow site).
//
// Leak aging: at snapshot time the engine computes a threshold from the
// merged age histogram (the configured percentile of observed lifetimes,
// default p99) and counts live sampled objects older than that threshold
// as leak suspects, attributed to their {FUN, CCID}. A context whose
// objects persistently outlive the fleet's p99 lifetime is either a cache
// or a leak — either way the operator can now see it.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

namespace ht::runtime {

/// Calibrates the profiler timestamp clock (idempotent; the first call
/// spins ~200us against the steady clock to measure the TSC rate). Called
/// from HeapProfileRegistry::configure(), i.e. before any sample can be
/// taken, so every timestamp a process records shares one epoch.
void heap_profile_clock_init() noexcept;

/// Monotonic nanoseconds since an arbitrary per-process epoch, for
/// profiler timestamps (allocation stamps, ages at free, suspect scans).
/// On x86 this is one RDTSC plus a fixed-point multiply (~7ns) instead of
/// a ~30ns clock_gettime — the profiler reads a clock twice per sampled
/// object, and those two calls would otherwise dominate the sampled-path
/// budget (bench/ht_heapprof_overhead). Falls back to the steady clock on
/// other architectures or when calibration failed. Log2 age buckets
/// tolerate the calibration error (well under 0.1%).
std::uint64_t heap_profile_clock_ns() noexcept;

/// Log2 histogram of sampled object lifetimes (free_ns - alloc_ns).
/// Bucket i counts frees whose age was < 2^(i + kAgeShift) ns; the last
/// bucket is unbounded. Mirrors LatencyHistogram, but with more buckets
/// and a higher base: object lifetimes span microseconds to minutes.
struct AgeHistogram {
  static constexpr std::uint32_t kBuckets = 32;
  static constexpr std::uint32_t kAgeShift = 10;  ///< bucket 0: < 1024 ns

  std::uint64_t buckets[kBuckets] = {};

  void record(std::uint64_t ns) noexcept {
    // Bit-scan instead of a limit-by-limit walk: this runs on the sampled
    // free path, and a minutes-old object would walk ~30 limits.
    const std::uint32_t b = static_cast<std::uint32_t>(
        std::bit_width(ns >> kAgeShift));
    ++buckets[b < kBuckets ? b : kBuckets - 1];
  }
  /// Upper bound (exclusive) of bucket `i` in ns; 0 for the unbounded last.
  [[nodiscard]] static std::uint64_t bucket_limit_ns(std::uint32_t i) noexcept {
    return i + 1 < kBuckets ? (1ULL << (i + kAgeShift)) : 0;
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (std::uint64_t c : buckets) sum += c;
    return sum;
  }
  /// Smallest bucket limit whose cumulative count reaches `pct` percent of
  /// all recorded frees. Returns 0 when the histogram is empty (no
  /// threshold can be derived yet). A percentile landing in the unbounded
  /// last bucket yields the largest finite limit.
  [[nodiscard]] std::uint64_t percentile_limit_ns(std::uint8_t pct) const noexcept {
    const std::uint64_t sum = total();
    if (sum == 0) return 0;
    // ceil(sum * pct / 100) observations must fall at or below the limit.
    const std::uint64_t need = (sum * pct + 99) / 100;
    std::uint64_t cum = 0;
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
      cum += buckets[i];
      if (cum >= need) {
        return i + 1 < kBuckets ? bucket_limit_ns(i)
                                : bucket_limit_ns(kBuckets - 2);
      }
    }
    return bucket_limit_ns(kBuckets - 2);
  }
  AgeHistogram& operator+=(const AgeHistogram& other) noexcept {
    for (std::uint32_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
    return *this;
  }
};

/// One merged census row of a snapshot or aggregate. live_* fields are
/// SIGNED: with pointer-hash free routing an object sampled on shard A can
/// be freed on shard B, so a single shard's contribution may be negative;
/// the totals over all shards are non-negative.
struct HeapCensusRow {
  std::uint8_t fn = 0;            ///< progmodel::AllocFn index
  std::uint64_t ccid = 0;
  std::int64_t live_bytes = 0;    ///< estimated bytes currently live
  std::int64_t live_objects = 0;  ///< estimated objects currently live
  std::uint64_t allocs = 0;       ///< estimated cumulative allocations
  std::uint64_t frees = 0;        ///< estimated cumulative frees
  std::uint64_t suspects = 0;     ///< estimated live objects past age threshold
};

/// Fixed-size open-addressing {FUN, CCID} -> census table, one per
/// TelemetrySink. Same discipline as the patch-hit table: plain fields,
/// bumped under the owning context's serialization, allocation-free copy
/// for snapshot merges. Sampled contributions are pre-scaled by the
/// sampling rate by the caller. Overflow (more distinct contexts than
/// kSlots) is counted, never dropped silently.
class HeapCensus {
 public:
  static constexpr std::uint32_t kSlots = 256;

  void record_alloc(std::uint8_t fn, std::uint64_t ccid, std::uint64_t size,
                    std::uint32_t rate) noexcept {
    Slot* s = find_or_insert(fn, ccid);
    if (s == nullptr) {
      ++overflow_;
      return;
    }
    s->live_bytes += static_cast<std::int64_t>(size * rate);
    s->live_objects += rate;
    s->allocs += rate;
  }
  void record_free(std::uint8_t fn, std::uint64_t ccid, std::uint64_t size,
                   std::uint32_t rate) noexcept {
    Slot* s = find_or_insert(fn, ccid);
    if (s == nullptr) {
      ++overflow_;
      return;
    }
    s->live_bytes -= static_cast<std::int64_t>(size * rate);
    s->live_objects -= rate;
    s->frees += rate;
  }

  /// Allocation-free copy of the used slots into the caller's buffer
  /// (kSlots is always enough); returns the count. Mirrors
  /// TelemetrySink::copy_patch_hits — snapshot merges run under shard
  /// locks of an interposed allocator, where allocating can self-deadlock.
  std::uint32_t copy_rows(HeapCensusRow* out, std::uint32_t max) const noexcept {
    std::uint32_t n = 0;
    for (const Slot& s : slots_) {
      if (!s.used || n >= max) continue;
      out[n].fn = s.fn;
      out[n].ccid = s.ccid;
      out[n].live_bytes = s.live_bytes;
      out[n].live_objects = s.live_objects;
      out[n].allocs = s.allocs;
      out[n].frees = s.frees;
      out[n].suspects = 0;
      ++n;
    }
    return n;
  }
  /// Sampled operations not counted because the fixed table filled up.
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

 private:
  struct Slot {
    std::uint64_t ccid = 0;
    std::int64_t live_bytes = 0;
    std::int64_t live_objects = 0;
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint8_t fn = 0;
    bool used = false;
  };

  Slot* find_or_insert(std::uint8_t fn, std::uint64_t ccid) noexcept {
    // Same multiplicative hash as the patch-hit table.
    const std::uint64_t h =
        (ccid * 0x9e3779b97f4a7c15ULL) ^ static_cast<std::uint64_t>(fn);
    for (std::uint32_t i = 0; i < kSlots; ++i) {
      Slot& s = slots_[(h + i) % kSlots];
      if (s.used && s.ccid == ccid && s.fn == fn) return &s;
      if (!s.used) {
        s.used = true;
        s.ccid = ccid;
        s.fn = fn;
        return &s;
      }
    }
    return nullptr;
  }

  Slot slots_[kSlots] = {};
  std::uint64_t overflow_ = 0;
};

/// One live sampled allocation, as copied out of the registry.
struct HeapLiveEntry {
  std::uint8_t fn = 0;
  std::uint64_t ccid = 0;
  std::uint64_t size = 0;
  std::uint64_t alloc_ns = 0;  ///< steady-clock allocation timestamp
};

/// Engine-wide pointer -> {fn, ccid, size, alloc_ns} table for the sampled
/// live set. Lock-free: every field is an atomic, and the pointer word is
/// the publication flag (0 = empty, kBusy = mid-transition, else the user
/// pointer, store-released after the payload fields). Inserts and removes
/// race freely across shards; a full probe window without a free slot
/// counts as overflow (the allocation simply goes unprofiled — its
/// metadata bit stays clear, so the free side never looks for it).
class HeapProfileRegistry {
 public:
  static constexpr std::uint32_t kSlots = 4096;  ///< power of two
  static constexpr std::uint32_t kProbeCap = 64;
  static constexpr std::uintptr_t kBusy = 1;

  HeapProfileRegistry() = default;
  HeapProfileRegistry(const HeapProfileRegistry&) = delete;
  HeapProfileRegistry& operator=(const HeapProfileRegistry&) = delete;

  /// Allocates the slot array (construction time only; ~128 KiB). Leaving
  /// the registry unconfigured keeps insert/remove as cheap no-ops.
  void configure();
  [[nodiscard]] bool enabled() const noexcept { return slots_ != nullptr; }

  /// Claims a slot for `user`. Returns false (and counts overflow) when no
  /// slot frees up within the probe window — the caller must then NOT mark
  /// the allocation as profiled.
  bool insert(const void* user, std::uint8_t fn, std::uint64_t ccid,
              std::uint64_t size, std::uint64_t alloc_ns) noexcept;
  /// Removes the entry for `user`, filling `out`. Returns false when the
  /// pointer is not present (which a correctly maintained metadata bit
  /// makes impossible — the check is defensive).
  bool remove(const void* user, HeapLiveEntry& out) noexcept;

  /// Copies up to `max` currently live entries into `out`; returns the
  /// count. Entries inserted or removed during the scan may or may not
  /// appear — the scan is a point-in-time estimate, not a barrier.
  std::uint32_t snapshot_live(HeapLiveEntry* out, std::uint32_t max) const noexcept;

  /// Sampled allocations that found no free slot (went unprofiled).
  [[nodiscard]] std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uintptr_t> ptr{0};
    std::atomic<std::uint64_t> ccid{0};
    /// (size << 8) | fn — packed so the payload stays three words.
    std::atomic<std::uint64_t> size_fn{0};
    std::atomic<std::uint64_t> alloc_ns{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> overflow_{0};
};

}  // namespace ht::runtime
