#include "runtime/sharded_allocator.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "support/hash.hpp"

namespace ht::runtime {

using progmodel::AllocFn;

namespace {

std::uint32_t round_up_pow2_u32(std::uint32_t n) {
  std::uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint32_t resolve_shard_count(std::uint32_t requested) {
  std::uint32_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 4;
  }
  n = round_up_pow2_u32(n);
  if (n > ShardedAllocatorConfig::kMaxShards) n = ShardedAllocatorConfig::kMaxShards;
  return n;
}

}  // namespace

ShardedAllocator::ShardedAllocator(const patch::PatchTable* patches,
                                   GuardedAllocatorConfig config,
                                   ShardedAllocatorConfig sharding,
                                   UnderlyingAllocator underlying)
    : engine_(patches, config, underlying),
      shard_count_(resolve_shard_count(sharding.shards)),
      shard_mask_(shard_count_ - 1),
      shards_(new Shard[shard_count_]) {
  init_shards(config, underlying);
}

ShardedAllocator::ShardedAllocator(const patch::PatchTableSwap& swap,
                                   GuardedAllocatorConfig config,
                                   ShardedAllocatorConfig sharding,
                                   UnderlyingAllocator underlying)
    : engine_(swap, config, underlying),
      shard_count_(resolve_shard_count(sharding.shards)),
      shard_mask_(shard_count_ - 1),
      shards_(new Shard[shard_count_]) {
  init_shards(config, underlying);
}

void ShardedAllocator::init_shards(const GuardedAllocatorConfig& config,
                                   UnderlyingAllocator underlying) {
  // Partition the byte quota: each shard's quarantine independently manages
  // a 1/N slice, so the process-wide quarantine footprint still honors the
  // configured quota without any cross-shard accounting. Every shard gets
  // at least one page so a tiny quota doesn't degenerate to zero deferral.
  const std::uint64_t slice =
      std::max<std::uint64_t>(config.quarantine_quota_bytes / shard_count_, 4096);
  for (std::uint32_t i = 0; i < shard_count_; ++i) {
    shards_[i].quarantine.configure(slice, underlying);
    shards_[i].telemetry.configure(config.telemetry,
                                   static_cast<std::uint16_t>(i));
    shards_[i].quarantine.set_telemetry(&shards_[i].telemetry);
  }
  if (const patch::PatchTable* table = engine_.patches(); table != nullptr) {
    // The load event is recorded once, on shard 0 — one table bind, not one
    // per shard.
    shards_[0].telemetry.record_event(
        TelemetryEvent::kPatchTableLoad, /*ccid=*/0, table->patch_count(),
        static_cast<std::uint32_t>(table->generation()));
  }
}

std::uint32_t ShardedAllocator::home_shard() const noexcept {
  // Round-robin thread slots give an even spread even when thread ids
  // cluster. The slot is global (one per thread, not per allocator); each
  // allocator masks it down to its own shard count.
  static std::atomic<std::uint32_t> next_slot{0};
  thread_local const std::uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot & shard_mask_;
}

std::uint32_t ShardedAllocator::shard_of(const void* p) const noexcept {
  // Drop the low alignment bits before mixing so 16-byte-aligned user
  // pointers spread over all shards.
  return static_cast<std::uint32_t>(
             support::mix64(reinterpret_cast<std::uint64_t>(p) >> 4)) &
         shard_mask_;
}

void* ShardedAllocator::allocate_on_home(AllocFn fn, std::uint64_t size,
                                         std::uint64_t alignment,
                                         std::uint64_t ccid) {
  Shard& shard = shards_[home_shard()];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return engine_.allocate(fn, size, alignment, ccid, shard.stats,
                          &shard.telemetry);
}

void* ShardedAllocator::malloc(std::uint64_t size, std::uint64_t ccid) {
  return allocate_on_home(AllocFn::kMalloc, size, 0, ccid);
}

void* ShardedAllocator::calloc(std::uint64_t count, std::uint64_t size,
                               std::uint64_t ccid) {
  Shard& shard = shards_[home_shard()];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return engine_.calloc(count, size, ccid, shard.stats, &shard.telemetry);
}

void* ShardedAllocator::memalign(std::uint64_t alignment, std::uint64_t size,
                                 std::uint64_t ccid) {
  return allocate_on_home(AllocFn::kMemalign, size, alignment, ccid);
}

void* ShardedAllocator::aligned_alloc(std::uint64_t alignment, std::uint64_t size,
                                      std::uint64_t ccid) {
  return allocate_on_home(AllocFn::kAlignedAlloc, size, alignment, ccid);
}

void* ShardedAllocator::realloc(void* p, std::uint64_t new_size, std::uint64_t ccid) {
  if (p == nullptr) return allocate_on_home(AllocFn::kRealloc, new_size, 0, ccid);
  if (engine_.config().forward_only || !owns(p)) {
    return engine_.underlying().realloc_fn(p, new_size);
  }
  if (new_size == 0) {
    free(p);
    return nullptr;
  }
  // Allocate-copy-free, one shard lock at a time (never nested): the fresh
  // buffer comes from the calling thread's home shard, the old block's free
  // routes by pointer hash like any other free.
  const std::uint64_t old_size = engine_.user_size(p);
  void* fresh = allocate_on_home(AllocFn::kRealloc, new_size, 0, ccid);
  if (fresh == nullptr) return nullptr;
  std::memcpy(fresh, p, old_size < new_size ? old_size : new_size);
  free(p);
  return fresh;
}

void ShardedAllocator::free(void* p) {
  if (p == nullptr) return;
  if (engine_.config().forward_only || !owns(p)) {
    engine_.underlying().free_fn(p);
    return;
  }
  Shard& shard = shards_[shard_of(p)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  engine_.free(p, shard.quarantine, shard.stats, &shard.telemetry);
}

AllocatorStats ShardedAllocator::stats_snapshot() const {
  AllocatorStats merged;
  for (std::uint32_t i = 0; i < shard_count_; ++i) {
    merged += shard_stats(i);
  }
  return merged;
}

AllocatorStats ShardedAllocator::shard_stats(std::uint32_t shard) const {
  const std::lock_guard<std::mutex> lock(shards_[shard].mutex);
  return shards_[shard].stats;
}

std::uint64_t ShardedAllocator::quarantined_bytes() const {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < shard_count_; ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i].mutex);
    total += shards_[i].quarantine.bytes();
  }
  return total;
}

void ShardedAllocator::drain_quarantines() {
  for (std::uint32_t i = 0; i < shard_count_; ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i].mutex);
    shards_[i].quarantine.drain();
  }
}

TelemetrySnapshot ShardedAllocator::telemetry_snapshot() const {
  TelemetrySnapshot snap;
  snap.config = engine_.config().telemetry;
  if (const patch::PatchTable* table = engine_.patches(); table != nullptr) {
    snap.table_generation = table->generation();
    snap.table_patches = table->patch_count();
  }
  // All snapshot storage is reserved BEFORE the first shard lock: under
  // LD_PRELOAD this allocator IS the process allocator, so a vector growth
  // inside a locked section would re-enter malloc and could try to take the
  // very shard lock being held. Ring capacities are fixed at construction,
  // so the reservation is exact.
  std::uint64_t ring_total = 0;
  for (std::uint32_t i = 0; i < shard_count_; ++i) {
    ring_total += shards_[i].telemetry.ring().capacity();
  }
  reserve_snapshot(snap, shard_count_, ring_total);
  snap.bypass = engine_.config().forward_only;
  for (std::uint32_t i = 0; i < shard_count_; ++i) {
    const Shard& shard = shards_[i];
    // Counters and occupancy are copied under the shard lock (the same
    // discipline as shard_stats); the ring snapshot inside the merge is
    // lock-free and merely happens to run under it too.
    const std::lock_guard<std::mutex> lock(shard.mutex);
    merge_sink_into_snapshot(snap, shard.telemetry, i, shard.stats,
                             shard.quarantine.bytes(),
                             shard.quarantine.depth(),
                             shard.quarantine.pressure_events());
  }
  // Candidates are engine-wide (not per shard); copied outside any shard
  // lock because the snapshot allocates its result vector.
  snap.candidates = engine_.candidates().snapshot();
  snap.candidate_overflow = engine_.candidates().overflow();
  // Leak suspects likewise run outside the shard locks: the live-registry
  // scan appends census rows, which may grow the vector.
  engine_.collect_heap_suspects(snap);
  finalize_snapshot(snap);
  return snap;
}

}  // namespace ht::runtime
