#include "runtime/metadata.hpp"

namespace ht::runtime {

namespace {
constexpr std::uint64_t kVulnMaskBits = 0x7;
constexpr std::uint64_t kAlignedBit = 1ULL << 3;
// Guarded layout.
constexpr unsigned kGuardFrameShift = 4;
constexpr std::uint64_t kGuardFrameMask = (1ULL << 36) - 1;
constexpr unsigned kGuardAlignShift = 40;
// Plain layout.
constexpr unsigned kSizeShift = 4;
constexpr std::uint64_t kSizeMask = (1ULL << 48) - 1;
constexpr unsigned kPlainAlignShift = 52;
constexpr std::uint64_t kAlignMask = 0x3f;
constexpr std::uint64_t kCanaryBit = 1ULL << 58;
constexpr unsigned kPlainFnShift = 59;
constexpr std::uint64_t kFnMask = 0x7;
constexpr std::uint64_t kProfiledBit = 1ULL << 62;
}  // namespace

std::uint64_t encode_metadata(const MetadataWord& m) {
  if (m.vuln_mask > kVulnMaskBits) {
    throw std::invalid_argument("metadata: vuln mask exceeds 3 bits");
  }
  if (m.align_log2 > kAlignMask) {
    throw std::invalid_argument("metadata: alignment exponent exceeds 6 bits");
  }
  if (m.fn > kFnMask) {
    throw std::invalid_argument("metadata: alloc fn exceeds 3 bits");
  }
  std::uint64_t word = m.vuln_mask;
  if (m.aligned) word |= kAlignedBit;

  if (m.has_guard()) {
    if (m.guard_page_addr % kPageSize != 0) {
      throw std::invalid_argument("metadata: guard page address not page aligned");
    }
    const std::uint64_t frame = m.guard_page_addr / kPageSize;
    if (frame > kGuardFrameMask) {
      throw std::invalid_argument("metadata: guard page beyond 48-bit VA space");
    }
    word |= frame << kGuardFrameShift;
    word |= static_cast<std::uint64_t>(m.align_log2) << kGuardAlignShift;
  } else {
    if (m.user_size > kSizeMask) {
      throw std::invalid_argument("metadata: user size exceeds 48 bits");
    }
    word |= m.user_size << kSizeShift;
    word |= static_cast<std::uint64_t>(m.align_log2) << kPlainAlignShift;
    if (m.canary) word |= kCanaryBit;
    word |= static_cast<std::uint64_t>(m.fn) << kPlainFnShift;
    if (m.profiled) word |= kProfiledBit;
  }
  return word;
}

MetadataWord decode_metadata(std::uint64_t word) noexcept {
  MetadataWord m;
  m.vuln_mask = static_cast<std::uint8_t>(word & kVulnMaskBits);
  m.aligned = (word & kAlignedBit) != 0;
  if (m.has_guard()) {
    m.guard_page_addr = ((word >> kGuardFrameShift) & kGuardFrameMask) * kPageSize;
    m.align_log2 = static_cast<std::uint8_t>((word >> kGuardAlignShift) & kAlignMask);
  } else {
    m.user_size = (word >> kSizeShift) & kSizeMask;
    m.align_log2 = static_cast<std::uint8_t>((word >> kPlainAlignShift) & kAlignMask);
    m.canary = (word & kCanaryBit) != 0;
    m.fn = static_cast<std::uint8_t>((word >> kPlainFnShift) & kFnMask);
    m.profiled = (word & kProfiledBit) != 0;
  }
  return m;
}

std::uint64_t normalize_alignment(std::uint64_t alignment) noexcept {
  if (alignment <= 16) return 0;  // plain structures already give 16
  std::uint64_t pow2 = 16;
  while (pow2 < alignment) pow2 <<= 1;
  return pow2;
}

BufferLayout compute_layout(std::uint64_t size, std::uint64_t alignment, bool guard,
                            bool canary) {
  BufferLayout layout;
  layout.guarded = guard;
  const std::uint64_t align = normalize_alignment(alignment);
  if (align == 0) {
    // Structures 1 / 2: a 16-byte header keeps the user pointer 16-aligned.
    layout.user_offset = kPlainHeader;
    layout.raw_alignment = 0;
  } else {
    // Structures 3 / 4: the header is the padding field of size A; the
    // underlying allocation is A-aligned so user = raw + A is too.
    layout.user_offset = align;
    layout.raw_alignment = align;
  }
  layout.raw_size = layout.user_offset + size;
  // Canary trailer: the canary word plus the allocation-time CCID word the
  // free-path corruption check uses for candidate attribution.
  if (canary && !guard) layout.raw_size += 2 * sizeof(std::uint64_t);
  if (guard) {
    // Padding up to the next page boundary (worst case kPageSize-1) plus
    // the guard page itself; see file comment for the bound argument.
    layout.raw_size += (kPageSize - 1) + kPageSize;
  }
  return layout;
}

}  // namespace ht::runtime
