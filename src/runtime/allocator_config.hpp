// Defense configuration and per-allocator statistics, shared by every
// allocator front end (GuardedAllocator, LockedAllocator, ShardedAllocator).
//
// AllocatorStats is deliberately a plain struct of plain counters: each
// execution context (a single-threaded allocator, or one shard of a sharded
// allocator) owns a private instance it bumps without synchronization, and
// snapshots merge the instances. Keeping the hot path free of shared
// counters is a load-bearing design rule — a single process-wide atomic
// counter would put every allocating core on one cache line.
#pragma once

#include <cstdint>

namespace ht::patch {
class StaticHintSet;
}  // namespace ht::patch

namespace ht::runtime {

/// Observability configuration (src/runtime/telemetry.hpp implements it;
/// docs/OBSERVABILITY.md is the reference). Lives here so every allocator
/// front end carries it inside its GuardedAllocatorConfig.
struct TelemetryConfig {
  /// Cheap always-on tier: per-patch hit counters + enhancement-latency
  /// histogram. Costs a few increments on *enhanced* allocations only;
  /// bench/ht_telemetry_overhead holds it to <2% of service throughput.
  bool counters = true;
  /// Opt-in tier: the bounded lock-free detection-event ring.
  bool events = false;
  /// Per-context (per-shard) ring capacity in events; rounded up to a
  /// power of two. Ignored unless `events` is set.
  std::uint32_t ring_capacity = 256;
  /// Heap-profiling sampling rate: ~1 in N allocations is sampled into the
  /// live census + age histogram (docs/OBSERVABILITY.md §9). 0 disables
  /// the profiler behind a single branch on the allocation path.
  /// HEAPTHERAPY_HEAPPROF sets this under the preload shim.
  std::uint32_t heap_profile_rate = 0;
  /// Percentile of the observed object-lifetime distribution used as the
  /// leak-suspect age threshold (1..100; HEAPTHERAPY_HEAPPROF_PCTL).
  std::uint8_t heap_age_percentile = 99;
};

struct GuardedAllocatorConfig {
  std::uint64_t quarantine_quota_bytes = 16ULL << 20;  ///< online FIFO quota
  /// Interposition-only mode: forward straight to the underlying allocator
  /// with no metadata or table lookup. This isolates the pure interception
  /// cost (the 1.9% bar of Fig. 8).
  bool forward_only = false;
  /// Allow disabling real mprotect guard pages (for constrained
  /// environments); overflow patches then degrade to the canary defense
  /// below (when enabled) or metadata-only.
  bool use_guard_pages = true;
  /// Cap on simultaneously live guard pages across the whole engine
  /// (0 = unlimited). Each guard page costs a 4 KiB mapping plus two
  /// mprotect calls; a budget keeps a pathological allocation burst from
  /// exhausting VMAs. When the budget is spent, overflow-patched
  /// allocations step down the degradation ladder (canary, then plain)
  /// instead of failing — docs/RESILIENCE.md describes the ladder.
  std::uint64_t guard_page_budget = 0;

  // ---- Extensions beyond the paper (ablatable; see DESIGN.md) ----
  /// Fill quarantined UAF buffers with kPoisonByte so a dangling *read*
  /// returns poison rather than stale data (the paper's quarantine defers
  /// reuse but leaves contents intact).
  bool poison_quarantine = false;
  /// Plant a trailing canary word in overflow-patched buffers and verify
  /// it on free — a HeapTherapy-2015-style detect-on-free fallback that
  /// works where guard pages are unavailable or too expensive.
  bool use_canaries = false;
  /// Memoize {FUN, CCID} -> mask lookups in a thread-local cache in front
  /// of the read-only patch table (sound because tables are immutable;
  /// ablatable to measure the raw table-lookup cost).
  bool memoize_decisions = true;
  /// Self-healing loop (docs/SELF_HEALING.md): when the runtime detects a
  /// vulnerability (guard trap, landed OOB, stale reuse, canary corruption),
  /// synthesize a candidate patch {FUN, CCID, T} into the engine's lock-free
  /// candidate table so it can be journaled and validated for promotion.
  /// (The canary trailer always carries the allocation-time CCID for this
  /// attribution; the flag only gates recording.)
  bool synthesize_candidates = false;
  /// Static elision hints (htlint's PROVEN-SAFE contexts; see
  /// docs/STATIC_ANALYSIS.md). When set, the engine skips the patch-table
  /// lookup for hinted {FUN, CCID} pairs — those allocations are never
  /// enhanced, even if a patch names them (a hinted-and-patched context is
  /// an analyzer soundness bug, surfaced by the differential fuzz tests,
  /// not something the runtime arbitrates). Null disables. The set must
  /// outlive the allocator.
  const patch::StaticHintSet* static_hints = nullptr;
  /// Observability tiers (counters / event ring); see above.
  TelemetryConfig telemetry;

  static constexpr std::uint8_t kPoisonByte = 0xDE;
};

struct AllocatorStats {
  std::uint64_t interceptions = 0;   ///< every allocation-family call
  std::uint64_t enhanced = 0;        ///< allocations that matched a patch
  std::uint64_t guard_pages = 0;     ///< guard pages installed
  std::uint64_t zero_fills = 0;      ///< uninit-read zero-fill defenses
  std::uint64_t quarantined_frees = 0;
  std::uint64_t plain_frees = 0;
  std::uint64_t failed_guards = 0;   ///< mprotect failures (degraded)
  std::uint64_t canaries_planted = 0;        ///< extension: canary defense
  std::uint64_t canary_overflows_on_free = 0;  ///< overflow detected at free

  // Degradation-ladder counters (docs/RESILIENCE.md). Any nonzero value
  // here moves the snapshot health state from healthy to degraded.
  std::uint64_t guard_budget_denied = 0;  ///< guard skipped: budget spent
  std::uint64_t degraded_to_canary = 0;   ///< guard failed -> canary fallback
  std::uint64_t degraded_to_plain = 0;    ///< enhanced alloc retried plain
  std::uint64_t alloc_failures = 0;       ///< underlying alloc returned null

  /// Accumulates another context's counters (shard merge on snapshot).
  AllocatorStats& operator+=(const AllocatorStats& other) noexcept {
    interceptions += other.interceptions;
    enhanced += other.enhanced;
    guard_pages += other.guard_pages;
    zero_fills += other.zero_fills;
    quarantined_frees += other.quarantined_frees;
    plain_frees += other.plain_frees;
    failed_guards += other.failed_guards;
    canaries_planted += other.canaries_planted;
    canary_overflows_on_free += other.canary_overflows_on_free;
    guard_budget_denied += other.guard_budget_denied;
    degraded_to_canary += other.degraded_to_canary;
    degraded_to_plain += other.degraded_to_plain;
    alloc_failures += other.alloc_failures;
    return *this;
  }
};

}  // namespace ht::runtime
