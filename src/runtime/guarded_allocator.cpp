#include "runtime/guarded_allocator.hpp"

#include <sys/mman.h>

#include <cstring>

#include "support/hash.hpp"

namespace ht::runtime {

using progmodel::AllocFn;

GuardedAllocator::GuardedAllocator(const patch::PatchTable* patches,
                                   GuardedAllocatorConfig config,
                                   UnderlyingAllocator underlying)
    : patches_(patches),
      config_(config),
      underlying_(underlying),
      quarantine_(config.quarantine_quota_bytes, underlying) {}

GuardedAllocator::~GuardedAllocator() = default;

std::uint64_t GuardedAllocator::read_word(const void* user) noexcept {
  std::uint64_t word;
  std::memcpy(&word, static_cast<const char*>(user) - sizeof(word), sizeof(word));
  return word;
}

std::uint64_t GuardedAllocator::tag_for(const void* user) noexcept {
  // Pointer-dependent so a foreign heap byte pattern cannot collide except
  // with ~2^-64 probability.
  return support::mix64(reinterpret_cast<std::uint64_t>(user) ^
                        0x4854502b5441474cULL);  // "HTP+TAGL"
}

std::uint64_t GuardedAllocator::canary_for(const void* user) noexcept {
  return support::mix64(reinterpret_cast<std::uint64_t>(user) ^
                        0x43414e4152592b21ULL);  // "CANARY+!"
}

bool GuardedAllocator::owns(const void* p) noexcept {
  std::uint64_t tag;
  std::memcpy(&tag, static_cast<const char*>(p) - 2 * sizeof(tag), sizeof(tag));
  return tag == tag_for(p);
}

void* GuardedAllocator::raw_of(void* user, const MetadataWord& meta) noexcept {
  const std::uint64_t header =
      meta.aligned ? (1ULL << meta.align_log2) : kPlainHeader;
  return static_cast<char*>(user) - header;
}

void* GuardedAllocator::allocate(AllocFn fn, std::uint64_t size,
                                 std::uint64_t alignment, std::uint64_t ccid) {
  ++stats_.interceptions;
  if (config_.forward_only) {
    return alignment > 0 ? underlying_.memalign_fn(alignment, size)
                         : underlying_.malloc_fn(size);
  }

  const std::uint8_t mask =
      patches_ != nullptr ? patches_->lookup(fn, ccid) : 0;
  bool guard = (mask & patch::kOverflow) != 0 && config_.use_guard_pages;
  const bool canary =
      (mask & patch::kOverflow) != 0 && !guard && config_.use_canaries;

  const std::uint64_t norm_align = normalize_alignment(alignment);
  const BufferLayout layout = compute_layout(size, alignment, guard, canary);
  char* raw = static_cast<char*>(
      layout.raw_alignment > 0
          ? underlying_.memalign_fn(layout.raw_alignment, layout.raw_size)
          : underlying_.malloc_fn(layout.raw_size));
  if (raw == nullptr) return nullptr;
  char* user = raw + layout.user_offset;

  MetadataWord meta;
  meta.aligned = norm_align > 0;
  meta.align_log2 = meta.aligned ? log2_u64(norm_align) : 0;

  if (guard) {
    const std::uint64_t guard_addr =
        guard_page_address(reinterpret_cast<std::uint64_t>(user), size);
    // The user size lives in the first word of the guard page (Fig. 6); it
    // must be written before the page becomes inaccessible.
    std::memcpy(reinterpret_cast<void*>(guard_addr), &size, sizeof(size));
    if (::mprotect(reinterpret_cast<void*>(guard_addr), kPageSize, PROT_NONE) != 0) {
      // Degrade gracefully: metadata-only protection for this buffer.
      ++stats_.failed_guards;
      guard = false;
    } else {
      ++stats_.guard_pages;
      meta.vuln_mask = mask;  // includes the OVERFLOW bit
      meta.guard_page_addr = guard_addr;
    }
  }
  if (!guard) {
    // Without a live guard page the OVERFLOW bit must stay clear: bit 0
    // selects the metadata interpretation (guard locator vs. size field).
    meta.vuln_mask = mask & static_cast<std::uint8_t>(~patch::kOverflow);
    meta.user_size = size;
    if (canary) {
      // Detect-on-free fallback: plant a pointer-dependent canary directly
      // after the user region.
      meta.canary = true;
      const std::uint64_t value = canary_for(user);
      std::memcpy(user + size, &value, sizeof(value));
      ++stats_.canaries_planted;
    }
  }

  if ((mask & patch::kUninitRead) != 0 && size > 0) {
    std::memset(user, 0, size);
    ++stats_.zero_fills;
  }
  if (mask != 0) ++stats_.enhanced;

  const std::uint64_t word = encode_metadata(meta);
  std::memcpy(user - sizeof(word), &word, sizeof(word));
  const std::uint64_t tag = tag_for(user);
  std::memcpy(user - 2 * sizeof(tag), &tag, sizeof(tag));
  return user;
}

void* GuardedAllocator::malloc(std::uint64_t size, std::uint64_t ccid) {
  return allocate(AllocFn::kMalloc, size, 0, ccid);
}

void* GuardedAllocator::calloc(std::uint64_t count, std::uint64_t size,
                               std::uint64_t ccid) {
  // Overflow-checked multiply, as any production calloc must do.
  if (size != 0 && count > UINT64_MAX / size) return nullptr;
  const std::uint64_t total = count * size;
  void* p = allocate(AllocFn::kCalloc, total, 0, ccid);
  if (p != nullptr && total > 0) std::memset(p, 0, total);
  return p;
}

void* GuardedAllocator::memalign(std::uint64_t alignment, std::uint64_t size,
                                 std::uint64_t ccid) {
  return allocate(AllocFn::kMemalign, size, alignment, ccid);
}

void* GuardedAllocator::aligned_alloc(std::uint64_t alignment, std::uint64_t size,
                                      std::uint64_t ccid) {
  return allocate(AllocFn::kAlignedAlloc, size, alignment, ccid);
}

void* GuardedAllocator::realloc(void* p, std::uint64_t new_size, std::uint64_t ccid) {
  if (p == nullptr) return allocate(AllocFn::kRealloc, new_size, 0, ccid);
  if (config_.forward_only || !owns(p)) {
    return underlying_.realloc_fn(p, new_size);
  }
  if (new_size == 0) {
    free(p);
    return nullptr;
  }
  const std::uint64_t old_size = user_size(p);
  // The new buffer is allocated under the realloc-time CCID and re-screened
  // against the patch table (§V: the buffer's CCID is updated on realloc).
  void* fresh = allocate(AllocFn::kRealloc, new_size, 0, ccid);
  if (fresh == nullptr) return nullptr;
  std::memcpy(fresh, p, old_size < new_size ? old_size : new_size);
  free(p);
  return fresh;
}

void GuardedAllocator::free(void* p) {
  if (p == nullptr) return;
  if (config_.forward_only || !owns(p)) {
    underlying_.free_fn(p);
    return;
  }
  MetadataWord meta = decode_metadata(read_word(p));
  std::uint64_t size = meta.user_size;
  if (meta.canary) {
    std::uint64_t found;
    std::memcpy(&found, static_cast<char*>(p) + size, sizeof(found));
    if (found != canary_for(p)) ++stats_.canary_overflows_on_free;
  }
  if (meta.has_guard()) {
    // Fig. 7 step 1: make the guard page accessible again and recover the
    // user size from its first word.
    ::mprotect(reinterpret_cast<void*>(meta.guard_page_addr), kPageSize,
               PROT_READ | PROT_WRITE);
    std::memcpy(&size, reinterpret_cast<void*>(meta.guard_page_addr), sizeof(size));
  }
  void* raw = raw_of(p, meta);
  if ((meta.vuln_mask & patch::kUseAfterFree) != 0 && config_.poison_quarantine &&
      size > 0) {
    // Extension: stale reads of the quarantined block now see poison, not
    // leftover data.
    std::memset(p, GuardedAllocatorConfig::kPoisonByte, size);
  }
  // Scrub the ownership tag: a double free of `p` then behaves like a
  // foreign free (the underlying allocator's own double-free detection
  // fires) instead of corrupting the quarantine.
  const std::uint64_t zero = 0;
  std::memcpy(static_cast<char*>(p) - 16, &zero, sizeof(zero));
  if ((meta.vuln_mask & patch::kUseAfterFree) != 0) {
    const BufferLayout layout =
        compute_layout(size, meta.aligned ? (1ULL << meta.align_log2) : 0,
                       meta.has_guard(), meta.canary);
    quarantine_.push(raw, layout.raw_size);
    ++stats_.quarantined_frees;
  } else {
    underlying_.free_fn(raw);
    ++stats_.plain_frees;
  }
}

std::uint64_t GuardedAllocator::user_size(void* p) const {
  if (!owns(p)) return 0;
  const MetadataWord meta = decode_metadata(read_word(p));
  if (!meta.has_guard()) return meta.user_size;
  // Briefly unprotect the guard page to read the stored size.
  std::uint64_t size = 0;
  ::mprotect(reinterpret_cast<void*>(meta.guard_page_addr), kPageSize, PROT_READ);
  std::memcpy(&size, reinterpret_cast<void*>(meta.guard_page_addr), sizeof(size));
  ::mprotect(reinterpret_cast<void*>(meta.guard_page_addr), kPageSize, PROT_NONE);
  return size;
}

std::uint8_t GuardedAllocator::applied_mask(const void* p) const noexcept {
  return owns(p) ? decode_metadata(read_word(p)).vuln_mask : 0;
}

bool GuardedAllocator::guard_active(const void* p) const noexcept {
  return owns(p) && decode_metadata(read_word(p)).has_guard();
}

}  // namespace ht::runtime
