#include "runtime/guarded_allocator.hpp"

#include <cstring>

namespace ht::runtime {

using progmodel::AllocFn;

GuardedAllocator::GuardedAllocator(const patch::PatchTable* patches,
                                   GuardedAllocatorConfig config,
                                   UnderlyingAllocator underlying)
    : engine_(patches, config, underlying),
      quarantine_(config.quarantine_quota_bytes, underlying) {
  telemetry_.configure(config.telemetry);
  quarantine_.set_telemetry(&telemetry_);
  if (patches != nullptr) {
    telemetry_.record_event(TelemetryEvent::kPatchTableLoad, /*ccid=*/0,
                            patches->patch_count(),
                            static_cast<std::uint32_t>(patches->generation()));
  }
}

GuardedAllocator::GuardedAllocator(const patch::PatchTableSwap& swap,
                                   GuardedAllocatorConfig config,
                                   UnderlyingAllocator underlying)
    : engine_(swap, config, underlying),
      quarantine_(config.quarantine_quota_bytes, underlying) {
  telemetry_.configure(config.telemetry);
  quarantine_.set_telemetry(&telemetry_);
  if (const patch::PatchTable* table = engine_.patches(); table != nullptr) {
    telemetry_.record_event(TelemetryEvent::kPatchTableLoad, /*ccid=*/0,
                            table->patch_count(),
                            static_cast<std::uint32_t>(table->generation()));
  }
}

GuardedAllocator::~GuardedAllocator() = default;

void* GuardedAllocator::malloc(std::uint64_t size, std::uint64_t ccid) {
  return engine_.malloc(size, ccid, stats_, &telemetry_);
}

void* GuardedAllocator::calloc(std::uint64_t count, std::uint64_t size,
                               std::uint64_t ccid) {
  return engine_.calloc(count, size, ccid, stats_, &telemetry_);
}

void* GuardedAllocator::memalign(std::uint64_t alignment, std::uint64_t size,
                                 std::uint64_t ccid) {
  return engine_.memalign(alignment, size, ccid, stats_, &telemetry_);
}

void* GuardedAllocator::aligned_alloc(std::uint64_t alignment, std::uint64_t size,
                                      std::uint64_t ccid) {
  return engine_.aligned_alloc(alignment, size, ccid, stats_, &telemetry_);
}

void* GuardedAllocator::realloc(void* p, std::uint64_t new_size, std::uint64_t ccid) {
  if (p == nullptr) {
    return engine_.allocate(AllocFn::kRealloc, new_size, 0, ccid, stats_,
                            &telemetry_);
  }
  if (engine_.config().forward_only || !owns(p)) {
    return engine_.underlying().realloc_fn(p, new_size);
  }
  if (new_size == 0) {
    free(p);
    return nullptr;
  }
  const std::uint64_t old_size = user_size(p);
  // The new buffer is allocated under the realloc-time CCID and re-screened
  // against the patch table (§V: the buffer's CCID is updated on realloc).
  void* fresh = engine_.allocate(AllocFn::kRealloc, new_size, 0, ccid, stats_,
                                 &telemetry_);
  if (fresh == nullptr) return nullptr;
  std::memcpy(fresh, p, old_size < new_size ? old_size : new_size);
  free(p);
  return fresh;
}

void GuardedAllocator::free(void* p) {
  engine_.free(p, quarantine_, stats_, &telemetry_);
}

TelemetrySnapshot GuardedAllocator::telemetry_snapshot() const {
  TelemetrySnapshot snap;
  snap.config = engine_.config().telemetry;
  if (const patch::PatchTable* table = engine_.patches(); table != nullptr) {
    snap.table_generation = table->generation();
    snap.table_patches = table->patch_count();
  }
  snap.bypass = engine_.config().forward_only;
  merge_sink_into_snapshot(snap, telemetry_, /*shard=*/0, stats_,
                           quarantine_.bytes(), quarantine_.depth(),
                           quarantine_.pressure_events());
  snap.candidates = engine_.candidates().snapshot();
  snap.candidate_overflow = engine_.candidates().overflow();
  engine_.collect_heap_suspects(snap);
  finalize_snapshot(snap);
  return snap;
}

}  // namespace ht::runtime
