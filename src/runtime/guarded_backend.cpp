#include "runtime/guarded_backend.hpp"

#include <cstring>

namespace ht::runtime {

using progmodel::AccessKind;
using progmodel::AccessOutcome;
using progmodel::AllocFn;
using progmodel::ReadUse;

namespace {

AccessOutcome outcome_of(AccessKind kind, bool is_write) {
  AccessOutcome out;
  out.kind = kind;
  out.is_write = is_write;
  return out;
}

}  // namespace

std::uint64_t GuardedBackend::make_handle(std::uint64_t addr, std::uint16_t gen) {
  return (static_cast<std::uint64_t>(gen) << kGenShift) | addr;
}

std::uint64_t GuardedBackend::handle_addr(std::uint64_t handle) {
  return handle & ((1ULL << kGenShift) - 1);
}

std::uint16_t GuardedBackend::handle_gen(std::uint64_t handle) {
  return static_cast<std::uint16_t>(handle >> kGenShift);
}

std::uint64_t GuardedBackend::allocate(AllocFn fn, std::uint64_t size,
                                       std::uint64_t alignment, std::uint64_t ccid) {
  void* p = nullptr;
  switch (fn) {
    case AllocFn::kMalloc: p = allocator_.malloc(size, ccid); break;
    case AllocFn::kCalloc: p = allocator_.calloc(1, size, ccid); break;
    case AllocFn::kRealloc: p = allocator_.realloc(nullptr, size, ccid); break;
    case AllocFn::kMemalign: p = allocator_.memalign(alignment, size, ccid); break;
    case AllocFn::kAlignedAlloc:
      p = allocator_.aligned_alloc(alignment, size, ccid);
      break;
  }
  if (p == nullptr) return 0;
  const auto addr = reinterpret_cast<std::uint64_t>(p);
  const std::uint16_t gen = ++generation_;
  live_[addr] = BufferInfo{size, ccid, allocator_.applied_mask(p),
                           static_cast<std::uint8_t>(fn), gen};
  return make_handle(addr, gen);
}

std::uint64_t GuardedBackend::reallocate(std::uint64_t handle, std::uint64_t new_size,
                                         std::uint64_t ccid) {
  const std::uint64_t addr = handle_addr(handle);
  void* old_ptr = reinterpret_cast<void*>(addr);
  if (handle != 0) {
    const auto it = live_.find(addr);
    if (it == live_.end() || it->second.gen != handle_gen(handle)) {
      return 0;  // realloc through a stale pointer: refuse
    }
    freed_[addr] = it->second;
    live_.erase(it);
  } else {
    old_ptr = nullptr;
  }
  void* p = allocator_.realloc(old_ptr, new_size, ccid);
  if (p == nullptr) return 0;
  const auto new_addr = reinterpret_cast<std::uint64_t>(p);
  const std::uint16_t gen = ++generation_;
  live_[new_addr] = BufferInfo{new_size, ccid, allocator_.applied_mask(p),
                               static_cast<std::uint8_t>(AllocFn::kRealloc), gen};
  return make_handle(new_addr, gen);
}

void GuardedBackend::record_guard_trap(const BufferInfo& info,
                                       std::uint64_t attempted_len) {
  allocator_.telemetry().record_event(TelemetryEvent::kGuardTrap, info.ccid,
                                      attempted_len, info.mask, info.fn);
  synthesize(info, patch::CandidateOrigin::kGuardTrap);
}

void GuardedBackend::synthesize(const BufferInfo& info,
                                patch::CandidateOrigin origin) {
  if (info.gen == 0) return;  // no provenance (generations start at 1)
  allocator_.engine().synthesize_candidate(
      static_cast<AllocFn>(info.fn), info.ccid, /*mask=*/0, origin,
      &allocator_.telemetry());
}

void GuardedBackend::deallocate(std::uint64_t handle) {
  if (handle == 0) return;
  const std::uint64_t addr = handle_addr(handle);
  const auto it = live_.find(addr);
  if (it == live_.end() || it->second.gen != handle_gen(handle)) {
    return;  // stale/double free: never forwarded to the real allocator
  }
  freed_[addr] = it->second;
  live_.erase(it);
  allocator_.free(reinterpret_cast<void*>(addr));
}

GuardedBackend::Lookup GuardedBackend::find(std::uint64_t handle) const {
  Lookup out;
  const std::uint64_t addr = handle_addr(handle);
  const std::uint16_t gen = handle_gen(handle);
  if (const auto it = live_.find(addr); it != live_.end()) {
    if (it->second.gen == gen) {
      out.owner = Owner::kLive;
      out.info = it->second;
      return out;
    }
    // The address is live under a *different* generation: the pointer is
    // dangling and the memory has been reused by a new owner.
    out.owner = Owner::kReused;
    out.info = it->second;  // the new owner's extent bounds physical access
    if (const auto fit = freed_.find(addr); fit != freed_.end()) {
      out.stale_info = fit->second;  // the dangling pointer's old identity
    }
    return out;
  }
  if (const auto fit = freed_.find(addr); fit != freed_.end()) {
    if (fit->second.gen == gen) {
      out.owner = Owner::kFreed;
      out.info = fit->second;
      return out;
    }
  }
  return out;
}

AccessOutcome GuardedBackend::write(std::uint64_t handle, std::uint64_t offset,
                                    std::uint64_t len) {
  const Lookup lookup = find(handle);
  switch (lookup.owner) {
    case Owner::kUnknown:
      return outcome_of(AccessKind::kWild, /*is_write=*/true);
    case Owner::kFreed: {
      // Dangling pointer into memory nobody has reused yet.
      if ((lookup.info.mask & patch::kUseAfterFree) != 0) {
        ++obs_.stale_hits_quarantine;  // defused: block is parked in quarantine
      } else {
        ++obs_.stale_hits_wild;  // back at the allocator; corruption of free
                                 // metadata is possible but not re-ownable
      }
      return outcome_of(AccessKind::kOk, /*is_write=*/true);
    }
    case Owner::kReused: {
      // The attack case: the dangling write lands in another live buffer.
      ++obs_.stale_hits_reused;
      synthesize(lookup.stale_info, patch::CandidateOrigin::kUafReuse);
      const std::uint64_t addr = handle_addr(handle);
      const std::uint64_t size = lookup.info.size;  // new owner's size
      const std::uint64_t in_bounds =
          offset >= size ? 0 : std::min(len, size - offset);
      if (in_bounds > 0) {
        std::memset(reinterpret_cast<char*>(addr) + offset, kFillByte, in_bounds);
      }
      return outcome_of(AccessKind::kOk, /*is_write=*/true);
    }
    case Owner::kLive:
      break;
  }
  char* base = reinterpret_cast<char*>(handle_addr(handle));
  const std::uint64_t size = lookup.info.size;
  const std::uint64_t in_bounds = offset >= size ? 0 : std::min(len, size - offset);
  if (in_bounds > 0) std::memset(base + offset, kFillByte, in_bounds);
  if (in_bounds == len) return {};
  // Out-of-bounds tail.
  if ((lookup.info.mask & patch::kOverflow) != 0) {
    ++obs_.oob_writes_blocked;  // the guard page faults the store
    record_guard_trap(lookup.info, len);
    return outcome_of(AccessKind::kBlockedByGuard, /*is_write=*/true);
  }
  ++obs_.oob_writes_landed;  // silent adjacent-data corruption (simulated)
  synthesize(lookup.info, patch::CandidateOrigin::kOobLanded);
  return {};
}

AccessOutcome GuardedBackend::read(std::uint64_t handle, std::uint64_t offset,
                                   std::uint64_t len, ReadUse use) {
  const Lookup lookup = find(handle);
  switch (lookup.owner) {
    case Owner::kUnknown:
      return outcome_of(AccessKind::kWild, /*is_write=*/false);
    case Owner::kFreed: {
      if ((lookup.info.mask & patch::kUseAfterFree) != 0) {
        ++obs_.stale_hits_quarantine;
      } else {
        ++obs_.stale_hits_wild;
      }
      return outcome_of(AccessKind::kOk, /*is_write=*/false);
    }
    case Owner::kReused: {
      ++obs_.stale_hits_reused;  // dangling read of another object's data
      synthesize(lookup.stale_info, patch::CandidateOrigin::kUafReuse);
      if (use == ReadUse::kSyscall) {
        const std::uint64_t size = lookup.info.size;
        const std::uint64_t in_bounds =
            offset >= size ? 0 : std::min(len, size - offset);
        obs_.leaked_nonzero_bytes += in_bounds;  // another object's bytes escape
      }
      return outcome_of(AccessKind::kOk, /*is_write=*/false);
    }
    case Owner::kLive:
      break;
  }
  const char* base = reinterpret_cast<const char*>(handle_addr(handle));
  const std::uint64_t size = lookup.info.size;
  const std::uint64_t in_bounds = offset >= size ? 0 : std::min(len, size - offset);
  if (use == ReadUse::kSyscall) {
    // Leak accounting: every byte that escapes through a syscall is either
    // stale garbage / program data (nonzero) or the zero-fill defense.
    for (std::uint64_t i = 0; i < in_bounds; ++i) {
      if (base[offset + i] == 0) {
        ++obs_.leaked_zero_bytes;
      } else {
        ++obs_.leaked_nonzero_bytes;
      }
    }
  }
  if (in_bounds == len) return {};
  if ((lookup.info.mask & patch::kOverflow) != 0) {
    ++obs_.oob_reads_blocked;
    record_guard_trap(lookup.info, len);
    return outcome_of(AccessKind::kBlockedByGuard, /*is_write=*/false);
  }
  ++obs_.oob_reads_landed;
  synthesize(lookup.info, patch::CandidateOrigin::kOobLanded);
  if (use == ReadUse::kSyscall) {
    // The overread tail exposes unknown adjacent memory; count it as
    // leaked garbage without physically touching it.
    obs_.leaked_nonzero_bytes += len - in_bounds;
  }
  return {};
}

AccessOutcome GuardedBackend::copy(std::uint64_t src, std::uint64_t src_off,
                                   std::uint64_t dst, std::uint64_t dst_off,
                                   std::uint64_t len) {
  const Lookup s = find(src);
  const Lookup d = find(dst);
  if (s.owner == Owner::kUnknown || d.owner == Owner::kUnknown) {
    return outcome_of(AccessKind::kWild, /*is_write=*/true);
  }
  // Dangling endpoints route through the same accounting as read/write.
  if (s.owner != Owner::kLive) return read(src, src_off, len, ReadUse::kData);
  if (d.owner != Owner::kLive) return write(dst, dst_off, 0);

  const std::uint64_t src_ok =
      src_off >= s.info.size ? 0 : std::min(len, s.info.size - src_off);
  const std::uint64_t dst_ok =
      dst_off >= d.info.size ? 0 : std::min(len, d.info.size - dst_off);
  const std::uint64_t effective = std::min(src_ok, dst_ok);
  if (effective > 0) {
    std::memmove(reinterpret_cast<char*>(handle_addr(dst)) + dst_off,
                 reinterpret_cast<const char*>(handle_addr(src)) + src_off,
                 effective);
  }
  if (effective == len) return {};
  // The shorter side determines which violation fires first.
  const bool src_limited = src_ok < len && src_ok <= dst_ok;
  if (src_limited) {
    if ((s.info.mask & patch::kOverflow) != 0) {
      ++obs_.oob_reads_blocked;
      record_guard_trap(s.info, len);
      return outcome_of(AccessKind::kBlockedByGuard, /*is_write=*/false);
    }
    ++obs_.oob_reads_landed;
    synthesize(s.info, patch::CandidateOrigin::kOobLanded);
    return {};
  }
  if ((d.info.mask & patch::kOverflow) != 0) {
    ++obs_.oob_writes_blocked;
    record_guard_trap(d.info, len);
    return outcome_of(AccessKind::kBlockedByGuard, /*is_write=*/true);
  }
  ++obs_.oob_writes_landed;
  synthesize(d.info, patch::CandidateOrigin::kOobLanded);
  return {};
}

}  // namespace ht::runtime
