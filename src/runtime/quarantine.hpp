// FIFO quarantine of freed blocks (§VI "Handling use after free").
//
// Buffers vulnerable to use-after-free are not returned to the underlying
// allocator on free; they queue here until the byte quota forces the oldest
// out. Because *only* patched buffers enter the queue, a given quota keeps
// each block quarantined far longer than an indiscriminate queue would —
// the paper's argument for why targeted deferral raises exploitation cost.
//
// The queue is intrusive: the FIFO link lives in the first 16 bytes of the
// quarantined raw block itself (dead memory we own until eviction), so
// push/evict perform ZERO allocator calls of their own. That matters twice:
//  - it keeps the free() hot path allocation-free, and
//  - it lets a shard of ShardedAllocator run its quarantine under a plain
//    (non-recursive) mutex — nothing inside the critical section can
//    re-enter an interposed malloc, which is what forced the old
//    deque-based version behind recursive locks.
// Every block pushed must therefore be at least kMinBlockBytes long; all
// buffer layouts the defense engine produces satisfy this (the smallest is
// the 16-byte Structure-1 header).
//
// Quota edge case: a block whose size alone exceeds the quota is *retained*
// until the next push rather than evicted on the spot — an immediate
// eviction would silently cancel the UAF deferral for exactly the huge
// buffers an attacker grooms with. The newest block always stays queued.
#pragma once

#include <cstdint>

#include "runtime/telemetry.hpp"
#include "runtime/underlying.hpp"
#include "support/faultpoint.hpp"

namespace ht::runtime {

class Quarantine {
 public:
  /// Intrusive link size: the minimum size of any pushed block.
  static constexpr std::uint64_t kMinBlockBytes = 16;

  /// Consecutive evicting pushes that count as sustained pressure. When
  /// every push has to evict, the quota is pinned at its ceiling and each
  /// free pays an eviction; the adaptive response is one early-eviction
  /// sweep down to half quota, buying headroom so the next pushes are
  /// eviction-free again (docs/RESILIENCE.md "quarantine pressure").
  static constexpr std::uint32_t kPressureStreak = 8;

  /// A default-constructed quarantine holds nothing and must be
  /// configure()d before the first push (shard arrays are built default-
  /// constructed, then configured with their quota slice).
  Quarantine() = default;

  Quarantine(std::uint64_t quota_bytes, UnderlyingAllocator underlying) {
    configure(quota_bytes, underlying);
  }

  ~Quarantine() { drain(); }

  Quarantine(const Quarantine&) = delete;
  Quarantine& operator=(const Quarantine&) = delete;

  /// Sets the byte quota and the release sink (normally the underlying
  /// free). Must not be called while blocks are queued.
  void configure(std::uint64_t quota_bytes, UnderlyingAllocator underlying) noexcept {
    quota_ = quota_bytes;
    underlying_ = underlying;
  }

  /// Attaches the owning context's telemetry sink; evictions and oversized
  /// retentions are then recorded as ring events. May be null (default).
  /// The sink must outlive the quarantine.
  void set_telemetry(TelemetrySink* sink) noexcept { telemetry_ = sink; }

  /// Enqueues a freed raw block of `bytes` (>= kMinBlockBytes) and evicts
  /// oldest blocks while over quota — but never the block just pushed.
  void push(void* raw, std::uint64_t bytes) noexcept {
    Node* node = static_cast<Node*>(raw);
    node->next = nullptr;
    node->bytes = bytes;
    if (tail_ != nullptr) {
      tail_->next = node;
    } else {
      head_ = node;
    }
    tail_ = node;
    bytes_ += bytes;
    ++depth_;
    ++total_pushed_;
    if (bytes > quota_ && telemetry_ != nullptr) {
      // Oversized block: exceeds the whole quota slice by itself. It is
      // retained (the newest block is never self-evicted), but an operator
      // should know the quota is undersized for this traffic.
      telemetry_->record_event(TelemetryEvent::kQuarantineOverflow,
                               /*ccid=*/0, bytes,
                               static_cast<std::uint32_t>(depth_));
    }
    bool evicted = false;
    while (bytes_ > quota_ && depth_ > 1) {
      evict_oldest();
      evicted = true;
    }
    // Adaptive pressure response: a streak of evicting pushes (or an armed
    // quarantine-pressure fault, which simulates one deterministically)
    // triggers one sweep down to the low watermark. The just-pushed block
    // still survives — depth_ > 1 guards it like the quota loop above.
    eviction_streak_ = evicted ? eviction_streak_ + 1 : 0;
    if (eviction_streak_ >= kPressureStreak ||
        support::fault_fires(support::FaultPoint::kQuarantinePressure)) {
      const std::uint64_t watermark = quota_ / 2;
      const std::uint64_t before = bytes_;
      while (bytes_ > watermark && depth_ > 1) evict_oldest();
      ++pressure_events_;
      eviction_streak_ = 0;
      if (telemetry_ != nullptr) {
        telemetry_->record_event(TelemetryEvent::kQuarantinePressure,
                                 /*ccid=*/0, before - bytes_,
                                 static_cast<std::uint32_t>(depth_));
      }
    }
  }

  /// Releases everything (used at shutdown and in tests).
  void drain() noexcept {
    while (head_ != nullptr) evict_oldest();
  }

  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t quota() const noexcept { return quota_; }
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return total_pushed_; }
  [[nodiscard]] std::uint64_t total_released() const noexcept { return total_released_; }
  /// Early-eviction sweeps run in response to sustained pressure.
  [[nodiscard]] std::uint64_t pressure_events() const noexcept {
    return pressure_events_;
  }

  /// True if `raw` is currently quarantined (linear scan; test/debug aid,
  /// not on the hot path).
  [[nodiscard]] bool contains(const void* raw) const noexcept {
    for (const Node* n = head_; n != nullptr; n = n->next) {
      if (n == raw) return true;
    }
    return false;
  }

 private:
  /// Lives inside the quarantined block's first 16 bytes. The block is dead
  /// memory: its ownership tag was already scrubbed by the freeing path.
  struct Node {
    Node* next;
    std::uint64_t bytes;
  };
  static_assert(sizeof(Node) <= kMinBlockBytes);

  void evict_oldest() noexcept {
    Node* node = head_;
    head_ = node->next;
    if (head_ == nullptr) tail_ = nullptr;
    bytes_ -= node->bytes;
    --depth_;
    ++total_released_;
    if (telemetry_ != nullptr) {
      telemetry_->record_event(TelemetryEvent::kQuarantineEvict,
                               /*ccid=*/0, node->bytes,
                               static_cast<std::uint32_t>(depth_));
    }
    underlying_.free_fn(node);
  }

  std::uint64_t quota_ = 0;
  UnderlyingAllocator underlying_;
  TelemetrySink* telemetry_ = nullptr;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t depth_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t total_released_ = 0;
  std::uint32_t eviction_streak_ = 0;
  std::uint64_t pressure_events_ = 0;
};

}  // namespace ht::runtime
