// FIFO quarantine of freed blocks (§VI "Handling use after free").
//
// Buffers vulnerable to use-after-free are not returned to the underlying
// allocator on free; they queue here until the byte quota forces the oldest
// out. Because *only* patched buffers enter the queue, a given quota keeps
// each block quarantined far longer than an indiscriminate queue would —
// the paper's argument for why targeted deferral raises exploitation cost.
#pragma once

#include <cstdint>
#include <deque>

#include "runtime/underlying.hpp"

namespace ht::runtime {

class Quarantine {
 public:
  /// `release` is called with the raw pointer when a block leaves the
  /// queue (normally the underlying free).
  Quarantine(std::uint64_t quota_bytes, UnderlyingAllocator underlying)
      : quota_(quota_bytes), underlying_(underlying) {}

  ~Quarantine() { drain(); }

  Quarantine(const Quarantine&) = delete;
  Quarantine& operator=(const Quarantine&) = delete;

  /// Enqueues a freed block; evicts oldest blocks while over quota.
  void push(void* raw, std::uint64_t bytes) {
    blocks_.push_back(Block{raw, bytes});
    bytes_ += bytes;
    ++total_pushed_;
    while (bytes_ > quota_ && !blocks_.empty()) evict_oldest();
  }

  /// Releases everything (used at shutdown and in tests).
  void drain() {
    while (!blocks_.empty()) evict_oldest();
  }

  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t depth() const noexcept { return blocks_.size(); }
  [[nodiscard]] std::uint64_t quota() const noexcept { return quota_; }
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return total_pushed_; }
  [[nodiscard]] std::uint64_t total_released() const noexcept { return total_released_; }

  /// True if `raw` is currently quarantined (linear scan; test/debug aid,
  /// not on the hot path).
  [[nodiscard]] bool contains(const void* raw) const noexcept {
    for (const Block& b : blocks_) {
      if (b.raw == raw) return true;
    }
    return false;
  }

 private:
  struct Block {
    void* raw;
    std::uint64_t bytes;
  };

  void evict_oldest() {
    const Block block = blocks_.front();
    blocks_.pop_front();
    bytes_ -= block.bytes;
    ++total_released_;
    underlying_.free_fn(block.raw);
  }

  std::uint64_t quota_;
  UnderlyingAllocator underlying_;
  std::deque<Block> blocks_;
  std::uint64_t bytes_ = 0;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t total_released_ = 0;
};

}  // namespace ht::runtime
