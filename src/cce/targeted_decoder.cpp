#include "cce/targeted_decoder.hpp"

#include <sstream>

namespace ht::cce {

TargetedDecoder::TargetedDecoder(const CallGraph& graph, FunctionId root,
                                 const std::vector<FunctionId>& targets,
                                 const Encoder& encoder, std::size_t context_limit,
                                 unsigned max_cycle_visits) {
  for (FunctionId target : targets) {
    const auto contexts =
        enumerate_contexts(graph, root, target, context_limit, max_cycle_visits);
    for (const CallingContext& context : contexts) {
      const Key key{target, encoder.encode(context)};
      auto [it, inserted] = index_.try_emplace(key, Entry{context, false});
      if (!inserted) it->second.collided = true;
      ++contexts_;
    }
  }
}

std::optional<CallingContext> TargetedDecoder::decode(FunctionId target,
                                                      std::uint64_t ccid) const {
  const auto it = index_.find(Key{target, ccid});
  if (it == index_.end()) return std::nullopt;
  return it->second.context;
}

bool TargetedDecoder::ambiguous(FunctionId target, std::uint64_t ccid) const {
  const auto it = index_.find(Key{target, ccid});
  return it != index_.end() && it->second.collided;
}

std::string TargetedDecoder::format_context(const CallGraph& graph, FunctionId root,
                                            const CallingContext& context) {
  std::ostringstream os;
  os << graph.function_name(root);
  for (CallSiteId s : context) {
    os << " -> " << graph.function_name(graph.site(s).callee);
  }
  return os.str();
}

}  // namespace ht::cce
