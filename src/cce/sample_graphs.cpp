#include "cce/sample_graphs.hpp"

#include <string>

namespace ht::cce {

RandomDag make_random_dag(support::Rng& rng, const RandomDagParams& params) {
  RandomDag dag;
  const std::uint32_t layers = params.layers < 2 ? 2 : params.layers;
  const std::uint32_t per_layer =
      params.functions_per_layer < 1 ? 1 : params.functions_per_layer;

  // Layer 0 holds only the root; the last layer holds the targets.
  std::vector<std::vector<FunctionId>> layer_funcs(layers);
  dag.root = dag.graph.add_function("main");
  layer_funcs[0].push_back(dag.root);
  for (std::uint32_t layer = 1; layer + 1 < layers; ++layer) {
    for (std::uint32_t j = 0; j < per_layer; ++j) {
      layer_funcs[layer].push_back(
          dag.graph.add_function("f" + std::to_string(layer) + "_" + std::to_string(j)));
    }
  }
  const std::uint32_t targets = params.target_count < 1 ? 1 : params.target_count;
  for (std::uint32_t j = 0; j < targets; ++j) {
    const FunctionId t = dag.graph.add_function("target" + std::to_string(j));
    layer_funcs[layers - 1].push_back(t);
    dag.targets.push_back(t);
  }

  // Wire call sites layer by layer. Every function gets at least one
  // out-edge into a later layer so all interior functions reach a target.
  for (std::uint32_t layer = 0; layer + 1 < layers; ++layer) {
    for (FunctionId caller : layer_funcs[layer]) {
      const std::uint32_t fanout =
          1 + static_cast<std::uint32_t>(rng.below(params.max_fanout < 1 ? 1 : params.max_fanout));
      for (std::uint32_t k = 0; k < fanout; ++k) {
        std::uint32_t callee_layer = layer + 1;
        if (callee_layer + 1 < layers && rng.chance(params.skip_layer_probability)) {
          ++callee_layer;
        }
        const auto& pool = layer_funcs[callee_layer];
        dag.graph.add_call_site(caller, pool[rng.index(pool.size())]);
      }
    }
  }
  return dag;
}

}  // namespace ht::cce
