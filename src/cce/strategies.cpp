#include "cce/strategies.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace ht::cce {

std::string_view strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::kFcs: return "FCS";
    case Strategy::kTcs: return "TCS";
    case Strategy::kSlim: return "Slim";
    case Strategy::kIncremental: return "Incremental";
  }
  return "?";
}

std::size_t InstrumentationPlan::instrumented_count() const {
  return static_cast<std::size_t>(
      std::count(instrumented.begin(), instrumented.end(), true));
}

double InstrumentationPlan::instrumented_fraction() const {
  if (instrumented.empty()) return 0.0;
  return static_cast<double>(instrumented_count()) /
         static_cast<double>(instrumented.size());
}

namespace {

/// Per-target backward reachability over functions (handles cycles).
std::vector<bool> reaches_single_target(const CallGraph& graph, FunctionId target) {
  std::vector<bool> reach(graph.function_count(), false);
  std::deque<FunctionId> queue;
  reach[target] = true;
  queue.push_back(target);
  while (!queue.empty()) {
    const FunctionId n = queue.front();
    queue.pop_front();
    for (CallSiteId s : graph.incoming(n)) {
      const FunctionId caller = graph.site(s).caller;
      if (!reach[caller]) {
        reach[caller] = true;
        queue.push_back(caller);
      }
    }
  }
  return reach;
}

InstrumentationPlan make_empty_plan(const CallGraph& graph, Strategy strategy) {
  InstrumentationPlan plan;
  plan.strategy = strategy;
  plan.instrumented.assign(graph.call_site_count(), false);
  return plan;
}

}  // namespace

std::vector<NodeClassification> classify_nodes(const CallGraph& graph,
                                               const std::vector<FunctionId>& targets) {
  std::vector<NodeClassification> nodes(graph.function_count());

  const Reachability any = compute_reachability(graph, targets);
  for (FunctionId f = 0; f < graph.function_count(); ++f) {
    for (CallSiteId s : graph.outgoing(f)) {
      if (any.site_reaches_target[s]) nodes[f].reaching_out_edges.push_back(s);
    }
    nodes[f].branching = nodes[f].reaching_out_edges.size() >= 2;
  }

  // True branching: >=2 out-edges reach the *same* target. Deduplicate the
  // target list so a repeated target does not double-count.
  std::vector<FunctionId> unique_targets = targets;
  std::sort(unique_targets.begin(), unique_targets.end());
  unique_targets.erase(std::unique(unique_targets.begin(), unique_targets.end()),
                       unique_targets.end());
  for (FunctionId t : unique_targets) {
    const std::vector<bool> reach_t = reaches_single_target(graph, t);
    for (FunctionId f = 0; f < graph.function_count(); ++f) {
      if (nodes[f].true_branching) continue;
      std::size_t reaching = 0;
      for (CallSiteId s : graph.outgoing(f)) {
        if (reach_t[graph.site(s).callee]) ++reaching;
      }
      if (reaching >= 2) nodes[f].true_branching = true;
    }
  }
  return nodes;
}

InstrumentationPlan compute_plan(const CallGraph& graph,
                                 const std::vector<FunctionId>& targets,
                                 Strategy strategy) {
  for (FunctionId t : targets) {
    if (t >= graph.function_count()) {
      throw std::out_of_range("compute_plan: unknown target function");
    }
  }
  InstrumentationPlan plan = make_empty_plan(graph, strategy);

  switch (strategy) {
    case Strategy::kFcs: {
      plan.instrumented.assign(graph.call_site_count(), true);
      return plan;
    }
    case Strategy::kTcs: {
      const Reachability r = compute_reachability(graph, targets);
      plan.instrumented = r.site_reaches_target;
      return plan;
    }
    case Strategy::kSlim: {
      const auto nodes = classify_nodes(graph, targets);
      for (FunctionId f = 0; f < graph.function_count(); ++f) {
        if (!nodes[f].branching) continue;
        for (CallSiteId s : nodes[f].reaching_out_edges) plan.instrumented[s] = true;
      }
      return plan;
    }
    case Strategy::kIncremental: {
      // Algorithm 1: process each target incrementally; instrument the
      // reaching out-edge sets of true branching nodes (relative to that
      // target); union over targets.
      std::vector<FunctionId> unique_targets = targets;
      std::sort(unique_targets.begin(), unique_targets.end());
      unique_targets.erase(
          std::unique(unique_targets.begin(), unique_targets.end()),
          unique_targets.end());
      for (FunctionId t : unique_targets) {
        const std::vector<bool> reach_t = reaches_single_target(graph, t);
        for (FunctionId f = 0; f < graph.function_count(); ++f) {
          std::vector<CallSiteId> reaching_edges;
          for (CallSiteId s : graph.outgoing(f)) {
            if (reach_t[graph.site(s).callee]) reaching_edges.push_back(s);
          }
          if (reaching_edges.size() > 1) {
            for (CallSiteId s : reaching_edges) plan.instrumented[s] = true;
          }
        }
      }
      return plan;
    }
  }
  throw std::logic_error("compute_plan: unknown strategy");
}

}  // namespace ht::cce
