// TargetedDecoder: decode {target function, CCID} pairs back to calling
// contexts.
//
// PCC "does not support decoding" (§II-B) — but HeapTherapy+ only ever needs
// to decode CCIDs of *target* functions (to tell an analyst which allocation
// context a patch protects). Because the target set is known, the decoder
// can enumerate every calling context per target once, encode each with the
// deployed encoder, and invert the mapping. This also restores decoding for
// the Incremental strategy, where a raw CCID alone is ambiguous across
// targets but the {target, CCID} pair is not.
//
// Cost model: one-time O(#contexts) construction (the offline side can
// afford it); O(1) lookups. Recursive programs are handled by bounding
// cycle unrollings, like the offline analyzer itself.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cce/call_graph.hpp"
#include "cce/encoders.hpp"

namespace ht::cce {

class TargetedDecoder {
 public:
  /// Enumerates all contexts from `root` to each target (bounded by
  /// `context_limit` and `max_cycle_visits`) and indexes their encodings.
  /// Throws std::length_error if a target exceeds the context limit.
  TargetedDecoder(const CallGraph& graph, FunctionId root,
                  const std::vector<FunctionId>& targets, const Encoder& encoder,
                  std::size_t context_limit = 1 << 16,
                  unsigned max_cycle_visits = 1);

  /// The context that produces `ccid` when reaching `target`, or nullopt.
  /// If several contexts collide on the same CCID (possible for PCC with
  /// astronomically low probability), the first enumerated one is returned
  /// and `ambiguous` reports the collision.
  [[nodiscard]] std::optional<CallingContext> decode(FunctionId target,
                                                     std::uint64_t ccid) const;

  /// True if `ccid` maps to more than one context of `target`.
  [[nodiscard]] bool ambiguous(FunctionId target, std::uint64_t ccid) const;

  /// Number of indexed contexts across all targets.
  [[nodiscard]] std::size_t context_count() const noexcept { return contexts_; }

  /// Renders a context as "main -> f -> malloc" using function names.
  [[nodiscard]] static std::string format_context(const CallGraph& graph,
                                                  FunctionId root,
                                                  const CallingContext& context);

 private:
  struct Key {
    FunctionId target;
    std::uint64_t ccid;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(k.ccid * 0x9e3779b97f4a7c15ULL ^ k.target);
    }
  };
  struct Entry {
    CallingContext context;
    bool collided = false;
  };
  std::unordered_map<Key, Entry, KeyHash> index_;
  std::size_t contexts_ = 0;
};

}  // namespace ht::cce
