// Calling-context encoders.
//
// An encoder maintains a single integer register V that continuously holds
// the encoding (CCID) of the current calling context. Only *instrumented*
// call sites (per an InstrumentationPlan) update V:
//
//  - PccEncoder (§IV, after [Bond&McKinley, PCC]): V' = m*V + c_site, with
//    m = 3 and a per-call-site constant. Probabilistically unique; collisions
//    are benign for HeapTherapy+ (a collision merely over-enhances a buffer).
//  - AdditiveEncoder (PCCE/DeltaPath-style): V' = V + inc_site, with
//    Ball-Larus-style increments computed on the target-reaching sub-DAG so
//    that every calling context ending at a target receives a *unique* value
//    in [0, num_contexts), and decoding is exact.
//
// The additive encoder naturally assigns increment 0 to the sole reaching
// out-edge of a non-branching node, which is precisely why the Slim
// optimization (§IV-B) is lossless: pruned sites had zero increments anyway.
// The Incremental plan (§IV-C) prunes false-branching nodes whose additive
// increments are non-zero, so AdditiveEncoder rejects Incremental plans; use
// PccEncoder for Incremental (as HeapTherapy+ itself does) where the
// {target_fn, CCID} pair restores distinguishability.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cce/call_graph.hpp"
#include "cce/strategies.hpp"

namespace ht::cce {

/// Abstract encoder: a pure function (V, call site) -> V', plus the plan
/// that says which sites apply it.
class Encoder {
 public:
  explicit Encoder(InstrumentationPlan plan) : plan_(std::move(plan)) {}
  virtual ~Encoder() = default;

  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;

  /// Register update performed at an instrumented call site.
  [[nodiscard]] virtual std::uint64_t apply(std::uint64_t v,
                                            CallSiteId site) const noexcept = 0;

  [[nodiscard]] const InstrumentationPlan& plan() const noexcept { return plan_; }

  /// Folds `apply` over the instrumented sites of a whole context,
  /// starting from the entry value 0. This equals the value the runtime
  /// register V holds when the target function is entered.
  [[nodiscard]] std::uint64_t encode(const CallingContext& context) const noexcept;

 private:
  InstrumentationPlan plan_;
};

/// Parameters for the probabilistic encoder. The paper fixes multiplier 3;
/// the ablation bench sweeps it.
struct PccParams {
  std::uint64_t multiplier = 3;
  std::uint64_t salt = 0x48542b5eedULL;  // deterministic per-site constants
};

class PccEncoder final : public Encoder {
 public:
  PccEncoder(InstrumentationPlan plan, PccParams params = {});

  [[nodiscard]] std::uint64_t apply(std::uint64_t v,
                                    CallSiteId site) const noexcept override;

  /// The per-call-site constant c (deterministic across runs).
  [[nodiscard]] std::uint64_t site_constant(CallSiteId site) const noexcept;

  [[nodiscard]] const PccParams& params() const noexcept { return params_; }

 private:
  PccParams params_;
};

/// Exact, decodable encoder (Ball-Larus numbering over the target-reaching
/// sub-DAG). Throws EncodingError if the reaching subgraph is cyclic or the
/// plan strategy is Incremental (see file comment).
class AdditiveEncoder final : public Encoder {
 public:
  AdditiveEncoder(const CallGraph& graph, const std::vector<FunctionId>& targets,
                  InstrumentationPlan plan, FunctionId root);

  [[nodiscard]] std::uint64_t apply(std::uint64_t v,
                                    CallSiteId site) const noexcept override;

  /// Number of calling contexts from the root to any target; encodings are
  /// unique in [0, num_contexts()).
  [[nodiscard]] std::uint64_t num_contexts() const noexcept;

  /// Exact inverse of encode(): reconstructs the context with value `v`
  /// starting at the root. Returns nullopt for out-of-range values.
  [[nodiscard]] std::optional<CallingContext> decode(std::uint64_t v) const;

  /// The additive increment for a site (0 for pruned / non-reaching sites).
  [[nodiscard]] std::uint64_t increment(CallSiteId site) const noexcept;

 private:
  const CallGraph& graph_;
  FunctionId root_;
  std::vector<bool> is_target_;
  std::vector<std::uint64_t> increments_;  // by CallSiteId
  std::vector<std::uint64_t> num_paths_;   // by FunctionId, paths to any target
};

/// Thrown when an encoder cannot be constructed for a graph/plan combo.
class EncodingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Runtime register semantics shared by the interpreter and tests: V plus a
/// shadow stack of saved values so returns restore the caller's encoding —
/// the behavioural equivalent of PCC's "read V into a local t at the
/// prologue, recompute V from t before each call site".
class CcidRegister {
 public:
  explicit CcidRegister(const Encoder& encoder) : encoder_(&encoder) {}

  /// Enter a call through `site`. Returns true if the site was instrumented
  /// (i.e. an encoding operation executed) so callers can count work.
  bool on_call(CallSiteId site);
  /// Matching return from the most recent call.
  void on_return();

  [[nodiscard]] std::uint64_t value() const noexcept { return v_; }
  [[nodiscard]] std::size_t depth() const noexcept { return saved_.size(); }
  /// Encoding operations executed so far (the overhead driver of §VIII-B1).
  [[nodiscard]] std::uint64_t ops() const noexcept { return ops_; }

  void reset() {
    v_ = 0;
    saved_.clear();
    ops_ = 0;
  }

 private:
  const Encoder* encoder_;
  std::uint64_t v_ = 0;
  std::vector<std::uint64_t> saved_;
  std::uint64_t ops_ = 0;
};

}  // namespace ht::cce
