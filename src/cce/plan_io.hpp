// Instrumentation-plan persistence.
//
// Program instrumentation "is an one-time effort" (§III-B): the pass
// computes which call sites carry encoding updates and that decision must
// be reproducible across the offline and online phases — patches only match
// if both phases encode identically. This module serializes a plan together
// with a fingerprint of the call graph it was computed for, so a stale plan
// (the program changed) is rejected at load instead of silently producing
// mismatched CCIDs.
//
// Format (text, versioned like the patch config):
//   # HeapTherapy+ instrumentation plan
//   version 1
//   strategy Incremental
//   graph <fnv64 of the graph structure>
//   sites <total call sites>
//   instrumented <id> <id> ...        (may repeat; ids in any order)
#pragma once

#include <optional>
#include <string>

#include "cce/call_graph.hpp"
#include "cce/strategies.hpp"

namespace ht::cce {

/// Stable fingerprint of a call graph's structure (functions by name,
/// call sites by (caller, callee) in id order). Two graphs with the same
/// fingerprint encode identically.
[[nodiscard]] std::uint64_t graph_fingerprint(const CallGraph& graph);

/// Serializes a plan for `graph`.
[[nodiscard]] std::string serialize_plan(const InstrumentationPlan& plan,
                                         const CallGraph& graph);

struct PlanParseResult {
  std::optional<InstrumentationPlan> plan;  ///< set on success
  std::string error;                        ///< set on failure
};

/// Parses a serialized plan and validates it against `graph` (fingerprint
/// and site-count must match).
[[nodiscard]] PlanParseResult parse_plan(std::string_view text,
                                         const CallGraph& graph);

}  // namespace ht::cce
