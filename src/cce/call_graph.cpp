#include "cce/call_graph.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

namespace ht::cce {

FunctionId CallGraph::add_function(std::string name) {
  if (name.empty()) throw std::invalid_argument("function name must be non-empty");
  if (find_function(name).has_value()) {
    throw std::invalid_argument("duplicate function name: " + name);
  }
  const auto id = static_cast<FunctionId>(names_.size());
  names_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

CallSiteId CallGraph::add_call_site(FunctionId caller, FunctionId callee) {
  if (caller >= names_.size() || callee >= names_.size()) {
    throw std::out_of_range("call site references unknown function");
  }
  const auto id = static_cast<CallSiteId>(sites_.size());
  sites_.push_back(CallSite{id, caller, callee});
  out_[caller].push_back(id);
  in_[callee].push_back(id);
  return id;
}

std::optional<FunctionId> CallGraph::find_function(std::string_view name) const {
  for (FunctionId f = 0; f < names_.size(); ++f) {
    if (names_[f] == name) return f;
  }
  return std::nullopt;
}

bool CallGraph::has_cycle() const {
  enum class Mark : std::uint8_t { White, Grey, Black };
  std::vector<Mark> mark(names_.size(), Mark::White);
  // Iterative DFS with explicit stack to survive deep graphs.
  struct Frame {
    FunctionId node;
    std::size_t next_edge;
  };
  for (FunctionId start = 0; start < names_.size(); ++start) {
    if (mark[start] != Mark::White) continue;
    std::vector<Frame> stack{{start, 0}};
    mark[start] = Mark::Grey;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_edge < out_[frame.node].size()) {
        const FunctionId callee = sites_[out_[frame.node][frame.next_edge++]].callee;
        if (mark[callee] == Mark::Grey) return true;
        if (mark[callee] == Mark::White) {
          mark[callee] = Mark::Grey;
          stack.push_back({callee, 0});
        }
      } else {
        mark[frame.node] = Mark::Black;
        stack.pop_back();
      }
    }
  }
  return false;
}

bool CallGraph::is_valid_context(const CallingContext& context, FunctionId root) const {
  FunctionId at = root;
  for (CallSiteId s : context) {
    if (s >= sites_.size()) return false;
    if (sites_[s].caller != at) return false;
    at = sites_[s].callee;
  }
  return true;
}

std::string CallGraph::to_dot(const std::vector<FunctionId>& highlight_targets,
                              const std::vector<bool>* instrumented) const {
  std::ostringstream os;
  os << "digraph callgraph {\n";
  for (FunctionId f = 0; f < names_.size(); ++f) {
    const bool is_target = std::find(highlight_targets.begin(), highlight_targets.end(),
                                     f) != highlight_targets.end();
    os << "  f" << f << " [label=\"" << names_[f] << "\"";
    if (is_target) os << ", shape=doublecircle, style=filled, fillcolor=lightblue";
    os << "];\n";
  }
  for (const CallSite& s : sites_) {
    os << "  f" << s.caller << " -> f" << s.callee << " [label=\"cs" << s.id << "\"";
    if (instrumented != nullptr && s.id < instrumented->size() && (*instrumented)[s.id]) {
      os << ", color=red, penwidth=2";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

Reachability compute_reachability(const CallGraph& graph,
                                  const std::vector<FunctionId>& targets) {
  Reachability r;
  r.reaches_target.assign(graph.function_count(), false);
  r.site_reaches_target.assign(graph.call_site_count(), false);

  std::deque<FunctionId> queue;
  for (FunctionId t : targets) {
    if (t >= graph.function_count()) throw std::out_of_range("unknown target function");
    if (!r.reaches_target[t]) {
      r.reaches_target[t] = true;
      queue.push_back(t);
    }
  }
  while (!queue.empty()) {
    const FunctionId n = queue.front();
    queue.pop_front();
    for (CallSiteId s : graph.incoming(n)) {
      const FunctionId caller = graph.site(s).caller;
      if (!r.reaches_target[caller]) {
        r.reaches_target[caller] = true;
        queue.push_back(caller);
      }
    }
  }
  for (const CallSite& s : graph.sites()) {
    r.site_reaches_target[s.id] = r.reaches_target[s.callee];
  }
  return r;
}

namespace {

void enumerate_rec(const CallGraph& graph, FunctionId at, FunctionId target,
                   const std::vector<bool>& reaches, std::vector<unsigned>& visits,
                   unsigned max_cycle_visits, CallingContext& path,
                   std::vector<CallingContext>& out, std::size_t limit) {
  if (at == target) {
    if (out.size() >= limit) {
      throw std::length_error("enumerate_contexts: context count exceeds limit");
    }
    out.push_back(path);
    // A target may itself call onward back into the graph; contexts end at
    // the target, so do not recurse past it.
    return;
  }
  for (CallSiteId s : graph.outgoing(at)) {
    const FunctionId callee = graph.site(s).callee;
    // Prune subgraphs that cannot reach the target: they contribute no
    // contexts and can be exponentially large (or cyclic).
    if (!reaches[callee]) continue;
    if (visits[callee] > max_cycle_visits) continue;
    ++visits[callee];
    path.push_back(s);
    enumerate_rec(graph, callee, target, reaches, visits, max_cycle_visits, path,
                  out, limit);
    path.pop_back();
    --visits[callee];
  }
}

}  // namespace

std::vector<CallingContext> enumerate_contexts(const CallGraph& graph, FunctionId root,
                                               FunctionId target, std::size_t limit,
                                               unsigned max_cycle_visits) {
  if (root >= graph.function_count() || target >= graph.function_count()) {
    throw std::out_of_range("enumerate_contexts: unknown function");
  }
  std::vector<CallingContext> out;
  CallingContext path;
  const Reachability reach = compute_reachability(graph, {target});
  if (!reach.reaches_target[root]) return out;
  std::vector<unsigned> visits(graph.function_count(), 0);
  visits[root] = 1;
  enumerate_rec(graph, root, target, reach.reaches_target, visits, max_cycle_visits,
                path, out, limit);
  return out;
}

}  // namespace ht::cce
