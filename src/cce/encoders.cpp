#include "cce/encoders.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

#include "support/hash.hpp"

namespace ht::cce {

std::uint64_t Encoder::encode(const CallingContext& context) const noexcept {
  std::uint64_t v = 0;
  for (CallSiteId s : context) {
    if (plan_.is_instrumented(s)) v = apply(v, s);
  }
  return v;
}

PccEncoder::PccEncoder(InstrumentationPlan plan, PccParams params)
    : Encoder(std::move(plan)), params_(params) {
  if (params_.multiplier == 0) {
    throw EncodingError("PCC multiplier must be non-zero");
  }
}

std::uint64_t PccEncoder::site_constant(CallSiteId site) const noexcept {
  return support::mix64(params_.salt ^ (static_cast<std::uint64_t>(site) + 1));
}

std::uint64_t PccEncoder::apply(std::uint64_t v, CallSiteId site) const noexcept {
  return params_.multiplier * v + site_constant(site);
}

namespace {

/// Reverse topological order of the functions that reach a target,
/// restricted to reaching edges. Throws EncodingError on cycles.
std::vector<FunctionId> reverse_topo_order(const CallGraph& graph,
                                           const Reachability& reach,
                                           const std::vector<bool>& is_target) {
  const std::size_t n = graph.function_count();
  // Kahn's algorithm over the reaching subgraph. Edges out of targets are
  // excluded: contexts terminate at the first target reached.
  std::vector<std::size_t> out_degree(n, 0);
  for (const CallSite& s : graph.sites()) {
    if (!reach.reaches_target[s.caller] || is_target[s.caller]) continue;
    if (reach.site_reaches_target[s.id]) ++out_degree[s.caller];
  }
  std::deque<FunctionId> ready;
  std::size_t member_count = 0;
  for (FunctionId f = 0; f < n; ++f) {
    if (!reach.reaches_target[f]) continue;
    ++member_count;
    if (out_degree[f] == 0) ready.push_back(f);  // targets and leaves
  }
  std::vector<FunctionId> order;
  order.reserve(member_count);
  while (!ready.empty()) {
    const FunctionId f = ready.front();
    ready.pop_front();
    order.push_back(f);
    for (CallSiteId s : graph.incoming(f)) {
      const FunctionId caller = graph.site(s).caller;
      if (!reach.reaches_target[caller] || is_target[caller]) continue;
      if (!reach.site_reaches_target[s]) continue;
      if (--out_degree[caller] == 0) ready.push_back(caller);
    }
  }
  if (order.size() != member_count) {
    throw EncodingError(
        "AdditiveEncoder requires an acyclic target-reaching call graph "
        "(recursive programs need the PCC encoder)");
  }
  return order;
}

}  // namespace

AdditiveEncoder::AdditiveEncoder(const CallGraph& graph,
                                 const std::vector<FunctionId>& targets,
                                 InstrumentationPlan plan, FunctionId root)
    : Encoder(std::move(plan)), graph_(graph), root_(root) {
  if (this->plan().strategy == Strategy::kIncremental) {
    throw EncodingError(
        "AdditiveEncoder does not support the Incremental plan; use PccEncoder "
        "and key lookups on {target_fn, CCID}");
  }
  if (root >= graph.function_count()) {
    throw EncodingError("AdditiveEncoder: unknown root function");
  }
  is_target_.assign(graph.function_count(), false);
  for (FunctionId t : targets) {
    if (t >= graph.function_count()) {
      throw EncodingError("AdditiveEncoder: unknown target function");
    }
    is_target_[t] = true;
  }

  const Reachability reach = compute_reachability(graph, targets);
  increments_.assign(graph.call_site_count(), 0);
  num_paths_.assign(graph.function_count(), 0);

  // Ball-Larus numbering in reverse topological order: targets have exactly
  // one (empty) context suffix; every other reaching node sums its reaching
  // out-edges, assigning each edge the prefix-sum increment.
  for (FunctionId f : reverse_topo_order(graph, reach, is_target_)) {
    if (is_target_[f]) {
      num_paths_[f] = 1;
      continue;
    }
    std::uint64_t acc = 0;
    for (CallSiteId s : graph.outgoing(f)) {
      if (!reach.site_reaches_target[s]) continue;
      const std::uint64_t callee_paths = num_paths_[graph.site(s).callee];
      if (acc > std::numeric_limits<std::uint64_t>::max() - callee_paths) {
        throw EncodingError("AdditiveEncoder: context count overflows 64 bits");
      }
      increments_[s] = acc;
      acc += callee_paths;
    }
    num_paths_[f] = acc;
  }

  // Sanity: every instrumented site the plan selects must be a reaching
  // site; FCS plans legitimately include non-reaching sites, whose
  // increments stay 0 and therefore never perturb encodings.
}

std::uint64_t AdditiveEncoder::apply(std::uint64_t v, CallSiteId site) const noexcept {
  return v + (site < increments_.size() ? increments_[site] : 0);
}

std::uint64_t AdditiveEncoder::num_contexts() const noexcept {
  return is_target_[root_] ? 1 : num_paths_[root_];
}

std::uint64_t AdditiveEncoder::increment(CallSiteId site) const noexcept {
  return site < increments_.size() ? increments_[site] : 0;
}

std::optional<CallingContext> AdditiveEncoder::decode(std::uint64_t v) const {
  if (v >= num_contexts()) return std::nullopt;
  CallingContext context;
  FunctionId at = root_;
  std::uint64_t remaining = v;
  while (!is_target_[at]) {
    // Choose the reaching out-edge with the greatest increment <= remaining;
    // increments partition [0, num_paths_[at]) by construction.
    CallSiteId best = kInvalidCallSite;
    std::uint64_t best_inc = 0;
    for (CallSiteId s : graph_.outgoing(at)) {
      const FunctionId callee = graph_.site(s).callee;
      if (num_paths_[callee] == 0 && !is_target_[callee]) continue;  // non-reaching
      const std::uint64_t inc = increments_[s];
      if (inc <= remaining && (best == kInvalidCallSite || inc >= best_inc)) {
        best = s;
        best_inc = inc;
      }
    }
    if (best == kInvalidCallSite) return std::nullopt;  // corrupt value
    context.push_back(best);
    remaining -= best_inc;
    at = graph_.site(best).callee;
  }
  return remaining == 0 ? std::optional<CallingContext>(context) : std::nullopt;
}

bool CcidRegister::on_call(CallSiteId site) {
  saved_.push_back(v_);
  if (encoder_->plan().is_instrumented(site)) {
    v_ = encoder_->apply(v_, site);
    ++ops_;
    return true;
  }
  return false;
}

void CcidRegister::on_return() {
  if (saved_.empty()) throw std::logic_error("CcidRegister: return without call");
  v_ = saved_.back();
  saved_.pop_back();
}

}  // namespace ht::cce
