// Verification and collision-analysis utilities for encoding plans.
//
// The correctness claim behind the targeted optimizations (§IV) is a
// graph-theoretic lemma: two distinct calling contexts that end at the same
// target function must diverge at a node whose diverging out-edges both
// reach that target — i.e. at a *true branching* node, which every strategy
// (TCS ⊇ Slim ⊇ Incremental) instruments. Hence the *subsequences of
// instrumented call sites* differ, and any injective-per-sequence encoder
// distinguishes the contexts (exactly for Additive, probabilistically for
// PCC). These helpers check that lemma on concrete graphs and quantify PCC
// collision behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cce/call_graph.hpp"
#include "cce/encoders.hpp"
#include "cce/strategies.hpp"

namespace ht::cce {

/// The subsequence of `context` consisting of its instrumented sites.
[[nodiscard]] std::vector<CallSiteId> instrumented_subsequence(
    const InstrumentationPlan& plan, const CallingContext& context);

struct DistinguishabilityReport {
  /// Total contexts enumerated across all targets.
  std::size_t contexts = 0;
  /// Pairs of same-target contexts whose instrumented subsequences collide.
  /// Must be zero for a sound plan on the given graph.
  std::size_t ambiguous_pairs = 0;

  [[nodiscard]] bool sound() const noexcept { return ambiguous_pairs == 0; }
};

/// Enumerates every context from `root` to each target (cycle-bounded) and
/// checks pairwise that same-target contexts keep distinct instrumented
/// subsequences under `plan`.
[[nodiscard]] DistinguishabilityReport verify_plan_distinguishability(
    const CallGraph& graph, FunctionId root, const std::vector<FunctionId>& targets,
    const InstrumentationPlan& plan, std::size_t context_limit = 1 << 16);

struct CollisionReport {
  std::size_t contexts = 0;
  std::size_t distinct_encodings = 0;
  /// Context pairs (same target) that share an encoding.
  std::size_t colliding_pairs = 0;
};

/// Encodes every enumerated context and counts same-target encoding
/// collisions — the event that, per §IV, merely over-enhances a buffer.
[[nodiscard]] CollisionReport analyze_collisions(const CallGraph& graph,
                                                 FunctionId root,
                                                 const std::vector<FunctionId>& targets,
                                                 const Encoder& encoder,
                                                 std::size_t context_limit = 1 << 16);

}  // namespace ht::cce
