// Reference graphs used in tests, benches and the encoding_optimizer
// example — including a reconstruction of the paper's Fig. 2.
#pragma once

#include <cstdint>

#include "cce/call_graph.hpp"
#include "support/rng.hpp"

namespace ht::cce {

/// The worked example of §IV (Fig. 2), reconstructed to satisfy every
/// statement in the text:
///  - TCS prunes exactly the edges DH and HI (§IV-A);
///  - Slim additionally prunes exactly the call sites of the non-branching
///    nodes B and E (§IV-B);
///  - Incremental instruments exactly {AB, AC, CE, CF}: A and C are true
///    branching nodes ("its two outgoing edges can reach T1"), F is a false
///    branching node, and the two calling contexts that reach T2 are
///    distinguished by AB vs AC alone (§IV-C).
struct Fig2Graph {
  CallGraph graph;
  FunctionId a, b, c, d, e, f, h, i, t1, t2;
  CallSiteId ab, ac, bf, ce, cf, et1, ft1, ft2, dh, hi;

  [[nodiscard]] std::vector<FunctionId> targets() const { return {t1, t2}; }
};

[[nodiscard]] inline Fig2Graph make_fig2_graph() {
  Fig2Graph g;
  g.a = g.graph.add_function("A");
  g.b = g.graph.add_function("B");
  g.c = g.graph.add_function("C");
  g.d = g.graph.add_function("D");
  g.e = g.graph.add_function("E");
  g.f = g.graph.add_function("F");
  g.h = g.graph.add_function("H");
  g.i = g.graph.add_function("I");
  g.t1 = g.graph.add_function("T1");
  g.t2 = g.graph.add_function("T2");
  g.ab = g.graph.add_call_site(g.a, g.b);
  g.ac = g.graph.add_call_site(g.a, g.c);
  g.bf = g.graph.add_call_site(g.b, g.f);
  g.ce = g.graph.add_call_site(g.c, g.e);
  g.cf = g.graph.add_call_site(g.c, g.f);
  g.et1 = g.graph.add_call_site(g.e, g.t1);
  g.ft1 = g.graph.add_call_site(g.f, g.t1);
  g.ft2 = g.graph.add_call_site(g.f, g.t2);
  g.dh = g.graph.add_call_site(g.d, g.h);
  g.hi = g.graph.add_call_site(g.h, g.i);
  return g;
}

/// Parameters for random layered DAG generation (property tests, ablations).
struct RandomDagParams {
  std::uint32_t layers = 6;
  std::uint32_t functions_per_layer = 5;
  std::uint32_t max_fanout = 3;       ///< call sites per function (>=1)
  std::uint32_t target_count = 2;     ///< targets placed in the last layer
  double skip_layer_probability = 0.2;  ///< edge may jump one layer ahead
};

struct RandomDag {
  CallGraph graph;
  FunctionId root;
  std::vector<FunctionId> targets;
};

/// Builds a random layered DAG: functions in layer k call functions in layer
/// k+1 (or k+2 with `skip_layer_probability`); targets live in the final
/// layer and every function in the penultimate layers can reach them.
[[nodiscard]] RandomDag make_random_dag(support::Rng& rng, const RandomDagParams& params);

}  // namespace ht::cce
