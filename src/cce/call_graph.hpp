// Call-graph representation for targeted calling-context encoding.
//
// The paper's encoding optimizations (§IV) are pure call-graph algorithms:
// given a graph G = (V, E) where nodes are functions and edges are *call
// sites* (a caller may contain several distinct call sites to the same
// callee, and each is a separate edge), and a set of target functions
// (allocation APIs for HeapTherapy+), decide which call sites must be
// instrumented with an encoding update.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ht::cce {

using FunctionId = std::uint32_t;
using CallSiteId = std::uint32_t;

inline constexpr FunctionId kInvalidFunction = UINT32_MAX;
inline constexpr CallSiteId kInvalidCallSite = UINT32_MAX;

/// One call-graph edge: a static call site inside `caller` invoking `callee`.
struct CallSite {
  CallSiteId id = kInvalidCallSite;
  FunctionId caller = kInvalidFunction;
  FunctionId callee = kInvalidFunction;
};

/// A calling context: the sequence of call sites on the stack, outermost
/// first. The final site's callee is the context's target function.
using CallingContext = std::vector<CallSiteId>;

/// Immutable-after-build directed multigraph of functions and call sites.
///
/// Invariants:
///  - function ids are dense [0, function_count)
///  - call-site ids are dense [0, call_site_count)
///  - adjacency lists are kept in insertion order (deterministic iteration)
class CallGraph {
 public:
  /// Registers a function; names must be unique and non-empty.
  FunctionId add_function(std::string name);

  /// Registers a call site from `caller` to `callee` (both must exist).
  CallSiteId add_call_site(FunctionId caller, FunctionId callee);

  [[nodiscard]] std::size_t function_count() const noexcept { return names_.size(); }
  [[nodiscard]] std::size_t call_site_count() const noexcept { return sites_.size(); }

  [[nodiscard]] const std::string& function_name(FunctionId f) const { return names_.at(f); }
  [[nodiscard]] std::optional<FunctionId> find_function(std::string_view name) const;

  [[nodiscard]] const CallSite& site(CallSiteId s) const { return sites_.at(s); }
  [[nodiscard]] const std::vector<CallSiteId>& outgoing(FunctionId f) const {
    return out_.at(f);
  }
  [[nodiscard]] const std::vector<CallSiteId>& incoming(FunctionId f) const {
    return in_.at(f);
  }

  /// All call sites, id order.
  [[nodiscard]] const std::vector<CallSite>& sites() const noexcept { return sites_; }

  /// True if the graph (viewed as a function-level digraph) has a cycle,
  /// i.e. the program is (mutually) recursive.
  [[nodiscard]] bool has_cycle() const;

  /// True if `context` is a well-formed path in this graph: consecutive
  /// sites chain caller->callee and the path starts at `root`.
  [[nodiscard]] bool is_valid_context(const CallingContext& context,
                                      FunctionId root) const;

  /// Graphviz dump (functions as nodes, call sites as labeled edges) for
  /// debugging and the encoding_optimizer example.
  [[nodiscard]] std::string to_dot(const std::vector<FunctionId>& highlight_targets = {},
                                   const std::vector<bool>* instrumented = nullptr) const;

 private:
  std::vector<std::string> names_;
  std::vector<CallSite> sites_;
  std::vector<std::vector<CallSiteId>> out_;
  std::vector<std::vector<CallSiteId>> in_;
};

/// Per-function reachability to a target set.
struct Reachability {
  /// reaches_target[f] == true iff f is a target or some path of calls from
  /// f arrives at a target.
  std::vector<bool> reaches_target;
  /// site_reaches_target[s] == true iff the edge's callee is a target or can
  /// reach one — i.e. site s may appear in some calling context of a target.
  std::vector<bool> site_reaches_target;
};

/// Backward BFS over incoming edges from every target (handles cycles).
[[nodiscard]] Reachability compute_reachability(const CallGraph& graph,
                                                const std::vector<FunctionId>& targets);

/// Enumerate every calling context from `root` to `target`, for ground-truth
/// checks and decoding in tests. Recursion is bounded: a cycle may be taken
/// at most `max_cycle_visits` times per path. Results are capped at `limit`
/// contexts (throws std::length_error beyond it, to catch runaway graphs).
[[nodiscard]] std::vector<CallingContext> enumerate_contexts(
    const CallGraph& graph, FunctionId root, FunctionId target,
    std::size_t limit = 1 << 20, unsigned max_cycle_visits = 1);

}  // namespace ht::cce
