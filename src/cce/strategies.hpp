// Instrumentation strategies: FCS and the three targeted optimizations.
//
// §IV of the paper. Given a call graph and the set of target functions
// (for HeapTherapy+: the heap allocation APIs), each strategy selects the
// set of call sites that receive an encoding update:
//
//  - FCS (Full Call Site): every call site — the baseline enforced by the
//    original PCC / PCCE / DeltaPath encoders.
//  - TCS (Targeted Call Site): only call sites that may appear in a calling
//    context of a target function (backward reachability, §IV-A).
//  - Slim: TCS minus call sites in *non-branching* nodes — nodes with at
//    most one outgoing edge that reaches a target; such sites cannot affect
//    distinguishability of encodings (§IV-B).
//  - Incremental: only call sites in *true branching* nodes — nodes with two
//    or more outgoing edges that reach the *same* target (Algorithm 1,
//    §IV-C). Consumers must then key defenses on the {target_fn, CCID} pair
//    rather than the CCID alone, which HeapTherapy+'s patch table does.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cce/call_graph.hpp"

namespace ht::cce {

enum class Strategy : std::uint8_t { kFcs, kTcs, kSlim, kIncremental };

[[nodiscard]] std::string_view strategy_name(Strategy s) noexcept;
inline constexpr Strategy kAllStrategies[] = {Strategy::kFcs, Strategy::kTcs,
                                              Strategy::kSlim, Strategy::kIncremental};

/// The output of a strategy: which call sites carry an encoding update.
struct InstrumentationPlan {
  Strategy strategy = Strategy::kFcs;
  /// Indexed by CallSiteId.
  std::vector<bool> instrumented;

  [[nodiscard]] std::size_t instrumented_count() const;
  [[nodiscard]] bool is_instrumented(CallSiteId s) const {
    return s < instrumented.size() && instrumented[s];
  }
  /// Instrumented fraction of all call sites; the paper uses this as the
  /// proxy driver for binary-size increase (Table III).
  [[nodiscard]] double instrumented_fraction() const;
};

/// Computes the instrumentation plan for `strategy`.
/// Targets must be valid functions of `graph`; duplicates are tolerated.
[[nodiscard]] InstrumentationPlan compute_plan(const CallGraph& graph,
                                               const std::vector<FunctionId>& targets,
                                               Strategy strategy);

/// Classification used by Slim/Incremental, exposed for tests and the
/// encoding_optimizer example.
struct NodeClassification {
  /// Out-edges of the node that can reach (or are) a target.
  std::vector<CallSiteId> reaching_out_edges;
  /// Slim's notion: >= 2 out-edges reach *some* target.
  bool branching = false;
  /// Incremental's notion: >= 2 out-edges reach the *same* target.
  bool true_branching = false;
};

[[nodiscard]] std::vector<NodeClassification> classify_nodes(
    const CallGraph& graph, const std::vector<FunctionId>& targets);

}  // namespace ht::cce
