#include "cce/verify.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace ht::cce {

std::vector<CallSiteId> instrumented_subsequence(const InstrumentationPlan& plan,
                                                 const CallingContext& context) {
  std::vector<CallSiteId> out;
  out.reserve(context.size());
  for (CallSiteId s : context) {
    if (plan.is_instrumented(s)) out.push_back(s);
  }
  return out;
}

DistinguishabilityReport verify_plan_distinguishability(
    const CallGraph& graph, FunctionId root, const std::vector<FunctionId>& targets,
    const InstrumentationPlan& plan, std::size_t context_limit) {
  DistinguishabilityReport report;
  for (FunctionId t : targets) {
    const auto contexts = enumerate_contexts(graph, root, t, context_limit);
    report.contexts += contexts.size();
    // Group by instrumented subsequence; any group of size > 1 is ambiguity.
    std::map<std::vector<CallSiteId>, std::size_t> groups;
    for (const auto& ctx : contexts) {
      ++groups[instrumented_subsequence(plan, ctx)];
    }
    for (const auto& [subseq, n] : groups) {
      if (n > 1) report.ambiguous_pairs += n * (n - 1) / 2;
    }
  }
  return report;
}

CollisionReport analyze_collisions(const CallGraph& graph, FunctionId root,
                                   const std::vector<FunctionId>& targets,
                                   const Encoder& encoder, std::size_t context_limit) {
  CollisionReport report;
  std::unordered_map<std::uint64_t, std::size_t> global;
  for (FunctionId t : targets) {
    const auto contexts = enumerate_contexts(graph, root, t, context_limit);
    report.contexts += contexts.size();
    std::unordered_map<std::uint64_t, std::size_t> per_target;
    for (const auto& ctx : contexts) {
      const std::uint64_t enc = encoder.encode(ctx);
      ++per_target[enc];
      ++global[enc];
    }
    for (const auto& [enc, n] : per_target) {
      if (n > 1) report.colliding_pairs += n * (n - 1) / 2;
    }
  }
  report.distinct_encodings = global.size();
  return report;
}

}  // namespace ht::cce
