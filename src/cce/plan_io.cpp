#include "cce/plan_io.hpp"

#include <sstream>

#include "support/hash.hpp"
#include "support/str.hpp"

namespace ht::cce {

std::uint64_t graph_fingerprint(const CallGraph& graph) {
  std::uint64_t h = support::fnv1a64("ht-callgraph-v1");
  for (FunctionId f = 0; f < graph.function_count(); ++f) {
    h = support::hash_combine(h, support::fnv1a64(graph.function_name(f)));
  }
  for (const CallSite& s : graph.sites()) {
    h = support::hash_combine(h, (static_cast<std::uint64_t>(s.caller) << 32) |
                                     s.callee);
  }
  return h;
}

std::string serialize_plan(const InstrumentationPlan& plan, const CallGraph& graph) {
  std::ostringstream os;
  os << "# HeapTherapy+ instrumentation plan\n";
  os << "version 1\n";
  os << "strategy " << strategy_name(plan.strategy) << "\n";
  char hex[24];
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(graph_fingerprint(graph)));
  os << "graph " << hex << "\n";
  os << "sites " << graph.call_site_count() << "\n";
  os << "instrumented";
  for (CallSiteId s = 0; s < plan.instrumented.size(); ++s) {
    if (plan.instrumented[s]) os << ' ' << s;
  }
  os << "\n";
  return os.str();
}

PlanParseResult parse_plan(std::string_view text, const CallGraph& graph) {
  PlanParseResult result;
  InstrumentationPlan plan;
  plan.instrumented.assign(graph.call_site_count(), false);
  bool version_ok = false, strategy_ok = false, graph_ok = false, sites_ok = false;

  for (std::string_view raw_line : support::split(text, '\n')) {
    const std::string_view line = support::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string_view> fields;
    for (std::string_view f : support::split(line, ' ')) {
      if (!support::trim(f).empty()) fields.push_back(support::trim(f));
    }
    if (fields.empty()) continue;

    if (fields[0] == "version") {
      version_ok = fields.size() == 2 && support::parse_u64(fields[1]) == 1;
      if (!version_ok) {
        result.error = "unsupported plan version";
        return result;
      }
    } else if (fields[0] == "strategy") {
      for (Strategy s : kAllStrategies) {
        if (fields.size() == 2 && fields[1] == strategy_name(s)) {
          plan.strategy = s;
          strategy_ok = true;
        }
      }
      if (!strategy_ok) {
        result.error = "unknown strategy";
        return result;
      }
    } else if (fields[0] == "graph") {
      const auto fp = fields.size() == 2 ? support::parse_u64(fields[1])
                                         : std::nullopt;
      if (!fp || *fp != graph_fingerprint(graph)) {
        result.error = "graph fingerprint mismatch: plan was computed for a "
                       "different program";
        return result;
      }
      graph_ok = true;
    } else if (fields[0] == "sites") {
      const auto n = fields.size() == 2 ? support::parse_u64(fields[1])
                                        : std::nullopt;
      if (!n || *n != graph.call_site_count()) {
        result.error = "call-site count mismatch";
        return result;
      }
      sites_ok = true;
    } else if (fields[0] == "instrumented") {
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const auto id = support::parse_u64(fields[i]);
        if (!id || *id >= graph.call_site_count()) {
          result.error = "instrumented site id out of range";
          return result;
        }
        plan.instrumented[*id] = true;
      }
    } else {
      result.error = "unknown directive '" + std::string(fields[0]) + "'";
      return result;
    }
  }
  if (!version_ok || !strategy_ok || !graph_ok || !sites_ok) {
    result.error = "plan file incomplete (version/strategy/graph/sites required)";
    return result;
  }
  result.plan = std::move(plan);
  return result;
}

}  // namespace ht::cce
