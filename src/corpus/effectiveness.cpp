#include "corpus/effectiveness.hpp"

#include "patch/config_file.hpp"
#include "progmodel/interpreter.hpp"

namespace ht::corpus {

namespace {

/// Did the attack achieve any of its effects, per vulnerability class?
bool attack_effect_observed(std::uint8_t mask, const runtime::DefenseObservations& obs,
                            std::uint64_t legit_leak) {
  bool observed = false;
  if (mask & patch::kOverflow) {
    observed |= obs.oob_writes_landed > 0 || obs.oob_reads_landed > 0;
  }
  if (mask & patch::kUseAfterFree) {
    observed |= obs.stale_hits_reused > 0;
  }
  if (mask & patch::kUninitRead) {
    observed |= obs.leaked_nonzero_bytes > legit_leak;
  }
  return observed;
}

/// Did the defenses neutralize every attack effect?
bool attack_blocked(std::uint8_t mask, const runtime::DefenseObservations& obs,
                    std::uint64_t legit_leak) {
  if ((mask & patch::kOverflow) &&
      (obs.oob_writes_landed > 0 || obs.oob_reads_landed > 0)) {
    return false;  // some out-of-bounds access still landed
  }
  if ((mask & patch::kUseAfterFree) && obs.stale_hits_reused > 0) {
    return false;  // a dangling access still reached re-owned memory
  }
  if ((mask & patch::kUninitRead) && obs.leaked_nonzero_bytes > legit_leak) {
    return false;  // stale bytes still escaped
  }
  return true;
}

runtime::DefenseObservations run_online(const VulnerableProgram& v,
                                        const cce::Encoder& encoder,
                                        const patch::PatchTable* table,
                                        const progmodel::Input& input,
                                        std::uint64_t quota,
                                        bool* completed_clean = nullptr) {
  runtime::GuardedAllocatorConfig config;
  config.quarantine_quota_bytes = quota;
  runtime::GuardedAllocator allocator(table, config);
  runtime::GuardedBackend backend(allocator);
  progmodel::Interpreter interp(v.program, &encoder, backend);
  const progmodel::RunResult result = interp.run(input);
  if (completed_clean != nullptr) {
    // "Clean" online means the program ran to completion; blocked accesses
    // are the defense working, not a program failure.
    *completed_clean = result.completed;
  }
  return backend.observations();
}

}  // namespace

EffectivenessResult evaluate_effectiveness(const VulnerableProgram& v,
                                           const EffectivenessOptions& options) {
  EffectivenessResult result;
  result.name = v.name;
  result.expected_mask = v.expected_mask;

  const auto plan =
      cce::compute_plan(v.program.graph(), v.program.alloc_targets(), options.strategy);
  const cce::PccEncoder encoder(plan);

  // 1) Benign input: the offline analyzer must stay silent.
  const analysis::AnalysisReport benign_report =
      analysis::analyze_attack(v.program, &encoder, v.benign);
  result.benign_clean = !benign_report.attack_detected();

  // 2) Attack input: patches out.
  const analysis::AnalysisReport attack_report =
      analysis::analyze_attack(v.program, &encoder, v.attack);
  result.detected = attack_report.attack_detected();
  result.patch_count = attack_report.patches.size();
  for (const patch::Patch& p : attack_report.patches) result.patch_mask |= p.vuln_mask;

  // 3) Deployment path: serialize -> parse (the config file is the ABI).
  const patch::ParseResult reloaded =
      patch::parse_config(patch::serialize_config(attack_report.patches));
  result.config_round_trip =
      reloaded.ok() && reloaded.patches == attack_report.patches;

  // 4) Online, unpatched: the attack's effect is real.
  result.unpatched_obs = run_online(v, encoder, nullptr, v.attack,
                                    options.quarantine_quota_bytes);
  result.attack_effect_unpatched = attack_effect_observed(
      v.expected_mask, result.unpatched_obs, v.legit_nonzero_leak);

  // 5) Online, patched: the attack's effect is gone.
  const patch::PatchTable table(reloaded.patches, /*freeze=*/true);
  result.patched_obs =
      run_online(v, encoder, &table, v.attack, options.quarantine_quota_bytes);
  result.attack_blocked_patched =
      attack_blocked(v.expected_mask, result.patched_obs, v.legit_nonzero_leak);

  // 6) Online, patched, benign input: zero false positives.
  bool benign_completed = false;
  (void)run_online(v, encoder, &table, v.benign, options.quarantine_quota_bytes,
                   &benign_completed);
  result.benign_runs_patched = benign_completed;

  return result;
}

std::vector<EffectivenessResult> evaluate_corpus(
    const std::vector<VulnerableProgram>& corpus,
    const EffectivenessOptions& options) {
  std::vector<EffectivenessResult> results;
  results.reserve(corpus.size());
  for (const VulnerableProgram& v : corpus) {
    results.push_back(evaluate_effectiveness(v, options));
  }
  return results;
}

}  // namespace ht::corpus
