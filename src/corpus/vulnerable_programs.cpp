#include "corpus/vulnerable_programs.hpp"

#include "progmodel/builder.hpp"

namespace ht::corpus {

using progmodel::AllocFn;
using progmodel::Input;
using progmodel::ProgramBuilder;
using progmodel::ReadUse;
using progmodel::Value;

VulnerableProgram make_heartbleed() {
  // OpenSSL's tls1_process_heartbeat: the response buffer is 34 KB; the
  // attacker-declared payload length (up to 64 KB) is trusted, so the
  // response echoes `response_len` bytes out of a buffer holding only
  // `payload_len` fresh bytes — leaking stale heap (keys) and overreading.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto server = b.function("tls_server_loop");
  const auto load_keys = b.function("load_private_keys");
  const auto heartbeat = b.function("tls1_process_heartbeat");
  b.call(main_fn, server);
  b.call(server, load_keys);
  // Key material fills a 34 KB buffer that is later freed — the memory the
  // response buffer will recycle.
  b.alloc(load_keys, AllocFn::kMalloc, Value(34 * 1024), 0);
  b.write(load_keys, 0, Value(0), Value(34 * 1024));
  b.free(load_keys, 0);
  b.call(server, heartbeat);
  // The response buffer: same size class, allocated per heartbeat request.
  b.alloc(heartbeat, AllocFn::kMalloc, Value(34 * 1024), 1);
  b.write(heartbeat, 1, Value(0), Value::input(0));              // echo payload
  b.read(heartbeat, 1, Value(0), Value::input(1), ReadUse::kSyscall);  // send()
  b.free(heartbeat, 1);

  VulnerableProgram v;
  v.name = "heartbleed";
  v.reference = "CVE-2014-0160";
  v.expected_mask = patch::kUninitRead | patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{1024, 1024}};
  v.attack = Input{{1024, 64 * 1024}};  // the classic 64 KB heartbeat
  v.legit_nonzero_leak = 1024;          // only the echoed payload is legit
  return v;
}

VulnerableProgram make_bc() {
  // bc-1.06 (BugBench): more_arrays() under-allocates; storing the parsed
  // numbers runs past the array end and corrupts adjacent data.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto read_line = b.function("read_line");
  const auto parse = b.function("parse_expression");
  const auto push = b.function("bc_push_numbers");
  b.call(main_fn, read_line);
  b.call(read_line, parse);
  b.call(parse, push);
  b.alloc(push, AllocFn::kMalloc, Value(64 * 8), 0);  // 64-slot array
  b.write(push, 0, Value(0), Value::input(0));        // input-driven fill
  b.read(push, 0, Value(0), Value(64), ReadUse::kBranch);
  b.free(push, 0);

  VulnerableProgram v;
  v.name = "bc-1.06";
  v.reference = "BugBench heap overflow";
  v.expected_mask = patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{64 * 8}};
  v.attack = Input{{64 * 8 + 64}};  // writes 8 slots past the end
  return v;
}

VulnerableProgram make_ghostxps() {
  // GhostXPS 9.21: a glyph table is only partially initialized for some
  // crafted documents, and rendering consumes the uninitialized entries.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto parse = b.function("xps_parse_document");
  const auto glyphs = b.function("xps_load_glyphs");
  const auto render = b.function("xps_render_page");
  b.call(main_fn, parse);
  b.call(parse, glyphs);
  b.alloc(glyphs, AllocFn::kMalloc, Value(4096), 0);
  b.write(glyphs, 0, Value(0), Value::input(0));  // init only what the doc declares
  b.call(parse, render);
  // Rendering emits the glyph data into the output document (leaves the
  // process), so uninitialized entries are an information leak.
  b.read(render, 0, Value(0), Value::input(1), ReadUse::kSyscall);
  b.free(render, 0);

  VulnerableProgram v;
  v.name = "ghostxps-9.21";
  v.reference = "CVE-2017-9740";
  v.expected_mask = patch::kUninitRead;
  v.program = b.build();
  v.benign = Input{{4096, 4096}};
  v.attack = Input{{512, 2048}};  // renders past the initialized prefix
  v.legit_nonzero_leak = 512;     // the declared glyphs are legitimate output
  return v;
}

VulnerableProgram make_optipng() {
  // optipng-0.6.4: the palette buffer is freed during a reduction pass but
  // a stale pointer writes into it afterwards; a crafted PNG grooms the
  // freed slot to take control of the reused memory.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto optimize = b.function("opng_optimize");
  const auto reduce = b.function("opng_reduce_palette");
  const auto iterate = b.function("opng_iterate");
  b.call(main_fn, optimize);
  b.call(optimize, reduce);
  b.alloc(reduce, AllocFn::kMalloc, Value(1024), 0);  // the palette
  b.write(reduce, 0, Value(0), Value(1024));
  b.free(reduce, 0);  // freed during reduction...
  b.call(optimize, iterate);
  // ...the crafted image triggers an allocation that grooms the slot...
  b.alloc(iterate, AllocFn::kMalloc, Value(1024), 1);
  // ...and the stale palette pointer is written through (0 times = benign).
  b.begin_loop(iterate, Value::input(0));
  b.write(iterate, 0, Value(0), Value(64));
  b.end_loop(iterate);
  b.free(iterate, 1);

  VulnerableProgram v;
  v.name = "optipng-0.6.4";
  v.reference = "CVE-2015-7801";
  v.expected_mask = patch::kUseAfterFree;
  v.program = b.build();
  v.benign = Input{{0}};
  v.attack = Input{{1}};
  return v;
}

VulnerableProgram make_tiff() {
  // LibTIFF 4.0.8: t2p_write_pdf copies a full tile into a destination
  // sized from attacker-controlled header fields.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto tiff2pdf = b.function("t2p_write_pdf");
  const auto sample = b.function("t2p_sample_realize");
  b.call(main_fn, tiff2pdf);
  b.call(tiff2pdf, sample);
  b.alloc(sample, AllocFn::kMalloc, Value(2048), 0);  // the source tile
  b.write(sample, 0, Value(0), Value(2048));
  // Destination sized from the crafted header.
  b.alloc(sample, AllocFn::kMalloc, Value::input(0), 1);
  b.copy(sample, 0, Value(0), 1, Value(0), Value(2048));
  b.free(sample, 0);
  b.free(sample, 1);

  VulnerableProgram v;
  v.name = "tiff-4.0.8";
  v.reference = "CVE-2017-9935";
  v.expected_mask = patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{2048}};
  v.attack = Input{{512}};  // undersized destination
  return v;
}

VulnerableProgram make_wavpack() {
  // wavpack 5.1.0: metadata blocks are freed during parsing but decoded
  // afterwards through a dangling pointer (a read-side UAF).
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto parse = b.function("parse_wavpack_header");
  const auto meta = b.function("read_metadata_buff");
  const auto decode = b.function("unpack_samples");
  b.call(main_fn, parse);
  b.call(parse, meta);
  b.alloc(meta, AllocFn::kMalloc, Value(256), 0);
  b.write(meta, 0, Value(0), Value(256));
  b.free(meta, 0);  // crafted file frees the block early
  b.call(main_fn, decode);
  b.alloc(decode, AllocFn::kMalloc, Value(256), 1);  // decoder work buffer (grooms)
  b.begin_loop(decode, Value::input(0));
  b.read(decode, 0, Value(0), Value(128), ReadUse::kBranch);  // dangling read
  b.end_loop(decode);
  b.free(decode, 1);

  VulnerableProgram v;
  v.name = "wavpack-5.1.0";
  v.reference = "CVE-2018-7253";
  v.expected_mask = patch::kUseAfterFree;
  v.program = b.build();
  v.benign = Input{{0}};
  v.attack = Input{{1}};
  return v;
}

VulnerableProgram make_libming() {
  // libming 0.4.8: parseSWF_ACTIONRECORD overflows an action buffer whose
  // length field comes from the file.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto parse_swf = b.function("parseSWF");
  const auto parse_action = b.function("parseSWF_ACTIONRECORD");
  b.call(main_fn, parse_swf);
  b.call(parse_swf, parse_action);
  b.alloc(parse_action, AllocFn::kCalloc, Value(128), 0);
  b.write(parse_action, 0, Value(0), Value::input(0));
  b.free(parse_action, 0);

  VulnerableProgram v;
  v.name = "libming-0.4.8";
  v.reference = "CVE-2018-7877";
  v.expected_mask = patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{128}};
  v.attack = Input{{200}};
  return v;
}

std::vector<VulnerableProgram> make_table2_corpus() {
  std::vector<VulnerableProgram> corpus;
  corpus.push_back(make_heartbleed());
  corpus.push_back(make_bc());
  corpus.push_back(make_ghostxps());
  corpus.push_back(make_optipng());
  corpus.push_back(make_tiff());
  corpus.push_back(make_wavpack());
  corpus.push_back(make_libming());
  return corpus;
}

namespace {

/// Small helpers for the SAMATE-like suite. Every case routes its
/// allocation through a two-level call chain so CCIDs are non-trivial.

VulnerableProgram samate_overflow_write(int id, AllocFn fn, std::uint64_t size) {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto worker = b.function("process");
  b.call(main_fn, worker);
  b.alloc(worker, fn, Value(size), 0, Value(fn == AllocFn::kMemalign ? 64 : 0));
  b.write(worker, 0, Value(0), Value::input(0));
  b.free(worker, 0);
  VulnerableProgram v;
  v.name = "samate-" + std::to_string(id);
  v.reference = "overflow-write/" + std::string(progmodel::alloc_fn_name(fn));
  v.expected_mask = patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{size}};
  v.attack = Input{{size + 16}};
  return v;
}

VulnerableProgram samate_overread(int id, AllocFn fn, std::uint64_t size) {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto worker = b.function("serialize");
  b.call(main_fn, worker);
  b.alloc(worker, fn, Value(size), 0, Value(fn == AllocFn::kMemalign ? 32 : 0));
  b.write(worker, 0, Value(0), Value(size));
  b.read(worker, 0, Value(0), Value::input(0), ReadUse::kSyscall);
  b.free(worker, 0);
  VulnerableProgram v;
  v.name = "samate-" + std::to_string(id);
  v.reference = "overread/" + std::string(progmodel::alloc_fn_name(fn));
  v.expected_mask = patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{size}};
  v.attack = Input{{size + 32}};
  v.legit_nonzero_leak = size;
  return v;
}

VulnerableProgram samate_overflow_copy(int id, AllocFn fn) {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto worker = b.function("transform");
  b.call(main_fn, worker);
  b.alloc(worker, fn, Value(512), 0);
  b.write(worker, 0, Value(0), Value(512));
  b.alloc(worker, fn, Value::input(0), 1);
  b.copy(worker, 0, Value(0), 1, Value(0), Value(512));
  b.free(worker, 0);
  b.free(worker, 1);
  VulnerableProgram v;
  v.name = "samate-" + std::to_string(id);
  v.reference = "overflow-copy/" + std::string(progmodel::alloc_fn_name(fn));
  v.expected_mask = patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{512}};
  v.attack = Input{{128}};
  return v;
}

VulnerableProgram samate_uaf(int id, AllocFn fn, bool write_side, bool groom) {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto worker = b.function("session");
  const auto late = b.function("finalize");
  b.call(main_fn, worker);
  b.alloc(worker, fn, Value(192), 0, Value(fn == AllocFn::kMemalign ? 32 : 0));
  b.write(worker, 0, Value(0), Value(192));
  b.free(worker, 0);
  b.call(main_fn, late);
  if (groom) b.alloc(late, fn, Value(192), 1, Value(fn == AllocFn::kMemalign ? 32 : 0));
  b.begin_loop(late, Value::input(0));
  if (write_side) {
    b.write(late, 0, Value(0), Value(32));
  } else {
    b.read(late, 0, Value(0), Value(32), ReadUse::kBranch);
  }
  b.end_loop(late);
  if (groom) b.free(late, 1);
  VulnerableProgram v;
  v.name = "samate-" + std::to_string(id);
  v.reference = std::string("uaf-") + (write_side ? "write" : "read") + "/" +
                std::string(progmodel::alloc_fn_name(fn));
  v.expected_mask = patch::kUseAfterFree;
  v.program = b.build();
  v.benign = Input{{0}};
  v.attack = Input{{1}};
  return v;
}

VulnerableProgram samate_uninit(int id, AllocFn fn, ReadUse use) {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto worker = b.function("build_record");
  const auto emit = b.function("emit_record");
  b.call(main_fn, worker);
  b.alloc(worker, fn, Value(512), 0, Value(fn == AllocFn::kMemalign ? 64 : 0));
  b.write(worker, 0, Value(0), Value::input(0));
  b.call(main_fn, emit);
  b.read(emit, 0, Value(0), Value(512), use);
  b.free(emit, 0);
  VulnerableProgram v;
  v.name = "samate-" + std::to_string(id);
  v.reference = std::string("uninit-") + std::string(progmodel::read_use_name(use)) +
                "/" + std::string(progmodel::alloc_fn_name(fn));
  v.expected_mask = patch::kUninitRead;
  v.program = b.build();
  v.benign = Input{{512}};
  v.attack = Input{{64}};
  if (use == ReadUse::kSyscall) v.legit_nonzero_leak = 64;
  return v;
}

VulnerableProgram samate_uninit_via_copy(int id) {
  // Uninitialized data copied into a second buffer before the checked use:
  // exercises origin tracking end-to-end.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto worker = b.function("assemble");
  const auto sender = b.function("send_packet");
  b.call(main_fn, worker);
  b.alloc(worker, AllocFn::kMalloc, Value(256), 0);  // the vulnerable source
  b.write(worker, 0, Value(0), Value::input(0));
  b.alloc(worker, AllocFn::kMalloc, Value(256), 1);  // the packet
  b.copy(worker, 0, Value(0), 1, Value(0), Value(256));
  b.call(main_fn, sender);
  b.read(sender, 1, Value(0), Value(256), ReadUse::kSyscall);
  b.free(sender, 0);
  b.free(sender, 1);
  VulnerableProgram v;
  v.name = "samate-" + std::to_string(id);
  v.reference = "uninit-via-copy/origin-tracking";
  v.expected_mask = patch::kUninitRead;
  v.program = b.build();
  v.benign = Input{{256}};
  v.attack = Input{{32}};
  v.legit_nonzero_leak = 32;
  return v;
}

VulnerableProgram samate_uninit_realloc_growth(int id) {
  // realloc growth leaves the added region uninitialized; the patch must
  // key on the realloc-time context ({FUN=realloc, CCID}).
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto worker = b.function("grow_table");
  b.call(main_fn, worker);
  b.alloc(worker, AllocFn::kMalloc, Value(64), 0);
  b.write(worker, 0, Value(0), Value(64));
  b.realloc(worker, 0, Value(256));
  b.read(worker, 0, Value(0), Value::input(0), ReadUse::kBranch);
  b.free(worker, 0);
  VulnerableProgram v;
  v.name = "samate-" + std::to_string(id);
  v.reference = "uninit-realloc-growth";
  v.expected_mask = patch::kUninitRead;
  v.program = b.build();
  v.benign = Input{{64}};
  v.attack = Input{{256}};
  return v;
}

}  // namespace

std::vector<VulnerableProgram> make_samate_suite() {
  std::vector<VulnerableProgram> suite;
  int id = 1;
  // 9 overflow cases.
  for (AllocFn fn : {AllocFn::kMalloc, AllocFn::kCalloc, AllocFn::kMemalign}) {
    suite.push_back(samate_overflow_write(id++, fn, 128));
  }
  for (AllocFn fn : {AllocFn::kMalloc, AllocFn::kCalloc, AllocFn::kMemalign}) {
    suite.push_back(samate_overread(id++, fn, 96));
  }
  suite.push_back(samate_overflow_copy(id++, AllocFn::kMalloc));
  suite.push_back(samate_overflow_copy(id++, AllocFn::kCalloc));
  suite.push_back(samate_overflow_write(id++, AllocFn::kMalloc, 4096));
  // 7 use-after-free cases.
  suite.push_back(samate_uaf(id++, AllocFn::kMalloc, /*write=*/true, /*groom=*/true));
  suite.push_back(samate_uaf(id++, AllocFn::kMalloc, /*write=*/false, /*groom=*/true));
  suite.push_back(samate_uaf(id++, AllocFn::kCalloc, /*write=*/true, /*groom=*/true));
  suite.push_back(samate_uaf(id++, AllocFn::kCalloc, /*write=*/false, /*groom=*/true));
  suite.push_back(samate_uaf(id++, AllocFn::kMemalign, /*write=*/true, /*groom=*/true));
  suite.push_back(samate_uaf(id++, AllocFn::kMalloc, /*write=*/true, /*groom=*/false));
  suite.push_back(samate_uaf(id++, AllocFn::kMalloc, /*write=*/false, /*groom=*/false));
  // 7 uninitialized-read cases.
  suite.push_back(samate_uninit(id++, AllocFn::kMalloc, ReadUse::kBranch));
  suite.push_back(samate_uninit(id++, AllocFn::kMalloc, ReadUse::kAddress));
  suite.push_back(samate_uninit(id++, AllocFn::kMalloc, ReadUse::kSyscall));
  suite.push_back(samate_uninit(id++, AllocFn::kMemalign, ReadUse::kBranch));
  suite.push_back(samate_uninit(id++, AllocFn::kAlignedAlloc, ReadUse::kSyscall));
  suite.push_back(samate_uninit_via_copy(id++));
  suite.push_back(samate_uninit_realloc_growth(id++));
  return suite;
}

}  // namespace ht::corpus
