#include "corpus/extended_corpus.hpp"

#include "progmodel/builder.hpp"

namespace ht::corpus {

using progmodel::AllocFn;
using progmodel::Input;
using progmodel::ProgramBuilder;
using progmodel::ReadUse;
using progmodel::Value;

VulnerableProgram make_eternalblue_like() {
  // srv!SrvOs2FeaListToNt-style: the NT FEA list buffer is sized from the
  // (attacker-controlled) converted size field, but the conversion loop
  // copies the OS/2 list's full length.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto smb = b.function("smb_dispatch");
  const auto convert = b.function("os2fea_to_ntfea");
  b.call(main_fn, smb);
  b.call(smb, convert);
  // The incoming OS/2 FEA list (attacker bytes).
  b.alloc(convert, AllocFn::kMalloc, Value(4096), 0);
  b.write(convert, 0, Value(0), Value(4096));
  // Destination sized from the *converted* size field = input0.
  b.alloc(convert, AllocFn::kMalloc, Value::input(0), 1);
  // The copy uses the OS/2 length = input1.
  b.copy(convert, 0, Value(0), 1, Value(0), Value::input(1));
  b.free(convert, 0);
  b.free(convert, 1);

  VulnerableProgram v;
  v.name = "eternalblue-like";
  v.reference = "MS17-010 size-confusion overwrite (paper §I)";
  v.expected_mask = patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{4096, 4096}};
  v.attack = Input{{1024, 4096}};  // dst sized 1 KB, 4 KB copied
  return v;
}

VulnerableProgram make_realloc_confusion() {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto engine = b.function("script_engine");
  const auto shrink = b.function("table_compact");
  b.call(main_fn, engine);
  // The table starts large and fully initialized.
  b.alloc(engine, AllocFn::kMalloc, Value(1024), 0);
  b.write(engine, 0, Value(0), Value(1024));
  b.call(engine, shrink);
  // Compaction shrinks via realloc to the attacker-declared element count...
  b.realloc(shrink, 0, Value::input(0));
  // ...but the writer still uses the stale (old) length.
  b.write(shrink, 0, Value(0), Value::input(1));
  b.free(shrink, 0);

  VulnerableProgram v;
  v.name = "realloc-confusion";
  v.reference = "realloc size-confusion (scripting-engine heap style)";
  v.expected_mask = patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{1024, 1024}};
  v.attack = Input{{256, 1024}};  // shrunk to 256, still writes 1024
  return v;
}

VulnerableProgram make_session_uaf() {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto accept = b.function("accept_connection");
  const auto error_path = b.function("protocol_error");
  const auto event_loop = b.function("event_loop_tick");
  b.call(main_fn, accept);
  b.alloc(accept, AllocFn::kCalloc, Value(320), 0);  // the session object
  b.write(accept, 0, Value(0), Value(320));
  b.call(main_fn, error_path);
  b.free(error_path, 0);  // session destroyed on protocol error...
  b.call(main_fn, event_loop);
  // ...the attacker grooms the freed slot with a same-size allocation...
  b.alloc(event_loop, AllocFn::kCalloc, Value(320), 1);
  b.write(event_loop, 1, Value(0), Value(320));
  // ...and a queued callback still dereferences the dead session.
  b.begin_loop(event_loop, Value::input(0));
  b.read(event_loop, 0, Value(16), Value(8), ReadUse::kAddress);  // vtable-ish
  b.end_loop(event_loop);
  b.free(event_loop, 1);

  VulnerableProgram v;
  v.name = "session-uaf";
  v.reference = "server session recycling use-after-free";
  v.expected_mask = patch::kUseAfterFree;
  v.program = b.build();
  v.benign = Input{{0}};
  v.attack = Input{{1}};
  return v;
}

VulnerableProgram make_double_trouble() {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto parse = b.function("parse_request");
  const auto respond = b.function("build_response");
  b.call(main_fn, parse);
  // Scratch buffer: initialized only as far as the request declares.
  b.alloc(parse, AllocFn::kMalloc, Value(512), 0);
  b.write(parse, 0, Value(0), Value::input(0));
  b.call(main_fn, respond);
  // Response buffer sized from another attacker field; the serializer
  // emits the whole scratch buffer (uninit read) into it (overflow when
  // undersized).
  b.alloc(respond, AllocFn::kMalloc, Value::input(1), 1);
  b.copy(respond, 0, Value(0), 1, Value(0), Value(512));
  b.read(respond, 1, Value(0), Value::input(1), ReadUse::kSyscall);
  b.free(respond, 0);
  b.free(respond, 1);

  VulnerableProgram v;
  v.name = "double-trouble";
  v.reference = "one input, two vulnerable buffers (§V multi-vuln handling)";
  v.expected_mask = patch::kUninitRead | patch::kOverflow;
  v.program = b.build();
  v.benign = Input{{512, 512}};
  v.attack = Input{{64, 128}};  // 64 init of 512 scratch; 128-byte response
  v.legit_nonzero_leak = 64;
  return v;
}

std::vector<VulnerableProgram> make_extended_corpus() {
  std::vector<VulnerableProgram> corpus;
  corpus.push_back(make_eternalblue_like());
  corpus.push_back(make_realloc_confusion());
  corpus.push_back(make_session_uaf());
  corpus.push_back(make_double_trouble());
  return corpus;
}

}  // namespace ht::corpus
