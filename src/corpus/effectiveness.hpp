// End-to-end effectiveness evaluation (§VIII-A / Table II).
//
// For one vulnerable program, the harness runs the paper's whole pipeline:
//   1. benign input through offline analysis  -> must produce no patch;
//   2. attack input through offline analysis  -> patches {FUN, CCID, T};
//   3. patches serialized through the config file and reloaded (the
//      code-less deployment path);
//   4. attack replayed online WITHOUT patches -> attack effects observed;
//   5. attack replayed online WITH patches    -> attack effects absent;
//   6. benign input replayed online WITH patches -> still runs clean
//      (zero false positives: enhancement never breaks the program).
#pragma once

#include <string>
#include <vector>

#include "analysis/patch_generator.hpp"
#include "cce/strategies.hpp"
#include "corpus/vulnerable_programs.hpp"
#include "runtime/guarded_backend.hpp"

namespace ht::corpus {

struct EffectivenessResult {
  std::string name;
  std::uint8_t expected_mask = 0;

  // Offline phase.
  bool benign_clean = false;     ///< no patch generated from the benign input
  bool detected = false;         ///< attack input produced >= 1 patch
  std::uint8_t patch_mask = 0;   ///< union of generated patch masks
  std::size_t patch_count = 0;
  bool config_round_trip = false;  ///< patches survived the config file

  // Online phase.
  bool attack_effect_unpatched = false;  ///< attack observable without patches
  bool attack_blocked_patched = false;   ///< attack effects absent with patches
  bool benign_runs_patched = false;      ///< benign input clean under patches
  runtime::DefenseObservations unpatched_obs;
  runtime::DefenseObservations patched_obs;

  [[nodiscard]] bool pass() const noexcept {
    return benign_clean && detected && (patch_mask & expected_mask) == expected_mask &&
           config_round_trip && attack_blocked_patched && benign_runs_patched;
  }
};

struct EffectivenessOptions {
  cce::Strategy strategy = cce::Strategy::kIncremental;
  /// Online quarantine quota for UAF deferral.
  std::uint64_t quarantine_quota_bytes = 16ULL << 20;
};

/// Runs the full pipeline for one corpus entry.
[[nodiscard]] EffectivenessResult evaluate_effectiveness(
    const VulnerableProgram& program, const EffectivenessOptions& options = {});

/// Convenience: evaluate a whole corpus.
[[nodiscard]] std::vector<EffectivenessResult> evaluate_corpus(
    const std::vector<VulnerableProgram>& corpus,
    const EffectivenessOptions& options = {});

}  // namespace ht::corpus
