// The vulnerable-program corpus: synthetic twins of the paper's Table II.
//
// Each corpus entry models the *mechanics* of one real CVE/bug the paper
// evaluated on — buffer sizes, attacker-controlled lengths, the free/reuse
// discipline — as a synthetic program with one benign input and one attack
// input. What Table II measures is whether the pipeline (offline analysis ->
// patch -> online defense) detects the class and then blocks the attack;
// the twins exercise exactly those code paths end-to-end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "patch/patch.hpp"
#include "progmodel/program.hpp"

namespace ht::corpus {

struct VulnerableProgram {
  std::string name;       ///< e.g. "heartbleed"
  std::string reference;  ///< e.g. "CVE-2014-0160"
  /// Vulnerability-type bits the offline analysis is expected to find.
  std::uint8_t expected_mask = 0;
  progmodel::Program program;
  progmodel::Input benign;
  progmodel::Input attack;
  /// For leak-based attacks: the number of nonzero bytes the program
  /// legitimately emits on the attack input (e.g. the echoed payload).
  /// Any nonzero leak beyond this is stolen data.
  std::uint64_t legit_nonzero_leak = 0;
};

/// Heartbleed twin (CVE-2014-0160): a 34 KB response buffer, an
/// attacker-controlled length of up to 64 KB, heap pre-warmed with key
/// material. Inputs: [payload_len, response_len]. Attack leaks stale
/// secrets (uninit read) and overreads past the buffer (§VIII-A).
[[nodiscard]] VulnerableProgram make_heartbleed();

/// bc-1.06 twin (BugBench): the arbitrary-precision calculator's array
/// overflow — a fixed 64-slot array, input-driven element count.
[[nodiscard]] VulnerableProgram make_bc();

/// GhostXPS 9.21 twin (CVE-2017-9740): uninitialized read of a glyph
/// buffer whose initialization is input-dependent.
[[nodiscard]] VulnerableProgram make_ghostxps();

/// optipng-0.6.4 twin (CVE-2015-7801): use-after-free of the palette
/// buffer with attacker grooming of the freed slot.
[[nodiscard]] VulnerableProgram make_optipng();

/// LibTIFF 4.0.8 twin (CVE-2017-9935): heap overflow in t2p_write_pdf —
/// an oversized copy into an undersized destination.
[[nodiscard]] VulnerableProgram make_tiff();

/// wavpack 5.1.0 twin (CVE-2018-7253): use-after-free read during
/// metadata parsing.
[[nodiscard]] VulnerableProgram make_wavpack();

/// libming 0.4.8 twin (CVE-2018-7877): buffer overflow while parsing an
/// SWF action record.
[[nodiscard]] VulnerableProgram make_libming();

/// The whole Table II corpus, in the paper's row order.
[[nodiscard]] std::vector<VulnerableProgram> make_table2_corpus();

/// The SAMATE-like suite: 23 small vulnerable cases spanning overflow
/// (write/read/copy paths), use-after-free (write/read, grooming and not)
/// and uninitialized read (branch/syscall/copy-then-use), across malloc,
/// calloc, memalign and realloc allocations — the coverage role of the
/// paper's NIST SAMATE evaluation.
[[nodiscard]] std::vector<VulnerableProgram> make_samate_suite();

}  // namespace ht::corpus
