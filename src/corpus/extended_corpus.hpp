// Extended corpus: attack scenarios beyond the paper's Table II, built on
// the same mechanics the paper motivates in §I (EternalBlue/WannaCry) and
// §IX (multi-context exploits). Used by the extended effectiveness bench
// and the vulnerability-triage example.
#pragma once

#include "corpus/vulnerable_programs.hpp"

namespace ht::corpus {

/// EternalBlue-style (MS17-010) size-confusion overwrite: the SMB
/// conversion routine sizes the destination from one attacker field but
/// copies a length from another, overwriting the adjacent allocation —
/// the overflow WannaCry used for control-flow hijack (paper §I).
[[nodiscard]] VulnerableProgram make_eternalblue_like();

/// Realloc size-confusion (scripting-engine heap style): a table is
/// shrunk via realloc but the stale element count keeps writing at the old
/// length — an overflow whose vulnerable buffer is realloc-allocated, so
/// the patch must key on {FUN=realloc, CCID}.
[[nodiscard]] VulnerableProgram make_realloc_confusion();

/// Session recycling UAF (server-style): a connection object is freed on
/// error but the event loop still delivers one callback to it after an
/// attacker-groomed allocation took its place.
[[nodiscard]] VulnerableProgram make_session_uaf();

/// Two vulnerabilities in one request path: an uninit-read of a parser
/// scratch buffer *and* an overflow of the output buffer, exercising
/// multi-patch generation from a single input (§V "How to handle multiple
/// vulnerabilities").
[[nodiscard]] VulnerableProgram make_double_trouble();

/// All extended scenarios.
[[nodiscard]] std::vector<VulnerableProgram> make_extended_corpus();

}  // namespace ht::corpus
