// SPEC CPU2006 INT-shaped synthetic workloads.
//
// The paper's efficiency numbers (§VIII-B, Tables III & IV, Figs. 8 & 9)
// are driven by two per-benchmark characteristics that these profiles
// reproduce:
//   1. allocation intensity and API mix — taken from the paper's Table IV
//     (scaled down ~1000x so a full sweep runs in seconds), and
//   2. call-graph shape — how much of the graph reaches an allocation API
//      (TCS gains), how chain-like the reaching region is (Slim gains), and
//      how much branching is false-branching across different allocation
//      APIs (Incremental gains), tuned per benchmark to the reduction
//      pattern visible in the paper's Table III.
// Absolute numbers are ours; the per-benchmark *shape* (which benchmark is
// allocation-bound, where each optimization pays off) follows the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "progmodel/program.hpp"

namespace ht::workload {

struct SpecProfile {
  std::string name;

  // Paper Table IV allocation counts (unscaled, for reporting).
  std::uint64_t paper_malloc = 0;
  std::uint64_t paper_calloc = 0;
  std::uint64_t paper_realloc = 0;
  // Scaled counts actually executed by the synthetic workload.
  std::uint64_t mallocs = 0;
  std::uint64_t callocs = 0;
  std::uint64_t reallocs = 0;

  // Call-graph shape (Table III character).
  std::uint32_t hot_branching = 2;   ///< fanout among target-reaching nodes
  std::uint32_t hot_depth = 2;       ///< depth of the branching hot tree
  std::uint32_t hot_chain = 0;       ///< non-branching chain length per leaf
  std::uint32_t cold_functions = 0;  ///< functions that never reach allocators
  std::uint32_t cold_sites_per_fn = 2;
  /// Dispatcher nodes whose out-edges each reach a *different* allocation
  /// API — false branching nodes that Incremental prunes but Slim keeps.
  std::uint32_t false_branch_dispatchers = 0;

  // Runtime character (Figs. 8 & 9).
  std::uint32_t avg_alloc_size = 64;  ///< bytes
  std::uint32_t live_set = 64;        ///< concurrent live buffers in the trace
  std::uint32_t work_per_op = 4;      ///< synthetic compute units per allocation

  [[nodiscard]] std::uint64_t total_allocs() const noexcept {
    return mallocs + callocs + reallocs;
  }
};

/// The 12 CPU2006 INT profiles, in the paper's Table IV order.
[[nodiscard]] const std::vector<SpecProfile>& spec_profiles();
[[nodiscard]] const SpecProfile& spec_profile(std::string_view name);

/// Builds the synthetic instrumentable program for a profile: a cold
/// subgraph that never reaches an allocator, a hot tree whose leaves (after
/// optional non-branching chains) run the allocation loops, and optional
/// false-branching dispatchers over distinct allocation APIs. Running the
/// program performs exactly the profile's scaled allocation counts.
[[nodiscard]] progmodel::Program make_spec_program(const SpecProfile& profile);

}  // namespace ht::workload
