#include "workload/spec_profiles.hpp"

#include <stdexcept>

#include "progmodel/builder.hpp"

namespace ht::workload {

using progmodel::AllocFn;
using progmodel::ProgramBuilder;
using progmodel::ReadUse;
using progmodel::Value;

const std::vector<SpecProfile>& spec_profiles() {
  // Table IV counts; scaled ~1/1000 (small benchmarks kept exact).
  // Shape parameters follow each benchmark's Table III reduction pattern:
  // big cold_functions -> large TCS gain; big hot_chain -> large Slim gain;
  // false_branch_dispatchers -> extra Incremental gain.
  static const std::vector<SpecProfile> profiles = {
      {.name = "400.perlbench",
       .paper_malloc = 346405116, .paper_calloc = 0, .paper_realloc = 11736402,
       .mallocs = 346405, .callocs = 0, .reallocs = 11736,
       .hot_branching = 3, .hot_depth = 3, .hot_chain = 0,
       .cold_functions = 4, .cold_sites_per_fn = 2, .false_branch_dispatchers = 0,
       .avg_alloc_size = 48, .live_set = 512, .work_per_op = 1},
      {.name = "401.bzip2",
       .paper_malloc = 174, .paper_calloc = 0, .paper_realloc = 0,
       .mallocs = 174, .callocs = 0, .reallocs = 0,
       .hot_branching = 1, .hot_depth = 1, .hot_chain = 1,
       .cold_functions = 80, .cold_sites_per_fn = 3, .false_branch_dispatchers = 0,
       .avg_alloc_size = 16384, .live_set = 16, .work_per_op = 64},
      {.name = "403.gcc",
       .paper_malloc = 23690559, .paper_calloc = 4723237, .paper_realloc = 44688,
       .mallocs = 23690, .callocs = 4723, .reallocs = 45,
       .hot_branching = 3, .hot_depth = 3, .hot_chain = 1,
       .cold_functions = 6, .cold_sites_per_fn = 2, .false_branch_dispatchers = 0,
       .avg_alloc_size = 128, .live_set = 1024, .work_per_op = 6},
      {.name = "429.mcf",
       .paper_malloc = 5, .paper_calloc = 3, .paper_realloc = 0,
       .mallocs = 5, .callocs = 3, .reallocs = 0,
       .hot_branching = 2, .hot_depth = 1, .hot_chain = 0,
       .cold_functions = 0, .cold_sites_per_fn = 2, .false_branch_dispatchers = 0,
       .avg_alloc_size = 65536, .live_set = 8, .work_per_op = 96},
      {.name = "445.gobmk",
       .paper_malloc = 606463, .paper_calloc = 0, .paper_realloc = 52115,
       .mallocs = 606, .callocs = 0, .reallocs = 52,
       .hot_branching = 2, .hot_depth = 2, .hot_chain = 1,
       .cold_functions = 10, .cold_sites_per_fn = 2, .false_branch_dispatchers = 0,
       .avg_alloc_size = 256, .live_set = 64, .work_per_op = 48},
      {.name = "456.hmmer",
       .paper_malloc = 1983014, .paper_calloc = 122564, .paper_realloc = 368696,
       .mallocs = 1983, .callocs = 123, .reallocs = 369,
       .hot_branching = 2, .hot_depth = 2, .hot_chain = 2,
       .cold_functions = 20, .cold_sites_per_fn = 2, .false_branch_dispatchers = 2,
       .avg_alloc_size = 512, .live_set = 128, .work_per_op = 24},
      {.name = "458.sjeng",
       .paper_malloc = 5, .paper_calloc = 0, .paper_realloc = 0,
       .mallocs = 5, .callocs = 0, .reallocs = 0,
       .hot_branching = 1, .hot_depth = 1, .hot_chain = 0,
       .cold_functions = 90, .cold_sites_per_fn = 3, .false_branch_dispatchers = 0,
       .avg_alloc_size = 262144, .live_set = 4, .work_per_op = 96},
      {.name = "462.libquantum",
       .paper_malloc = 1, .paper_calloc = 121, .paper_realloc = 58,
       .mallocs = 1, .callocs = 121, .reallocs = 58,
       .hot_branching = 2, .hot_depth = 1, .hot_chain = 0,
       .cold_functions = 8, .cold_sites_per_fn = 2, .false_branch_dispatchers = 0,
       .avg_alloc_size = 4096, .live_set = 16, .work_per_op = 64},
      {.name = "464.h264ref",
       .paper_malloc = 7270, .paper_calloc = 170518, .paper_realloc = 0,
       .mallocs = 73, .callocs = 1705, .reallocs = 0,
       .hot_branching = 2, .hot_depth = 2, .hot_chain = 2,
       .cold_functions = 12, .cold_sites_per_fn = 2, .false_branch_dispatchers = 1,
       .avg_alloc_size = 1024, .live_set = 128, .work_per_op = 48},
      {.name = "471.omnetpp",
       .paper_malloc = 267064936, .paper_calloc = 0, .paper_realloc = 0,
       .mallocs = 267065, .callocs = 0, .reallocs = 0,
       .hot_branching = 3, .hot_depth = 2, .hot_chain = 1,
       .cold_functions = 10, .cold_sites_per_fn = 2, .false_branch_dispatchers = 0,
       .avg_alloc_size = 96, .live_set = 2048, .work_per_op = 2},
      {.name = "473.astar",
       .paper_malloc = 4799959, .paper_calloc = 0, .paper_realloc = 0,
       .mallocs = 4800, .callocs = 0, .reallocs = 0,
       .hot_branching = 1, .hot_depth = 1, .hot_chain = 8,
       .cold_functions = 0, .cold_sites_per_fn = 2, .false_branch_dispatchers = 0,
       .avg_alloc_size = 1024, .live_set = 256, .work_per_op = 16},
      {.name = "483.xalancbmk",
       .paper_malloc = 135155553, .paper_calloc = 0, .paper_realloc = 0,
       .mallocs = 135156, .callocs = 0, .reallocs = 0,
       .hot_branching = 3, .hot_depth = 2, .hot_chain = 1,
       .cold_functions = 15, .cold_sites_per_fn = 2, .false_branch_dispatchers = 0,
       .avg_alloc_size = 64, .live_set = 1024, .work_per_op = 3},
  };
  return profiles;
}

const SpecProfile& spec_profile(std::string_view name) {
  for (const SpecProfile& p : spec_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown SPEC profile: " + std::string(name));
}

namespace {

/// Appends an allocation loop (count iterations of alloc/write/free) to
/// function `f`, using the next free slot.
void alloc_loop(ProgramBuilder& b, cce::FunctionId f, AllocFn fn,
                std::uint64_t count, std::uint64_t size, std::uint32_t slot) {
  if (count == 0) return;
  b.begin_loop(f, Value(count));
  b.alloc(f, fn, Value(size), slot);
  b.write(f, slot, Value(0), Value(size < 64 ? size : 64));
  b.free(f, slot);
  b.end_loop(f);
}

/// Appends a realloc loop: one backing malloc, then `count` realloc calls
/// against it (so Table IV's realloc column is hit without inflating the
/// malloc column).
void realloc_loop(ProgramBuilder& b, cce::FunctionId f, std::uint64_t count,
                  std::uint64_t size, std::uint32_t slot) {
  if (count == 0) return;
  b.alloc(f, AllocFn::kMalloc, Value(size), slot);
  b.begin_loop(f, Value(count));
  b.realloc(f, slot, Value(size * 2));
  b.end_loop(f);
  b.free(f, slot);
}

}  // namespace

progmodel::Program make_spec_program(const SpecProfile& profile) {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  std::uint32_t next_slot = 0;

  // --- Cold region: never reaches an allocation API (pruned by TCS). ----
  if (profile.cold_functions > 0) {
    const auto cold_root = b.function(profile.name + "/cold_root");
    b.call(main_fn, cold_root);
    const auto cold_leaf = b.function(profile.name + "/cold_leaf");
    // A chain (so execution is linear, not exponential) whose functions
    // carry extra call sites into a shared leaf — lots of static sites,
    // none of which can reach an allocation API.
    cce::FunctionId prev = cold_root;
    for (std::uint32_t i = 0; i < profile.cold_functions; ++i) {
      const auto fn = b.function(profile.name + "/cold_" + std::to_string(i));
      b.call(prev, fn);
      for (std::uint32_t s = 1; s < profile.cold_sites_per_fn; ++s) {
        b.call(fn, cold_leaf);
      }
      prev = fn;
    }
  }

  // --- Hot tree: branching region that reaches the allocators. ---------
  std::vector<cce::FunctionId> frontier{main_fn};
  const std::uint32_t branching = profile.hot_branching < 1 ? 1 : profile.hot_branching;
  for (std::uint32_t depth = 0; depth < profile.hot_depth; ++depth) {
    std::vector<cce::FunctionId> next;
    for (cce::FunctionId parent : frontier) {
      for (std::uint32_t k = 0; k < branching; ++k) {
        const auto child = b.function(profile.name + "/h" + std::to_string(depth) +
                                      "_" + std::to_string(next.size()));
        b.call(parent, child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }

  // Non-branching chains below each leaf (the Slim target).
  std::vector<cce::FunctionId> leaves;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    cce::FunctionId at = frontier[i];
    for (std::uint32_t c = 0; c < profile.hot_chain; ++c) {
      const auto link = b.function(profile.name + "/chain" + std::to_string(i) +
                                   "_" + std::to_string(c));
      b.call(at, link);
      at = link;
    }
    leaves.push_back(at);
  }

  // --- False-branching dispatchers (the Incremental target). -----------
  // Each dispatcher has one out-edge per allocation API family; no two
  // edges reach the same target, so Incremental skips the node entirely.
  std::uint64_t dispatcher_mallocs = 0, dispatcher_callocs = 0, dispatcher_reallocs = 0;
  if (profile.false_branch_dispatchers > 0) {
    dispatcher_mallocs = profile.mallocs / 4;
    dispatcher_callocs = profile.callocs / 4;
    dispatcher_reallocs = profile.reallocs / 4;
    for (std::uint32_t d = 0; d < profile.false_branch_dispatchers; ++d) {
      const auto dispatcher =
          b.function(profile.name + "/dispatch" + std::to_string(d));
      b.call(main_fn, dispatcher);
      const auto m_leaf = b.function(profile.name + "/dm" + std::to_string(d));
      const auto c_leaf = b.function(profile.name + "/dc" + std::to_string(d));
      const auto r_leaf = b.function(profile.name + "/dr" + std::to_string(d));
      b.call(dispatcher, m_leaf);
      b.call(dispatcher, c_leaf);
      b.call(dispatcher, r_leaf);
      const std::uint32_t n = profile.false_branch_dispatchers;
      alloc_loop(b, m_leaf, AllocFn::kMalloc, dispatcher_mallocs / n,
                 profile.avg_alloc_size, next_slot++);
      alloc_loop(b, c_leaf, AllocFn::kCalloc, dispatcher_callocs / n,
                 profile.avg_alloc_size, next_slot++);
      realloc_loop(b, r_leaf, dispatcher_reallocs / n, profile.avg_alloc_size,
                   next_slot++);
    }
    // Account for integer division leftovers by adding them to the leaves.
    dispatcher_mallocs =
        dispatcher_mallocs / profile.false_branch_dispatchers * profile.false_branch_dispatchers;
    dispatcher_callocs =
        dispatcher_callocs / profile.false_branch_dispatchers * profile.false_branch_dispatchers;
    dispatcher_reallocs =
        dispatcher_reallocs / profile.false_branch_dispatchers * profile.false_branch_dispatchers;
  }

  // --- Allocation loops on the leaves, hitting the scaled totals. ------
  const std::uint64_t leaf_mallocs = profile.mallocs - dispatcher_mallocs;
  const std::uint64_t leaf_callocs = profile.callocs - dispatcher_callocs;
  const std::uint64_t leaf_reallocs = profile.reallocs - dispatcher_reallocs;
  const std::uint64_t n_leaves = leaves.size();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    std::uint64_t m = leaf_mallocs / n_leaves;
    std::uint64_t c = leaf_callocs / n_leaves;
    std::uint64_t r = leaf_reallocs / n_leaves;
    if (i == 0) {  // remainders go to the first leaf
      m += leaf_mallocs % n_leaves;
      c += leaf_callocs % n_leaves;
      r += leaf_reallocs % n_leaves;
    }
    alloc_loop(b, leaves[i], AllocFn::kMalloc, m, profile.avg_alloc_size, next_slot++);
    alloc_loop(b, leaves[i], AllocFn::kCalloc, c, profile.avg_alloc_size, next_slot++);
    realloc_loop(b, leaves[i], r, profile.avg_alloc_size, next_slot++);
  }
  return b.build();
}

}  // namespace ht::workload
