#include "workload/alloc_trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "support/hash.hpp"
#include "support/stats.hpp"

namespace ht::workload {

Trace make_trace(const SpecProfile& profile, std::uint64_t seed) {
  support::Rng rng(seed ^ support::fnv1a64(profile.name));
  Trace trace;
  const std::uint32_t slots = std::max<std::uint32_t>(profile.live_set, 1);
  trace.slot_count = slots;

  // A pool of synthetic allocation contexts: one CCID per static
  // allocation site; sites draw sizes around the profile average. Site
  // count grows with allocation volume (programs with more allocation tend
  // to have more allocation sites), and popularity is Zipf-distributed so
  // the *median-frequency* site — the paper's hypothesized-vulnerable
  // choice — covers only a small fraction of all allocations, as it does
  // in real programs.
  const std::size_t site_count = std::clamp<std::size_t>(
      static_cast<std::size_t>(profile.total_allocs() / 16), 16, 4096);
  struct Site {
    std::uint64_t ccid;
    std::uint32_t size;
    double weight;
  };
  std::vector<Site> sites;
  std::vector<double> weights;
  for (std::size_t i = 0; i < site_count; ++i) {
    Site site;
    site.ccid = support::mix64(seed * 1000003 + i + 1);
    // Sizes spread geometrically around the average (x0.25 .. x4).
    const double factor = 0.25 * static_cast<double>(1u << rng.below(5));
    site.size = std::max<std::uint32_t>(
        8, static_cast<std::uint32_t>(profile.avg_alloc_size * factor));
    // Zipf-ish site popularity: a few hot sites dominate, as in real
    // allocation profiles.
    site.weight = 1.0 / static_cast<double>(i + 1);
    weights.push_back(site.weight);
    sites.push_back(site);
  }

  std::uint64_t remaining_m = profile.mallocs;
  std::uint64_t remaining_c = profile.callocs;
  std::uint64_t remaining_r = profile.reallocs;

  std::vector<std::uint32_t> free_slots;
  for (std::uint32_t i = slots; i > 0; --i) free_slots.push_back(i - 1);
  std::vector<std::uint32_t> live_slots;
  support::FrequencyTable ccid_freq;

  while (remaining_m + remaining_c + remaining_r > 0) {
    const bool must_free = free_slots.empty();
    const bool prefer_free = !live_slots.empty() && rng.chance(0.4);
    if (must_free || prefer_free) {
      const std::size_t pick = rng.index(live_slots.size());
      const std::uint32_t slot = live_slots[pick];
      // Swap-erase keeps frees O(1); ordering within the live set is
      // already random.
      live_slots[pick] = live_slots.back();
      live_slots.pop_back();
      free_slots.push_back(slot);
      trace.ops.push_back(TraceOp{TraceOp::Kind::kFree, slot, 0, 0});
      continue;
    }
    // Reallocs target a live slot when one exists; when only reallocs
    // remain they claim a fresh slot (realloc(NULL) acts as malloc).
    const bool only_reallocs = remaining_m + remaining_c == 0;
    if (remaining_r > 0 && (only_reallocs || (!live_slots.empty() && rng.chance(0.3)))) {
      const Site& site = sites[rng.weighted(weights)];
      std::uint32_t slot;
      if (!live_slots.empty()) {
        slot = live_slots[rng.index(live_slots.size())];
      } else {
        slot = free_slots.back();
        free_slots.pop_back();
        live_slots.push_back(slot);
      }
      trace.ops.push_back(
          TraceOp{TraceOp::Kind::kRealloc, slot, site.size, site.ccid});
      ccid_freq.add(site.ccid);
      --remaining_r;
      continue;
    }
    const bool calloc_turn =
        remaining_c > 0 && (remaining_m == 0 || rng.chance(0.5));
    const Site& site = sites[rng.weighted(weights)];
    const std::uint32_t free_slot = free_slots.back();
    free_slots.pop_back();
    trace.ops.push_back(TraceOp{
        calloc_turn ? TraceOp::Kind::kCalloc : TraceOp::Kind::kMalloc, free_slot,
        site.size, site.ccid});
    ccid_freq.add(site.ccid);
    live_slots.push_back(free_slot);
    if (calloc_turn) {
      --remaining_c;
    } else {
      --remaining_m;
    }
  }
  for (std::uint32_t slot : live_slots) {
    trace.ops.push_back(TraceOp{TraceOp::Kind::kFree, slot, 0, 0});
  }

  // Normalize total compute across profiles, mirroring how the SPEC INT
  // benchmarks run for comparable wall time regardless of how much they
  // allocate: allocation-sparse workloads are compute-dense, so a fixed
  // defense cost stays a small *fraction* for them (the Fig. 8 shape).
  constexpr std::uint64_t kTotalWorkUnits = 24'000'000;
  trace.work_per_op = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      8, kTotalWorkUnits / std::max<std::size_t>(trace.ops.size(), 1)));

  for (const auto& entry : ccid_freq.sorted_by_count()) {
    trace.ccids_by_frequency.push_back(entry.key);
  }
  return trace;
}

std::vector<std::uint64_t> median_frequency_ccids(const Trace& trace,
                                                  std::size_t count) {
  std::vector<std::uint64_t> out;
  if (trace.ccids_by_frequency.empty()) return out;
  const std::size_t median = trace.ccids_by_frequency.size() / 2;
  std::size_t lo = median;
  std::size_t hi = median + 1;
  out.push_back(trace.ccids_by_frequency[median]);
  while (out.size() < count &&
         (lo > 0 || hi < trace.ccids_by_frequency.size())) {
    if (lo > 0) {
      out.push_back(trace.ccids_by_frequency[--lo]);
      if (out.size() == count) break;
    }
    if (hi < trace.ccids_by_frequency.size()) {
      out.push_back(trace.ccids_by_frequency[hi++]);
    }
  }
  return out;
}

namespace {

/// The synthetic compute kernel: touches the buffer (as the benchmark's
/// real work would) plus `work` rounds of integer mixing. Identical across
/// all trace modes.
inline std::uint64_t compute_kernel(char* buffer, std::uint32_t size,
                                    std::uint32_t work,
                                    std::uint64_t checksum) noexcept {
  if (buffer != nullptr && size > 0) {
    const std::uint32_t touch = std::min<std::uint32_t>(size, 512);
    std::memset(buffer, static_cast<int>(checksum & 0xff), touch);
    checksum += static_cast<unsigned char>(buffer[touch / 2]);
  }
  for (std::uint32_t i = 0; i < work; ++i) {
    checksum = checksum * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return checksum;
}

/// The simulated encoding update: what the instrumented call sites on the
/// path to this allocation would have executed (V = 3*V + c).
inline std::uint64_t encoding_kernel(std::uint64_t v, std::uint64_t ccid,
                                     std::uint32_t ops) noexcept {
  for (std::uint32_t i = 0; i < ops; ++i) v = 3 * v + (ccid ^ i);
  return v;
}

}  // namespace

TraceRunResult run_trace(const Trace& trace, TraceMode mode,
                         runtime::GuardedAllocator* allocator,
                         std::uint32_t encoding_ops_per_alloc) {
  std::vector<char*> slots(trace.slot_count, nullptr);
  std::vector<std::uint32_t> sizes(trace.slot_count, 0);
  TraceRunResult result;
  std::uint64_t checksum = 0;
  volatile std::uint64_t ccid_register = 0;

  const auto start = std::chrono::steady_clock::now();
  for (const TraceOp& op : trace.ops) {
    switch (op.kind) {
      case TraceOp::Kind::kMalloc:
      case TraceOp::Kind::kCalloc: {
        ccid_register = encoding_kernel(ccid_register, op.ccid,
                                        encoding_ops_per_alloc);
        char* p;
        if (mode == TraceMode::kNative) {
          p = static_cast<char*>(op.kind == TraceOp::Kind::kCalloc
                                     ? std::calloc(1, op.size)
                                     : std::malloc(op.size));
        } else {
          p = static_cast<char*>(op.kind == TraceOp::Kind::kCalloc
                                     ? allocator->calloc(1, op.size, op.ccid)
                                     : allocator->malloc(op.size, op.ccid));
        }
        slots[op.slot] = p;
        sizes[op.slot] = op.size;
        ++result.allocs;
        checksum = compute_kernel(p, op.size, trace.work_per_op, checksum);
        break;
      }
      case TraceOp::Kind::kRealloc: {
        ccid_register = encoding_kernel(ccid_register, op.ccid,
                                        encoding_ops_per_alloc);
        char* p;
        if (mode == TraceMode::kNative) {
          p = static_cast<char*>(std::realloc(slots[op.slot], op.size));
        } else {
          p = static_cast<char*>(
              allocator->realloc(slots[op.slot], op.size, op.ccid));
        }
        slots[op.slot] = p;
        sizes[op.slot] = op.size;
        ++result.allocs;
        checksum = compute_kernel(p, op.size, trace.work_per_op, checksum);
        break;
      }
      case TraceOp::Kind::kFree: {
        if (mode == TraceMode::kNative) {
          std::free(slots[op.slot]);
        } else {
          allocator->free(slots[op.slot]);
        }
        slots[op.slot] = nullptr;
        checksum = compute_kernel(nullptr, 0, trace.work_per_op, checksum);
        break;
      }
    }
  }
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.checksum = checksum ^ ccid_register;
  return result;
}

}  // namespace ht::workload
