// Service-program workloads (§VIII-B2): synthetic twins of the paper's
// Nginx and MySQL throughput experiments.
//
// Each "request" performs the allocation work a real request handler does
// (header buffer, body buffer, response assembly — or, for the MySQL-like
// loop, connection state plus growing query buffers) along with parsing and
// checksum compute, so allocation cost is a realistic fraction of request
// cost. Throughput is measured natively and under the full HeapTherapy+
// allocator, with configurable concurrency (the paper sweeps 20..200
// concurrent requests).
//
// Two thread models are supported, because they answer different questions:
//  - kPerThread: every worker owns a private GuardedAllocator. Upper bound
//    on protected throughput; models services that partition allocation
//    flows per thread.
//  - kSharedLocked / kSharedSharded: all workers hammer ONE shared
//    allocator — the model an LD_PRELOAD'd service actually faces, since
//    interposing malloc gives the whole process a single allocator. Locked
//    is the global-mutex baseline; Sharded is the scalable architecture
//    (docs/CONCURRENCY.md). bench/ht_mt_scaling sweeps these against each
//    other.
#pragma once

#include <cstdint>

#include "patch/patch_table.hpp"
#include "runtime/guarded_allocator.hpp"
#include "runtime/sharded_allocator.hpp"

namespace ht::workload {

enum class ServiceKind : std::uint8_t { kNginxLike, kMysqlLike };

/// How request handlers reach an allocator.
enum class AllocatorMode : std::uint8_t {
  kNative,        ///< std::malloc baseline, no protection
  kPerThread,     ///< one GuardedAllocator per worker thread
  kSharedLocked,  ///< one LockedAllocator shared by all workers
  kSharedSharded, ///< one ShardedAllocator shared by all workers
};

struct ServiceConfig {
  ServiceKind kind = ServiceKind::kNginxLike;
  std::uint64_t requests = 20000;   ///< total requests across all threads
  std::uint32_t concurrency = 20;   ///< worker threads
  /// null: native std::malloc. Otherwise the workers' allocator(s) are
  /// built over this patch table (may be empty).
  const patch::PatchTable* patches = nullptr;
  AllocatorMode mode = AllocatorMode::kNative;
  /// Legacy switch: true with mode==kNative selects kPerThread (the
  /// original two-state API; existing callers keep working).
  bool use_heaptherapy = false;
  /// Defense configuration for the workers' allocators (guard pages vs
  /// canaries vs poisoning — the knobs the protection example sweeps).
  runtime::GuardedAllocatorConfig defenses;
  /// Shard count for kSharedSharded (0 = auto).
  std::uint32_t shards = 0;
  std::uint64_t seed = 7;
};

struct ServiceResult {
  double seconds = 0;
  double requests_per_second = 0;
  std::uint64_t requests = 0;
  std::uint64_t checksum = 0;
  /// Merged defense counters. Populated for every protected mode: shared
  /// modes snapshot the shared allocator, per-thread mode merges the
  /// workers' private stats. Zero for kNative.
  runtime::AllocatorStats allocator_stats;
  /// Merged observability snapshot (patch hits, latency histogram, event
  /// ring contents — see docs/OBSERVABILITY.md). Populated like
  /// allocator_stats; per-thread mode reports each worker as one shard row.
  /// Empty for kNative.
  runtime::TelemetrySnapshot telemetry;
};

/// Runs the service loop to completion and reports throughput.
[[nodiscard]] ServiceResult run_service(const ServiceConfig& config);

}  // namespace ht::workload
