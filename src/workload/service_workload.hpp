// Service-program workloads (§VIII-B2): synthetic twins of the paper's
// Nginx and MySQL throughput experiments.
//
// Each "request" performs the allocation work a real request handler does
// (header buffer, body buffer, response assembly — or, for the MySQL-like
// loop, connection state plus growing query buffers) along with parsing and
// checksum compute, so allocation cost is a realistic fraction of request
// cost. Throughput is measured natively and under the full HeapTherapy+
// allocator, with configurable concurrency (the paper sweeps 20..200
// concurrent requests; threads each run their own allocator instance, which
// is this library's thread model).
#pragma once

#include <cstdint>

#include "patch/patch_table.hpp"
#include "runtime/guarded_allocator.hpp"

namespace ht::workload {

enum class ServiceKind : std::uint8_t { kNginxLike, kMysqlLike };

struct ServiceConfig {
  ServiceKind kind = ServiceKind::kNginxLike;
  std::uint64_t requests = 20000;   ///< total requests across all threads
  std::uint32_t concurrency = 20;   ///< worker threads
  /// null: native std::malloc. Otherwise each worker builds a
  /// GuardedAllocator over this patch table (may be empty).
  const patch::PatchTable* patches = nullptr;
  bool use_heaptherapy = false;  ///< false = native baseline
  /// Defense configuration for the workers' allocators (guard pages vs
  /// canaries vs poisoning — the knobs the protection example sweeps).
  runtime::GuardedAllocatorConfig defenses;
  std::uint64_t seed = 7;
};

struct ServiceResult {
  double seconds = 0;
  double requests_per_second = 0;
  std::uint64_t requests = 0;
  std::uint64_t checksum = 0;
};

/// Runs the service loop to completion and reports throughput.
[[nodiscard]] ServiceResult run_service(const ServiceConfig& config);

}  // namespace ht::workload
