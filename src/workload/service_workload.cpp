#include "workload/service_workload.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/guarded_allocator.hpp"
#include "runtime/locked_allocator.hpp"
#include "runtime/sharded_allocator.hpp"
#include "runtime/telemetry.hpp"
#include "support/rng.hpp"

namespace ht::workload {

namespace {

/// Minimal allocation facade so the request handlers are written once for
/// every thread model. Exactly one pointer is non-null per worker (or none
/// for the native baseline).
struct Alloc {
  runtime::GuardedAllocator* guarded = nullptr;   // per-thread instance
  runtime::LockedAllocator* locked = nullptr;     // shared, global lock
  runtime::ShardedAllocator* sharded = nullptr;   // shared, per-shard locks

  void* malloc(std::size_t n, std::uint64_t ccid) {
    if (guarded != nullptr) return guarded->malloc(n, ccid);
    if (locked != nullptr) return locked->malloc(n, ccid);
    if (sharded != nullptr) return sharded->malloc(n, ccid);
    return std::malloc(n);
  }
  void* realloc(void* p, std::size_t n, std::uint64_t ccid) {
    if (guarded != nullptr) return guarded->realloc(p, n, ccid);
    if (locked != nullptr) return locked->realloc(p, n, ccid);
    if (sharded != nullptr) return sharded->realloc(p, n, ccid);
    return std::realloc(p, n);
  }
  void free(void* p) {
    if (guarded != nullptr) {
      guarded->free(p);
    } else if (locked != nullptr) {
      locked->free(p);
    } else if (sharded != nullptr) {
      sharded->free(p);
    } else {
      std::free(p);
    }
  }
};

std::uint64_t touch(void* p, std::size_t n, std::uint64_t acc) {
  auto* bytes = static_cast<unsigned char*>(p);
  const std::size_t step = n > 256 ? n / 128 : 1;
  for (std::size_t i = 0; i < n; i += step) {
    bytes[i] = static_cast<unsigned char>(acc + i);
    acc = acc * 31 + bytes[i];
  }
  return acc;
}

/// Nginx-like request: header buffer (fixed pool ccid), body buffer
/// (size-dependent), response assembly, all freed at request end.
std::uint64_t handle_nginx_request(Alloc& alloc, support::Rng& rng,
                                   std::uint64_t acc) {
  // Distinct allocation contexts: headers / body / response.
  constexpr std::uint64_t kHdrCcid = 0x1101;
  constexpr std::uint64_t kBodyCcid = 0x1102;
  constexpr std::uint64_t kRespCcid = 0x1103;
  const std::size_t body_size = 256 + rng.below(4096);

  void* headers = alloc.malloc(1024, kHdrCcid);
  void* body = alloc.malloc(body_size, kBodyCcid);
  if (headers == nullptr || body == nullptr) std::abort();
  acc = touch(headers, 1024, acc);
  acc = touch(body, body_size, acc);
  // "Parse" the request: a few hundred mixing rounds.
  for (int i = 0; i < 300; ++i) acc = acc * 6364136223846793005ULL + 1;
  void* response = alloc.malloc(body_size + 512, kRespCcid);
  if (response == nullptr) std::abort();
  std::memcpy(response, body, body_size);
  acc = touch(response, body_size + 512, acc);
  alloc.free(headers);
  alloc.free(body);
  alloc.free(response);
  return acc;
}

/// MySQL-like request: reuses a per-connection state block and grows a
/// query buffer with realloc, as a statement parser does.
struct MysqlConnection {
  void* state = nullptr;
  void* query = nullptr;
  std::size_t query_capacity = 0;
};

std::uint64_t handle_mysql_request(Alloc& alloc, MysqlConnection& conn,
                                   support::Rng& rng, std::uint64_t acc) {
  constexpr std::uint64_t kStateCcid = 0x2201;
  constexpr std::uint64_t kQueryCcid = 0x2202;
  constexpr std::uint64_t kRowCcid = 0x2203;
  if (conn.state == nullptr) {
    conn.state = alloc.malloc(4096, kStateCcid);
    if (conn.state == nullptr) std::abort();
  }
  acc = touch(conn.state, 4096, acc);
  const std::size_t query_len = 64 + rng.below(2048);
  if (query_len > conn.query_capacity) {
    conn.query = alloc.realloc(conn.query, query_len, kQueryCcid);
    conn.query_capacity = query_len;
    if (conn.query == nullptr) std::abort();
  }
  acc = touch(conn.query, query_len, acc);
  for (int i = 0; i < 500; ++i) acc = acc * 2862933555777941757ULL + 3037000493ULL;
  // Result rows: a handful of short-lived allocations.
  const std::size_t rows = 1 + rng.below(8);
  for (std::size_t r = 0; r < rows; ++r) {
    void* row = alloc.malloc(128 + rng.below(256), kRowCcid);
    if (row == nullptr) std::abort();
    acc = touch(row, 128, acc);
    alloc.free(row);
  }
  return acc;
}

AllocatorMode effective_mode(const ServiceConfig& config) {
  if (config.mode == AllocatorMode::kNative && config.use_heaptherapy) {
    return AllocatorMode::kPerThread;  // legacy two-state API
  }
  return config.mode;
}

}  // namespace

ServiceResult run_service(const ServiceConfig& config) {
  const std::uint32_t threads = std::max<std::uint32_t>(config.concurrency, 1);
  const std::uint64_t per_thread = config.requests / threads;
  const AllocatorMode mode = effective_mode(config);
  std::atomic<std::uint64_t> total_checksum{0};

  // Shared allocators are built before the clock starts — startup cost is
  // the deployment's, not the request loop's.
  std::optional<runtime::LockedAllocator> shared_locked;
  std::optional<runtime::ShardedAllocator> shared_sharded;
  if (mode == AllocatorMode::kSharedLocked) {
    shared_locked.emplace(config.patches, config.defenses);
  } else if (mode == AllocatorMode::kSharedSharded) {
    runtime::ShardedAllocatorConfig sharding;
    sharding.shards = config.shards;
    shared_sharded.emplace(config.patches, config.defenses, sharding);
  }
  // Per-thread mode merges worker stats and telemetry here after the join
  // (each worker becomes one shard row of the merged snapshot).
  runtime::AllocatorStats merged_stats;
  runtime::TelemetrySnapshot merged_telemetry;
  merged_telemetry.config = config.defenses.telemetry;
  if (config.patches != nullptr) {
    merged_telemetry.table_generation = config.patches->generation();
    merged_telemetry.table_patches = config.patches->patch_count();
  }
  std::mutex merge_mutex;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // Per-thread allocator instance, constructed only in kPerThread mode.
      std::optional<runtime::GuardedAllocator> guarded;
      Alloc alloc;
      switch (mode) {
        case AllocatorMode::kNative:
          break;
        case AllocatorMode::kPerThread:
          guarded.emplace(config.patches, config.defenses);
          alloc.guarded = &*guarded;
          break;
        case AllocatorMode::kSharedLocked:
          alloc.locked = &*shared_locked;
          break;
        case AllocatorMode::kSharedSharded:
          alloc.sharded = &*shared_sharded;
          break;
      }
      support::Rng rng(config.seed * 1000 + t);
      std::uint64_t acc = t;
      MysqlConnection conn;
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        if (config.kind == ServiceKind::kNginxLike) {
          acc = handle_nginx_request(alloc, rng, acc);
        } else {
          acc = handle_mysql_request(alloc, conn, rng, acc);
        }
      }
      alloc.free(conn.state);
      alloc.free(conn.query);
      total_checksum.fetch_add(acc, std::memory_order_relaxed);
      if (guarded.has_value()) {
        const std::lock_guard<std::mutex> lock(merge_mutex);
        merged_stats += guarded->stats();
        runtime::merge_sink_into_snapshot(
            merged_telemetry, guarded->telemetry(), t, guarded->stats(),
            guarded->quarantine().bytes(), guarded->quarantine().depth());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const auto end = std::chrono::steady_clock::now();

  ServiceResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.requests = per_thread * threads;
  result.requests_per_second =
      result.seconds > 0 ? static_cast<double>(result.requests) / result.seconds : 0;
  result.checksum = total_checksum.load();
  if (mode == AllocatorMode::kSharedLocked) {
    result.allocator_stats = shared_locked->stats_snapshot();
    result.telemetry = shared_locked->telemetry_snapshot();
  } else if (mode == AllocatorMode::kSharedSharded) {
    result.allocator_stats = shared_sharded->stats_snapshot();
    result.telemetry = shared_sharded->telemetry_snapshot();
  } else if (mode == AllocatorMode::kPerThread) {
    result.allocator_stats = merged_stats;
    runtime::finalize_snapshot(merged_telemetry);
    result.telemetry = std::move(merged_telemetry);
  }
  return result;
}

}  // namespace ht::workload
