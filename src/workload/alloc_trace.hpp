// Allocation traces and their executors — the measurement vehicle for the
// paper's Figs. 8 and 9.
//
// A trace is a deterministic op sequence (allocate / realloc / free, with a
// per-op compute kernel standing in for the benchmark's real work) derived
// from a SpecProfile. The same trace runs against:
//   - the native allocator (std::malloc, the paper's baseline),
//   - interposition-only (GuardedAllocator forward_only — Fig. 8's 1.9% bar),
//   - the full system with 0 / 1 / 5 patches installed.
// Executing identical ops under every mode isolates the overhead of the
// allocation path, exactly like the paper's normalized execution time.
//
// The executor also simulates the per-op calling-context encoding update
// (a handful of multiply-adds per allocation, per the instrumented call
// depth) so the encoding component of the overhead is present.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/guarded_allocator.hpp"
#include "support/rng.hpp"
#include "workload/spec_profiles.hpp"

namespace ht::workload {

struct TraceOp {
  enum class Kind : std::uint8_t { kMalloc, kCalloc, kRealloc, kFree };
  Kind kind = Kind::kMalloc;
  std::uint32_t slot = 0;   ///< which live-buffer slot this op targets
  std::uint32_t size = 0;   ///< allocation size (alloc/realloc)
  std::uint64_t ccid = 0;   ///< allocation-time calling-context id
};

struct Trace {
  std::vector<TraceOp> ops;
  std::uint32_t slot_count = 0;
  std::uint32_t work_per_op = 0;  ///< compute units between ops
  /// Distinct CCIDs present, most-frequent-first (for patch synthesis via
  /// the paper's median-frequency protocol).
  std::vector<std::uint64_t> ccids_by_frequency;
};

/// Builds the allocation trace of a profile. Deterministic per (profile,
/// seed): alloc/free interleaving honors the profile's live-set bound and
/// every slot is freed at the end.
[[nodiscard]] Trace make_trace(const SpecProfile& profile, std::uint64_t seed = 1);

/// The paper's §VIII-B2 protocol: hypothesized vulnerable CCIDs are those
/// with median allocation frequency. Returns `count` CCIDs from the trace.
[[nodiscard]] std::vector<std::uint64_t> median_frequency_ccids(const Trace& trace,
                                                                std::size_t count);

/// How the trace's allocation calls are serviced.
enum class TraceMode : std::uint8_t {
  kNative,        ///< std::malloc family, no interception (baseline)
  kGuarded,       ///< through a GuardedAllocator instance
};

struct TraceRunResult {
  double seconds = 0;
  std::uint64_t checksum = 0;  ///< defeats dead-code elimination
  std::uint64_t allocs = 0;
};

/// Executes a trace. For kGuarded, `allocator` must be non-null. Every mode
/// performs identical per-op compute and encoding simulation, so run time
/// differences are attributable to the allocation path alone.
[[nodiscard]] TraceRunResult run_trace(const Trace& trace, TraceMode mode,
                                       runtime::GuardedAllocator* allocator = nullptr,
                                       std::uint32_t encoding_ops_per_alloc = 3);

}  // namespace ht::workload
