#include "support/str.hpp"

#include <cctype>

namespace ht::support {

namespace {
bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::uint64_t base = 10;
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
    if (s.empty()) return std::nullopt;
  }
  std::uint64_t value = 0;
  for (char c : s) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
    if (value > (UINT64_MAX - digit) / base) return std::nullopt;  // overflow
    value = value * base + digit;
  }
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.append(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace ht::support
