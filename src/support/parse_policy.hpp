#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

/// Shared diagnostic policy for every text / binary parser in the tree
/// (telemetry dumps, wire frames, candidate journals, htlint baselines).
///
/// All parsers classify malformed input into exactly three buckets:
///
///   - reject:       structural damage (missing or unsupported `version`
///                   directive, bad magic/CRC). The whole input is voided;
///                   nothing parsed so far may be trusted.
///   - note (capped): a single bad line or record. The line/record is
///                   dropped, a human-readable note is recorded, and parsing
///                   continues. Notes are capped so a corrupt multi-megabyte
///                   input cannot balloon the diagnostic list; the count past
///                   the cap is still tracked so "how broken" survives even
///                   when the details do not.
///   - silent skip:  blank lines and `#` comments. Not diagnostics at all.
///
/// The caps below are the single source of truth; parsers must not restate
/// the numbers locally.
namespace ht::support {

/// Cap for per-line / per-record notes (wire frames, candidate journals,
/// htlint baseline files).
inline constexpr std::size_t kParseNoteCap = 50;

/// Cap for the text telemetry parser's error list. Text dumps are larger and
/// hand-edited more often than the other formats, so they get more headroom.
inline constexpr std::size_t kParseErrorCap = 100;

/// Bounded appender implementing the note(capped) bucket: records up to
/// `cap` messages into `sink`, counts the rest as suppressed.
class NoteLimiter {
 public:
  NoteLimiter(std::vector<std::string>& sink, std::size_t cap)
      : sink_(sink), cap_(cap) {}

  /// Returns true when the message was recorded, false when capped.
  bool add(std::string message) {
    if (sink_.size() >= cap_) {
      ++suppressed_;
      return false;
    }
    sink_.push_back(std::move(message));
    return true;
  }

  std::size_t suppressed() const { return suppressed_; }

  /// Appends the canonical "(N further error(s) suppressed)" trailer when
  /// any messages were dropped. The trailer does not count against the cap.
  void append_suppressed_summary() {
    if (suppressed_ == 0) return;
    sink_.push_back("(" + std::to_string(suppressed_) +
                    " further error(s) suppressed)");
  }

 private:
  std::vector<std::string>& sink_;
  std::size_t cap_;
  std::size_t suppressed_ = 0;
};

}  // namespace ht::support
