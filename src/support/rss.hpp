// Resident-set-size sampling, mirroring the paper's memory-overhead protocol:
// "a script reads the VmRSS field of /proc/[pid]/status ... the sampling rate
// is 30 times per second, and the average of the readings is reported."
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "support/stats.hpp"

namespace ht::support {

/// Current VmRSS of this process in KiB; 0 if /proc is unavailable.
[[nodiscard]] std::uint64_t current_rss_kib();

/// Current VmHWM (peak RSS) of this process in KiB; 0 if unavailable.
[[nodiscard]] std::uint64_t peak_rss_kib();

/// Background sampler that reads VmRSS at a fixed rate (default: the paper's
/// 30 Hz) while a workload runs, then reports the average.
class RssSampler {
 public:
  explicit RssSampler(double hz = 30.0);
  ~RssSampler();

  RssSampler(const RssSampler&) = delete;
  RssSampler& operator=(const RssSampler&) = delete;

  /// Stops the sampling thread (idempotent) and returns collected stats.
  const RunningStats& stop();

 private:
  void run(double hz);
  std::atomic<bool> stop_flag_{false};
  RunningStats stats_;
  std::thread thread_;
  bool joined_ = false;
};

}  // namespace ht::support
