#include "support/faultpoint.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/hash.hpp"
#include "support/str.hpp"

namespace ht::support {

namespace {

/// Name table — the single source of truth for the env/docs tokens.
/// scripts/check_docs.sh greps this file for `"[a-z-]+"` entries and
/// requires each to appear in docs/RESILIENCE.md; keep one entry per line.
struct FaultPointName {
  FaultPoint point;
  std::string_view name;
};
constexpr FaultPointName kFaultPointNames[kFaultPointCount] = {
    {FaultPoint::kUnderlyingOom, "underlying-oom"},
    {FaultPoint::kGuardMap, "guard-map"},
    {FaultPoint::kQuarantinePressure, "quarantine-pressure"},
    {FaultPoint::kTelemetryIo, "telemetry-io"},
    {FaultPoint::kPatchParse, "patch-parse"},
};

/// Per-point registry slot. The spec fields are plain (not atomic): they
/// are written only while the point's armed bit is clear (arm_fault clears
/// the bit, writes, then sets it with release), and fault_fires_slow reads
/// them only after observing the bit set — the release/acquire pair on
/// g_armed_mask orders the accesses.
struct FaultSlot {
  FaultSpec spec;
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> fires{0};
};

FaultSlot g_slots[kFaultPointCount];

std::uint32_t bit_of(FaultPoint point) noexcept {
  return 1u << static_cast<std::uint32_t>(point);
}

}  // namespace

namespace detail {

std::atomic<std::uint32_t> g_armed_mask{0};

bool fault_fires_slow(FaultPoint point) noexcept {
  // Re-check with acquire: the relaxed fast-path load may have raced a
  // concurrent arm; acquire pairs with the release store in arm_fault so
  // the spec fields below are fully visible.
  if ((g_armed_mask.load(std::memory_order_acquire) & bit_of(point)) == 0) {
    return false;
  }
  FaultSlot& slot = g_slots[static_cast<std::uint32_t>(point)];
  const std::uint64_t idx =
      slot.evaluations.fetch_add(1, std::memory_order_relaxed);
  bool fires = false;
  switch (slot.spec.mode) {
    case FaultSpec::Mode::kNever:
      break;
    case FaultSpec::Mode::kAlways:
      fires = true;
      break;
    case FaultSpec::Mode::kFirst:
      fires = idx < slot.spec.n;
      break;
    case FaultSpec::Mode::kEvery:
      fires = slot.spec.n != 0 && idx % slot.spec.n == 0;
      break;
    case FaultSpec::Mode::kRate:
      fires = slot.spec.n != 0 && mix64(slot.spec.seed ^ idx) % slot.spec.n == 0;
      break;
  }
  if (fires) slot.fires.fetch_add(1, std::memory_order_relaxed);
  return fires;
}

}  // namespace detail

std::string_view fault_point_name(FaultPoint point) noexcept {
  for (const auto& e : kFaultPointNames) {
    if (e.point == point) return e.name;
  }
  return "unknown";
}

bool fault_point_from_name(std::string_view name, FaultPoint& out) noexcept {
  for (const auto& e : kFaultPointNames) {
    if (e.name == name) {
      out = e.point;
      return true;
    }
  }
  return false;
}

bool parse_fault_spec(std::string_view text, FaultSpec& out,
                      std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  const std::string_view spec = trim(text);
  if (spec.empty()) return fail("empty fault spec");
  const auto fields = split(spec, ':');
  const std::string_view mode = fields[0];
  FaultSpec parsed;
  if (mode == "always" || mode == "never") {
    if (fields.size() != 1) {
      return fail("'" + std::string(mode) + "' takes no arguments");
    }
    parsed.mode = mode == "always" ? FaultSpec::Mode::kAlways
                                   : FaultSpec::Mode::kNever;
  } else if (mode == "first" || mode == "every" || mode == "rate") {
    const bool is_rate = mode == "rate";
    if (fields.size() < 2 || fields.size() > (is_rate ? 3u : 2u)) {
      return fail("'" + std::string(mode) + "' expects " +
                  (is_rate ? "rate:N[:SEED]" : std::string(mode) + ":N"));
    }
    const auto n = parse_u64(fields[1]);
    if (!n) return fail("bad count '" + std::string(fields[1]) + "'");
    if (*n == 0 && mode != "first") {
      return fail("'" + std::string(mode) + ":0' would never fire; use 'never'");
    }
    parsed.n = *n;
    parsed.mode = is_rate ? FaultSpec::Mode::kRate
                : mode == "first" ? FaultSpec::Mode::kFirst
                                  : FaultSpec::Mode::kEvery;
    if (is_rate && fields.size() == 3) {
      const auto seed = parse_u64(fields[2]);
      if (!seed) return fail("bad seed '" + std::string(fields[2]) + "'");
      parsed.seed = *seed;
    }
  } else {
    return fail("unknown fault mode '" + std::string(mode) +
                "' (want always, never, first:K, every:N, rate:N[:SEED])");
  }
  out = parsed;
  return true;
}

void arm_fault(FaultPoint point, const FaultSpec& spec) noexcept {
  FaultSlot& slot = g_slots[static_cast<std::uint32_t>(point)];
  // Clear the bit first so no evaluator reads a half-written spec; the
  // release store re-arming publishes the new spec and zeroed counters.
  detail::g_armed_mask.fetch_and(~bit_of(point), std::memory_order_acq_rel);
  slot.spec = spec;
  slot.evaluations.store(0, std::memory_order_relaxed);
  slot.fires.store(0, std::memory_order_relaxed);
  detail::g_armed_mask.fetch_or(bit_of(point), std::memory_order_release);
}

void disarm_fault(FaultPoint point) noexcept {
  detail::g_armed_mask.fetch_and(~bit_of(point), std::memory_order_acq_rel);
}

void disarm_all_faults() noexcept {
  detail::g_armed_mask.store(0, std::memory_order_release);
  for (auto& slot : g_slots) {
    slot.spec = FaultSpec{};
    slot.evaluations.store(0, std::memory_order_relaxed);
    slot.fires.store(0, std::memory_order_relaxed);
  }
}

FaultStats fault_stats(FaultPoint point) noexcept {
  const FaultSlot& slot = g_slots[static_cast<std::uint32_t>(point)];
  return {slot.evaluations.load(std::memory_order_relaxed),
          slot.fires.load(std::memory_order_relaxed)};
}

std::vector<std::string> configure_faults(std::string_view text) {
  std::vector<std::string> diagnostics;
  for (const std::string_view raw : split(text, ',')) {
    const std::string_view entry = trim(raw);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      diagnostics.push_back("fault entry '" + std::string(entry) +
                            "' has no '=' (want point=spec)");
      continue;
    }
    const std::string_view name = trim(entry.substr(0, eq));
    FaultPoint point;
    if (!fault_point_from_name(name, point)) {
      std::string known;
      for (const auto& e : kFaultPointNames) {
        if (!known.empty()) known += ", ";
        known += e.name;
      }
      diagnostics.push_back("unknown fault point '" + std::string(name) +
                            "' (known: " + known + ")");
      continue;
    }
    FaultSpec spec;
    std::string error;
    if (!parse_fault_spec(entry.substr(eq + 1), spec, &error)) {
      diagnostics.push_back("fault point '" + std::string(name) +
                            "': " + error);
      continue;
    }
    arm_fault(point, spec);
  }
  return diagnostics;
}

std::size_t install_faults_from_env() {
  const char* env = std::getenv("HEAPTHERAPY_FAULTS");
  if (env == nullptr || env[0] == '\0') return 0;
  for (const std::string& diag : configure_faults(env)) {
    std::fprintf(stderr, "heaptherapy: HEAPTHERAPY_FAULTS: %s\n", diag.c_str());
  }
  // Count live armed bits so the caller sees how many points are active.
  std::size_t armed = 0;
  for (std::uint32_t m = detail::g_armed_mask.load(std::memory_order_relaxed);
       m != 0; m &= m - 1) {
    ++armed;
  }
  return armed;
}

}  // namespace ht::support
