#include "support/rng.hpp"

#include "support/hash.hpp"

namespace ht::support {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion, the canonical way to seed xoshiro.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = mix64(s);
  }
  // All-zero state would be a fixed point; mix64 of distinct inputs cannot
  // produce four zeros, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling, with rejection to keep
  // the distribution exactly uniform.
  for (;;) {
    const std::uint64_t x = next();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (0ULL - bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return index(weights.size());
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (draw < w) return i;
    draw -= w;
  }
  return weights.size() - 1;
}

}  // namespace ht::support
