#include "support/rss.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

namespace ht::support {

namespace {

std::uint64_t read_status_field_kib(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t value = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      std::sscanf(line + field_len + 1, "%lu", &value);
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

std::uint64_t current_rss_kib() { return read_status_field_kib("VmRSS"); }
std::uint64_t peak_rss_kib() { return read_status_field_kib("VmHWM"); }

RssSampler::RssSampler(double hz) : thread_([this, hz] { run(hz); }) {}

RssSampler::~RssSampler() { stop(); }

const RunningStats& RssSampler::stop() {
  if (!joined_) {
    stop_flag_.store(true, std::memory_order_relaxed);
    thread_.join();
    joined_ = true;
  }
  return stats_;
}

void RssSampler::run(double hz) {
  const auto period = std::chrono::duration<double>(1.0 / (hz > 0.0 ? hz : 30.0));
  while (!stop_flag_.load(std::memory_order_relaxed)) {
    const std::uint64_t rss = current_rss_kib();
    if (rss != 0) stats_.add(static_cast<double>(rss));
    std::this_thread::sleep_for(period);
  }
}

}  // namespace ht::support
