// Structured tracing for the offline pipeline (docs/OBSERVABILITY.md §7).
//
// The heavyweight offline phase — attack replay under the shadow-memory
// analyzer, input search, patch generation — needs the same visibility the
// online runtime got from telemetry: where does analysis time actually go?
// This module is a lightweight span tracer: hierarchical spans carrying
// wall time, thread-CPU time, and attachable named counters (shadow-op
// volumes, replay step counts, search statistics).
//
// Cost model: every instrumentation point takes a `Tracer*` that may be
// null, and the very first thing each hook does is a null check — a traced
// pipeline pays two clock reads per span, an untraced one pays a predicted
// branch. bench/ht_trace_overhead holds the disabled-mode cost to the
// measurement floor (≤0.5% of analyzer throughput).
//
// Exports (both round-trip through this header's own parser/renderer):
//  - trace_chrome_json(): Chrome trace-event JSON ("X" complete events),
//    loadable in chrome://tracing / Perfetto; exact nanosecond values ride
//    in each event's `args` so parse_chrome_trace() reconstructs spans
//    losslessly (the microsecond `ts`/`dur` fields are for the viewer).
//  - trace_tree(): indented human-readable span tree for terminals
//    (`htctl trace-offline`).
//
// The tracer is deliberately single-threaded (the offline pipeline is one
// thread); the online runtime keeps its own lock-free telemetry instead
// (src/runtime/telemetry.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ht::support {

/// One named counter attached to a span (e.g. "redzone_checks" = 1234).
struct TraceCounter {
  std::string name;
  std::uint64_t value = 0;
};

inline constexpr std::uint32_t kNoSpanParent = UINT32_MAX;

/// One closed span. Ids are dense, in begin order; parents always have
/// smaller ids than their children.
struct TraceSpan {
  std::uint32_t id = 0;
  std::uint32_t parent = kNoSpanParent;
  std::string name;
  std::uint64_t start_ns = 0;  ///< steady-clock, process-relative ordering
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;    ///< CLOCK_THREAD_CPUTIME_ID delta
  std::vector<TraceCounter> counters;
};

/// Span collector. begin/end must nest (enforced only by usage — use
/// SpanGuard); counters attach to any still-open or closed span by id.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span under the currently innermost open span. Returns its id.
  std::uint32_t begin_span(std::string_view name);

  /// Closes the span (records wall + CPU durations). Ends must match the
  /// most recent unclosed begin; SpanGuard guarantees this.
  void end_span(std::uint32_t id);

  /// Adds `value` to the named counter of span `id` (creating it at 0).
  /// Summing semantics let loops attach per-iteration increments.
  void add_counter(std::uint32_t id, std::string_view name, std::uint64_t value);

  /// Inserts an already-measured span (e.g. time accumulated *inside* a
  /// phase by the shadow heap's own instrumentation, re-attributed as a
  /// child span after the fact). Parent is the innermost open span.
  std::uint32_t add_complete_span(std::string_view name, std::uint64_t start_ns,
                                  std::uint64_t wall_ns, std::uint64_t cpu_ns);

  [[nodiscard]] const std::vector<TraceSpan>& spans() const noexcept {
    return spans_;
  }
  /// Id of the innermost open span, or kNoSpanParent when none.
  [[nodiscard]] std::uint32_t current() const noexcept {
    return stack_.empty() ? kNoSpanParent : stack_.back();
  }

  /// Steady-clock nanoseconds (the tracer's time base, exposed so callers
  /// can stamp externally measured spans consistently).
  [[nodiscard]] static std::uint64_t now_ns() noexcept;
  /// This thread's CPU time in nanoseconds.
  [[nodiscard]] static std::uint64_t thread_cpu_ns() noexcept;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<std::uint32_t> stack_;
};

/// RAII span: no-op when `tracer` is null, so instrumentation points cost
/// one branch in untraced runs.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::string_view name)
      : tracer_(tracer), id_(tracer ? tracer->begin_span(name) : kNoSpanParent) {}
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->end_span(id_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Adds to a counter of this span (no-op when untraced).
  void counter(std::string_view name, std::uint64_t value) {
    if (tracer_ != nullptr) tracer_->add_counter(id_, name, value);
  }
  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  std::uint32_t id_;
};

// ---- Exports (docs/FORMATS.md §5) ----

/// Chrome trace-event JSON: {"displayTimeUnit", "traceEvents": [...]} with
/// one "X" (complete) event per span, ts/dur in microseconds relative to
/// the earliest span, and exact {id, parent, start_ns, wall_ns, cpu_ns,
/// counters} in args.
[[nodiscard]] std::string trace_chrome_json(const Tracer& tracer,
                                            std::string_view process_name =
                                                "heaptherapy-offline");

/// Result of parsing a Chrome trace-event JSON produced by
/// trace_chrome_json (or a compatible subset). Lenient: events missing
/// required fields produce a diagnostic and are skipped; the parser never
/// throws on malformed input.
struct TraceParseResult {
  std::vector<TraceSpan> spans;
  std::vector<std::string> errors;
  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

[[nodiscard]] TraceParseResult parse_chrome_trace(std::string_view json);

/// Human-readable span tree: one line per span, indented by depth, with
/// wall/CPU durations and counters.
[[nodiscard]] std::string trace_tree(const Tracer& tracer);
[[nodiscard]] std::string trace_tree(const std::vector<TraceSpan>& spans);

}  // namespace ht::support
