#include "support/trace.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace ht::support {

namespace {

// printf-append onto a std::string (same helper idiom as runtime/telemetry).
void append_fmt(std::string& out, const char* fmt, ...) {
  char stack_buf[256];
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  if (needed >= 0 && static_cast<std::size_t>(needed) < sizeof(stack_buf)) {
    out.append(stack_buf, static_cast<std::size_t>(needed));
  } else if (needed >= 0) {
    std::string big(static_cast<std::size_t>(needed) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, args_copy);
    big.resize(static_cast<std::size_t>(needed));
    out += big;
  }
  va_end(args_copy);
  va_end(args);
}

std::uint64_t clock_ns(clockid_t clock) noexcept {
  timespec ts{};
  if (clock_gettime(clock, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

std::uint64_t Tracer::now_ns() noexcept { return clock_ns(CLOCK_MONOTONIC); }

std::uint64_t Tracer::thread_cpu_ns() noexcept {
  return clock_ns(CLOCK_THREAD_CPUTIME_ID);
}

std::uint32_t Tracer::begin_span(std::string_view name) {
  TraceSpan span;
  span.id = static_cast<std::uint32_t>(spans_.size());
  span.parent = current();
  span.name.assign(name);
  span.start_ns = now_ns();
  // Until end_span, wall_ns/cpu_ns hold the start readings; end_span turns
  // them into deltas. A tracer destroyed with open spans leaves them with
  // zero-looking durations rather than garbage.
  span.cpu_ns = thread_cpu_ns();
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::end_span(std::uint32_t id) {
  if (id >= spans_.size()) return;
  TraceSpan& span = spans_[id];
  std::uint64_t wall_end = now_ns();
  std::uint64_t cpu_end = thread_cpu_ns();
  span.wall_ns = wall_end >= span.start_ns ? wall_end - span.start_ns : 0;
  span.cpu_ns = cpu_end >= span.cpu_ns ? cpu_end - span.cpu_ns : 0;
  // Pop through the stack to this id: tolerates a missed end_span on an
  // inner span (e.g. early return without a guard) instead of corrupting
  // the parent chain of every later span.
  while (!stack_.empty()) {
    std::uint32_t top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
  }
}

void Tracer::add_counter(std::uint32_t id, std::string_view name,
                         std::uint64_t value) {
  if (id >= spans_.size()) return;
  for (TraceCounter& c : spans_[id].counters) {
    if (c.name == name) {
      c.value += value;
      return;
    }
  }
  spans_[id].counters.push_back(TraceCounter{std::string(name), value});
}

std::uint32_t Tracer::add_complete_span(std::string_view name,
                                        std::uint64_t start_ns,
                                        std::uint64_t wall_ns,
                                        std::uint64_t cpu_ns) {
  TraceSpan span;
  span.id = static_cast<std::uint32_t>(spans_.size());
  span.parent = current();
  span.name.assign(name);
  span.start_ns = start_ns;
  span.wall_ns = wall_ns;
  span.cpu_ns = cpu_ns;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

// ---- Chrome trace-event JSON export ----

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          append_fmt(out, "\\u%04x", static_cast<unsigned char>(ch));
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string trace_chrome_json(const Tracer& tracer,
                              std::string_view process_name) {
  const std::vector<TraceSpan>& spans = tracer.spans();
  std::uint64_t base = 0;
  bool have_base = false;
  for (const TraceSpan& s : spans) {
    if (!have_base || s.start_ns < base) {
      base = s.start_ns;
      have_base = true;
    }
  }

  std::string out;
  out += "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  out += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1,"
         " \"args\": {\"name\": ";
  append_json_string(out, process_name);
  out += "}}";
  for (const TraceSpan& s : spans) {
    out += ",\n  {\"name\": ";
    append_json_string(out, s.name);
    std::uint64_t rel = s.start_ns - base;
    // ts/dur are µs for the viewer; exact ns ride in args for round-trip.
    append_fmt(out,
               ", \"cat\": \"offline\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, "
               "\"ts\": %" PRIu64 ".%03u, \"dur\": %" PRIu64 ".%03u, ",
               rel / 1000, static_cast<unsigned>(rel % 1000), s.wall_ns / 1000,
               static_cast<unsigned>(s.wall_ns % 1000));
    append_fmt(out,
               "\"args\": {\"id\": %" PRIu32 ", \"parent\": %" PRId64
               ", \"start_ns\": %" PRIu64 ", \"wall_ns\": %" PRIu64
               ", \"cpu_ns\": %" PRIu64 ", \"counters\": {",
               s.id,
               s.parent == kNoSpanParent ? static_cast<std::int64_t>(-1)
                                         : static_cast<std::int64_t>(s.parent),
               s.start_ns, s.wall_ns, s.cpu_ns);
    bool first = true;
    for (const TraceCounter& c : s.counters) {
      if (!first) out += ", ";
      first = false;
      append_json_string(out, c.name);
      append_fmt(out, ": %" PRIu64, c.value);
    }
    out += "}}}";
  }
  out += "\n]}\n";
  return out;
}

// ---- Chrome trace-event JSON parser ----
//
// A minimal, crash-proof JSON scanner: just enough of the grammar to pull
// "X" events back out of trace_chrome_json output (and tolerate compatible
// traces from other producers). Structural errors are reported as
// diagnostics, never exceptions.

namespace {

struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;
  std::vector<std::string>* errors = nullptr;
  bool failed = false;

  void fail(const std::string& msg) {
    if (!failed && errors != nullptr) {
      std::string full = "trace json: " + msg + " at offset ";
      append_fmt(full, "%zu", pos);
      errors->push_back(std::move(full));
    }
    failed = true;
  }
  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text[pos]; }
  void skip_ws() {
    while (!eof() && (text[pos] == ' ' || text[pos] == '\t' ||
                      text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool expect(char ch) {
    skip_ws();
    if (peek() != ch) {
      fail(std::string("expected '") + ch + "'");
      return false;
    }
    ++pos;
    return true;
  }
};

bool parse_json_string(JsonCursor& cur, std::string* out) {
  if (!cur.expect('"')) return false;
  while (!cur.eof()) {
    char ch = cur.text[cur.pos++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (cur.eof()) break;
      char esc = cur.text[cur.pos++];
      if (out != nullptr) {
        switch (esc) {
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u':
            // Sufficient for our own output (we never emit \u for >0x1F);
            // foreign escapes degrade to '?' rather than failing the span.
            cur.pos += cur.pos + 4 <= cur.text.size() ? 4 : 0;
            *out += '?';
            break;
          default: *out += esc;
        }
      } else if (esc == 'u') {
        cur.pos += cur.pos + 4 <= cur.text.size() ? 4 : 0;
      }
    } else if (out != nullptr) {
      *out += ch;
    }
  }
  cur.fail("unterminated string");
  return false;
}

bool parse_json_number(JsonCursor& cur, double* out) {
  cur.skip_ws();
  std::size_t start = cur.pos;
  while (!cur.eof()) {
    char ch = cur.peek();
    if ((ch >= '0' && ch <= '9') || ch == '-' || ch == '+' || ch == '.' ||
        ch == 'e' || ch == 'E') {
      ++cur.pos;
    } else {
      break;
    }
  }
  if (cur.pos == start) {
    cur.fail("expected number");
    return false;
  }
  std::string token(cur.text.substr(start, cur.pos - start));
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) {
    cur.fail("malformed number '" + token + "'");
    return false;
  }
  if (out != nullptr) *out = value;
  return true;
}

// Skips any JSON value without interpreting it.
bool skip_json_value(JsonCursor& cur, int depth = 0) {
  if (depth > 64) {
    cur.fail("nesting too deep");
    return false;
  }
  cur.skip_ws();
  char ch = cur.peek();
  if (ch == '"') return parse_json_string(cur, nullptr);
  if (ch == '{' || ch == '[') {
    char close = ch == '{' ? '}' : ']';
    ++cur.pos;
    cur.skip_ws();
    if (cur.peek() == close) {
      ++cur.pos;
      return true;
    }
    while (true) {
      if (ch == '{') {
        if (!parse_json_string(cur, nullptr)) return false;
        if (!cur.expect(':')) return false;
      }
      if (!skip_json_value(cur, depth + 1)) return false;
      cur.skip_ws();
      if (cur.peek() == ',') {
        ++cur.pos;
        cur.skip_ws();
        continue;
      }
      if (cur.peek() == close) {
        ++cur.pos;
        return true;
      }
      cur.fail("expected ',' or container close");
      return false;
    }
  }
  if (ch == 't' || ch == 'f' || ch == 'n') {
    std::string_view word = ch == 't' ? "true" : ch == 'f' ? "false" : "null";
    if (cur.text.substr(cur.pos, word.size()) == word) {
      cur.pos += word.size();
      return true;
    }
    cur.fail("malformed literal");
    return false;
  }
  return parse_json_number(cur, nullptr);
}

// Parses {"name": <u64>, ...} into counters.
bool parse_counters_object(JsonCursor& cur, std::vector<TraceCounter>* out) {
  if (!cur.expect('{')) return false;
  cur.skip_ws();
  if (cur.peek() == '}') {
    ++cur.pos;
    return true;
  }
  while (true) {
    std::string name;
    if (!parse_json_string(cur, &name)) return false;
    if (!cur.expect(':')) return false;
    double value = 0;
    if (!parse_json_number(cur, &value)) return false;
    out->push_back(
        TraceCounter{std::move(name),
                     value < 0 ? 0 : static_cast<std::uint64_t>(value)});
    cur.skip_ws();
    if (cur.peek() == ',') {
      ++cur.pos;
      cur.skip_ws();
      continue;
    }
    if (cur.peek() == '}') {
      ++cur.pos;
      return true;
    }
    cur.fail("expected ',' or '}' in counters");
    return false;
  }
}

struct EventFields {
  std::string name;
  std::string ph;
  double ts = 0;
  double dur = 0;
  bool has_args = false;
  bool has_id = false;
  double id = 0;
  double parent = -1;
  bool has_start_ns = false;
  double start_ns = 0;
  bool has_wall_ns = false;
  double wall_ns = 0;
  double cpu_ns = 0;
  std::vector<TraceCounter> counters;
};

bool parse_args_object(JsonCursor& cur, EventFields* ev) {
  if (!cur.expect('{')) return false;
  ev->has_args = true;
  cur.skip_ws();
  if (cur.peek() == '}') {
    ++cur.pos;
    return true;
  }
  while (true) {
    std::string key;
    if (!parse_json_string(cur, &key)) return false;
    if (!cur.expect(':')) return false;
    if (key == "id") {
      if (!parse_json_number(cur, &ev->id)) return false;
      ev->has_id = true;
    } else if (key == "parent") {
      if (!parse_json_number(cur, &ev->parent)) return false;
    } else if (key == "start_ns") {
      if (!parse_json_number(cur, &ev->start_ns)) return false;
      ev->has_start_ns = true;
    } else if (key == "wall_ns") {
      if (!parse_json_number(cur, &ev->wall_ns)) return false;
      ev->has_wall_ns = true;
    } else if (key == "cpu_ns") {
      if (!parse_json_number(cur, &ev->cpu_ns)) return false;
    } else if (key == "counters") {
      if (!parse_counters_object(cur, &ev->counters)) return false;
    } else {
      if (!skip_json_value(cur)) return false;
    }
    cur.skip_ws();
    if (cur.peek() == ',') {
      ++cur.pos;
      cur.skip_ws();
      continue;
    }
    if (cur.peek() == '}') {
      ++cur.pos;
      return true;
    }
    cur.fail("expected ',' or '}' in args");
    return false;
  }
}

bool parse_event_object(JsonCursor& cur, EventFields* ev) {
  if (!cur.expect('{')) return false;
  cur.skip_ws();
  if (cur.peek() == '}') {
    ++cur.pos;
    return true;
  }
  while (true) {
    std::string key;
    if (!parse_json_string(cur, &key)) return false;
    if (!cur.expect(':')) return false;
    if (key == "name") {
      if (!parse_json_string(cur, &ev->name)) return false;
    } else if (key == "ph") {
      if (!parse_json_string(cur, &ev->ph)) return false;
    } else if (key == "ts") {
      if (!parse_json_number(cur, &ev->ts)) return false;
    } else if (key == "dur") {
      if (!parse_json_number(cur, &ev->dur)) return false;
    } else if (key == "args") {
      if (!parse_args_object(cur, ev)) return false;
    } else {
      if (!skip_json_value(cur)) return false;
    }
    cur.skip_ws();
    if (cur.peek() == ',') {
      ++cur.pos;
      cur.skip_ws();
      continue;
    }
    if (cur.peek() == '}') {
      ++cur.pos;
      return true;
    }
    cur.fail("expected ',' or '}' in event");
    return false;
  }
}

}  // namespace

TraceParseResult parse_chrome_trace(std::string_view json) {
  TraceParseResult result;
  JsonCursor cur{json, 0, &result.errors, false};

  cur.skip_ws();
  bool found_events = false;
  bool object_form = false;
  std::size_t event_index = 0;
  // Accept both the wrapping {"traceEvents": [...]} object and a bare
  // top-level event array (the other form chrome://tracing loads).
  if (cur.peek() == '[') {
    found_events = true;
  } else if (cur.expect('{')) {
    object_form = true;
    cur.skip_ws();
    while (!cur.failed && !cur.eof() && cur.peek() != '}') {
      std::string key;
      if (!parse_json_string(cur, &key)) break;
      if (!cur.expect(':')) break;
      if (key == "traceEvents") {
        found_events = true;
        break;
      }
      if (!skip_json_value(cur)) break;
      cur.skip_ws();
      if (cur.peek() == ',') {
        ++cur.pos;
        cur.skip_ws();
      }
    }
    if (!found_events && !cur.failed) cur.fail("no traceEvents array");
  }

  if (found_events && cur.expect('[')) {
    cur.skip_ws();
    bool done = cur.peek() == ']';
    if (done) ++cur.pos;
    while (!done && !cur.failed && !cur.eof()) {
      EventFields ev;
      std::size_t before = cur.pos;
      if (!parse_event_object(cur, &ev)) break;
      (void)before;
      if (ev.ph == "X") {
        if (ev.name.empty()) {
          std::string msg = "trace json: event ";
          append_fmt(msg, "%zu", event_index);
          msg += " has no name; skipped";
          result.errors.push_back(std::move(msg));
        } else {
          TraceSpan span;
          span.id = ev.has_id
                        ? static_cast<std::uint32_t>(ev.id)
                        : static_cast<std::uint32_t>(result.spans.size());
          span.parent = ev.parent < 0
                            ? kNoSpanParent
                            : static_cast<std::uint32_t>(ev.parent);
          span.name = std::move(ev.name);
          // Exact ns from args when present; else reconstruct from the µs
          // viewer fields (lossy below 1 ns granularity of ts*1000).
          span.start_ns = ev.has_start_ns
                              ? static_cast<std::uint64_t>(ev.start_ns)
                              : static_cast<std::uint64_t>(ev.ts * 1000.0);
          span.wall_ns = ev.has_wall_ns
                             ? static_cast<std::uint64_t>(ev.wall_ns)
                             : static_cast<std::uint64_t>(ev.dur * 1000.0);
          span.cpu_ns = static_cast<std::uint64_t>(ev.cpu_ns);
          span.counters = std::move(ev.counters);
          result.spans.push_back(std::move(span));
        }
      }
      ++event_index;
      cur.skip_ws();
      if (cur.peek() == ',') {
        ++cur.pos;
        cur.skip_ws();
        continue;
      }
      if (cur.peek() == ']') {
        ++cur.pos;
        done = true;
        break;
      }
      cur.fail("expected ',' or ']' in traceEvents");
    }
    if (!done && !cur.failed) cur.fail("unterminated traceEvents array");
    if (done && object_form && !cur.failed) {
      // Consume any keys after traceEvents, then require the closing brace
      // so a truncated dump is reported rather than silently accepted.
      cur.skip_ws();
      while (!cur.failed && cur.peek() == ',') {
        ++cur.pos;
        std::string key;
        if (!parse_json_string(cur, &key)) break;
        if (!cur.expect(':')) break;
        if (!skip_json_value(cur)) break;
        cur.skip_ws();
      }
      if (!cur.failed) cur.expect('}');
    }
  }
  return result;
}

// ---- Human-readable span tree ----

namespace {

void append_duration(std::string& out, std::uint64_t ns) {
  if (ns >= 1000000000ull) {
    append_fmt(out, "%" PRIu64 ".%03" PRIu64 "s", ns / 1000000000ull,
               (ns % 1000000000ull) / 1000000ull);
  } else if (ns >= 1000000ull) {
    append_fmt(out, "%" PRIu64 ".%03" PRIu64 "ms", ns / 1000000ull,
               (ns % 1000000ull) / 1000ull);
  } else if (ns >= 1000ull) {
    append_fmt(out, "%" PRIu64 ".%03" PRIu64 "us", ns / 1000ull, ns % 1000ull);
  } else {
    append_fmt(out, "%" PRIu64 "ns", ns);
  }
}

void append_tree_node(std::string& out, const std::vector<TraceSpan>& spans,
                      const std::vector<std::vector<std::uint32_t>>& children,
                      std::uint32_t id, int depth) {
  const TraceSpan& span = spans[id];
  for (int i = 0; i < depth; ++i) out += "  ";
  out += span.name;
  out += "  wall=";
  append_duration(out, span.wall_ns);
  out += " cpu=";
  append_duration(out, span.cpu_ns);
  if (!span.counters.empty()) {
    out += "  [";
    bool first = true;
    for (const TraceCounter& c : span.counters) {
      if (!first) out += ' ';
      first = false;
      out += c.name;
      append_fmt(out, "=%" PRIu64, c.value);
    }
    out += ']';
  }
  out += '\n';
  if (depth > 63) return;  // cycle/corruption guard on parsed input
  for (std::uint32_t child : children[id]) {
    append_tree_node(out, spans, children, child, depth + 1);
  }
}

}  // namespace

std::string trace_tree(const std::vector<TraceSpan>& spans) {
  std::vector<std::vector<std::uint32_t>> children(spans.size());
  std::vector<std::uint32_t> roots;
  for (std::uint32_t i = 0; i < spans.size(); ++i) {
    std::uint32_t parent = spans[i].parent;
    // Treat forward or self references (possible in foreign/corrupt traces)
    // as roots so the renderer cannot loop.
    if (parent == kNoSpanParent || parent >= i) {
      roots.push_back(i);
    } else {
      children[parent].push_back(i);
    }
  }
  std::string out;
  for (std::uint32_t root : roots) {
    append_tree_node(out, spans, children, root, 0);
  }
  return out;
}

std::string trace_tree(const Tracer& tracer) { return trace_tree(tracer.spans()); }

}  // namespace ht::support
