// Seeded, deterministic fault injection for the resilience layer
// (docs/RESILIENCE.md is the operator/tester-facing reference).
//
// The online defense must degrade, not die, when the world around it fails:
// the underlying allocator returns null, a guard mprotect is refused, the
// quarantine quota saturates, a telemetry flush hits a full disk, an
// operator pushes a torn patch file. None of those paths can be exercised
// reliably by waiting for the failure to happen — this module makes each of
// them a *named fault point* that tests (and brave operators) can arm with
// a deterministic firing schedule.
//
// Cost contract (the same one the Tracer honors): with no fault armed, a
// fault point costs ONE relaxed atomic load plus a predicted-not-taken
// branch — bench/ht_faultpoint_overhead holds the disabled mode to ≤0.5% of
// allocator throughput, enforced with exit 1. Arming is explicit: via the
// programmatic API (tests) or install_faults_from_env() reading
// HEAPTHERAPY_FAULTS (the preload shim and htrun do this at startup).
//
// Determinism: every decision is a pure function of the point's spec and
// its evaluation counter (per-point atomic). "rate:N:SEED" hashes the
// counter with the seed, so two runs with the same spec fire on the same
// evaluation indices regardless of timing — a seeded fault sweep is exactly
// reproducible. There is no wall clock and no global RNG anywhere here.
//
// Spec grammar (parse_fault_spec):
//   always        fire on every evaluation
//   never         armed but inert (counts evaluations; useful to measure
//                 how often a site is reached)
//   first:K       fire on the first K evaluations, then stop
//   every:N       fire on evaluations 0, N, 2N, ... (N >= 1)
//   rate:N[:SEED] fire on ~1/N evaluations, chosen by mix64(seed ^ index)
// Env grammar (HEAPTHERAPY_FAULTS): comma-separated "point=spec" entries,
// e.g. "underlying-oom=every:64,guard-map=always".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ht::support {

/// The named failure seams of the runtime. Values index the registry; add
/// at the end, never renumber (names are part of the env/docs surface).
enum class FaultPoint : std::uint8_t {
  kUnderlyingOom = 0,      ///< underlying malloc/memalign returns null
  kGuardMap = 1,           ///< guard-page mprotect fails
  kQuarantinePressure = 2, ///< quarantine behaves as if over high watermark
  kTelemetryIo = 3,        ///< telemetry flush write fails
  kPatchParse = 4,         ///< patch-config load yields a parse error
};

inline constexpr std::uint32_t kFaultPointCount = 5;

/// Stable token used by HEAPTHERAPY_FAULTS and the docs ("underlying-oom").
[[nodiscard]] std::string_view fault_point_name(FaultPoint point) noexcept;
/// Inverse of fault_point_name; returns false on unknown token.
[[nodiscard]] bool fault_point_from_name(std::string_view name,
                                         FaultPoint& out) noexcept;

/// One point's firing schedule. Plain POD so tests can build them inline.
struct FaultSpec {
  enum class Mode : std::uint8_t {
    kNever = 0,  ///< armed but never fires (still counts evaluations)
    kAlways = 1,
    kFirst = 2,  ///< fire while evaluation index < n
    kEvery = 3,  ///< fire when evaluation index % n == 0
    kRate = 4,   ///< fire when mix64(seed ^ index) % n == 0
  };
  Mode mode = Mode::kNever;
  std::uint64_t n = 0;
  std::uint64_t seed = 0;
};

/// Parses the spec grammar above. On failure returns false and, when
/// `error` is non-null, stores a one-line diagnostic.
[[nodiscard]] bool parse_fault_spec(std::string_view text, FaultSpec& out,
                                    std::string* error = nullptr);

/// Arms `point` with `spec` and resets its counters. Thread-safe, but meant
/// for configuration time (test setup, process start), not hot paths.
void arm_fault(FaultPoint point, const FaultSpec& spec) noexcept;
/// Disarms `point` (its fault_fires returns to the one-branch fast path).
void disarm_fault(FaultPoint point) noexcept;
/// Disarms every point and zeroes all counters (test teardown).
void disarm_all_faults() noexcept;

/// Observability of the injector itself: how often each site was reached
/// and how often it was made to fail. A degradation test asserts fires > 0
/// to prove the sweep actually exercised the seam it armed.
struct FaultStats {
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;
};
[[nodiscard]] FaultStats fault_stats(FaultPoint point) noexcept;

/// Applies a full HEAPTHERAPY_FAULTS-style string ("point=spec,..."). Valid
/// entries arm their points; malformed entries are skipped and reported —
/// one diagnostic per bad entry, never an abort (a typo in the env must not
/// take down the protected process). An empty string arms nothing.
[[nodiscard]] std::vector<std::string> configure_faults(std::string_view text);

/// Reads HEAPTHERAPY_FAULTS from the environment, applies it, and prints
/// each diagnostic to stderr prefixed "heaptherapy: ". Returns the number
/// of points armed. No-op (returns 0) when the variable is unset or empty.
std::size_t install_faults_from_env();

namespace detail {
/// Bit i set <=> FaultPoint(i) is armed. The ONLY state the disabled fast
/// path touches.
extern std::atomic<std::uint32_t> g_armed_mask;
[[nodiscard]] bool fault_fires_slow(FaultPoint point) noexcept;
}  // namespace detail

/// The instrumentation hook. Disabled cost: one relaxed load + one branch.
[[nodiscard]] inline bool fault_fires(FaultPoint point) noexcept {
  if ((detail::g_armed_mask.load(std::memory_order_relaxed) &
       (1u << static_cast<std::uint32_t>(point))) == 0) {
    return false;
  }
  return detail::fault_fires_slow(point);
}

}  // namespace ht::support
