// Hashing primitives shared across HeapTherapy+.
//
// The online patch table and the offline CCID bookkeeping both need fast,
// well-mixed 64-bit hashes with deterministic cross-run behaviour (patches
// are persisted to a config file and must hash identically when reloaded).
#pragma once

#include <cstdint>
#include <string_view>

namespace ht::support {

/// 64-bit FNV-1a over an arbitrary byte string. Deterministic across runs
/// and platforms; used for hashing allocation-function names in patch keys.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// SplitMix64 finalizer: a strong 64->64 bit mixer. Used to spread CCIDs
/// (which are arithmetic accumulations and therefore poorly distributed in
/// the low bits) across patch-table slots.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit hashes (order-sensitive).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace ht::support
