// Streaming statistics used by the benchmark harnesses.
//
// Benches report means, standard deviations, percentiles and normalized
// overheads exactly the way the paper's figures do (normalized over native
// execution), so the harness needs small, self-contained accumulators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ht::support {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; supports exact percentiles. Use for modest sample
/// counts (bench reps), not per-allocation events.
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] double mean() const noexcept;
  /// Exact percentile via nearest-rank on a sorted copy; p in [0,100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  std::vector<double> values_;
};

/// Overhead of `measured` relative to `baseline`, as a fraction
/// (0.052 == +5.2%). Returns 0 for a non-positive baseline.
[[nodiscard]] double overhead_fraction(double baseline, double measured) noexcept;

/// Formats a fraction as a signed percentage string, e.g. "+5.2%".
[[nodiscard]] std::string format_percent(double fraction);

/// Counter histogram keyed by 64-bit id (e.g. allocations per CCID).
class FrequencyTable {
 public:
  void add(std::uint64_t key, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t count(std::uint64_t key) const;
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  struct Entry {
    std::uint64_t key;
    std::uint64_t count;
  };
  /// Entries sorted by descending count (ties broken by key for determinism).
  [[nodiscard]] std::vector<Entry> sorted_by_count() const;
  /// Keys whose frequency rank is closest to the median — the paper's
  /// protocol for choosing hypothesized vulnerable CCIDs (§VIII-B2).
  [[nodiscard]] std::vector<std::uint64_t> median_frequency_keys(std::size_t how_many) const;

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ht::support
