#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ht::support {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double overhead_fraction(double baseline, double measured) noexcept {
  if (baseline <= 0.0) return 0.0;
  return (measured - baseline) / baseline;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", fraction * 100.0);
  return buf;
}

void FrequencyTable::add(std::uint64_t key, std::uint64_t delta) {
  counts_[key] += delta;
  total_ += delta;
}

std::uint64_t FrequencyTable::count(std::uint64_t key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<FrequencyTable::Entry> FrequencyTable::sorted_by_count() const {
  std::vector<Entry> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_) out.push_back({key, count});
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

std::vector<std::uint64_t> FrequencyTable::median_frequency_keys(
    std::size_t how_many) const {
  const auto sorted = sorted_by_count();
  std::vector<std::uint64_t> keys;
  if (sorted.empty() || how_many == 0) return keys;
  // Pick entries centered on the median rank, expanding outward.
  const std::ptrdiff_t median = static_cast<std::ptrdiff_t>(sorted.size()) / 2;
  std::ptrdiff_t lo = median;
  std::ptrdiff_t hi = median + 1;
  while (keys.size() < how_many &&
         (lo >= 0 || hi < static_cast<std::ptrdiff_t>(sorted.size()))) {
    if (lo >= 0) {
      keys.push_back(sorted[static_cast<std::size_t>(lo--)].key);
      if (keys.size() == how_many) break;
    }
    if (hi < static_cast<std::ptrdiff_t>(sorted.size())) {
      keys.push_back(sorted[static_cast<std::size_t>(hi++)].key);
    }
  }
  return keys;
}

}  // namespace ht::support
