// Small string utilities for the config-file parser and table printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ht::support {

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter character; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char delim);

/// Parse an unsigned 64-bit integer in decimal or 0x-hex. Rejects trailing
/// garbage, empty input, and overflow.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept;

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Left-pad / right-pad to a column width (for bench table output).
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);

/// Thousands-separated integer (e.g. 346,405,116) as in the paper's Table IV.
[[nodiscard]] std::string with_commas(std::uint64_t value);

}  // namespace ht::support
