// Deterministic pseudo-random number generation.
//
// Every stochastic component in the reproduction (random program generation,
// workload interleaving, attack-input fuzzing in tests) draws from this PRNG
// so that test failures and benchmark runs are reproducible from a seed.
#pragma once

#include <cstdint>
#include <span>

namespace ht::support {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  /// Seeds all 256 bits of state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit draw.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Pick a uniformly random element index from a non-empty span length.
  std::size_t index(std::size_t size) noexcept { return static_cast<std::size_t>(below(size)); }

  /// Sample an index from a discrete weight distribution. Zero total weight
  /// falls back to uniform. Precondition: !weights.empty().
  std::size_t weighted(std::span<const double> weights) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace ht::support
