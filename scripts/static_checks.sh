#!/usr/bin/env bash
# clang-tidy over the static-analyzer sources (.clang-tidy at the repo root
# picks the checks: bugprone-* plus the cppcoreguidelines memory checks).
#
# Wired into ctest as `docs.static_checks` with SKIP_RETURN_CODE 77: on
# machines without clang-tidy (the default container) the test reports
# SKIPPED, not PASSED — CI that does ship clang-tidy gets the real signal.
#
# Usage: scripts/static_checks.sh [clang-tidy-binary]
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
tidy="${1:-clang-tidy}"

if ! command -v "$tidy" > /dev/null 2>&1; then
  echo "static_checks: $tidy not found; skipping (exit 77)" >&2
  exit 77
fi

# The analyzer + the modules it leans on. Kept explicit (not a glob) so a
# new file is a deliberate decision to put it under the tidy gate.
sources=(
  "$repo/src/analysis/abstract_heap.cpp"
  "$repo/src/analysis/static_analyzer.cpp"
  "$repo/src/patch/static_hints.cpp"
  "$repo/tools/htlint.cpp"
)

fail=0
for src in "${sources[@]}"; do
  if [ ! -f "$src" ]; then
    echo "static_checks: missing source $src" >&2
    fail=1
    continue
  fi
  echo "static_checks: $tidy ${src#"$repo"/}"
  if ! "$tidy" --quiet "$src" -- -std=c++20 -I "$repo/src" -I "$repo/tools"; then
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "static_checks: FAILED" >&2
  exit 1
fi
echo "static_checks: OK (${#sources[@]} file(s))"
