#!/usr/bin/env bash
# Builds the project with HT_SANITIZE=thread and runs the concurrency-
# sensitive test suites (runtime allocators/quarantine/sharding + the
# multi-threaded service workload) under ThreadSanitizer. CI-friendly:
# exits non-zero on any build failure, test failure, or TSan report.
#
# Usage: scripts/tsan_tests.sh [build-dir] [suite...]
#   build-dir  defaults to build-tsan (kept separate from the normal build)
#   suite...   gtest binaries to run, defaults to: test_runtime test_workload
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
shift $(( $# > 0 ? 1 : 0 ))
SUITES=("${@:-test_runtime}" )
if [ $# -eq 0 ]; then SUITES=(test_runtime test_workload); fi

cmake -B "$BUILD_DIR" -S . -DHT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${SUITES[@]}"

# halt_on_error makes any race fail the run (TSan's default exit code is 66);
# second_deadlock_stack improves lock-inversion reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"
for suite in "${SUITES[@]}"; do
  # The gtest binaries are run directly (not via ctest): gtest_discover_tests
  # registers per-test names, so a suite-level ctest -R can silently match
  # nothing — running the binary makes "zero tests" impossible to miss.
  binary="$(find "$BUILD_DIR/tests" -type f -name "$suite" | head -n1)"
  if [ -z "$binary" ]; then
    echo "error: suite binary '$suite' not found under $BUILD_DIR/tests" >&2
    exit 1
  fi
  echo "== $suite (under TSan) =="
  "$binary"
done
echo "TSan suite passed: ${SUITES[*]}"
