#!/usr/bin/env bash
# Builds the project with HT_SANITIZE=thread and runs the concurrency-
# sensitive test suites (runtime allocators/quarantine/sharding + the
# multi-threaded service workload) under ThreadSanitizer. CI-friendly:
# exits non-zero on any build failure, test failure, or TSan report.
#
# Usage: [HT_SANITIZE=thread|address] scripts/tsan_tests.sh [build-dir] [suite[:filter]...]
#   HT_SANITIZE  sanitizer to build with, defaults to thread; address runs
#                the same suite matrix under ASan instead
#   build-dir  defaults to build-<sanitizer> (kept separate from the normal build)
#   suite...   gtest binaries to run; an optional :filter suffix becomes the
#              binary's --gtest_filter (e.g. test_integration:SelfHealing.*
#              runs only the self-healing loop tests from the integration
#              binary). Defaults to: test_runtime test_workload
#              test_integration:SelfHealing.*
set -euo pipefail

cd "$(dirname "$0")/.."
SAN="${HT_SANITIZE:-thread}"
case "$SAN" in
  thread)  DEFAULT_DIR=build-tsan ;;
  address) DEFAULT_DIR=build-asan ;;
  *) echo "error: HT_SANITIZE must be 'thread' or 'address', got '$SAN'" >&2
     exit 1 ;;
esac
BUILD_DIR="${1:-$DEFAULT_DIR}"
shift $(( $# > 0 ? 1 : 0 ))
SUITES=("$@")
if [ $# -eq 0 ]; then
  # The self-healing loop exercises the concurrency-sensitive seams end to
  # end — lock-free candidate table, flusher thread, SIGHUP hot-reload —
  # so its suite rides in the default TSan matrix.
  SUITES=(test_runtime test_workload "test_integration:SelfHealing.*")
fi

# Build targets are the suite names with any :filter suffix stripped.
TARGETS=()
for spec in "${SUITES[@]}"; do TARGETS+=("${spec%%:*}"); done

cmake -B "$BUILD_DIR" -S . -DHT_SANITIZE="$SAN" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TARGETS[@]}"

# halt_on_error makes any race fail the run (TSan's default exit code is 66);
# second_deadlock_stack improves lock-inversion reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"
for spec in "${SUITES[@]}"; do
  suite="${spec%%:*}"
  filter="${spec#"$suite"}"
  filter="${filter#:}"
  # The gtest binaries are run directly (not via ctest): gtest_discover_tests
  # registers per-test names, so a suite-level ctest -R can silently match
  # nothing — running the binary makes "zero tests" impossible to miss.
  binary="$(find "$BUILD_DIR/tests" -type f -name "$suite" | head -n1)"
  if [ -z "$binary" ]; then
    echo "error: suite binary '$suite' not found under $BUILD_DIR/tests" >&2
    exit 1
  fi
  if [ -n "$filter" ]; then
    echo "== $suite --gtest_filter=$filter (${SAN} sanitizer) =="
    "$binary" --gtest_filter="$filter"
  else
    echo "== $suite (${SAN} sanitizer) =="
    "$binary"
  fi
done
echo "${SAN}-sanitizer suite passed: ${SUITES[*]}"
