#!/usr/bin/env bash
# Documentation lint: the operator-facing surface must stay documented.
#
# Checks (all against the repo the script lives in, so it runs from any cwd):
#   1. every HEAPTHERAPY_* environment variable referenced by src/ or tools/
#      is documented somewhere in README.md, DESIGN.md, or docs/;
#   2. every subcommand dispatched by htctl, htrun, htexport, htagg,
#      htpromote, and htlint is documented as "<tool> <subcommand>";
#   3. every "--flag" string literal parsed by htctl, htrun, htagg,
#      htpromote, and htlint is documented in at least one doc file that
#      also mentions the tool;
#   4. every named fault point registered in src/support/faultpoint.cpp is
#      documented in docs/RESILIENCE.md;
#   5. every relative markdown link in tracked *.md files resolves to a file
#      that exists (failures name the offending file:line);
#   6. every file-qualified section reference ("FORMATS.md §7") resolves to
#      a numbered heading ("## 7.") in the named file.
#
# Wired into ctest as `docs.check_docs` (tests/CMakeLists.txt) so a PR that
# adds a knob without documenting it fails the suite, not a review cycle.
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

doc_files=("$repo/README.md" "$repo/DESIGN.md")
while IFS= read -r f; do doc_files+=("$f"); done \
  < <(find "$repo/docs" -name '*.md' | sort)

doc_corpus="$(cat "${doc_files[@]}")"

# --- 1. environment variables -------------------------------------------
env_vars="$(grep -rhoE 'HEAPTHERAPY_[A-Z_]+' "$repo/src" "$repo/tools" | sort -u)"
for var in $env_vars; do
  if ! grep -qF "$var" <<<"$doc_corpus"; then
    echo "check_docs: env var $var (used in src/ or tools/) is not documented" \
         "in README.md, DESIGN.md, or docs/" >&2
    fail=1
  fi
done

# --- 1b. telemetry transport prefixes ------------------------------------
# Every *TargetPrefix constant in telemetry_wire.hpp is a
# HEAPTHERAPY_TELEMETRY value form ("unix:..."); the docs must show each
# prefix next to the variable so an operator can discover the streaming
# forms without reading the header.
wire_hdr="$repo/src/runtime/telemetry_wire.hpp"
if [ -f "$wire_hdr" ]; then
  prefixes="$(grep -oE 'TargetPrefix\[\] = "[a-z]+:"' "$wire_hdr" \
              | grep -oE '"[a-z]+:"' | tr -d '"' | sort -u)"
  if [ -z "$prefixes" ]; then
    echo "check_docs: found no *TargetPrefix constants in" \
         "${wire_hdr#"$repo"/} (extraction pattern broken?)" >&2
    fail=1
  fi
  for prefix in $prefixes; do
    if ! grep -qE "HEAPTHERAPY_TELEMETRY=?[^ ]*${prefix}" <<<"$doc_corpus"; then
      echo "check_docs: telemetry transport prefix '$prefix' (declared in" \
           "${wire_hdr#"$repo"/}) is not documented next to" \
           "HEAPTHERAPY_TELEMETRY" >&2
      fail=1
    fi
  done
fi

# --- 2. CLI subcommands --------------------------------------------------
# htctl and htrun dispatch on `command == "<name>"` (htrun via args.command);
# htexport compares its mode argument to literal strings the same way.
check_subcommands() { # tool source_file extraction_regex
  local tool="$1" src="$2" regex="$3" subs cmd
  subs="$(grep -oE "$regex" "$src" | grep -oE '"[a-z-]+"' | tr -d '"' | sort -u)"
  if [ -z "$subs" ]; then
    echo "check_docs: found no $tool subcommands in ${src#"$repo"/}" \
         "(extraction pattern broken?)" >&2
    fail=1
    return
  fi
  for cmd in $subs; do
    if ! grep -qE "$tool +$cmd" <<<"$doc_corpus"; then
      echo "check_docs: $tool subcommand '$cmd' is not documented (no" \
           "'$tool $cmd' in README.md, DESIGN.md, or docs/)" >&2
      fail=1
    fi
  done
}
check_subcommands htctl "$repo/tools/htctl.cpp" 'command == "[a-z-]+"'
check_subcommands htrun "$repo/tools/htrun.cpp" 'command == "[a-z-]+"'
check_subcommands htexport "$repo/tools/htexport.cpp" '== "[a-z-]+"'
check_subcommands htagg "$repo/tools/htagg.cpp" 'argv\[1\], "[a-z-]+"'
check_subcommands htpromote "$repo/tools/htpromote.cpp" 'command == "[a-z-]+"'
check_subcommands htlint "$repo/tools/htlint.cpp" 'command == "[a-z-]+"'

# --- 3. CLI flags ---------------------------------------------------------
# Every "--flag" a tool parses must be documented in at least one doc file
# that also mentions the tool (so htagg's --top can't hide behind another
# tool's docs).
check_flags() { # tool source_file
  local tool="$1" src="$2" flags flag f found
  flags="$(grep -oE '"--[a-z-]+"' "$src" | tr -d '"' | sort -u)"
  for flag in $flags; do
    found=0
    for f in "${doc_files[@]}"; do
      if grep -qF "$tool" "$f" && grep -qF -- "$flag" "$f"; then
        found=1
        break
      fi
    done
    if [ "$found" -eq 0 ]; then
      echo "check_docs: $tool flag '$flag' is not documented (no doc file" \
           "mentions both '$tool' and '$flag')" >&2
      fail=1
    fi
  done
}
check_flags htctl "$repo/tools/htctl.cpp"
check_flags htrun "$repo/tools/htrun.cpp"
check_flags htagg "$repo/tools/htagg.cpp"
check_flags htpromote "$repo/tools/htpromote.cpp"
check_flags htlint "$repo/tools/htlint.cpp"

# --- 4. fault points ------------------------------------------------------
# Every named fault point in the injection registry (src/support/
# faultpoint.cpp) must be documented in docs/RESILIENCE.md — the operator
# needs the name to arm it via HEAPTHERAPY_FAULTS.
fault_src="$repo/src/support/faultpoint.cpp"
resilience_doc="$repo/docs/RESILIENCE.md"
if [ ! -f "$resilience_doc" ]; then
  echo "check_docs: docs/RESILIENCE.md is missing (fault points and the" \
       "degradation ladder are documented there)" >&2
  fail=1
else
  fault_names="$(grep -oE 'FaultPoint::k[A-Za-z]+, "[a-z-]+"' "$fault_src" \
                 | grep -oE '"[a-z-]+"' | tr -d '"' | sort -u)"
  if [ -z "$fault_names" ]; then
    echo "check_docs: found no fault-point names in ${fault_src#"$repo"/}" \
         "(extraction pattern broken?)" >&2
    fail=1
  fi
  for name in $fault_names; do
    if ! grep -qF "$name" "$resilience_doc"; then
      echo "check_docs: fault point '$name' (registered in" \
           "${fault_src#"$repo"/}) is not documented in docs/RESILIENCE.md" >&2
      fail=1
    fi
  done
fi

# --- 5. relative markdown links -----------------------------------------
# Matches ](target) where target is not an absolute URL or an in-page
# anchor; strips any #fragment before checking existence. Failures name
# the offending file:line so the broken link is one click away.
all_md="$(find "$repo" -name '*.md' -not -path "$repo/build/*" -not -path '*/.*' | sort)"
for md in $all_md; do
  dir="$(dirname "$md")"
  while IFS=: read -r lineno link; do
    [ -z "$link" ] && continue
    link="$(sed -E 's/^\]\(//; s/\)$//' <<<"$link")"
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$repo/$target" ]; then
      echo "check_docs: ${md#"$repo"/}:$lineno links to '$link' which does" \
           "not exist" >&2
      fail=1
    fi
  done < <(grep -noE '\]\([^)]+\)' "$md" || true)
done

# --- 6. section cross-references ----------------------------------------
# A file-qualified section reference like "FORMATS.md §7" (with or without
# backticks around the file name) must resolve: the named file must exist
# next to the referencing doc or at the repo root, and it must contain a
# numbered heading "## 7." (any heading level; letter suffixes like §8b
# match "### 8b."). Keeps prose pointers honest when sections are
# renumbered. Failures name the offending file:line.
for md in $all_md; do
  dir="$(dirname "$md")"
  while IFS=: read -r lineno ref; do
    [ -z "$ref" ] && continue
    target="$(grep -oE '[A-Za-z0-9_/.-]+\.md' <<<"$ref")"
    section="$(sed -E 's/.*§//' <<<"$ref")"
    resolved=""
    for base in "$dir" "$repo" "$repo/docs"; do
      if [ -e "$base/$target" ]; then resolved="$base/$target"; break; fi
    done
    if [ -z "$resolved" ]; then
      echo "check_docs: ${md#"$repo"/}:$lineno references '$target §$section'" \
           "but '$target' does not exist" >&2
      fail=1
    elif ! grep -qE "^#+ *${section}\." "$resolved"; then
      echo "check_docs: ${md#"$repo"/}:$lineno references '$target §$section'" \
           "but ${resolved#"$repo"/} has no '## ${section}.' heading" >&2
      fail=1
    fi
  done < <(grep -noE '[A-Za-z0-9_/.-]+\.md'"\`"'? ?§[0-9]+[a-z]?' "$md" || true)
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK (env vars, CLI subcommands, CLI flags, fault points," \
     "markdown links, section cross-references)"
