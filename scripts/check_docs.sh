#!/usr/bin/env bash
# Documentation lint: the operator-facing surface must stay documented.
#
# Checks (all against the repo the script lives in, so it runs from any cwd):
#   1. every HEAPTHERAPY_* environment variable referenced by src/ or tools/
#      is documented somewhere in README.md, DESIGN.md, or docs/;
#   2. every htctl subcommand dispatched in tools/htctl.cpp is documented;
#   3. every relative markdown link in tracked *.md files resolves to a file
#      that exists.
#
# Wired into ctest as `docs.check_docs` (tests/CMakeLists.txt) so a PR that
# adds a knob without documenting it fails the suite, not a review cycle.
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

doc_files=("$repo/README.md" "$repo/DESIGN.md")
while IFS= read -r f; do doc_files+=("$f"); done \
  < <(find "$repo/docs" -name '*.md' | sort)

doc_corpus="$(cat "${doc_files[@]}")"

# --- 1. environment variables -------------------------------------------
env_vars="$(grep -rhoE 'HEAPTHERAPY_[A-Z_]+' "$repo/src" "$repo/tools" | sort -u)"
for var in $env_vars; do
  if ! grep -qF "$var" <<<"$doc_corpus"; then
    echo "check_docs: env var $var (used in src/ or tools/) is not documented" \
         "in README.md, DESIGN.md, or docs/" >&2
    fail=1
  fi
done

# --- 2. htctl subcommands -----------------------------------------------
subcommands="$(grep -oE 'command == "[a-z]+"' "$repo/tools/htctl.cpp" \
               | grep -oE '"[a-z]+"' | tr -d '"' | sort -u)"
if [ -z "$subcommands" ]; then
  echo "check_docs: found no htctl subcommands in tools/htctl.cpp" \
       "(extraction pattern broken?)" >&2
  fail=1
fi
for cmd in $subcommands; do
  if ! grep -qE "htctl $cmd" <<<"$doc_corpus"; then
    echo "check_docs: htctl subcommand '$cmd' is not documented (no" \
         "'htctl $cmd' in README.md, DESIGN.md, or docs/)" >&2
    fail=1
  fi
done

# --- 3. relative markdown links -----------------------------------------
# Matches ](target) where target is not an absolute URL or an in-page
# anchor; strips any #fragment before checking existence.
all_md="$(find "$repo" -name '*.md' -not -path "$repo/build/*" -not -path '*/.*' | sort)"
for md in $all_md; do
  dir="$(dirname "$md")"
  links="$(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')" || true
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$repo/$target" ]; then
      echo "check_docs: ${md#"$repo"/} links to '$link' which does not exist" >&2
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK (env vars, htctl subcommands, markdown links)"
