// End-to-end Table II effectiveness: every corpus entry must pass the full
// pipeline (benign-clean, detect, config round trip, attack blocked online,
// benign unaffected) under every encoding strategy the paper proposes.
#include "corpus/effectiveness.hpp"

#include <gtest/gtest.h>

namespace ht::corpus {
namespace {

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class Table2Effectiveness : public ::testing::TestWithParam<VulnerableProgram> {};

TEST_P(Table2Effectiveness, FullPipelinePasses) {
  const EffectivenessResult r = evaluate_effectiveness(GetParam());
  EXPECT_TRUE(r.benign_clean) << r.name;
  EXPECT_TRUE(r.detected) << r.name;
  EXPECT_EQ(r.patch_mask & r.expected_mask, r.expected_mask) << r.name;
  EXPECT_TRUE(r.config_round_trip) << r.name;
  EXPECT_TRUE(r.attack_blocked_patched) << r.name;
  EXPECT_TRUE(r.benign_runs_patched) << r.name;
  EXPECT_TRUE(r.pass()) << r.name;
}

TEST_P(Table2Effectiveness, AttackIsRealWhenUnpatched) {
  // The defense must be shown against a live attack, not a no-op: without
  // patches the attack effect is observable (overflow lands / stale memory
  // reached / secrets leaked).
  const EffectivenessResult r = evaluate_effectiveness(GetParam());
  EXPECT_TRUE(r.attack_effect_unpatched) << r.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, Table2Effectiveness, ::testing::ValuesIn(make_table2_corpus()),
    [](const ::testing::TestParamInfo<VulnerableProgram>& info) {
      return sanitize(info.param.name);
    });

class SamateEffectiveness : public ::testing::TestWithParam<VulnerableProgram> {};

TEST_P(SamateEffectiveness, FullPipelinePasses) {
  const EffectivenessResult r = evaluate_effectiveness(GetParam());
  EXPECT_TRUE(r.pass())
      << r.name << " (" << GetParam().reference << ")"
      << " benign_clean=" << r.benign_clean << " detected=" << r.detected
      << " mask=" << int(r.patch_mask) << " blocked=" << r.attack_blocked_patched
      << " benign_patched=" << r.benign_runs_patched;
}

INSTANTIATE_TEST_SUITE_P(
    Samate, SamateEffectiveness, ::testing::ValuesIn(make_samate_suite()),
    [](const ::testing::TestParamInfo<VulnerableProgram>& info) {
      return sanitize(info.param.name + "_" + info.param.reference);
    });

TEST(Effectiveness, AllStrategiesProtectHeartbleed) {
  for (cce::Strategy strategy : cce::kAllStrategies) {
    EffectivenessOptions options;
    options.strategy = strategy;
    const EffectivenessResult r = evaluate_effectiveness(make_heartbleed(), options);
    EXPECT_TRUE(r.pass()) << cce::strategy_name(strategy);
  }
}

TEST(Effectiveness, EvaluateCorpusCoversAllEntries) {
  const auto results = evaluate_corpus(make_table2_corpus());
  ASSERT_EQ(results.size(), 7u);
  for (const auto& r : results) EXPECT_TRUE(r.pass()) << r.name;
}

}  // namespace
}  // namespace ht::corpus
