#include "corpus/vulnerable_programs.hpp"

#include <gtest/gtest.h>

#include <set>

#include "analysis/patch_generator.hpp"

namespace ht::corpus {
namespace {

TEST(Corpus, Table2HasSevenPrograms) {
  const auto corpus = make_table2_corpus();
  ASSERT_EQ(corpus.size(), 7u);
  std::set<std::string> names;
  for (const auto& v : corpus) names.insert(v.name);
  EXPECT_EQ(names.size(), 7u);
  EXPECT_TRUE(names.count("heartbleed"));
  EXPECT_TRUE(names.count("bc-1.06"));
  EXPECT_TRUE(names.count("optipng-0.6.4"));
}

TEST(Corpus, SamateHasTwentyThreeCases) {
  // "SAMATE Dataset ... contains 23 programs with heap buffer overflow,
  // uninitialized read, or use after free vulnerabilities."
  const auto suite = make_samate_suite();
  ASSERT_EQ(suite.size(), 23u);
  int overflow = 0, uaf = 0, uninit = 0;
  for (const auto& v : suite) {
    if (v.expected_mask == patch::kOverflow) ++overflow;
    if (v.expected_mask == patch::kUseAfterFree) ++uaf;
    if (v.expected_mask == patch::kUninitRead) ++uninit;
  }
  EXPECT_EQ(overflow, 9);
  EXPECT_EQ(uaf, 7);
  EXPECT_EQ(uninit, 7);
}

TEST(Corpus, AllProgramsHaveAcyclicGraphsAndTargets) {
  for (const auto& corpus : {make_table2_corpus(), make_samate_suite()}) {
    for (const auto& v : corpus) {
      EXPECT_FALSE(v.program.graph().has_cycle()) << v.name;
      EXPECT_FALSE(v.program.alloc_targets().empty()) << v.name;
    }
  }
}

TEST(Corpus, HeartbleedShapeMatchesPaper) {
  const auto v = make_heartbleed();
  EXPECT_EQ(v.expected_mask, patch::kUninitRead | patch::kOverflow);
  // 64 KB attack read out of a 34 KB buffer (§VIII-A).
  EXPECT_EQ(v.attack.params[1], 64u * 1024);
  EXPECT_EQ(v.legit_nonzero_leak, 1024u);
}

class CorpusOfflineDetection
    : public ::testing::TestWithParam<VulnerableProgram> {};

TEST_P(CorpusOfflineDetection, BenignCleanAttackDetectedWithExpectedType) {
  const VulnerableProgram& v = GetParam();
  const auto plan = cce::compute_plan(v.program.graph(), v.program.alloc_targets(),
                                      cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);

  const auto benign = analysis::analyze_attack(v.program, &encoder, v.benign);
  EXPECT_FALSE(benign.attack_detected()) << v.name;

  const auto attack = analysis::analyze_attack(v.program, &encoder, v.attack);
  ASSERT_TRUE(attack.attack_detected()) << v.name;
  std::uint8_t mask = 0;
  for (const auto& p : attack.patches) mask |= p.vuln_mask;
  EXPECT_EQ(mask & v.expected_mask, v.expected_mask) << v.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, CorpusOfflineDetection, ::testing::ValuesIn(make_table2_corpus()),
    [](const ::testing::TestParamInfo<VulnerableProgram>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

INSTANTIATE_TEST_SUITE_P(
    Samate, CorpusOfflineDetection, ::testing::ValuesIn(make_samate_suite()),
    [](const ::testing::TestParamInfo<VulnerableProgram>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ht::corpus
