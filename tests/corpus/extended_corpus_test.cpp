#include "corpus/extended_corpus.hpp"

#include <gtest/gtest.h>

#include "corpus/effectiveness.hpp"

namespace ht::corpus {
namespace {

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class ExtendedEffectiveness : public ::testing::TestWithParam<VulnerableProgram> {};

TEST_P(ExtendedEffectiveness, FullPipelinePasses) {
  const EffectivenessResult r = evaluate_effectiveness(GetParam());
  EXPECT_TRUE(r.benign_clean) << r.name;
  EXPECT_TRUE(r.detected) << r.name;
  EXPECT_EQ(r.patch_mask & r.expected_mask, r.expected_mask) << r.name;
  EXPECT_TRUE(r.attack_blocked_patched) << r.name;
  EXPECT_TRUE(r.benign_runs_patched) << r.name;
  EXPECT_TRUE(r.pass()) << r.name;
}

TEST_P(ExtendedEffectiveness, AttackIsRealWhenUnpatched) {
  const EffectivenessResult r = evaluate_effectiveness(GetParam());
  EXPECT_TRUE(r.attack_effect_unpatched) << r.name;
}

INSTANTIATE_TEST_SUITE_P(
    Extended, ExtendedEffectiveness, ::testing::ValuesIn(make_extended_corpus()),
    [](const ::testing::TestParamInfo<VulnerableProgram>& info) {
      return sanitize(info.param.name);
    });

TEST(ExtendedCorpus, DoubleTroubleYieldsTwoPatches) {
  // One attack input, two vulnerable buffers, two distinct patches (§V).
  const auto v = make_double_trouble();
  const auto plan = cce::compute_plan(v.program.graph(), v.program.alloc_targets(),
                                      cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  const auto report = analysis::analyze_attack(v.program, &encoder, v.attack);
  ASSERT_EQ(report.patches.size(), 2u);
  EXPECT_NE(report.patches[0].ccid, report.patches[1].ccid);
  std::uint8_t mask = 0;
  for (const auto& p : report.patches) mask |= p.vuln_mask;
  EXPECT_EQ(mask, patch::kUninitRead | patch::kOverflow);
}

TEST(ExtendedCorpus, ReallocConfusionPatchKeysOnReallocFn) {
  const auto v = make_realloc_confusion();
  const auto plan = cce::compute_plan(v.program.graph(), v.program.alloc_targets(),
                                      cce::Strategy::kIncremental);
  const cce::PccEncoder encoder(plan);
  const auto report = analysis::analyze_attack(v.program, &encoder, v.attack);
  ASSERT_EQ(report.patches.size(), 1u);
  EXPECT_EQ(report.patches[0].fn, progmodel::AllocFn::kRealloc);
}

TEST(ExtendedCorpus, SessionUafDefenseBeatsGrooming) {
  const auto r = evaluate_effectiveness(make_session_uaf());
  // Unpatched: the dangling vtable read hits the groomed (reused) object.
  EXPECT_GT(r.unpatched_obs.stale_hits_reused, 0u);
  // Patched: the session stays quarantined; the groom cannot take its slot.
  EXPECT_EQ(r.patched_obs.stale_hits_reused, 0u);
  EXPECT_GT(r.patched_obs.stale_hits_quarantine, 0u);
}

}  // namespace
}  // namespace ht::corpus
