#include "workload/spec_profiles.hpp"

#include <gtest/gtest.h>

#include "cce/verify.hpp"
#include "progmodel/interpreter.hpp"
#include "progmodel/null_backend.hpp"

namespace ht::workload {
namespace {

using progmodel::AllocFn;

TEST(SpecProfiles, TwelveBenchmarksInTable4Order) {
  const auto& profiles = spec_profiles();
  ASSERT_EQ(profiles.size(), 12u);
  EXPECT_EQ(profiles.front().name, "400.perlbench");
  EXPECT_EQ(profiles.back().name, "483.xalancbmk");
}

TEST(SpecProfiles, PaperCountsMatchTable4) {
  // Spot-check the Table IV reference numbers.
  EXPECT_EQ(spec_profile("400.perlbench").paper_malloc, 346405116u);
  EXPECT_EQ(spec_profile("400.perlbench").paper_realloc, 11736402u);
  EXPECT_EQ(spec_profile("401.bzip2").paper_malloc, 174u);
  EXPECT_EQ(spec_profile("429.mcf").paper_calloc, 3u);
  EXPECT_EQ(spec_profile("462.libquantum").paper_malloc, 1u);
  EXPECT_EQ(spec_profile("464.h264ref").paper_calloc, 170518u);
  EXPECT_EQ(spec_profile("483.xalancbmk").paper_malloc, 135155553u);
}

TEST(SpecProfiles, UnknownNameThrows) {
  EXPECT_THROW((void)spec_profile("499.nonesuch"), std::out_of_range);
}

TEST(SpecProfiles, ScalingPreservesApiMixShape) {
  for (const auto& p : spec_profiles()) {
    // Zero columns stay zero; nonzero columns stay nonzero.
    EXPECT_EQ(p.paper_malloc == 0, p.mallocs == 0) << p.name;
    EXPECT_EQ(p.paper_calloc == 0, p.callocs == 0) << p.name;
    EXPECT_EQ(p.paper_realloc == 0, p.reallocs == 0) << p.name;
  }
  // Relative ordering of allocation intensity is preserved: perlbench is
  // the most allocation-intensive benchmark in both columns.
  const auto& perl = spec_profile("400.perlbench");
  for (const auto& p : spec_profiles()) {
    EXPECT_LE(p.mallocs, perl.mallocs);
  }
}

class SpecProgramCheck : public ::testing::TestWithParam<SpecProfile> {};

TEST_P(SpecProgramCheck, ExecutesExactAllocationCounts) {
  const SpecProfile& profile = GetParam();
  const progmodel::Program program = make_spec_program(profile);
  progmodel::NullBackend backend;
  progmodel::Interpreter interp(program, nullptr, backend);
  const auto result = interp.run(progmodel::Input{});
  ASSERT_TRUE(result.completed) << profile.name;
  EXPECT_TRUE(result.violations.empty()) << profile.name;
  // calloc and realloc counts are exact; realloc loops add one backing
  // malloc per realloc site, so the malloc count may exceed the target by
  // at most the (small) number of sites.
  EXPECT_EQ(result.alloc_counts[static_cast<int>(AllocFn::kCalloc)],
            profile.callocs)
      << profile.name;
  EXPECT_EQ(result.alloc_counts[static_cast<int>(AllocFn::kRealloc)],
            profile.reallocs)
      << profile.name;
  const std::uint64_t mallocs =
      result.alloc_counts[static_cast<int>(AllocFn::kMalloc)];
  EXPECT_GE(mallocs, profile.mallocs) << profile.name;
  EXPECT_LE(mallocs, profile.mallocs + 64) << profile.name;
}

TEST_P(SpecProgramCheck, InstrumentationShrinksMonotonically) {
  const progmodel::Program program = make_spec_program(GetParam());
  const auto& targets = program.alloc_targets();
  std::size_t prev = SIZE_MAX;
  for (cce::Strategy strategy : cce::kAllStrategies) {
    const auto plan = cce::compute_plan(program.graph(), targets, strategy);
    EXPECT_LE(plan.instrumented_count(), prev) << cce::strategy_name(strategy);
    prev = plan.instrumented_count();
  }
}

TEST_P(SpecProgramCheck, PlansAreSoundOnWorkloadGraphs) {
  const progmodel::Program program = make_spec_program(GetParam());
  for (cce::Strategy strategy :
       {cce::Strategy::kTcs, cce::Strategy::kSlim, cce::Strategy::kIncremental}) {
    const auto plan =
        cce::compute_plan(program.graph(), program.alloc_targets(), strategy);
    const auto report = cce::verify_plan_distinguishability(
        program.graph(), program.entry(), program.alloc_targets(), plan);
    EXPECT_TRUE(report.sound())
        << GetParam().name << " " << cce::strategy_name(strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SpecProgramCheck, ::testing::ValuesIn(spec_profiles()),
    [](const ::testing::TestParamInfo<SpecProfile>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(SpecPrograms, ColdRegionGivesTcsItsGains) {
  // bzip2's graph is dominated by functions that never allocate; TCS must
  // prune almost everything (paper Table III: 8.8% -> 0.12%).
  const auto program = make_spec_program(spec_profile("401.bzip2"));
  const auto fcs =
      cce::compute_plan(program.graph(), program.alloc_targets(), cce::Strategy::kFcs);
  const auto tcs =
      cce::compute_plan(program.graph(), program.alloc_targets(), cce::Strategy::kTcs);
  EXPECT_LT(static_cast<double>(tcs.instrumented_count()),
            0.10 * static_cast<double>(fcs.instrumented_count()));
}

TEST(SpecPrograms, ChainsGiveSlimItsGains) {
  // astar: TCS ~= FCS but Slim prunes the long non-branching chains
  // (paper Table III: 7.0 -> 7.0 -> 0.2).
  const auto program = make_spec_program(spec_profile("473.astar"));
  const auto fcs =
      cce::compute_plan(program.graph(), program.alloc_targets(), cce::Strategy::kFcs);
  const auto tcs =
      cce::compute_plan(program.graph(), program.alloc_targets(), cce::Strategy::kTcs);
  const auto slim =
      cce::compute_plan(program.graph(), program.alloc_targets(), cce::Strategy::kSlim);
  EXPECT_GT(static_cast<double>(tcs.instrumented_count()),
            0.8 * static_cast<double>(fcs.instrumented_count()));
  EXPECT_LT(static_cast<double>(slim.instrumented_count()),
            0.3 * static_cast<double>(tcs.instrumented_count()));
}

TEST(SpecPrograms, FalseBranchingGivesIncrementalItsGains) {
  // hmmer routes work through dispatchers over distinct allocation APIs;
  // Incremental prunes them while Slim cannot (paper: 2.4 -> 1.2).
  const auto program = make_spec_program(spec_profile("456.hmmer"));
  const auto slim =
      cce::compute_plan(program.graph(), program.alloc_targets(), cce::Strategy::kSlim);
  const auto inc = cce::compute_plan(program.graph(), program.alloc_targets(),
                                     cce::Strategy::kIncremental);
  EXPECT_LT(inc.instrumented_count(), slim.instrumented_count());
}

}  // namespace
}  // namespace ht::workload
