#include "workload/service_workload.hpp"

#include <gtest/gtest.h>

namespace ht::workload {
namespace {

TEST(ServiceWorkload, NativeNginxLikeRuns) {
  ServiceConfig config;
  config.kind = ServiceKind::kNginxLike;
  config.requests = 2000;
  config.concurrency = 4;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.requests, 2000u);
  EXPECT_GT(result.requests_per_second, 0.0);
}

TEST(ServiceWorkload, GuardedNginxLikeRuns) {
  const patch::PatchTable empty({});
  ServiceConfig config;
  config.kind = ServiceKind::kNginxLike;
  config.requests = 2000;
  config.concurrency = 4;
  config.use_heaptherapy = true;
  config.patches = &empty;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.requests, 2000u);
  EXPECT_GT(result.requests_per_second, 0.0);
}

TEST(ServiceWorkload, MysqlLikeRunsBothModes) {
  for (bool guarded : {false, true}) {
    const patch::PatchTable empty({});
    ServiceConfig config;
    config.kind = ServiceKind::kMysqlLike;
    config.requests = 1000;
    config.concurrency = 2;
    config.use_heaptherapy = guarded;
    config.patches = guarded ? &empty : nullptr;
    const ServiceResult result = run_service(config);
    EXPECT_EQ(result.requests, 1000u);
    EXPECT_GT(result.requests_per_second, 0.0);
  }
}

TEST(ServiceWorkload, ChecksumDeterministicPerSeedAndMode) {
  ServiceConfig config;
  config.kind = ServiceKind::kNginxLike;
  config.requests = 500;
  config.concurrency = 2;
  config.seed = 99;
  const ServiceResult a = run_service(config);
  const ServiceResult b = run_service(config);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.requests, b.requests);
}

TEST(ServiceWorkload, ConcurrencySweepRequestsSplitEvenly) {
  for (std::uint32_t threads : {1u, 2u, 8u}) {
    ServiceConfig config;
    config.requests = 800;
    config.concurrency = threads;
    const ServiceResult result = run_service(config);
    EXPECT_EQ(result.requests, 800u / threads * threads);
  }
}

TEST(ServiceWorkload, SharedAllocatorModesRun) {
  // One shared allocator across all workers — the LD_PRELOAD deployment
  // shape — in both lock disciplines.
  const patch::PatchTable empty({}, /*freeze=*/true);
  for (AllocatorMode mode :
       {AllocatorMode::kSharedLocked, AllocatorMode::kSharedSharded}) {
    ServiceConfig config;
    config.kind = ServiceKind::kNginxLike;
    config.requests = 2000;
    config.concurrency = 4;
    config.mode = mode;
    config.patches = &empty;
    const ServiceResult result = run_service(config);
    EXPECT_EQ(result.requests, 2000u);
    EXPECT_GT(result.requests_per_second, 0.0);
    // Every request makes 3 allocations; all were intercepted and all freed.
    EXPECT_EQ(result.allocator_stats.interceptions, 3u * 2000u);
    EXPECT_EQ(result.allocator_stats.interceptions,
              result.allocator_stats.plain_frees +
                  result.allocator_stats.quarantined_frees);
  }
}

TEST(ServiceWorkload, ChecksumAgreesAcrossAllocatorModes) {
  // The request streams are seed-deterministic and the checksum depends
  // only on buffer contents the handlers themselves write, so every
  // allocator mode must produce the identical checksum.
  const patch::PatchTable empty({}, /*freeze=*/true);
  ServiceConfig base;
  base.kind = ServiceKind::kMysqlLike;
  base.requests = 600;
  base.concurrency = 2;
  base.seed = 7;

  ServiceConfig native = base;
  const std::uint64_t reference = run_service(native).checksum;
  for (AllocatorMode mode :
       {AllocatorMode::kPerThread, AllocatorMode::kSharedLocked,
        AllocatorMode::kSharedSharded}) {
    ServiceConfig config = base;
    config.mode = mode;
    config.patches = &empty;
    EXPECT_EQ(run_service(config).checksum, reference)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(ServiceWorkload, ShardedModeHonorsShardCountAndPatches) {
  std::vector<patch::Patch> patches{
      {progmodel::AllocFn::kMalloc, 0x1102, patch::kUseAfterFree}};
  const patch::PatchTable table(patches, /*freeze=*/true);
  ServiceConfig config;
  config.kind = ServiceKind::kNginxLike;
  config.requests = 1000;
  config.concurrency = 4;
  config.mode = AllocatorMode::kSharedSharded;
  config.shards = 4;
  config.patches = &table;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.requests, 1000u);
  // The body buffer (one per request) is UAF-patched: its frees quarantine.
  EXPECT_EQ(result.allocator_stats.quarantined_frees, 1000u);
  EXPECT_EQ(result.allocator_stats.enhanced, 1000u);
}

TEST(ServiceWorkload, PerThreadModeReportsMergedStats) {
  const patch::PatchTable empty({}, /*freeze=*/true);
  ServiceConfig config;
  config.kind = ServiceKind::kNginxLike;
  config.requests = 1000;
  config.concurrency = 4;
  config.mode = AllocatorMode::kPerThread;
  config.patches = &empty;
  const ServiceResult result = run_service(config);
  // Stats from the 4 per-thread allocators merge into one report.
  EXPECT_EQ(result.allocator_stats.interceptions, 3u * 1000u);
  EXPECT_EQ(result.allocator_stats.plain_frees, 3u * 1000u);
}

TEST(ServiceWorkload, PatchedServiceStillServes) {
  // A patch on the nginx body buffer context must not break service.
  std::vector<patch::Patch> patches{
      {progmodel::AllocFn::kMalloc, 0x1102, patch::kAllVulnBits}};
  const patch::PatchTable table(patches, /*freeze=*/true);
  ServiceConfig config;
  config.requests = 1000;
  config.concurrency = 2;
  config.use_heaptherapy = true;
  config.patches = &table;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.requests, 1000u);
}

}  // namespace
}  // namespace ht::workload
