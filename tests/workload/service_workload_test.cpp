#include "workload/service_workload.hpp"

#include <gtest/gtest.h>

namespace ht::workload {
namespace {

TEST(ServiceWorkload, NativeNginxLikeRuns) {
  ServiceConfig config;
  config.kind = ServiceKind::kNginxLike;
  config.requests = 2000;
  config.concurrency = 4;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.requests, 2000u);
  EXPECT_GT(result.requests_per_second, 0.0);
}

TEST(ServiceWorkload, GuardedNginxLikeRuns) {
  const patch::PatchTable empty({});
  ServiceConfig config;
  config.kind = ServiceKind::kNginxLike;
  config.requests = 2000;
  config.concurrency = 4;
  config.use_heaptherapy = true;
  config.patches = &empty;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.requests, 2000u);
  EXPECT_GT(result.requests_per_second, 0.0);
}

TEST(ServiceWorkload, MysqlLikeRunsBothModes) {
  for (bool guarded : {false, true}) {
    const patch::PatchTable empty({});
    ServiceConfig config;
    config.kind = ServiceKind::kMysqlLike;
    config.requests = 1000;
    config.concurrency = 2;
    config.use_heaptherapy = guarded;
    config.patches = guarded ? &empty : nullptr;
    const ServiceResult result = run_service(config);
    EXPECT_EQ(result.requests, 1000u);
    EXPECT_GT(result.requests_per_second, 0.0);
  }
}

TEST(ServiceWorkload, ChecksumDeterministicPerSeedAndMode) {
  ServiceConfig config;
  config.kind = ServiceKind::kNginxLike;
  config.requests = 500;
  config.concurrency = 2;
  config.seed = 99;
  const ServiceResult a = run_service(config);
  const ServiceResult b = run_service(config);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.requests, b.requests);
}

TEST(ServiceWorkload, ConcurrencySweepRequestsSplitEvenly) {
  for (std::uint32_t threads : {1u, 2u, 8u}) {
    ServiceConfig config;
    config.requests = 800;
    config.concurrency = threads;
    const ServiceResult result = run_service(config);
    EXPECT_EQ(result.requests, 800u / threads * threads);
  }
}

TEST(ServiceWorkload, PatchedServiceStillServes) {
  // A patch on the nginx body buffer context must not break service.
  std::vector<patch::Patch> patches{
      {progmodel::AllocFn::kMalloc, 0x1102, patch::kAllVulnBits}};
  const patch::PatchTable table(patches, /*freeze=*/true);
  ServiceConfig config;
  config.requests = 1000;
  config.concurrency = 2;
  config.use_heaptherapy = true;
  config.patches = &table;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.requests, 1000u);
}

}  // namespace
}  // namespace ht::workload
