#include "workload/alloc_trace.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ht::workload {
namespace {

SpecProfile small_profile() {
  SpecProfile p;
  p.name = "test.small";
  p.mallocs = 500;
  p.callocs = 100;
  p.reallocs = 50;
  p.avg_alloc_size = 64;
  p.live_set = 16;
  p.work_per_op = 2;
  return p;
}

TEST(AllocTrace, OpCountsMatchProfile) {
  const Trace trace = make_trace(small_profile());
  std::uint64_t mallocs = 0, callocs = 0, reallocs = 0, frees = 0;
  for (const TraceOp& op : trace.ops) {
    switch (op.kind) {
      case TraceOp::Kind::kMalloc: ++mallocs; break;
      case TraceOp::Kind::kCalloc: ++callocs; break;
      case TraceOp::Kind::kRealloc: ++reallocs; break;
      case TraceOp::Kind::kFree: ++frees; break;
    }
  }
  EXPECT_EQ(mallocs, 500u);
  EXPECT_EQ(callocs, 100u);
  EXPECT_EQ(reallocs, 50u);
  EXPECT_EQ(frees, mallocs + callocs);  // every allocation eventually freed
}

TEST(AllocTrace, DeterministicPerSeed) {
  const Trace a = make_trace(small_profile(), 42);
  const Trace b = make_trace(small_profile(), 42);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].slot, b.ops[i].slot);
    EXPECT_EQ(a.ops[i].ccid, b.ops[i].ccid);
  }
  const Trace c = make_trace(small_profile(), 43);
  EXPECT_NE(c.ops.size() == a.ops.size() &&
                std::equal(a.ops.begin(), a.ops.end(), c.ops.begin(),
                           [](const TraceOp& x, const TraceOp& y) {
                             return x.kind == y.kind && x.slot == y.slot &&
                                    x.ccid == y.ccid;
                           }),
            true);
}

TEST(AllocTrace, LiveSetBoundHonored) {
  const SpecProfile p = small_profile();
  const Trace trace = make_trace(p);
  std::set<std::uint32_t> live;
  for (const TraceOp& op : trace.ops) {
    if (op.kind == TraceOp::Kind::kFree) {
      live.erase(op.slot);
    } else if (op.kind != TraceOp::Kind::kRealloc) {
      EXPECT_TRUE(live.insert(op.slot).second) << "slot reused while live";
    }
    EXPECT_LE(live.size(), p.live_set);
  }
  EXPECT_TRUE(live.empty());  // fully drained at the end
}

TEST(AllocTrace, ReallocsTargetLiveSlots) {
  const Trace trace = make_trace(small_profile());
  std::set<std::uint32_t> live;
  for (const TraceOp& op : trace.ops) {
    switch (op.kind) {
      case TraceOp::Kind::kMalloc:
      case TraceOp::Kind::kCalloc:
        live.insert(op.slot);
        break;
      case TraceOp::Kind::kRealloc:
        // Either a live slot or a fresh one (realloc(NULL) path).
        live.insert(op.slot);
        break;
      case TraceOp::Kind::kFree:
        EXPECT_TRUE(live.count(op.slot)) << "free of dead slot";
        live.erase(op.slot);
        break;
    }
  }
}

TEST(AllocTrace, MedianFrequencyCcidsComeFromTheTrace) {
  const Trace trace = make_trace(small_profile());
  ASSERT_FALSE(trace.ccids_by_frequency.empty());
  for (std::size_t count : {1u, 5u}) {
    const auto picked = median_frequency_ccids(trace, count);
    EXPECT_EQ(picked.size(), std::min(count, trace.ccids_by_frequency.size()));
    for (std::uint64_t ccid : picked) {
      EXPECT_NE(std::find(trace.ccids_by_frequency.begin(),
                          trace.ccids_by_frequency.end(), ccid),
                trace.ccids_by_frequency.end());
    }
  }
}

TEST(AllocTrace, NativeRunCompletes) {
  const Trace trace = make_trace(small_profile());
  const TraceRunResult result = run_trace(trace, TraceMode::kNative);
  EXPECT_EQ(result.allocs, 650u);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(AllocTrace, GuardedRunMatchesNativeAllocCount) {
  const Trace trace = make_trace(small_profile());
  runtime::GuardedAllocator allocator;
  const TraceRunResult result =
      run_trace(trace, TraceMode::kGuarded, &allocator);
  EXPECT_EQ(result.allocs, 650u);
  EXPECT_EQ(allocator.stats().interceptions, 650u);
}

TEST(AllocTrace, GuardedRunWithPatchesEnhancesMatchingCcids) {
  const Trace trace = make_trace(small_profile());
  const auto vulnerable = median_frequency_ccids(trace, 1);
  ASSERT_EQ(vulnerable.size(), 1u);
  // Patch the median CCID for overflow on all three APIs (the trace mixes
  // malloc/calloc/realloc per site).
  std::vector<patch::Patch> patches;
  for (auto fn : {progmodel::AllocFn::kMalloc, progmodel::AllocFn::kCalloc,
                  progmodel::AllocFn::kRealloc}) {
    patches.push_back(patch::Patch{fn, vulnerable[0], patch::kOverflow});
  }
  const patch::PatchTable table(patches, /*freeze=*/true);
  runtime::GuardedAllocator allocator(&table);
  const TraceRunResult result =
      run_trace(trace, TraceMode::kGuarded, &allocator);
  EXPECT_EQ(result.allocs, 650u);
  EXPECT_GT(allocator.stats().enhanced, 0u);
  EXPECT_GT(allocator.stats().guard_pages, 0u);
}

TEST(AllocTrace, ForwardOnlyModeRuns) {
  const Trace trace = make_trace(small_profile());
  runtime::GuardedAllocatorConfig config;
  config.forward_only = true;
  runtime::GuardedAllocator allocator(nullptr, config);
  const TraceRunResult result =
      run_trace(trace, TraceMode::kGuarded, &allocator);
  EXPECT_EQ(result.allocs, 650u);
}

TEST(AllocTrace, ChecksumIdenticalAcrossModes) {
  // The compute kernel is mode-independent: same trace, same checksum.
  const Trace trace = make_trace(small_profile());
  const auto native = run_trace(trace, TraceMode::kNative);
  runtime::GuardedAllocator allocator;
  const auto guarded = run_trace(trace, TraceMode::kGuarded, &allocator);
  EXPECT_EQ(native.checksum, guarded.checksum);
}

TEST(AllocTrace, SpecProfileTracesAreSane) {
  for (const SpecProfile& p : spec_profiles()) {
    if (p.total_allocs() > 50000) continue;  // keep the test fast
    const Trace trace = make_trace(p);
    std::uint64_t allocs = 0;
    for (const TraceOp& op : trace.ops) {
      allocs += op.kind != TraceOp::Kind::kFree;
    }
    EXPECT_EQ(allocs, p.total_allocs()) << p.name;
  }
}

}  // namespace
}  // namespace ht::workload
