// Differential soundness fuzz: the load-bearing guarantee of the static
// analyzer is that PROVEN-SAFE is never claimed for a context the
// interpreter can make trap (a wrong hint would elide a patch lookup the
// runtime needed). We generate memory-clean random programs, inject one
// bug class into the serialized .htp text, re-parse, and compare the
// static verdicts against the ground truth from the dynamic pipeline
// (analysis::analyze_attack, which executes the program on the shadow
// heap and emits the {FUN, CCID, mask} patches).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "analysis/patch_generator.hpp"
#include "analysis/static_analyzer.hpp"
#include "progmodel/program_io.hpp"
#include "progmodel/random_program.hpp"
#include "support/rng.hpp"

namespace {

using namespace ht;

constexpr std::uint64_t kSeeds = 500;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string indent_of(const std::string& line) {
  return line.substr(0, line.find_first_not_of(' '));
}

/// Extracts the "sN" token from a line like "  free(s3)" or "  s3 = ...".
std::string slot_token(const std::string& line, std::size_t from) {
  const std::size_t s = line.find('s', from);
  std::size_t end = s + 1;
  while (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  return line.substr(s, end - s);
}

enum class Mutation { kOverflowWrite, kReadAfterFree, kUninitSyscallRead };

/// Applies `wanted` to the text (picking the `pick`-th eligible site); falls
/// back to the other mutations when no site matches. Returns empty when the
/// program offers no mutation site at all (never happens with leaves that
/// allocate, but kept total).
std::string mutate(const std::string& text, Mutation wanted, std::uint64_t pick) {
  std::vector<std::string> lines = split_lines(text);
  const auto sites = [&](const char* needle) {
    std::vector<std::size_t> found;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].find(needle) != std::string::npos) found.push_back(i);
    }
    return found;
  };
  for (int attempt = 0; attempt < 3; ++attempt) {
    const Mutation m = static_cast<Mutation>(
        (static_cast<int>(wanted) + attempt) % 3);
    switch (m) {
      case Mutation::kOverflowWrite: {
        const auto ws = sites("write(s");
        if (ws.empty()) continue;
        // Blow up the length argument: no random buffer exceeds
        // max_alloc_size, so a 1 MB write always overflows.
        std::string& line = lines[ws[pick % ws.size()]];
        const std::size_t comma = line.rfind(',');
        const std::size_t close = line.rfind(')');
        if (comma == std::string::npos || close == std::string::npos) continue;
        line = line.substr(0, comma) + ", 1048576)";
        return join_lines(lines);
      }
      case Mutation::kReadAfterFree: {
        const auto fs = sites("free(s");
        if (fs.empty()) continue;
        const std::size_t i = fs[pick % fs.size()];
        const std::string slot = slot_token(lines[i], lines[i].find('('));
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     indent_of(lines[i]) + "read(" + slot + ", 0, 8, branch)");
        return join_lines(lines);
      }
      case Mutation::kUninitSyscallRead: {
        const auto ms = sites("= malloc(");
        if (ms.empty()) continue;
        const std::size_t i = ms[pick % ms.size()];
        const std::string slot = slot_token(lines[i], 0);
        // Checked read straight after malloc, before the leaf's init write.
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     indent_of(lines[i]) + "read(" + slot + ", 0, 8, syscall)");
        return join_lines(lines);
      }
    }
  }
  return {};
}

TEST(StaticSoundnessFuzzTest, NeverProvenSafeWhereInterpreterTraps) {
  progmodel::RandomProgramParams params;
  params.layers = 3;
  params.functions_per_layer = 2;
  params.calls_per_function = 2;
  params.allocs_per_leaf = 2;
  params.loop_count = 2;

  std::uint64_t dynamic_violations = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed * 0x2545f4914f6cdd1dULL + 1);
    const progmodel::Program clean = progmodel::make_random_program(rng, params);
    const std::string mutated_text =
        mutate(progmodel::serialize_program(clean),
               static_cast<Mutation>(seed % 3), seed / 3);
    ASSERT_FALSE(mutated_text.empty()) << "seed " << seed;
    auto parsed = progmodel::parse_program(mutated_text);
    ASSERT_TRUE(parsed.program.has_value())
        << "seed " << seed << ": " << parsed.error;
    const progmodel::Program& program = *parsed.program;

    const auto plan = cce::compute_plan(
        program.graph(), program.alloc_targets(), cce::Strategy::kIncremental);
    const cce::PccEncoder encoder(plan);

    // Ground truth: execute the program, collect {FUN, CCID, mask} patches.
    const auto dynamic = analysis::analyze_attack(program, &encoder, {});
    // Static verdicts over the same encoder.
    const auto result = analysis::analyze_program(program, &encoder, {});

    dynamic_violations += dynamic.patches.size();
    for (const auto& patch : dynamic.patches) {
      bool context_seen = false;
      for (const auto& c : result.contexts) {
        if (c.fn != patch.fn || c.ccid != patch.ccid) continue;
        context_seen = true;
        // The hard soundness direction: a dynamically-trapping context must
        // never be proven safe.
        EXPECT_FALSE(c.proven_safe)
            << "seed " << seed << ": context {"
            << progmodel::alloc_fn_name(patch.fn) << ", " << std::hex
            << patch.ccid << "} trapped dynamically (mask 0x"
            << unsigned(patch.vuln_mask) << ") yet was proven safe";
        // And the static mask must cover every dynamically-observed bit.
        EXPECT_EQ(c.finding_mask & patch.vuln_mask, patch.vuln_mask)
            << "seed " << seed << ": static mask 0x" << std::hex
            << unsigned(c.finding_mask) << " misses dynamic bits 0x"
            << unsigned(patch.vuln_mask);
      }
      EXPECT_TRUE(context_seen)
          << "seed " << seed << ": dynamic context {"
          << progmodel::alloc_fn_name(patch.fn) << ", " << std::hex
          << patch.ccid << "} never visited statically";
    }
  }
  // The mutations must actually bite: a fuzz run where the interpreter
  // never trapped would make the test vacuous.
  EXPECT_GT(dynamic_violations, kSeeds / 2);
}

}  // namespace
