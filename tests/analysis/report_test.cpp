#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include "corpus/vulnerable_programs.hpp"
#include "progmodel/builder.hpp"

namespace ht::analysis {
namespace {

TEST(Report, HeartbleedReportNamesContextAndTypes) {
  const auto v = corpus::make_heartbleed();
  const auto plan = cce::compute_plan(v.program.graph(), v.program.alloc_targets(),
                                      cce::Strategy::kIncremental);
  const cce::PccEncoder encoder(plan);
  const auto report = analyze_attack(v.program, &encoder, v.attack);
  const std::string text = render_report(v.program, encoder, v.attack, report);

  EXPECT_NE(text.find("OVERFLOW"), std::string::npos);
  EXPECT_NE(text.find("UNINIT"), std::string::npos);
  // The decoded allocation chain of the response buffer.
  EXPECT_NE(text.find("main -> tls_server_loop -> tls1_process_heartbeat -> malloc"),
            std::string::npos);
  EXPECT_NE(text.find("patches (1)"), std::string::npos);
}

TEST(Report, PatchesRenderInFunCcidOrderByteStable) {
  // The report must not depend on detection order: feed it patches in
  // deliberately shuffled order and expect {FUN, CCID}-sorted output.
  const auto v = corpus::make_heartbleed();
  const auto plan = cce::compute_plan(v.program.graph(), v.program.alloc_targets(),
                                      cce::Strategy::kIncremental);
  const cce::PccEncoder encoder(plan);
  auto report = analyze_attack(v.program, &encoder, v.attack);
  report.patches.push_back({progmodel::AllocFn::kMalloc, 0x2, patch::kOverflow});
  report.patches.push_back({progmodel::AllocFn::kMalloc, 0x1, patch::kOverflow});
  const std::string text = render_report(v.program, encoder, v.attack, report);

  std::swap(report.patches[0], report.patches[report.patches.size() - 1]);
  const std::string reordered = render_report(v.program, encoder, v.attack, report);
  EXPECT_EQ(text, reordered);
  EXPECT_LT(text.find("CCID=0x0000000000000001"),
            text.find("CCID=0x0000000000000002"));
}

TEST(Report, CleanRunReportsNoPatches) {
  const auto v = corpus::make_bc();
  const auto plan = cce::compute_plan(v.program.graph(), v.program.alloc_targets(),
                                      cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  const auto report = analyze_attack(v.program, &encoder, v.benign);
  const std::string text = render_report(v.program, encoder, v.benign, report);
  EXPECT_NE(text.find("patches (0)"), std::string::npos);
  EXPECT_NE(text.find("0 warning(s)"), std::string::npos);
}

TEST(Report, LeakSectionListsUnfreedBuffers) {
  using progmodel::AllocFn;
  using progmodel::Value;
  progmodel::ProgramBuilder b;
  const auto main_fn = b.function("main");
  b.alloc(main_fn, AllocFn::kMalloc, Value(512), 0);  // never freed
  b.alloc(main_fn, AllocFn::kCalloc, Value(64), 1);   // never freed
  const auto program = b.build();
  const auto plan = cce::compute_plan(program.graph(), program.alloc_targets(),
                                      cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  const auto report = analyze_attack(program, &encoder, progmodel::Input{});
  const std::string text = render_report(program, encoder, progmodel::Input{}, report);
  EXPECT_NE(text.find("leak summary: 2 buffer(s), 576 byte(s)"), std::string::npos);
  EXPECT_NE(text.find("512 bytes from malloc"), std::string::npos);
}

TEST(Report, SectionsToggle) {
  const auto v = corpus::make_bc();
  const auto plan = cce::compute_plan(v.program.graph(), v.program.alloc_targets(),
                                      cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  const auto report = analyze_attack(v.program, &encoder, v.attack);
  ReportOptions options;
  options.include_violations = false;
  options.include_leaks = false;
  const std::string text =
      render_report(v.program, encoder, v.attack, report, options);
  EXPECT_EQ(text.find("warnings:"), std::string::npos);
  EXPECT_EQ(text.find("leak summary"), std::string::npos);
  EXPECT_NE(text.find("patches (1)"), std::string::npos);
}

}  // namespace
}  // namespace ht::analysis
