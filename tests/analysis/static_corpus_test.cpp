// Static-analysis parity with the dynamic corpus: htlint must flag every
// vulnerable program (Table II twins, the extended scenarios, and the full
// SAMATE-like suite) with a finding mask that is a superset of the
// corpus-recorded expected mask — without executing a single input — and
// must stay silent (all contexts PROVEN-SAFE) on the memory-clean random
// program corpus.
#include <gtest/gtest.h>

#include "analysis/static_analyzer.hpp"
#include "corpus/extended_corpus.hpp"
#include "corpus/vulnerable_programs.hpp"
#include "progmodel/random_program.hpp"
#include "support/rng.hpp"

namespace {

using namespace ht;

analysis::StaticAnalysisResult analyze_full_space(
    const progmodel::Program& program) {
  const auto plan = cce::compute_plan(program.graph(), program.alloc_targets(),
                                      cce::Strategy::kIncremental);
  const cce::PccEncoder encoder(plan);
  // Empty space = every input parameter spans [0, 2^64-1]: the analysis
  // must witness the attack without ever being shown it.
  return analysis::analyze_program(program, &encoder, {});
}

std::uint8_t total_mask(const analysis::StaticAnalysisResult& result) {
  std::uint8_t mask = 0;
  for (const auto& f : result.findings) {
    mask |= analysis::finding_vuln_bit(f.kind);
  }
  return mask;
}

void expect_mask_superset(const corpus::VulnerableProgram& vp) {
  const auto result = analyze_full_space(vp.program);
  const std::uint8_t found = total_mask(result);
  EXPECT_EQ(found & vp.expected_mask, vp.expected_mask)
      << vp.name << " (" << vp.reference << "): expected mask 0x" << std::hex
      << unsigned(vp.expected_mask) << ", static analysis found 0x"
      << unsigned(found);
  EXPECT_FALSE(result.findings.empty()) << vp.name;
}

TEST(StaticCorpusTest, FlagsEveryTable2Twin) {
  for (const auto& vp : corpus::make_table2_corpus()) {
    expect_mask_superset(vp);
  }
}

TEST(StaticCorpusTest, FlagsEveryExtendedScenario) {
  for (const auto& vp : corpus::make_extended_corpus()) {
    expect_mask_superset(vp);
  }
}

TEST(StaticCorpusTest, FlagsEverySamateCase) {
  const auto suite = corpus::make_samate_suite();
  ASSERT_EQ(suite.size(), 23u);
  for (const auto& vp : suite) {
    expect_mask_superset(vp);
  }
}

TEST(StaticCorpusTest, BenignRandomProgramsAreProvenSafe) {
  // Random programs are memory-clean by construction: any finding here is
  // a false positive, and every context must earn PROVEN-SAFE (the elision
  // hint set depends on it).
  progmodel::RandomProgramParams params;
  params.layers = 3;
  params.functions_per_layer = 3;
  params.allocs_per_leaf = 2;
  params.loop_count = 3;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    support::Rng rng(seed * 0x9e3779b97f4a7c15ULL);
    const progmodel::Program program =
        progmodel::make_random_program(rng, params);
    const auto result = analyze_full_space(program);
    EXPECT_TRUE(result.findings.empty())
        << "seed " << seed << ": "
        << analysis::render_static_report(program, result, nullptr);
    EXPECT_FALSE(result.truncated) << "seed " << seed;
    EXPECT_FALSE(result.contexts.empty()) << "seed " << seed;
    for (const auto& c : result.contexts) {
      EXPECT_TRUE(c.proven_safe) << "seed " << seed;
    }
  }
}

}  // namespace
