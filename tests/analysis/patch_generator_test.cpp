#include "analysis/patch_generator.hpp"

#include <gtest/gtest.h>

#include "progmodel/builder.hpp"

namespace ht::analysis {
namespace {

using progmodel::AccessKind;
using progmodel::AllocFn;
using progmodel::Input;
using progmodel::Program;
using progmodel::ProgramBuilder;
using progmodel::ReadUse;
using progmodel::Value;

/// A program with a classic overflow: buffer of fixed size 64, write length
/// controlled by input[0]. Benign input: 64. Attack input: > 64.
Program overflow_program() {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto handler = b.function("handler");
  b.call(main_fn, handler);
  b.alloc(handler, AllocFn::kMalloc, Value(64), 0);
  b.write(handler, 0, Value(0), Value::input(0));
  b.free(handler, 0);
  return b.build();
}

/// Use-after-free: input[0] != 0 triggers the dangling write.
Program uaf_program() {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  b.alloc(main_fn, AllocFn::kMalloc, Value(128), 0);
  b.write(main_fn, 0, Value(0), Value(128));
  b.free(main_fn, 0);
  // The dangling write of input[0] bytes (0 = no write = benign).
  b.begin_loop(main_fn, Value::input(0));
  b.write(main_fn, 0, Value(0), Value(8));
  b.end_loop(main_fn);
  return b.build();
}

/// Uninitialized read: buffer initialized for input[0] bytes, then
/// input[1] bytes are sent out (syscall use).
Program uninit_program() {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  b.alloc(main_fn, AllocFn::kMalloc, Value(256), 0);
  b.write(main_fn, 0, Value(0), Value::input(0));
  b.read(main_fn, 0, Value(0), Value::input(1), ReadUse::kSyscall);
  b.free(main_fn, 0);
  return b.build();
}

cce::PccEncoder make_encoder(const Program& p, cce::Strategy strategy) {
  return cce::PccEncoder(cce::compute_plan(p.graph(), p.alloc_targets(), strategy));
}

TEST(PatchGenerator, BenignInputProducesNoPatch) {
  const Program p = overflow_program();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  const AnalysisReport report = analyze_attack(p, &encoder, Input{{64}});
  EXPECT_FALSE(report.attack_detected());
  EXPECT_TRUE(report.run.clean());
}

TEST(PatchGenerator, OverflowAttackYieldsOverflowPatch) {
  const Program p = overflow_program();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  const AnalysisReport report = analyze_attack(p, &encoder, Input{{80}});
  ASSERT_TRUE(report.attack_detected());
  ASSERT_EQ(report.patches.size(), 1u);
  EXPECT_EQ(report.patches[0].fn, AllocFn::kMalloc);
  EXPECT_EQ(report.patches[0].vuln_mask, patch::kOverflow);
  EXPECT_NE(report.patches[0].ccid, 0u);
}

TEST(PatchGenerator, PatchCcidMatchesAllocationContext) {
  // The CCID in the patch must equal the CCID the online phase will compute
  // for the same allocation site — the whole premise of the system.
  const Program p = overflow_program();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  const AnalysisReport report = analyze_attack(p, &encoder, Input{{80}});
  ASSERT_EQ(report.patches.size(), 1u);

  // Reconstruct the allocation context by hand: main->handler->malloc.
  const auto to_handler = p.graph().outgoing(p.entry())[0];
  const auto handler = p.graph().site(to_handler).callee;
  cce::CallSiteId to_malloc = cce::kInvalidCallSite;
  for (auto s : p.graph().outgoing(handler)) {
    if (p.graph().site(s).callee == p.alloc_fn_node(AllocFn::kMalloc)) to_malloc = s;
  }
  EXPECT_EQ(report.patches[0].ccid, encoder.encode({to_handler, to_malloc}));
}

TEST(PatchGenerator, UafAttackYieldsUafPatch) {
  const Program p = uaf_program();
  const auto encoder = make_encoder(p, cce::Strategy::kSlim);
  EXPECT_FALSE(analyze_attack(p, &encoder, Input{{0}}).attack_detected());
  const AnalysisReport report = analyze_attack(p, &encoder, Input{{1}});
  ASSERT_EQ(report.patches.size(), 1u);
  EXPECT_EQ(report.patches[0].vuln_mask, patch::kUseAfterFree);
}

TEST(PatchGenerator, UninitReadAttackYieldsUninitPatch) {
  const Program p = uninit_program();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  // Benign: sends only what it initialized.
  EXPECT_FALSE(analyze_attack(p, &encoder, Input{{100, 100}}).attack_detected());
  // Attack: sends 200 bytes of a 100-byte-initialized buffer.
  const AnalysisReport report = analyze_attack(p, &encoder, Input{{100, 200}});
  ASSERT_EQ(report.patches.size(), 1u);
  EXPECT_EQ(report.patches[0].vuln_mask, patch::kUninitRead);
}

TEST(PatchGenerator, MixedAttackMergesMaskHeartbleedShape) {
  // 34KB buffer, attacker reads 64KB: uninit read *and* overread on the
  // same buffer -> one patch with both bits (§VIII-A Heartbleed).
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  b.alloc(main_fn, AllocFn::kMalloc, Value(34 * 1024), 0);
  b.write(main_fn, 0, Value(0), Value::input(0));      // attacker-visible prefix
  b.read(main_fn, 0, Value(0), Value::input(1), ReadUse::kSyscall);
  const Program p = b.build();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  const AnalysisReport report =
      analyze_attack(p, &encoder, Input{{1024, 64 * 1024}});
  ASSERT_EQ(report.patches.size(), 1u);
  EXPECT_EQ(report.patches[0].vuln_mask, patch::kUninitRead | patch::kOverflow);
}

TEST(PatchGenerator, ExecutionResumesToFindMultipleVulnerableBuffers) {
  // Two independent vulnerable buffers exploited by one input -> two patches.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto f1 = b.function("path_one");
  const auto f2 = b.function("path_two");
  b.call(main_fn, f1);
  b.call(main_fn, f2);
  b.alloc(f1, AllocFn::kMalloc, Value(32), 0);
  b.write(f1, 0, Value(0), Value::input(0));
  b.alloc(f2, AllocFn::kCalloc, Value(32), 1);
  b.write(f2, 1, Value(0), Value::input(0));
  const Program p = b.build();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  const AnalysisReport report = analyze_attack(p, &encoder, Input{{40}});
  ASSERT_EQ(report.patches.size(), 2u);
  EXPECT_NE(report.patches[0].ccid, report.patches[1].ccid);
  EXPECT_EQ(report.patches[0].fn, AllocFn::kMalloc);
  EXPECT_EQ(report.patches[1].fn, AllocFn::kCalloc);
}

TEST(PatchGenerator, RepeatedViolationsDedupeToOnePatch) {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  b.alloc(main_fn, AllocFn::kMalloc, Value(16), 0);
  b.begin_loop(main_fn, Value(10));
  b.write(main_fn, 0, Value(0), Value::input(0));  // overflows 10 times
  b.end_loop(main_fn);
  const Program p = b.build();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  const AnalysisReport report = analyze_attack(p, &encoder, Input{{24}});
  EXPECT_EQ(report.run.violations.size(), 10u);
  EXPECT_EQ(report.patches.size(), 1u);
}

TEST(PatchGenerator, WildAccessesAreUnattributed) {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  b.write(main_fn, 0, Value(0), Value(4));  // slot 0 holds address 0... wild
  b.alloc(main_fn, AllocFn::kMalloc, Value(8), 0);
  const Program p = b.build();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  const AnalysisReport report = analyze_attack(p, &encoder, Input{});
  EXPECT_FALSE(report.attack_detected());
  EXPECT_EQ(report.unattributed, 1u);
}

TEST(PatchGenerator, PartitionedReplayFindsSamePatches) {
  const Program p = uaf_program();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  const AnalysisReport whole = analyze_attack(p, &encoder, Input{{1}});
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const AnalysisReport part =
        analyze_attack_partitioned(p, &encoder, Input{{1}}, n);
    ASSERT_EQ(part.patches.size(), whole.patches.size()) << n << " subspaces";
    EXPECT_EQ(part.patches[0].ccid, whole.patches[0].ccid);
    EXPECT_EQ(part.patches[0].vuln_mask, whole.patches[0].vuln_mask);
  }
}

TEST(PatchGenerator, PartitionedReplayZeroSubspacesClampedToOne) {
  const Program p = overflow_program();
  const auto encoder = make_encoder(p, cce::Strategy::kTcs);
  const AnalysisReport report =
      analyze_attack_partitioned(p, &encoder, Input{{80}}, 0);
  EXPECT_TRUE(report.attack_detected());
}

TEST(PatchGenerator, VulnBitMapping) {
  EXPECT_EQ(vuln_bit_for(AccessKind::kOverflow), patch::kOverflow);
  EXPECT_EQ(vuln_bit_for(AccessKind::kUseAfterFree), patch::kUseAfterFree);
  EXPECT_EQ(vuln_bit_for(AccessKind::kUninitRead), patch::kUninitRead);
  EXPECT_EQ(vuln_bit_for(AccessKind::kOk), 0u);
  EXPECT_EQ(vuln_bit_for(AccessKind::kWild), 0u);
  EXPECT_EQ(vuln_bit_for(AccessKind::kBlockedByGuard), 0u);
}

TEST(PatchGenerator, EncoderStrategiesProduceConsistentDetection) {
  // The detected vulnerability must be found under every strategy; CCIDs
  // differ across strategies, but the patch count and type must not.
  const Program p = overflow_program();
  for (cce::Strategy strategy :
       {cce::Strategy::kFcs, cce::Strategy::kTcs, cce::Strategy::kSlim,
        cce::Strategy::kIncremental}) {
    const auto encoder = make_encoder(p, strategy);
    const AnalysisReport report = analyze_attack(p, &encoder, Input{{80}});
    ASSERT_EQ(report.patches.size(), 1u) << cce::strategy_name(strategy);
    EXPECT_EQ(report.patches[0].vuln_mask, patch::kOverflow);
  }
}

}  // namespace
}  // namespace ht::analysis

namespace ht::analysis {
namespace {

TEST(PatchGeneratorSet, MergesAcrossMultipleAttackInputs) {
  // Heartbleed-style: several collected attack inputs; below-34K inputs are
  // pure uninit reads, above-34K inputs add the overread — the merged
  // patch carries both bits on the one vulnerable context.
  using progmodel::AllocFn;
  using progmodel::Input;
  using progmodel::ReadUse;
  using progmodel::Value;
  progmodel::ProgramBuilder b;
  const auto main_fn = b.function("main");
  b.alloc(main_fn, AllocFn::kMalloc, Value(34 * 1024), 0);
  b.write(main_fn, 0, Value(0), Value::input(0));
  b.read(main_fn, 0, Value(0), Value::input(1), ReadUse::kSyscall);
  const auto program = b.build();
  const auto plan = cce::compute_plan(program.graph(), program.alloc_targets(),
                                      cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);

  const std::vector<Input> collected{
      Input{{1024, 20 * 1024}},  // uninit only
      Input{{1024, 64 * 1024}},  // uninit + overread
      Input{{1024, 1024}},       // benign (contributes nothing)
  };
  const AnalysisReport merged =
      analyze_attack_set(program, &encoder, collected);
  ASSERT_EQ(merged.patches.size(), 1u);
  EXPECT_EQ(merged.patches[0].vuln_mask, patch::kUninitRead | patch::kOverflow);
}

TEST(PatchGeneratorSet, EmptyInputSetYieldsNothing) {
  const auto v = [] {
    progmodel::ProgramBuilder b;
    b.function("main");
    return b.build();
  }();
  const AnalysisReport merged = analyze_attack_set(v, nullptr, {});
  EXPECT_FALSE(merged.attack_detected());
}

TEST(PatchGeneratorSet, DistinctContextsAccumulate) {
  // Two attack inputs exploiting different buffers -> two patches.
  using progmodel::AllocFn;
  using progmodel::Input;
  using progmodel::Value;
  progmodel::ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto f1 = b.function("one");
  const auto f2 = b.function("two");
  b.call(main_fn, f1);
  b.call(main_fn, f2);
  b.alloc(f1, AllocFn::kMalloc, Value(32), 0);
  b.write(f1, 0, Value(0), Value::input(0));
  b.alloc(f2, AllocFn::kMalloc, Value(32), 1);
  b.write(f2, 1, Value(0), Value::input(1));
  const auto program = b.build();
  const auto plan = cce::compute_plan(program.graph(), program.alloc_targets(),
                                      cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  const AnalysisReport merged = analyze_attack_set(
      program, &encoder, {Input{{64, 32}}, Input{{32, 64}}});
  EXPECT_EQ(merged.patches.size(), 2u);
}

}  // namespace
}  // namespace ht::analysis
