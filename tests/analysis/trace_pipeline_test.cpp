// Offline-pipeline tracing: analyze_attack / input_search with a Tracer
// attached must produce the span tree (analyze_attack → replay →
// interpreter.run, shadow_checks, patch_generation) with nonzero shadow-op
// counters, and the Chrome trace-event export must round-trip through the
// repo's own parser — the ISSUE-3 acceptance shape, unit-level.
#include <gtest/gtest.h>

#include <string>

#include "analysis/input_search.hpp"
#include "analysis/patch_generator.hpp"
#include "progmodel/builder.hpp"
#include "support/trace.hpp"

namespace ht::analysis {
namespace {

using progmodel::AllocFn;
using progmodel::Input;
using progmodel::Program;
using progmodel::ProgramBuilder;
using progmodel::Value;
using support::TraceCounter;
using support::Tracer;
using support::TraceSpan;

Program overflow_program() {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto handler = b.function("handler");
  b.call(main_fn, handler);
  b.alloc(handler, AllocFn::kMalloc, Value(64), 0);
  b.write(handler, 0, Value(0), Value::input(0));
  b.free(handler, 0);
  return b.build();
}

cce::PccEncoder make_encoder(const Program& p) {
  return cce::PccEncoder(
      cce::compute_plan(p.graph(), p.alloc_targets(), cce::Strategy::kTcs));
}

const TraceSpan* find_span(const Tracer& tracer, std::string_view name) {
  for (const TraceSpan& s : tracer.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::uint64_t counter_value(const TraceSpan& span, std::string_view name) {
  for (const TraceCounter& c : span.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST(TracePipeline, AnalyzeAttackRecordsPhaseSpans) {
  const Program p = overflow_program();
  const auto encoder = make_encoder(p);
  Tracer tracer;
  AnalysisConfig config;
  config.tracer = &tracer;
  const AnalysisReport report = analyze_attack(p, &encoder, Input{{80}}, config);
  ASSERT_TRUE(report.attack_detected());

  const TraceSpan* analyze = find_span(tracer, "analyze_attack");
  const TraceSpan* replay = find_span(tracer, "replay");
  const TraceSpan* interp = find_span(tracer, "interpreter.run");
  const TraceSpan* shadow = find_span(tracer, "shadow_checks");
  const TraceSpan* patches = find_span(tracer, "patch_generation");
  ASSERT_NE(analyze, nullptr);
  ASSERT_NE(replay, nullptr);
  ASSERT_NE(interp, nullptr);
  ASSERT_NE(shadow, nullptr);
  ASSERT_NE(patches, nullptr);

  // Hierarchy: replay/shadow_checks/patch_generation under analyze_attack,
  // interpreter.run under replay.
  EXPECT_EQ(analyze->parent, support::kNoSpanParent);
  EXPECT_EQ(replay->parent, analyze->id);
  EXPECT_EQ(interp->parent, replay->id);
  EXPECT_EQ(shadow->parent, analyze->id);
  EXPECT_EQ(patches->parent, analyze->id);

  // Replay volumes.
  EXPECT_GT(counter_value(*replay, "steps"), 0u);
  EXPECT_GT(counter_value(*replay, "allocs"), 0u);
  EXPECT_EQ(counter_value(*replay, "violations"), 1u);
  EXPECT_GT(counter_value(*interp, "encoding_ops"), 0u);

  // Shadow-op counters must be nonzero: the overflow write scanned red
  // zones and the allocation materialized shadow pages.
  EXPECT_GT(counter_value(*shadow, "redzone_checks"), 0u);
  EXPECT_GT(counter_value(*shadow, "redzone_check_bytes"), 0u);
  EXPECT_GT(counter_value(*shadow, "shadow_set_ops"), 0u);
  EXPECT_GT(counter_value(*shadow, "shadow_pages"), 0u);

  // Patch generation accounted for the generated patch.
  EXPECT_EQ(counter_value(*patches, "patches"), 1u);
}

TEST(TracePipeline, NullTracerLeavesPipelineUntraced) {
  const Program p = overflow_program();
  const auto encoder = make_encoder(p);
  AnalysisConfig config;  // tracer == nullptr
  const AnalysisReport report = analyze_attack(p, &encoder, Input{{80}}, config);
  EXPECT_TRUE(report.attack_detected());  // behavior identical, no spans
}

TEST(TracePipeline, TracedAndUntracedAnalysesAgree) {
  const Program p = overflow_program();
  const auto encoder = make_encoder(p);
  Tracer tracer;
  AnalysisConfig traced;
  traced.tracer = &tracer;
  const AnalysisReport a = analyze_attack(p, &encoder, Input{{80}}, traced);
  const AnalysisReport b = analyze_attack(p, &encoder, Input{{80}});
  ASSERT_EQ(a.patches.size(), b.patches.size());
  EXPECT_EQ(a.patches[0].ccid, b.patches[0].ccid);
  EXPECT_EQ(a.patches[0].vuln_mask, b.patches[0].vuln_mask);
  EXPECT_EQ(a.run.steps, b.run.steps);
}

TEST(TracePipeline, InputSearchSpanCountsPhases) {
  const Program p = overflow_program();
  const auto encoder = make_encoder(p);
  Tracer tracer;
  InputSearchOptions options;
  options.analysis.tracer = &tracer;
  const InputSearchResult result = search_attack_input(
      p, &encoder, {ParamRange{0, 128}}, options);
  ASSERT_TRUE(result.found());

  const TraceSpan* search = find_span(tracer, "input_search");
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->parent, support::kNoSpanParent);
  EXPECT_EQ(counter_value(*search, "runs"), result.runs);
  EXPECT_EQ(counter_value(*search, "found"), 1u);
  EXPECT_GT(counter_value(*search, "boundary_runs"), 0u);

  // Every replay nests under the search span.
  const TraceSpan* analyze = find_span(tracer, "analyze_attack");
  ASSERT_NE(analyze, nullptr);
  EXPECT_EQ(analyze->parent, search->id);
}

TEST(TracePipeline, ChromeExportRoundTripsWithCounters) {
  const Program p = overflow_program();
  const auto encoder = make_encoder(p);
  Tracer tracer;
  AnalysisConfig config;
  config.tracer = &tracer;
  (void)analyze_attack(p, &encoder, Input{{80}}, config);

  const std::string json = support::trace_chrome_json(tracer);
  support::TraceParseResult parsed = support::parse_chrome_trace(json);
  ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty() ? "" : parsed.errors[0]);
  ASSERT_EQ(parsed.spans.size(), tracer.spans().size());
  bool saw_shadow_counters = false;
  for (const TraceSpan& s : parsed.spans) {
    if (s.name == "shadow_checks") {
      saw_shadow_counters = counter_value(s, "redzone_checks") > 0;
    }
  }
  EXPECT_TRUE(saw_shadow_counters);

  const std::string tree = support::trace_tree(parsed.spans);
  EXPECT_NE(tree.find("analyze_attack"), std::string::npos);
  EXPECT_NE(tree.find("shadow_checks"), std::string::npos);
  EXPECT_NE(tree.find("redzone_checks="), std::string::npos);
}

}  // namespace
}  // namespace ht::analysis
