// Unit tests for the static analyzer (analysis/static_analyzer.hpp): one
// small .htp program per semantic rule, plus report determinism and the
// baseline JSON reader's error taxonomy.
#include "analysis/static_analyzer.hpp"

#include <gtest/gtest.h>

#include "progmodel/program_io.hpp"

namespace {

using namespace ht;
using analysis::FindingKind;
using analysis::StaticAnalysisOptions;
using analysis::StaticAnalysisResult;

progmodel::Program parse(const std::string& text) {
  auto parsed = progmodel::parse_program("program v1\nentry main\n" + text);
  EXPECT_TRUE(parsed.program.has_value()) << parsed.error;
  return std::move(*parsed.program);
}

StaticAnalysisResult analyze(const std::string& text,
                             std::vector<analysis::ParamBounds> space = {},
                             StaticAnalysisOptions extra = {}) {
  const progmodel::Program program = parse(text);
  const auto plan = cce::compute_plan(program.graph(), program.alloc_targets(),
                                      cce::Strategy::kIncremental);
  const cce::PccEncoder encoder(plan);
  extra.space = std::move(space);
  return analysis::analyze_program(program, &encoder, extra);
}

std::vector<FindingKind> kinds_of(const StaticAnalysisResult& r) {
  std::vector<FindingKind> out;
  for (const auto& f : r.findings) out.push_back(f.kind);
  return out;
}

bool has_kind(const StaticAnalysisResult& r, FindingKind kind) {
  for (const auto& f : r.findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

TEST(StaticAnalyzerTest, CleanProgramIsProvenSafe) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(64)\n"
      "  write(s0, 0, 64)\n"
      "  read(s0, 0, 32, branch)\n"
      "  free(s0)\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.contexts.size(), 1u);
  EXPECT_TRUE(r.contexts[0].proven_safe);
  EXPECT_FALSE(r.truncated);
}

TEST(StaticAnalyzerTest, LiteralOverflowIsMust) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, 32)\n"
      "  free(s0)\n"
      "}\n");
  ASSERT_TRUE(has_kind(r, FindingKind::kMustOverflow));
  EXPECT_EQ(r.contexts.size(), 1u);
  EXPECT_EQ(r.contexts[0].finding_mask, patch::kOverflow);
  EXPECT_FALSE(r.contexts[0].proven_safe);
}

TEST(StaticAnalyzerTest, InputDrivenOverflowIsMay) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, $0)\n"
      "  free(s0)\n"
      "}\n",
      {{0, 64}});
  EXPECT_TRUE(has_kind(r, FindingKind::kMayOverflow));
  EXPECT_FALSE(has_kind(r, FindingKind::kMustOverflow));
}

TEST(StaticAnalyzerTest, BoundedInputSpaceProvesSafe) {
  // Same program, but the analysis space caps $0 at the buffer size.
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, $0)\n"
      "  read(s0, 0, 0, branch)\n"
      "  free(s0)\n"
      "}\n",
      {{0, 16}});
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.contexts.size(), 1u);
  EXPECT_TRUE(r.contexts[0].proven_safe);
}

TEST(StaticAnalyzerTest, UseAfterFree) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, 16)\n"
      "  free(s0)\n"
      "  read(s0, 0, 8, branch)\n"
      "}\n");
  EXPECT_TRUE(has_kind(r, FindingKind::kUseAfterFree));
  EXPECT_EQ(r.finding_mask(progmodel::AllocFn::kMalloc, r.contexts[0].ccid) &
                patch::kUseAfterFree,
            patch::kUseAfterFree);
}

TEST(StaticAnalyzerTest, DoubleFree) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  free(s0)\n"
      "  free(s0)\n"
      "}\n");
  EXPECT_TRUE(has_kind(r, FindingKind::kDoubleFree));
}

TEST(StaticAnalyzerTest, UninitCheckedRead) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  read(s0, 0, 8, syscall)\n"
      "  free(s0)\n"
      "}\n");
  EXPECT_TRUE(has_kind(r, FindingKind::kUninitRead));
}

TEST(StaticAnalyzerTest, DataUseNeverWarnsUninit) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  read(s0, 0, 8, data)\n"
      "  free(s0)\n"
      "}\n");
  EXPECT_FALSE(has_kind(r, FindingKind::kUninitRead));
}

TEST(StaticAnalyzerTest, CallocIsFullyInitialized) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = calloc(16)\n"
      "  read(s0, 0, 16, syscall)\n"
      "  free(s0)\n"
      "}\n");
  EXPECT_FALSE(has_kind(r, FindingKind::kUninitRead));
  EXPECT_TRUE(r.contexts[0].proven_safe);
}

TEST(StaticAnalyzerTest, FullyInitializedOverreadIsOverflowNotUninit) {
  // The overread past the end is an OVERFLOW finding only: the in-buffer
  // bytes are all initialized, and out-of-buffer bytes are not "uninit".
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, 16)\n"
      "  read(s0, 0, 32, syscall)\n"
      "  free(s0)\n"
      "}\n");
  EXPECT_TRUE(has_kind(r, FindingKind::kMustOverflow));
  EXPECT_FALSE(has_kind(r, FindingKind::kUninitRead));
}

TEST(StaticAnalyzerTest, ReallocCarriesInitPrefix) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, 16)\n"
      "  s0 = realloc(s0, 64)\n"
      "  read(s0, 0, 64, syscall)\n"
      "  free(s0)\n"
      "}\n");
  // The grown tail was never initialized: UNINIT, attributed to the
  // realloc context (not the original malloc).
  ASSERT_TRUE(has_kind(r, FindingKind::kUninitRead));
  for (const auto& f : r.findings) {
    if (f.kind == FindingKind::kUninitRead) {
      EXPECT_EQ(f.fn, progmodel::AllocFn::kRealloc);
    }
  }
  // Reading only the carried prefix is fine.
  const auto ok = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, 16)\n"
      "  s0 = realloc(s0, 64)\n"
      "  read(s0, 0, 16, syscall)\n"
      "  free(s0)\n"
      "}\n");
  EXPECT_FALSE(has_kind(ok, FindingKind::kUninitRead));
}

TEST(StaticAnalyzerTest, ReallocOfFreedBufferIsUaf) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  free(s0)\n"
      "  s0 = realloc(s0, 64)\n"
      "  free(s0)\n"
      "}\n");
  EXPECT_TRUE(has_kind(r, FindingKind::kUseAfterFree));
}

TEST(StaticAnalyzerTest, CopyPoisonAttributesToOrigin) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(32)\n"
      "  s1 = malloc(32)\n"
      "  copy(s0+0 -> s1+0, 16)\n"
      "  read(s1, 0, 16, syscall)\n"
      "  free(s0)\n"
      "  free(s1)\n"
      "}\n");
  // The checked read is of s1's buffer, but the uninitialized bytes
  // originated in s0's allocation: the finding must attribute there.
  ASSERT_TRUE(has_kind(r, FindingKind::kUninitRead));
  ASSERT_EQ(r.contexts.size(), 2u);
  std::size_t uninit_contexts = 0;
  for (const auto& c : r.contexts) {
    if ((c.finding_mask & patch::kUninitRead) != 0) ++uninit_contexts;
  }
  EXPECT_EQ(uninit_contexts, 1u);
}

TEST(StaticAnalyzerTest, LoopedCleanBodyStaysClean) {
  const auto r = analyze(
      "fn main {\n"
      "  loop 5 {\n"
      "    s0 = malloc(32)\n"
      "    write(s0, 0, 32)\n"
      "    read(s0, 0, 16, branch)\n"
      "    free(s0)\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty()) << analysis::finding_kind_name(
      r.findings.empty() ? FindingKind::kMayOverflow : r.findings[0].kind);
  EXPECT_FALSE(r.truncated);
  for (const auto& c : r.contexts) EXPECT_TRUE(c.proven_safe);
}

TEST(StaticAnalyzerTest, MaybeZeroLoopDoesNotDoubleFree) {
  // Count in [0, 1]: the body may run zero times or once — never twice, so
  // the in-loop free must not report DOUBLE-FREE against itself.
  const auto r = analyze(
      "fn main {\n"
      "  loop $0 {\n"
      "    s0 = malloc(32)\n"
      "    write(s0, 0, 32)\n"
      "    free(s0)\n"
      "  }\n"
      "}\n",
      {{0, 1}});
  EXPECT_FALSE(has_kind(r, FindingKind::kDoubleFree));
}

TEST(StaticAnalyzerTest, UseAfterLoopFreeIsUaf) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(32)\n"
      "  write(s0, 0, 32)\n"
      "  free(s0)\n"
      "  loop $0 {\n"
      "    read(s0, 0, 8, branch)\n"
      "  }\n"
      "}\n",
      {{0, 4}});
  EXPECT_TRUE(has_kind(r, FindingKind::kUseAfterFree));
}

TEST(StaticAnalyzerTest, MustDemotesToMayInsideMayLoop) {
  // The overflowing write sits in a loop that may run zero times: the
  // access is not guaranteed to execute, so MUST demotes to MAY.
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  loop $0 {\n"
      "    write(s0, 0, 32)\n"
      "  }\n"
      "  free(s0)\n"
      "}\n",
      {{0, 1}});
  EXPECT_TRUE(has_kind(r, FindingKind::kMayOverflow));
  EXPECT_FALSE(has_kind(r, FindingKind::kMustOverflow));
}

TEST(StaticAnalyzerTest, ContextSensitivityDistinguishesCallChains) {
  // Two call chains into the same allocating helper: only one chain writes
  // out of bounds... the program model keys every access to the buffer the
  // slot points at, so the distinguishing factor is the per-chain CCID.
  const auto r = analyze(
      "fn main {\n"
      "  call safe_path\n"
      "  call unsafe_path\n"
      "}\n"
      "fn safe_path {\n"
      "  s0 = malloc(64)\n"
      "  write(s0, 0, 64)\n"
      "  free(s0)\n"
      "}\n"
      "fn unsafe_path {\n"
      "  s1 = malloc(16)\n"
      "  write(s1, 0, 64)\n"
      "  free(s1)\n"
      "}\n");
  ASSERT_EQ(r.contexts.size(), 2u);
  std::size_t safe = 0, flagged = 0;
  for (const auto& c : r.contexts) {
    if (c.proven_safe) ++safe;
    if (c.finding_mask != 0) ++flagged;
  }
  EXPECT_EQ(safe, 1u);
  EXPECT_EQ(flagged, 1u);
}

TEST(StaticAnalyzerTest, RecursionTruncatesAndWithdrawsSafety) {
  auto parsed = progmodel::parse_program(
      "program v1\nentry main\n"
      "fn main {\n"
      "  call main\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, 16)\n"
      "  free(s0)\n"
      "}\n");
  ASSERT_TRUE(parsed.program.has_value()) << parsed.error;
  // Null encoder: all contexts report CCID 0 (the interpreter's fallback).
  const auto r = analysis::analyze_program(*parsed.program, nullptr, {});
  EXPECT_TRUE(r.truncated);
  for (const auto& c : r.contexts) EXPECT_FALSE(c.proven_safe);
}

TEST(StaticAnalyzerTest, StepBudgetTruncates) {
  StaticAnalysisOptions options;
  options.max_steps = 2;
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(64)\n"
      "  write(s0, 0, 64)\n"
      "  read(s0, 0, 32, branch)\n"
      "  free(s0)\n"
      "}\n",
      {}, options);
  EXPECT_TRUE(r.truncated);
  for (const auto& c : r.contexts) EXPECT_FALSE(c.proven_safe);
}

TEST(StaticAnalyzerTest, FindingsSortedByFnCcidKind) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  read(s0, 0, 8, syscall)\n"
      "  write(s0, 0, 32)\n"
      "  free(s0)\n"
      "  free(s0)\n"
      "}\n");
  ASSERT_GE(r.findings.size(), 2u);
  for (std::size_t i = 1; i < r.findings.size(); ++i) {
    const auto& a = r.findings[i - 1];
    const auto& b = r.findings[i];
    EXPECT_LE(std::tie(a.fn, a.ccid, a.kind), std::tie(b.fn, b.ccid, b.kind));
  }
  // Contexts sort by {fn, ccid}.
  for (std::size_t i = 1; i < r.contexts.size(); ++i) {
    EXPECT_LT(std::tie(r.contexts[i - 1].fn, r.contexts[i - 1].ccid),
              std::tie(r.contexts[i].fn, r.contexts[i].ccid));
  }
}

TEST(StaticAnalyzerTest, ReportsAreByteStable) {
  const std::string text =
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, $0)\n"
      "  read(s0, 0, 8, syscall)\n"
      "  free(s0)\n"
      "}\n";
  const progmodel::Program program = parse(text);
  const auto plan = cce::compute_plan(program.graph(), program.alloc_targets(),
                                      cce::Strategy::kIncremental);
  const cce::PccEncoder encoder(plan);
  const auto r1 = analysis::analyze_program(program, &encoder, {});
  const auto r2 = analysis::analyze_program(program, &encoder, {});
  EXPECT_EQ(r1.findings, r2.findings);
  EXPECT_EQ(r1.contexts, r2.contexts);
  const analysis::CcidSymbolizer symbolizer(program, encoder);
  EXPECT_EQ(analysis::render_static_report(program, r1, &symbolizer),
            analysis::render_static_report(program, r2, &symbolizer));
  EXPECT_EQ(analysis::static_report_json(program, r1, &symbolizer),
            analysis::static_report_json(program, r2, &symbolizer));
}

TEST(StaticAnalyzerTest, CandidatesCarryStaticOrigin) {
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, 32)\n"
      "  free(s0)\n"
      "}\n");
  const auto candidates = r.candidates(/*now_ns=*/12345);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].origin, patch::CandidateOrigin::kStatic);
  EXPECT_EQ(candidates[0].vuln_mask, patch::kOverflow);
  EXPECT_EQ(candidates[0].first_seen_ns, 12345u);
  EXPECT_GE(candidates[0].hits, 1u);
}

TEST(StaticAnalyzerTest, ProvenSafeHintsMatchVerdicts) {
  const auto r = analyze(
      "fn main {\n"
      "  call safe_path\n"
      "  call unsafe_path\n"
      "}\n"
      "fn safe_path {\n"
      "  s0 = malloc(64)\n"
      "  write(s0, 0, 64)\n"
      "  free(s0)\n"
      "}\n"
      "fn unsafe_path {\n"
      "  s1 = malloc(16)\n"
      "  write(s1, 0, 64)\n"
      "  free(s1)\n"
      "}\n");
  const patch::StaticHintSet hints = r.proven_safe_hints();
  EXPECT_EQ(hints.size(), 1u);
  for (const auto& c : r.contexts) {
    EXPECT_EQ(hints.contains(c.fn, c.ccid), c.proven_safe);
  }
}

TEST(BaselineParseTest, RoundTripsTheJsonReport) {
  const std::string text =
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, 32)\n"
      "  read(s0, 0, 8, syscall)\n"
      "  free(s0)\n"
      "}\n";
  const progmodel::Program program = parse(text);
  const auto plan = cce::compute_plan(program.graph(), program.alloc_targets(),
                                      cce::Strategy::kIncremental);
  const cce::PccEncoder encoder(plan);
  const auto r = analysis::analyze_program(program, &encoder, {});
  ASSERT_FALSE(r.findings.empty());
  const std::string json = analysis::static_report_json(program, r, nullptr);
  const auto baseline = analysis::parse_baseline_report(json);
  ASSERT_TRUE(baseline.ok()) << baseline.reject_reason;
  EXPECT_TRUE(baseline.notes.empty());
  ASSERT_EQ(baseline.findings.size(), r.findings.size());
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    EXPECT_EQ(baseline.findings[i].kind, r.findings[i].kind);
    EXPECT_EQ(baseline.findings[i].fn, r.findings[i].fn);
    EXPECT_EQ(baseline.findings[i].ccid, r.findings[i].ccid);
    EXPECT_EQ(baseline.findings[i].detail, r.findings[i].detail);
  }
}

TEST(BaselineParseTest, StructuralGarbageRejects) {
  EXPECT_FALSE(analysis::parse_baseline_report("not json").ok());
  EXPECT_FALSE(analysis::parse_baseline_report("{\"findings\": [{").ok());
  EXPECT_FALSE(analysis::parse_baseline_report("{\"findings\": 7}").ok());
}

TEST(BaselineParseTest, BadEntryIsNotedAndSkipped) {
  const std::string json =
      "{\"findings\": ["
      "{\"kind\": \"NOT-A-KIND\", \"fn\": \"malloc\", \"ccid\": \"0x1\","
      " \"detail\": \"d\"},"
      "{\"kind\": \"UAF\", \"fn\": \"malloc\", \"ccid\": \"0x2\","
      " \"detail\": \"ok\", \"extra\": [1, {\"nested\": true}]}"
      "]}";
  const auto baseline = analysis::parse_baseline_report(json);
  ASSERT_TRUE(baseline.ok()) << baseline.reject_reason;
  ASSERT_EQ(baseline.findings.size(), 1u);
  EXPECT_EQ(baseline.findings[0].kind, FindingKind::kUseAfterFree);
  EXPECT_EQ(baseline.findings[0].ccid, 2u);
  ASSERT_EQ(baseline.notes.size(), 1u);
  EXPECT_NE(baseline.notes[0].find("unknown kind"), std::string::npos);
}

TEST(BaselineParseTest, EmptyObjectIsOkAndEmpty) {
  const auto baseline = analysis::parse_baseline_report("{}");
  EXPECT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline.findings.empty());
}

TEST(FindingKindTest, NamesRoundTrip) {
  for (std::size_t i = 0; i < analysis::kFindingKindCount; ++i) {
    const auto kind = static_cast<FindingKind>(i);
    FindingKind back{};
    ASSERT_TRUE(
        analysis::finding_kind_from_name(analysis::finding_kind_name(kind), back));
    EXPECT_EQ(back, kind);
    EXPECT_NE(analysis::finding_vuln_bit(kind), 0);
  }
  FindingKind ignored{};
  EXPECT_FALSE(analysis::finding_kind_from_name("nope", ignored));
}

TEST(StaticAnalyzerTest, KindsOrderMatchesSeverity) {
  // Sanity anchor for the report order documented in the header.
  const auto r = analyze(
      "fn main {\n"
      "  s0 = malloc(16)\n"
      "  write(s0, 0, 32)\n"
      "  free(s0)\n"
      "}\n");
  EXPECT_EQ(kinds_of(r), std::vector<FindingKind>{FindingKind::kMustOverflow});
}

}  // namespace
