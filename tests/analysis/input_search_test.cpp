#include "analysis/input_search.hpp"

#include <gtest/gtest.h>

#include "corpus/vulnerable_programs.hpp"
#include "progmodel/builder.hpp"

namespace ht::analysis {
namespace {

using progmodel::AllocFn;
using progmodel::Program;
using progmodel::ProgramBuilder;
using progmodel::ReadUse;
using progmodel::Value;

Program overflow_program() {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  b.alloc(main_fn, AllocFn::kMalloc, Value(64), 0);
  b.write(main_fn, 0, Value(0), Value::input(0));
  b.free(main_fn, 0);
  return b.build();
}

TEST(InputSearch, FindsOverflowBoundary) {
  const Program p = overflow_program();
  const auto plan =
      cce::compute_plan(p.graph(), p.alloc_targets(), cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  const auto result =
      search_attack_input(p, &encoder, {{0, 1024}});
  ASSERT_TRUE(result.found());
  EXPECT_GT(result.attack_input->params[0], 64u);  // any overflowing length
  ASSERT_EQ(result.report.patches.size(), 1u);
  EXPECT_EQ(result.report.patches[0].vuln_mask, patch::kOverflow);
  // Boundary phase should find it quickly, well under the budget.
  EXPECT_LT(result.runs, 64u);
}

TEST(InputSearch, NoAttackInSafeRange) {
  const Program p = overflow_program();
  const auto plan =
      cce::compute_plan(p.graph(), p.alloc_targets(), cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  InputSearchOptions options;
  options.max_runs = 50;
  const auto result = search_attack_input(p, &encoder, {{0, 64}}, options);
  EXPECT_FALSE(result.found());
  EXPECT_EQ(result.runs, 50u);  // budget exhausted
}

TEST(InputSearch, FindsHeartbleedWithTwoParameters) {
  // The Heartbleed twin needs payload_len and response_len; the pairwise
  // boundary phase must discover a leaking combination.
  const auto v = corpus::make_heartbleed();
  const auto plan = cce::compute_plan(v.program.graph(), v.program.alloc_targets(),
                                      cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  const auto result = search_attack_input(
      v.program, &encoder, {{1, 64 * 1024}, {1, 64 * 1024}});
  ASSERT_TRUE(result.found());
  std::uint8_t mask = 0;
  for (const auto& p : result.report.patches) mask |= p.vuln_mask;
  EXPECT_NE(mask & patch::kUninitRead, 0);
}

TEST(InputSearch, FindsUafTrigger) {
  const auto v = corpus::make_optipng();
  const auto plan = cce::compute_plan(v.program.graph(), v.program.alloc_targets(),
                                      cce::Strategy::kIncremental);
  const cce::PccEncoder encoder(plan);
  const auto result = search_attack_input(v.program, &encoder, {{0, 4}});
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.report.patches[0].vuln_mask, patch::kUseAfterFree);
}

TEST(InputSearch, DeterministicPerSeed) {
  const Program p = overflow_program();
  const auto plan =
      cce::compute_plan(p.graph(), p.alloc_targets(), cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  InputSearchOptions options;
  options.seed = 99;
  const auto a = search_attack_input(p, &encoder, {{0, 1024}}, options);
  const auto b = search_attack_input(p, &encoder, {{0, 1024}}, options);
  ASSERT_TRUE(a.found());
  ASSERT_TRUE(b.found());
  EXPECT_EQ(a.attack_input->params, b.attack_input->params);
  EXPECT_EQ(a.runs, b.runs);
}

TEST(InputSearch, RespectsRunBudgetStrictly) {
  const Program p = overflow_program();
  const auto plan =
      cce::compute_plan(p.graph(), p.alloc_targets(), cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  InputSearchOptions options;
  options.max_runs = 3;
  const auto result = search_attack_input(p, &encoder, {{0, 60}}, options);
  EXPECT_FALSE(result.found());
  EXPECT_EQ(result.runs, 3u);
}

TEST(InputSearch, EmptySpaceRunsConstantInput) {
  // A program whose bug needs no input parameters at all.
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  b.alloc(main_fn, AllocFn::kMalloc, Value(16), 0);
  b.read(main_fn, 0, Value(0), Value(16), ReadUse::kBranch);  // uninit always
  const Program p = b.build();
  const auto plan =
      cce::compute_plan(p.graph(), p.alloc_targets(), cce::Strategy::kTcs);
  const cce::PccEncoder encoder(plan);
  const auto result = search_attack_input(p, &encoder, {});
  ASSERT_TRUE(result.found());
  EXPECT_TRUE(result.attack_input->params.empty());
}

}  // namespace
}  // namespace ht::analysis
