// Unit tests for the static analyzer's abstract domains
// (analysis/abstract_heap.hpp): interval arithmetic saturates, joins are
// conservative in the documented directions, and poison taints stay one
// hull per origin.
#include "analysis/abstract_heap.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ht;
using analysis::AbstractHeap;
using analysis::BufferFacts;
using analysis::BufferState;
using analysis::Interval;
using analysis::kIntervalMax;

TEST(IntervalTest, ExactAndTop) {
  EXPECT_EQ(Interval::exact(7), (Interval{7, 7}));
  EXPECT_TRUE(Interval::exact(7).is_exact());
  EXPECT_EQ(Interval::top(), (Interval{0, kIntervalMax}));
  EXPECT_FALSE(Interval::top().is_exact());
}

TEST(IntervalTest, JoinIsHull) {
  EXPECT_EQ((Interval{2, 5}).join(Interval{4, 9}), (Interval{2, 9}));
  EXPECT_EQ((Interval{4, 9}).join(Interval{2, 5}), (Interval{2, 9}));
  EXPECT_EQ((Interval{3, 3}).join(Interval{3, 3}), (Interval{3, 3}));
}

TEST(IntervalTest, AddSaturates) {
  EXPECT_EQ((Interval{1, 2}).add(Interval{10, 20}), (Interval{11, 22}));
  const Interval sum = Interval::top().add(Interval{1, 1});
  EXPECT_EQ(sum.lo, 1u);
  EXPECT_EQ(sum.hi, kIntervalMax);  // saturated, not wrapped
  EXPECT_EQ(analysis::sat_add(kIntervalMax, kIntervalMax), kIntervalMax);
}

TEST(IntervalTest, BoundRendering) {
  EXPECT_EQ(analysis::interval_bound_string(42), "42");
  EXPECT_EQ(analysis::interval_bound_string(kIntervalMax), "inf");
  EXPECT_EQ(analysis::interval_string(Interval{1, kIntervalMax}), "[1, inf]");
}

TEST(ResolveIntervalTest, LiteralsAreExact) {
  const Interval iv = analysis::resolve_interval(progmodel::Value(128), {});
  EXPECT_EQ(iv, Interval::exact(128));
}

TEST(ResolveIntervalTest, InputsSpanTheSpace) {
  const std::vector<analysis::ParamBounds> space = {{4, 64}};
  EXPECT_EQ(analysis::resolve_interval(progmodel::Value::input(0), space),
            (Interval{4, 64}));
  // Parameter beyond the space (and an empty space) resolves to top.
  EXPECT_EQ(analysis::resolve_interval(progmodel::Value::input(1), space),
            Interval::top());
  EXPECT_EQ(analysis::resolve_interval(progmodel::Value::input(0), {}),
            Interval::top());
}

TEST(BufferStateTest, JoinLattice) {
  using analysis::join_buffer_state;
  EXPECT_EQ(join_buffer_state(BufferState::kLive, BufferState::kLive),
            BufferState::kLive);
  // Liveness disagreement meets upward at possibly-freed.
  EXPECT_EQ(join_buffer_state(BufferState::kLive, BufferState::kFreed),
            BufferState::kPossiblyFreed);
  EXPECT_EQ(join_buffer_state(BufferState::kPossiblyFreed, BufferState::kLive),
            BufferState::kPossiblyFreed);
  // One-sided existence keeps the allocating path's facts.
  EXPECT_EQ(join_buffer_state(BufferState::kUnallocated, BufferState::kLive),
            BufferState::kLive);
  EXPECT_EQ(join_buffer_state(BufferState::kFreed, BufferState::kUnallocated),
            BufferState::kFreed);
}

TEST(BufferFactsTest, JoinTakesMinInitAndSizeHull) {
  BufferFacts a;
  a.state = BufferState::kLive;
  a.size = Interval::exact(64);
  a.must_init_end = 64;
  BufferFacts b;
  b.state = BufferState::kLive;
  b.size = Interval::exact(32);
  b.must_init_end = 8;
  const BufferFacts joined = analysis::join_buffer_facts(a, b);
  EXPECT_EQ(joined.size, (Interval{32, 64}));
  EXPECT_EQ(joined.must_init_end, 8u);  // definitely-initialized = min
}

TEST(BufferFactsTest, PoisonIsOneHullPerOrigin) {
  BufferFacts f;
  f.add_poison(3, Interval{0, 8});
  f.add_poison(3, Interval{16, 32});
  f.add_poison(1, Interval{4, 4});
  ASSERT_EQ(f.poison.size(), 2u);
  EXPECT_EQ(f.poison[0].origin, 1u);  // sorted by origin
  EXPECT_EQ(f.poison[1].origin, 3u);
  EXPECT_EQ(f.poison[1].bytes, (Interval{0, 32}));  // hull of the two ranges
}

TEST(BufferFactsTest, JoinUnionsPoison) {
  BufferFacts a;
  a.add_poison(1, Interval{0, 8});
  BufferFacts b;
  b.add_poison(1, Interval{8, 16});
  b.add_poison(2, Interval{0, 4});
  const BufferFacts joined = analysis::join_buffer_facts(a, b);
  ASSERT_EQ(joined.poison.size(), 2u);
  EXPECT_EQ(joined.poison[0].bytes, (Interval{0, 16}));
  EXPECT_EQ(joined.poison[1].origin, 2u);
}

TEST(AbstractHeapTest, SetSlotIsStrong) {
  AbstractHeap h;
  h.set_slot(0, 3);
  h.set_slot(0, 5);
  ASSERT_EQ(h.slots.size(), 1u);
  EXPECT_EQ(h.slots[0], (std::vector<std::uint32_t>{5}));
}

TEST(AbstractHeapTest, FactsMaterializeDefaults) {
  AbstractHeap h;
  EXPECT_EQ(h.facts(4).state, BufferState::kUnallocated);
  EXPECT_EQ(h.buffers.size(), 5u);
}

TEST(AbstractHeapTest, JoinUnionsSlotSetsSorted) {
  AbstractHeap a;
  a.set_slot(0, 7);
  a.facts(7).state = BufferState::kLive;
  AbstractHeap b;
  b.set_slot(0, 2);
  b.facts(2).state = BufferState::kLive;
  b.facts(7).state = BufferState::kFreed;
  const AbstractHeap joined = analysis::join_heaps(a, b);
  EXPECT_EQ(joined.slots[0], (std::vector<std::uint32_t>{2, 7}));
  // Pointwise facts join: 7 is live in a, freed in b.
  ASSERT_GE(joined.buffers.size(), 8u);
  EXPECT_EQ(joined.buffers[7].state, BufferState::kPossiblyFreed);
  // 2 exists only in b: taken verbatim.
  EXPECT_EQ(joined.buffers[2].state, BufferState::kLive);
}

TEST(AbstractHeapTest, JoinIsIdempotent) {
  AbstractHeap a;
  a.set_slot(1, 4);
  a.facts(4).state = BufferState::kLive;
  a.facts(4).size = Interval::exact(32);
  a.facts(4).must_init_end = 32;
  EXPECT_EQ(analysis::join_heaps(a, a), a);
}

}  // namespace
