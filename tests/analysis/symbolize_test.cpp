// CCID symbolization fallback paths (analysis/symbolize.hpp): unknown
// CCID, ambiguous decode, plan mismatch, missing target node, and decoder
// construction failure must all degrade to the raw id plus a warning —
// never crash, never print a silently wrong chain.
#include "analysis/symbolize.hpp"

#include <gtest/gtest.h>

#include <string>

#include "progmodel/builder.hpp"
#include "progmodel/interpreter.hpp"
#include "shadow/sim_heap.hpp"

namespace ht::analysis {
namespace {

using progmodel::AllocFn;
using progmodel::Program;
using progmodel::ProgramBuilder;
using progmodel::Value;

/// Two distinct calling contexts reach the same malloc:
/// main -> left -> handler -> malloc and main -> right -> handler -> malloc.
Program two_context_program() {
  ProgramBuilder b;
  const auto main_fn = b.function("main");
  const auto left = b.function("left");
  const auto right = b.function("right");
  const auto handler = b.function("handler");
  b.call(main_fn, left);
  b.call(main_fn, right);
  b.call(left, handler);
  b.call(right, handler);
  b.alloc(handler, AllocFn::kMalloc, Value(64), 0);
  b.free(handler, 0);
  return b.build();
}

cce::InstrumentationPlan plan_for(const Program& p) {
  return cce::compute_plan(p.graph(), p.alloc_targets(), cce::Strategy::kTcs);
}

/// Degenerate encoder whose register never changes: every calling context
/// encodes to 0, forcing a CCID collision across the two contexts.
class ConstantEncoder final : public cce::Encoder {
 public:
  explicit ConstantEncoder(cce::InstrumentationPlan plan)
      : cce::Encoder(std::move(plan)) {}
  [[nodiscard]] std::uint64_t apply(std::uint64_t v,
                                    cce::CallSiteId /*site*/) const noexcept override {
    return v;
  }
};

TEST(Symbolize, DecodesRealContextToChain) {
  const Program p = two_context_program();
  const cce::PccEncoder encoder(plan_for(p));
  const CcidSymbolizer symbolizer(p, encoder);

  // Run the program to collect the CCIDs real allocations carried; every
  // one must symbolize to a full chain under the same encoder.
  shadow::SimHeap heap;
  progmodel::Interpreter interp(p, &encoder, heap);
  const progmodel::RunResult run = interp.run(progmodel::Input{});
  ASSERT_FALSE(run.alloc_sites.empty());
  for (const auto& [site, count] : run.alloc_sites) {
    const SymbolizedCcid sym = symbolizer.symbolize(site.fn, site.ccid);
    EXPECT_EQ(sym.status, SymbolizeStatus::kDecoded) << ccid_hex(site.ccid);
    EXPECT_NE(sym.chain.find("main -> "), std::string::npos);
    EXPECT_NE(sym.chain.find("handler -> malloc"), std::string::npos);
    EXPECT_TRUE(sym.warning.empty());
    EXPECT_EQ(symbolizer.render(site.fn, site.ccid), sym.chain);
    (void)count;
  }
}

TEST(Symbolize, UnknownCcidDegradesToRawId) {
  const Program p = two_context_program();
  const cce::PccEncoder encoder(plan_for(p));
  const CcidSymbolizer symbolizer(p, encoder);

  const std::uint64_t bogus = 0xdeadbeef12345678ull;
  const SymbolizedCcid sym = symbolizer.symbolize(AllocFn::kMalloc, bogus);
  EXPECT_EQ(sym.status, SymbolizeStatus::kUnknownCcid);
  EXPECT_TRUE(sym.chain.empty());
  EXPECT_FALSE(sym.warning.empty());

  const std::string rendered = symbolizer.render(AllocFn::kMalloc, bogus);
  EXPECT_NE(rendered.find("0xdeadbeef12345678"), std::string::npos);
  EXPECT_NE(rendered.find("no calling context"), std::string::npos);
}

TEST(Symbolize, AmbiguousDecodeDegradesToRawIdWithWarning) {
  const Program p = two_context_program();
  const ConstantEncoder encoder(plan_for(p));  // both contexts encode to 0
  const CcidSymbolizer symbolizer(p, encoder);

  const SymbolizedCcid sym = symbolizer.symbolize(AllocFn::kMalloc, 0);
  EXPECT_EQ(sym.status, SymbolizeStatus::kAmbiguous);
  EXPECT_FALSE(sym.chain.empty());  // first candidate kept for report use
  EXPECT_NE(sym.warning.find("collision"), std::string::npos);

  // render() must NOT print one of the colliding chains as if it were the
  // answer — raw id + warning instead.
  const std::string rendered = symbolizer.render(AllocFn::kMalloc, 0);
  EXPECT_NE(rendered.find("0x0000000000000000"), std::string::npos);
  EXPECT_NE(rendered.find("collision"), std::string::npos);
  EXPECT_EQ(rendered.find("main ->"), std::string::npos);
}

TEST(Symbolize, PlanMismatchDegradesEveryLookup) {
  const Program p = two_context_program();
  const cce::PccEncoder encoder(plan_for(p));
  CcidSymbolizer symbolizer(p, encoder);
  symbolizer.mark_mismatch("plan fingerprint does not match call graph");
  EXPECT_TRUE(symbolizer.mismatched());

  // Even a CCID that WOULD decode must degrade: the plan is not trustable.
  for (std::uint64_t ccid : {std::uint64_t{0}, std::uint64_t{42}}) {
    const SymbolizedCcid sym = symbolizer.symbolize(AllocFn::kMalloc, ccid);
    EXPECT_EQ(sym.status, SymbolizeStatus::kPlanMismatch);
    EXPECT_NE(sym.warning.find("fingerprint"), std::string::npos);
    const std::string rendered = symbolizer.render(AllocFn::kMalloc, ccid);
    EXPECT_NE(rendered.find(ccid_hex(ccid)), std::string::npos);
    EXPECT_NE(rendered.find("mismatch"), std::string::npos);
  }
}

TEST(Symbolize, MissingTargetNodeDegrades) {
  const Program p = two_context_program();  // has malloc, no calloc
  const cce::PccEncoder encoder(plan_for(p));
  const CcidSymbolizer symbolizer(p, encoder);
  const SymbolizedCcid sym = symbolizer.symbolize(AllocFn::kCalloc, 7);
  EXPECT_EQ(sym.status, SymbolizeStatus::kNoTargetNode);
  const std::string rendered = symbolizer.render(AllocFn::kCalloc, 7);
  EXPECT_NE(rendered.find(ccid_hex(7)), std::string::npos);
}

TEST(Symbolize, DecoderConstructionFailureDegradesNotThrows) {
  const Program p = two_context_program();
  const cce::PccEncoder encoder(plan_for(p));
  // Context limit 1 < 2 contexts: TargetedDecoder construction throws
  // inside the symbolizer; lookups must degrade, not propagate.
  const CcidSymbolizer symbolizer(p, encoder, /*context_limit=*/1);
  const SymbolizedCcid sym = symbolizer.symbolize(AllocFn::kMalloc, 0);
  EXPECT_EQ(sym.status, SymbolizeStatus::kUnavailable);
  EXPECT_FALSE(sym.warning.empty());
  EXPECT_NE(symbolizer.render(AllocFn::kMalloc, 0).find("0x"), std::string::npos);
}

TEST(Symbolize, StatusNamesAreStable) {
  EXPECT_EQ(symbolize_status_name(SymbolizeStatus::kDecoded), "decoded");
  EXPECT_EQ(symbolize_status_name(SymbolizeStatus::kAmbiguous), "ambiguous");
  EXPECT_EQ(symbolize_status_name(SymbolizeStatus::kUnknownCcid), "unknown-ccid");
  EXPECT_EQ(symbolize_status_name(SymbolizeStatus::kPlanMismatch), "plan-mismatch");
}

}  // namespace
}  // namespace ht::analysis
