#include "cce/encoders.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "cce/sample_graphs.hpp"

namespace ht::cce {
namespace {

class Fig2Encoders : public ::testing::Test {
 protected:
  Fig2Graph g = make_fig2_graph();
};

TEST_F(Fig2Encoders, PccAppliesMultiplyAdd) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kFcs);
  const PccEncoder enc(plan);
  const std::uint64_t c = enc.site_constant(g.ab);
  EXPECT_EQ(enc.apply(0, g.ab), c);
  EXPECT_EQ(enc.apply(7, g.ab), 7 * 3 + c);
}

TEST_F(Fig2Encoders, PccSiteConstantsDeterministicAndDistinct) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kFcs);
  const PccEncoder a(plan), b(plan);
  std::set<std::uint64_t> constants;
  for (CallSiteId s = 0; s < g.graph.call_site_count(); ++s) {
    EXPECT_EQ(a.site_constant(s), b.site_constant(s));
    constants.insert(a.site_constant(s));
  }
  EXPECT_EQ(constants.size(), g.graph.call_site_count());
}

TEST_F(Fig2Encoders, PccEncodeFoldsOnlyInstrumentedSites) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  const PccEncoder enc(plan);
  // Context A->B->F->T2: only AB is instrumented under Incremental.
  const CallingContext ctx{g.ab, g.bf, g.ft2};
  EXPECT_EQ(enc.encode(ctx), enc.site_constant(g.ab));
}

TEST_F(Fig2Encoders, PccZeroMultiplierRejected) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kFcs);
  PccParams params;
  params.multiplier = 0;
  EXPECT_THROW(PccEncoder(plan, params), EncodingError);
}

TEST_F(Fig2Encoders, PccDistinguishesAllFig2Contexts) {
  for (Strategy strategy : kAllStrategies) {
    const auto plan = compute_plan(g.graph, g.targets(), strategy);
    const PccEncoder enc(plan);
    for (FunctionId t : g.targets()) {
      const auto contexts = enumerate_contexts(g.graph, g.a, t);
      std::unordered_set<std::uint64_t> encodings;
      for (const auto& ctx : contexts) encodings.insert(enc.encode(ctx));
      EXPECT_EQ(encodings.size(), contexts.size())
          << strategy_name(strategy) << " target " << g.graph.function_name(t);
    }
  }
}

TEST_F(Fig2Encoders, AdditiveAssignsUniqueIdsToAllContexts) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const AdditiveEncoder enc(g.graph, g.targets(), plan, g.a);
  // Fig.2 has 3 contexts to T1 and 2 to T2 from A.
  EXPECT_EQ(enc.num_contexts(), 5u);
  std::set<std::uint64_t> ids;
  for (FunctionId t : g.targets()) {
    for (const auto& ctx : enumerate_contexts(g.graph, g.a, t)) {
      const std::uint64_t v = enc.encode(ctx);
      EXPECT_LT(v, enc.num_contexts());
      ids.insert(v);
    }
  }
  EXPECT_EQ(ids.size(), 5u);  // all distinct, across both targets
}

TEST_F(Fig2Encoders, AdditiveDecodeRoundTrip) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const AdditiveEncoder enc(g.graph, g.targets(), plan, g.a);
  for (FunctionId t : g.targets()) {
    for (const auto& ctx : enumerate_contexts(g.graph, g.a, t)) {
      const auto decoded = enc.decode(enc.encode(ctx));
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, ctx);
    }
  }
}

TEST_F(Fig2Encoders, AdditiveDecodeRejectsOutOfRange) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const AdditiveEncoder enc(g.graph, g.targets(), plan, g.a);
  EXPECT_FALSE(enc.decode(enc.num_contexts()).has_value());
  EXPECT_FALSE(enc.decode(UINT64_MAX).has_value());
}

TEST_F(Fig2Encoders, SlimSitesCarryZeroIncrements) {
  // The Ball-Larus construction gives the sole reaching out-edge of a
  // non-branching node increment 0 — the structural reason Slim is lossless.
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const AdditiveEncoder enc(g.graph, g.targets(), plan, g.a);
  EXPECT_EQ(enc.increment(g.bf), 0u);   // B is non-branching
  EXPECT_EQ(enc.increment(g.et1), 0u);  // E is non-branching
}

TEST_F(Fig2Encoders, SlimEncodesIdenticallyToTcs) {
  const auto tcs = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const auto slim = compute_plan(g.graph, g.targets(), Strategy::kSlim);
  const AdditiveEncoder enc_tcs(g.graph, g.targets(), tcs, g.a);
  const AdditiveEncoder enc_slim(g.graph, g.targets(), slim, g.a);
  for (FunctionId t : g.targets()) {
    for (const auto& ctx : enumerate_contexts(g.graph, g.a, t)) {
      EXPECT_EQ(enc_tcs.encode(ctx), enc_slim.encode(ctx));
    }
  }
}

TEST_F(Fig2Encoders, AdditiveRejectsIncrementalPlan) {
  auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  EXPECT_THROW(AdditiveEncoder(g.graph, g.targets(), std::move(plan), g.a),
               EncodingError);
}

TEST_F(Fig2Encoders, AdditiveRejectsUnknownRootOrTarget) {
  auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  EXPECT_THROW(AdditiveEncoder(g.graph, g.targets(), plan, 99), EncodingError);
  EXPECT_THROW(AdditiveEncoder(g.graph, {99}, plan, g.a), EncodingError);
}

TEST(AdditiveEncoder, RejectsRecursiveReachingGraph) {
  CallGraph g;
  const FunctionId main_fn = g.add_function("main");
  const FunctionId f = g.add_function("f");
  const FunctionId t = g.add_function("malloc");
  g.add_call_site(main_fn, f);
  g.add_call_site(f, f);
  g.add_call_site(f, t);
  auto plan = compute_plan(g, {t}, Strategy::kTcs);
  EXPECT_THROW(AdditiveEncoder(g, {t}, std::move(plan), main_fn), EncodingError);
}

TEST(AdditiveEncoder, CycleOutsideReachingSubgraphIsFine) {
  // Recursion in dead code (never reaches a target) must not block encoding.
  CallGraph g;
  const FunctionId main_fn = g.add_function("main");
  const FunctionId t = g.add_function("malloc");
  const FunctionId dead = g.add_function("dead");
  g.add_call_site(main_fn, t);
  g.add_call_site(dead, dead);
  auto plan = compute_plan(g, {t}, Strategy::kTcs);
  const AdditiveEncoder enc(g, {t}, std::move(plan), main_fn);
  EXPECT_EQ(enc.num_contexts(), 1u);
}

TEST(CcidRegister, TracksContextThroughCallsAndReturns) {
  const Fig2Graph g = make_fig2_graph();
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const PccEncoder enc(plan);
  CcidRegister reg(enc);

  EXPECT_EQ(reg.value(), 0u);
  reg.on_call(g.ac);                       // enter C
  reg.on_call(g.ce);                       // enter E
  reg.on_call(g.et1);                      // enter T1
  EXPECT_EQ(reg.value(), enc.encode({g.ac, g.ce, g.et1}));
  reg.on_return();                         // back in E
  reg.on_return();                         // back in C
  EXPECT_EQ(reg.value(), enc.encode({g.ac}));
  reg.on_call(g.cf);                       // enter F
  reg.on_call(g.ft2);                      // enter T2
  EXPECT_EQ(reg.value(), enc.encode({g.ac, g.cf, g.ft2}));
  EXPECT_EQ(reg.depth(), 3u);  // C, F, T2 active below the root
}

TEST(CcidRegister, CountsOnlyInstrumentedOps) {
  const Fig2Graph g = make_fig2_graph();
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  const PccEncoder enc(plan);
  CcidRegister reg(enc);
  EXPECT_TRUE(reg.on_call(g.ab));    // instrumented under Incremental
  EXPECT_FALSE(reg.on_call(g.bf));   // not instrumented
  EXPECT_FALSE(reg.on_call(g.ft2));  // not instrumented
  EXPECT_EQ(reg.ops(), 1u);
}

TEST(CcidRegister, ReturnWithoutCallThrows) {
  const Fig2Graph g = make_fig2_graph();
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kFcs);
  const PccEncoder enc(plan);
  CcidRegister reg(enc);
  EXPECT_THROW(reg.on_return(), std::logic_error);
}

TEST(CcidRegister, ResetClearsState) {
  const Fig2Graph g = make_fig2_graph();
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kFcs);
  const PccEncoder enc(plan);
  CcidRegister reg(enc);
  reg.on_call(g.ab);
  reg.reset();
  EXPECT_EQ(reg.value(), 0u);
  EXPECT_EQ(reg.depth(), 0u);
  EXPECT_EQ(reg.ops(), 0u);
}

TEST(PccEncoder, UninstrumentedContextEncodesToZero) {
  const Fig2Graph g = make_fig2_graph();
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  const PccEncoder enc(plan);
  // D->H is never instrumented; the register stays at the entry value.
  EXPECT_EQ(enc.encode({g.dh, g.hi}), 0u);
}

}  // namespace
}  // namespace ht::cce
