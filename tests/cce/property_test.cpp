// Property-based sweeps over randomly generated layered call-graph DAGs.
//
// These check the §IV soundness lemma, plan nesting, additive encode/decode
// round-trips and PCC collision behaviour across many graph shapes, not just
// the Fig. 2 example.
#include <gtest/gtest.h>

#include <unordered_set>

#include "cce/encoders.hpp"
#include "cce/sample_graphs.hpp"
#include "cce/strategies.hpp"
#include "cce/verify.hpp"

namespace ht::cce {
namespace {

struct DagCase {
  std::uint64_t seed;
  RandomDagParams params;
};

std::vector<DagCase> make_cases() {
  std::vector<DagCase> cases;
  // Sweep shapes: shallow/bushy, deep/narrow, many targets, heavy skip edges.
  const RandomDagParams shapes[] = {
      {.layers = 4, .functions_per_layer = 4, .max_fanout = 3, .target_count = 2, .skip_layer_probability = 0.0},
      {.layers = 6, .functions_per_layer = 5, .max_fanout = 3, .target_count = 2, .skip_layer_probability = 0.2},
      {.layers = 8, .functions_per_layer = 3, .max_fanout = 2, .target_count = 3, .skip_layer_probability = 0.3},
      {.layers = 5, .functions_per_layer = 7, .max_fanout = 4, .target_count = 5, .skip_layer_probability = 0.1},
      {.layers = 3, .functions_per_layer = 8, .max_fanout = 5, .target_count = 1, .skip_layer_probability = 0.0},
  };
  std::uint64_t seed = 1000;
  for (const auto& shape : shapes) {
    for (int rep = 0; rep < 4; ++rep) {
      cases.push_back({seed++, shape});
    }
  }
  return cases;
}

class RandomDagProperty : public ::testing::TestWithParam<DagCase> {
 protected:
  void SetUp() override {
    support::Rng rng(GetParam().seed);
    dag_ = make_random_dag(rng, GetParam().params);
  }
  RandomDag dag_;
};

TEST_P(RandomDagProperty, GraphIsAcyclicAndTargetsReachable) {
  EXPECT_FALSE(dag_.graph.has_cycle());
  const Reachability r = compute_reachability(dag_.graph, dag_.targets);
  EXPECT_TRUE(r.reaches_target[dag_.root]);
}

TEST_P(RandomDagProperty, PlansAreNested) {
  const auto fcs = compute_plan(dag_.graph, dag_.targets, Strategy::kFcs);
  const auto tcs = compute_plan(dag_.graph, dag_.targets, Strategy::kTcs);
  const auto slim = compute_plan(dag_.graph, dag_.targets, Strategy::kSlim);
  const auto inc = compute_plan(dag_.graph, dag_.targets, Strategy::kIncremental);
  for (CallSiteId s = 0; s < dag_.graph.call_site_count(); ++s) {
    EXPECT_LE(tcs.instrumented[s], fcs.instrumented[s]);
    EXPECT_LE(slim.instrumented[s], tcs.instrumented[s]);
    EXPECT_LE(inc.instrumented[s], slim.instrumented[s]);
  }
}

TEST_P(RandomDagProperty, EveryStrategyIsSound) {
  for (Strategy strategy : kAllStrategies) {
    const auto plan = compute_plan(dag_.graph, dag_.targets, strategy);
    const auto report = verify_plan_distinguishability(dag_.graph, dag_.root,
                                                       dag_.targets, plan);
    EXPECT_TRUE(report.sound())
        << strategy_name(strategy) << " seed " << GetParam().seed
        << " ambiguous pairs " << report.ambiguous_pairs;
    EXPECT_GT(report.contexts, 0u);
  }
}

TEST_P(RandomDagProperty, AdditiveRoundTripAllContexts) {
  const auto plan = compute_plan(dag_.graph, dag_.targets, Strategy::kTcs);
  const AdditiveEncoder enc(dag_.graph, dag_.targets, plan, dag_.root);
  std::unordered_set<std::uint64_t> ids;
  std::size_t total = 0;
  for (FunctionId t : dag_.targets) {
    for (const auto& ctx : enumerate_contexts(dag_.graph, dag_.root, t)) {
      const std::uint64_t v = enc.encode(ctx);
      EXPECT_LT(v, enc.num_contexts());
      ids.insert(v);
      ++total;
      const auto decoded = enc.decode(v);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, ctx);
    }
  }
  EXPECT_EQ(ids.size(), total);             // globally unique
  EXPECT_EQ(enc.num_contexts(), total);     // dense numbering
}

TEST_P(RandomDagProperty, SlimEncodesIdenticallyToTcs) {
  const auto tcs = compute_plan(dag_.graph, dag_.targets, Strategy::kTcs);
  const auto slim = compute_plan(dag_.graph, dag_.targets, Strategy::kSlim);
  const AdditiveEncoder enc_tcs(dag_.graph, dag_.targets, tcs, dag_.root);
  const AdditiveEncoder enc_slim(dag_.graph, dag_.targets, slim, dag_.root);
  for (FunctionId t : dag_.targets) {
    for (const auto& ctx : enumerate_contexts(dag_.graph, dag_.root, t)) {
      EXPECT_EQ(enc_tcs.encode(ctx), enc_slim.encode(ctx));
    }
  }
}

TEST_P(RandomDagProperty, PccHasNoSameTargetCollisions) {
  // 64-bit PCC collisions on graphs of this size are astronomically
  // unlikely; any observed collision indicates an encoder bug.
  for (Strategy strategy : kAllStrategies) {
    const auto plan = compute_plan(dag_.graph, dag_.targets, strategy);
    const PccEncoder enc(plan);
    const auto report =
        analyze_collisions(dag_.graph, dag_.root, dag_.targets, enc);
    EXPECT_EQ(report.colliding_pairs, 0u) << strategy_name(strategy);
  }
}

TEST_P(RandomDagProperty, InstrumentationMonotonicallyShrinks) {
  const auto fcs = compute_plan(dag_.graph, dag_.targets, Strategy::kFcs);
  const auto tcs = compute_plan(dag_.graph, dag_.targets, Strategy::kTcs);
  const auto slim = compute_plan(dag_.graph, dag_.targets, Strategy::kSlim);
  const auto inc = compute_plan(dag_.graph, dag_.targets, Strategy::kIncremental);
  EXPECT_GE(fcs.instrumented_count(), tcs.instrumented_count());
  EXPECT_GE(tcs.instrumented_count(), slim.instrumented_count());
  EXPECT_GE(slim.instrumented_count(), inc.instrumented_count());
}

INSTANTIATE_TEST_SUITE_P(Shapes, RandomDagProperty,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<DagCase>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace ht::cce
