#include "cce/targeted_decoder.hpp"

#include <gtest/gtest.h>

#include "cce/sample_graphs.hpp"
#include "cce/strategies.hpp"

namespace ht::cce {
namespace {

class Fig2Decoder : public ::testing::Test {
 protected:
  Fig2Graph g = make_fig2_graph();
};

TEST_F(Fig2Decoder, DecodesEveryContextUnderEveryStrategy) {
  for (Strategy strategy : kAllStrategies) {
    const auto plan = compute_plan(g.graph, g.targets(), strategy);
    const PccEncoder encoder(plan);
    const TargetedDecoder decoder(g.graph, g.a, g.targets(), encoder);
    EXPECT_EQ(decoder.context_count(), 5u);
    for (FunctionId t : g.targets()) {
      for (const auto& ctx : enumerate_contexts(g.graph, g.a, t)) {
        const auto decoded = decoder.decode(t, encoder.encode(ctx));
        ASSERT_TRUE(decoded.has_value()) << strategy_name(strategy);
        EXPECT_EQ(*decoded, ctx) << strategy_name(strategy);
        EXPECT_FALSE(decoder.ambiguous(t, encoder.encode(ctx)));
      }
    }
  }
}

TEST_F(Fig2Decoder, IncrementalCrossTargetReuseIsNotAmbiguity) {
  // Under Incremental, A->B->F->T1 and A->B->F->T2 share a CCID, but the
  // decoder keys on {target, CCID}, so both decode exactly.
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  const PccEncoder encoder(plan);
  const TargetedDecoder decoder(g.graph, g.a, g.targets(), encoder);
  const CallingContext to_t1{g.ab, g.bf, g.ft1};
  const CallingContext to_t2{g.ab, g.bf, g.ft2};
  const std::uint64_t shared = encoder.encode(to_t1);
  ASSERT_EQ(shared, encoder.encode(to_t2));
  EXPECT_EQ(decoder.decode(g.t1, shared), to_t1);
  EXPECT_EQ(decoder.decode(g.t2, shared), to_t2);
}

TEST_F(Fig2Decoder, UnknownCcidReturnsNullopt) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const PccEncoder encoder(plan);
  const TargetedDecoder decoder(g.graph, g.a, g.targets(), encoder);
  EXPECT_FALSE(decoder.decode(g.t1, 0xdeadbeef).has_value());
  EXPECT_FALSE(decoder.ambiguous(g.t1, 0xdeadbeef));
}

TEST_F(Fig2Decoder, AmbiguityDetectedWhenEncoderDegenerates) {
  // An empty instrumentation plan encodes every context to 0: the decoder
  // must report the collision rather than silently mislead.
  InstrumentationPlan empty;
  empty.instrumented.assign(g.graph.call_site_count(), false);
  const PccEncoder encoder(std::move(empty));
  const TargetedDecoder decoder(g.graph, g.a, g.targets(), encoder);
  EXPECT_TRUE(decoder.ambiguous(g.t1, 0));  // 3 T1 contexts collide at 0
  EXPECT_TRUE(decoder.decode(g.t1, 0).has_value());  // still returns one
}

TEST_F(Fig2Decoder, FormatContextReadable) {
  const CallingContext ctx{g.ac, g.ce, g.et1};
  EXPECT_EQ(TargetedDecoder::format_context(g.graph, g.a, ctx),
            "A -> C -> E -> T1");
  EXPECT_EQ(TargetedDecoder::format_context(g.graph, g.a, {}), "A");
}

TEST(TargetedDecoder, HandlesRecursionBounded) {
  CallGraph g;
  const FunctionId main_fn = g.add_function("main");
  const FunctionId f = g.add_function("f");
  const FunctionId target = g.add_function("malloc");
  g.add_call_site(main_fn, f);
  g.add_call_site(f, f);  // recursion
  g.add_call_site(f, target);
  const auto plan = compute_plan(g, {target}, Strategy::kTcs);
  const PccEncoder encoder(plan);
  const TargetedDecoder decoder(g, main_fn, {target}, encoder, 1 << 12,
                                /*max_cycle_visits=*/2);
  // Depth 0, 1, 2 of the recursive frame are all decodable and distinct.
  EXPECT_EQ(decoder.context_count(), 3u);
  for (const auto& ctx : enumerate_contexts(g, main_fn, target, 1 << 12, 2)) {
    EXPECT_EQ(decoder.decode(target, encoder.encode(ctx)), ctx);
  }
}

TEST(TargetedDecoder, ContextLimitEnforced) {
  ht::support::Rng rng(5);
  RandomDagParams params;
  params.layers = 10;
  params.functions_per_layer = 6;
  params.max_fanout = 3;
  const RandomDag dag = make_random_dag(rng, params);
  const auto plan = compute_plan(dag.graph, dag.targets, Strategy::kFcs);
  const PccEncoder encoder(plan);
  EXPECT_THROW(
      TargetedDecoder(dag.graph, dag.root, dag.targets, encoder, /*limit=*/2),
      std::length_error);
}

}  // namespace
}  // namespace ht::cce
