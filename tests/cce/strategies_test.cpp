#include "cce/strategies.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cce/sample_graphs.hpp"

namespace ht::cce {
namespace {

std::set<CallSiteId> instrumented_set(const InstrumentationPlan& plan) {
  std::set<CallSiteId> out;
  for (CallSiteId s = 0; s < plan.instrumented.size(); ++s) {
    if (plan.instrumented[s]) out.insert(s);
  }
  return out;
}

class Fig2Strategies : public ::testing::Test {
 protected:
  Fig2Graph g = make_fig2_graph();
};

TEST_F(Fig2Strategies, FcsInstrumentsEverySite) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kFcs);
  EXPECT_EQ(plan.instrumented_count(), g.graph.call_site_count());
  EXPECT_DOUBLE_EQ(plan.instrumented_fraction(), 1.0);
}

TEST_F(Fig2Strategies, TcsPrunesExactlyDhAndHi) {
  // §IV-A: "the edges DH and HI cannot reach any of the target functions
  // T1 and T2, they are pruned".
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const std::set<CallSiteId> expected{g.ab, g.ac, g.bf, g.ce,
                                      g.cf, g.et1, g.ft1, g.ft2};
  EXPECT_EQ(instrumented_set(plan), expected);
}

TEST_F(Fig2Strategies, SlimExcludesNonBranchingBAndE) {
  // §IV-B: "all call sites in the non-branching nodes, B and E, are
  // excluded from the instrumentation set".
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kSlim);
  const std::set<CallSiteId> expected{g.ab, g.ac, g.ce, g.cf, g.ft1, g.ft2};
  EXPECT_EQ(instrumented_set(plan), expected);
}

TEST_F(Fig2Strategies, IncrementalKeepsOnlyTrueBranchingEdges) {
  // §IV-C: "only the call sites that correspond to AB, AC, CE, CF need to
  // be instrumented".
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  const std::set<CallSiteId> expected{g.ab, g.ac, g.ce, g.cf};
  EXPECT_EQ(instrumented_set(plan), expected);
}

TEST_F(Fig2Strategies, StrategiesAreNested) {
  // FCS ⊇ TCS ⊇ Slim ⊇ Incremental on any graph.
  const auto fcs = compute_plan(g.graph, g.targets(), Strategy::kFcs);
  const auto tcs = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const auto slim = compute_plan(g.graph, g.targets(), Strategy::kSlim);
  const auto inc = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  for (CallSiteId s = 0; s < g.graph.call_site_count(); ++s) {
    EXPECT_LE(tcs.instrumented[s], fcs.instrumented[s]);
    EXPECT_LE(slim.instrumented[s], tcs.instrumented[s]);
    EXPECT_LE(inc.instrumented[s], slim.instrumented[s]);
  }
}

TEST_F(Fig2Strategies, ClassifyNodesMatchesPaper) {
  const auto nodes = classify_nodes(g.graph, g.targets());
  // A: true branching (both out-edges reach T1).
  EXPECT_TRUE(nodes[g.a].branching);
  EXPECT_TRUE(nodes[g.a].true_branching);
  // C: true branching ("its two outgoing edges can reach T1").
  EXPECT_TRUE(nodes[g.c].branching);
  EXPECT_TRUE(nodes[g.c].true_branching);
  // F: branching but *false* branching (FT1 only reaches T1, FT2 only T2).
  EXPECT_TRUE(nodes[g.f].branching);
  EXPECT_FALSE(nodes[g.f].true_branching);
  // B, E: non-branching.
  EXPECT_FALSE(nodes[g.b].branching);
  EXPECT_FALSE(nodes[g.e].branching);
  // D: no reaching out-edges at all.
  EXPECT_TRUE(nodes[g.d].reaching_out_edges.empty());
}

TEST_F(Fig2Strategies, DuplicateTargetsTolerated) {
  const std::vector<FunctionId> dup{g.t1, g.t2, g.t1, g.t1};
  const auto plan = compute_plan(g.graph, dup, Strategy::kIncremental);
  const std::set<CallSiteId> expected{g.ab, g.ac, g.ce, g.cf};
  EXPECT_EQ(instrumented_set(plan), expected);
}

TEST(Strategies, UnknownTargetThrows) {
  CallGraph g;
  g.add_function("a");
  EXPECT_THROW(compute_plan(g, {9}, Strategy::kTcs), std::out_of_range);
}

TEST(Strategies, SingleTargetMakesSlimAndIncrementalAgree) {
  // With one target, "branching" and "true branching" coincide.
  const Fig2Graph g = make_fig2_graph();
  const std::vector<FunctionId> only_t1{g.t1};
  const auto slim = compute_plan(g.graph, only_t1, Strategy::kSlim);
  const auto inc = compute_plan(g.graph, only_t1, Strategy::kIncremental);
  EXPECT_EQ(instrumented_set(slim), instrumented_set(inc));
}

TEST(Strategies, LinearChainNeedsNoInstrumentationBeyondFcs) {
  // main -> f -> g -> malloc: a single context, nothing to distinguish.
  CallGraph g;
  const FunctionId main_fn = g.add_function("main");
  const FunctionId f = g.add_function("f");
  const FunctionId h = g.add_function("h");
  const FunctionId target = g.add_function("malloc");
  g.add_call_site(main_fn, f);
  g.add_call_site(f, h);
  g.add_call_site(h, target);
  EXPECT_EQ(compute_plan(g, {target}, Strategy::kTcs).instrumented_count(), 3u);
  EXPECT_EQ(compute_plan(g, {target}, Strategy::kSlim).instrumented_count(), 0u);
  EXPECT_EQ(compute_plan(g, {target}, Strategy::kIncremental).instrumented_count(), 0u);
}

TEST(Strategies, RecursiveGraphStillProducesPlan) {
  CallGraph g;
  const FunctionId main_fn = g.add_function("main");
  const FunctionId f = g.add_function("f");
  const FunctionId target = g.add_function("malloc");
  const CallSiteId mf = g.add_call_site(main_fn, f);
  const CallSiteId ff = g.add_call_site(f, f);  // recursion
  const CallSiteId ft = g.add_call_site(f, target);
  const auto tcs = compute_plan(g, {target}, Strategy::kTcs);
  EXPECT_TRUE(tcs.instrumented[mf]);
  EXPECT_TRUE(tcs.instrumented[ff]);
  EXPECT_TRUE(tcs.instrumented[ft]);
  // f has two reaching out-edges (f->f and f->malloc), both reach malloc:
  // true branching — the recursive edge must stay instrumented so recursion
  // depth remains distinguishable.
  const auto inc = compute_plan(g, {target}, Strategy::kIncremental);
  EXPECT_TRUE(inc.instrumented[ff]);
  EXPECT_TRUE(inc.instrumented[ft]);
  EXPECT_FALSE(inc.instrumented[mf]);  // main is non-branching
}

TEST(Strategies, PlanStatsHelpers) {
  const Fig2Graph g = make_fig2_graph();
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  EXPECT_EQ(plan.instrumented_count(), 4u);
  EXPECT_DOUBLE_EQ(plan.instrumented_fraction(), 4.0 / 10.0);
  EXPECT_TRUE(plan.is_instrumented(g.ab));
  EXPECT_FALSE(plan.is_instrumented(g.ft1));
  EXPECT_FALSE(plan.is_instrumented(12345));  // out of range is safe
}

TEST(Strategies, StrategyNames) {
  EXPECT_EQ(strategy_name(Strategy::kFcs), "FCS");
  EXPECT_EQ(strategy_name(Strategy::kTcs), "TCS");
  EXPECT_EQ(strategy_name(Strategy::kSlim), "Slim");
  EXPECT_EQ(strategy_name(Strategy::kIncremental), "Incremental");
}

}  // namespace
}  // namespace ht::cce
