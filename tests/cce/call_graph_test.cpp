#include "cce/call_graph.hpp"

#include <gtest/gtest.h>

#include "cce/sample_graphs.hpp"

namespace ht::cce {
namespace {

TEST(CallGraph, AddFunctionAssignsDenseIds) {
  CallGraph g;
  EXPECT_EQ(g.add_function("main"), 0u);
  EXPECT_EQ(g.add_function("helper"), 1u);
  EXPECT_EQ(g.function_count(), 2u);
  EXPECT_EQ(g.function_name(0), "main");
}

TEST(CallGraph, RejectsEmptyAndDuplicateNames) {
  CallGraph g;
  g.add_function("main");
  EXPECT_THROW(g.add_function("main"), std::invalid_argument);
  EXPECT_THROW(g.add_function(""), std::invalid_argument);
}

TEST(CallGraph, FindFunctionByName) {
  CallGraph g;
  const FunctionId f = g.add_function("malloc");
  EXPECT_EQ(g.find_function("malloc"), f);
  EXPECT_FALSE(g.find_function("calloc").has_value());
}

TEST(CallGraph, CallSitesAreDistinctEdges) {
  CallGraph g;
  const FunctionId a = g.add_function("a");
  const FunctionId b = g.add_function("b");
  // Two distinct call sites between the same pair of functions.
  const CallSiteId s1 = g.add_call_site(a, b);
  const CallSiteId s2 = g.add_call_site(a, b);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(g.call_site_count(), 2u);
  EXPECT_EQ(g.outgoing(a).size(), 2u);
  EXPECT_EQ(g.incoming(b).size(), 2u);
}

TEST(CallGraph, RejectsUnknownFunctionInCallSite) {
  CallGraph g;
  const FunctionId a = g.add_function("a");
  EXPECT_THROW(g.add_call_site(a, 42), std::out_of_range);
  EXPECT_THROW(g.add_call_site(42, a), std::out_of_range);
}

TEST(CallGraph, CycleDetection) {
  CallGraph g;
  const FunctionId a = g.add_function("a");
  const FunctionId b = g.add_function("b");
  const FunctionId c = g.add_function("c");
  g.add_call_site(a, b);
  g.add_call_site(b, c);
  EXPECT_FALSE(g.has_cycle());
  g.add_call_site(c, a);
  EXPECT_TRUE(g.has_cycle());
}

TEST(CallGraph, SelfRecursionIsACycle) {
  CallGraph g;
  const FunctionId a = g.add_function("a");
  g.add_call_site(a, a);
  EXPECT_TRUE(g.has_cycle());
}

TEST(CallGraph, Fig2IsAcyclic) {
  EXPECT_FALSE(make_fig2_graph().graph.has_cycle());
}

TEST(CallGraph, ValidContextCheck) {
  const Fig2Graph g = make_fig2_graph();
  EXPECT_TRUE(g.graph.is_valid_context({g.ac, g.ce, g.et1}, g.a));
  EXPECT_TRUE(g.graph.is_valid_context({}, g.a));  // empty context at root
  // Chain broken: ce starts at C but ab ends at B.
  EXPECT_FALSE(g.graph.is_valid_context({g.ab, g.ce}, g.a));
  // Wrong root.
  EXPECT_FALSE(g.graph.is_valid_context({g.ce, g.et1}, g.a));
  // Out-of-range site id.
  EXPECT_FALSE(g.graph.is_valid_context({999}, g.a));
}

TEST(Reachability, Fig2MatchesPaper) {
  const Fig2Graph g = make_fig2_graph();
  const Reachability r = compute_reachability(g.graph, g.targets());
  // D, H, I never reach a target (§IV-A).
  EXPECT_FALSE(r.reaches_target[g.d]);
  EXPECT_FALSE(r.reaches_target[g.h]);
  EXPECT_FALSE(r.reaches_target[g.i]);
  for (FunctionId f : {g.a, g.b, g.c, g.e, g.f, g.t1, g.t2}) {
    EXPECT_TRUE(r.reaches_target[f]) << g.graph.function_name(f);
  }
  EXPECT_FALSE(r.site_reaches_target[g.dh]);
  EXPECT_FALSE(r.site_reaches_target[g.hi]);
  for (CallSiteId s : {g.ab, g.ac, g.bf, g.ce, g.cf, g.et1, g.ft1, g.ft2}) {
    EXPECT_TRUE(r.site_reaches_target[s]);
  }
}

TEST(Reachability, HandlesCyclesWithoutHanging) {
  CallGraph g;
  const FunctionId a = g.add_function("a");
  const FunctionId b = g.add_function("b");
  const FunctionId t = g.add_function("t");
  g.add_call_site(a, b);
  g.add_call_site(b, a);  // cycle
  g.add_call_site(b, t);
  const Reachability r = compute_reachability(g, {t});
  EXPECT_TRUE(r.reaches_target[a]);
  EXPECT_TRUE(r.reaches_target[b]);
}

TEST(Reachability, UnknownTargetThrows) {
  CallGraph g;
  g.add_function("a");
  EXPECT_THROW(compute_reachability(g, {7}), std::out_of_range);
}

TEST(EnumerateContexts, Fig2TargetT1) {
  const Fig2Graph g = make_fig2_graph();
  auto contexts = enumerate_contexts(g.graph, g.a, g.t1);
  // A->B->F->T1, A->C->E->T1, A->C->F->T1.
  EXPECT_EQ(contexts.size(), 3u);
  for (const auto& ctx : contexts) {
    EXPECT_TRUE(g.graph.is_valid_context(ctx, g.a));
    EXPECT_EQ(g.graph.site(ctx.back()).callee, g.t1);
  }
}

TEST(EnumerateContexts, Fig2TargetT2HasExactlyTwo) {
  // "the two calling contexts that reach T2" (§IV-C).
  const Fig2Graph g = make_fig2_graph();
  auto contexts = enumerate_contexts(g.graph, g.a, g.t2);
  ASSERT_EQ(contexts.size(), 2u);
  const CallingContext via_b{g.ab, g.bf, g.ft2};
  const CallingContext via_c{g.ac, g.cf, g.ft2};
  EXPECT_TRUE((contexts[0] == via_b && contexts[1] == via_c) ||
              (contexts[0] == via_c && contexts[1] == via_b));
}

TEST(EnumerateContexts, RootEqualsTargetGivesEmptyContext) {
  const Fig2Graph g = make_fig2_graph();
  auto contexts = enumerate_contexts(g.graph, g.t1, g.t1);
  ASSERT_EQ(contexts.size(), 1u);
  EXPECT_TRUE(contexts[0].empty());
}

TEST(EnumerateContexts, UnreachableTargetGivesNone) {
  const Fig2Graph g = make_fig2_graph();
  EXPECT_TRUE(enumerate_contexts(g.graph, g.d, g.t1).empty());
}

TEST(EnumerateContexts, BoundedRecursion) {
  CallGraph g;
  const FunctionId a = g.add_function("a");
  const FunctionId t = g.add_function("t");
  g.add_call_site(a, a);  // direct recursion
  g.add_call_site(a, t);
  // With max_cycle_visits=1 the recursive edge may be taken once.
  const auto contexts = enumerate_contexts(g, a, t, 1024, 1);
  EXPECT_EQ(contexts.size(), 2u);  // a->t and a->a->t
  const auto deeper = enumerate_contexts(g, a, t, 1024, 3);
  EXPECT_EQ(deeper.size(), 4u);
}

TEST(EnumerateContexts, LimitThrows) {
  const Fig2Graph g = make_fig2_graph();
  EXPECT_THROW(enumerate_contexts(g.graph, g.a, g.t1, /*limit=*/1),
               std::length_error);
}

TEST(ToDot, ContainsFunctionsAndInstrumentationHighlight) {
  const Fig2Graph g = make_fig2_graph();
  std::vector<bool> instrumented(g.graph.call_site_count(), false);
  instrumented[g.ab] = true;
  const std::string dot = g.graph.to_dot({g.t1, g.t2}, &instrumented);
  EXPECT_NE(dot.find("T1"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace ht::cce
