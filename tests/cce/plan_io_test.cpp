#include "cce/plan_io.hpp"

#include <gtest/gtest.h>

#include "cce/encoders.hpp"
#include "cce/sample_graphs.hpp"

namespace ht::cce {
namespace {

class PlanIo : public ::testing::Test {
 protected:
  Fig2Graph g = make_fig2_graph();
};

TEST_F(PlanIo, RoundTripEveryStrategy) {
  for (Strategy strategy : kAllStrategies) {
    const auto plan = compute_plan(g.graph, g.targets(), strategy);
    const auto parsed = parse_plan(serialize_plan(plan, g.graph), g.graph);
    ASSERT_TRUE(parsed.plan.has_value()) << parsed.error;
    EXPECT_EQ(parsed.plan->strategy, plan.strategy);
    EXPECT_EQ(parsed.plan->instrumented, plan.instrumented);
  }
}

TEST_F(PlanIo, FingerprintStableAndStructural) {
  EXPECT_EQ(graph_fingerprint(g.graph), graph_fingerprint(make_fig2_graph().graph));
  // A structurally different graph fingerprints differently.
  CallGraph other;
  const auto a = other.add_function("A");
  const auto b = other.add_function("B");
  other.add_call_site(a, b);
  EXPECT_NE(graph_fingerprint(g.graph), graph_fingerprint(other));
}

TEST_F(PlanIo, StalePlanRejectedOnFingerprintMismatch) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kSlim);
  const std::string text = serialize_plan(plan, g.graph);
  // "The program changed": one extra call site invalidates the plan.
  Fig2Graph changed = make_fig2_graph();
  changed.graph.add_call_site(changed.d, changed.i);
  const auto parsed = parse_plan(text, changed.graph);
  EXPECT_FALSE(parsed.plan.has_value());
  EXPECT_NE(parsed.error.find("mismatch"), std::string::npos);
}

TEST_F(PlanIo, RejectsCorruptInputs) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const std::string good = serialize_plan(plan, g.graph);

  EXPECT_FALSE(parse_plan("", g.graph).plan.has_value());
  EXPECT_FALSE(parse_plan("version 2\n", g.graph).plan.has_value());

  std::string bad_strategy = good;
  bad_strategy.replace(bad_strategy.find("TCS"), 3, "WAT");
  EXPECT_FALSE(parse_plan(bad_strategy, g.graph).plan.has_value());

  std::string bad_site = good;
  bad_site += "instrumented 9999\n";
  EXPECT_FALSE(parse_plan(bad_site, g.graph).plan.has_value());

  std::string bad_directive = good + "bogus line\n";
  EXPECT_FALSE(parse_plan(bad_directive, g.graph).plan.has_value());
}

TEST_F(PlanIo, ParsedPlanEncodesIdentically) {
  // The point of persistence: the reloaded plan drives identical encodings.
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  const auto parsed = parse_plan(serialize_plan(plan, g.graph), g.graph);
  ASSERT_TRUE(parsed.plan.has_value());
  const PccEncoder original(plan);
  const PccEncoder reloaded(*parsed.plan);
  for (FunctionId t : g.targets()) {
    for (const auto& ctx : enumerate_contexts(g.graph, g.a, t)) {
      EXPECT_EQ(original.encode(ctx), reloaded.encode(ctx));
    }
  }
}

}  // namespace
}  // namespace ht::cce
