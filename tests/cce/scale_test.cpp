// Scale and recursion coverage for the encoding pipeline: plan computation
// on graphs the size of real programs, and PCC behaviour under bounded
// recursion (where the additive encoder abstains by design).
#include <gtest/gtest.h>

#include <chrono>
#include <unordered_set>

#include "cce/encoders.hpp"
#include "cce/sample_graphs.hpp"
#include "cce/strategies.hpp"
#include "cce/verify.hpp"

namespace ht::cce {
namespace {

TEST(Scale, PlanComputationOnTenThousandFunctionGraph) {
  // ~10k functions / ~25k call sites: the size class of a large binary's
  // call graph. Every strategy must finish in interactive time.
  support::Rng rng(77);
  RandomDagParams params;
  params.layers = 50;
  params.functions_per_layer = 200;
  params.max_fanout = 3;
  params.target_count = 5;
  const RandomDag dag = make_random_dag(rng, params);
  ASSERT_GT(dag.graph.function_count(), 9000u);

  for (Strategy strategy : kAllStrategies) {
    const auto start = std::chrono::steady_clock::now();
    const auto plan = compute_plan(dag.graph, dag.targets, strategy);
    const auto seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    EXPECT_LT(seconds, 2.0) << strategy_name(strategy);
    EXPECT_GT(plan.instrumented.size(), 0u);
  }

  // The nesting invariant holds at scale.
  const auto tcs = compute_plan(dag.graph, dag.targets, Strategy::kTcs);
  const auto slim = compute_plan(dag.graph, dag.targets, Strategy::kSlim);
  const auto inc = compute_plan(dag.graph, dag.targets, Strategy::kIncremental);
  EXPECT_LE(slim.instrumented_count(), tcs.instrumented_count());
  EXPECT_LE(inc.instrumented_count(), slim.instrumented_count());
}

TEST(Scale, AdditiveEncoderHandlesHugeContextCounts) {
  // A 40-layer ladder with 2 choices per layer: 2^40 contexts. Encoding
  // ids must not overflow and spot-checked round trips must hold.
  CallGraph g;
  const FunctionId root = g.add_function("main");
  FunctionId prev = root;
  for (int layer = 0; layer < 40; ++layer) {
    const FunctionId a = g.add_function("a" + std::to_string(layer));
    const FunctionId join = g.add_function("j" + std::to_string(layer));
    g.add_call_site(prev, a);
    g.add_call_site(prev, join);  // two routes...
    g.add_call_site(a, join);     // ...re-converging
    prev = join;
  }
  const FunctionId target = g.add_function("malloc");
  g.add_call_site(prev, target);
  const auto plan = compute_plan(g, {target}, Strategy::kSlim);
  const AdditiveEncoder enc(g, {target}, plan, root);
  EXPECT_EQ(enc.num_contexts(), 1ULL << 40);
  // Round-trip the extreme ids and a few interior ones.
  for (std::uint64_t v :
       {0ULL, 1ULL, (1ULL << 40) - 1, (1ULL << 39) + 12345ULL}) {
    const auto ctx = enc.decode(v);
    ASSERT_TRUE(ctx.has_value()) << v;
    EXPECT_EQ(enc.encode(*ctx), v);
  }
  EXPECT_FALSE(enc.decode(1ULL << 40).has_value());
}

TEST(Recursion, PccDistinguishesRecursionDepths) {
  // f calls itself then malloc: each recursion depth is a distinct calling
  // context and must encode distinctly (the recursive edge is a true
  // branching edge, so even Incremental instruments it).
  CallGraph g;
  const FunctionId main_fn = g.add_function("main");
  const FunctionId f = g.add_function("f");
  const FunctionId target = g.add_function("malloc");
  g.add_call_site(main_fn, f);
  g.add_call_site(f, f);
  g.add_call_site(f, target);
  for (Strategy strategy : kAllStrategies) {
    const auto plan = compute_plan(g, {target}, strategy);
    const PccEncoder enc(plan);
    const auto contexts = enumerate_contexts(g, main_fn, target, 1 << 12, 8);
    ASSERT_EQ(contexts.size(), 9u);  // depths 0..8
    std::unordered_set<std::uint64_t> ids;
    for (const auto& ctx : contexts) ids.insert(enc.encode(ctx));
    EXPECT_EQ(ids.size(), contexts.size()) << strategy_name(strategy);
  }
}

TEST(Recursion, MutualRecursionSound) {
  CallGraph g;
  const FunctionId main_fn = g.add_function("main");
  const FunctionId even = g.add_function("even");
  const FunctionId odd = g.add_function("odd");
  const FunctionId target = g.add_function("malloc");
  g.add_call_site(main_fn, even);
  g.add_call_site(even, odd);
  g.add_call_site(odd, even);
  g.add_call_site(even, target);
  g.add_call_site(odd, target);
  for (Strategy strategy : {Strategy::kTcs, Strategy::kSlim, Strategy::kIncremental}) {
    const auto plan = compute_plan(g, {target}, strategy);
    const auto report = verify_plan_distinguishability(g, main_fn, {target}, plan,
                                                       1 << 12);
    EXPECT_TRUE(report.sound()) << strategy_name(strategy);
    EXPECT_GT(report.contexts, 2u);
  }
}

TEST(Scale, VerifyDistinguishabilityPrunesUnreachableRegions) {
  // A graph with a huge cyclic component that cannot reach the target must
  // verify quickly (regression test for the enumeration pruning fix).
  CallGraph g;
  const FunctionId main_fn = g.add_function("main");
  const FunctionId target = g.add_function("malloc");
  g.add_call_site(main_fn, target);
  FunctionId prev = g.add_function("cold0");
  g.add_call_site(main_fn, prev);
  for (int i = 1; i < 200; ++i) {
    const FunctionId next = g.add_function("cold" + std::to_string(i));
    g.add_call_site(prev, next);
    g.add_call_site(next, prev);  // dense cycles, all cold
    prev = next;
  }
  const auto start = std::chrono::steady_clock::now();
  const auto plan = compute_plan(g, {target}, Strategy::kTcs);
  const auto report = verify_plan_distinguishability(g, main_fn, {target}, plan);
  const auto seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(report.sound());
  EXPECT_LT(seconds, 0.5);
}

}  // namespace
}  // namespace ht::cce
