#include "cce/verify.hpp"

#include <gtest/gtest.h>

#include "cce/sample_graphs.hpp"

namespace ht::cce {
namespace {

class Fig2Verify : public ::testing::Test {
 protected:
  Fig2Graph g = make_fig2_graph();
};

TEST_F(Fig2Verify, InstrumentedSubsequenceFilters) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  const CallingContext ctx{g.ac, g.ce, g.et1};
  const auto sub = instrumented_subsequence(plan, ctx);
  // Under Incremental only AC and CE are instrumented on this path.
  const std::vector<CallSiteId> expected{g.ac, g.ce};
  EXPECT_EQ(sub, expected);
}

TEST_F(Fig2Verify, AllStrategiesSoundOnFig2) {
  // The central lemma of §IV: every strategy keeps same-target contexts
  // distinguishable by their instrumented-site subsequences.
  for (Strategy strategy : kAllStrategies) {
    const auto plan = compute_plan(g.graph, g.targets(), strategy);
    const auto report =
        verify_plan_distinguishability(g.graph, g.a, g.targets(), plan);
    EXPECT_EQ(report.contexts, 5u) << strategy_name(strategy);
    EXPECT_TRUE(report.sound()) << strategy_name(strategy);
  }
}

TEST_F(Fig2Verify, EmptyPlanIsUnsound) {
  // Instrumenting nothing cannot distinguish the multiple contexts.
  InstrumentationPlan empty;
  empty.instrumented.assign(g.graph.call_site_count(), false);
  const auto report =
      verify_plan_distinguishability(g.graph, g.a, g.targets(), empty);
  EXPECT_FALSE(report.sound());
  EXPECT_GT(report.ambiguous_pairs, 0u);
}

TEST_F(Fig2Verify, DroppingATrueBranchingEdgeBreaksSoundness) {
  auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  plan.instrumented[g.ce] = false;
  plan.instrumented[g.cf] = false;
  const auto report =
      verify_plan_distinguishability(g.graph, g.a, g.targets(), plan);
  // The T1 contexts A->C->E->T1 and A->C->F->T1 both reduce to {AC}.
  EXPECT_FALSE(report.sound());
}

TEST_F(Fig2Verify, CollisionAnalysisExactEncoderHasNoCollisions) {
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kTcs);
  const AdditiveEncoder enc(g.graph, g.targets(), plan, g.a);
  const auto report = analyze_collisions(g.graph, g.a, g.targets(), enc);
  EXPECT_EQ(report.contexts, 5u);
  EXPECT_EQ(report.colliding_pairs, 0u);
  EXPECT_EQ(report.distinct_encodings, 5u);
}

TEST_F(Fig2Verify, CollisionAnalysisPcc) {
  for (Strategy strategy : kAllStrategies) {
    const auto plan = compute_plan(g.graph, g.targets(), strategy);
    const PccEncoder enc(plan);
    const auto report = analyze_collisions(g.graph, g.a, g.targets(), enc);
    EXPECT_EQ(report.colliding_pairs, 0u) << strategy_name(strategy);
  }
}

TEST_F(Fig2Verify, IncrementalSharesEncodingsAcrossTargetsOnly) {
  // Under Incremental, a T1 context and a T2 context may share a CCID —
  // that is exactly why patches are keyed on {FUN, CCID}. Same-target
  // collisions must still be absent.
  const auto plan = compute_plan(g.graph, g.targets(), Strategy::kIncremental);
  const PccEncoder enc(plan);
  // Context A->B->F->T1 and A->B->F->T2 share the subsequence {AB}.
  EXPECT_EQ(enc.encode({g.ab, g.bf, g.ft1}), enc.encode({g.ab, g.bf, g.ft2}));
  const auto report = analyze_collisions(g.graph, g.a, g.targets(), enc);
  EXPECT_EQ(report.colliding_pairs, 0u);  // same-target pairs only
  EXPECT_LT(report.distinct_encodings, report.contexts);  // cross-target reuse
}

}  // namespace
}  // namespace ht::cce
