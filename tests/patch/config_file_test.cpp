#include "patch/config_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace ht::patch {
namespace {

std::vector<Patch> sample_patches() {
  return {
      {progmodel::AllocFn::kMalloc, 0x1f3a77b2c4d5e6f7ULL, kOverflow | kUninitRead},
      {progmodel::AllocFn::kCalloc, 42, kUseAfterFree},
      {progmodel::AllocFn::kMemalign, 0, kOverflow},
  };
}

TEST(ConfigFile, SerializeParseRoundTrip) {
  const auto patches = sample_patches();
  const ParseResult parsed = parse_config(serialize_config(patches));
  EXPECT_TRUE(parsed.ok()) << (parsed.errors.empty() ? "" : parsed.errors[0]);
  EXPECT_EQ(parsed.patches, patches);
}

TEST(ConfigFile, EmptyConfigIsValid) {
  const ParseResult parsed = parse_config(serialize_config({}));
  EXPECT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.patches.empty());
}

TEST(ConfigFile, CommentsAndBlankLinesIgnored) {
  const ParseResult parsed = parse_config(
      "# comment\n\nversion 1\n  # indented comment\npatch malloc 7 OVERFLOW\n\n");
  EXPECT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.patches.size(), 1u);
  EXPECT_EQ(parsed.patches[0].ccid, 7u);
}

TEST(ConfigFile, DecimalAndHexCcids) {
  const ParseResult parsed = parse_config(
      "version 1\npatch malloc 123 OVERFLOW\npatch calloc 0xff UAF\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.patches[0].ccid, 123u);
  EXPECT_EQ(parsed.patches[1].ccid, 0xffu);
}

TEST(ConfigFile, MalformedLineDoesNotDisableOthers) {
  const ParseResult parsed = parse_config(
      "version 1\n"
      "patch malloc notanumber OVERFLOW\n"
      "patch calloc 9 UAF\n"
      "patch what 9 UAF\n"
      "patch malloc 10 NOT_A_MASK\n"
      "bogus directive\n"
      "patch malloc 11 UNINIT\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.errors.size(), 4u);
  ASSERT_EQ(parsed.patches.size(), 2u);  // the two valid lines survive
  EXPECT_EQ(parsed.patches[0].ccid, 9u);
  EXPECT_EQ(parsed.patches[1].ccid, 11u);
}

TEST(ConfigFile, ErrorsCarryLineNumbers) {
  const ParseResult parsed = parse_config("version 1\npatch malloc x OVERFLOW\n");
  ASSERT_EQ(parsed.errors.size(), 1u);
  EXPECT_NE(parsed.errors[0].find("line 2"), std::string::npos);
}

TEST(ConfigFile, MissingVersionFlagged) {
  const ParseResult parsed = parse_config("patch malloc 7 OVERFLOW\n");
  EXPECT_FALSE(parsed.ok());
  ASSERT_EQ(parsed.patches.size(), 1u);  // patch still usable
}

TEST(ConfigFile, UnsupportedVersionFlagged) {
  const ParseResult parsed = parse_config("version 2\npatch malloc 7 OVERFLOW\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(ConfigFile, PatchLineFieldCountValidated) {
  const ParseResult parsed = parse_config("version 1\npatch malloc 7\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.patches.empty());
}

TEST(ConfigFile, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ht_config_test.cfg").string();
  const auto patches = sample_patches();
  ASSERT_TRUE(save_config_file(path, patches));
  const auto loaded = load_config_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->ok());
  EXPECT_EQ(loaded->patches, patches);
  std::remove(path.c_str());
}

TEST(ConfigFile, LoadMissingFileReturnsNullopt) {
  EXPECT_FALSE(load_config_file("/nonexistent/path/patches.cfg").has_value());
}

}  // namespace
}  // namespace ht::patch
