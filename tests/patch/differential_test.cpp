// Differential and fuzz testing for the patch layer: the open-addressing
// table against a reference map, and the config parser against noise.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "patch/config_file.hpp"
#include "patch/patch_table.hpp"
#include "support/rng.hpp"

namespace ht::patch {
namespace {

using progmodel::AllocFn;

class PatchTableDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatchTableDifferential, MatchesReferenceMapExactly) {
  support::Rng rng(GetParam());
  // Keys drawn from a small universe so duplicates (mask merging) occur.
  std::vector<Patch> patches;
  std::map<std::pair<int, std::uint64_t>, std::uint8_t> reference;
  const std::size_t count = 1 + rng.below(800);
  for (std::size_t i = 0; i < count; ++i) {
    const auto fn = static_cast<AllocFn>(rng.below(5));
    const std::uint64_t ccid = rng.below(256) * (rng.chance(0.5) ? 1 : 0x9e3779b9ULL);
    const auto mask = static_cast<std::uint8_t>(1 + rng.below(7));
    patches.push_back(Patch{fn, ccid, mask});
    reference[{static_cast<int>(fn), ccid}] |= mask;
  }
  const PatchTable table(patches, /*freeze=*/GetParam() % 2 == 0);
  // Every reference key matches; probing with unknown keys returns 0.
  for (const auto& [key, mask] : reference) {
    EXPECT_EQ(table.lookup(static_cast<AllocFn>(key.first), key.second), mask);
  }
  for (int probe = 0; probe < 2000; ++probe) {
    const auto fn = static_cast<AllocFn>(rng.below(5));
    const std::uint64_t ccid = rng.next();
    const auto it = reference.find({static_cast<int>(fn), ccid});
    EXPECT_EQ(table.lookup(fn, ccid),
              it == reference.end() ? 0 : it->second);
  }
  EXPECT_EQ(table.patch_count(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatchTableDifferential,
                         ::testing::Range<std::uint64_t>(3000, 3010));

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigFuzz, RandomNoiseNeverCrashesParser) {
  support::Rng rng(GetParam());
  // Random printable noise with config-ish tokens sprinkled in.
  static const char* tokens[] = {"patch",   "version", "malloc",  "calloc",
                                 "OVERFLOW", "UAF",     "UNINIT",  "0x",
                                 "|",        "#",       "\n",      " "};
  std::string text;
  for (int i = 0; i < 400; ++i) {
    if (rng.chance(0.5)) {
      text += tokens[rng.index(std::size(tokens))];
    } else {
      text += static_cast<char>(32 + rng.below(95));
    }
    if (rng.chance(0.08)) text += '\n';
  }
  const ParseResult result = parse_config(text);  // must not crash or hang
  // Whatever parsed must re-serialize and re-parse to the same patches.
  const ParseResult again = parse_config(serialize_config(result.patches));
  EXPECT_EQ(again.patches, result.patches);
}

TEST_P(ConfigFuzz, ValidConfigsAreAFixpoint) {
  support::Rng rng(GetParam() + 100);
  std::vector<Patch> patches;
  const std::size_t count = rng.below(50);
  for (std::size_t i = 0; i < count; ++i) {
    patches.push_back(Patch{static_cast<AllocFn>(rng.below(5)), rng.next(),
                            static_cast<std::uint8_t>(1 + rng.below(7))});
  }
  const std::string once = serialize_config(patches);
  const ParseResult parsed = parse_config(once);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(serialize_config(parsed.patches), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(4000, 4010));

}  // namespace
}  // namespace ht::patch
