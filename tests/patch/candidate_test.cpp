// Candidate journal + CandidateTable tests (docs/FORMATS.md §7).
//
// The journal is the shared artifact of the self-healing loop: many
// uncoordinated runtime processes append to it, one htpromote reads it.
// That makes parsing hardening (truncation, corruption, interleaved
// writers) the main subject here, alongside the fold/promotion semantics.
#include "patch/candidate.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ht::patch {
namespace {

std::string temp_journal_path(const char* tag) {
  std::ostringstream os;
  os << std::filesystem::temp_directory_path().string() << "/ht_cand_" << tag
     << "_" << ::getpid() << ".txt";
  return os.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<PatchCandidate> sample_candidates() {
  return {
      {progmodel::AllocFn::kMalloc, 0xbeef, kOverflow,
       CandidateOrigin::kCanary, 3, 100},
      {progmodel::AllocFn::kCalloc, 0x42, kUseAfterFree,
       CandidateOrigin::kUafReuse, 1, 200},
      {progmodel::AllocFn::kMalloc, 0xbeef, kOverflow | kUseAfterFree,
       CandidateOrigin::kGuardTrap, 2, 50},
  };
}

TEST(CandidateNames, OriginRoundTrip) {
  for (std::size_t i = 0; i < kCandidateOriginCount; ++i) {
    const auto origin = static_cast<CandidateOrigin>(i);
    CandidateOrigin parsed{};
    ASSERT_TRUE(candidate_origin_from_name(candidate_origin_name(origin), parsed));
    EXPECT_EQ(parsed, origin);
  }
  CandidateOrigin unused{};
  EXPECT_FALSE(candidate_origin_from_name("meteor_strike", unused));
}

TEST(CandidateNames, VerdictRoundTrip) {
  for (CandidateVerdict verdict :
       {CandidateVerdict::kPromoted, CandidateVerdict::kRejected,
        CandidateVerdict::kDemoted}) {
    CandidateVerdict parsed{};
    ASSERT_TRUE(
        candidate_verdict_from_name(candidate_verdict_name(verdict), parsed));
    EXPECT_EQ(parsed, verdict);
  }
  CandidateVerdict unused{};
  EXPECT_FALSE(candidate_verdict_from_name("maybe", unused));
}

TEST(CandidateNames, DefaultMaskMatchesOriginEvidence) {
  EXPECT_EQ(candidate_default_mask(CandidateOrigin::kGuardTrap), kOverflow);
  EXPECT_EQ(candidate_default_mask(CandidateOrigin::kOobLanded), kOverflow);
  EXPECT_EQ(candidate_default_mask(CandidateOrigin::kCanary), kOverflow);
  EXPECT_EQ(candidate_default_mask(CandidateOrigin::kUafReuse), kUseAfterFree);
}

TEST(CandidateJournal, SerializeParseRoundTrip) {
  const auto candidates = sample_candidates();
  const std::string text =
      "version 1\n" + serialize_candidate_lines(candidates);
  const CandidateParseResult parsed = parse_candidate_journal(text);
  ASSERT_TRUE(parsed.ok()) << parsed.reject_reason;
  EXPECT_TRUE(parsed.notes.empty());
  // Distinct {fn, ccid, mask, origin} keys: nothing folds here.
  EXPECT_EQ(parsed.candidates, candidates);
}

TEST(CandidateJournal, VerdictRoundTripAndWhitespaceReason) {
  const VerdictRecord verdict{progmodel::AllocFn::kRealloc, 0x77, kOverflow,
                              CandidateVerdict::kRejected,
                              "attack still lands", 999, ""};
  const std::string text = "version 1\n" + serialize_verdict_line(verdict);
  const CandidateParseResult parsed = parse_candidate_journal(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.verdicts.size(), 1u);
  EXPECT_EQ(parsed.verdicts[0].verdict, CandidateVerdict::kRejected);
  // Whitespace in the reason becomes '-' so the line stays 7 fields.
  EXPECT_EQ(parsed.verdicts[0].reason, "attack-still-lands");
  EXPECT_EQ(parsed.verdicts[0].time_ns, 999u);
}

TEST(CandidateJournal, DuplicateCandidatesFold) {
  const std::string text =
      "version 1\n"
      "candidate malloc 0xbeef OVERFLOW canary hits=3 first=500\n"
      "candidate malloc 0xbeef OVERFLOW canary hits=4 first=200\n"
      "candidate malloc 0xbeef OVERFLOW canary hits=1 first=900\n";
  const CandidateParseResult parsed = parse_candidate_journal(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.candidates.size(), 1u);
  EXPECT_EQ(parsed.candidates[0].hits, 8u);       // deltas sum
  EXPECT_EQ(parsed.candidates[0].first_seen_ns, 200u);  // min nonzero wins
}

TEST(CandidateJournal, DuplicateVersionLineSilentlySkipped) {
  // Two processes racing an empty file can both prepend the header.
  const std::string text =
      "# HeapTherapy+ candidate quarantine\n"
      "version 1\n"
      "# HeapTherapy+ candidate quarantine\n"
      "version 1\n"
      "candidate malloc 0x1 OVERFLOW guard_trap hits=1 first=1\n";
  const CandidateParseResult parsed = parse_candidate_journal(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.notes.empty());
  EXPECT_EQ(parsed.candidates.size(), 1u);
}

TEST(CandidateJournal, UnsupportedVersionRejects) {
  const CandidateParseResult parsed = parse_candidate_journal(
      "version 2\ncandidate malloc 0x1 OVERFLOW canary hits=1 first=1\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.candidates.empty());
  EXPECT_TRUE(parsed.verdicts.empty());
}

TEST(CandidateJournal, DataWithoutVersionRejects) {
  const CandidateParseResult parsed = parse_candidate_journal(
      "candidate malloc 0x1 OVERFLOW canary hits=1 first=1\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.candidates.empty());
}

TEST(CandidateJournal, EmptyAndCommentOnlyJournalsAreOk) {
  EXPECT_TRUE(parse_candidate_journal("").ok());
  EXPECT_TRUE(parse_candidate_journal("# only a comment\n\n").ok());
}

TEST(CandidateJournal, MalformedLinesNotedOthersSurvive) {
  const std::string text =
      "version 1\n"
      "candidate malloc 0x1 OVERFLOW canary hits=1 first=1\n"
      "candidate malloc nothex OVERFLOW canary hits=1 first=1\n"
      "candidate teleport 0x2 OVERFLOW canary hits=1 first=1\n"
      "candidate malloc 0x3 NOT_A_MASK canary hits=1 first=1\n"
      "candidate malloc 0x4 OVERFLOW meteor hits=1 first=1\n"
      "candidate malloc 0x5 OVERFLOW canary hits=x first=1\n"
      "candidate malloc 0x6 OVERFLOW canary\n"
      "frobnicate everything\n"
      "candidate calloc 0x7 UAF uaf_reuse hits=2 first=9\n";
  const CandidateParseResult parsed = parse_candidate_journal(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.notes.size(), 7u);
  ASSERT_EQ(parsed.candidates.size(), 2u);
  EXPECT_EQ(parsed.candidates[0].ccid, 0x1u);
  EXPECT_EQ(parsed.candidates[1].ccid, 0x7u);
}

TEST(CandidateJournal, NotesCappedAtFifty) {
  std::ostringstream os;
  os << "version 1\n";
  for (int i = 0; i < 60; ++i) os << "garbage line " << i << "\n";
  const CandidateParseResult parsed = parse_candidate_journal(os.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.notes.size(), kCandidateNoteCap);
}

TEST(CandidateJournal, TruncationSweepNeverCrashes) {
  // Simulate a reader racing a writer: parse every prefix of a valid
  // journal. A truncated tail line may be noted or folded wrong, but the
  // parser must never crash and earlier complete lines must survive.
  const std::string text =
      "# HeapTherapy+ candidate quarantine\n"
      "version 1\n"
      "candidate malloc 0xbeef OVERFLOW canary hits=3 first=100\n"
      "verdict malloc 0xbeef OVERFLOW promoted replay_validated t=200\n"
      "candidate calloc 0x42 UAF uaf_reuse hits=1 first=300\n";
  for (std::size_t len = 0; len <= text.size(); ++len) {
    const CandidateParseResult parsed =
        parse_candidate_journal(std::string_view(text).substr(0, len));
    if (parsed.ok() && len == text.size()) {
      EXPECT_EQ(parsed.candidates.size(), 2u);
      EXPECT_EQ(parsed.verdicts.size(), 1u);
    }
  }
}

TEST(CandidateJournal, CorruptionSweepNeverCrashes) {
  const std::string base =
      "version 1\n"
      "candidate malloc 0xbeef OVERFLOW canary hits=3 first=100\n"
      "verdict malloc 0xbeef OVERFLOW promoted replay_validated t=200\n";
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (char junk : {'\0', '\xff', ' ', '\n', 'z'}) {
      std::string mutated = base;
      mutated[pos] = junk;
      (void)parse_candidate_journal(mutated);  // must not crash or throw
    }
  }
}

TEST(CandidateJournal, AppendCreatesHeaderOnceAndFoldsAcrossAppends) {
  const std::string path = temp_journal_path("append");
  std::remove(path.c_str());
  ASSERT_TRUE(append_candidate_journal(
      path, {{progmodel::AllocFn::kMalloc, 0xbeef, kOverflow,
              CandidateOrigin::kCanary, 2, 100}}));
  ASSERT_TRUE(append_candidate_journal(
      path, {{progmodel::AllocFn::kMalloc, 0xbeef, kOverflow,
              CandidateOrigin::kCanary, 5, 100}}));
  ASSERT_TRUE(append_candidate_verdict(
      path, {progmodel::AllocFn::kMalloc, 0xbeef, kOverflow,
             CandidateVerdict::kPromoted, "replay_validated", 900, ""}));

  const std::string contents = slurp(path);
  // Header written exactly once, by the first (file-creating) append.
  EXPECT_EQ(contents.find("version 1"), contents.rfind("version 1"));

  const auto parsed = load_candidate_journal(path);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->ok()) << parsed->reject_reason;
  ASSERT_EQ(parsed->candidates.size(), 1u);
  EXPECT_EQ(parsed->candidates[0].hits, 7u);
  ASSERT_EQ(parsed->verdicts.size(), 1u);
  EXPECT_EQ(parsed->verdicts[0].verdict, CandidateVerdict::kPromoted);
  std::remove(path.c_str());
}

TEST(CandidateJournal, AppendEmptyDeltaIsNoOpSuccess) {
  const std::string path = temp_journal_path("empty");
  std::remove(path.c_str());
  EXPECT_TRUE(append_candidate_journal(path, {}));
  EXPECT_FALSE(std::filesystem::exists(path));  // nothing written, no file
}

TEST(CandidateJournal, LoadMissingJournalIsNullopt) {
  EXPECT_FALSE(load_candidate_journal("/nonexistent/ht/journal.txt").has_value());
}

TEST(CandidateJournal, ConcurrentAppendsStayLineAtomic) {
  // 8 uncoordinated writer threads, 50 appends each, all through the
  // public API against one path (the fleet-shared-journal scenario). A
  // torn line would show up as a parse note; lost writes as a hit
  // shortfall.
  const std::string path = temp_journal_path("concurrent");
  std::remove(path.c_str());
  constexpr int kThreads = 8;
  constexpr int kAppendsPerThread = 50;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&path, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        const PatchCandidate delta{
            progmodel::AllocFn::kMalloc,
            /*ccid=*/static_cast<std::uint64_t>(t % 4),  // 4 distinct keys
            kOverflow, CandidateOrigin::kCanary, /*hits=*/1,
            /*first_seen_ns=*/static_cast<std::uint64_t>(t * 1000 + i + 1)};
        ASSERT_TRUE(append_candidate_journal(path, {delta}));
      }
    });
  }
  for (std::thread& w : writers) w.join();

  const auto parsed = load_candidate_journal(path);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->ok()) << parsed->reject_reason;
  EXPECT_TRUE(parsed->notes.empty())
      << "torn line detected: " << parsed->notes[0];
  std::uint64_t total_hits = 0;
  for (const PatchCandidate& c : parsed->candidates) total_hits += c.hits;
  EXPECT_EQ(total_hits, static_cast<std::uint64_t>(kThreads * kAppendsPerThread));
  EXPECT_EQ(parsed->candidates.size(), 4u);
  std::remove(path.c_str());
}

TEST(Promotion, ThresholdVerdictSkipAndMaskUnion) {
  CandidateParseResult journal;
  journal.candidates = {
      // Same {fn, ccid} from two origins: masks union, hits sum.
      {progmodel::AllocFn::kMalloc, 0x1, kOverflow, CandidateOrigin::kCanary,
       2, 100},
      {progmodel::AllocFn::kMalloc, 0x1, kUseAfterFree,
       CandidateOrigin::kUafReuse, 1, 50},
      // Below threshold.
      {progmodel::AllocFn::kCalloc, 0x2, kOverflow, CandidateOrigin::kCanary,
       1, 10},
      // Already judged (any verdict skips, including demoted).
      {progmodel::AllocFn::kMalloc, 0x3, kOverflow, CandidateOrigin::kCanary,
       9, 20},
  };
  journal.verdicts = {{progmodel::AllocFn::kMalloc, 0x3, kOverflow,
                       CandidateVerdict::kDemoted, "fp", 30, ""}};
  const std::vector<Patch> selected =
      select_promotable(journal, PromotionPolicy{/*min_hits=*/2});
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].ccid, 0x1u);
  EXPECT_EQ(selected[0].fn, progmodel::AllocFn::kMalloc);
  EXPECT_EQ(selected[0].vuln_mask, kOverflow | kUseAfterFree);
}

TEST(Promotion, OutputInFirstSeenOrder) {
  CandidateParseResult journal;
  journal.candidates = {
      {progmodel::AllocFn::kMalloc, 0xa, kOverflow, CandidateOrigin::kCanary,
       1, 300},
      {progmodel::AllocFn::kMalloc, 0xb, kOverflow, CandidateOrigin::kCanary,
       1, 100},
  };
  const std::vector<Patch> selected =
      select_promotable(journal, PromotionPolicy{});
  ASSERT_EQ(selected.size(), 2u);
  // First-seen order == journal fold order, not sorted by timestamp.
  EXPECT_EQ(selected[0].ccid, 0xau);
  EXPECT_EQ(selected[1].ccid, 0xbu);
}

TEST(Promotion, LatestVerdictWins) {
  const std::vector<VerdictRecord> verdicts = {
      {progmodel::AllocFn::kMalloc, 0x1, kOverflow, CandidateVerdict::kPromoted,
       "replay_validated", 10, ""},
      {progmodel::AllocFn::kMalloc, 0x1, kOverflow, CandidateVerdict::kDemoted,
       "guard_budget_pressure", 20, ""},
  };
  const auto latest =
      latest_verdict(verdicts, progmodel::AllocFn::kMalloc, 0x1);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, CandidateVerdict::kDemoted);
  EXPECT_FALSE(
      latest_verdict(verdicts, progmodel::AllocFn::kCalloc, 0x1).has_value());
}

TEST(Promotion, GroupsCarryOriginBits) {
  CandidateParseResult journal;
  journal.candidates = {
      // Pure static evidence: zero-trap promotion path.
      {progmodel::AllocFn::kMalloc, 0x1, kOverflow, CandidateOrigin::kStatic,
       1, 100},
      // Mixed: a trap plus a static finding for the same context.
      {progmodel::AllocFn::kMalloc, 0x2, kOverflow, CandidateOrigin::kStatic,
       1, 200},
      {progmodel::AllocFn::kMalloc, 0x2, kOverflow, CandidateOrigin::kGuardTrap,
       3, 150},
  };
  const auto groups = select_promotable_groups(journal, PromotionPolicy{});
  ASSERT_EQ(groups.size(), 2u);

  EXPECT_EQ(groups[0].patch.ccid, 0x1u);
  EXPECT_TRUE(groups[0].has_origin(CandidateOrigin::kStatic));
  EXPECT_TRUE(groups[0].static_only());

  EXPECT_EQ(groups[1].patch.ccid, 0x2u);
  EXPECT_TRUE(groups[1].has_origin(CandidateOrigin::kStatic));
  EXPECT_TRUE(groups[1].has_origin(CandidateOrigin::kGuardTrap));
  EXPECT_FALSE(groups[1].static_only());
  EXPECT_EQ(groups[1].hits, 4u);
  EXPECT_EQ(groups[1].first_seen_ns, 150u);  // min across origins
}

TEST(CandidateJournal, VerdictOriginTokenRoundTrip) {
  const VerdictRecord with_origin{progmodel::AllocFn::kMalloc, 0x9, kOverflow,
                                  CandidateVerdict::kPromoted,
                                  "replay_validated", 42, "static"};
  const std::string line = serialize_verdict_line(with_origin);
  EXPECT_NE(line.find("origin=static"), std::string::npos);
  const auto parsed = parse_candidate_journal("version 1\n" + line);
  ASSERT_TRUE(parsed.ok()) << parsed.reject_reason;
  ASSERT_EQ(parsed.verdicts.size(), 1u);
  EXPECT_EQ(parsed.verdicts[0], with_origin);

  // Legacy 7-field verdict lines parse with an empty origin token.
  const VerdictRecord legacy{progmodel::AllocFn::kMalloc, 0x9, kOverflow,
                             CandidateVerdict::kPromoted, "replay_validated",
                             42, ""};
  const std::string legacy_line = serialize_verdict_line(legacy);
  EXPECT_EQ(legacy_line.find("origin="), std::string::npos);
  const auto reparsed = parse_candidate_journal("version 1\n" + legacy_line);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed.verdicts.size(), 1u);
  EXPECT_TRUE(reparsed.verdicts[0].origin_token.empty());
}

TEST(CandidateJournal, VerdictOriginTokenWhitespaceSanitized) {
  const VerdictRecord verdict{progmodel::AllocFn::kMalloc, 0x9, kOverflow,
                              CandidateVerdict::kPromoted, "ok", 1,
                              "static and trap"};
  const std::string line = serialize_verdict_line(verdict);
  EXPECT_NE(line.find("origin=static-and-trap"), std::string::npos);
}

TEST(CandidateTable, RecordSnapshotAndDrain) {
  CandidateTable table;
  EXPECT_TRUE(table.record(progmodel::AllocFn::kMalloc, 0xbeef, kOverflow,
                           CandidateOrigin::kCanary, 100));
  EXPECT_TRUE(table.record(progmodel::AllocFn::kMalloc, 0xbeef, kOverflow,
                           CandidateOrigin::kCanary, 200));

  const auto snap = table.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].hits, 2u);            // snapshot: absolute totals
  EXPECT_EQ(snap[0].first_seen_ns, 100u);  // first observation's timestamp

  auto deltas = table.drain_deltas();
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].hits, 2u);
  EXPECT_TRUE(table.drain_deltas().empty());  // nothing new since last drain

  EXPECT_TRUE(table.record(progmodel::AllocFn::kMalloc, 0xbeef, kOverflow,
                           CandidateOrigin::kCanary, 300));
  deltas = table.drain_deltas();
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].hits, 1u);  // only the post-drain hit
  EXPECT_EQ(table.snapshot()[0].hits, 3u);  // totals unaffected by draining
}

TEST(CandidateTable, DistinctKeysGetDistinctSlots) {
  CandidateTable table;
  EXPECT_TRUE(table.record(progmodel::AllocFn::kMalloc, 0x1, kOverflow,
                           CandidateOrigin::kCanary, 1));
  EXPECT_TRUE(table.record(progmodel::AllocFn::kMalloc, 0x1, kUseAfterFree,
                           CandidateOrigin::kUafReuse, 2));
  EXPECT_TRUE(table.record(progmodel::AllocFn::kCalloc, 0x1, kOverflow,
                           CandidateOrigin::kCanary, 3));
  EXPECT_EQ(table.snapshot().size(), 3u);
}

TEST(CandidateTable, OverflowCountsDroppedObservations) {
  CandidateTable table;
  // More distinct keys than slots: the surplus is dropped and counted.
  std::size_t recorded = 0;
  for (std::uint64_t ccid = 1; ccid <= CandidateTable::kSlots + 10; ++ccid) {
    if (table.record(progmodel::AllocFn::kMalloc, ccid, kOverflow,
                     CandidateOrigin::kCanary, ccid)) {
      ++recorded;
    }
  }
  EXPECT_EQ(recorded, table.snapshot().size());
  EXPECT_GE(table.overflow(), 10u);
  // A known key still records even when the table is full.
  EXPECT_TRUE(table.record(progmodel::AllocFn::kMalloc, 1, kOverflow,
                           CandidateOrigin::kCanary, 999));
}

}  // namespace
}  // namespace ht::patch
