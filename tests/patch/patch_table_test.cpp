#include "patch/patch_table.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace ht::patch {
namespace {

using progmodel::AllocFn;

TEST(PatchTable, EmptyTableReturnsZeroForEverything) {
  const PatchTable table({});
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.lookup(AllocFn::kMalloc, 0), 0u);
  EXPECT_EQ(table.lookup(AllocFn::kCalloc, 12345), 0u);
}

TEST(PatchTable, FindsInsertedPatches) {
  const PatchTable table({
      {AllocFn::kMalloc, 100, kOverflow},
      {AllocFn::kCalloc, 200, kUseAfterFree | kUninitRead},
  });
  EXPECT_EQ(table.patch_count(), 2u);
  EXPECT_EQ(table.lookup(AllocFn::kMalloc, 100), kOverflow);
  EXPECT_EQ(table.lookup(AllocFn::kCalloc, 200), kUseAfterFree | kUninitRead);
  EXPECT_EQ(table.lookup(AllocFn::kMalloc, 101), 0u);
  EXPECT_EQ(table.lookup(AllocFn::kCalloc, 100), 0u);  // fn part of the key
}

TEST(PatchTable, KeyIncludesAllocationFunction) {
  // Incremental encoding relies on {FUN, CCID} being the key (§IV-C).
  const PatchTable table({
      {AllocFn::kMalloc, 55, kOverflow},
      {AllocFn::kMemalign, 55, kUninitRead},
  });
  EXPECT_EQ(table.lookup(AllocFn::kMalloc, 55), kOverflow);
  EXPECT_EQ(table.lookup(AllocFn::kMemalign, 55), kUninitRead);
  EXPECT_EQ(table.lookup(AllocFn::kRealloc, 55), 0u);
}

TEST(PatchTable, DuplicateKeysMergeMasks) {
  const PatchTable table({
      {AllocFn::kMalloc, 7, kOverflow},
      {AllocFn::kMalloc, 7, kUninitRead},
  });
  EXPECT_EQ(table.patch_count(), 1u);
  EXPECT_EQ(table.lookup(AllocFn::kMalloc, 7), kOverflow | kUninitRead);
}

TEST(PatchTable, CcidZeroIsAValidKey) {
  const PatchTable table({{AllocFn::kMalloc, 0, kOverflow}});
  EXPECT_EQ(table.lookup(AllocFn::kMalloc, 0), kOverflow);
}

TEST(PatchTable, ManyEntriesAllRetrievable) {
  std::vector<Patch> patches;
  support::Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    patches.push_back(Patch{
        static_cast<AllocFn>(rng.below(5)), rng.next(),
        static_cast<std::uint8_t>(1 + rng.below(7))});
  }
  const PatchTable table(patches);
  for (const Patch& p : patches) {
    EXPECT_NE(table.lookup(p.fn, p.ccid) & p.vuln_mask, 0u);
  }
  // Load factor stays low for O(1) probing.
  EXPECT_GE(table.bucket_count(), patches.size() * 4);
}

TEST(PatchTable, AbsentKeysAmongManyEntries) {
  std::vector<Patch> patches;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    patches.push_back(Patch{AllocFn::kMalloc, i * 2, kOverflow});
  }
  const PatchTable table(patches);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.lookup(AllocFn::kMalloc, i * 2 + 1), 0u);
  }
}

TEST(PatchTable, FrozenTableStillReadable) {
  const PatchTable table({{AllocFn::kMalloc, 77, kOverflow}}, /*freeze=*/true);
  EXPECT_TRUE(table.frozen());
  EXPECT_EQ(table.lookup(AllocFn::kMalloc, 77), kOverflow);
  EXPECT_EQ(table.lookup(AllocFn::kMalloc, 78), 0u);
}

TEST(PatchTable, FrozenPagesRejectWrites) {
  const PatchTable table({{AllocFn::kMalloc, 77, kOverflow}}, /*freeze=*/true);
  // Writing through the table's storage must fault. Verify via fork so the
  // SIGSEGV does not kill the test runner.
  EXPECT_DEATH(
      {
        // Probe a plausible interior pointer: lookup() gives us no pointer,
        // so recreate the condition by const_cast-ing the object and
        // scribbling over its first bucket through its own storage.
        auto* mutable_table = const_cast<PatchTable*>(&table);
        auto** slots = reinterpret_cast<char**>(mutable_table);
        (*slots)[0] = 42;  // first member is the slot pointer
      },
      "");
}

TEST(PatchTable, MoveTransfersOwnership) {
  PatchTable a({{AllocFn::kMalloc, 5, kOverflow}}, /*freeze=*/true);
  PatchTable b = std::move(a);
  EXPECT_EQ(b.lookup(AllocFn::kMalloc, 5), kOverflow);
  EXPECT_TRUE(b.frozen());
  PatchTable c({});
  c = std::move(b);
  EXPECT_EQ(c.lookup(AllocFn::kMalloc, 5), kOverflow);
}

}  // namespace
}  // namespace ht::patch
