#include "patch/patch.hpp"

#include <gtest/gtest.h>

namespace ht::patch {
namespace {

TEST(VulnMask, ToStringSingleBits) {
  EXPECT_EQ(vuln_mask_to_string(kOverflow), "OVERFLOW");
  EXPECT_EQ(vuln_mask_to_string(kUseAfterFree), "UAF");
  EXPECT_EQ(vuln_mask_to_string(kUninitRead), "UNINIT");
}

TEST(VulnMask, ToStringCombined) {
  EXPECT_EQ(vuln_mask_to_string(kOverflow | kUninitRead), "OVERFLOW|UNINIT");
  EXPECT_EQ(vuln_mask_to_string(kAllVulnBits), "OVERFLOW|UAF|UNINIT");
  EXPECT_EQ(vuln_mask_to_string(0), "NONE");
}

TEST(VulnMask, FromStringRoundTrip) {
  for (std::uint8_t mask = 0; mask <= kAllVulnBits; ++mask) {
    std::uint8_t parsed = 0;
    ASSERT_TRUE(vuln_mask_from_string(vuln_mask_to_string(mask), parsed))
        << static_cast<int>(mask);
    EXPECT_EQ(parsed, mask);
  }
}

TEST(VulnMask, FromStringRejectsUnknownToken) {
  std::uint8_t mask = 0;
  EXPECT_FALSE(vuln_mask_from_string("OVERFLOW|BOGUS", mask));
  EXPECT_FALSE(vuln_mask_from_string("", mask));
  EXPECT_FALSE(vuln_mask_from_string("|", mask));
}

TEST(VulnMask, FromStringTrimsTokens) {
  std::uint8_t mask = 0;
  EXPECT_TRUE(vuln_mask_from_string(" OVERFLOW | UAF ", mask));
  EXPECT_EQ(mask, kOverflow | kUseAfterFree);
}

TEST(Patch, EqualityIsFieldwise) {
  const Patch a{progmodel::AllocFn::kMalloc, 42, kOverflow};
  Patch b = a;
  EXPECT_EQ(a, b);
  b.ccid = 43;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ht::patch
