// StaticHintSet tests (docs/FORMATS.md §9): the PROVEN-SAFE contexts
// htlint exports for runtime patch-lookup elision. The set is hot-path
// data — contains() is probed on every allocation when hints are loaded —
// so the hash index is tested against the sorted-vector source of truth.
#include "patch/static_hints.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

namespace ht::patch {
namespace {

using Hint = StaticHintSet::Hint;

std::string temp_hints_path(const char* tag) {
  std::ostringstream os;
  os << std::filesystem::temp_directory_path().string() << "/ht_hints_" << tag
     << "_" << ::getpid() << ".txt";
  return os.str();
}

TEST(StaticHintSetTest, EmptySetContainsNothing) {
  const StaticHintSet hints;
  EXPECT_TRUE(hints.empty());
  EXPECT_FALSE(hints.contains(progmodel::AllocFn::kMalloc, 0));
  EXPECT_FALSE(hints.contains(progmodel::AllocFn::kMalloc, 0xdead));
}

TEST(StaticHintSetTest, SortsAndDeduplicates) {
  const StaticHintSet hints({
      {progmodel::AllocFn::kCalloc, 9},
      {progmodel::AllocFn::kMalloc, 7},
      {progmodel::AllocFn::kMalloc, 7},  // duplicate
      {progmodel::AllocFn::kMalloc, 3},
  });
  EXPECT_EQ(hints.size(), 3u);
  ASSERT_EQ(hints.hints().size(), 3u);
  EXPECT_EQ(hints.hints()[0], (Hint{progmodel::AllocFn::kMalloc, 3}));
  EXPECT_EQ(hints.hints()[1], (Hint{progmodel::AllocFn::kMalloc, 7}));
  EXPECT_EQ(hints.hints()[2], (Hint{progmodel::AllocFn::kCalloc, 9}));
}

TEST(StaticHintSetTest, HashIndexMatchesVectorTruth) {
  // Dense CCIDs plus adversarial high bits: the open-addressing probe must
  // agree with membership in the sorted vector for hits and misses alike.
  std::vector<Hint> hints;
  for (std::uint64_t c = 0; c < 256; c += 2) {
    hints.push_back({progmodel::AllocFn::kMalloc, c});
    hints.push_back({progmodel::AllocFn::kRealloc, c << 32});
  }
  const StaticHintSet set(std::move(hints));
  for (std::uint64_t c = 0; c < 256; ++c) {
    EXPECT_EQ(set.contains(progmodel::AllocFn::kMalloc, c), c % 2 == 0) << c;
    EXPECT_EQ(set.contains(progmodel::AllocFn::kRealloc, c << 32), c % 2 == 0)
        << c;
    // Same CCID, different allocation function: distinct key.
    EXPECT_FALSE(set.contains(progmodel::AllocFn::kCalloc, c)) << c;
  }
}

TEST(StaticHintSetTest, SerializeParsesBackByteStable) {
  const StaticHintSet set({
      {progmodel::AllocFn::kMalloc, 0x123},
      {progmodel::AllocFn::kCalloc, 0xabcdef0123456789},
  });
  const std::string text = set.serialize();
  const auto parsed = parse_static_hints(text);
  ASSERT_TRUE(parsed.ok()) << parsed.reject_reason;
  EXPECT_TRUE(parsed.notes.empty());
  EXPECT_EQ(parsed.hints.hints(), set.hints());
  // Round trip again: serialization of a parse is byte-identical.
  EXPECT_EQ(parsed.hints.serialize(), text);
}

TEST(StaticHintParseTest, UnsupportedVersionRejects) {
  const auto parsed = parse_static_hints("version 2\nsafe malloc 0x1\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.reject_reason.find("version"), std::string::npos);
}

TEST(StaticHintParseTest, HintsWithoutVersionReject) {
  const auto parsed = parse_static_hints("safe malloc 0x1\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(StaticHintParseTest, EmptyAndCommentOnlyFilesAreOkAndEmpty) {
  EXPECT_TRUE(parse_static_hints("").ok());
  const auto parsed = parse_static_hints("# just a comment\n\n");
  EXPECT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.hints.empty());
  EXPECT_TRUE(parsed.notes.empty());
}

TEST(StaticHintParseTest, MalformedLinesNoteAndSkip) {
  const auto parsed = parse_static_hints(
      "version 1\n"
      "safe malloc 0x10\n"
      "safe malloc\n"            // missing ccid
      "safe mallocx 0x11\n"      // unknown fn
      "safe malloc zzz\n"        // bad ccid
      "bogus directive here\n"   // unknown directive
      "safe calloc 0x12\n");
  ASSERT_TRUE(parsed.ok()) << parsed.reject_reason;
  EXPECT_EQ(parsed.hints.size(), 2u);
  EXPECT_TRUE(parsed.hints.contains(progmodel::AllocFn::kMalloc, 0x10));
  EXPECT_TRUE(parsed.hints.contains(progmodel::AllocFn::kCalloc, 0x12));
  EXPECT_EQ(parsed.notes.size(), 4u);
}

TEST(StaticHintParseTest, NotesAreCapped) {
  std::string text = "version 1\n";
  for (int i = 0; i < 100; ++i) text += "bogus\n";
  const auto parsed = parse_static_hints(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_LE(parsed.notes.size(), support::kParseNoteCap + 1);  // +1 summary
}

TEST(StaticHintFileTest, SaveLoadRoundTrip) {
  const std::string path = temp_hints_path("roundtrip");
  const StaticHintSet set({{progmodel::AllocFn::kMemalign, 0x777}});
  ASSERT_TRUE(save_static_hints(path, set));
  const auto loaded = load_static_hints(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(loaded->ok());
  EXPECT_EQ(loaded->hints.hints(), set.hints());
  std::remove(path.c_str());
}

TEST(StaticHintFileTest, MissingFileIsNullopt) {
  EXPECT_FALSE(load_static_hints("/nonexistent/ht_hints.txt").has_value());
}

}  // namespace
}  // namespace ht::patch
