#include "patch/decision_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

namespace ht::patch {
namespace {

using progmodel::AllocFn;

TEST(DecisionCache, MatchesTableLookupExactly) {
  const PatchTable table({
      Patch{AllocFn::kMalloc, 0x10, kOverflow},
      Patch{AllocFn::kCalloc, 0x20, kUninitRead},
      Patch{AllocFn::kMalloc, 0x30, kUseAfterFree | kOverflow},
  });
  DecisionCache cache;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t ccid = 0; ccid < 0x40; ++ccid) {
      for (AllocFn fn : {AllocFn::kMalloc, AllocFn::kCalloc, AllocFn::kRealloc}) {
        EXPECT_EQ(cache.lookup(table, fn, ccid), table.lookup(fn, ccid))
            << "fn=" << static_cast<int>(fn) << " ccid=" << ccid;
      }
    }
  }
}

TEST(DecisionCache, RepeatContextsHit) {
  const PatchTable table({Patch{AllocFn::kMalloc, 0x7, kOverflow}});
  DecisionCache cache;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cache.lookup(table, AllocFn::kMalloc, 0x7), kOverflow);
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 99u);
}

TEST(DecisionCache, FunctionIsPartOfTheKey) {
  // Incremental encoding keys defenses on {FUN, CCID}; the cache must too.
  const PatchTable table({Patch{AllocFn::kMalloc, 0x9, kOverflow}});
  DecisionCache cache;
  EXPECT_EQ(cache.lookup(table, AllocFn::kMalloc, 0x9), kOverflow);
  EXPECT_EQ(cache.lookup(table, AllocFn::kCalloc, 0x9), 0u);
}

TEST(DecisionCache, NewTableAtRecycledAddressNeverServesStaleMask) {
  DecisionCache cache;
  auto first = std::make_unique<PatchTable>(
      std::vector<Patch>{Patch{AllocFn::kMalloc, 0x5, kOverflow}});
  EXPECT_EQ(cache.lookup(*first, AllocFn::kMalloc, 0x5), kOverflow);
  // Destroy and rebuild until the allocator recycles the address — usually
  // immediate with glibc tcache, but don't depend on it: any address works
  // because the cache keys on the generation, not the pointer.
  first.reset();
  const PatchTable second({Patch{AllocFn::kMalloc, 0x5, kUninitRead}});
  EXPECT_EQ(cache.lookup(second, AllocFn::kMalloc, 0x5), kUninitRead);
  const PatchTable empty({});
  EXPECT_EQ(cache.lookup(empty, AllocFn::kMalloc, 0x5), 0u);
}

TEST(DecisionCache, TwoLiveTablesCoexist) {
  const PatchTable a({Patch{AllocFn::kMalloc, 0x11, kOverflow}});
  const PatchTable b({Patch{AllocFn::kMalloc, 0x11, kUseAfterFree}});
  DecisionCache cache;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cache.lookup(a, AllocFn::kMalloc, 0x11), kOverflow);
    EXPECT_EQ(cache.lookup(b, AllocFn::kMalloc, 0x11), kUseAfterFree);
  }
}

TEST(DecisionCache, GenerationsAreUniqueAndNonZero) {
  const PatchTable a({});
  const PatchTable b({});
  EXPECT_NE(a.generation(), 0u);
  EXPECT_NE(b.generation(), 0u);
  EXPECT_NE(a.generation(), b.generation());
}

TEST(DecisionCache, MoveCarriesGeneration) {
  PatchTable a({Patch{AllocFn::kMalloc, 0x3, kOverflow}});
  const std::uint64_t generation = a.generation();
  const PatchTable b(std::move(a));
  EXPECT_EQ(b.generation(), generation);
  EXPECT_EQ(a.generation(), 0u);  // NOLINT(bugprone-use-after-move): spec'd
}

TEST(DecisionCache, PerThreadInstancesAreIndependent) {
  const PatchTable table({Patch{AllocFn::kMalloc, 0x42, kOverflow}});
  DecisionCache& mine = DecisionCache::for_current_thread();
  mine.clear();
  (void)mine.lookup(table, AllocFn::kMalloc, 0x42);
  const std::uint64_t my_misses = mine.misses();
  std::thread other([&] {
    DecisionCache& theirs = DecisionCache::for_current_thread();
    EXPECT_NE(&theirs, &mine);
    theirs.clear();
    EXPECT_EQ(theirs.lookup(table, AllocFn::kMalloc, 0x42), kOverflow);
    EXPECT_EQ(theirs.misses(), 1u);
  });
  other.join();
  EXPECT_EQ(mine.misses(), my_misses);  // other thread never touched ours
  mine.clear();
}

TEST(DecisionCache, ClearForgetsEverything) {
  const PatchTable table({Patch{AllocFn::kMalloc, 0x8, kOverflow}});
  DecisionCache cache;
  (void)cache.lookup(table, AllocFn::kMalloc, 0x8);
  (void)cache.lookup(table, AllocFn::kMalloc, 0x8);
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  (void)cache.lookup(table, AllocFn::kMalloc, 0x8);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace ht::patch
