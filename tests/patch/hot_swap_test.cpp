// Tests for PatchTableSwap (patch/hot_swap.hpp): atomic generation-bumped
// table swap with parse-validate-then-commit semantics. The property under
// test is the rollback contract — a malformed or unreadable config file
// must leave the prior table serving, observable both through the swap and
// through an allocator that resolves lookups through it mid-reload.
#include "patch/hot_swap.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "patch/config_file.hpp"
#include "patch/patch.hpp"
#include "patch/patch_table.hpp"
#include "runtime/guarded_allocator.hpp"
#include "support/faultpoint.hpp"

namespace ht::patch {
namespace {

using progmodel::AllocFn;

// OVERFLOW|UNINIT: without a live guard page the engine strips the
// OVERFLOW bit from applied_mask, so the UNINIT bit is the observable that
// survives the canary-only configuration the allocator tests use.
std::vector<Patch> one_patch(std::uint64_t ccid) {
  return {Patch{AllocFn::kMalloc, ccid,
                static_cast<std::uint8_t>(kOverflow | kUninitRead)}};
}

/// Writes `text` to a temp file and returns its path.
std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(PatchTableSwapTest, StartsServingInitialTable) {
  PatchTableSwap swap(PatchTable(one_patch(7), /*freeze=*/true));
  ASSERT_NE(swap.serving(), nullptr);
  EXPECT_EQ(swap.serving()->patch_count(), 1u);
  EXPECT_EQ(swap.applied_reloads(), 0u);
  EXPECT_EQ(swap.rejected_reloads(), 0u);
}

TEST(PatchTableSwapTest, DefaultConstructedServesNothing) {
  PatchTableSwap swap;
  EXPECT_EQ(swap.serving(), nullptr);
}

TEST(PatchTableSwapTest, ValidReloadBumpsGeneration) {
  PatchTableSwap swap(PatchTable(one_patch(7), /*freeze=*/true));
  const std::uint64_t gen0 = swap.serving()->generation();

  const ReloadResult result = swap.reload_from_text(
      "version 1\npatch malloc 8 OVERFLOW\npatch calloc 9 UAF\n");
  EXPECT_TRUE(result.applied);
  EXPECT_EQ(result.patch_count, 2u);
  EXPECT_NE(result.generation, gen0);
  EXPECT_EQ(swap.serving()->generation(), result.generation);
  EXPECT_EQ(swap.serving()->patch_count(), 2u);
  EXPECT_EQ(swap.applied_reloads(), 1u);
}

TEST(PatchTableSwapTest, MalformedTextRejectedPriorTableServes) {
  PatchTableSwap swap(PatchTable(one_patch(7), /*freeze=*/true));
  const PatchTable* before = swap.serving();
  const std::uint64_t gen0 = before->generation();

  // The lenient startup parser would keep the valid line; the reload path
  // is strict — ANY error rejects the whole file (a torn write must not
  // half-apply).
  const ReloadResult result = swap.reload_from_text(
      "version 1\npatch malloc 8 OVERFLOW\npatch garbage here\n");
  EXPECT_FALSE(result.applied);
  EXPECT_FALSE(result.errors.empty());
  EXPECT_EQ(result.generation, gen0);  // reports the still-serving table
  EXPECT_EQ(swap.serving(), before);
  EXPECT_EQ(swap.serving()->patch_count(), 1u);
  EXPECT_EQ(swap.rejected_reloads(), 1u);
  EXPECT_EQ(swap.applied_reloads(), 0u);
}

TEST(PatchTableSwapTest, MissingFileRejected) {
  PatchTableSwap swap(PatchTable(one_patch(7), /*freeze=*/true));
  const ReloadResult result =
      swap.reload_from_file(::testing::TempDir() + "ht_no_such_file.cfg");
  EXPECT_FALSE(result.applied);
  EXPECT_FALSE(result.errors.empty());
  EXPECT_EQ(swap.serving()->patch_count(), 1u);
}

TEST(PatchTableSwapTest, FileReloadRoundTrip) {
  PatchTableSwap swap(PatchTable(one_patch(7), /*freeze=*/true));
  const std::string path = write_temp(
      "ht_hot_swap_valid.cfg", serialize_config(one_patch(0x1234)));
  const ReloadResult result = swap.reload_from_file(path);
  EXPECT_TRUE(result.applied);
  ASSERT_EQ(swap.serving()->patch_count(), 1u);
  EXPECT_NE(swap.serving()->lookup(AllocFn::kMalloc, 0x1234), 0u);
  std::remove(path.c_str());
}

TEST(PatchTableSwapTest, PatchParseFaultRejectsReload) {
  ht::support::disarm_all_faults();
  PatchTableSwap swap(PatchTable(one_patch(7), /*freeze=*/true));
  ht::support::FaultSpec spec;
  spec.mode = ht::support::FaultSpec::Mode::kAlways;
  ht::support::arm_fault(ht::support::FaultPoint::kPatchParse, spec);
  const ReloadResult result =
      swap.reload_from_text("version 1\npatch malloc 8 OVERFLOW\n");
  ht::support::disarm_all_faults();
  EXPECT_FALSE(result.applied);
  EXPECT_EQ(swap.serving()->patch_count(), 1u);
  EXPECT_EQ(swap.rejected_reloads(), 1u);
}

// The acceptance-criteria test: an allocator that resolves patch lookups
// through the swap keeps allocating correctly while a reload (valid, then
// corrupt) happens, and a corrupt reload leaves the prior table's defenses
// in force.
TEST(PatchTableSwapTest, AllocatorThroughSwapSurvivesReloads) {
  constexpr std::uint64_t kCcid = 0xabc;
  PatchTableSwap swap(PatchTable(one_patch(kCcid), /*freeze=*/true));
  runtime::GuardedAllocatorConfig config;
  config.use_guard_pages = false;  // canary defense keeps the test cheap
  config.use_canaries = true;
  runtime::GuardedAllocator allocator(swap, config);

  void* enhanced = allocator.malloc(64, kCcid);
  ASSERT_NE(enhanced, nullptr);
  EXPECT_NE(allocator.applied_mask(enhanced), 0u);
  allocator.free(enhanced);

  // Valid reload: the patched CCID changes.
  ASSERT_TRUE(
      swap.reload_from_text("version 1\npatch malloc 0xdef OVERFLOW|UNINIT\n")
          .applied);
  void* old_ccid = allocator.malloc(64, kCcid);
  void* new_ccid = allocator.malloc(64, 0xdef);
  ASSERT_NE(old_ccid, nullptr);
  ASSERT_NE(new_ccid, nullptr);
  EXPECT_EQ(allocator.applied_mask(old_ccid), 0u);
  EXPECT_NE(allocator.applied_mask(new_ccid), 0u);
  allocator.free(old_ccid);
  allocator.free(new_ccid);

  // Corrupt reload: rejected, the 0xdef table keeps serving.
  EXPECT_FALSE(swap.reload_from_text("torn garbage \x01\x02").applied);
  void* still_patched = allocator.malloc(64, 0xdef);
  ASSERT_NE(still_patched, nullptr);
  EXPECT_NE(allocator.applied_mask(still_patched), 0u);
  allocator.free(still_patched);
}

// TSan-facing: allocations race the reload on another thread; the acquire/
// release pair on serving_ is the synchronization under test.
TEST(PatchTableSwapTest, ConcurrentAllocationDuringReload) {
  constexpr std::uint64_t kCcid = 0x77;
  PatchTableSwap swap(PatchTable(one_patch(kCcid), /*freeze=*/true));
  runtime::GuardedAllocatorConfig config;
  config.use_guard_pages = false;
  config.use_canaries = true;
  runtime::GuardedAllocator allocator(swap, config);

  std::atomic<bool> stop{false};
  std::thread reloader([&] {
    for (int i = 0; i < 100; ++i) {
      (void)swap.reload_from_text(i % 2 == 0
                                      ? "version 1\npatch malloc 0x77 OVERFLOW\n"
                                      : "version 1\npatch malloc 0x99 UAF\n");
    }
    stop.store(true, std::memory_order_release);
  });
  // On a slow host the reloader can finish before this loop runs once, so
  // also require at least one allocation to keep the race meaningful.
  std::uint64_t allocs = 0;
  while (!stop.load(std::memory_order_acquire) || allocs == 0) {
    void* p = allocator.malloc(32, kCcid);
    ASSERT_NE(p, nullptr);
    allocator.free(p);
    ++allocs;
  }
  reloader.join();
  EXPECT_GT(allocs, 0u);
  EXPECT_EQ(swap.applied_reloads(), 100u);
}

}  // namespace
}  // namespace ht::patch
