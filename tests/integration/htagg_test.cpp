// Exec-based tests for htagg: merge real telemetry dumps from two
// independent allocator runs and verify the fleet sums are EXACT and the
// Prometheus exposition passes the structural linter.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "patch/patch_table.hpp"
#include "runtime/guarded_allocator.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/telemetry_agg.hpp"

namespace {

const char* kHtagg = HT_HTAGG_BIN;

int run(const std::string& args) {
  const int status = std::system((std::string(kHtagg) + " " + args).c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string temp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Runs a patched allocator for `mallocs` allocations at the patched CCID
/// and writes its telemetry dump; returns the snapshot for expected-sum
/// computation.
ht::runtime::TelemetrySnapshot make_dump(const std::string& path, int mallocs) {
  const ht::patch::PatchTable table(
      {ht::patch::Patch{ht::progmodel::AllocFn::kMalloc, 42,
                        ht::patch::kUninitRead}},
      /*freeze=*/true);
  ht::runtime::GuardedAllocatorConfig config;
  config.telemetry.events = true;
  ht::runtime::GuardedAllocator allocator(&table, config);
  for (int i = 0; i < mallocs; ++i) {
    void* p = allocator.malloc(64, 42);
    EXPECT_NE(p, nullptr);
    allocator.free(p);
  }
  const auto snap = allocator.telemetry_snapshot();
  std::ofstream out(path);
  out << ht::runtime::render_telemetry(snap);
  return snap;
}

TEST(Htagg, UsageWithoutArgs) { EXPECT_EQ(run("2> /dev/null"), 1); }

TEST(Htagg, MissingDumpExitsThree) {
  EXPECT_EQ(run("/nonexistent.dump 2> /dev/null"), 3);
}

TEST(Htagg, UnknownFlagExitsOne) {
  EXPECT_EQ(run("--bogus 2> /dev/null"), 1);
}

TEST(Htagg, MergesTwoDumpsWithExactSums) {
  const std::string a = temp_file("htagg_a.dump");
  const std::string b = temp_file("htagg_b.dump");
  const std::string out = temp_file("htagg_out.txt");
  const auto snap_a = make_dump(a, 10);
  const auto snap_b = make_dump(b, 25);

  ASSERT_EQ(run(a + " " + b + " --format both --out " + out), 0);
  const std::string merged = read_file(out);

  // Exact sums of the two dumps' counters, in both JSON and Prometheus.
  const auto sum = [&](std::uint64_t ht::runtime::AllocatorStats::* f) {
    return snap_a.totals.*f + snap_b.totals.*f;
  };
  EXPECT_NE(merged.find("\"processes\": 2"), std::string::npos);
  EXPECT_NE(merged.find("\"interceptions\": " +
                        std::to_string(sum(&ht::runtime::AllocatorStats::interceptions))),
            std::string::npos);
  EXPECT_NE(merged.find("\"enhanced\": " +
                        std::to_string(sum(&ht::runtime::AllocatorStats::enhanced))),
            std::string::npos);
  EXPECT_NE(merged.find("ht_interceptions_total " +
                        std::to_string(sum(&ht::runtime::AllocatorStats::interceptions))),
            std::string::npos);
  // The patched context's hits merged across both processes: both runs hit
  // {malloc, 0x2a}, so the merged row is the sum of per-run hits.
  std::uint64_t hits = 0;
  for (const auto& h : snap_a.patch_hits) hits += h.hits;
  for (const auto& h : snap_b.patch_hits) hits += h.hits;
  EXPECT_NE(merged.find("\"ccid\": \"0x000000000000002a\", \"hits\": " +
                        std::to_string(hits)),
            std::string::npos);
  EXPECT_NE(merged.find("ht_patch_hits_total{fn=\"malloc\",ccid=\"0x000000000000002a\"} " +
                        std::to_string(hits)),
            std::string::npos);
  // Per-process rows name both dumps.
  EXPECT_NE(merged.find(a), std::string::npos);
  EXPECT_NE(merged.find(b), std::string::npos);

  // The Prometheus section (everything from the first # HELP) passes the
  // structural linter — the ctest gate the exposition format is held to.
  const std::size_t prom_start = merged.find("# HELP");
  ASSERT_NE(prom_start, std::string::npos);
  const auto errors = ht::runtime::prometheus_lint(merged.substr(prom_start));
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);

  for (const auto& f : {a, b, out}) std::remove(f.c_str());
}

TEST(Htagg, TopKPrunesToHighestHitters) {
  const std::string a = temp_file("htagg_topk.dump");
  const std::string out = temp_file("htagg_topk.json");
  (void)make_dump(a, 5);
  ASSERT_EQ(run(a + " --top 1 --out " + out), 0);
  const std::string json = read_file(out);
  EXPECT_NE(json.find("\"patch_hits_shown\": 1"), std::string::npos);
  for (const auto& f : {a, out}) std::remove(f.c_str());
}

// Degrade-don't-die for the fleet rollup itself: bad inputs are skipped
// with a per-file note *in the output* (so a partial view is never
// mistaken for a complete one), and only a total lack of readable input
// is an error.
TEST(Htagg, SkipsBadInputsButMergesGoodOnes) {
  const std::string good = temp_file("htagg_good.dump");
  const std::string empty = temp_file("htagg_empty.dump");
  const std::string out = temp_file("htagg_skip.txt");
  (void)make_dump(good, 4);
  { std::ofstream touch(empty); }

  ASSERT_EQ(run(good + " /nonexistent_htagg_input.dump " + empty +
                " --format both --out " + out + " 2> /dev/null"),
            0);
  const std::string merged = read_file(out);
  // The good dump merged alone...
  EXPECT_NE(merged.find("\"processes\": 1"), std::string::npos);
  // ...and both casualties are named in the output with their reasons.
  EXPECT_NE(merged.find("\"reason\": \"unreadable\""), std::string::npos);
  EXPECT_NE(merged.find("\"reason\": \"empty\""), std::string::npos);
  EXPECT_NE(merged.find("/nonexistent_htagg_input.dump"), std::string::npos);
  EXPECT_NE(merged.find("ht_inputs_skipped 2"), std::string::npos);
  for (const auto& f : {good, empty, out}) std::remove(f.c_str());
}

TEST(Htagg, AllInputsBadExitsThree) {
  const std::string empty = temp_file("htagg_only_empty.dump");
  { std::ofstream touch(empty); }
  EXPECT_EQ(run(empty + " /nonexistent_htagg_input.dump 2> /dev/null"), 3);
  std::remove(empty.c_str());
}

TEST(Htagg, PrometheusOnlyOutputToStdout) {
  const std::string a = temp_file("htagg_prom.dump");
  const std::string out = temp_file("htagg_prom.txt");
  (void)make_dump(a, 3);
  ASSERT_EQ(run(a + " --format prom > " + out), 0);
  const std::string prom = read_file(out);
  EXPECT_EQ(prom.rfind("# HELP ht_processes", 0), 0u);  // starts with HELP
  EXPECT_EQ(prom.find("\"processes\""), std::string::npos);  // no JSON mixed in
  EXPECT_TRUE(ht::runtime::prometheus_lint(prom).empty());
  for (const auto& f : {a, out}) std::remove(f.c_str());
}

}  // namespace
