// End-to-end tests for the self-healing loop (docs/SELF_HEALING.md):
// real processes, real signals, the full trap -> synthesize -> validate ->
// promote -> hot-reload pipeline with no process restarted anywhere.
//
// The fleet is played by examples/fleet_victim.cpp (uninstrumented, like
// any LD_PRELOAD deployment target): process A runs the attack role in
// detect-and-survive canary mode and appends a candidate to the shared
// journal; htpromote replay-validates the candidate against
// examples/programs/fleet_overflow.htp and promotes it into the served
// patch file; process B — started BEFORE the attack, with an empty served
// file — picks the promoted patch up via SIGHUP and its telemetry starts
// showing patch hits. B was never restarted: that is fleet immunity.
#include <gtest/gtest.h>

#include <unistd.h>

// LD_PRELOAD-ing a sanitizer-instrumented malloc shim into a victim process
// fights the sanitizer runtime's own allocator interceptors (both want to
// own malloc; the loser dereferences uninitialized state). Under TSan/ASan
// builds the two subprocess-preload scenarios skip with this reason; the
// htpromote/htrun-driven scenarios still run fully sanitized, and the
// loop's in-process concurrency (candidate table, flusher, hot-reload) is
// covered by test_runtime in the same sanitizer matrix.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define HT_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define HT_SANITIZED_BUILD 1
#endif
#endif
#ifdef HT_SANITIZED_BUILD
#define HT_SKIP_IF_SANITIZED()                                              \
  GTEST_SKIP() << "LD_PRELOAD interposition is incompatible with the "      \
                  "sanitizer's allocator interceptors in the victim process"
#else
#define HT_SKIP_IF_SANITIZED() (void)0
#endif

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace {

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string shell_quote(const std::string& s) { return "'" + s + "'"; }

const char* kPreload = HT_PRELOAD_LIB;
const char* kFleetVictim = HT_FLEET_VICTIM_BIN;
const char* kHtpromote = HT_HTPROMOTE_BIN;
const char* kHtrun = HT_HTRUN_BIN;
const char* kFleetHtp = HT_FLEET_HTP;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ht_selfheal_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

std::string write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  out << body;
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// The attack role: overflow a 16-byte malloc by 8 bytes under the shim in
/// canary mode with a broad OVERFLOW detection patch. The overflow smashes
/// the canary word but not the CCID word behind it, the free detects it,
/// and the process appends one candidate to `journal` on exit.
int run_attack_role(const std::string& detect_cfg, const std::string& journal) {
  return run_command("HEAPTHERAPY_CONFIG=" + shell_quote(detect_cfg) +
                     " HEAPTHERAPY_DEFENSE=canary HEAPTHERAPY_CANDIDATES=" +
                     shell_quote(journal) + " LD_PRELOAD=" +
                     shell_quote(kPreload) + " " + shell_quote(kFleetVictim) +
                     " attack 16 24 > /dev/null");
}

TEST(SelfHealing, AttackProcessAppendsAttributedCandidate) {
  HT_SKIP_IF_SANITIZED();
  const std::string journal = temp_path("attack_journal.txt");
  const std::string detect_cfg = write_file(
      temp_path("detect.cfg"), "version 1\npatch malloc 0x0 OVERFLOW\n");
  std::remove(journal.c_str());

  // Detect-and-survive: the overflow is detected on free, yet the process
  // completes its work and exits 0.
  EXPECT_EQ(run_attack_role(detect_cfg, journal), 0);

  const std::string contents = slurp(journal);
  EXPECT_NE(contents.find("version 1"), std::string::npos) << contents;
  // CCID 0 (uninstrumented process), origin canary, true attribution.
  EXPECT_NE(contents.find(
                "candidate malloc 0x0000000000000000 OVERFLOW canary hits=1"),
            std::string::npos)
      << contents;
  std::remove(journal.c_str());
  std::remove(detect_cfg.c_str());
}

TEST(SelfHealing, FleetBecomesImmuneWithoutRestart) {
  HT_SKIP_IF_SANITIZED();
  const std::string journal = temp_path("fleet_journal.txt");
  const std::string served = temp_path("served.cfg");
  const std::string detect_cfg = write_file(
      temp_path("fleet_detect.cfg"), "version 1\npatch malloc 0x0 OVERFLOW\n");
  const std::string dump = temp_path("b_dump.txt");
  const std::string stop_file = temp_path("b_stop");
  const std::string pid_file = temp_path("b_pid");
  std::remove(journal.c_str());
  std::remove(dump.c_str());
  std::remove(stop_file.c_str());
  std::remove(pid_file.c_str());
  // B starts against an EMPTY served file: no protection yet.
  write_file(served, "version 1\n");

  // Process B: the long-running fleet member, hot-reload + telemetry on.
  int serve_exit = -1;
  std::thread serve_thread([&] {
    serve_exit = run_command(
        "HEAPTHERAPY_CONFIG=" + shell_quote(served) +
        " HEAPTHERAPY_RELOAD=1 HEAPTHERAPY_TELEMETRY=" + shell_quote(dump) +
        " HEAPTHERAPY_TELEMETRY_INTERVAL=100 LD_PRELOAD=" +
        shell_quote(kPreload) + " " + shell_quote(kFleetVictim) + " serve " +
        shell_quote(stop_file) + " > /dev/null & echo $! > " +
        shell_quote(pid_file) + "; wait $!");
  });
  // Wait for B to come up (its pid file appears).
  std::string b_pid;
  for (int i = 0; i < 200 && b_pid.empty(); ++i) {
    ::usleep(20 * 1000);
    std::istringstream is(slurp(pid_file));
    is >> b_pid;
  }
  ASSERT_FALSE(b_pid.empty()) << "serve process never started";

  // Process A: attacked, detects, survives, journals the candidate.
  ASSERT_EQ(run_attack_role(detect_cfg, journal), 0);
  ASSERT_NE(slurp(journal).find("candidate malloc"), std::string::npos);

  // htpromote: replay-validate and promote, then SIGHUP B.
  ASSERT_EQ(run_command(shell_quote(kHtpromote) + " run --candidates " +
                        shell_quote(journal) + " --served " +
                        shell_quote(served) + " --program " +
                        shell_quote(kFleetHtp) +
                        " --attack-input 16,24 --benign-input 16,16"
                        " --notify-pid " +
                        b_pid + " > /dev/null 2>&1"),
            0);
  EXPECT_NE(slurp(journal).find("verdict malloc 0x0000000000000000 OVERFLOW "
                                "promoted replay_validated"),
            std::string::npos);
  EXPECT_NE(slurp(served).find("patch malloc 0x0000000000000000 OVERFLOW"),
            std::string::npos);

  // B's telemetry must start showing patch hits — protection arrived while
  // the process kept serving, without a restart.
  bool immune = false;
  for (int i = 0; i < 250 && !immune; ++i) {
    ::usleep(20 * 1000);
    immune = slurp(dump).find("patchhit malloc 0x0000000000000000") !=
             std::string::npos;
  }
  write_file(stop_file, "");
  serve_thread.join();
  EXPECT_TRUE(immune) << slurp(dump);
  EXPECT_EQ(serve_exit, 0);  // B exited cleanly on the stop file, not a crash

  for (const std::string& p :
       {journal, served, detect_cfg, dump, stop_file, pid_file}) {
    std::remove(p.c_str());
  }
}

TEST(SelfHealing, BadCandidateIsRejectedAndNeverServed) {
  // A candidate whose attribution is garbage (e.g. read from a trailer the
  // overflow smashed): replay shows the patch does NOT stop the attack, so
  // it must be rejected and the served file must never appear.
  const std::string journal = write_file(
      temp_path("bad_journal.txt"),
      "version 1\n"
      "candidate malloc 0x000000000000dead OVERFLOW canary hits=5 first=1\n");
  const std::string served = temp_path("bad_served.cfg");
  std::remove(served.c_str());

  const std::string cmd_tail =
      " run --candidates " + shell_quote(journal) + " --served " +
      shell_quote(served) + " --program " + shell_quote(kFleetHtp) +
      " --attack-input 16,24 --benign-input 16,16";
  ASSERT_EQ(run_command(shell_quote(kHtpromote) + cmd_tail + " > /dev/null"), 0);

  EXPECT_NE(slurp(journal).find("verdict malloc 0x000000000000dead OVERFLOW "
                                "rejected attack_still_lands"),
            std::string::npos)
      << slurp(journal);
  EXPECT_FALSE(std::filesystem::exists(served))
      << "a rejected candidate must never reach the served file";

  // The verdict sticks: a second round does not retry the candidate.
  const std::string out = temp_path("round2.txt");
  ASSERT_EQ(run_command(shell_quote(kHtpromote) + cmd_tail + " > " +
                        shell_quote(out)),
            0);
  EXPECT_NE(slurp(out).find("nothing to promote"), std::string::npos);
  std::remove(journal.c_str());
  std::remove(out.c_str());
}

TEST(SelfHealing, FleetPressureDemotesPromotedPatch) {
  // False-positive rollback: a degraded fleet dump with guard-budget
  // denials demotes the previously promoted OVERFLOW patch and clears it
  // from the served file. Operator-authored patches (no journal verdict)
  // must survive the same round untouched.
  const std::string journal = write_file(
      temp_path("demote_journal.txt"),
      "version 1\n"
      "candidate malloc 0x0000000000000000 OVERFLOW canary hits=1 first=1\n"
      "verdict malloc 0x0000000000000000 OVERFLOW promoted replay_validated "
      "t=2\n");
  const std::string served = write_file(
      temp_path("demote_served.cfg"),
      "version 1\n"
      "patch malloc 0x0000000000000000 OVERFLOW\n"
      "patch calloc 0x00000000000000aa OVERFLOW\n");  // operator-authored
  const std::string fleet = write_file(
      temp_path("fleet_dump.txt"),
      "# HeapTherapy+ telemetry dump\n"
      "version 1\n"
      "health degraded bypass=0\n"
      "counter guard_budget_denied 7\n");

  ASSERT_EQ(run_command(shell_quote(kHtpromote) + " run --candidates " +
                        shell_quote(journal) + " --served " +
                        shell_quote(served) + " --program " +
                        shell_quote(kFleetHtp) +
                        " --attack-input 16,24 --fleet " + shell_quote(fleet) +
                        " > /dev/null"),
            0);

  const std::string served_now = slurp(served);
  EXPECT_EQ(served_now.find("patch malloc 0x0000000000000000"),
            std::string::npos)
      << served_now;
  EXPECT_NE(served_now.find("patch calloc 0x00000000000000aa OVERFLOW"),
            std::string::npos)
      << "operator-authored patch must survive fleet rollback";
  EXPECT_NE(slurp(journal).find("verdict malloc 0x0000000000000000 OVERFLOW "
                                "demoted guard_budget_pressure"),
            std::string::npos);
  for (const std::string& p : {journal, served, fleet}) std::remove(p.c_str());
}

TEST(SelfHealing, HtrunReplayFeedsCandidateJournal) {
  // The offline feeder: htrun replay with --candidates journals the landed
  // OOB it observed (origin oob_landed), exit 2 = attack effect seen.
  const std::string journal = temp_path("htrun_journal.txt");
  const std::string empty_cfg = write_file(temp_path("empty.cfg"), "version 1\n");
  std::remove(journal.c_str());
  EXPECT_EQ(run_command(shell_quote(kHtrun) + " replay " +
                        shell_quote(kFleetHtp) +
                        " --input 16,24 --config " + shell_quote(empty_cfg) +
                        " --candidates " + shell_quote(journal) +
                        " > /dev/null"),
            2);
  EXPECT_NE(
      slurp(journal).find(
          "candidate malloc 0x0000000000000000 OVERFLOW oob_landed hits=1"),
      std::string::npos)
      << slurp(journal);
  std::remove(journal.c_str());
  std::remove(empty_cfg.c_str());
}

}  // namespace
