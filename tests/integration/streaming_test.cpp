// End-to-end streaming telemetry: real preload child processes flushing
// binary wire frames over an AF_UNIX datagram socket into a real
// `htagg serve` daemon (docs/FORMATS.md §6, docs/OBSERVABILITY.md).
//
// The load-bearing assertion is batch/daemon parity: the rolling fleet
// state the daemon accumulates must render the SAME Prometheus exposition
// a batch `htagg` run produces over the same processes' text dumps —
// byte-identical, not approximately equal. The daemon's --dump-dir bridge
// provides those dumps, closing the loop wire -> rolling state -> text ->
// batch merge.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/telemetry.hpp"
#include "runtime/telemetry_agg.hpp"
#include "runtime/telemetry_wire.hpp"

namespace {

const char* kPreloadLib = HT_PRELOAD_LIB;
const char* kHtagg = HT_HTAGG_BIN;
const char* kHtctl = HT_HTCTL_BIN;

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Waits for the daemon's socket to appear (bound before the recv loop).
bool wait_for_socket(const std::string& path) {
  for (int i = 0; i < 250; ++i) {
    if (std::filesystem::exists(path)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST(StreamingTelemetry, PreloadFleetStreamsToServeAndMatchesBatch) {
  const std::string sock = temp_path("ht_stream_e2e.sock");
  const std::string dump_dir = temp_path("ht_stream_dumps");
  const std::string daemon_out = temp_path("ht_stream_daemon.prom");
  const std::string batch_out = temp_path("ht_stream_batch.prom");
  std::filesystem::remove_all(dump_dir);
  std::filesystem::create_directory(dump_dir);
  std::remove(sock.c_str());
  std::remove(daemon_out.c_str());

  // The daemon: accept exactly 3 frames, keep per-source text dumps, emit
  // Prometheus to --out (final atomic rewrite happens at shutdown).
  int serve_exit = -1;
  std::thread daemon([&] {
    serve_exit = run_command(std::string(kHtagg) + " serve --listen unix:" +
                             sock + " --max-frames 3 --dump-dir " + dump_dir +
                             " --format prom --out " + daemon_out);
  });
  ASSERT_TRUE(wait_for_socket(sock)) << "htagg serve never bound " << sock;

  // Three real preload children. The flush interval is parked high so each
  // child sends exactly ONE frame — the ELF destructor's final flush.
  for (int i = 0; i < 3; ++i) {
    const int rc = run_command(
        "HEAPTHERAPY_TELEMETRY=unix:" + sock +
        " HEAPTHERAPY_TELEMETRY_INTERVAL=60000"
        " LD_PRELOAD=" + std::string(kPreloadLib) + " /bin/ls / > /dev/null");
    EXPECT_EQ(rc, 0) << "preload child " << i << " failed";
  }

  daemon.join();
  EXPECT_EQ(serve_exit, 0);

  const std::string daemon_prom = read_file(daemon_out);
  ASSERT_FALSE(daemon_prom.empty());
  EXPECT_NE(daemon_prom.find("ht_processes 3"), std::string::npos);
  EXPECT_NE(daemon_prom.find("ht_inputs_skipped 0"), std::string::npos);
  {
    const auto errors = ht::runtime::prometheus_lint(daemon_prom);
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  }

  // --dump-dir wrote one §4 text dump per source ("pid-<pid>.dump").
  std::vector<std::string> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dump_dir)) {
    dumps.push_back(entry.path().string());
  }
  ASSERT_EQ(dumps.size(), 3u);

  // Batch htagg over those dumps must reproduce the daemon's exposition
  // byte for byte — same merge code, same snapshots, no drift allowed.
  std::string batch_cmd = std::string(kHtagg);
  for (const std::string& d : dumps) batch_cmd += " " + d;
  batch_cmd += " --format prom --out " + batch_out;
  ASSERT_EQ(run_command(batch_cmd), 0);
  EXPECT_EQ(read_file(batch_out), daemon_prom);

  std::filesystem::remove_all(dump_dir);
  for (const auto& f : {sock, daemon_out, batch_out}) std::remove(f.c_str());
}

TEST(StreamingTelemetry, ServeSurvivesCorruptDatagrams) {
  const std::string sock = temp_path("ht_stream_corrupt.sock");
  const std::string out = temp_path("ht_stream_corrupt.prom");
  std::remove(sock.c_str());

  int serve_exit = -1;
  std::thread daemon([&] {
    serve_exit = run_command(std::string(kHtagg) + " serve --listen unix:" +
                             sock + " --max-frames 1 --format prom --out " +
                             out + " 2> /dev/null");
  });
  ASSERT_TRUE(wait_for_socket(sock));

  ht::runtime::WireEmitter emitter(sock);
  using SendResult = ht::runtime::WireEmitter::SendResult;
  // Garbage first: not a frame at all, then a real frame with its payload
  // corrupted after the CRC was stamped. Both must be dropped, not fatal.
  ASSERT_EQ(emitter.send_frame("complete garbage, not a frame"),
            SendResult::kSent);
  ht::runtime::TelemetrySnapshot snap;
  snap.totals.interceptions = 123;
  std::string torn = ht::runtime::encode_telemetry_frame(snap, "torn");
  torn[torn.size() - 1] ^= 0x40;
  ASSERT_EQ(emitter.send_frame(torn), SendResult::kSent);
  // Then one valid frame, which satisfies --max-frames 1.
  ASSERT_EQ(emitter.send_frame(
                ht::runtime::encode_telemetry_frame(snap, "survivor")),
            SendResult::kSent);

  daemon.join();
  EXPECT_EQ(serve_exit, 0);

  const std::string prom = read_file(out);
  EXPECT_NE(prom.find("ht_processes 1"), std::string::npos);
  // The corrupt datagrams are visible in the rollup (deduped to one
  // "(datagram)" entry), not silently swallowed.
  EXPECT_NE(prom.find("ht_inputs_skipped 1"), std::string::npos);
  EXPECT_NE(prom.find("ht_interceptions_total 123"), std::string::npos);

  for (const auto& f : {sock, out}) std::remove(f.c_str());
}

TEST(StreamingTelemetry, DroppedFramesDegradeWithoutBlocking) {
  // No receiver at all: the child's flushes fail, but the process must
  // run to completion promptly and exit 0 — drops degrade, never block
  // allocation paths or the exit path.
  const std::string sock = temp_path("ht_stream_noreceiver.sock");
  std::remove(sock.c_str());
  const auto start = std::chrono::steady_clock::now();
  const int rc = run_command(
      "HEAPTHERAPY_TELEMETRY=unix:" + sock +
      " HEAPTHERAPY_TELEMETRY_INTERVAL=60000"
      " LD_PRELOAD=" + std::string(kPreloadLib) + " /bin/ls / > /dev/null");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(rc, 0);
  // One flush cycle = 3 attempts with 10ms+40ms backoff; anything taking
  // whole seconds means the flusher blocked instead of degrading.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

TEST(StreamingTelemetry, HtctlStatsReadsBinaryFrameFiles) {
  // Satellite: a frame captured to a file (e.g. from a socket recorder)
  // feeds the same htctl stats/trace pipeline as a text dump.
  const std::string frame_file = temp_path("ht_stream_frame.bin");
  const std::string json_out = temp_path("ht_stream_frame.json");

  ht::runtime::TelemetrySnapshot snap;
  snap.totals.interceptions = 777;
  snap.totals.enhanced = 111;
  {
    std::ofstream out(frame_file, std::ios::binary);
    out << ht::runtime::encode_telemetry_frame(snap, "capture");
  }

  ASSERT_EQ(run_command(std::string(kHtctl) + " stats " + frame_file + " > " +
                        json_out),
            0);
  const std::string json = read_file(json_out);
  EXPECT_NE(json.find("\"interceptions\": 777"), std::string::npos);
  EXPECT_NE(json.find("\"enhanced\": 111"), std::string::npos);

  // And a corrupt frame is rejected crisply, not half-parsed.
  {
    std::ofstream out(frame_file, std::ios::binary | std::ios::trunc);
    std::string bad = ht::runtime::encode_telemetry_frame(snap);
    bad[bad.size() - 1] ^= 0x01;
    out << bad;
  }
  EXPECT_NE(run_command(std::string(kHtctl) + " stats " + frame_file +
                        " > /dev/null 2>&1"),
            0);

  for (const auto& f : {frame_file, json_out}) std::remove(f.c_str());
}

}  // namespace
